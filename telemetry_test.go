package rpdbscan

import (
	"reflect"
	"testing"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/obs"
)

// Telemetry must be a pure observer: a run with the obs sink, counters,
// histograms, and snapshot publication active produces byte-identical
// labels and core flags to a bare core.Run with no sink installed.
func TestTelemetryDoesNotPerturbClustering(t *testing.T) {
	rows := twoBlobs(500, 9)
	pts, err := geom.FromSlice(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Eps: 0.6, MinPts: 5, Rho: 0.01, Seed: 9}

	cl := engine.New(4) // Sink nil: telemetry fully disabled
	bare, err := core.Run(pts, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}

	instrumented, err := ClusterFlat(pts.Coords, pts.Dim, Options{
		Eps: 0.6, MinPts: 5, Seed: 9, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare.Labels, instrumented.Labels) {
		t.Fatal("labels differ between telemetry-off and telemetry-on runs")
	}
	if !reflect.DeepEqual(bare.CorePoint, instrumented.Core) {
		t.Fatal("core flags differ between telemetry-off and telemetry-on runs")
	}
	// The instrumented run must actually have exercised telemetry: the
	// snapshot it published is the one for this run.
	snap := obs.PublishedSnapshot()
	if snap == nil || snap.Run.Points != 500 || snap.Run.Algorithm != "rp" {
		t.Fatalf("instrumented run did not publish its snapshot: %+v", snap)
	}
}
