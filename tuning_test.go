package rpdbscan

import (
	"math/rand"
	"sort"
	"testing"
)

func TestKDistancesSortedAndSized(t *testing.T) {
	pts := twoBlobs(300, 1)
	ds, err := KDistances(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 300 {
		t.Fatalf("len = %d, want 300", len(ds))
	}
	if !sort.Float64sAreSorted(ds) {
		t.Fatal("k-distances not sorted")
	}
	if ds[0] < 0 {
		t.Fatal("negative distance")
	}
}

func TestKDistancesExactOnLine(t *testing.T) {
	// Points at 0, 1, 2, ..., 9 on a line: the 1-distance of every point
	// is exactly 1; the 2-distance is 1 for interior points, 2 at ends.
	var pts [][]float64
	for i := 0; i < 10; i++ {
		pts = append(pts, []float64{float64(i)})
	}
	ds, err := KDistances(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d != 1 {
			t.Fatalf("1-distances = %v, want all 1", ds)
		}
	}
	ds, _ = KDistances(pts, 2)
	if ds[len(ds)-1] != 2 || ds[0] != 1 {
		t.Fatalf("2-distances = %v", ds)
	}
}

func TestKDistancesEdgeCases(t *testing.T) {
	if _, err := KDistances([][]float64{{1, 2}}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	ds, err := KDistances(nil, 3)
	if err != nil || ds != nil {
		t.Fatalf("empty input: %v %v", ds, err)
	}
	// Single point: k clamps; distance defined as 0.
	ds, err = KDistances([][]float64{{1, 2}}, 3)
	if err != nil || len(ds) != 1 || ds[0] != 0 {
		t.Fatalf("single point: %v %v", ds, err)
	}
}

func TestSuggestEpsSeparatesBlobNoise(t *testing.T) {
	// Two tight blobs plus scattered noise: the suggested eps must be
	// larger than within-blob spacing and far smaller than the blob
	// separation.
	rng := rand.New(rand.NewSource(3))
	var pts [][]float64
	for i := 0; i < 200; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 200; i++ {
		pts = append(pts, []float64{20 + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{rng.Float64() * 20, 10 + rng.Float64()*10})
	}
	eps, err := SuggestEps(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0.01 || eps >= 10 {
		t.Fatalf("SuggestEps = %v, want within-blob scale", eps)
	}
	// The suggestion must actually work: clustering with it finds the two
	// blobs.
	res, err := Cluster(pts, Options{Eps: eps, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clustering with suggested eps found %d clusters, want 2 (eps=%v)", res.NumClusters, eps)
	}
}

func TestEstimateDictionary(t *testing.T) {
	pts := twoBlobs(500, 2)
	est, err := EstimateDictionary(pts, 0.6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cells <= 0 || est.SubCells < est.Cells || est.Bits <= 0 || est.Bytes <= 0 {
		t.Fatalf("implausible estimate: %+v", est)
	}
	// The estimate must match what Cluster actually broadcasts.
	res, err := Cluster(pts, Options{Eps: 0.6, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DictionaryBytes != est.Bytes {
		t.Fatalf("estimate %d bytes, actual broadcast %d", est.Bytes, res.Stats.DictionaryBytes)
	}
	if res.Stats.Cells != est.Cells || res.Stats.SubCells != est.SubCells {
		t.Fatalf("cell totals differ: %d/%d vs %d/%d",
			est.Cells, est.SubCells, res.Stats.Cells, res.Stats.SubCells)
	}
}

func TestEstimateDictionaryErrors(t *testing.T) {
	if _, err := EstimateDictionary([][]float64{{1}}, 0, 0.01); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := EstimateDictionary([][]float64{{1}}, 1, -1); err == nil {
		t.Fatal("negative rho accepted")
	}
	if est, err := EstimateDictionary(nil, 1, 0.01); err != nil || est.Cells != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestPublicSimilarityMeasures(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{1, 1, 0, 0}
	if AdjustedRandIndex(a, b) != 1 {
		t.Fatal("ARI relabel invariance broken")
	}
	if NormalizedMutualInformation(a, b) < 0.999 {
		t.Fatal("NMI relabel invariance broken")
	}
}
