// Skewed-data demo: the scenario that motivates RP-DBSCAN. A heavily
// skewed data set (70% of points concentrated in one hot spot, GeoLife
// style) is clustered with pseudo random partitioning, and the per-phase
// timing plus the load-imbalance figure show that no partition is dragged
// out by the hot spot — the property Figure 13 of the paper demonstrates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rpdbscan"
)

func skewedData(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, 0, n)
	// Hot spot: 70% of all points around one location.
	for i := 0; i < n*7/10; i++ {
		pts = append(pts, []float64{
			50 + rng.NormFloat64()*2,
			50 + rng.NormFloat64()*2,
			50 + rng.NormFloat64()*2,
		})
	}
	// The rest spread across 20 small towns.
	towns := make([][3]float64, 20)
	for t := range towns {
		towns[t] = [3]float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	for len(pts) < n {
		t := towns[rng.Intn(len(towns))]
		pts = append(pts, []float64{
			t[0] + rng.NormFloat64()*0.5,
			t[1] + rng.NormFloat64()*0.5,
			t[2] + rng.NormFloat64()*0.5,
		})
	}
	return pts
}

func main() {
	points := skewedData(20000, 7)
	res, err := rpdbscan.Cluster(points, rpdbscan.Options{
		Eps:        1.0,
		MinPts:     20,
		Partitions: 16,
		Workers:    16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d\n", res.NumClusters)
	fmt.Printf("load imbalance across 16 partitions: %.2f (1.0 = perfect)\n",
		res.Stats.LoadImbalance)
	fmt.Println("phase breakdown (simulated parallel time):")
	for _, ph := range res.Stats.Phases {
		fmt.Printf("  phase %-6s %v\n", ph.Phase, ph.Elapsed)
	}
	fmt.Printf("total: %v\n", res.Stats.Elapsed)
}
