// Quickstart: cluster a small 2-d data set with RP-DBSCAN and print the
// result. This is the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rpdbscan"
)

func main() {
	// Three Gaussian blobs plus a few outliers.
	rng := rand.New(rand.NewSource(42))
	var points [][]float64
	centers := [][2]float64{{0, 0}, {10, 0}, {5, 9}}
	for _, c := range centers {
		for i := 0; i < 300; i++ {
			points = append(points, []float64{
				c[0] + rng.NormFloat64()*0.5,
				c[1] + rng.NormFloat64()*0.5,
			})
		}
	}
	points = append(points, []float64{-20, -20}, []float64{30, 30})

	res, err := rpdbscan.Cluster(points, rpdbscan.Options{
		Eps:    0.8,
		MinPts: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d points into %d clusters\n", len(points), res.NumClusters)
	sizes := map[int]int{}
	noise := 0
	for _, l := range res.Labels {
		if l == rpdbscan.Noise {
			noise++
		} else {
			sizes[l]++
		}
	}
	for c := 0; c < res.NumClusters; c++ {
		fmt.Printf("  cluster %d: %d points\n", c, sizes[c])
	}
	fmt.Printf("  noise: %d points\n", noise)
	fmt.Printf("dictionary: %d cells, %d sub-cells, %d bytes broadcast\n",
		res.Stats.Cells, res.Stats.SubCells, res.Stats.DictionaryBytes)
	fmt.Printf("simulated parallel elapsed: %v (load imbalance %.2f)\n",
		res.Stats.Elapsed, res.Stats.LoadImbalance)
}
