// Parameter study: how to pick Eps and budget the dictionary broadcast
// before running RP-DBSCAN on real data. The k-distance heuristic suggests
// an Eps, EstimateDictionary previews the broadcast size at that Eps, and
// the final clustering validates the choice.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rpdbscan"
)

func main() {
	// A workload with unknown "right" parameters: three clusters of very
	// different densities plus background noise.
	rng := rand.New(rand.NewSource(5))
	var points [][]float64
	emit := func(cx, cy, std float64, n int) {
		for i := 0; i < n; i++ {
			points = append(points, []float64{
				cx + rng.NormFloat64()*std,
				cy + rng.NormFloat64()*std,
			})
		}
	}
	emit(0, 0, 0.3, 2000)
	emit(15, 0, 0.8, 1500)
	emit(7, 12, 0.5, 1200)
	for i := 0; i < 300; i++ {
		points = append(points, []float64{rng.Float64()*25 - 3, rng.Float64()*18 - 3})
	}

	const minPts = 10

	// Step 1: the k-distance curve. Quantiles show the knee region.
	ds, err := rpdbscan.KDistances(points, minPts-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("k-distance quantiles (k = minPts-1):")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("  %4.0f%%: %.3f\n", q*100, ds[int(q*float64(len(ds)-1))])
	}

	// Step 2: a suggested Eps at the knee.
	eps, err := rpdbscan.SuggestEps(points, minPts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suggested eps: %.3f\n", eps)

	// Step 3: preview the broadcast cost at this eps.
	est, err := rpdbscan.EstimateDictionary(points, eps, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary at eps=%.3f: %d cells, %d sub-cells, %d bytes broadcast\n",
		eps, est.Cells, est.SubCells, est.Bytes)

	// Step 4: cluster and validate against the exact algorithm on this
	// sample.
	res, err := rpdbscan.Cluster(points, rpdbscan.Options{Eps: eps, MinPts: minPts})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := rpdbscan.ExactDBSCAN(points, eps, minPts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d (exact DBSCAN agrees: Rand %.4f, ARI %.4f, NMI %.4f)\n",
		res.NumClusters,
		rpdbscan.RandIndex(res.Labels, exact.Labels),
		rpdbscan.AdjustedRandIndex(res.Labels, exact.Labels),
		rpdbscan.NormalizedMutualInformation(res.Labels, exact.Labels))
}
