// Accuracy demo: validates that RP-DBSCAN's rho-approximation is
// practically lossless, the Table 4 experiment of the paper. Two
// interleaving half-moons are clustered with exact DBSCAN and with
// RP-DBSCAN at three approximation rates; the Rand index compares the
// results.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"rpdbscan"
)

func moons(n int, noise float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		t := rng.Float64() * math.Pi
		var x, y float64
		if i%2 == 0 {
			x, y = math.Cos(t), math.Sin(t)
		} else {
			x, y = 1-math.Cos(t), 0.5-math.Sin(t)
		}
		pts = append(pts, []float64{
			x + rng.NormFloat64()*noise,
			y + rng.NormFloat64()*noise,
		})
	}
	return pts
}

func main() {
	points := moons(10000, 0.04, 3)
	const eps, minPts = 0.1, 10

	exact, err := rpdbscan.ExactDBSCAN(points, eps, minPts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact DBSCAN: %d clusters\n", exact.NumClusters)

	for _, rho := range []float64{0.10, 0.05, 0.01} {
		res, err := rpdbscan.Cluster(points, rpdbscan.Options{
			Eps: eps, MinPts: minPts, Rho: rho, Partitions: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		ri := rpdbscan.RandIndex(exact.Labels, res.Labels)
		fmt.Printf("rho=%.2f: %d clusters, Rand index vs exact = %.4f\n",
			rho, res.NumClusters, ri)
	}
}
