// CSV pipeline demo: a realistic file-to-file clustering job. The program
// writes a synthetic GPS-trace-like CSV, reads it back, clusters it with
// RP-DBSCAN, and writes a labeled CSV (original coordinates plus a cluster
// column, -1 for noise) — the shape of a typical batch ETL step using this
// library.
package main

import (
	"bufio"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rpdbscan"
)

func main() {
	dir, err := os.MkdirTemp("", "rpdbscan-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	in := filepath.Join(dir, "points.csv")
	out := filepath.Join(dir, "labeled.csv")

	if err := writeSynthetic(in, 5000); err != nil {
		log.Fatal(err)
	}
	points, err := readCSV(in)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rpdbscan.Cluster(points, rpdbscan.Options{Eps: 0.5, MinPts: 10})
	if err != nil {
		log.Fatal(err)
	}
	if err := writeLabeled(out, points, res.Labels); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d points from %s\n", len(points), in)
	fmt.Printf("found %d clusters; wrote labeled output to %s\n", res.NumClusters, out)

	// Show the first few labeled rows.
	f, err := os.Open(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for i := 0; i < 5 && sc.Scan(); i++ {
		fmt.Println("  ", sc.Text())
	}
}

func writeSynthetic(path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	rng := rand.New(rand.NewSource(11))
	stops := [][2]float64{{2, 3}, {8, 1}, {5, 7}, {1, 9}}
	for i := 0; i < n; i++ {
		var x, y float64
		if rng.Float64() < 0.1 { // in transit: uniform noise
			x, y = rng.Float64()*10, rng.Float64()*10
		} else { // dwelling at a stop
			s := stops[rng.Intn(len(stops))]
			x = s[0] + rng.NormFloat64()*0.15
			y = s[1] + rng.NormFloat64()*0.15
		}
		fmt.Fprintf(w, "%g,%g\n", x, y)
	}
	return w.Flush()
}

func readCSV(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var points [][]float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		row := make([]float64, len(fields))
		for i, s := range fields {
			if row[i], err = strconv.ParseFloat(s, 64); err != nil {
				return nil, err
			}
		}
		points = append(points, row)
	}
	return points, sc.Err()
}

func writeLabeled(path string, points [][]float64, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, p := range points {
		for _, v := range p {
			fmt.Fprintf(w, "%g,", v)
		}
		fmt.Fprintf(w, "%d\n", labels[i])
	}
	return w.Flush()
}
