package rpdbscan_test

import (
	"fmt"

	"rpdbscan"
)

// The basic flow: cluster points, read labels.
func ExampleCluster() {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, // a dense square
		{5, 5}, {5.1, 5}, {5, 5.1}, {5.1, 5.1}, // another
		{100, 100}, // an outlier
	}
	res, err := rpdbscan.Cluster(points, rpdbscan.Options{Eps: 0.5, MinPts: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters)
	fmt.Println("outlier label:", res.Labels[8])
	fmt.Println("same cluster:", res.Labels[0] == res.Labels[3])
	// Output:
	// clusters: 2
	// outlier label: -1
	// same cluster: true
}

// Validating parameters against the exact algorithm on a sample.
func ExampleRandIndex() {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{9, 9}, {9.1, 9}, {9, 9.1},
	}
	approx, _ := rpdbscan.Cluster(points, rpdbscan.Options{Eps: 0.5, MinPts: 2})
	exact, _ := rpdbscan.ExactDBSCAN(points, 0.5, 2)
	fmt.Printf("agreement: %.2f\n", rpdbscan.RandIndex(approx.Labels, exact.Labels))
	// Output:
	// agreement: 1.00
}

// Previewing the broadcast dictionary before a large run.
func ExampleEstimateDictionary() {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {3, 3}, {3.1, 3},
	}
	est, err := rpdbscan.EstimateDictionary(points, 1.0, 0.01)
	if err != nil {
		panic(err)
	}
	fmt.Println("cells:", est.Cells)
	// Output:
	// cells: 2
}
