package rpdbscan

// End-to-end integration tests: the command-line tools are built once and
// exercised as a user would run them (generate data -> cluster -> inspect
// labels), and the library pipeline is validated across modules.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles the cmd binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "rpdbscan-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"rpdbscan", "rpdatagen", "rpbench", "rpplot", "rpcalib"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func TestCLIGenerateAndCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "pts.csv")

	gen := exec.Command(filepath.Join(bin, "rpdatagen"), "-dataset", "moons", "-n", "3000", "-o", data)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("rpdatagen: %v\n%s", err, out)
	}

	var stdout bytes.Buffer
	cluster := exec.Command(filepath.Join(bin, "rpdbscan"), "-eps", "0.1", "-minpts", "8", data)
	cluster.Stdout = &stdout
	if err := cluster.Run(); err != nil {
		t.Fatalf("rpdbscan: %v", err)
	}
	labels := map[string]int{}
	sc := bufio.NewScanner(&stdout)
	lines := 0
	for sc.Scan() {
		lines++
		labels[sc.Text()]++
		if _, err := strconv.Atoi(sc.Text()); err != nil {
			t.Fatalf("non-integer label %q", sc.Text())
		}
	}
	if lines != 3000 {
		t.Fatalf("got %d labels, want 3000", lines)
	}
	// The two moons must both be present as clusters.
	if labels["0"] == 0 || labels["1"] == 0 {
		t.Fatalf("expected clusters 0 and 1, got %v", labels)
	}
}

func TestCLIBinaryFormatAndBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "pts.bin")

	gen := exec.Command(filepath.Join(bin, "rpdatagen"), "-dataset", "blobs", "-n", "1500", "-binary", "-o", data)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("rpdatagen: %v\n%s", err, out)
	}
	for _, algo := range []string{"rp", "esp", "exact"} {
		var stdout bytes.Buffer
		cmd := exec.Command(filepath.Join(bin, "rpdbscan"),
			"-eps", "0.35", "-minpts", "8", "-algo", algo, "-binary", data)
		cmd.Stdout = &stdout
		if err := cmd.Run(); err != nil {
			t.Fatalf("rpdbscan -algo %s: %v", algo, err)
		}
		distinct := map[string]bool{}
		for _, l := range strings.Fields(stdout.String()) {
			if l != "-1" {
				distinct[l] = true
			}
		}
		if len(distinct) != 5 {
			t.Fatalf("algo %s found %d clusters, want 5", algo, len(distinct))
		}
	}
}

func TestCLIBenchQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	var stdout bytes.Buffer
	cmd := exec.Command(filepath.Join(bin, "rpbench"), "-quick", "table4")
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("rpbench: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Moons") {
		t.Fatalf("unexpected rpbench output:\n%s", out)
	}
}

func TestCLICalib(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	var stdout bytes.Buffer
	cmd := exec.Command(filepath.Join(bin, "rpcalib"), "-n", "800")
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("rpcalib: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	for _, ds := range []string{"SimGeoLife", "SimCosmo", "SimOSM", "SimTeraClick"} {
		if !strings.Contains(out, ds) {
			t.Fatalf("rpcalib output missing %s:\n%s", ds, out)
		}
	}
	if !strings.Contains(out, "clusters=") || !strings.Contains(out, "noise=") {
		t.Fatalf("rpcalib output missing fields:\n%s", out)
	}
}

func TestCLIPlot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "pts.csv")
	svg := filepath.Join(dir, "out.svg")
	gen := exec.Command(filepath.Join(bin, "rpdatagen"), "-dataset", "moons", "-n", "800", "-o", data)
	if o, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("rpdatagen: %v\n%s", err, o)
	}
	cmd := exec.Command(filepath.Join(bin, "rpplot"),
		"-eps", "0.1", "-minpts", "6", "-o", svg, "-title", "moons", data)
	if o, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("rpplot: %v\n%s", err, o)
	}
	raw, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "<circle") || !strings.Contains(s, "moons") {
		t.Fatal("rpplot produced malformed SVG")
	}
}

func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "pts.csv")
	trace := filepath.Join(dir, "trace.json")

	gen := exec.Command(filepath.Join(bin, "rpdatagen"),
		"-dataset", "moons", "-n", "1200", "-o", data, "-log-format", "json")
	genErr := &bytes.Buffer{}
	gen.Stderr = genErr
	if err := gen.Run(); err != nil {
		t.Fatalf("rpdatagen: %v\n%s", err, genErr)
	}
	// The structured log line must be JSON with the expected fields.
	var rec map[string]any
	if err := json.Unmarshal(genErr.Bytes(), &rec); err != nil {
		t.Fatalf("rpdatagen stderr is not JSON: %v\n%s", err, genErr)
	}
	if rec["msg"] != "wrote points" || rec["points"] != float64(1200) {
		t.Fatalf("unexpected log record: %v", rec)
	}

	cmd := exec.Command(filepath.Join(bin, "rpdbscan"),
		"-eps", "0.1", "-minpts", "8", "-workers", "4", "-stats",
		"-trace", trace, "-trace-format", "chrome",
		"-log-level", "debug", "-o", filepath.Join(dir, "labels.txt"), data)
	stderr := &bytes.Buffer{}
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("rpdbscan: %v\n%s", err, stderr)
	}
	// Debug logging must surface stage events; -stats must print the
	// bytes column for the dictionary broadcast.
	logs := stderr.String()
	for _, want := range []string{"stage start", "stage end", "bytes="} {
		if !strings.Contains(logs, want) {
			t.Fatalf("stderr missing %q:\n%s", want, logs)
		}
	}
	// The chrome trace must parse as JSON with begin/end pairs.
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	begins, ends, lanes := 0, 0, map[int]bool{}
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "B":
			begins++
		case "E":
			ends++
		case "M":
			lanes[e.Tid] = true
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("begin/end pairs unbalanced: B=%d E=%d", begins, ends)
	}
	if len(lanes) != 4 {
		t.Fatalf("lane metadata = %d lanes, want 4 (workers)", len(lanes))
	}

	// An invalid trace format must fail loudly.
	bad := exec.Command(filepath.Join(bin, "rpdbscan"),
		"-eps", "0.1", "-minpts", "8", "-trace", trace, "-trace-format", "bogus",
		"-o", os.DevNull, data)
	if err := bad.Run(); err == nil {
		t.Fatal("bogus -trace-format accepted")
	}
}

func TestLabeledOutputRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "pts.csv")
	out := filepath.Join(dir, "labeled.csv")

	gen := exec.Command(filepath.Join(bin, "rpdatagen"), "-dataset", "blobs", "-n", "900", "-o", data)
	if o, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("rpdatagen: %v\n%s", err, o)
	}
	cmd := exec.Command(filepath.Join(bin, "rpdbscan"),
		"-eps", "0.35", "-minpts", "8", "-labeled", "-o", out, data)
	if o, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("rpdbscan: %v\n%s", err, o)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 900 {
		t.Fatalf("labeled output has %d lines, want 900", len(lines))
	}
	for _, line := range lines[:10] {
		fields := strings.Split(line, ",")
		if len(fields) != 3 { // x, y, label
			t.Fatalf("labeled row %q has %d fields, want 3", line, len(fields))
		}
	}
}
