module rpdbscan

go 1.22
