package rpdbscan

import (
	"fmt"
	"io"
	"runtime"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/pointio"
)

// StreamSource is a single-pass point stream: the input of ClusterStream.
// Dim reports the fixed dimensionality; Next fills dst with up to
// len(dst)/Dim() points (point-major) and returns how many it wrote,
// io.EOF at the clean end of the stream, or a non-EOF error for a record
// cut off mid-point. CSVSource and BinarySource adapt the two on-disk
// formats; any user type with the same contract works too.
type StreamSource interface {
	Dim() int
	Next(dst []float64) (int, error)
}

// StreamOptions configures ClusterStream. The embedded Options carry the
// algorithm parameters, so a streamed run is directly comparable to an
// in-memory run with the same Options — and produces identical labels.
type StreamOptions struct {
	Options
	// ChunkSize is the number of points ingested per chunk; zero defaults
	// to 65536. Peak memory during ingestion is proportional to
	// ChunkSize times Workers, independent of the stream length.
	ChunkSize int
	// SpillDir is the parent directory for the run's temporary spill
	// files; empty uses the OS temp directory. The spill files are
	// removed before ClusterStream returns.
	SpillDir string
}

// StreamingStats reports what the out-of-core pipeline did.
type StreamingStats struct {
	// Chunks is the number of input chunks ingested.
	Chunks int
	// SpillBytes is the total payload written to partition spill files.
	SpillBytes int64
	// SpillReloads counts spill-file re-reads (later phases re-read from
	// disk instead of holding partitions in memory).
	SpillReloads int64
}

// CSVSource returns a StreamSource over CSV point data (one
// comma-separated point per line, '#' comments and blank lines skipped).
// The dimensionality is fixed by the first record.
func CSVSource(r io.Reader) (StreamSource, error) {
	return pointio.NewCSVChunkReader(r)
}

// BinarySource returns a StreamSource over the RPPT binary point format
// (the format WriteBinary of cmd/rpdbscan emits).
func BinarySource(r io.Reader) (StreamSource, error) {
	return pointio.NewBinaryChunkReader(r)
}

// SliceSource returns a StreamSource over flat point-major coordinates
// already in memory: len(coords)/dim points of dimensionality dim. It is
// how an online harness replays an ingested prefix through ClusterStream —
// the serve-while-refit differential battery fits the exact buffered
// prefix offline and compares artifacts byte for byte.
func SliceSource(coords []float64, dim int) (StreamSource, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rpdbscan: dimension must be >= 1, got %d", dim)
	}
	if len(coords)%dim != 0 {
		return nil, fmt.Errorf("rpdbscan: %d coordinates not divisible by dimension %d", len(coords), dim)
	}
	return pointio.FromPoints(&geom.Points{Dim: dim, Coords: coords}), nil
}

// ClusterStream runs RP-DBSCAN over a single-pass point stream without
// ever materialising the full input: chunks are partitioned as they
// arrive and spilled to checksummed per-partition temp files, later
// phases re-read partitions from disk one at a time. The labels and core
// flags are byte-identical to what Cluster produces on the same points —
// the streamed pipeline changes where data lives, not what is computed.
func ClusterStream(src StreamSource, opts StreamOptions) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("rpdbscan: nil stream source")
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := core.StreamConfig{
		Config: core.Config{
			Eps:                opts.Eps,
			MinPts:             opts.MinPts,
			Rho:                opts.Rho,
			NumPartitions:      opts.Partitions,
			MaxCellsPerSubDict: opts.MaxCellsPerSubDict,
			Seed:               opts.Seed,
		},
		ChunkSize: opts.ChunkSize,
		SpillDir:  opts.SpillDir,
	}
	if cfg.Rho == 0 {
		cfg.Rho = 0.01
	}
	cl := engine.New(workers)
	cl.Sink = obs.NewSink(nil)
	res, err := core.RunStream(src, cfg, cl)
	if err != nil {
		return nil, err
	}
	info := obs.RunInfo{
		Algorithm:    "rp",
		Points:       res.PointsProcessed,
		Clusters:     res.NumClusters,
		Cells:        res.NumCells,
		SubCells:     res.NumSubCells,
		DictBytes:    res.DictBytes,
		Streamed:     true,
		Chunks:       res.Stream.Chunks,
		SpillBytes:   res.Stream.SpillBytes,
		SpillReloads: res.Stream.SpillReloads,
	}
	obs.CountRun(res.Report, info)
	obs.TakeSnapshot(res.Report, info).Publish()
	out := &Result{
		Labels:      res.Labels,
		Core:        res.CorePoint,
		NumClusters: res.NumClusters,
		Streaming: &StreamingStats{
			Chunks:       res.Stream.Chunks,
			SpillBytes:   res.Stream.SpillBytes,
			SpillReloads: res.Stream.SpillReloads,
		},
		Stats: Stats{
			Elapsed:         res.Report.SimulatedElapsed(),
			Wall:            res.Report.WallElapsed(),
			DictionaryBytes: res.DictBytes,
			Cells:           res.NumCells,
			SubCells:        res.NumSubCells,
			LoadImbalance:   1,
		},
	}
	if s := res.Report.Stage("cell-graph-construction"); s != nil {
		out.Stats.LoadImbalance = s.Imbalance()
	}
	breakdown, order := res.Report.PhaseBreakdown()
	for _, ph := range order {
		out.Stats.Phases = append(out.Stats.Phases, PhaseStats{Phase: ph, Elapsed: breakdown[ph]})
	}
	return out, nil
}
