package rpdbscan

import (
	"math/rand"
	"testing"
)

func twoBlobs(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, 0, n)
	for i := 0; i < n/2; i++ {
		out = append(out, []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2})
	}
	for i := 0; i < n-n/2; i++ {
		out = append(out, []float64{8 + rng.NormFloat64()*0.2, 8 + rng.NormFloat64()*0.2})
	}
	return out
}

func TestClusterBasic(t *testing.T) {
	pts := twoBlobs(400, 1)
	res, err := Cluster(pts, Options{Eps: 0.6, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	if len(res.Labels) != 400 || len(res.Core) != 400 {
		t.Fatal("output sizes wrong")
	}
	if res.Labels[0] == res.Labels[399] {
		t.Fatal("distinct blobs share a cluster")
	}
}

func TestClusterMatchesExact(t *testing.T) {
	pts := twoBlobs(600, 2)
	approx, err := Cluster(pts, Options{Eps: 0.6, MinPts: 5, Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactDBSCAN(pts, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ri := RandIndex(approx.Labels, exact.Labels); ri < 0.999 {
		t.Fatalf("RandIndex vs exact = %.4f", ri)
	}
}

func TestClusterFlat(t *testing.T) {
	rows := twoBlobs(200, 3)
	flat := make([]float64, 0, len(rows)*2)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	a, err := ClusterFlat(flat, 2, Options{Eps: 0.6, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(rows, Options{Eps: 0.6, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("flat and sliced APIs disagree")
		}
	}
}

func TestClusterStats(t *testing.T) {
	res, err := Cluster(twoBlobs(500, 4), Options{Eps: 0.6, MinPts: 5, Partitions: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DictionaryBytes <= 0 || res.Stats.Cells <= 0 {
		t.Fatalf("stats missing: %+v", res.Stats)
	}
	if len(res.Stats.Phases) != 5 {
		t.Fatalf("phases = %v", res.Stats.Phases)
	}
	if res.Stats.LoadImbalance < 1 {
		t.Fatalf("LoadImbalance = %v", res.Stats.LoadImbalance)
	}
	if res.Stats.Elapsed <= 0 || res.Stats.Wall <= 0 {
		t.Fatalf("elapsed not recorded: %+v", res.Stats)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster([][]float64{{1, 2}}, Options{Eps: 0, MinPts: 5}); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := Cluster([][]float64{{1, 2}, {1}}, Options{Eps: 1, MinPts: 5}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := ClusterFlat([]float64{1, 2, 3}, 2, Options{Eps: 1, MinPts: 5}); err == nil {
		t.Fatal("odd flat input accepted")
	}
	if _, err := ClusterFlat(nil, 0, Options{Eps: 1, MinPts: 5}); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestClusterEmpty(t *testing.T) {
	res, err := Cluster(nil, Options{Eps: 1, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatal("empty input mishandled")
	}
	if _, err := ExactDBSCAN(nil, 1, 5); err != nil {
		t.Fatal(err)
	}
}

func TestResultConveniences(t *testing.T) {
	pts := twoBlobs(400, 6)
	pts = append(pts, []float64{999, 999}) // one noise point
	res, err := Cluster(pts, Options{Eps: 0.6, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.ClusterSizes()
	if len(sizes) != res.NumClusters {
		t.Fatalf("ClusterSizes len = %d, want %d", len(sizes), res.NumClusters)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total+res.NoiseCount() != len(pts) {
		t.Fatalf("sizes (%d) + noise (%d) != n (%d)", total, res.NoiseCount(), len(pts))
	}
	if res.NoiseCount() < 1 {
		t.Fatal("expected at least one noise point")
	}
	s := res.Summary()
	if s == "" || len(s) < 40 {
		t.Fatalf("Summary too short: %q", s)
	}
}

func TestNoiseLabel(t *testing.T) {
	pts := [][]float64{{0, 0}, {100, 100}, {0.1, 0}, {0, 0.1}}
	res, err := Cluster(pts, Options{Eps: 0.5, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[1] != Noise {
		t.Fatalf("far point labelled %d, want Noise", res.Labels[1])
	}
}
