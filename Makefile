# Development entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet bench bench-paper fuzz tools experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/ ./internal/core/ ./internal/baselines/... ./internal/serve/... ./internal/pointio/ ./internal/spill/ ./internal/transport/ ./internal/registry/ ./cmd/rpserve/ ./cmd/rpdbscan/ ./cmd/rpmodel/

vet:
	$(GO) vet ./...

# One testing.B benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure at full scale (takes ~15 minutes;
# writes SVGs for Figures 16 and 18 into ./artifacts).
experiments:
	mkdir -p artifacts
	$(GO) run ./cmd/rpbench -n 20000 -density 20 -svgdir artifacts all

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/dict/
	$(GO) test -fuzz FuzzQueryCellEquivalence -fuzztime 30s ./internal/dict/
	$(GO) test -fuzz FuzzReadCSV -fuzztime 15s ./internal/pointio/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 15s ./internal/pointio/
	$(GO) test -fuzz FuzzChunkReader -fuzztime 30s ./internal/pointio/
	$(GO) test -fuzz FuzzModelDecode -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz FuzzPredictRequest -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz FuzzIngestRequest -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz FuzzLoadNewest -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz FuzzManifestDecode -fuzztime 30s ./internal/registry/
	$(GO) test -fuzz FuzzRegistryOpen -fuzztime 30s ./internal/registry/

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin artifacts
