package registry

import (
	"encoding/binary"
	"fmt"
)

// Manifest wire format, following the RPD2/RPM1/RPS1 conventions: a magic
// tag, FNV-1a integrity sums verified before any parsing, fixed-width
// big-endian fields, and bounded allocation on load.
//
// The manifest file is the registry's append-only ledger:
//
//	magic "RPL1" | frame | frame | ...
//
// Each frame holds one fit record plus the hash chain that makes the
// ledger tamper-evident:
//
//	bodyLen uint32 | chain uint64 | body
//
// where chain_i = FNV-1a( BE8(chain_{i-1}) ‖ BE4(bodyLen_i) ‖ body_i ) and
// chain_0's predecessor value is FNV-1a("RPL1"). Because FNV-1a's per-byte
// XOR-then-multiply step is a bijection of the running accumulator, any
// single-byte change to any record body, any length field, or any stored
// chain value — and any reordering of frames, since each chain value binds
// its predecessor — breaks verification at that frame or the next.
//
// Truncation cannot be caught by a forward chain alone, so the sealed tip
// lives in a separate HEAD file (written temp → fsync → rename, so it is
// never torn):
//
//	magic "RPLH" | sum uint64 | count uint64 | tip uint64
//
// with sum = FNV-1a(count ‖ tip). A manifest shorter than HEAD's count, or
// whose chain value at count differs from tip, is rejected at Open. Frames
// beyond HEAD are the crash window: a batch fsynced to the manifest before
// the process died mid-HEAD-update is adopted on reopen, and a torn
// trailing frame is discarded — never anything at or before HEAD.
const (
	manifestMagic = "RPL1"
	headMagic     = "RPLH"

	// frameHeaderLen is bodyLen(4) + chain(8).
	frameHeaderLen = 4 + 8
	// recordFixedLen is the body size before the variable-length tag:
	// version, modelHash, parent, watermark, configSum, points, clusters,
	// bytes, fitNs (8 bytes each) + tagLen (2).
	recordFixedLen = 9*8 + 2
	// maxTagLen bounds the only variable-length record field.
	maxTagLen = 256
	// headLen is the fixed HEAD file size.
	headLen = 4 + 8 + 8 + 8
)

// fnv64a is the FNV-1a checksum shared with the RPD2/RPM1/RPS1 formats.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return h
}

// chainSeed is the chain value "before the first record": a constant
// derived from the magic so an empty ledger still has a well-defined tip.
func chainSeed() uint64 { return fnv64a([]byte(manifestMagic)) }

// chainNext folds one frame into the chain: the predecessor's chain value,
// then the frame's length field, then its body.
func chainNext(prev uint64, bodyLen uint32, body []byte) uint64 {
	var pre [12]byte
	binary.BigEndian.PutUint64(pre[0:], prev)
	binary.BigEndian.PutUint32(pre[8:], bodyLen)
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, b := range pre {
		h = (h ^ uint64(b)) * prime64
	}
	for i := 0; i < len(body); i++ {
		h = (h ^ uint64(body[i])) * prime64
	}
	return h
}

// Record is one manifest entry: the provenance of one published model
// generation. Every field is part of the tamper-evident chain.
type Record struct {
	// Version is the generation number the fit swapped in as (watermark /
	// cadence for online refits). The ledger may hold the same version more
	// than once — a rollback followed by re-ingestion honestly re-publishes
	// it — and index lookups resolve to the latest entry.
	Version int64
	// ModelHash is the RPM1 content checksum of the artifact, which is also
	// its blob address (blobs/<hash>.rpm1).
	ModelHash uint64
	// Parent is the ModelHash of the generation serving when this one
	// swapped in; 0 for a root (nothing served before it, or a boot model
	// that never passed through this registry).
	Parent uint64
	// Watermark is the exact ingested-point count the model was fitted on
	// (0 when unknown, e.g. artifacts imported from a pre-registry layout).
	Watermark int64
	// ConfigSum fingerprints the fit configuration (FNV-1a over the
	// canonical encoding of eps, minPts, rho, partitions, seed, chunk size,
	// and backend), so "same data, same config" is checkable from the
	// ledger alone.
	ConfigSum uint64
	// Points, Clusters, and Bytes are the artifact's stage stats: training
	// points, fitted clusters, and encoded size.
	Points   int64
	Clusters int64
	Bytes    int64
	// FitNs is the fit wall time in nanoseconds (0 when unknown).
	FitNs int64
	// Tag is an optional operator label ("" for none); lookups by tag
	// resolve to the latest record carrying it.
	Tag string
}

// encodeBody serialises the record body canonically (fixed-width BE fields,
// length-prefixed tag). The encoding round-trips byte-identically.
// It enforces the same invariants decodeBody checks: a record that cannot
// be read back must never be writable, or a single bad Publish would seal
// an undecodable frame into the manifest and brick the next Open.
func (rec Record) encodeBody() ([]byte, error) {
	if len(rec.Tag) > maxTagLen {
		return nil, fmt.Errorf("registry: tag of %d bytes exceeds limit %d", len(rec.Tag), maxTagLen)
	}
	if rec.Version < 0 || rec.Watermark < 0 || rec.Points < 0 ||
		rec.Clusters < 0 || rec.Bytes < 0 || rec.FitNs < 0 {
		return nil, fmt.Errorf("registry: negative field in record version %d", rec.Version)
	}
	buf := make([]byte, 0, recordFixedLen+len(rec.Tag))
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.Version))
	buf = binary.BigEndian.AppendUint64(buf, rec.ModelHash)
	buf = binary.BigEndian.AppendUint64(buf, rec.Parent)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.Watermark))
	buf = binary.BigEndian.AppendUint64(buf, rec.ConfigSum)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.Points))
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.Clusters))
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.Bytes))
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.FitNs))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rec.Tag)))
	buf = append(buf, rec.Tag...)
	return buf, nil
}

// decodeBody parses one record body, enforcing the exact canonical size.
func decodeBody(body []byte) (Record, error) {
	if len(body) < recordFixedLen {
		return Record{}, fmt.Errorf("registry: record body of %d bytes, want >= %d", len(body), recordFixedLen)
	}
	var rec Record
	rec.Version = int64(binary.BigEndian.Uint64(body[0:]))
	rec.ModelHash = binary.BigEndian.Uint64(body[8:])
	rec.Parent = binary.BigEndian.Uint64(body[16:])
	rec.Watermark = int64(binary.BigEndian.Uint64(body[24:]))
	rec.ConfigSum = binary.BigEndian.Uint64(body[32:])
	rec.Points = int64(binary.BigEndian.Uint64(body[40:]))
	rec.Clusters = int64(binary.BigEndian.Uint64(body[48:]))
	rec.Bytes = int64(binary.BigEndian.Uint64(body[56:]))
	rec.FitNs = int64(binary.BigEndian.Uint64(body[64:]))
	tagLen := int(binary.BigEndian.Uint16(body[72:]))
	if tagLen > maxTagLen {
		return Record{}, fmt.Errorf("registry: tag length %d exceeds limit %d", tagLen, maxTagLen)
	}
	if len(body) != recordFixedLen+tagLen {
		return Record{}, fmt.Errorf("registry: record body of %d bytes, want %d for tag length %d",
			len(body), recordFixedLen+tagLen, tagLen)
	}
	rec.Tag = string(body[recordFixedLen:])
	if rec.Version < 0 || rec.Watermark < 0 || rec.Points < 0 ||
		rec.Clusters < 0 || rec.Bytes < 0 || rec.FitNs < 0 {
		return Record{}, fmt.Errorf("registry: negative field in record version %d", rec.Version)
	}
	return rec, nil
}

// encodeFrame serialises one chained frame and returns it with the new
// chain tip.
func encodeFrame(prevChain uint64, rec Record) (frame []byte, chain uint64, err error) {
	body, err := rec.encodeBody()
	if err != nil {
		return nil, 0, err
	}
	chain = chainNext(prevChain, uint32(len(body)), body)
	frame = make([]byte, 0, frameHeaderLen+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.BigEndian.AppendUint64(frame, chain)
	frame = append(frame, body...)
	return frame, chain, nil
}

// manifestScan is the result of walking a manifest image: the complete,
// chain-verified prefix plus what (if anything) stopped the walk.
type manifestScan struct {
	recs []Record
	// chains[i] is the chain tip after record i; the tip of an empty
	// manifest is chainSeed().
	chains []uint64
	// end is the byte offset just past the last complete verified frame.
	end int64
	// damaged reports trailing bytes past end that failed to parse; derr
	// says why (nil when the image ends exactly at a frame boundary).
	damaged bool
	derr    error
}

// tip returns the chain value after the last verified record.
func (s *manifestScan) tip() uint64 {
	if len(s.chains) == 0 {
		return chainSeed()
	}
	return s.chains[len(s.chains)-1]
}

// tipAt returns the chain value after the first count records.
func (s *manifestScan) tipAt(count int) uint64 {
	if count == 0 {
		return chainSeed()
	}
	return s.chains[count-1]
}

// scanManifest walks a manifest image (magic already verified by the
// caller), verifying every frame's chain value, and stops at the first
// torn or tampered frame. Allocation is bounded by the actual image size:
// a frame is only decoded once its full extent is in range.
func scanManifest(buf []byte) manifestScan {
	s := manifestScan{end: int64(len(manifestMagic))}
	chain := chainSeed()
	off := len(manifestMagic)
	for off < len(buf) {
		if len(buf)-off < frameHeaderLen {
			s.damaged, s.derr = true, fmt.Errorf("registry: torn frame header at offset %d", off)
			return s
		}
		bodyLen := int(binary.BigEndian.Uint32(buf[off:]))
		stored := binary.BigEndian.Uint64(buf[off+4:])
		if bodyLen < recordFixedLen || bodyLen > recordFixedLen+maxTagLen {
			s.damaged, s.derr = true, fmt.Errorf("registry: implausible frame body length %d at offset %d", bodyLen, off)
			return s
		}
		if len(buf)-off-frameHeaderLen < bodyLen {
			s.damaged, s.derr = true, fmt.Errorf("registry: torn frame body at offset %d", off)
			return s
		}
		body := buf[off+frameHeaderLen : off+frameHeaderLen+bodyLen]
		want := chainNext(chain, uint32(bodyLen), body)
		if stored != want {
			s.damaged, s.derr = true, fmt.Errorf("registry: chain mismatch at record %d (offset %d)", len(s.recs), off)
			return s
		}
		rec, err := decodeBody(body)
		if err != nil {
			s.damaged, s.derr = true, fmt.Errorf("registry: record %d (offset %d): %w", len(s.recs), off, err)
			return s
		}
		chain = want
		s.recs = append(s.recs, rec)
		s.chains = append(s.chains, chain)
		off += frameHeaderLen + bodyLen
		s.end = int64(off)
	}
	return s
}

// encodeHead serialises the HEAD file: the sealed record count and chain
// tip under their own checksum.
func encodeHead(count int64, tip uint64) []byte {
	buf := make([]byte, headLen)
	copy(buf, headMagic)
	binary.BigEndian.PutUint64(buf[12:], uint64(count))
	binary.BigEndian.PutUint64(buf[20:], tip)
	binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[12:]))
	return buf
}

// decodeHead parses and verifies a HEAD image.
func decodeHead(buf []byte) (count int64, tip uint64, err error) {
	if len(buf) != headLen || string(buf[:4]) != headMagic {
		return 0, 0, fmt.Errorf("registry: bad HEAD file (%d bytes)", len(buf))
	}
	if got := binary.BigEndian.Uint64(buf[4:]); got != fnv64a(buf[12:]) {
		return 0, 0, fmt.Errorf("registry: HEAD checksum mismatch")
	}
	count = int64(binary.BigEndian.Uint64(buf[12:]))
	tip = binary.BigEndian.Uint64(buf[20:])
	if count < 0 {
		return 0, 0, fmt.Errorf("registry: negative HEAD count")
	}
	return count, tip, nil
}
