// Package registry is the content-addressed model registry with
// tamper-evident lineage: the production answer to "which model is
// serving, where did it come from, and can I trust the bytes".
//
// It is the audit-log triangle: a content-addressed blob store
// (blobs/<fnv-hash>.rpm1, written temp → fsync → rename), an append-only
// hash-chained manifest of fit records (manifest.rpl, sealed by a HEAD
// file), and an in-memory index rebuilt from the manifest at Open serving
// lookup by version, hash, or tag. Manifest appends are batched through a
// background appender so refit-time ledger writes stay off the hot-swap
// path; Sync is the durability barrier.
package registry

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"rpdbscan/internal/obs"
)

// Artifact framing constants mirrored from the RPM1 codec (internal/serve
// owns the full decoder; the registry only needs the integrity envelope,
// and serve imports registry, so the two cannot share the symbols).
const (
	artifactMagic = "RPM1"
	// artifactChecksumStart is where checksummed artifact content begins
	// (after magic and the checksum field).
	artifactChecksumStart = 4 + 8
	// artifactMinLen is the RPM1 fixed header size; anything shorter
	// cannot be a model.
	artifactMinLen = artifactChecksumStart + 2 + 4 + 4 + 4 + 8 + 8
)

const (
	manifestName = "manifest.rpl"
	headName     = "HEAD"
	blobDirName  = "blobs"
	// maxManifestBytes bounds the manifest read at Open. A registry with
	// a billion models would still be two orders of magnitude under this;
	// anything larger is corruption, not history.
	maxManifestBytes = 1 << 30
)

// gcGrace is the minimum age a file in blobs/ must reach before GC will
// treat it as garbage. A blob or temp file younger than this may belong
// to a publish in flight in ANOTHER process (the rename into blobs/
// happens before the manifest record is appended, and cross-process
// there is no lock to serialize against), so GC leaves it for a later
// sweep. A var so tests can age files instead of sleeping.
var gcGrace = 10 * time.Minute

// readFile is the blob read-back seam; tests override it to simulate
// storage that corrupts bytes between write and verification.
var readFile = os.ReadFile

// legacyArtifactRe matches the pre-registry artifact layout
// (model-<version>-<hash>.rpm1 in the model dir root) for import and GC.
var legacyArtifactRe = regexp.MustCompile(`^model-(\d+)-([0-9a-f]{16})\.rpm1$`)

// ArtifactHash returns the content address of an RPM1 artifact: the
// FNV-1a sum of everything after the checksum field, which is also the
// value stored in the artifact's own header.
func ArtifactHash(buf []byte) uint64 {
	return fnv64a(buf[artifactChecksumStart:])
}

// checkArtifact verifies the RPM1 integrity envelope and, when want is
// nonzero, the content address. The two checks are distinct failure
// detectors: a flip inside the stored checksum field trips the embedded
// comparison, a flip in the body trips both the embedded comparison and
// the address.
func checkArtifact(buf []byte, want uint64) (uint64, error) {
	if len(buf) < artifactMinLen || string(buf[:4]) != artifactMagic {
		return 0, fmt.Errorf("registry: not an RPM1 artifact (%d bytes)", len(buf))
	}
	embedded := binary.BigEndian.Uint64(buf[4:])
	sum := ArtifactHash(buf)
	if embedded != sum {
		return 0, fmt.Errorf("registry: artifact checksum mismatch (header %016x, body %016x)", embedded, sum)
	}
	if want != 0 && sum != want {
		return 0, fmt.Errorf("registry: artifact hash %016x does not match address %016x", sum, want)
	}
	return sum, nil
}

// FormatHash renders a model hash the way the serving stack does
// ("fnv1a:%016x"); ParseHash accepts that form or bare 16-digit hex.
func FormatHash(h uint64) string { return fmt.Sprintf("fnv1a:%016x", h) }

// ParseHash parses "fnv1a:<16 hex>" or bare "<16 hex>".
func ParseHash(s string) (uint64, error) {
	if len(s) > 6 && s[:6] == "fnv1a:" {
		s = s[6:]
	}
	if len(s) != 16 {
		return 0, fmt.Errorf("registry: hash %q is not 16 hex digits", s)
	}
	h, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("registry: bad hash %q: %v", s, err)
	}
	return h, nil
}

// appendReq is one queued manifest frame; flush, when non-nil, is closed
// with the batch outcome so Sync can act as a barrier.
type appendReq struct {
	frame []byte
	chain uint64
	flush chan error
}

// Registry is an open model registry. All methods are safe for concurrent
// use; Publish and the lookup methods never block on manifest fsync.
type Registry struct {
	dir string

	// pubMu serializes GC against the publish pipeline: Publish holds the
	// read side from blob write through record enqueue, GC holds the write
	// side across its referenced-set snapshot and deletion sweep. Without
	// it, GC could observe a blob already renamed into blobs/ whose
	// manifest record has not yet been indexed and delete it — stranding
	// the record with a missing artifact — or remove the temp file of a
	// writeBlob still in flight. Always acquired before mu.
	pubMu sync.RWMutex

	mu        sync.Mutex
	recs      []Record
	byVersion map[int64]int // latest record index per version
	byHash    map[uint64]int
	byTag     map[string]int
	chain     uint64 // tip including queued-but-not-yet-durable frames
	sealed    int64  // records proven durable (HEAD count)
	err       error  // sticky appender failure; poisons further publishes
	closed    bool
	// pending is the ordered append queue. Frames are appended under mu in
	// the same critical section that advances chain, so queue order IS
	// chain order — the appender drains it in one batch per wakeup and can
	// never write frames to the manifest out of chain order.
	pending []appendReq

	f      *os.File      // manifest, opened O_APPEND
	notify chan struct{} // buffered(1) wakeup for the appender
	quit   chan struct{} // closed by Close; appender drains and exits
	done   chan struct{}
}

// Open opens (or initialises) the registry rooted at dir, verifying the
// full manifest chain against HEAD and rebuilding the index. A manifest
// whose sealed prefix is damaged — any byte flipped, any record removed,
// the file truncated below HEAD's count — is rejected outright. Complete
// frames past HEAD (a crash between manifest fsync and HEAD update) are
// adopted; a torn trailing frame is discarded. If the manifest is empty
// and the directory holds pre-registry model-<v>-<hash>.rpm1 artifacts,
// they are imported in version order so old model dirs upgrade in place.
func Open(dir string) (*Registry, error) {
	if err := os.MkdirAll(filepath.Join(dir, blobDirName), 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}

	headCount, headTip := int64(0), chainSeed()
	headBuf, err := os.ReadFile(filepath.Join(dir, headName))
	switch {
	case err == nil:
		if headCount, headTip, err = decodeHead(headBuf); err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		// Fresh registry, or a crash before the first seal.
	default:
		return nil, fmt.Errorf("registry: %w", err)
	}

	mpath := filepath.Join(dir, manifestName)
	mbuf, err := os.ReadFile(mpath)
	if os.IsNotExist(err) {
		mbuf = nil
	} else if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if len(mbuf) > maxManifestBytes {
		return nil, fmt.Errorf("registry: manifest of %d bytes exceeds limit", len(mbuf))
	}

	var scan manifestScan
	switch {
	case len(mbuf) == 0:
		if headCount > 0 {
			return nil, fmt.Errorf("registry: manifest missing but HEAD seals %d records", headCount)
		}
		if err := os.WriteFile(mpath, []byte(manifestMagic), 0o644); err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		scan = manifestScan{end: int64(len(manifestMagic))}
	case len(mbuf) < len(manifestMagic) || string(mbuf[:len(manifestMagic)]) != manifestMagic:
		return nil, fmt.Errorf("registry: bad manifest magic")
	default:
		scan = scanManifest(mbuf)
	}

	// The sealed prefix is non-negotiable: HEAD promises headCount records
	// with a specific chain tip, and anything less is tampering or storage
	// corruption, not a crash.
	if int64(len(scan.recs)) < headCount {
		if scan.damaged {
			return nil, fmt.Errorf("registry: sealed manifest prefix corrupt (%d of %d records verify): %w",
				len(scan.recs), headCount, scan.derr)
		}
		return nil, fmt.Errorf("registry: manifest truncated to %d records but HEAD seals %d",
			len(scan.recs), headCount)
	}
	if scan.tipAt(int(headCount)) != headTip {
		return nil, fmt.Errorf("registry: manifest chain diverges from HEAD tip at record %d", headCount)
	}

	// Unsealed tail: complete verified frames are adopted (fsynced batch,
	// crash before HEAD update); torn debris past them is truncated away.
	if scan.damaged {
		if err := os.Truncate(mpath, scan.end); err != nil {
			return nil, fmt.Errorf("registry: truncate torn tail: %w", err)
		}
	}

	r := &Registry{
		dir:       dir,
		recs:      scan.recs,
		byVersion: make(map[int64]int),
		byHash:    make(map[uint64]int),
		byTag:     make(map[string]int),
		chain:     scan.tip(),
		sealed:    headCount,
		notify:    make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for i, rec := range r.recs {
		r.indexRecord(rec, i)
	}
	if int64(len(r.recs)) > headCount || scan.damaged {
		// Seal the adopted tail (and the truncation) right away so a
		// second crash cannot demote already-verified records.
		if err := r.writeHead(int64(len(r.recs)), r.chain); err != nil {
			return nil, err
		}
		r.sealed = int64(len(r.recs))
	}

	if r.f, err = os.OpenFile(mpath, os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	go r.appender()

	if len(r.recs) == 0 {
		if err := r.importLegacy(); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// indexRecord updates the lookup maps; later records win, so the index
// always resolves to the most recent publish of a version or tag.
func (r *Registry) indexRecord(rec Record, i int) {
	r.byVersion[rec.Version] = i
	r.byHash[rec.ModelHash] = i
	if rec.Tag != "" {
		r.byTag[rec.Tag] = i
	}
}

// writeHead seals (count, tip) durably via temp → fsync → rename.
func (r *Registry) writeHead(count int64, tip uint64) error {
	tmp, err := os.CreateTemp(r.dir, headName+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encodeHead(count, tip)); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.dir, headName)); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return nil
}

// importLegacy publishes pre-registry model-<v>-<hash>.rpm1 artifacts
// from the registry root into the ledger, version-ascending, chaining
// parents in import order — so `registry.Open(dir).Head()` on a PR 9
// model dir resolves exactly what LoadNewest resolved.
func (r *Registry) importLegacy() error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	type legacy struct {
		version int64
		name    string
	}
	var found []legacy
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := legacyArtifactRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			continue
		}
		found = append(found, legacy{version: v, name: e.Name()})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].version != found[j].version {
			return found[i].version < found[j].version
		}
		return found[i].name < found[j].name
	})
	var parent uint64
	for _, l := range found {
		buf, err := os.ReadFile(filepath.Join(r.dir, l.name))
		if err != nil {
			continue
		}
		sum, err := checkArtifact(buf, 0)
		if err != nil {
			continue // invalid legacy artifacts are skipped, as LoadNewest did
		}
		if _, err := r.Publish(buf, Record{
			Version:   l.version,
			ModelHash: sum,
			Parent:    parent,
			Points:    int64(pointCount(buf)),
			Bytes:     int64(len(buf)),
			Tag:       "imported",
		}); err != nil {
			return err
		}
		parent = sum
	}
	if len(found) > 0 {
		return r.syncLocked()
	}
	return nil
}

// pointCount reads the RPM1 point-count header field (for import stats).
func pointCount(buf []byte) uint32 {
	return binary.BigEndian.Uint32(buf[artifactChecksumStart+2+4+4:])
}

// appender is the batching goroutine: each wakeup steals the whole
// pending queue and drains it into one write + fsync + HEAD seal, so N
// rapid publishes cost one durable round-trip, and the publish path
// itself never waits on the disk. Because the queue is stolen intact and
// was appended to under mu in chain order, the batch hits the manifest in
// exactly chain order.
func (r *Registry) appender() {
	defer close(r.done)
	for {
		select {
		case <-r.notify:
			r.drainPending()
		case <-r.quit:
			// Close has barred new publishes; one final drain empties
			// whatever was queued before the bar.
			r.drainPending()
			return
		}
	}
}

// drainPending steals the pending queue under mu and writes it as one
// durable batch, then answers every flush barrier in the batch.
func (r *Registry) drainPending() {
	r.mu.Lock()
	reqs := r.pending
	r.pending = nil
	r.mu.Unlock()
	if len(reqs) == 0 {
		return
	}

	start := time.Now()
	var batch []byte
	var chain uint64
	var count int64
	var flushes []chan error
	for _, q := range reqs {
		if len(q.frame) > 0 {
			batch = append(batch, q.frame...)
			chain = q.chain
			count++
		}
		if q.flush != nil {
			flushes = append(flushes, q.flush)
		}
	}
	var err error
	if count > 0 {
		err = r.appendBatch(batch, chain, count)
		if err != nil {
			r.mu.Lock()
			if r.err == nil {
				r.err = err
			}
			r.mu.Unlock()
		}
		obs.Histograms.ManifestAppendNs.Record(time.Since(start).Nanoseconds())
	}
	for _, fl := range flushes {
		fl <- err
		close(fl)
	}
}

// wake nudges the appender; the buffered channel coalesces bursts.
func (r *Registry) wake() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// appendBatch writes one durable batch: frames, manifest fsync, then the
// HEAD seal. Ordering matters — HEAD must never claim records the
// manifest hasn't fsynced.
func (r *Registry) appendBatch(batch []byte, chain uint64, count int64) error {
	if _, err := r.f.Write(batch); err != nil {
		return fmt.Errorf("registry: manifest append: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("registry: manifest fsync: %w", err)
	}
	r.mu.Lock()
	sealed := r.sealed + count
	r.mu.Unlock()
	if err := r.writeHead(sealed, chain); err != nil {
		return err
	}
	r.mu.Lock()
	r.sealed = sealed
	r.mu.Unlock()
	return nil
}

// BlobPath returns the content-addressed path for a model hash.
func (r *Registry) BlobPath(hash uint64) string {
	return filepath.Join(r.dir, blobDirName, fmt.Sprintf("%016x.rpm1", hash))
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

// Publish stores an RPM1 artifact content-addressed and appends its fit
// record to the manifest. The blob is durable (fsynced, renamed into
// place, read back and verified against both the embedded checksum and
// the address) before Publish returns; the manifest record is queued for
// a batched append and becomes durable at the next batch or Sync. The
// index reflects the record immediately. Publishing bytes already in the
// store is idempotent at the blob layer and appends a fresh ledger record
// (a rollback re-publish is honest history, not an error).
func (r *Registry) Publish(artifact []byte, rec Record) (string, error) {
	sum, err := checkArtifact(artifact, rec.ModelHash)
	if err != nil {
		return "", err
	}
	rec.ModelHash = sum
	if rec.Bytes == 0 {
		rec.Bytes = int64(len(artifact))
	}

	// Hold the publish side of pubMu from blob write through record
	// enqueue: in the window after writeBlob renames the artifact into
	// blobs/ but before the record is indexed, a concurrent GC would see
	// the blob as unreferenced and delete it.
	r.pubMu.RLock()
	defer r.pubMu.RUnlock()

	path := r.BlobPath(sum)
	wrote := false
	if existing, err := readFile(path); err != nil || func() bool {
		_, verr := checkArtifact(existing, sum)
		return verr != nil
	}() {
		if err := r.writeBlob(path, artifact, sum); err != nil {
			return "", err
		}
		wrote = true
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return "", fmt.Errorf("registry: closed")
	}
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		return "", fmt.Errorf("registry: manifest appender failed: %w", err)
	}
	frame, chain, err := encodeFrame(r.chain, rec)
	if err != nil {
		r.mu.Unlock()
		return "", err
	}
	// Advancing the chain and enqueueing the frame happen in the same
	// critical section: the pending queue is always in chain order, no
	// matter how publishes interleave.
	r.chain = chain
	r.recs = append(r.recs, rec)
	r.indexRecord(rec, len(r.recs)-1)
	r.pending = append(r.pending, appendReq{frame: frame, chain: chain})
	r.mu.Unlock()

	r.wake()
	obs.Counters.RegistryPublishes.Add(1)
	if wrote {
		obs.Counters.RegistryBlobBytes.Add(int64(len(artifact)))
	}
	return path, nil
}

// writeBlob lands artifact bytes at path via temp → fsync → rename, then
// reads the renamed file back and verifies both integrity checks. If the
// read-back fails — storage corrupted the bytes between write and rename,
// or the medium is lying — the renamed blob is removed before returning,
// so a failed publish cannot strand a plausibly-named-but-bad artifact
// for a later Open or operator to trip over. (The pre-registry Refitter
// had exactly this orphan bug: its deferred cleanup removed only the temp
// name, leaving the renamed model-<v>-<hash>.rpm1 behind on validation
// failure.)
func (r *Registry) writeBlob(path string, artifact []byte, sum uint64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(artifact); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: write blob: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: sync blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: close blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("registry: rename blob: %w", err)
	}
	back, err := readFile(path)
	if err == nil {
		_, err = checkArtifact(back, sum)
	}
	if err != nil {
		os.Remove(path) // do not strand a bad blob under a valid name
		return fmt.Errorf("registry: blob read-back: %w", err)
	}
	return nil
}

// Blob returns the verified artifact bytes for a model hash: RPM1 magic,
// embedded checksum, and content address must all agree.
func (r *Registry) Blob(hash uint64) ([]byte, error) {
	buf, err := os.ReadFile(r.BlobPath(hash))
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if _, err := checkArtifact(buf, hash); err != nil {
		return nil, err
	}
	return buf, nil
}

// Sync blocks until every record published before the call is durable
// (manifest fsynced, HEAD sealed), returning the first appender error.
func (r *Registry) Sync() error {
	r.mu.Lock()
	if r.closed {
		err := r.err
		r.mu.Unlock()
		return err
	}
	err := r.syncWithQueueLocked()
	r.mu.Unlock()
	return err
}

// syncLocked is Sync for callers not holding mu.
func (r *Registry) syncLocked() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.syncWithQueueLocked()
}

// syncWithQueueLocked enqueues a flush barrier and waits for it outside
// the lock. Caller holds mu; it is released and re-acquired. The barrier
// rides the same ordered queue as the frames, so it is answered only
// after every frame enqueued before it is durable.
func (r *Registry) syncWithQueueLocked() error {
	if r.err != nil {
		return r.err
	}
	if int64(len(r.recs)) == r.sealed {
		return nil
	}
	fl := make(chan error, 1)
	r.pending = append(r.pending, appendReq{flush: fl})
	r.mu.Unlock()
	r.wake()
	err := <-fl
	r.mu.Lock()
	return err
}

// Close drains the append queue, seals HEAD, and closes the manifest.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return r.err
	}
	r.closed = true
	r.mu.Unlock()
	// closed bars new queue entries (Publish and Sync both check it under
	// mu), so the appender's final drain on quit empties the queue for
	// good.
	close(r.quit)
	<-r.done
	cerr := r.f.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return cerr
}

// Head returns the most recently published record, if any.
func (r *Registry) Head() (Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recs) == 0 {
		return Record{}, false
	}
	return r.recs[len(r.recs)-1], true
}

// ByVersion resolves a version to its latest record.
func (r *Registry) ByVersion(v int64) (Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byVersion[v]
	if !ok {
		return Record{}, false
	}
	return r.recs[i], true
}

// ByHash resolves a model hash to its latest record.
func (r *Registry) ByHash(h uint64) (Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byHash[h]
	if !ok {
		return Record{}, false
	}
	return r.recs[i], true
}

// ByTag resolves a tag to its latest record.
func (r *Registry) ByTag(tag string) (Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byTag[tag]
	if !ok {
		return Record{}, false
	}
	return r.recs[i], true
}

// Records returns a copy of the full ledger in append order.
func (r *Registry) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

// VerifyReport summarises a full registry verification.
type VerifyReport struct {
	// Records is the number of chain-verified manifest records.
	Records int
	// Blobs is the number of distinct artifacts re-read and re-hashed.
	Blobs int
	// BlobBytes is the total verified artifact size.
	BlobBytes int64
	// ExternalParents counts records whose parent hash is nonzero but not
	// itself a ledger entry — a boot model that never passed through this
	// registry. Allowed; listed so operators see the lineage boundary.
	ExternalParents int
}

// Verify re-reads the manifest from disk, re-walks the whole hash chain,
// checks HEAD consistency, and re-hashes every referenced blob. It is the
// ground-truth check: any single flipped byte in any record or artifact
// fails it.
func (r *Registry) Verify() (VerifyReport, error) {
	if err := r.Sync(); err != nil {
		return VerifyReport{}, err
	}

	mbuf, err := os.ReadFile(filepath.Join(r.dir, manifestName))
	if err != nil {
		return VerifyReport{}, fmt.Errorf("registry: %w", err)
	}
	if len(mbuf) < len(manifestMagic) || string(mbuf[:len(manifestMagic)]) != manifestMagic {
		return VerifyReport{}, fmt.Errorf("registry: bad manifest magic")
	}
	scan := scanManifest(mbuf)
	if scan.damaged {
		return VerifyReport{}, fmt.Errorf("registry: manifest record %d unverifiable: %w", len(scan.recs), scan.derr)
	}

	headBuf, err := os.ReadFile(filepath.Join(r.dir, headName))
	if err != nil {
		return VerifyReport{}, fmt.Errorf("registry: %w", err)
	}
	headCount, headTip, err := decodeHead(headBuf)
	if err != nil {
		return VerifyReport{}, err
	}
	if int64(len(scan.recs)) < headCount {
		return VerifyReport{}, fmt.Errorf("registry: manifest holds %d records but HEAD seals %d", len(scan.recs), headCount)
	}
	if scan.tipAt(int(headCount)) != headTip {
		return VerifyReport{}, fmt.Errorf("registry: HEAD tip diverges from manifest chain at record %d", headCount)
	}

	rep := VerifyReport{Records: len(scan.recs)}
	ledger := make(map[uint64]bool, len(scan.recs))
	seen := make(map[uint64]bool, len(scan.recs))
	for i, rec := range scan.recs {
		if rec.Parent != 0 && !ledger[rec.Parent] {
			rep.ExternalParents++
		}
		ledger[rec.ModelHash] = true
		if seen[rec.ModelHash] {
			continue
		}
		seen[rec.ModelHash] = true
		buf, err := os.ReadFile(r.BlobPath(rec.ModelHash))
		if err != nil {
			return rep, fmt.Errorf("registry: record %d (version %d): %w", i, rec.Version, err)
		}
		if _, err := checkArtifact(buf, rec.ModelHash); err != nil {
			return rep, fmt.Errorf("registry: record %d (version %d): %w", i, rec.Version, err)
		}
		rep.Blobs++
		rep.BlobBytes += int64(len(buf))
	}
	return rep, nil
}

// GC removes files no manifest record references: unreferenced blobs
// (the crash window between blob rename and manifest append leaves
// these), abandoned temp files, and legacy model-<v>-<hash>.rpm1
// artifacts that are either invalid or already imported into the blob
// store. Valid legacy artifacts not yet in the ledger are kept — they
// may belong to a reader that has not upgraded. Returns removed paths
// relative to the registry root.
//
// GC is serialized against this handle's Publish calls (it cannot delete
// a blob whose record is still in flight), but nothing serializes it
// against OTHER processes: do not run `rpmodel gc` against a registry a
// live rpserve is publishing into. Files in blobs/ younger than gcGrace
// are skipped as a cross-process safety margin, not a guarantee.
func (r *Registry) GC() ([]string, error) {
	// Exclusive pubMu: no Publish is between blob rename and record
	// index while the sweep runs, so "unreferenced" is trustworthy.
	r.pubMu.Lock()
	defer r.pubMu.Unlock()

	if err := r.Sync(); err != nil {
		return nil, err
	}
	referenced := make(map[uint64]bool)
	r.mu.Lock()
	for _, rec := range r.recs {
		referenced[rec.ModelHash] = true
	}
	r.mu.Unlock()

	var removed []string
	rm := func(rel string) error {
		if err := os.Remove(filepath.Join(r.dir, rel)); err != nil {
			return fmt.Errorf("registry: gc: %w", err)
		}
		removed = append(removed, rel)
		return nil
	}

	blobDir := filepath.Join(r.dir, blobDirName)
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	blobRe := regexp.MustCompile(`^([0-9a-f]{16})\.rpm1$`)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		rel := filepath.Join(blobDirName, name)
		m := blobRe.FindStringSubmatch(name)
		if m != nil {
			h, _ := strconv.ParseUint(m[1], 16, 64)
			if referenced[h] {
				continue
			}
		}
		// Candidate garbage: an unreferenced blob or a stray (an abandoned
		// temp file from a crashed write, or debris). Skip anything young
		// enough to be an in-flight publish from another process — a blob
		// lands in blobs/ before its manifest record, and a temp file
		// exists before its rename.
		if info, err := e.Info(); err != nil || time.Since(info.ModTime()) < gcGrace {
			continue
		}
		if err := rm(rel); err != nil {
			return removed, err
		}
	}

	// Legacy artifacts in the registry root: remove the ones that are
	// invalid (LoadNewest would have skipped them forever) or already
	// content-addressed in the blob store.
	rootEntries, err := os.ReadDir(r.dir)
	if err != nil {
		return removed, fmt.Errorf("registry: %w", err)
	}
	for _, e := range rootEntries {
		if e.IsDir() || legacyArtifactRe.FindStringSubmatch(e.Name()) == nil {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(r.dir, e.Name()))
		if err != nil {
			continue
		}
		sum, verr := checkArtifact(buf, 0)
		if verr != nil || referenced[sum] {
			if err := rm(e.Name()); err != nil {
				return removed, err
			}
		}
	}
	sort.Strings(removed)
	obs.Counters.RegistryGCRemoved.Add(int64(len(removed)))
	return removed, nil
}
