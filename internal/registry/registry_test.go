package registry

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// backdate ages a file past the GC grace window.
func backdate(t *testing.T, path string) {
	t.Helper()
	old := time.Now().Add(-2 * gcGrace)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

// testArtifact builds a small, fully decodable RPM1 artifact whose bytes
// vary with seed (two 1-d points, one cluster). The registry only checks
// the integrity envelope, but keeping fixtures decodable means the same
// bytes satisfy serve.Decode in cross-package tests.
func testArtifact(seed int) []byte {
	const n, dim = 2, 1
	buf := make([]byte, 0, 64)
	buf = append(buf, artifactMagic...)
	buf = binary.BigEndian.AppendUint64(buf, 0) // checksum, patched below
	buf = binary.BigEndian.AppendUint16(buf, dim)
	buf = binary.BigEndian.AppendUint32(buf, 1) // minPts
	buf = binary.BigEndian.AppendUint32(buf, 1) // numClusters
	buf = binary.BigEndian.AppendUint32(buf, n)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(0.5))  // eps
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(0.01)) // rho
	buf = binary.BigEndian.AppendUint32(buf, 0)                      // labels
	buf = binary.BigEndian.AppendUint32(buf, 0)
	buf = append(buf, 0b11) // both core
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(seed)))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(seed)+0.25))
	binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[artifactChecksumStart:]))
	return buf
}

// publishN opens a fresh registry in dir and publishes n generations with
// chained parents and per-version tags, then syncs. Returns the open
// registry and the published artifacts by version.
func publishN(t *testing.T, dir string, n int) (*Registry, map[int64][]byte) {
	t.Helper()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	arts := make(map[int64][]byte, n)
	var parent uint64
	for v := int64(1); v <= int64(n); v++ {
		art := testArtifact(int(v))
		sum := ArtifactHash(art)
		if _, err := r.Publish(art, Record{
			Version:   v,
			ModelHash: sum,
			Parent:    parent,
			Watermark: 8 * v,
			ConfigSum: 0xc0ffee,
			Points:    2,
			Clusters:  1,
			FitNs:     1000 * v,
			Tag:       fmt.Sprintf("gen-%d", v),
		}); err != nil {
			t.Fatalf("Publish v%d: %v", v, err)
		}
		parent = sum
		arts[v] = art
	}
	if err := r.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	return r, arts
}

func TestPublishLookupRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, arts := publishN(t, dir, 3)

	head, ok := r.Head()
	if !ok || head.Version != 3 {
		t.Fatalf("Head = %+v, %v; want version 3", head, ok)
	}
	byV, ok := r.ByVersion(2)
	if !ok || byV.Watermark != 16 || byV.Tag != "gen-2" {
		t.Fatalf("ByVersion(2) = %+v, %v", byV, ok)
	}
	wantHash := ArtifactHash(arts[2])
	byH, ok := r.ByHash(wantHash)
	if !ok || byH.Version != 2 {
		t.Fatalf("ByHash = %+v, %v", byH, ok)
	}
	byT, ok := r.ByTag("gen-1")
	if !ok || byT.Version != 1 {
		t.Fatalf("ByTag = %+v, %v", byT, ok)
	}
	if byV.Parent != ArtifactHash(arts[1]) {
		t.Fatalf("parent of v2 = %016x, want hash of v1", byV.Parent)
	}
	blob, err := r.Blob(wantHash)
	if err != nil || !bytes.Equal(blob, arts[2]) {
		t.Fatalf("Blob: err=%v, identical=%v", err, bytes.Equal(blob, arts[2]))
	}
	rep, err := r.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Records != 3 || rep.Blobs != 3 || rep.ExternalParents != 0 {
		t.Fatalf("Verify report = %+v", rep)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen rebuilds the identical index from the manifest alone.
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if got := r2.Records(); len(got) != 3 || got[2].Version != 3 || got[0].Tag != "gen-1" {
		t.Fatalf("reopened records = %+v", got)
	}
	blob, err = r2.Blob(ArtifactHash(arts[3]))
	if err != nil || !bytes.Equal(blob, arts[3]) {
		t.Fatalf("reopened Blob: err=%v", err)
	}
}

func TestRepublishIsIdempotentAtBlobLayer(t *testing.T) {
	dir := t.TempDir()
	r, arts := publishN(t, dir, 2)
	defer r.Close()

	// Rollback story: re-publish generation 1's bytes as a new record.
	sum := ArtifactHash(arts[1])
	if _, err := r.Publish(arts[1], Record{Version: 1, ModelHash: sum, Tag: "rollback"}); err != nil {
		t.Fatalf("republish: %v", err)
	}
	if recs := r.Records(); len(recs) != 3 {
		t.Fatalf("ledger has %d records, want 3 (honest history)", len(recs))
	}
	// Index resolves version 1 to the latest (rollback) record.
	rec, _ := r.ByVersion(1)
	if rec.Tag != "rollback" {
		t.Fatalf("ByVersion(1).Tag = %q, want rollback", rec.Tag)
	}
	rep, err := r.Verify()
	if err != nil || rep.Blobs != 2 {
		t.Fatalf("Verify = %+v, %v; want 2 distinct blobs", rep, err)
	}
}

// TestEveryManifestByteFlipDetected is the tamper property test: for
// EVERY byte of the manifest and of the HEAD file, flipping it must make
// Open fail. After Close the whole ledger is sealed, so a flip is
// tampering by definition — no crash-recovery path may accept it.
func TestEveryManifestByteFlipDetected(t *testing.T) {
	dir := t.TempDir()
	r, _ := publishN(t, dir, 3)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	for _, name := range []string{manifestName, headName} {
		path := filepath.Join(dir, name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		for i := range orig {
			mut := append([]byte(nil), orig...)
			mut[i] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatalf("write: %v", err)
			}
			if reg, err := Open(dir); err == nil {
				reg.Close()
				t.Fatalf("flip of %s byte %d: Open accepted tampered registry", name, i)
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	// Restored bytes open clean.
	reg, err := Open(dir)
	if err != nil {
		t.Fatalf("restored registry: %v", err)
	}
	reg.Close()
}

// TestEveryBlobByteFlipDetected: for every byte of every blob, a flip
// must fail both Blob() and Verify().
func TestEveryBlobByteFlipDetected(t *testing.T) {
	dir := t.TempDir()
	r, arts := publishN(t, dir, 2)
	defer r.Close()

	for v, art := range arts {
		hash := ArtifactHash(art)
		path := r.BlobPath(hash)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read blob v%d: %v", v, err)
		}
		for i := range orig {
			mut := append([]byte(nil), orig...)
			mut[i] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatalf("write: %v", err)
			}
			if _, err := r.Blob(hash); err == nil {
				t.Fatalf("flip of blob v%d byte %d: Blob accepted tampered artifact", v, i)
			}
			if _, err := r.Verify(); err == nil {
				t.Fatalf("flip of blob v%d byte %d: Verify passed", v, i)
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	if _, err := r.Verify(); err != nil {
		t.Fatalf("restored registry fails Verify: %v", err)
	}
}

// TestEveryTruncationRejected: a sealed registry truncated to ANY shorter
// manifest length must be rejected at Open — truncation is
// indistinguishable from deliberate history rewriting once HEAD has
// sealed the records.
func TestEveryTruncationRejected(t *testing.T) {
	dir := t.TempDir()
	r, _ := publishN(t, dir, 3)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, manifestName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for l := 0; l < len(orig); l++ {
		if err := os.WriteFile(path, orig[:l], 0o644); err != nil {
			t.Fatalf("truncate to %d: %v", l, err)
		}
		if reg, err := Open(dir); err == nil {
			reg.Close()
			t.Fatalf("truncation to %d bytes: Open accepted", l)
		}
	}
	// Truncating HEAD itself must also fail.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatalf("restore: %v", err)
	}
	hpath := filepath.Join(dir, headName)
	horig, err := os.ReadFile(hpath)
	if err != nil {
		t.Fatalf("read HEAD: %v", err)
	}
	for l := 0; l < len(horig); l++ {
		if err := os.WriteFile(hpath, horig[:l], 0o644); err != nil {
			t.Fatalf("truncate HEAD: %v", err)
		}
		if reg, err := Open(dir); err == nil {
			reg.Close()
			t.Fatalf("HEAD truncated to %d bytes: Open accepted", l)
		}
	}
}

// TestRecordReorderRejected: swapping two complete frames breaks the
// chain even when both frames are individually well-formed.
func TestRecordReorderRejected(t *testing.T) {
	dir := t.TempDir()
	r, _ := publishN(t, dir, 3) // tags gen-1..gen-3: all frames equal length
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, manifestName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	frameLen := (len(orig) - len(manifestMagic)) / 3
	if (len(orig)-len(manifestMagic))%3 != 0 {
		t.Fatalf("frames not equal length; fix the fixture")
	}
	mut := append([]byte(nil), orig...)
	a := mut[len(manifestMagic) : len(manifestMagic)+frameLen]
	b := mut[len(manifestMagic)+frameLen : len(manifestMagic)+2*frameLen]
	tmp := append([]byte(nil), a...)
	copy(a, b)
	copy(b, tmp)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if reg, err := Open(dir); err == nil {
		reg.Close()
		t.Fatal("Open accepted reordered manifest")
	}
}

// TestCrashTornTailRecovered: garbage appended past the sealed region
// (a torn final write) is truncated at reopen; the sealed prefix and
// subsequent publishes are unaffected.
func TestCrashTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	r, _ := publishN(t, dir, 2)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, manifestName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open append: %v", err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if recs := r2.Records(); len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	// The debris is gone and the ledger accepts appends again.
	art := testArtifact(9)
	if _, err := r2.Publish(art, Record{Version: 3, ModelHash: ArtifactHash(art)}); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r3, err := Open(dir)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer r3.Close()
	if _, err := r3.Verify(); err != nil {
		t.Fatalf("Verify after recovery: %v", err)
	}
	if recs := r3.Records(); len(recs) != 3 {
		t.Fatalf("final ledger has %d records, want 3", len(recs))
	}
}

// TestCrashMidAppendSealedPrefixIntact kills the durability pipeline at
// every possible byte boundary: a fresh frame appended to the manifest
// without a HEAD update (the crash window between fsync and seal) is
// simulated at every prefix length. Complete frames are adopted; torn
// ones are discarded; the sealed prefix always survives. Same discipline
// as the ingest-buffer crash battery.
func TestCrashMidAppendSealedPrefixIntact(t *testing.T) {
	dir := t.TempDir()
	r, _ := publishN(t, dir, 2)
	tip := r.chain
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, manifestName)
	sealed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	headBytes, err := os.ReadFile(filepath.Join(dir, headName))
	if err != nil {
		t.Fatalf("read HEAD: %v", err)
	}

	// The frame generation 3 would have written.
	art := testArtifact(3)
	frame, _, err := encodeFrame(tip, Record{Version: 3, ModelHash: ArtifactHash(art), Watermark: 24})
	if err != nil {
		t.Fatalf("encodeFrame: %v", err)
	}

	for k := 0; k <= len(frame); k++ {
		if err := os.WriteFile(path, append(append([]byte(nil), sealed...), frame[:k]...), 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, headName), headBytes, 0o644); err != nil {
			t.Fatalf("restore HEAD: %v", err)
		}
		r2, err := Open(dir)
		if err != nil {
			t.Fatalf("crash at tail byte %d: reopen failed: %v", k, err)
		}
		recs := r2.Records()
		want := 2
		if k == len(frame) {
			want = 3 // complete fsynced frame: adopted and sealed
		}
		if len(recs) != want {
			r2.Close()
			t.Fatalf("crash at tail byte %d: recovered %d records, want %d", k, len(recs), want)
		}
		if recs[0].Version != 1 || recs[1].Version != 2 {
			r2.Close()
			t.Fatalf("crash at tail byte %d: sealed prefix damaged: %+v", k, recs)
		}
		if err := r2.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Recovery must have resealed: a second open sees a stable ledger.
		r3, err := Open(dir)
		if err != nil {
			t.Fatalf("crash at tail byte %d: second reopen: %v", k, err)
		}
		if len(r3.Records()) != want {
			r3.Close()
			t.Fatalf("crash at tail byte %d: reseal lost records", k)
		}
		r3.Close()
	}
}

// TestOrphanBlobRemovedOnReadbackFailure pins the orphan fix: when the
// post-rename read-back sees corrupt bytes (simulated via the readFile
// seam), Publish must fail AND remove the renamed blob — the pre-registry
// Refitter left exactly this orphan behind.
func TestOrphanBlobRemovedOnReadbackFailure(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	art := testArtifact(1)
	sum := ArtifactHash(art)
	orig := readFile
	readFile = func(path string) ([]byte, error) {
		buf, err := orig(path)
		if err == nil && len(buf) > 0 {
			buf = append([]byte(nil), buf...)
			buf[len(buf)-1] ^= 0x01 // storage flips a byte after rename
		}
		return buf, err
	}
	_, perr := r.Publish(art, Record{Version: 1, ModelHash: sum})
	readFile = orig
	if perr == nil {
		t.Fatal("Publish succeeded despite corrupt read-back")
	}
	if _, err := os.Stat(r.BlobPath(sum)); !os.IsNotExist(err) {
		t.Fatalf("orphaned blob left behind at %s (stat err: %v)", r.BlobPath(sum), err)
	}
	if recs := r.Records(); len(recs) != 0 {
		t.Fatalf("failed publish appended %d manifest records", len(recs))
	}
	// The registry is still usable: the same publish succeeds cleanly.
	if _, err := r.Publish(art, Record{Version: 1, ModelHash: sum}); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	if _, err := r.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestGCRemovesOrphansKeepsReferenced(t *testing.T) {
	dir := t.TempDir()
	r, arts := publishN(t, dir, 2)
	defer r.Close()

	// Plant the full garbage taxonomy: an unreferenced blob (crash window
	// between blob rename and manifest append), a temp stray, an invalid
	// legacy artifact, and a legacy artifact already imported by hash.
	orphan := testArtifact(77)
	orphanPath := r.BlobPath(ArtifactHash(orphan))
	if err := os.WriteFile(orphanPath, orphan, 0o644); err != nil {
		t.Fatal(err)
	}
	backdate(t, orphanPath) // past the grace window: genuine garbage
	strayPath := filepath.Join(dir, blobDirName, "0000.rpm1.tmp-123")
	if err := os.WriteFile(strayPath, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	backdate(t, strayPath)
	invalidLegacy := filepath.Join(dir, "model-7-deadbeefdeadbeef.rpm1")
	if err := os.WriteFile(invalidLegacy, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	importedLegacy := filepath.Join(dir, fmt.Sprintf("model-1-%016x.rpm1", ArtifactHash(arts[1])))
	if err := os.WriteFile(importedLegacy, arts[1], 0o644); err != nil {
		t.Fatal(err)
	}
	// A valid legacy artifact NOT in the ledger must survive GC.
	keeper := testArtifact(88)
	keeperPath := filepath.Join(dir, fmt.Sprintf("model-9-%016x.rpm1", ArtifactHash(keeper)))
	if err := os.WriteFile(keeperPath, keeper, 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := r.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if len(removed) != 4 {
		t.Fatalf("GC removed %v, want 4 entries", removed)
	}
	for _, p := range []string{orphanPath, strayPath, invalidLegacy, importedLegacy} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("GC left %s behind", p)
		}
	}
	if _, err := os.Stat(keeperPath); err != nil {
		t.Errorf("GC removed valid un-imported legacy artifact: %v", err)
	}
	// Referenced blobs untouched; registry still verifies.
	if rep, err := r.Verify(); err != nil || rep.Blobs != 2 {
		t.Fatalf("Verify after GC = %+v, %v", rep, err)
	}
}

// TestGCSkipsFreshBlobDirFiles pins the cross-process grace window: an
// unreferenced blob or temp file younger than gcGrace may be an
// in-flight publish from another process (blob rename precedes the
// manifest record; temp files precede their rename), so GC must leave
// both alone until they age out.
func TestGCSkipsFreshBlobDirFiles(t *testing.T) {
	dir := t.TempDir()
	r, _ := publishN(t, dir, 1)
	defer r.Close()

	fresh := testArtifact(55)
	freshBlob := r.BlobPath(ArtifactHash(fresh))
	if err := os.WriteFile(freshBlob, fresh, 0o644); err != nil {
		t.Fatal(err)
	}
	freshTmp := filepath.Join(dir, blobDirName, "1111.rpm1.tmp-456")
	if err := os.WriteFile(freshTmp, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := r.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if len(removed) != 0 {
		t.Fatalf("GC removed fresh files: %v", removed)
	}
	for _, p := range []string{freshBlob, freshTmp} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("fresh file %s gone: %v", p, err)
		}
	}

	// Once aged past the grace window, the same files are garbage.
	backdate(t, freshBlob)
	backdate(t, freshTmp)
	removed, err = r.GC()
	if err != nil {
		t.Fatalf("second GC: %v", err)
	}
	if len(removed) != 2 {
		t.Fatalf("aged GC removed %v, want both planted files", removed)
	}
}

// TestGCConcurrentWithPublish is the regression test for the GC/Publish
// race: with the grace window disabled, a GC sweeping between a
// publisher's blob rename and its record index would delete the live
// blob and strand the manifest record. The pubMu serialization makes
// every published artifact survive an adversarial GC loop.
func TestGCConcurrentWithPublish(t *testing.T) {
	saved := gcGrace
	gcGrace = 0
	defer func() { gcGrace = saved }()

	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.GC(); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()
	var pubWg sync.WaitGroup
	for i := 1; i <= n; i++ {
		pubWg.Add(1)
		go func(v int) {
			defer pubWg.Done()
			art := testArtifact(v)
			if _, err := r.Publish(art, Record{Version: int64(v), ModelHash: ArtifactHash(art)}); err != nil {
				t.Errorf("publish %d: %v", v, err)
			}
		}(i)
	}
	pubWg.Wait()
	close(stop)
	wg.Wait()

	// Every published artifact must still be present and verifiable.
	rep, err := r.Verify()
	if err != nil {
		t.Fatalf("Verify after concurrent GC: %v", err)
	}
	if rep.Records != n || rep.Blobs != n {
		t.Fatalf("Verify report = %+v, want %d records and blobs", rep, n)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPublishRejectsNegativeFields pins the encode-side invariant: a
// record decodeBody would refuse must be rejected at Publish, never
// written — a sealed-but-undecodable frame would brick the next Open.
func TestPublishRejectsNegativeFields(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	art := testArtifact(1)
	sum := ArtifactHash(art)
	bad := []Record{
		{Version: -1, ModelHash: sum},
		{Version: 1, ModelHash: sum, Watermark: -8},
		{Version: 1, ModelHash: sum, Points: -2},
		{Version: 1, ModelHash: sum, Clusters: -1},
		{Version: 1, ModelHash: sum, Bytes: -64},
		{Version: 1, ModelHash: sum, FitNs: -1000},
	}
	for i, rec := range bad {
		if _, err := r.Publish(art, rec); err == nil {
			t.Fatalf("case %d: Publish accepted negative field in %+v", i, rec)
		}
	}
	if recs := r.Records(); len(recs) != 0 {
		t.Fatalf("rejected publishes appended %d records", len(recs))
	}
	// The ledger is unpolluted: a clean publish works and the registry
	// reopens without complaint.
	if _, err := r.Publish(art, Record{Version: 1, ModelHash: sum}); err != nil {
		t.Fatalf("clean publish after rejections: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if len(r2.Records()) != 1 {
		t.Fatalf("reopened ledger has %d records, want 1", len(r2.Records()))
	}
}

// TestLegacyImport: Open over a PR 9 style model dir (bare
// model-<v>-<hash>.rpm1 files) imports every valid artifact in version
// order with chained parents, so Head() resolves what LoadNewest did.
func TestLegacyImport(t *testing.T) {
	dir := t.TempDir()
	a1, a2 := testArtifact(1), testArtifact(2)
	h1, h2 := ArtifactHash(a1), ArtifactHash(a2)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("model-1-%016x.rpm1", h1)), a1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("model-2-%016x.rpm1", h2)), a2, 0o644); err != nil {
		t.Fatal(err)
	}
	// An invalid artifact is skipped, exactly as LoadNewest skipped it.
	if err := os.WriteFile(filepath.Join(dir, "model-3-ffffffffffffffff.rpm1"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("imported %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].Version != 1 || recs[1].Version != 2 || recs[1].Parent != h1 {
		t.Fatalf("import order/lineage wrong: %+v", recs)
	}
	head, ok := r.Head()
	if !ok || head.Version != 2 || head.ModelHash != h2 {
		t.Fatalf("Head = %+v, %v; want imported version 2", head, ok)
	}
	if blob, err := r.Blob(h2); err != nil || !bytes.Equal(blob, a2) {
		t.Fatalf("imported blob mismatch: %v", err)
	}
	if rep, err := r.Verify(); err != nil || rep.Records != 2 {
		t.Fatalf("Verify = %+v, %v", rep, err)
	}

	// Reopen must NOT re-import (manifest is no longer empty).
	r.Close()
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if len(r2.Records()) != 2 {
		t.Fatalf("reopen re-imported: %d records", len(r2.Records()))
	}
}

// TestConcurrentPublishBatches hammers Publish from many goroutines and
// proves the batched appender serialises every record durably with an
// unbroken chain.
func TestConcurrentPublishBatches(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			art := testArtifact(v)
			if _, err := r.Publish(art, Record{Version: int64(v), ModelHash: ArtifactHash(art)}); err != nil {
				t.Errorf("publish %d: %v", v, err)
			}
		}(i)
	}
	wg.Wait()
	if err := r.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if got := len(r2.Records()); got != n {
		t.Fatalf("recovered %d records, want %d", got, n)
	}
	seen := make(map[int64]bool)
	for _, rec := range r2.Records() {
		seen[rec.Version] = true
	}
	if len(seen) != n {
		t.Fatalf("duplicate/missing versions: %d distinct", len(seen))
	}
	if rep, err := r2.Verify(); err != nil || rep.Records != n {
		t.Fatalf("Verify = %+v, %v", rep, err)
	}
}

// TestConcurrentPublishSyncInterleaved mixes Sync barriers into the
// publish hammer: every goroutine publishes then syncs, so flush
// requests land between frames in the append queue at every possible
// interleaving. Order must survive — the chain walked from disk has to
// match frame order exactly (the original channel-based queue could
// enqueue frames out of chain order between mu release and send).
func TestConcurrentPublishSyncInterleaved(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 48
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			art := testArtifact(v)
			if _, err := r.Publish(art, Record{Version: int64(v), ModelHash: ArtifactHash(art)}); err != nil {
				t.Errorf("publish %d: %v", v, err)
				return
			}
			if err := r.Sync(); err != nil {
				t.Errorf("sync %d: %v", v, err)
			}
		}(i)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if rep, err := r2.Verify(); err != nil || rep.Records != n {
		t.Fatalf("Verify = %+v, %v; want %d records", rep, err, n)
	}
}

func TestOpenRejectsPathologies(t *testing.T) {
	t.Run("head without manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, headName), encodeHead(2, 12345), 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(dir); err == nil {
			r.Close()
			t.Fatal("Open accepted HEAD sealing records with no manifest")
		}
	})
	t.Run("bad manifest magic", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("NOPE"), 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(dir); err == nil {
			r.Close()
			t.Fatal("Open accepted bad magic")
		}
	})
	t.Run("publish rejects wrong hash", func(t *testing.T) {
		dir := t.TempDir()
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		art := testArtifact(1)
		if _, err := r.Publish(art, Record{Version: 1, ModelHash: ArtifactHash(art) + 1}); err == nil {
			t.Fatal("Publish accepted mismatched address")
		}
		if _, err := r.Publish([]byte("tiny"), Record{Version: 1}); err == nil {
			t.Fatal("Publish accepted non-artifact")
		}
	})
	t.Run("oversized tag", func(t *testing.T) {
		dir := t.TempDir()
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		art := testArtifact(1)
		long := make([]byte, maxTagLen+1)
		if _, err := r.Publish(art, Record{Version: 1, ModelHash: ArtifactHash(art), Tag: string(long)}); err == nil {
			t.Fatal("Publish accepted oversized tag")
		}
	})
}

// TestAccessorMissesAndClosedPaths pins the not-found and after-Close
// contracts: every index lookup misses cleanly on an empty registry,
// Publish after Close fails, Sync and Verify after Close still answer
// (Verify reads from disk), and on-disk truncation AFTER a successful
// open is still caught by Verify's re-read.
func TestAccessorMissesAndClosedPaths(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dir() != dir {
		t.Fatalf("Dir = %q, want %q", r.Dir(), dir)
	}
	if _, ok := r.ByVersion(1); ok {
		t.Fatal("empty registry resolved a version")
	}
	if _, ok := r.ByHash(1); ok {
		t.Fatal("empty registry resolved a hash")
	}
	if _, ok := r.ByTag("x"); ok {
		t.Fatal("empty registry resolved a tag")
	}
	if _, err := r.Blob(1); err == nil {
		t.Fatal("empty registry served a blob")
	}
	if removed, err := r.GC(); err != nil || len(removed) != 0 {
		t.Fatalf("GC on empty registry = %v, %v", removed, err)
	}

	// A parent outside the ledger is legal lineage (a -model boot fit) and
	// counted, not rejected.
	art := testArtifact(1)
	sum := ArtifactHash(art)
	if _, err := r.Publish(art, Record{Version: 1, ModelHash: sum, Parent: 0xfeed, Watermark: 8}); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExternalParents != 1 {
		t.Fatalf("ExternalParents = %d, want 1", rep.ExternalParents)
	}
	if p := r.BlobPath(sum); p != filepath.Join(dir, "blobs", fmt.Sprintf("%016x.rpm1", sum)) {
		t.Fatalf("BlobPath = %q", p)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.Publish(art, Record{Version: 2, ModelHash: sum}); err == nil {
		t.Fatal("Publish accepted after Close")
	}
	if err := r.Sync(); err != nil {
		t.Fatalf("Sync after Close: %v", err)
	}
	if _, err := r.Verify(); err != nil {
		t.Fatalf("Verify after Close: %v", err)
	}

	// Truncate the sealed manifest on disk: the handle's index still
	// answers, but Verify re-reads the file and must refuse.
	manifest := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify(); err == nil {
		t.Fatal("Verify accepted a truncated on-disk manifest")
	}
}

func TestParseFormatHash(t *testing.T) {
	h := uint64(0xdeadbeefcafe1234)
	s := FormatHash(h)
	if s != "fnv1a:deadbeefcafe1234" {
		t.Fatalf("FormatHash = %q", s)
	}
	for _, in := range []string{s, "deadbeefcafe1234"} {
		got, err := ParseHash(in)
		if err != nil || got != h {
			t.Fatalf("ParseHash(%q) = %016x, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "xyz", "fnv1a:123", "fnv1a:zzzzzzzzzzzzzzzz"} {
		if _, err := ParseHash(bad); err == nil {
			t.Fatalf("ParseHash(%q) accepted", bad)
		}
	}
}

// TestRecordRoundTrip pins the canonical record encoding: decode(encode)
// is identity and re-encoding reproduces identical bytes.
func TestRecordRoundTrip(t *testing.T) {
	rec := Record{
		Version: 42, ModelHash: 0xabc, Parent: 0xdef, Watermark: 1000,
		ConfigSum: 0x123, Points: 5000, Clusters: 7, Bytes: 65536,
		FitNs: 1e9, Tag: "canary",
	}
	body, err := rec.encodeBody()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip: got %+v want %+v", got, rec)
	}
	body2, _ := got.encodeBody()
	if !bytes.Equal(body, body2) {
		t.Fatal("re-encode not canonical")
	}
}
