package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzManifestDecode throws arbitrary bytes at the manifest scanner. The
// scanner must never panic, must bound allocation by the input size, and
// every record it does accept must re-encode byte-identical to the bytes
// it consumed (the chain walk re-derived from scratch must agree).
func FuzzManifestDecode(f *testing.F) {
	// Seeds: empty manifest, one record, three records, a torn tail, and
	// a record with a tag.
	seed := func(recs ...Record) []byte {
		buf := []byte(manifestMagic)
		chain := chainSeed()
		for _, rec := range recs {
			frame, next, err := encodeFrame(chain, rec)
			if err != nil {
				f.Fatal(err)
			}
			buf = append(buf, frame...)
			chain = next
		}
		return buf
	}
	f.Add([]byte(manifestMagic))
	f.Add(seed(Record{Version: 1, ModelHash: 0xabc}))
	f.Add(seed(
		Record{Version: 1, ModelHash: 0xabc, Watermark: 8},
		Record{Version: 2, ModelHash: 0xdef, Parent: 0xabc, Watermark: 16},
		Record{Version: 3, ModelHash: 0x123, Parent: 0xdef, Watermark: 24, Tag: "head"},
	))
	f.Add(seed(Record{Version: 1, ModelHash: 0xabc})[:20])
	f.Add(append(seed(Record{Version: 9, ModelHash: 1, Tag: "rollback"}), 0xff, 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < len(manifestMagic) || string(data[:len(manifestMagic)]) != manifestMagic {
			return
		}
		scan := scanManifest(data)
		if scan.end < int64(len(manifestMagic)) || scan.end > int64(len(data)) {
			t.Fatalf("scan.end %d outside [4, %d]", scan.end, len(data))
		}
		if scan.damaged == (scan.derr == nil) {
			t.Fatalf("damaged=%v but derr=%v", scan.damaged, scan.derr)
		}
		if !scan.damaged && scan.end != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d", scan.end, len(data))
		}
		// Accepted records must reproduce the consumed bytes exactly when
		// re-encoded with a fresh chain: the format is canonical.
		reenc := []byte(manifestMagic)
		chain := chainSeed()
		for i, rec := range scan.recs {
			frame, next, err := encodeFrame(chain, rec)
			if err != nil {
				t.Fatalf("record %d accepted but does not re-encode: %v", i, err)
			}
			reenc = append(reenc, frame...)
			chain = next
		}
		if !bytes.Equal(reenc, data[:scan.end]) {
			t.Fatalf("re-encoding %d records diverges from consumed bytes", len(scan.recs))
		}
		if chain != scan.tip() {
			t.Fatalf("re-derived chain %016x != scan tip %016x", chain, scan.tip())
		}
	})
}

// FuzzRegistryOpen builds a registry directory from fuzzed manifest bytes
// plus one planted valid blob and opens it. Open must never panic; when
// it succeeds, the index must be consistent with Records() and the sealed
// ledger must survive a reopen.
func FuzzRegistryOpen(f *testing.F) {
	art := testArtifact(1)
	sum := ArtifactHash(art)
	valid := []byte(manifestMagic)
	frame, _, err := encodeFrame(chainSeed(), Record{Version: 1, ModelHash: sum, Watermark: 8})
	if err != nil {
		f.Fatal(err)
	}
	valid = append(valid, frame...)
	f.Add([]byte(manifestMagic), []byte(nil))
	f.Add(valid, []byte(nil))
	validScan := scanManifest(valid)
	f.Add(valid, encodeHead(1, validScan.tip()))
	f.Add(valid[:9], []byte(nil))
	f.Add([]byte("NOPE"), encodeHead(0, chainSeed()))

	f.Fuzz(func(t *testing.T, manifest, head []byte) {
		if len(manifest) > 1<<16 || len(head) > 256 {
			return // keep the corpus small; framing limits are covered
		}
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, blobDirName), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%s/%016x.rpm1", blobDirName, sum)), art, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if len(head) > 0 {
			if err := os.WriteFile(filepath.Join(dir, headName), head, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		r, err := Open(dir)
		if err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		recs := r.Records()
		for _, rec := range recs {
			got, ok := r.ByVersion(rec.Version)
			if !ok {
				t.Fatalf("version %d in ledger but not in index", rec.Version)
			}
			if got.Version != rec.Version {
				t.Fatalf("index resolves version %d to %d", rec.Version, got.Version)
			}
			if _, ok := r.ByHash(rec.ModelHash); !ok {
				t.Fatalf("hash %016x in ledger but not in index", rec.ModelHash)
			}
		}
		if head, ok := r.Head(); ok != (len(recs) > 0) {
			t.Fatalf("Head ok=%v with %d records", ok, len(recs))
		} else if ok && head != recs[len(recs)-1] {
			t.Fatalf("Head %+v != last record", head)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Whatever Open accepted it must have sealed: reopen sees the
		// same ledger.
		r2, err := Open(dir)
		if err != nil {
			t.Fatalf("accepted registry fails reopen: %v", err)
		}
		if len(r2.Records()) != len(recs) {
			t.Fatalf("reopen sees %d records, had %d", len(r2.Records()), len(recs))
		}
		r2.Close()
	})
}
