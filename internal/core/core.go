// Package core implements the RP-DBSCAN algorithm of Algorithm 1: Phase I
// pseudo random partitioning and two-level cell dictionary building
// (Section 4), Phase II core marking and cell-subgraph building
// (Section 5), and Phase III progressive graph merging and point labeling
// (Section 6). All parallel stages run on an engine.Cluster, which records
// per-task costs for the experiment harness.
package core

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"rpdbscan/internal/dict"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
	"rpdbscan/internal/grid"
)

// phase2Scratch bundles the blocked path's reusable buffers: the SoA gather
// of one cell's points, their region counts, and the core-point selection
// mask. Pooling them across Phase II tasks keeps the per-task allocation
// cost (and the GC assist it draws mid-stage) off the hot path; each task
// holds one scratch at a time, so the pool high-water mark is the number of
// concurrently running tasks, not the partition count.
type phase2Scratch struct {
	blk    geom.Block
	counts []int64
	sel    []bool
}

var phase2Pool = sync.Pool{New: func() any { return new(phase2Scratch) }}

// ensure sizes the scratch for cells of up to maxn points of dim
// dimensions.
func (s *phase2Scratch) ensure(dim, maxn int) {
	s.blk.Grow(dim, maxn)
	if cap(s.counts) < maxn {
		s.counts = make([]int64, maxn)
	}
	if cap(s.sel) < maxn {
		s.sel = make([]bool, maxn)
	}
}

// partitionOf deals a cell to one of k pseudo random partitions: a seeded
// FNV-1a hash of the cell key, so every mapper computes the same
// assignment with no coordination (the "random key" of Algorithm 2 line
// 7). The mix is inlined: hash/fnv costs a hasher plus an 8-byte seed
// buffer allocation per call, and this runs once per cell per mapper. A
// test pins the inlined hash to hash/fnv's output.
func partitionOf(key grid.Key, seed int64, k int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(seed>>(8*i)))) * prime64
	}
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return int(h % uint64(k))
}

// Noise is the label assigned to points in no cluster.
const Noise = -1

// Config holds the RP-DBSCAN parameters.
type Config struct {
	// Eps is the neighborhood radius of DBSCAN.
	Eps float64
	// MinPts is the core-point threshold of DBSCAN.
	MinPts int
	// Rho is the approximation rate of the two-level cell dictionary
	// (Definition 4.1). The paper's default is 0.01.
	Rho float64
	// NumPartitions is k, the number of pseudo random partitions. Zero
	// defaults to the cluster's virtual worker count.
	NumPartitions int
	// MaxCellsPerSubDict bounds sub-dictionary size for defragmentation
	// (Section 4.2.2); <= 0 keeps a single sub-dictionary.
	MaxCellsPerSubDict int
	// Seed drives the pseudo random cell-to-partition assignment.
	Seed int64

	// DisableBatching answers Phase II region queries per point (the
	// pre-batching oracle path) instead of per cell. Results are
	// identical; only cost changes. Ablation / testing knob.
	DisableBatching bool
	// DisableIndex makes the dictionary querier scan entries instead of
	// using its kd-tree index (dict.Querier.DisableIndex). Results are
	// identical; only cost changes.
	DisableIndex bool
	// DisableSoA answers batched Phase II residuals point by point (the
	// pre-SoA scalar loops) instead of through the blocked per-dimension
	// lane kernels. Results are identical; only cost changes. Ablation /
	// testing knob; ignored when DisableBatching is set.
	DisableSoA bool
	// SerialMerge merges Phase III subgraphs with the pairwise tournament
	// of Figure 9a instead of the flat lock-free merge, restoring the
	// per-round edge telemetry of Table 7. Results are identical; only
	// cost and EdgesPerRound granularity change.
	SerialMerge bool

	// Backend selects where stages execute: "" or "sim" runs every stage
	// in-process on the virtual-cluster simulator (the default), "proc"
	// runs Phase I/II stages on the cluster's multi-process Transport
	// (worker subprocesses over local sockets; see internal/transport).
	// Results are byte-identical; only the execution substrate changes.
	Backend string
}

// Backend values for Config.Backend.
const (
	BackendSim  = "sim"
	BackendProc = "proc"
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Eps <= 0 {
		return fmt.Errorf("rpdbscan: Eps must be positive, got %g", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("rpdbscan: MinPts must be >= 1, got %d", c.MinPts)
	}
	if c.Rho <= 0 {
		return fmt.Errorf("rpdbscan: Rho must be positive, got %g", c.Rho)
	}
	if c.NumPartitions < 0 {
		return fmt.Errorf("rpdbscan: NumPartitions must be >= 0, got %d", c.NumPartitions)
	}
	switch c.Backend {
	case "", BackendSim, BackendProc:
	default:
		return fmt.Errorf("rpdbscan: unknown backend %q (want %q or %q)",
			c.Backend, BackendSim, BackendProc)
	}
	return nil
}

// Result is the output of one RP-DBSCAN run plus the instrumentation the
// experiment harness consumes.
type Result struct {
	// Labels holds a cluster id per point, or Noise.
	Labels []int
	// CorePoint marks the points judged core by the (eps,rho)-region
	// queries.
	CorePoint []bool
	// NumClusters is the number of clusters found.
	NumClusters int

	// Report carries per-stage task costs from the engine.
	Report *engine.Report

	// DictSizeBits is the two-level cell dictionary size per Lemma 4.3.
	DictSizeBits int64
	// DictBytes is the size of the encoded broadcast payload.
	DictBytes int
	// NumCells and NumSubCells are dictionary totals.
	NumCells    int
	NumSubCells int
	// EdgesPerRound records the total cell-graph edges remaining after
	// each merge round; index 0 is the pre-merge total (Table 7).
	EdgesPerRound []int64
	// PointsProcessed is the summed number of points handled across all
	// splits. Pseudo random partitioning makes this exactly N
	// (Section 7.3.2).
	PointsProcessed int64

	// Stream holds out-of-core pipeline statistics; nil for in-memory Run.
	Stream *StreamStats
}

// partState carries one partition's data between phases.
type partState struct {
	cells []*grid.Cell
	// ids holds each owned cell's dense dictionary id, parallel to cells.
	ids      []int32
	cellCore []bool
	// corePts lists, per cell, the indices of its core points.
	corePts  [][]int
	subgraph *graph.Graph
}

// Run executes RP-DBSCAN over pts on the given cluster. The cluster's
// report accumulates the stage costs; callers wanting a clean report should
// pass a fresh cluster.
func Run(pts *geom.Points, cfg Config, cl *engine.Cluster) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Backend == BackendProc {
		return runProc(pts, cfg, cl)
	}
	n := pts.N()
	k := cfg.NumPartitions
	if k == 0 {
		k = cl.Workers
	}
	if k < 1 {
		k = 1
	}
	res := &Result{
		Labels:          make([]int, n),
		CorePoint:       make([]bool, n),
		PointsProcessed: int64(n),
	}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		res.Report = cl.Report()
		return res, nil
	}

	dim := pts.Dim
	side := grid.Side(cfg.Eps, dim)
	params := dict.Params{Eps: cfg.Eps, Rho: cfg.Rho, Dim: dim}

	// ---- Phase I-1: pseudo random partitioning (Algorithm 2, part 1).
	// Map: chunk the input, assign points to cells, and bucket each cell
	// by its destination partition. Bucketing on the map side lets each
	// reducer read only its own column of the [chunk][dest] matrix; the
	// previous shuffle had all k reducers scan all k chunk maps and
	// filter, touching every cell k times (O(k^2) in cells).
	type keyedCell struct {
		key    grid.Key
		points []int
	}
	buckets := make([][][]keyedCell, k)
	cl.RunStage("I-1", "cell-assignment", k, func(t int) {
		lo, hi := t*n/k, (t+1)*n/k
		m := make(map[grid.Key][]int)
		for i := lo; i < hi; i++ {
			key := grid.KeyFor(pts.At(i), side)
			m[key] = append(m[key], i)
		}
		dest := make([][]keyedCell, k)
		for key, idx := range m {
			d := partitionOf(key, cfg.Seed, k)
			dest[d] = append(dest[d], keyedCell{key: key, points: idx})
		}
		buckets[t] = dest
	})
	// Reduce (shuffle): each partition concatenates its column — the
	// cells whose random key, a seeded hash needing no coordination,
	// lands on it (Algorithm 2 lines 5-11).
	parts := make([]*partState, k)
	shuffle := cl.RunStage("I-1", "cell-partitioning", k, func(t int) {
		mine := make(map[grid.Key][]int)
		for _, dest := range buckets {
			for _, kc := range dest[t] {
				mine[kc.key] = append(mine[kc.key], kc.points...)
			}
		}
		keys := make([]grid.Key, 0, len(mine))
		for key := range mine {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		st := &partState{cells: make([]*grid.Cell, 0, len(keys))}
		for _, key := range keys {
			st.cells = append(st.cells, &grid.Cell{Key: key, Points: mine[key]})
		}
		parts[t] = st
	})
	// Account the shuffle payload: every point id crosses the shuffle to
	// its cell's partition exactly once (8 bytes per id), plus one cell
	// key per cell.
	for _, st := range parts {
		for _, c := range st.cells {
			shuffle.Bytes += int64(8*len(c.Points) + len(c.Key))
		}
	}

	// ---- Phase I-2: cell dictionary building (Algorithm 2, part 2).
	entriesPer := make([][]dict.CellEntry, k)
	cl.RunStage("I-2", "dictionary-build", k, func(t int) {
		entries := make([]dict.CellEntry, 0, len(parts[t].cells))
		for _, c := range parts[t].cells {
			entries = append(entries, dict.BuildEntry(c, pts, params))
		}
		entriesPer[t] = entries
	})
	var stats dict.Stats
	payload := cl.BroadcastChecked("I-2", "dictionary-broadcast", func() []byte {
		var all []dict.CellEntry
		for _, e := range entriesPer {
			all = append(all, e...)
		}
		stats = dict.StatsOf(all, params)
		return dict.EncodeEntries(all, params)
	})
	res.DictSizeBits = stats.SizeBits
	res.DictBytes = payload.Len()
	res.NumCells = stats.NumCells
	res.NumSubCells = stats.NumSubCells
	// Each executor (worker machine) loads — decodes and indexes — the
	// broadcast once; its tasks share the read-only copy, as on Spark.
	numExec := cl.ExecutorCount()
	if numExec > k {
		numExec = k
	}
	dicts := make([]*dict.Dictionary, numExec)
	loadErrs := make([]error, numExec)
	cl.RunStage("I-2", "dictionary-load", numExec, func(t int) {
		// Fetch transfers the broadcast through the engine's checksummed
		// channel: under chaos, corrupted chunks are detected and
		// re-transferred before the bytes ever reach the decoder.
		buf, err := cl.Fetch(payload, t)
		if err == nil {
			dicts[t], err = dict.Decode(buf, cfg.MaxCellsPerSubDict)
		}
		loadErrs[t] = err
	})
	for _, err := range loadErrs {
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: dictionary load: %w", err)
		}
	}

	// ---- Phase II: core marking and subgraph building (Algorithm 3).
	numCells := stats.NumCells
	cl.RunStage("II", "cell-graph-construction", k, func(t int) {
		// Tasks on one executor share its dictionary copy.
		phase2Task(pts, cfg, parts[t], dicts[t%numExec], numCells, res.CorePoint)
	})
	for i := range dicts {
		dicts[i] = nil // release the executors' dictionary copies
	}

	// ---- Phase III-1: graph merging (Algorithm 4, part 1) — the flat
	// lock-free merge by default, the pairwise tournament under
	// cfg.SerialMerge; see merge.go.
	subgraphs := make([]*graph.Graph, k)
	for i, st := range parts {
		subgraphs[i] = st.subgraph
	}
	finalize := mergePhase(cl, cfg, numCells, subgraphs, res)

	// ---- Phase III-2: point labeling (Algorithm 4, part 2).
	labelPhase(cl, cfg, pts, parts, numCells, finalize, res)

	res.Report = cl.Report()
	return res, nil
}

// labelPhase runs Phase III-2 — label preparation and point labeling
// (Algorithm 4, part 2) — over the merged graph. It is driver-side code
// shared verbatim by the in-process and multi-process Run paths: both
// arrive here with identical parts and an identical merged graph, so the
// labels they produce are identical by construction.
func labelPhase(cl *engine.Cluster, cfg Config, pts *geom.Points, parts []*partState,
	numCells int, finalize func() mergeOutcome, res *Result) {
	var comp []int32
	var preds map[int32][]int32
	coreByCell := make([][]int, numCells)
	cl.Serial("III-2", "label-preparation", func() {
		out := finalize()
		comp, preds = out.comp, out.preds
		// Shuffle: gather core points of cells that precede partial
		// edges so workers can run the exact distance checks of
		// Lemma 3.5.
		needed := make(map[int32]bool)
		for _, ps := range preds {
			for _, p := range ps {
				needed[p] = true
			}
		}
		for _, st := range parts {
			for ci := range st.cells {
				if needed[st.ids[ci]] {
					coreByCell[st.ids[ci]] = st.corePts[ci]
				}
			}
		}
	})
	cl.RunStage("III-2", "point-labeling", len(parts), func(t int) {
		st := parts[t]
		for ci, cell := range st.cells {
			if st.cellCore[ci] {
				// All points of a core cell share its component's
				// cluster (Figure 3a, maximality).
				cid := int(comp[st.ids[ci]])
				for _, pi := range cell.Points {
					res.Labels[pi] = cid
				}
				continue
			}
			pcs := preds[st.ids[ci]]
			if len(pcs) == 0 {
				continue // noise cell
			}
			for _, qi := range cell.Points {
				qp := pts.At(qi)
				for _, pk := range pcs {
					if comp[pk] < 0 {
						continue
					}
					found := false
					for _, pi := range coreByCell[pk] {
						if geom.Dist2(qp, pts.At(pi)) <= cfg.Eps*cfg.Eps {
							res.Labels[qi] = int(comp[pk])
							found = true
							break
						}
					}
					if found {
						break
					}
				}
			}
		}
	})
}

// phase2Task runs one partition's share of Phase II — core marking and
// cell-subgraph building (Algorithm 3) — over the owned cells of st,
// filling st.ids/cellCore/corePts/subgraph and marking core points in
// corePoint. The hot path batches region queries at cell granularity
// (dict.Querier.QueryCell) and evaluates the per-point residual checks
// through the blocked SoA kernels: each cell's points are gathered once
// into per-dimension lanes (geom.Block), CountPoints answers every point's
// core decision candidate-by-candidate with the MinPts early exit, and
// AppendNeighborsBlock computes the core points' neighbor-cell union
// directly. cfg.DisableSoA selects the scalar per-point residual loops and
// cfg.DisableBatching the per-point oracle path; all three produce
// identical output.
func phase2Task(pts *geom.Points, cfg Config, st *partState, d *dict.Dictionary, numCells int, corePoint []bool) {
	q := d.AcquireQuerier()
	defer d.ReleaseQuerier(q)
	q.DisableBatching = cfg.DisableBatching
	q.DisableIndex = cfg.DisableIndex
	g := graph.New(numCells)
	st.ids = make([]int32, len(st.cells))
	st.cellCore = make([]bool, len(st.cells))
	st.corePts = make([][]int, len(st.cells))
	// Scratch of the blocked path, pooled across tasks and pre-sized to the
	// partition's largest cell so the cell loop never reallocates. The
	// arena backs every cell's core-point list (total core points never
	// exceed total points): one allocation per task instead of one per core
	// cell, and it cannot be pooled because the windows are retained in
	// st.corePts.
	var scratch *phase2Scratch
	var counts []int64
	var sel []bool
	var arena []int
	if !cfg.DisableBatching && !cfg.DisableSoA {
		maxn, total := 0, 0
		for _, cell := range st.cells {
			if len(cell.Points) > maxn {
				maxn = len(cell.Points)
			}
			total += len(cell.Points)
		}
		scratch = phase2Pool.Get().(*phase2Scratch)
		defer phase2Pool.Put(scratch)
		scratch.ensure(pts.Dim, maxn)
		counts = scratch.counts
		sel = scratch.sel
		arena = make([]int, 0, total)
	}
	// Sparse-set dedup of neighbor-cell ids keyed by dense cell id: inNC
	// flags membership, ncIDs lists members for an O(|NC|) reset. Replaces
	// a map[int32]struct{} whose hashing and clearing dominated cells with
	// many core points.
	inNC := make([]bool, numCells)
	ncIDs := make([]int32, 0, 64)
	var neighborCells []int32
	minPts := int64(cfg.MinPts)
	for ci, cell := range st.cells {
		id, ok := d.IDOf(cell.Key)
		if !ok {
			// Every owned cell is non-empty, so it must be in the
			// dictionary; reaching here means a broadcast bug.
			panic("rpdbscan: owned cell missing from dictionary")
		}
		st.ids[ci] = id
		for _, nid := range ncIDs {
			inNC[nid] = false
		}
		ncIDs = ncIDs[:0]
		if q.DisableBatching {
			for _, pi := range cell.Points {
				count, cellsOut := q.Query(pts.At(pi), true, neighborCells[:0])
				neighborCells = cellsOut
				if count >= minPts {
					corePoint[pi] = true
					st.cellCore[ci] = true
					st.corePts[ci] = append(st.corePts[ci], pi)
					for _, nid := range neighborCells {
						if !inNC[nid] {
							inNC[nid] = true
							ncIDs = append(ncIDs, nid)
						}
					}
				}
			}
		} else if cfg.DisableSoA {
			b := q.QueryCell(cell.Key)
			for _, pi := range cell.Points {
				p := pts.At(pi)
				if b.CountPoint(p, minPts) < minPts {
					continue
				}
				corePoint[pi] = true
				st.cellCore[ci] = true
				st.corePts[ci] = append(st.corePts[ci], pi)
				neighborCells = b.AppendNeighbors(p, neighborCells[:0])
				for _, nid := range neighborCells {
					if !inNC[nid] {
						inNC[nid] = true
						ncIDs = append(ncIDs, nid)
					}
				}
			}
			if st.cellCore[ci] {
				// Fully-inside candidates neighbor every point of the
				// cell, so they join NC once, not once per core point.
				for _, nid := range b.InsideCells() {
					if !inNC[nid] {
						inNC[nid] = true
						ncIDs = append(ncIDs, nid)
					}
				}
			}
		} else {
			b := q.QueryCell(cell.Key)
			blk := &scratch.blk
			blk.Gather(pts, cell.Points)
			np := len(cell.Points)
			counts, sel = counts[:np], sel[:np]
			b.CountPoints(blk, minPts, counts)
			ncore := 0
			for i := range cell.Points {
				sel[i] = counts[i] >= minPts
				if sel[i] {
					ncore++
				}
			}
			if ncore > 0 {
				st.cellCore[ci] = true
				// The arena's capacity covers every point of the partition,
				// so these appends never reallocate and the window stays
				// valid.
				start := len(arena)
				for i, pi := range cell.Points {
					if sel[i] {
						corePoint[pi] = true
						arena = append(arena, pi)
					}
				}
				st.corePts[ci] = arena[start:len(arena):len(arena)]
			}
			if st.cellCore[ci] {
				// Per-point neighbor sets are only ever unioned into NC, so
				// the blocked kernel answers the union over the cell's core
				// points directly; fully-inside candidates neighbor every
				// point and join once.
				neighborCells = b.AppendNeighborsBlock(blk, sel, neighborCells[:0])
				for _, nid := range neighborCells {
					if !inNC[nid] {
						inNC[nid] = true
						ncIDs = append(ncIDs, nid)
					}
				}
				for _, nid := range b.InsideCells() {
					if !inNC[nid] {
						inNC[nid] = true
						ncIDs = append(ncIDs, nid)
					}
				}
			}
		}
		if st.cellCore[ci] {
			g.SetVertex(id, graph.Core)
			slices.Sort(ncIDs) // deterministic edge insertion order
			for _, nid := range ncIDs {
				g.AddEdge(id, nid)
			}
		} else {
			g.SetVertex(id, graph.NonCore)
		}
	}
	st.subgraph = g
}
