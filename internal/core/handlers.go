package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"rpdbscan/internal/dict"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
	"rpdbscan/internal/grid"
	"rpdbscan/internal/spill"
)

// Worker-side task handlers for the multi-process backend. Each remote
// stage of the proc Run path (see remote.go) executes as one of these
// registered handlers on a worker process: the driver ships the stage
// input over the transport, the handler computes against the worker's
// pushed blobs (input points, run configuration, encoded dictionary), and
// the output bytes travel back. Every handler is a deterministic pure
// function of (blobs, task, input) — local map iteration never reaches the
// output (cells are sorted by key before encoding) — which is what lets
// the differential battery pin proc labels byte-identical to in-process
// Run.

// Blob names the driver pushes to every worker before remote stages run.
const (
	// BlobPoints is the full input point set (every worker holds a copy,
	// as Spark executors hold their cached input split — with k random
	// partitions over w workers, every worker ends up needing most cells).
	BlobPoints = "points"
	// BlobConf is the JSON-encoded run configuration.
	BlobConf = "conf"
	// BlobDict is the RPD2-encoded cell dictionary broadcast after
	// Phase I-2.
	BlobDict = "dict"
)

// Remote stage handler names (registered in init).
const (
	HandlerCellAssign = "cell-assignment"
	HandlerCellPart   = "cell-partitioning"
	HandlerDictBuild  = "dictionary-build"
	HandlerDictLoad   = "dictionary-load"
	HandlerPhase2     = "cell-graph-construction"
)

func init() {
	engine.RegisterHandler(HandlerCellAssign, handleCellAssignment)
	engine.RegisterHandler(HandlerCellPart, handleCellPartitioning)
	engine.RegisterHandler(HandlerDictBuild, handleDictionaryBuild)
	engine.RegisterHandler(HandlerDictLoad, handleDictionaryLoad)
	engine.RegisterHandler(HandlerPhase2, handlePhase2)
}

// wireConf is the configuration blob's schema: the Config fields remote
// handlers need, frozen at push time.
type wireConf struct {
	Eps                float64 `json:"eps"`
	MinPts             int     `json:"min_pts"`
	Rho                float64 `json:"rho"`
	K                  int     `json:"k"`
	Seed               int64   `json:"seed"`
	MaxCellsPerSubDict int     `json:"max_cells_per_sub_dict"`
	DisableBatching    bool    `json:"disable_batching,omitempty"`
	DisableIndex       bool    `json:"disable_index,omitempty"`
	DisableSoA         bool    `json:"disable_soa,omitempty"`
}

// EncodePoints serialises a point set for the points blob: dim uint32,
// n uint32, then n*dim big-endian float64 coordinates.
func EncodePoints(pts *geom.Points) []byte {
	buf := make([]byte, 8+8*len(pts.Coords))
	binary.BigEndian.PutUint32(buf, uint32(pts.Dim))
	binary.BigEndian.PutUint32(buf[4:], uint32(pts.N()))
	off := 8
	for _, v := range pts.Coords {
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return buf
}

// DecodePoints is the inverse of EncodePoints.
func DecodePoints(buf []byte) (*geom.Points, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("core: truncated points blob (%d bytes)", len(buf))
	}
	dim := int(binary.BigEndian.Uint32(buf))
	n := int(binary.BigEndian.Uint32(buf[4:]))
	if dim < 1 || n < 0 || len(buf) != 8+8*n*dim {
		return nil, fmt.Errorf("core: points blob dim=%d n=%d inconsistent with %d bytes",
			dim, n, len(buf))
	}
	coords := make([]float64, n*dim)
	off := 8
	for i := range coords {
		coords[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	return &geom.Points{Dim: dim, Coords: coords}, nil
}

// workerPoints returns the worker's decoded copy of the points blob.
func workerPoints(ws *engine.WorkerState) (*geom.Points, error) {
	v, err := ws.Cached(BlobPoints, func(data []byte) (any, error) {
		return DecodePoints(data)
	})
	if err != nil {
		return nil, err
	}
	return v.(*geom.Points), nil
}

// workerConf returns the worker's decoded copy of the configuration blob.
func workerConf(ws *engine.WorkerState) (*wireConf, error) {
	v, err := ws.Cached(BlobConf, func(data []byte) (any, error) {
		var c wireConf
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, fmt.Errorf("core: conf blob: %w", err)
		}
		if c.K < 1 {
			return nil, fmt.Errorf("core: conf blob has k=%d", c.K)
		}
		return &c, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*wireConf), nil
}

// workerDict returns the worker's decoded-and-indexed dictionary, built at
// most once per pushed dict blob (the executor-side broadcast load of
// Algorithm 2).
func workerDict(ws *engine.WorkerState) (*dict.Dictionary, error) {
	conf, err := workerConf(ws)
	if err != nil {
		return nil, err
	}
	v, err := ws.Cached(BlobDict, func(data []byte) (any, error) {
		return dict.Decode(data, conf.MaxCellsPerSubDict)
	})
	if err != nil {
		return nil, err
	}
	return v.(*dict.Dictionary), nil
}

// sortRunCells orders cells by key, removing any trace of map iteration
// order before encoding.
func sortRunCells(cells []spill.RunCell) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key < cells[j].Key })
}

// runCellOf builds one shuffle cell record: the cell's point ids (already
// ascending — they come from an ascending index scan) plus their raw
// coordinates, the actual payload the paper's Phase I shuffle ships.
func runCellOf(key grid.Key, idx []int, pts *geom.Points) spill.RunCell {
	c := spill.RunCell{Key: key, IDs: make([]int64, len(idx)), Coords: make([]float64, 0, len(idx)*pts.Dim)}
	for i, pi := range idx {
		c.IDs[i] = int64(pi)
		c.Coords = append(c.Coords, pts.At(pi)...)
	}
	return c
}

// handleCellAssignment is the remote map side of Phase I-1 (Algorithm 2,
// part 1): assign the task's chunk of points to cells and deal each cell
// to its pseudo random destination partition. The output is k RPS1 frames
// concatenated in destination order, frame d holding this chunk's cells
// for partition d, sorted by key.
func handleCellAssignment(ws *engine.WorkerState, task int, _ []byte) ([]byte, error) {
	pts, err := workerPoints(ws)
	if err != nil {
		return nil, err
	}
	conf, err := workerConf(ws)
	if err != nil {
		return nil, err
	}
	k := conf.K
	if task < 0 || task >= k {
		return nil, fmt.Errorf("core: cell-assignment task %d out of range [0,%d)", task, k)
	}
	n := pts.N()
	lo, hi := task*n/k, (task+1)*n/k
	side := grid.Side(conf.Eps, pts.Dim)
	m := make(map[grid.Key][]int)
	for i := lo; i < hi; i++ {
		key := grid.KeyFor(pts.At(i), side)
		m[key] = append(m[key], i)
	}
	dest := make([][]spill.RunCell, k)
	for key, idx := range m {
		d := partitionOf(key, conf.Seed, k)
		dest[d] = append(dest[d], runCellOf(key, idx, pts))
	}
	var out []byte
	for d := 0; d < k; d++ {
		sortRunCells(dest[d])
		out = append(out, spill.EncodeRun(task, pts.Dim, dest[d])...)
	}
	return out, nil
}

// handleCellPartitioning is the remote reduce side of Phase I-1: the input
// is the concatenation, in ascending chunk order, of every chunk's frame
// for this partition; the output is one merged frame, cells sorted by key,
// each cell's ids the concatenation of the chunks' ascending runs (chunk
// index ranges are disjoint and ascending, so the merged ids are globally
// ascending — the exact order the in-process path produces).
func handleCellPartitioning(ws *engine.WorkerState, task int, input []byte) ([]byte, error) {
	pts, err := workerPoints(ws)
	if err != nil {
		return nil, err
	}
	runs, err := spill.DecodeRuns(input)
	if err != nil {
		return nil, err
	}
	merged := make(map[grid.Key]*spill.RunCell)
	var keys []grid.Key
	for _, r := range runs {
		for _, c := range r.Cells {
			mc, ok := merged[c.Key]
			if !ok {
				mc = &spill.RunCell{Key: c.Key}
				merged[c.Key] = mc
				keys = append(keys, c.Key)
			}
			mc.IDs = append(mc.IDs, c.IDs...)
			mc.Coords = append(mc.Coords, c.Coords...)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cells := make([]spill.RunCell, 0, len(keys))
	for _, key := range keys {
		cells = append(cells, *merged[key])
	}
	return spill.EncodeRun(task, pts.Dim, cells), nil
}

// partitionCells decodes one partition's merged frame into grid cells.
func partitionCells(input []byte) ([]*grid.Cell, error) {
	runs, err := spill.DecodeRuns(input)
	if err != nil {
		return nil, err
	}
	if len(runs) != 1 {
		return nil, fmt.Errorf("core: partition frame holds %d runs, want 1", len(runs))
	}
	cells := make([]*grid.Cell, 0, len(runs[0].Cells))
	for _, c := range runs[0].Cells {
		idx := make([]int, len(c.IDs))
		for i, id := range c.IDs {
			idx[i] = int(id)
		}
		cells = append(cells, &grid.Cell{Key: c.Key, Points: idx})
	}
	return cells, nil
}

// handleDictionaryBuild is remote Phase I-2 (Algorithm 2, part 2): build
// the partition's cell entries and return them RPD2-encoded; the driver
// decodes and concatenates every partition's shard into the global
// broadcast.
func handleDictionaryBuild(ws *engine.WorkerState, _ int, input []byte) ([]byte, error) {
	pts, err := workerPoints(ws)
	if err != nil {
		return nil, err
	}
	conf, err := workerConf(ws)
	if err != nil {
		return nil, err
	}
	cells, err := partitionCells(input)
	if err != nil {
		return nil, err
	}
	params := dict.Params{Eps: conf.Eps, Rho: conf.Rho, Dim: pts.Dim}
	entries := make([]dict.CellEntry, 0, len(cells))
	for _, c := range cells {
		entries = append(entries, dict.BuildEntry(c, pts, params))
	}
	return dict.EncodeEntries(entries, params), nil
}

// handleDictionaryLoad decodes and indexes the pushed dictionary blob on
// the worker (the per-executor broadcast load the simulator runs as its
// own stage), returning the cell count as an 8-byte ack the driver can
// cross-check.
func handleDictionaryLoad(ws *engine.WorkerState, _ int, _ []byte) ([]byte, error) {
	d, err := workerDict(ws)
	if err != nil {
		return nil, err
	}
	var numCells int64
	for _, sd := range d.Subs {
		numCells += int64(len(sd.Entries))
	}
	ack := make([]byte, 8)
	binary.BigEndian.PutUint64(ack, uint64(numCells))
	return ack, nil
}

// handlePhase2 is remote Phase II (Algorithm 3): run phase2Task over the
// partition's cells against the worker's dictionary copy. Input is a
// uint32 global cell count followed by the partition's merged frame;
// output is the phase-2 result record (ids, core flags, core-point lists,
// encoded subgraph) of encodePhase2Result.
func handlePhase2(ws *engine.WorkerState, _ int, input []byte) ([]byte, error) {
	if len(input) < 4 {
		return nil, fmt.Errorf("core: phase-2 input truncated (%d bytes)", len(input))
	}
	numCells := int(binary.BigEndian.Uint32(input))
	pts, err := workerPoints(ws)
	if err != nil {
		return nil, err
	}
	conf, err := workerConf(ws)
	if err != nil {
		return nil, err
	}
	d, err := workerDict(ws)
	if err != nil {
		return nil, err
	}
	cells, err := partitionCells(input[4:])
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Eps: conf.Eps, MinPts: conf.MinPts, Rho: conf.Rho,
		DisableBatching: conf.DisableBatching,
		DisableIndex:    conf.DisableIndex,
		DisableSoA:      conf.DisableSoA,
	}
	st := &partState{cells: cells}
	corePoint := make([]bool, pts.N())
	phase2Task(pts, cfg, st, d, numCells, corePoint)
	return encodePhase2Result(st), nil
}

// encodePhase2Result serialises one partition's Phase II output: per owned
// cell its dense dictionary id, core flag, and core-point indices, then
// the length-prefixed encoded subgraph. The core-point lists double as the
// global core flags: a point is core iff it appears in its owning cell's
// list.
func encodePhase2Result(st *partState) []byte {
	size := 4
	for ci := range st.cells {
		size += 4 + 1 + 4 + 4*len(st.corePts[ci])
	}
	g := st.subgraph.Encode()
	size += 4 + len(g)
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.cells)))
	for ci := range st.cells {
		buf = binary.BigEndian.AppendUint32(buf, uint32(st.ids[ci]))
		if st.cellCore[ci] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.corePts[ci])))
		for _, pi := range st.corePts[ci] {
			buf = binary.BigEndian.AppendUint32(buf, uint32(pi))
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(g)))
	buf = append(buf, g...)
	return buf
}

// decodePhase2Result fills st (whose cells are already decoded) from a
// phase-2 result record, marking core points in corePoint.
func decodePhase2Result(buf []byte, st *partState, n int, corePoint []bool) error {
	off := 0
	need := func(want int) error {
		if len(buf)-off < want {
			return fmt.Errorf("core: phase-2 result truncated at offset %d", off)
		}
		return nil
	}
	if err := need(4); err != nil {
		return err
	}
	numOwned := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if numOwned != len(st.cells) {
		return fmt.Errorf("core: phase-2 result covers %d cells, partition owns %d",
			numOwned, len(st.cells))
	}
	st.ids = make([]int32, numOwned)
	st.cellCore = make([]bool, numOwned)
	st.corePts = make([][]int, numOwned)
	for ci := 0; ci < numOwned; ci++ {
		if err := need(9); err != nil {
			return err
		}
		st.ids[ci] = int32(binary.BigEndian.Uint32(buf[off:]))
		off += 4
		switch buf[off] {
		case 0:
		case 1:
			st.cellCore[ci] = true
		default:
			return fmt.Errorf("core: phase-2 result cell %d has core flag %d", ci, buf[off])
		}
		off++
		npts := int(binary.BigEndian.Uint32(buf[off:]))
		off += 4
		if err := need(4 * npts); err != nil {
			return err
		}
		if npts > 0 {
			ids := make([]int, npts)
			for i := range ids {
				pi := int(binary.BigEndian.Uint32(buf[off:]))
				off += 4
				if pi < 0 || pi >= n {
					return fmt.Errorf("core: phase-2 result core point %d out of range [0,%d)", pi, n)
				}
				ids[i] = pi
				corePoint[pi] = true
			}
			st.corePts[ci] = ids
		}
	}
	if err := need(4); err != nil {
		return err
	}
	glen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if err := need(glen); err != nil {
		return err
	}
	g, err := graph.Decode(buf[off : off+glen])
	if err != nil {
		return err
	}
	off += glen
	if off != len(buf) {
		return fmt.Errorf("core: phase-2 result has %d trailing bytes", len(buf)-off)
	}
	st.subgraph = g
	return nil
}
