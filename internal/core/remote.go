package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"rpdbscan/internal/dict"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
	"rpdbscan/internal/spill"
)

// runProc is Run on the multi-process backend: every Phase I/II stage
// executes as a registered handler on the cluster's Transport (worker
// subprocesses over local sockets), while Phase III — the driver-side
// merge and labeling in the paper's architecture — runs through the exact
// code path the simulator uses. Stage-for-stage the structure mirrors Run;
// what travels differs: the input points and configuration are pushed once
// per worker up front, Phase I shuffle partitions cross the wire as RPS1
// spill frames, and the dictionary goes out through BroadcastChecked plus
// a per-chunk-verified push. The outputs are byte-identical to Run's —
// every remote handler is deterministic, shuffle merge order is fixed by
// ascending chunk then key order, and the differential battery
// (TestTransportEquivalence) pins labels, core flags, and edges against
// the in-process run.
func runProc(pts *geom.Points, cfg Config, cl *engine.Cluster) (*Result, error) {
	tr := cl.Transport
	if tr == nil {
		return nil, fmt.Errorf("rpdbscan: backend %q needs a Transport on the cluster", BackendProc)
	}
	n := pts.N()
	k := cfg.NumPartitions
	if k == 0 {
		k = cl.Workers
	}
	if k < 1 {
		k = 1
	}
	res := &Result{
		Labels:          make([]int, n),
		CorePoint:       make([]bool, n),
		PointsProcessed: int64(n),
	}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		res.Report = cl.Report()
		return res, nil
	}

	dim := pts.Dim
	params := dict.Params{Eps: cfg.Eps, Rho: cfg.Rho, Dim: dim}

	// ---- Phase I-0: ship the run configuration and the input points to
	// every worker process (the executor-side input split plus broadcast
	// variables of the Spark deployment). Each push is one engine stage
	// with one task per worker, so transfer cost, retries, and checksum
	// rejections are ledgered like any other stage's.
	confBytes, err := json.Marshal(wireConf{
		Eps: cfg.Eps, MinPts: cfg.MinPts, Rho: cfg.Rho,
		K: k, Seed: cfg.Seed, MaxCellsPerSubDict: cfg.MaxCellsPerSubDict,
		DisableBatching: cfg.DisableBatching,
		DisableIndex:    cfg.DisableIndex,
		DisableSoA:      cfg.DisableSoA,
	})
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: encode conf: %w", err)
	}
	cl.PushStage("I-0", "config-push", BlobConf,
		engine.NewPayload("I-0", "config-push", confBytes))
	cl.PushStage("I-0", "points-push", BlobPoints,
		engine.NewPayload("I-0", "points-push", EncodePoints(pts)))

	// ---- Phase I-1: pseudo random partitioning (Algorithm 2, part 1).
	// Map: each chunk task returns k RPS1 frames, one per destination
	// partition.
	asgOuts, _ := cl.RunStageRemote("I-1", "cell-assignment", HandlerCellAssign,
		make([][]byte, k))
	// Carve each chunk's output into its k destination frames and
	// concatenate per destination in ascending chunk order — the shuffle's
	// column read, moved to the driver because the workers share no disk.
	cols := make([][]byte, k)
	for t := 0; t < k; t++ {
		buf := asgOuts[t]
		for d := 0; d < k; d++ {
			sz, err := spill.FrameSize(buf)
			if err != nil {
				return nil, fmt.Errorf("rpdbscan: cell-assignment chunk %d frame %d: %w", t, d, err)
			}
			cols[d] = append(cols[d], buf[:sz]...)
			buf = buf[sz:]
		}
		if len(buf) != 0 {
			return nil, fmt.Errorf("rpdbscan: cell-assignment chunk %d has %d trailing bytes", t, len(buf))
		}
	}
	// Reduce: each partition merges its column into one sorted frame.
	partOuts, shuffle := cl.RunStageRemote("I-1", "cell-partitioning", HandlerCellPart, cols)
	parts := make([]*partState, k)
	for t := 0; t < k; t++ {
		cells, err := partitionCells(partOuts[t])
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: partition %d: %w", t, err)
		}
		parts[t] = &partState{cells: cells}
	}
	// Account the shuffle payload exactly as the in-process path does:
	// every point id crosses once, plus one key per cell.
	for _, st := range parts {
		for _, c := range st.cells {
			shuffle.Bytes += int64(8*len(c.Points) + len(c.Key))
		}
	}

	// ---- Phase I-2: cell dictionary building (Algorithm 2, part 2).
	dictOuts, _ := cl.RunStageRemote("I-2", "dictionary-build", HandlerDictBuild, partOuts)
	entriesPer := make([][]dict.CellEntry, k)
	for t, out := range dictOuts {
		entries, _, err := dict.DecodeEntries(out)
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: dictionary shard %d: %w", t, err)
		}
		entriesPer[t] = entries
	}
	var stats dict.Stats
	payload := cl.BroadcastChecked("I-2", "dictionary-broadcast", func() []byte {
		var all []dict.CellEntry
		for _, e := range entriesPer {
			all = append(all, e...)
		}
		stats = dict.StatsOf(all, params)
		return dict.EncodeEntries(all, params)
	})
	res.DictSizeBits = stats.SizeBits
	res.DictBytes = payload.Len()
	res.NumCells = stats.NumCells
	res.NumSubCells = stats.NumSubCells
	// Every worker process is an executor: the dictionary is pushed once
	// per worker through the per-chunk-checksummed channel, then loaded
	// (decoded and indexed) once per worker.
	cl.PushStage("I-2", "dictionary-push", BlobDict, payload)
	loadAcks, _ := cl.RunStageRemote("I-2", "dictionary-load", HandlerDictLoad,
		make([][]byte, tr.Workers()))
	for w, ack := range loadAcks {
		if len(ack) != 8 {
			return nil, fmt.Errorf("rpdbscan: worker %d dictionary-load ack is %d bytes", w, len(ack))
		}
		if got := int64(binary.BigEndian.Uint64(ack)); got != int64(stats.NumCells) {
			return nil, fmt.Errorf("rpdbscan: worker %d loaded %d cells, broadcast holds %d",
				w, got, stats.NumCells)
		}
	}

	// ---- Phase II: core marking and subgraph building (Algorithm 3).
	numCells := stats.NumCells
	in2 := make([][]byte, k)
	for t := range in2 {
		in2[t] = make([]byte, 4, 4+len(partOuts[t]))
		binary.BigEndian.PutUint32(in2[t], uint32(numCells))
		in2[t] = append(in2[t], partOuts[t]...)
	}
	p2Outs, _ := cl.RunStageRemote("II", "cell-graph-construction", HandlerPhase2, in2)
	subgraphs := make([]*graph.Graph, k)
	for t := 0; t < k; t++ {
		if err := decodePhase2Result(p2Outs[t], parts[t], n, res.CorePoint); err != nil {
			return nil, fmt.Errorf("rpdbscan: phase-2 result %d: %w", t, err)
		}
		subgraphs[t] = parts[t].subgraph
	}

	// ---- Phase III: graph merging and point labeling run driver-side
	// through the same code as the in-process path.
	finalize := mergePhase(cl, cfg, numCells, subgraphs, res)
	labelPhase(cl, cfg, pts, parts, numCells, finalize, res)

	res.Report = cl.Report()
	return res, nil
}
