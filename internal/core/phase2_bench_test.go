package core

// BenchmarkPhaseII times cell-graph construction only (Algorithm 3):
// partitioning and the dictionary are built once in setup, and each
// iteration replays every partition's phase2Task. The blocked/batched/
// per-point triple quantifies the SoA-kernel and cell-batching speedups on
// the skewed synthetic workload; cmd/rpbench's phase2 experiment reports
// the same contrast from the engine's stage accounting, and CI compares
// the blocked mode's ns/op against the checked-in BENCH_baseline.json.

import (
	"sort"
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dict"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"
)

type phase2Fixture struct {
	pts      *geom.Points
	cfg      Config
	parts    []*partState
	d        *dict.Dictionary
	numCells int
	core     []bool
}

// newPhase2Fixture replays Phase I serially: cell assignment, pseudo
// random partitioning, and one shared decoded dictionary.
func newPhase2Fixture(b *testing.B, n, k int) *phase2Fixture {
	b.Helper()
	pts := datagen.Mixture(datagen.MixtureConfig{
		N: n, Dim: 2, Components: 10, Span: 100, Alpha: 3,
	}, 1)
	cfg := Config{Eps: 5.0, MinPts: 20, Rho: 0.01, NumPartitions: k}
	side := grid.Side(cfg.Eps, pts.Dim)
	params := dict.Params{Eps: cfg.Eps, Rho: cfg.Rho, Dim: pts.Dim}
	byKey := make(map[grid.Key][]int)
	for i := 0; i < pts.N(); i++ {
		key := grid.KeyFor(pts.At(i), side)
		byKey[key] = append(byKey[key], i)
	}
	perPart := make([][]grid.Key, k)
	for key := range byKey {
		p := partitionOf(key, cfg.Seed, k)
		perPart[p] = append(perPart[p], key)
	}
	parts := make([]*partState, k)
	var entries []dict.CellEntry
	for t, keys := range perPart {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		st := &partState{cells: make([]*grid.Cell, 0, len(keys))}
		for _, key := range keys {
			c := &grid.Cell{Key: key, Points: byKey[key]}
			st.cells = append(st.cells, c)
			entries = append(entries, dict.BuildEntry(c, pts, params))
		}
		parts[t] = st
	}
	d, err := dict.Decode(dict.EncodeEntries(entries, params), cfg.MaxCellsPerSubDict)
	if err != nil {
		b.Fatal(err)
	}
	return &phase2Fixture{
		pts: pts, cfg: cfg, parts: parts, d: d,
		numCells: len(entries), core: make([]bool, pts.N()),
	}
}

func (f *phase2Fixture) run(disableSoA, disableBatching bool) {
	cfg := f.cfg
	cfg.DisableSoA = disableSoA
	cfg.DisableBatching = disableBatching
	for i := range f.core {
		f.core[i] = false
	}
	for _, st := range f.parts {
		phase2Task(f.pts, cfg, st, f.d, f.numCells, f.core)
	}
}

func BenchmarkPhaseII(b *testing.B) {
	f := newPhase2Fixture(b, 20000, 40)
	for _, mode := range []struct {
		name            string
		disableSoA      bool
		disableBatching bool
	}{
		{name: "blocked"},
		{name: "batched", disableSoA: true},
		{name: "per-point", disableBatching: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.run(mode.disableSoA, mode.disableBatching)
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N*f.pts.N())/sec, "points/sec")
			}
		})
	}
}
