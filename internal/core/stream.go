package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync/atomic"

	"rpdbscan/internal/dict"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
	"rpdbscan/internal/grid"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/pointio"
	"rpdbscan/internal/spill"
)

// DefaultChunkSize is the streamed chunk size, in points, when
// StreamConfig.ChunkSize is unset.
const DefaultChunkSize = 1 << 16

// StreamConfig configures the out-of-core pipeline. The embedded Config
// carries the algorithm parameters; streaming adds only memory knobs, so a
// streamed run and an in-memory run of the same Config are comparable.
type StreamConfig struct {
	Config
	// ChunkSize is the number of points ingested per chunk; <= 0 selects
	// DefaultChunkSize. Peak Phase I memory is proportional to
	// ChunkSize * parallelism, independent of N.
	ChunkSize int
	// SpillDir is the parent directory for the run's temporary spill
	// directory; empty means the OS default. The spill directory is
	// removed when RunStream returns.
	SpillDir string
	// Probe, when set, is called at memory-relevant moments with a label
	// ("chunk" per ingested chunk, then "spill-closed", "dict-built",
	// "dict-loaded", "phase2", "done"). The bench harness samples the live
	// heap here to certify the Phase I memory bound.
	Probe func(label string)
}

// StreamStats instruments one RunStream execution.
type StreamStats struct {
	// Chunks is the number of input chunks ingested.
	Chunks int
	// SpillBytes is the total run-record payload written across all
	// partition spill files.
	SpillBytes int64
	// SpillReloads counts spill-file scans after the initial write: the
	// dictionary build, the Phase II rematerialisation, and the core-point
	// gather each re-read partitions from disk instead of holding them in
	// memory.
	SpillReloads int64
}

// RunStream executes RP-DBSCAN over a single-pass point stream, producing
// output byte-identical to Run on the same points — the differential test
// battery asserts exactly that. The pipeline differs only in where data
// lives:
//
//   - Phase I-1 ingests bounded chunks and shuffles them map-side to k
//     checksummed spill files (one per partition), so peak memory during
//     ingestion is proportional to ChunkSize * parallelism, never N.
//   - Phase I-2 builds each partition's dictionary entries by scanning its
//     spill file one run at a time through dict.StreamBuilder.
//   - Phase II rematerialises one partition at a time from its spill file,
//     runs the unchanged phase2Task on partition-local points, then keeps
//     only what Phase III needs (cell membership, core-point ids, non-core
//     cell coordinates) and releases the rest.
//   - Phase III-2 re-reads core-point coordinates of predecessor cells from
//     the spill files instead of holding all coordinates resident.
//
// Determinism: chunk indices are assigned by the serial reader, each spill
// writer deduplicates appends by chunk (engine retries and speculative
// copies are no-ops), and loads sort runs by chunk index — so every
// per-cell point list comes back in ascending global order no matter how
// chaotic the execution was.
func RunStream(src pointio.Source, cfg StreamConfig, cl *engine.Cluster) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dim := src.Dim()
	if dim < 1 {
		return nil, fmt.Errorf("rpdbscan: source dimension must be >= 1, got %d", dim)
	}
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	probe := cfg.Probe
	if probe == nil {
		probe = func(string) {}
	}
	k := cfg.NumPartitions
	if k == 0 {
		k = cl.Workers
	}
	if k < 1 {
		k = 1
	}
	side := grid.Side(cfg.Eps, dim)
	params := dict.Params{Eps: cfg.Eps, Rho: cfg.Rho, Dim: dim}

	spillDir, err := os.MkdirTemp(cfg.SpillDir, "rpdbscan-spill-*")
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: spill dir: %w", err)
	}
	defer os.RemoveAll(spillDir)
	writers := make([]*spill.Writer, k)
	paths := make([]string, k)
	for t := range writers {
		paths[t] = filepath.Join(spillDir, fmt.Sprintf("part-%03d.spill", t))
		if writers[t], err = spill.NewWriter(paths[t]); err != nil {
			return nil, fmt.Errorf("rpdbscan: spill writer: %w", err)
		}
	}
	defer func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
	}()

	// ---- Phase I-1: streamed pseudo random partitioning. The serial pull
	// reads one chunk into a fresh buffer (retries and speculative copies
	// may re-run a body after later chunks started, so buffers are never
	// shared) and assigns the chunk's contiguous global index range; the
	// concurrent body maps points to cells, deals cells to partitions, and
	// appends one run per touched partition. AppendRun deduplicates by
	// chunk, making the body idempotent as the engine requires.
	var nPoints int64 // owned by the serial pull
	streamStage, serr := cl.StreamStage("I-1", "stream-spill", func(task int) (func(), error) {
		buf := make([]float64, chunkSize*dim)
		m, err := src.Next(buf)
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: stream chunk %d: %w", task, err)
		}
		base := nPoints
		nPoints += int64(m)
		obs.Histograms.StreamChunkPoints.Record(int64(m))
		probe("chunk")
		return func() {
			cells := make(map[grid.Key][]int)
			for i := 0; i < m; i++ {
				key := grid.KeyFor(buf[i*dim:(i+1)*dim], side)
				cells[key] = append(cells[key], i)
			}
			dest := make([][]spill.RunCell, k)
			for key, idx := range cells {
				rc := spill.RunCell{
					Key:    key,
					IDs:    make([]int64, len(idx)),
					Coords: make([]float64, 0, len(idx)*dim),
				}
				for j, li := range idx {
					rc.IDs[j] = base + int64(li)
					rc.Coords = append(rc.Coords, buf[li*dim:(li+1)*dim]...)
				}
				d := partitionOf(key, cfg.Seed, k)
				dest[d] = append(dest[d], rc)
			}
			for d, cs := range dest {
				if len(cs) == 0 {
					continue
				}
				// Deterministic record bytes regardless of map order.
				sort.Slice(cs, func(i, j int) bool { return cs[i].Key < cs[j].Key })
				if _, err := writers[d].AppendRun(task, dim, cs); err != nil {
					// Surfaces through the engine retry budget as an error.
					panic(err)
				}
			}
		}, nil
	})
	if serr != nil {
		return nil, serr
	}
	n := int(nPoints)
	var spillBytes int64
	for t, w := range writers {
		spillBytes += w.Bytes()
		writers[t] = nil
		if cerr := w.Close(); cerr != nil {
			return nil, fmt.Errorf("rpdbscan: close spill %d: %w", t, cerr)
		}
	}
	streamStage.Bytes = spillBytes
	probe("spill-closed")

	res := &Result{
		Labels:          make([]int, n),
		CorePoint:       make([]bool, n),
		PointsProcessed: nPoints,
		Stream: &StreamStats{
			Chunks:     len(streamStage.Costs),
			SpillBytes: spillBytes,
		},
	}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		res.Report = cl.Report()
		return res, nil
	}
	var reloads atomic.Int64

	// ---- Phase I-2: dictionary building from the spill files. Each task
	// streams its partition's runs one record at a time into the
	// order-independent StreamBuilder; only the cell summaries — never the
	// partition's points — are resident.
	entriesPer := make([][]dict.CellEntry, k)
	buildErrs := make([]error, k)
	cl.RunStage("I-2", "dictionary-build", k, func(t int) {
		b := dict.NewStreamBuilder(params)
		err := spill.ScanRuns(paths[t], func(r *spill.Run) error {
			if r.Dim != dim {
				return fmt.Errorf("rpdbscan: spill run dim %d, want %d", r.Dim, dim)
			}
			for _, c := range r.Cells {
				b.Add(c.Key, c.Coords)
			}
			return nil
		})
		if err != nil {
			buildErrs[t] = err
			return
		}
		reloads.Add(1)
		entriesPer[t] = b.Entries()
	})
	for _, err := range buildErrs {
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: dictionary build: %w", err)
		}
	}
	probe("dict-built")
	var stats dict.Stats
	payload := cl.BroadcastChecked("I-2", "dictionary-broadcast", func() []byte {
		var all []dict.CellEntry
		for _, e := range entriesPer {
			all = append(all, e...)
		}
		stats = dict.StatsOf(all, params)
		return dict.EncodeEntries(all, params)
	})
	res.DictSizeBits = stats.SizeBits
	res.DictBytes = payload.Len()
	res.NumCells = stats.NumCells
	res.NumSubCells = stats.NumSubCells
	numExec := cl.ExecutorCount()
	if numExec > k {
		numExec = k
	}
	dicts := make([]*dict.Dictionary, numExec)
	loadErrs := make([]error, numExec)
	cl.RunStage("I-2", "dictionary-load", numExec, func(t int) {
		buf, err := cl.Fetch(payload, t)
		if err == nil {
			dicts[t], err = dict.Decode(buf, cfg.MaxCellsPerSubDict)
		}
		loadErrs[t] = err
	})
	for _, err := range loadErrs {
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: dictionary load: %w", err)
		}
	}
	probe("dict-loaded")

	// ---- Phase II: core marking and subgraph building, one rematerialised
	// partition at a time. Each task reloads its spill file, rebuilds the
	// partition's cells over partition-local point indices (runs arrive
	// chunk-sorted, so per-cell lists are in ascending global order exactly
	// as Run builds them), and hands the unchanged phase2Task a local point
	// set. Afterwards it keeps only what Phase III needs — global cell
	// membership, core-point ids, and the coordinates of non-core cells —
	// and lets the partition's point set go.
	numCells := stats.NumCells
	parts := make([]*partState, k)
	noncoreCoords := make([][][]float64, k)
	phase2Errs := make([]error, k)
	cl.RunStage("II", "cell-graph-construction", k, func(t int) {
		runs, err := spill.LoadFile(paths[t])
		if err != nil {
			phase2Errs[t] = err
			return
		}
		reloads.Add(1)
		frags := make(map[grid.Key][]*spill.RunCell)
		var keys []grid.Key
		total := 0
		for _, r := range runs {
			for i := range r.Cells {
				c := &r.Cells[i]
				if _, ok := frags[c.Key]; !ok {
					keys = append(keys, c.Key)
				}
				frags[c.Key] = append(frags[c.Key], c)
				total += len(c.IDs)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		pts := &geom.Points{Dim: dim, Coords: make([]float64, 0, total*dim)}
		gids := make([]int, 0, total)
		st := &partState{cells: make([]*grid.Cell, 0, len(keys))}
		for _, key := range keys {
			cell := &grid.Cell{Key: key}
			for _, f := range frags[key] {
				for _, id := range f.IDs {
					cell.Points = append(cell.Points, len(gids))
					gids = append(gids, int(id))
				}
				pts.Coords = append(pts.Coords, f.Coords...)
			}
			st.cells = append(st.cells, cell)
		}
		localCore := make([]bool, len(gids))
		phase2Task(pts, cfg.Config, st, dicts[t%numExec], numCells, localCore)
		nc := make([][]float64, len(st.cells))
		for ci, cell := range st.cells {
			if st.cellCore[ci] {
				continue
			}
			flat := make([]float64, 0, len(cell.Points)*dim)
			for _, li := range cell.Points {
				flat = append(flat, pts.At(li)...)
			}
			nc[ci] = flat
		}
		noncoreCoords[t] = nc
		for _, cell := range st.cells {
			for j, li := range cell.Points {
				cell.Points[j] = gids[li]
			}
		}
		for ci := range st.corePts {
			for j, li := range st.corePts[ci] {
				st.corePts[ci][j] = gids[li]
			}
		}
		for li, c := range localCore {
			if c {
				res.CorePoint[gids[li]] = true
			}
		}
		parts[t] = st
	})
	for _, err := range phase2Errs {
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: phase II reload: %w", err)
		}
	}
	for i := range dicts {
		dicts[i] = nil // release the executors' dictionary copies
	}
	probe("phase2")

	// ---- Phase III-1: graph merging, identical to Run (flat lock-free by
	// default, tournament under cfg.SerialMerge; see merge.go).
	subgraphs := make([]*graph.Graph, k)
	for i, st := range parts {
		subgraphs[i] = st.subgraph
	}
	finalize := mergePhase(cl, cfg.Config, numCells, subgraphs, res)

	// ---- Phase III-2: point labeling. Coordinates of predecessor cells'
	// core points were released with the partition point sets, so a gather
	// stage re-reads them from the spill files first — only partitions
	// owning a needed cell pay a reload.
	var comp []int32
	var preds map[int32][]int32
	needed := make(map[int32]bool)
	cl.Serial("III-2", "label-preparation", func() {
		out := finalize()
		comp, preds = out.comp, out.preds
		for _, ps := range preds {
			for _, p := range ps {
				needed[p] = true
			}
		}
	})
	coreCoords := make([][]float64, numCells)
	gatherErrs := make([]error, k)
	cl.RunStage("III-2", "core-point-gather", k, func(t int) {
		st := parts[t]
		type target struct {
			slot int32
			core []int // ascending global ids of the cell's core points
		}
		want := make(map[grid.Key]target)
		for ci, cell := range st.cells {
			if id := st.ids[ci]; needed[id] && st.cellCore[ci] {
				want[cell.Key] = target{slot: id, core: st.corePts[ci]}
			}
		}
		if len(want) == 0 {
			return // no reload: this partition owns no predecessor cell
		}
		for _, tg := range want {
			coreCoords[tg.slot] = make([]float64, 0, len(tg.core)*dim)
		}
		err := spill.ScanRuns(paths[t], func(r *spill.Run) error {
			for i := range r.Cells {
				c := &r.Cells[i]
				tg, ok := want[c.Key]
				if !ok {
					continue
				}
				for j, id := range c.IDs {
					if _, found := slices.BinarySearch(tg.core, int(id)); found {
						coreCoords[tg.slot] = append(coreCoords[tg.slot], c.Coords[j*dim:(j+1)*dim]...)
					}
				}
			}
			return nil
		})
		if err != nil {
			gatherErrs[t] = err
			return
		}
		reloads.Add(1)
	})
	for _, err := range gatherErrs {
		if err != nil {
			return nil, fmt.Errorf("rpdbscan: core-point gather: %w", err)
		}
	}
	cl.RunStage("III-2", "point-labeling", k, func(t int) {
		st := parts[t]
		eps2 := cfg.Eps * cfg.Eps
		for ci, cell := range st.cells {
			if st.cellCore[ci] {
				cid := int(comp[st.ids[ci]])
				for _, gi := range cell.Points {
					res.Labels[gi] = cid
				}
				continue
			}
			pcs := preds[st.ids[ci]]
			if len(pcs) == 0 {
				continue // noise cell
			}
			flat := noncoreCoords[t][ci]
			for j, gi := range cell.Points {
				qp := flat[j*dim : (j+1)*dim]
				for _, pk := range pcs {
					if comp[pk] < 0 {
						continue
					}
					found := false
					cc := coreCoords[pk]
					for off := 0; off+dim <= len(cc); off += dim {
						if geom.Dist2(qp, cc[off:off+dim]) <= eps2 {
							res.Labels[gi] = int(comp[pk])
							found = true
							break
						}
					}
					if found {
						break
					}
				}
			}
		}
	})

	res.Stream.SpillReloads = reloads.Load()
	res.Report = cl.Report()
	probe("done")
	return res, nil
}
