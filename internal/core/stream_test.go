package core

import (
	"slices"
	"testing"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/pointio"
)

// assertStreamMatches fails unless the streamed result is identical —
// labels, core flags, cluster count, and merge-round edge totals — to the
// in-memory reference.
func assertStreamMatches(t *testing.T, tag string, want, got *Result) {
	t.Helper()
	if !slices.Equal(want.Labels, got.Labels) {
		t.Fatalf("%s: labels diverge from Run", tag)
	}
	if !slices.Equal(want.CorePoint, got.CorePoint) {
		t.Fatalf("%s: core flags diverge from Run", tag)
	}
	if want.NumClusters != got.NumClusters {
		t.Fatalf("%s: NumClusters %d, want %d", tag, got.NumClusters, want.NumClusters)
	}
	if !slices.Equal(want.EdgesPerRound, got.EdgesPerRound) {
		t.Fatalf("%s: merge rounds diverge: %v vs %v", tag, got.EdgesPerRound, want.EdgesPerRound)
	}
}

// TestRunStreamEquivalence is the heart of the differential battery: for
// every combination of chunk size (including the degenerate one point per
// chunk), worker count, and partitioning seed, RunStream must reproduce
// Run's labels and core flags exactly — not approximately — because both
// pipelines shuffle the same cells to the same partitions in the same
// ascending point order.
func TestRunStreamEquivalence(t *testing.T) {
	pts := datagen.Mixture(datagen.MixtureConfig{
		N: 1200, Dim: 2, Components: 4, Span: 30, Alpha: 1, NoiseFrac: 0.08,
	}, 11)
	for _, seed := range []int64{1, 2, 3} {
		cfg := Config{Eps: 0.8, MinPts: 8, Rho: 0.01, NumPartitions: 6, Seed: seed}
		want, err := Run(pts, cfg, engine.New(6))
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 173, 1 << 20} {
			for _, workers := range []int{3, 8} {
				res, err := RunStream(pointio.FromPoints(pts), StreamConfig{
					Config:    cfg,
					ChunkSize: chunk,
					SpillDir:  t.TempDir(),
				}, engine.New(workers))
				if err != nil {
					t.Fatalf("seed %d chunk %d workers %d: %v", seed, chunk, workers, err)
				}
				tag := "seed/chunk/workers combination"
				assertStreamMatches(t, tag, want, res)
				wantChunks := (pts.N() + chunk - 1) / chunk
				if res.Stream == nil || res.Stream.Chunks != wantChunks {
					t.Fatalf("stream stats report %+v chunks, want %d", res.Stream, wantChunks)
				}
				if res.Stream.SpillBytes <= 0 {
					t.Fatal("no spill bytes recorded")
				}
				// Dictionary build and Phase II each reload every
				// partition; the gather may add more.
				if res.Stream.SpillReloads < int64(2*cfg.NumPartitions) {
					t.Fatalf("only %d spill reloads recorded", res.Stream.SpillReloads)
				}
			}
		}
	}
}

// TestRunStreamEquivalenceUnderChaos reruns the differential check with the
// deterministic chaos injector failing task attempts, inflating stragglers
// (which launches speculative body re-runs), and corrupting broadcast
// chunks: the spill writer's per-chunk dedup and the stage bodies'
// idempotence must keep the streamed output identical anyway.
func TestRunStreamEquivalenceUnderChaos(t *testing.T) {
	pts := datagen.Chameleon(2000, 4)
	cfg := Config{Eps: 1.2, MinPts: 10, Rho: 0.01, NumPartitions: 5, Seed: 2}
	want, err := Run(pts, cfg, engine.New(5))
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.MustNew(chaos.Config{
		Seed:          7,
		FailProb:      0.2,
		StragglerProb: 0.15,
		CorruptProb:   0.2,
	})
	cl := engine.New(5)
	cl.Injector = inj
	res, err := RunStream(pointio.FromPoints(pts), StreamConfig{
		Config:    cfg,
		ChunkSize: 311,
		SpillDir:  t.TempDir(),
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	assertStreamMatches(t, "chaos", want, res)
	faults := res.Report.TotalFaults()
	if faults.InjectedFailures == 0 {
		t.Fatal("chaos injected no failures — the test exercised nothing")
	}
	if s := inj.Stats(); s.Failures == 0 {
		t.Fatal("injector tally empty")
	}
}

// TestRunStreamEmptySource: a stream with zero points yields an empty,
// well-formed result.
func TestRunStreamEmptySource(t *testing.T) {
	empty := geom.NewPoints(2, 0)
	res, err := RunStream(pointio.FromPoints(empty), StreamConfig{
		Config:   Config{Eps: 1, MinPts: 2, Rho: 0.01},
		SpillDir: t.TempDir(),
	}, engine.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 0 || len(res.CorePoint) != 0 || res.NumClusters != 0 {
		t.Fatalf("empty stream produced %+v", res)
	}
	if res.Stream == nil || res.Stream.Chunks != 0 {
		t.Fatalf("empty stream stats: %+v", res.Stream)
	}
}

// TestRunStreamProbeAndValidation: the probe hook fires at every declared
// stage boundary, and configuration errors surface before any spill I/O.
func TestRunStreamProbeAndValidation(t *testing.T) {
	if _, err := RunStream(pointio.FromPoints(geom.NewPoints(2, 0)), StreamConfig{
		Config: Config{Eps: -1, MinPts: 2, Rho: 0.01},
	}, engine.New(2)); err == nil {
		t.Fatal("invalid Eps accepted")
	}
	pts := datagen.Blobs(300, 3, 0.3, 5)
	seen := make(map[string]int)
	_, err := RunStream(pointio.FromPoints(pts), StreamConfig{
		Config:    Config{Eps: 0.4, MinPts: 5, Rho: 0.01, NumPartitions: 3},
		ChunkSize: 64,
		SpillDir:  t.TempDir(),
		Probe:     func(label string) { seen[label]++ },
	}, engine.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"spill-closed", "dict-built", "dict-loaded", "phase2", "done"} {
		if seen[label] != 1 {
			t.Fatalf("probe %q fired %d times", label, seen[label])
		}
	}
	if seen["chunk"] != (300+63)/64 {
		t.Fatalf("probe saw %d chunks", seen["chunk"])
	}
}
