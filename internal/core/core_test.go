package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"

	"rpdbscan/internal/testutil"
)

func run(t *testing.T, pts *geom.Points, cfg Config) *Result {
	t.Helper()
	res, err := Run(pts, cfg, engine.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{{0, 0}}, 2)
	cases := []Config{
		{Eps: 0, MinPts: 3, Rho: 0.01},
		{Eps: 1, MinPts: 0, Rho: 0.01},
		{Eps: 1, MinPts: 3, Rho: 0},
		{Eps: 1, MinPts: 3, Rho: 0.01, NumPartitions: -1},
	}
	for i, cfg := range cases {
		if _, err := Run(pts, cfg, engine.New(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res := run(t, geom.NewPoints(2, 0), Config{Eps: 1, MinPts: 3, Rho: 0.01})
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatalf("empty input: %+v", res)
	}
}

func TestSingleTightCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := geom.NewPoints(2, 0)
	row := make([]float64, 2)
	for i := 0; i < 200; i++ {
		row[0], row[1] = rng.NormFloat64()*0.2, rng.NormFloat64()*0.2
		pts.Append(row)
	}
	res := run(t, pts, Config{Eps: 0.5, MinPts: 5, Rho: 0.01, NumPartitions: 4})
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != 0 {
			t.Fatalf("point %d labelled %d, want 0", i, l)
		}
	}
	if res.PointsProcessed != 200 {
		t.Fatalf("PointsProcessed = %d, want 200 (no duplication)", res.PointsProcessed)
	}
}

func TestAllNoise(t *testing.T) {
	// Far-apart single points: nothing is core.
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 20; i++ {
		pts.Append([]float64{float64(i) * 100, 0})
	}
	res := run(t, pts, Config{Eps: 1, MinPts: 3, Rho: 0.01, NumPartitions: 3})
	if res.NumClusters != 0 {
		t.Fatalf("NumClusters = %d, want 0", res.NumClusters)
	}
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatal("isolated point not noise")
		}
	}
}

func equivalence(t *testing.T, pts *geom.Points, eps float64, minPts int, rho float64, wantRI float64) {
	t.Helper()
	exact := dbscan.Run(pts, eps, minPts)
	approx := run(t, pts, Config{Eps: eps, MinPts: minPts, Rho: rho, NumPartitions: 5})
	ri := metrics.RandIndex(exact.Labels, approx.Labels)
	if ri < wantRI {
		t.Fatalf("RandIndex = %.4f, want >= %.4f (exact clusters %d, approx %d)",
			ri, wantRI, exact.NumClusters, approx.NumClusters)
	}
}

func TestEquivalenceMoons(t *testing.T) {
	pts := datagen.Moons(2000, 0.04, 7)
	equivalence(t, pts, 0.12, 10, 0.01, 0.999)
}

func TestEquivalenceBlobs(t *testing.T) {
	pts := datagen.Blobs(3000, 4, 0.4, 8)
	equivalence(t, pts, 0.35, 10, 0.01, 0.999)
}

func TestEquivalenceChameleon(t *testing.T) {
	pts := datagen.Chameleon(4000, 9)
	equivalence(t, pts, 1.2, 12, 0.01, 0.99)
}

func TestEquivalence3D(t *testing.T) {
	pts := datagen.Mixture(datagen.MixtureConfig{
		N: 3000, Dim: 3, Components: 8, Span: 40, Alpha: 1,
	}, 10)
	equivalence(t, pts, 1.0, 10, 0.01, 0.99)
}

func TestPartitionCountInvariance(t *testing.T) {
	pts := datagen.Blobs(1500, 3, 0.4, 4)
	cfg := Config{Eps: 0.4, MinPts: 8, Rho: 0.01}
	var base *Result
	for _, k := range []int{1, 2, 7, 16} {
		cfg.NumPartitions = k
		res := run(t, pts, cfg)
		if base == nil {
			base = res
			continue
		}
		if ri := metrics.RandIndex(base.Labels, res.Labels); ri != 1 {
			t.Fatalf("k=%d changed the clustering: RandIndex=%.6f", k, ri)
		}
	}
}

func TestSeedInvariance(t *testing.T) {
	pts := datagen.Moons(1200, 0.04, 2)
	cfg := Config{Eps: 0.12, MinPts: 8, Rho: 0.01, NumPartitions: 6}
	a := run(t, pts, cfg)
	cfg.Seed = 999
	b := run(t, pts, cfg)
	if ri := metrics.RandIndex(a.Labels, b.Labels); ri != 1 {
		t.Fatalf("partitioning seed changed the clustering: RandIndex=%.6f", ri)
	}
}

func TestRhoSweepAccuracyImproves(t *testing.T) {
	// Coarser rho may cost accuracy; rho=0.01 should be at least as good
	// as rho=0.25 against exact DBSCAN (Table 4's trend).
	pts := datagen.Chameleon(3000, 11)
	exact := dbscan.Run(pts, 1.2, 12)
	riOf := func(rho float64) float64 {
		res := run(t, pts, Config{Eps: 1.2, MinPts: 12, Rho: rho, NumPartitions: 4})
		return metrics.RandIndex(exact.Labels, res.Labels)
	}
	coarse := riOf(0.5)
	fine := riOf(0.01)
	if fine < coarse-1e-9 {
		t.Fatalf("rho=0.01 (RI %.4f) worse than rho=0.5 (RI %.4f)", fine, coarse)
	}
	if fine < 0.99 {
		t.Fatalf("rho=0.01 RI = %.4f, want >= 0.99", fine)
	}
}

func TestReportStagesAndPhases(t *testing.T) {
	pts := datagen.Blobs(500, 3, 0.4, 5)
	res := run(t, pts, Config{Eps: 0.4, MinPts: 8, Rho: 0.05, NumPartitions: 4})
	for _, name := range []string{
		"cell-assignment", "cell-partitioning", "dictionary-build",
		"dictionary-broadcast", "dictionary-load",
		"cell-graph-construction", "label-preparation", "point-labeling",
	} {
		if res.Report.Stage(name) == nil {
			t.Fatalf("missing stage %q", name)
		}
	}
	_, order := res.Report.PhaseBreakdown()
	want := []string{"I-1", "I-2", "II", "III-1", "III-2"}
	if len(order) != len(want) {
		t.Fatalf("phases = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("phases = %v, want %v", order, want)
		}
	}
	if res.Report.Stage("cell-graph-construction").Imbalance() < 1 {
		t.Fatal("imbalance below 1")
	}
}

func TestEdgesPerRoundMonotone(t *testing.T) {
	pts := datagen.Mixture(datagen.MixtureConfig{
		N: 2000, Dim: 2, Components: 6, Span: 30, Alpha: 1,
	}, 6)
	res := run(t, pts, Config{Eps: 0.8, MinPts: 10, Rho: 0.01, NumPartitions: 8})
	if len(res.EdgesPerRound) < 2 {
		t.Fatalf("EdgesPerRound = %v", res.EdgesPerRound)
	}
	for i := 1; i < len(res.EdgesPerRound); i++ {
		if res.EdgesPerRound[i] > res.EdgesPerRound[i-1] {
			t.Fatalf("edge counts increased: %v", res.EdgesPerRound)
		}
	}
	if res.EdgesPerRound[0] == 0 {
		t.Fatal("no edges before merging on a clustered set")
	}
}

func TestDictionaryAccounting(t *testing.T) {
	pts := datagen.Blobs(800, 3, 0.4, 3)
	res := run(t, pts, Config{Eps: 0.4, MinPts: 8, Rho: 0.01, NumPartitions: 4})
	if res.NumCells == 0 || res.NumSubCells < res.NumCells {
		t.Fatalf("cell totals wrong: %d / %d", res.NumCells, res.NumSubCells)
	}
	if res.DictSizeBits <= 0 || res.DictBytes <= 0 {
		t.Fatalf("dictionary sizes not recorded: bits=%d bytes=%d", res.DictSizeBits, res.DictBytes)
	}
	bcast := res.Report.Stage("dictionary-broadcast")
	if bcast.Bytes != int64(res.DictBytes) {
		t.Fatalf("broadcast bytes %d != DictBytes %d", bcast.Bytes, res.DictBytes)
	}
}

func TestCoreFlagsCloseToExact(t *testing.T) {
	pts := datagen.Moons(1500, 0.04, 3)
	exact := dbscan.Run(pts, 0.12, 10)
	res := run(t, pts, Config{Eps: 0.12, MinPts: 10, Rho: 0.01, NumPartitions: 4})
	diff := 0
	for i := range exact.CorePoint {
		if exact.CorePoint[i] != res.CorePoint[i] {
			diff++
		}
	}
	if frac := float64(diff) / float64(pts.N()); frac > 0.02 {
		t.Fatalf("core flags differ on %.2f%% of points", frac*100)
	}
}

func TestDefragmentedDictEquivalence(t *testing.T) {
	pts := datagen.Blobs(1500, 4, 0.4, 12)
	cfg := Config{Eps: 0.4, MinPts: 8, Rho: 0.01, NumPartitions: 4}
	a := run(t, pts, cfg)
	cfg.MaxCellsPerSubDict = 16
	b := run(t, pts, cfg)
	if ri := metrics.RandIndex(a.Labels, b.Labels); ri != 1 {
		t.Fatalf("defragmentation changed the clustering: RandIndex=%.6f", ri)
	}
}

// Property: on random mixtures, RP-DBSCAN at rho=0.01 matches exact
// DBSCAN (the Table 4 claim) — up to the Theorem 5.4 sandwich: a
// knife-edge configuration where a +/-rho/2 change of eps legitimately
// flips connectivity must instead match exact DBSCAN at a sandwich
// radius.
func TestEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const rho = 0.01
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 2 + r.Intn(2)
		pts := datagen.Mixture(datagen.MixtureConfig{
			N: 800 + r.Intn(800), Dim: dim,
			Components: 3 + r.Intn(5), Span: 30, Alpha: 2,
			NoiseFrac: 0.05,
		}, seed)
		eps := 0.8
		minPts := 8
		res, err := Run(pts, Config{
			Eps: eps, MinPts: minPts, Rho: rho,
			NumPartitions: 1 + r.Intn(8), Seed: seed,
		}, engine.New(4))
		if err != nil {
			return false
		}
		for _, refEps := range []float64{eps, (1 - rho/2) * eps, (1 + rho/2) * eps} {
			ref := dbscan.Run(pts, refEps, minPts)
			if metrics.RandIndex(ref.Labels, res.Labels) >= 0.99 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 1, 15)); err != nil {
		t.Fatal(err)
	}
}
