package core

// Additional invariant and edge-case tests for the RP-DBSCAN pipeline.

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"

	"rpdbscan/internal/testutil"
)

// Labels must be dense: every id in [0, NumClusters) occurs, nothing
// outside.
func TestLabelsDense(t *testing.T) {
	pts := datagen.Mixture(datagen.MixtureConfig{
		N: 2000, Dim: 2, Components: 6, Span: 40, Alpha: 1, NoiseFrac: 0.1,
	}, 5)
	res := run(t, pts, Config{Eps: 0.9, MinPts: 10, Rho: 0.01, NumPartitions: 6})
	seen := make([]bool, res.NumClusters)
	for _, l := range res.Labels {
		if l == Noise {
			continue
		}
		if l < 0 || l >= res.NumClusters {
			t.Fatalf("label %d outside [0, %d)", l, res.NumClusters)
		}
		seen[l] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("cluster id %d unused", c)
		}
	}
}

// A core point is never noise.
func TestCorePointsAlwaysLabeled(t *testing.T) {
	pts := datagen.Chameleon(3000, 7)
	res := run(t, pts, Config{Eps: 1.2, MinPts: 10, Rho: 0.01, NumPartitions: 5})
	for i, core := range res.CorePoint {
		if core && res.Labels[i] == Noise {
			t.Fatalf("core point %d labelled noise", i)
		}
	}
}

// All points of one cell share a cluster when the cell is core: the
// diagonal-eps guarantee of Figure 3a. We verify the observable
// consequence: any two points within eps/sqrt(dim) of each other (hence
// possibly sharing a cell) where one is core never split into cluster +
// noise.
func TestCellCohesion(t *testing.T) {
	pts := datagen.Blobs(2000, 3, 0.4, 8)
	eps := 0.35
	res := run(t, pts, Config{Eps: eps, MinPts: 8, Rho: 0.01, NumPartitions: 4})
	for i := 0; i < pts.N(); i++ {
		if !res.CorePoint[i] {
			continue
		}
		for j := i + 1; j < pts.N() && j < i+50; j++ {
			if geom.Dist(pts.At(i), pts.At(j)) <= eps {
				if res.Labels[j] == Noise {
					t.Fatalf("point %d within eps of core %d but noise", j, i)
				}
			}
		}
	}
}

// The number of partitions never changes PointsProcessed (no duplication),
// and the executor count never changes the clustering.
func TestExecutorInvariance(t *testing.T) {
	pts := datagen.Moons(1500, 0.04, 9)
	cfg := Config{Eps: 0.12, MinPts: 8, Rho: 0.01, NumPartitions: 8}
	cl1 := engine.New(8)
	cl1.Executors = 1
	a, err := Run(pts, cfg, cl1)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := engine.New(8)
	cl2.Executors = 8
	b, err := Run(pts, cfg, cl2)
	if err != nil {
		t.Fatal(err)
	}
	if ri := metrics.RandIndex(a.Labels, b.Labels); ri != 1 {
		t.Fatalf("executor count changed clustering: RI=%.6f", ri)
	}
	if a.PointsProcessed != int64(pts.N()) || b.PointsProcessed != int64(pts.N()) {
		t.Fatal("duplication appeared")
	}
}

// Duplicate points (identical coordinates) must cluster identically.
func TestDuplicatePoints(t *testing.T) {
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 30; i++ {
		pts.Append([]float64{1, 1})
		pts.Append([]float64{5, 5})
	}
	res := run(t, pts, Config{Eps: 0.5, MinPts: 10, Rho: 0.01, NumPartitions: 4})
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	for i := 0; i < pts.N(); i += 2 {
		if res.Labels[i] != res.Labels[0] {
			t.Fatal("identical points split across clusters")
		}
	}
}

// Single-point and two-point inputs.
func TestTinyInputs(t *testing.T) {
	one, _ := geom.FromSlice([][]float64{{1, 2}}, 2)
	res := run(t, one, Config{Eps: 1, MinPts: 1, Rho: 0.01})
	if res.NumClusters != 1 || res.Labels[0] != 0 {
		t.Fatalf("single point with minPts=1: %+v", res.Labels)
	}
	res = run(t, one, Config{Eps: 1, MinPts: 2, Rho: 0.01})
	if res.Labels[0] != Noise {
		t.Fatal("single point with minPts=2 should be noise")
	}
	two, _ := geom.FromSlice([][]float64{{0, 0}, {0.1, 0}}, 2)
	res = run(t, two, Config{Eps: 1, MinPts: 2, Rho: 0.01, NumPartitions: 3})
	if res.NumClusters != 1 || res.Labels[0] != res.Labels[1] {
		t.Fatalf("two close points should form one cluster: %v", res.Labels)
	}
}

// RP-DBSCAN must produce identical results when tasks fail transiently and
// are re-executed (Spark-style fault tolerance): every stage's tasks are
// idempotent.
func TestFaultToleranceSameResult(t *testing.T) {
	pts := datagen.Chameleon(2500, 4)
	cfg := Config{Eps: 1.2, MinPts: 10, Rho: 0.01, NumPartitions: 6}
	clean, err := Run(pts, cfg, engine.New(6))
	if err != nil {
		t.Fatal(err)
	}
	faulty := engine.New(6)
	// Fail every task's first attempt in every stage.
	faulty.Injector = engine.InjectorFunc(func(stage string, task, attempt int) bool {
		return attempt == 0
	})
	res, err := Run(pts, cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if ri := metrics.RandIndex(clean.Labels, res.Labels); ri != 1 {
		t.Fatalf("fault injection changed clustering: RI=%.6f", ri)
	}
	if res.NumClusters != clean.NumClusters {
		t.Fatalf("cluster count changed under faults: %d vs %d", res.NumClusters, clean.NumClusters)
	}
}

// Mid-task failures (after partial side effects) must also be recoverable:
// inject a panic from inside task bodies via a fault injector that fails
// sporadic later attempts too.
func TestFaultToleranceSporadic(t *testing.T) {
	pts := datagen.Moons(1500, 0.04, 6)
	cfg := Config{Eps: 0.12, MinPts: 8, Rho: 0.01, NumPartitions: 5}
	clean, err := Run(pts, cfg, engine.New(5))
	if err != nil {
		t.Fatal(err)
	}
	faulty := engine.New(5)
	var calls atomic.Int64
	faulty.Injector = engine.InjectorFunc(func(stage string, task, attempt int) bool {
		// Deterministically fail ~1/3 of first attempts across stages.
		return attempt == 0 && calls.Add(1)%3 == 0
	})
	res, err := Run(pts, cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if ri := metrics.RandIndex(clean.Labels, res.Labels); ri != 1 {
		t.Fatalf("sporadic faults changed clustering: RI=%.6f", ri)
	}
}

// Property: a uniform scaling of all coordinates and eps leaves the
// clustering unchanged (the algorithm is scale-equivariant).
func TestScaleEquivarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := datagen.Mixture(datagen.MixtureConfig{
			N: 400 + r.Intn(400), Dim: 2, Components: 4, Span: 20, Alpha: 2,
		}, seed)
		scale := 0.5 + r.Float64()*4
		scaled := pts.Copy()
		for i := range scaled.Coords {
			scaled.Coords[i] *= scale
		}
		cfg := Config{Eps: 0.8, MinPts: 8, Rho: 0.01, NumPartitions: 4, Seed: seed}
		a, err := Run(pts, cfg, engine.New(4))
		if err != nil {
			return false
		}
		cfg.Eps *= scale
		b, err := Run(scaled, cfg, engine.New(4))
		if err != nil {
			return false
		}
		// Scaling moves cell boundaries, so borderline approximation
		// outcomes can flip; require near-identical clusterings.
		return metrics.RandIndex(a.Labels, b.Labels) >= 0.99
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 2, 20)); err != nil {
		t.Fatal(err)
	}
}
