package core

// Empirical validation of Theorem 5.4: the clustering produced with
// (eps,rho)-region queries is sandwiched between exact DBSCAN at
// (1-rho/2)*eps and at (1+rho/2)*eps. We verify both containment
// directions on the core skeletons, where cluster membership is
// unambiguous (border points may legitimately attach to different
// clusters):
//
//   - every lower-clustering core point set of one cluster stays within
//     one RP-DBSCAN cluster (C1 subset of C), and
//   - every RP-DBSCAN cluster's core points stay within one upper
//     clustering cluster (C subset of C2).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"

	"rpdbscan/internal/testutil"
)

func TestTheorem54Sandwich(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rho := []float64{0.5, 0.25, 0.1}[r.Intn(3)]
		pts := datagen.Mixture(datagen.MixtureConfig{
			N: 600 + r.Intn(600), Dim: 2,
			Components: 3 + r.Intn(4), Span: 25, Alpha: 1, NoiseFrac: 0.1,
		}, seed)
		eps := 0.9
		minPts := 8
		lower := dbscan.Run(pts, (1-rho/2)*eps, minPts)
		upper := dbscan.Run(pts, (1+rho/2)*eps, minPts)
		approx, err := Run(pts, Config{
			Eps: eps, MinPts: minPts, Rho: rho,
			NumPartitions: 1 + r.Intn(6), Seed: seed,
		}, engine.New(4))
		if err != nil {
			return false
		}
		// Direction 1: a lower cluster's core points map into one
		// RP cluster, and never to noise.
		lowerTo := map[int]int{}
		for i := range lower.Labels {
			if !lower.CorePoint[i] || lower.Labels[i] < 0 {
				continue
			}
			if approx.Labels[i] < 0 {
				return false // a (1-rho/2)eps core point can't be noise
			}
			if prev, ok := lowerTo[lower.Labels[i]]; ok {
				if prev != approx.Labels[i] {
					return false // lower cluster split by RP
				}
			} else {
				lowerTo[lower.Labels[i]] = approx.Labels[i]
			}
		}
		// Direction 2: an RP cluster's core points map into one upper
		// cluster, and never to noise.
		rpTo := map[int]int{}
		for i := range approx.Labels {
			if !approx.CorePoint[i] || approx.Labels[i] < 0 {
				continue
			}
			if upper.Labels[i] < 0 {
				return false // an approx core point must be clustered at (1+rho/2)eps
			}
			if prev, ok := rpTo[approx.Labels[i]]; ok {
				if prev != upper.Labels[i] {
					return false // RP cluster split at the upper radius
				}
			} else {
				rpTo[approx.Labels[i]] = upper.Labels[i]
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 3, 25)); err != nil {
		t.Fatal(err)
	}
}
