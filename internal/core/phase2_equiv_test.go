package core

// Property-style equivalence of the Phase II hot path: cell-batched region
// queries (the default) against the per-point oracle (DisableBatching),
// with and without the kd-tree candidate index, over skewed and uniform
// data. Batching is a pure evaluation-order change, so Labels and
// CorePoint must be byte-identical — not merely a Rand index of 1.

import (
	"fmt"
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/geom"
)

func assertSameClustering(t *testing.T, name string, base, got *Result) {
	t.Helper()
	if len(base.Labels) != len(got.Labels) {
		t.Fatalf("%s: label length %d != %d", name, len(got.Labels), len(base.Labels))
	}
	for i := range base.Labels {
		if base.Labels[i] != got.Labels[i] {
			t.Fatalf("%s: Labels[%d] = %d, want %d", name, i, got.Labels[i], base.Labels[i])
		}
		if base.CorePoint[i] != got.CorePoint[i] {
			t.Fatalf("%s: CorePoint[%d] = %v, want %v", name, i, got.CorePoint[i], base.CorePoint[i])
		}
	}
	if base.NumClusters != got.NumClusters {
		t.Fatalf("%s: NumClusters = %d, want %d", name, got.NumClusters, base.NumClusters)
	}
}

func TestPhase2BatchingEquivalence(t *testing.T) {
	datasets := []struct {
		name string
		pts  *geom.Points
		eps  float64
	}{
		{"skewed", datagen.Mixture(datagen.MixtureConfig{
			N: 4000, Dim: 2, Components: 10, Span: 100, Alpha: 3,
		}, 21), 5.0},
		{"uniform", datagen.Mixture(datagen.MixtureConfig{
			N: 4000, Dim: 2, Components: 1, Span: 60, NoiseFrac: 1,
		}, 22), 3.0},
		{"skewed3d", datagen.Mixture(datagen.MixtureConfig{
			N: 3000, Dim: 3, Components: 6, Span: 40, Alpha: 2,
		}, 23), 2.5},
	}
	for _, ds := range datasets {
		for _, k := range []int{1, 7} {
			for _, maxCells := range []int{0, 32} {
				cfg := Config{
					Eps: ds.eps, MinPts: 15, Rho: 0.01,
					NumPartitions: k, MaxCellsPerSubDict: maxCells,
				}
				cfg.DisableBatching = true
				base := run(t, ds.pts, cfg)
				for _, disableIndex := range []bool{false, true} {
					got := cfg
					got.DisableBatching = false
					got.DisableIndex = disableIndex
					name := fmt.Sprintf("%s/k=%d/maxCells=%d/noIndex=%v",
						ds.name, k, maxCells, disableIndex)
					assertSameClustering(t, name, base, run(t, ds.pts, got))
				}
			}
		}
	}
}
