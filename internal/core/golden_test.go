package core

// Golden regression tests: RP-DBSCAN is fully deterministic for a fixed
// seed, so a hash of the label vector pins the exact behaviour. If an
// intentional algorithm change breaks these, re-run with -update-golden
// semantics: print the new hashes via `go test -run Golden -v` and update
// the constants after confirming accuracy tests still pass.

import (
	"hash/fnv"
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
)

func labelHash(labels []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, l := range labels {
		v := uint64(int64(l))
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func TestGoldenDeterminism(t *testing.T) {
	cases := []struct {
		name string
		run  func() []int
	}{
		{"moons", func() []int {
			pts := datagen.Moons(2000, 0.04, 77)
			res, err := Run(pts, Config{Eps: 0.12, MinPts: 10, Rho: 0.01, NumPartitions: 7, Seed: 3}, engine.New(7))
			if err != nil {
				t.Fatal(err)
			}
			return res.Labels
		}},
		{"geolife", func() []int {
			ds := datagen.SimGeoLife(3000, 77)
			res, err := Run(ds.Points, Config{Eps: ds.Eps10 / 2, MinPts: ds.MinPts, Rho: 0.01, NumPartitions: 9, Seed: 4}, engine.New(9))
			if err != nil {
				t.Fatal(err)
			}
			return res.Labels
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			first := labelHash(c.run())
			t.Logf("%s label hash: %#x", c.name, first)
			// The run must be bit-for-bit reproducible.
			if again := labelHash(c.run()); again != first {
				t.Fatalf("two identical runs hashed %#x and %#x", first, again)
			}
		})
	}
}
