package core

// Phase III-1: graph merging, shared by Run and RunStream. The default is
// the flat lock-free merge: one stage publishes every cell's globally
// determined type (disjoint writes — each cell is owned by exactly one
// partition), then one stage per subgraph classifies its edges against the
// global table and applies full edges straight to a shared
// graph.ConcurrentUnionFind. No intermediate graph is ever materialised,
// and no merge order is ever observable: min-index linking makes the final
// components — and the dense ids FlatComponents extracts — identical to
// the tournament's, which the graph package property tests pin.
//
// Config.SerialMerge restores the pairwise tournament of Figure 9a, whose
// per-round edge telemetry the anatomy experiment (Table 7) plots.

import (
	"fmt"

	"rpdbscan/internal/engine"
	"rpdbscan/internal/graph"
)

// mergeOutcome is what Phase III-2 needs from the merge: dense cluster ids
// per core cell and the partial-edge predecessor map.
type mergeOutcome struct {
	comp  []int32
	preds map[int32][]int32
}

// mergePhase runs the Phase III-1 stages over the partition subgraphs and
// returns a finalize closure for the III-2 label-preparation serial step.
// The closure fills res.NumClusters and — on the flat path, where edge
// accounting is only known post-quiesce — res.EdgesPerRound, reported as
// [pre-merge total, post-merge total] (spanning forest + distinct partial
// edges, equal to the tournament's final count over the same subgraphs).
func mergePhase(cl *engine.Cluster, cfg Config, numCells int, subgraphs []*graph.Graph, res *Result) func() mergeOutcome {
	if cfg.SerialMerge {
		round := 0
		global := graph.Tournament(subgraphs,
			func(r int, edges int64) { res.EdgesPerRound = append(res.EdgesPerRound, edges) },
			func(nMatches int, match func(int)) {
				round++
				cl.RunStage("III-1", fmt.Sprintf("merge-round-%d", round), nMatches, match)
			})
		return func() mergeOutcome {
			comp, nClusters := global.CoreComponents()
			res.NumClusters = nClusters
			return mergeOutcome{comp: comp, preds: global.PartialPredecessors()}
		}
	}
	var pre int64
	for _, g := range subgraphs {
		pre += int64(g.NumEdges())
	}
	types := make([]graph.VertexType, numCells)
	cl.RunStage("III-1", "type-broadcast", len(subgraphs), func(t int) {
		// Disjoint deterministic writes: idempotent under engine retries.
		subgraphs[t].OwnedTypes(func(id int32, vt graph.VertexType) { types[id] = vt })
	})
	uf := graph.NewConcurrentUnionFind(numCells)
	partialsPer := make([][]graph.EdgeKey, len(subgraphs))
	cl.RunStage("III-1", "parallel-merge", len(subgraphs), func(t int) {
		// Union is idempotent and the partials slice is fresh per attempt,
		// so a retried task re-applies its subgraph harmlessly.
		partialsPer[t] = subgraphs[t].MergeInto(types, uf, nil)
	})
	return func() mergeOutcome {
		comp, nClusters, forest := graph.FlatComponents(types, uf)
		res.NumClusters = nClusters
		var all []graph.EdgeKey
		for _, p := range partialsPer {
			all = append(all, p...)
		}
		preds, distinct := graph.Predecessors(all)
		res.EdgesPerRound = []int64{pre, forest + distinct}
		return mergeOutcome{comp: comp, preds: preds}
	}
}
