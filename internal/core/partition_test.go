package core

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"rpdbscan/internal/grid"
)

// fnvPartitionOf is the pre-inlining reference implementation of
// partitionOf (hash/fnv with a heap-allocated state and seed buffer). The
// inlined version must assign every key to the same partition, or random
// partitions — and with them every golden clustering — silently change.
func fnvPartitionOf(key grid.Key, seed int64, k int) int {
	h := fnv.New64a()
	var s [8]byte
	for i := range s {
		s[i] = byte(seed >> (8 * i))
	}
	h.Write(s[:])
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(k))
}

func TestPartitionOfMatchesFNV(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	seeds := []int64{0, 1, -1, 42, -9_999_999_999, r.Int63(), -r.Int63()}
	for trial := 0; trial < 2000; trial++ {
		dim := 1 + r.Intn(6)
		idx := make([]int32, dim)
		for i := range idx {
			idx[i] = int32(r.Intn(2001) - 1000)
		}
		key := grid.EncodeKey(idx)
		seed := seeds[trial%len(seeds)]
		k := 1 + r.Intn(64)
		if got, want := partitionOf(key, seed, k), fnvPartitionOf(key, seed, k); got != want {
			t.Fatalf("partitionOf(%q, %d, %d) = %d, want %d", key, seed, k, got, want)
		}
	}
	// Empty key must hash the seed bytes alone.
	if got, want := partitionOf(grid.Key(""), 7, 13), fnvPartitionOf(grid.Key(""), 7, 13); got != want {
		t.Fatalf("empty key: %d, want %d", got, want)
	}
}

func BenchmarkPartitionOf(b *testing.B) {
	key := grid.EncodeKey([]int32{12, -7, 345})
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += partitionOf(key, 42, 16)
	}
	_ = sink
}
