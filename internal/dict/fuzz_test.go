package dict

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode checks that Decode never panics and never accepts input that
// fails to round-trip: the broadcast payload crosses worker boundaries, so
// robust parsing is a hard requirement.
func FuzzDecode(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, 200, 3, 10)
	d := buildDict(pts, 1.0, 0.05, 8)
	valid := d.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RPD1"))
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[10] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data, 4)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must re-encode to a decodable payload with the
		// same totals.
		again, err := Decode(got.Encode(), 4)
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		if again.NumCells != got.NumCells || again.NumSubCells != got.NumSubCells {
			t.Fatalf("round trip changed totals: %d/%d vs %d/%d",
				again.NumCells, again.NumSubCells, got.NumCells, got.NumSubCells)
		}
	})
}
