package dict

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode checks that Decode never panics and never accepts input that
// fails to round-trip: the broadcast payload crosses worker boundaries, so
// robust parsing is a hard requirement.
//
// The wire checksum would swallow almost every mutation at the gate and
// starve the parser of coverage, so each input is also tried resealed
// (checksum patched to match the mutated body) to reach the code behind
// the gate.
func FuzzDecode(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, 200, 3, 10)
	d := buildDict(pts, 1.0, 0.05, 8)
	valid := d.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RPD1")) // previous wire magic: must be rejected, not parsed
	f.Add([]byte("RPD2"))
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[20] ^= 0xff
	f.Add(mut)
	f.Add(Reseal(bytes.Clone(mut)))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, buf := range [][]byte{data, Reseal(bytes.Clone(data))} {
			got, err := Decode(buf, 4)
			if err != nil {
				continue // rejected input is fine; panics are not
			}
			// Accepted input must re-encode to a decodable payload with the
			// same totals.
			again, err := Decode(got.Encode(), 4)
			if err != nil {
				t.Fatalf("re-encode of accepted payload failed: %v", err)
			}
			if again.NumCells != got.NumCells || again.NumSubCells != got.NumSubCells {
				t.Fatalf("round trip changed totals: %d/%d vs %d/%d",
					again.NumCells, again.NumSubCells, got.NumCells, got.NumSubCells)
			}
		}
	})
}
