package dict

// Micro-benchmarks for the cell-batched Phase II hot path: one full
// (eps,rho)-region-count pass over a skewed data set, per-point Query vs
// per-cell QueryCell + CountPoint. Both do identical logical work, so the
// ratio is the batching speedup in isolation (no graph building, no
// engine). BenchmarkPhaseII in internal/core covers the full stage.

import (
	"math/rand"
	"testing"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"
)

func batchBenchData(b *testing.B) (*geom.Points, *Dictionary, *grid.Grid) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	pts := skewedPoints(r, 30000, 2, 200)
	d := buildDict(pts, 4.0, 0.03, 0)
	g := grid.Build(pts, 4.0)
	return pts, d, g
}

func BenchmarkQueryPoint(b *testing.B) {
	pts, d, g := batchBenchData(b)
	q := NewQuerier(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range g.Cells {
			for _, pi := range cell.Points {
				q.Count(pts.At(pi))
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pts.N()), "ns/point")
}

func BenchmarkQueryCell(b *testing.B) {
	pts, d, g := batchBenchData(b)
	q := NewQuerier(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range g.Cells {
			batch := q.QueryCell(cell.Key)
			for _, pi := range cell.Points {
				batch.CountPoint(pts.At(pi), 0)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pts.N()), "ns/point")
}

// BenchmarkQueryCellBlocked measures the SoA blocked kernel: one Gather
// per cell, then CountPoints answers every point of the cell against each
// candidate's origin and centre lanes in dense per-dimension loops.
func BenchmarkQueryCellBlocked(b *testing.B) {
	pts, d, g := batchBenchData(b)
	q := NewQuerier(d)
	var blk geom.Block
	counts := make([]int64, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range g.Cells {
			batch := q.QueryCell(cell.Key)
			blk.Gather(pts, cell.Points)
			counts = counts[:len(cell.Points)]
			batch.CountPoints(&blk, 0, counts)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pts.N()), "ns/point")
}

// TestQueryCellAllocFree pins the steady-state zero-allocation contract of
// the batched hot path: after one warm-up pass over all cells, QueryCell,
// CountPoint, CountPoints and AppendNeighborsBlock allocate nothing.
func TestQueryCellAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := skewedPoints(r, 5000, 2, 80)
	d := buildDict(pts, 4.0, 0.03, 0)
	g := grid.Build(pts, 4.0)
	q := NewQuerier(d)
	var blk geom.Block
	counts := make([]int64, 0, 4096)
	sel := make([]bool, 0, 4096)
	dst := make([]int32, 0, 4096)
	pass := func() {
		for _, cell := range g.Cells {
			batch := q.QueryCell(cell.Key)
			blk.Gather(pts, cell.Points)
			counts = counts[:len(cell.Points)]
			sel = sel[:len(cell.Points)]
			for i := range sel {
				sel[i] = true
			}
			batch.CountPoints(&blk, 0, counts)
			batch.CountPoint(pts.At(cell.Points[0]), 0)
			dst = batch.AppendNeighborsBlock(&blk, sel, dst[:0])
		}
	}
	pass() // warm up scratch to steady-state capacity
	if n := testing.AllocsPerRun(5, pass); n != 0 {
		t.Fatalf("batched query pass allocates %v per run", n)
	}
}

// BenchmarkQueryCellEarlyExit measures the MinPts early exit available to
// core marking (Algorithm 3): the scan stops once the count is decided.
func BenchmarkQueryCellEarlyExit(b *testing.B) {
	pts, d, g := batchBenchData(b)
	q := NewQuerier(d)
	const minPts = 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range g.Cells {
			batch := q.QueryCell(cell.Key)
			for _, pi := range cell.Points {
				batch.CountPoint(pts.At(pi), minPts)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pts.N()), "ns/point")
}
