package dict

// Micro-benchmarks for the cell-batched Phase II hot path: one full
// (eps,rho)-region-count pass over a skewed data set, per-point Query vs
// per-cell QueryCell + CountPoint. Both do identical logical work, so the
// ratio is the batching speedup in isolation (no graph building, no
// engine). BenchmarkPhaseII in internal/core covers the full stage.

import (
	"math/rand"
	"testing"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"
)

func batchBenchData(b *testing.B) (*geom.Points, *Dictionary, *grid.Grid) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	pts := skewedPoints(r, 30000, 2, 200)
	d := buildDict(pts, 4.0, 0.03, 0)
	g := grid.Build(pts, 4.0)
	return pts, d, g
}

func BenchmarkQueryPoint(b *testing.B) {
	pts, d, g := batchBenchData(b)
	q := NewQuerier(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range g.Cells {
			for _, pi := range cell.Points {
				q.Count(pts.At(pi))
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pts.N()), "ns/point")
}

func BenchmarkQueryCell(b *testing.B) {
	pts, d, g := batchBenchData(b)
	q := NewQuerier(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range g.Cells {
			batch := q.QueryCell(cell.Key)
			for _, pi := range cell.Points {
				batch.CountPoint(pts.At(pi), 0)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pts.N()), "ns/point")
}

// BenchmarkQueryCellEarlyExit measures the MinPts early exit available to
// core marking (Algorithm 3): the scan stops once the count is decided.
func BenchmarkQueryCellEarlyExit(b *testing.B) {
	pts, d, g := batchBenchData(b)
	q := NewQuerier(d)
	const minPts = 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range g.Cells {
			batch := q.QueryCell(cell.Key)
			for _, pi := range cell.Points {
				batch.CountPoint(pts.At(pi), minPts)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pts.N()), "ns/point")
}
