package dict

import (
	"bytes"
	"math/rand"
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/grid"
	"rpdbscan/internal/testutil"
)

// TestStreamBuilderMatchesBuildEntry: feeding a grid's cells to the
// StreamBuilder in randomly shuffled, randomly sized fragments must yield
// entries whose encoding is byte-identical to the BuildEntry path — the
// invariant that makes the streamed dictionary broadcast equal the
// in-memory one.
func TestStreamBuilderMatchesBuildEntry(t *testing.T) {
	cfg := testutil.QuickConfig(t, 2, 10)
	for rep := 0; rep < cfg.MaxCount; rep++ {
		rng := rand.New(rand.NewSource(int64(rep) + 31))
		dim := 2
		pts := datagen.Mixture(datagen.MixtureConfig{N: 300 + rep*17, Dim: dim, Components: 3, Alpha: 1}, int64(rep)+5)
		p := Params{Eps: 0.7, Rho: 0.01, Dim: dim}
		g := grid.Build(pts, p.Eps)

		// Reference: BuildEntry per complete cell, key-sorted.
		var keys []grid.Key
		for key := range g.Cells {
			keys = append(keys, key)
		}
		sortKeys(keys)
		want := make([]CellEntry, 0, len(keys))
		for _, key := range keys {
			want = append(want, BuildEntry(g.Cells[key], pts, p))
		}

		// Streamed: each cell's points split into random fragments, all
		// fragments shuffled globally before feeding.
		type frag struct {
			key    grid.Key
			coords []float64
		}
		var frags []frag
		for key, cell := range g.Cells {
			i := 0
			for i < len(cell.Points) {
				sz := 1 + rng.Intn(4)
				if i+sz > len(cell.Points) {
					sz = len(cell.Points) - i
				}
				var coords []float64
				for _, pi := range cell.Points[i : i+sz] {
					coords = append(coords, pts.At(pi)...)
				}
				frags = append(frags, frag{key: key, coords: coords})
				i += sz
			}
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		b := NewStreamBuilder(p)
		for _, f := range frags {
			b.Add(f.key, f.coords)
		}
		got := b.Entries()

		if b.NumCells() != len(want) {
			t.Fatalf("rep %d: %d cells, want %d", rep, b.NumCells(), len(want))
		}
		wantEnc := EncodeEntries(want, p)
		gotEnc := EncodeEntries(got, p)
		if !bytes.Equal(wantEnc, gotEnc) {
			t.Fatalf("rep %d: streamed entries encode to %d bytes, in-memory to %d — not byte-identical",
				rep, len(gotEnc), len(wantEnc))
		}
	}
}

func sortKeys(keys []grid.Key) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}
