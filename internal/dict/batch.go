package dict

// Cell-batched (eps,rho)-region queries. Phase II answers one region query
// per point, but every point of a cell shares the same candidate-cell set:
// any cell contributing a qualifying sub-cell to some point of the query
// cell must have its box within eps of the query cell's box. QueryCell
// therefore performs ONE index traversal per owned cell, classifies each
// candidate against the whole cell box — fully inside (the box extension
// of the Example 5.5 far-corner containment test: every sub-cell centre is
// within eps of every point of the query cell) or boundary — and the
// per-point work shrinks to residual checks against boundary candidates
// plus a precomputed inside total.
//
// The classification is conservative in the safe direction only: a
// candidate that fails the inside test falls back to exactly the per-point
// arithmetic of Querier.Query, so batched and per-point results are
// identical (the equivalence tests in this package and internal/core pin
// this). Query remains unchanged as the correctness oracle; core's
// DisableBatching ablation flag selects it.

import (
	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"
)

// subChunk is the sub-centre window width of the chunked any-hit scan in
// AppendNeighborsBlock: wide enough for dense per-dimension inner loops,
// narrow enough that an early witnessing centre skips most of the work.
const subChunk = 16

// batchCand is one boundary candidate of a CellBatch: a cell neither
// provably inside nor provably outside the eps-region of every point of
// the query cell, so each point runs a residual check against it.
type batchCand struct {
	id    int32
	total int64 // sum of sub-cell counts
	off   int   // offset of this candidate's cell origin in the arena
	subs  []SubCell
	// centers are the candidate's precomputed sub-cell centres (flat,
	// len(subs)*dim), decoded once at dictionary build time.
	centers []float64
	// centersT is the transposed view (dimension-major lanes) and counts
	// the flat per-sub-cell point counts — the inputs of the blocked SoA
	// residual kernel.
	centersT []float64
	counts   []int32
}

// CellBatch is the result of one Querier.QueryCell call: the shared
// candidate set of a whole cell, pre-classified so that per-point queries
// touch only boundary candidates. It is owned by the querier and reused by
// the next QueryCell call; it must not be retained across calls or shared
// between goroutines.
type CellBatch struct {
	dim  int
	side float64
	eps2 float64

	insideCount int64
	insideIDs   []int32
	cands       []batchCand
	origins     []float64 // flat arena of boundary-candidate cell origins
	qlo, qhi    []float64 // query cell box, slack-inflated

	// Scratch lanes of the blocked kernels (CountPoints and
	// AppendNeighborsBlock), reused across calls: per-point near/far box
	// distances against the current candidate, per-sub-cell distance
	// accumulators, and one gathered point for the scalar tail.
	near, far []float64
	acc       []float64
	pt        []float64
}

// InsideCount returns the number of points in fully-inside candidates —
// counted for every point of the query cell without any per-point work.
func (b *CellBatch) InsideCount() int64 { return b.insideCount }

// InsideCells returns the ids of fully-inside candidates: neighbor cells
// of every point of the query cell.
func (b *CellBatch) InsideCells() []int32 { return b.insideIDs }

// NumBoundary returns the number of boundary candidates (instrumentation).
func (b *CellBatch) NumBoundary() int { return len(b.cands) }

// QueryCell performs one batched (eps,rho)-region query for the cell key,
// which must be an owned, non-empty cell of the dictionary's grid. One
// index traversal per sub-dictionary gathers the candidates shared by all
// of the cell's points; see the package comment on batch.go for the
// classification. The returned batch is reused by the next QueryCell call.
func (q *Querier) QueryCell(key grid.Key) *CellBatch {
	d := q.d
	b := &q.batch
	b.dim, b.side, b.eps2 = d.Dim, d.Side, d.Eps*d.Eps
	b.insideCount = 0
	b.insideIDs = b.insideIDs[:0]
	b.cands = b.cands[:0]
	b.origins = b.origins[:0]
	key.Origin(d.Side, b.qlo)
	// Slack absorbs the floating-point quantisation error of grid.KeyFor:
	// a point can land a few ulps outside its cell's exact box, and every
	// batch guarantee quantifies over points inside the (inflated) box.
	// Inflation is conservative: it can only demote a candidate from
	// inside to boundary, where exact per-point checks decide.
	slack := d.Side * 1e-9
	for i := 0; i < d.Dim; i++ {
		b.qhi[i] = b.qlo[i] + d.Side + slack
		b.qlo[i] -= slack
	}
	qbox := geom.Box{Min: b.qlo, Max: b.qhi}
	// Candidate filter: every sub-cell centre of a cell lies inside that
	// cell's box, so a cell can contribute to some point of the query box
	// only if its box is within eps of it — equivalently, only if its
	// centre is within eps of the query box inflated by Side/2. One such
	// traversal per owned cell replaces one traversal per point.
	for i := 0; i < d.Dim; i++ {
		q.inflLo[i] = b.qlo[i] - d.Side/2
		q.inflHi[i] = b.qhi[i] + d.Side/2
	}
	infl := geom.Box{Min: q.inflLo, Max: q.inflHi}
	eps := d.Eps
	for _, sd := range d.Subs {
		if sd.MBR.Empty() {
			continue
		}
		if !q.DisableMBRSkip && sd.MBR.OutsideBox(qbox, eps) {
			q.SkippedSubDicts++
			continue // Lemma 5.10, hoisted from point to cell
		}
		q.cand = q.cand[:0]
		if q.DisableIndex {
			for ei := range sd.Entries {
				if infl.MinDist2(sd.centers.At(ei)) <= eps*eps {
					q.cand = append(q.cand, ei)
				}
			}
		} else {
			q.cand = sd.tree.InBallBox(infl, eps, q.cand)
		}
		// Inset for the inside test: sub-cell centres lie at least
		// SubSide/2 away from their cell's faces, so bmax may bound the
		// distance to the centre hull rather than the whole box. Without
		// it the inside class is empty — the grid diagonal equals eps, so
		// even a cell's own far corner sits exactly at distance eps. The
		// slack absorbs the FP rounding of the decoded centres.
		inset := d.SubSide/2 - slack
		if inset < 0 {
			inset = 0
		}
		for _, ei := range q.cand {
			e := &sd.Entries[ei]
			e.Key.Origin(d.Side, q.origin)
			// Classify against the whole query box. bmin is the squared
			// box-to-box gap of the full boxes (candidates beyond eps
			// contribute to no point); bmax bounds, per dimension, every
			// |p[i]-x[i]| for p in the query box and x in the candidate's
			// sub-centre hull. bmax <= eps^2 therefore means every centre
			// qualifies for every point, which yields exactly the oracle's
			// count and neighbor-cell answers; the slack margins keep that
			// implication true under floating-point rounding as well.
			var bmin, bmax float64
			for i := 0; i < d.Dim; i++ {
				clo := q.origin[i]
				chi := clo + d.Side
				if g := b.qlo[i] - chi; g > 0 {
					bmin += g * g
				} else if g := clo - b.qhi[i]; g > 0 {
					bmin += g * g
				}
				hlo := clo + inset
				hhi := chi - inset
				m := abs(b.qhi[i] - hlo)
				if v := abs(hhi - b.qlo[i]); v > m {
					m = v
				}
				if v := abs(b.qlo[i] - hlo); v > m {
					m = v
				}
				if v := abs(hhi - b.qhi[i]); v > m {
					m = v
				}
				bmax += m * m
			}
			if bmin > b.eps2 {
				continue // fully outside: no point of the cell can reach it
			}
			var sum int64
			for _, sc := range e.Subs {
				sum += int64(sc.Count)
			}
			if bmax <= b.eps2 {
				// Fully inside: every sub-cell centre qualifies for every
				// point of the query cell.
				b.insideCount += sum
				b.insideIDs = append(b.insideIDs, e.ID)
				continue
			}
			b.cands = append(b.cands, batchCand{
				id:       e.ID,
				total:    sum,
				off:      len(b.origins),
				subs:     e.Subs,
				centers:  sd.SubCenters(ei, d.Dim),
				centersT: sd.SubCentersT(ei, d.Dim),
				counts:   sd.SubCounts(ei),
			})
			b.origins = append(b.origins, q.origin...)
		}
	}
	return b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// CountPoint returns the (eps,rho)-region count of p, a point of the batch
// cell. When stopAt > 0 the boundary scan stops as soon as the count
// reaches it: callers testing count >= MinPts (Algorithm 3 lines 7-9) need
// no exact total, and the early exit cannot change the core decision
// because counts only grow as more candidates are scanned.
func (b *CellBatch) CountPoint(p []float64, stopAt int64) int64 {
	count := b.insideCount
	for ci := range b.cands {
		if stopAt > 0 && count >= stopAt {
			return count
		}
		count += b.candCount(&b.cands[ci], p)
	}
	return count
}

// candCount runs the per-point residual check against one boundary
// candidate — the same arithmetic as the per-candidate body of
// Querier.Query, reading precomputed sub-cell centres.
func (b *CellBatch) candCount(c *batchCand, p []float64) int64 {
	origin := b.origins[c.off : c.off+b.dim]
	var near2, far2 float64
	for i := 0; i < b.dim; i++ {
		d1 := p[i] - origin[i]
		d2 := origin[i] + b.side - p[i]
		if d1 < 0 {
			near2 += d1 * d1
			d1 = -d1
		} else if d2 < 0 {
			near2 += d2 * d2
			d2 = -d2
		}
		if d2 > d1 {
			d1 = d2
		}
		far2 += d1 * d1
	}
	if near2 > b.eps2 {
		// The nearest face of the candidate box is beyond eps; every
		// sub-cell centre (strictly interior) is farther still.
		return 0
	}
	if far2 <= b.eps2 {
		return c.total // Example 5.5 containment, per point
	}
	var n int64
	dim := b.dim
	for j := range c.subs {
		if geom.Dist2(p, c.centers[j*dim:(j+1)*dim]) <= b.eps2 {
			n += int64(c.subs[j].Count)
		}
	}
	return n
}

// boxLanes fills near[i]/far[i] with the squared distances from block
// point i to the nearest and farthest faces of candidate c's cell box —
// the lane-major form of the per-dimension loop in candCount. The
// accumulation order (ascending dimension, one addition per dimension per
// point) matches the scalar loop exactly, so the results are bit-identical.
func (b *CellBatch) boxLanes(c *batchCand, blk *geom.Block, near, far []float64) {
	origin := b.origins[c.off : c.off+b.dim]
	for i := range near {
		near[i], far[i] = 0, 0
	}
	for dd := 0; dd < b.dim; dd++ {
		lane := blk.Lane(dd)
		o := origin[dd]
		hi := o + b.side
		for i, p := range lane {
			d1 := p - o
			d2 := hi - p
			if d1 < 0 {
				near[i] += d1 * d1
				d1 = -d1
			} else if d2 < 0 {
				near[i] += d2 * d2
				d2 = -d2
			}
			if d2 > d1 {
				d1 = d2
			}
			far[i] += d1 * d1
		}
	}
}

// subAcc fills acc[j] with the squared distance from block point i to
// candidate c's sub-cell centre j, accumulated over the transposed centre
// lanes. Dimension-ascending accumulation with one addition per dimension
// reproduces geom.Dist2 bit-for-bit.
func (b *CellBatch) subAcc(c *batchCand, blk *geom.Block, i int, acc []float64) {
	b.subAccRange(c, blk, i, 0, acc)
}

// subAccRange is subAcc over the sub-centre window [j0, j0+len(acc)):
// acc[j] receives the squared distance to sub-cell centre j0+j. Windowing
// changes which distances are computed, never their value, so any-hit scans
// can chunk the sub-centre axis and stop at the first qualifying chunk.
func (b *CellBatch) subAccRange(c *batchCand, blk *geom.Block, i, j0 int, acc []float64) {
	m := len(c.subs)
	w := len(acc)
	for j := range acc {
		acc[j] = 0
	}
	for dd := 0; dd < b.dim; dd++ {
		p := blk.At(i, dd)
		lane := c.centersT[dd*m+j0 : dd*m+j0+w : dd*m+j0+w]
		for j, x := range lane {
			d := p - x
			acc[j] += d * d
		}
	}
}

// grow resizes the scratch lanes for a block of n points and candidates of
// at most m sub-cells, reusing prior capacity. Growth is geometric: cells
// arrive in key order, so exact-fit growth would reallocate at every new
// maximum across a partition's cell loop.
func (b *CellBatch) grow(n, m int) (near, far, acc []float64) {
	if cap(b.near) < n {
		b.near = make([]float64, scratchCap(n, cap(b.near)))
		b.far = make([]float64, cap(b.near))
	}
	if cap(b.acc) < m {
		b.acc = make([]float64, scratchCap(m, cap(b.acc)))
	}
	b.near, b.far, b.acc = b.near[:n], b.far[:n], b.acc[:m]
	return b.near, b.far, b.acc
}

// scratchCap doubles the previous capacity until it covers n.
func scratchCap(n, prev int) int {
	c := prev * 2
	if c < n {
		c = n
	}
	return c
}

// maxSubs returns the largest sub-cell count over the boundary candidates.
func (b *CellBatch) maxSubs() int {
	m := 0
	for ci := range b.cands {
		if len(b.cands[ci].subs) > m {
			m = len(b.cands[ci].subs)
		}
	}
	return m
}

// CountPoints is the blocked form of CountPoint: one call answers the
// (eps,rho)-region count of every point of blk — the gathered query cell —
// into counts (len blk.N()). The sweep is candidate-outer, point-inner, so
// each candidate's origin and centre lanes stay hot while every point's
// residual is evaluated against them in dense per-dimension loops.
//
// Early exit matches CountPoint exactly: a candidate is skipped for point i
// once counts[i] >= stopAt (stopAt > 0), so the set of (point, candidate)
// residuals evaluated — and therefore every returned count — is identical
// to n independent CountPoint calls.
func (b *CellBatch) CountPoints(blk *geom.Block, stopAt int64, counts []int64) {
	n := blk.N()
	for i := 0; i < n; i++ {
		counts[i] = b.insideCount
	}
	if n == 0 || len(b.cands) == 0 {
		return
	}
	near, far, acc := b.grow(n, b.maxSubs())
	remaining := n
	if stopAt > 0 && b.insideCount >= stopAt {
		return
	}
	for ci := range b.cands {
		c := &b.cands[ci]
		// The dense sweep pays O(points x dim) per candidate no matter how
		// few points are still undecided. Once at most a quarter remain,
		// finish the stragglers point-by-point with the scalar residual —
		// same candidates in the same order under the same skip rule, so
		// the counts are unchanged.
		if stopAt > 0 && remaining*4 <= n {
			b.countTail(blk, ci, stopAt, counts)
			return
		}
		b.boxLanes(c, blk, near, far)
		for i := 0; i < n; i++ {
			if stopAt > 0 && counts[i] >= stopAt {
				continue
			}
			if near[i] > b.eps2 {
				continue
			}
			if far[i] <= b.eps2 {
				counts[i] += c.total
			} else {
				sub := acc[:len(c.subs)]
				b.subAcc(c, blk, i, sub)
				for j, a := range sub {
					if a <= b.eps2 {
						counts[i] += int64(c.counts[j])
					}
				}
			}
			if stopAt > 0 && counts[i] >= stopAt {
				remaining--
				if remaining == 0 {
					return
				}
			}
		}
	}
}

// countTail completes CountPoints for the points still below stopAt when
// the dense sweep hands over at candidate ci0: each undecided point scans
// the remaining candidates with the scalar residual check, stopping at
// stopAt exactly as CountPoint does. The (point, candidate) residual set —
// and so every count — matches the dense sweep continuing to the end.
func (b *CellBatch) countTail(blk *geom.Block, ci0 int, stopAt int64, counts []int64) {
	dim := b.dim
	if cap(b.pt) < dim {
		b.pt = make([]float64, dim)
	}
	pt := b.pt[:dim]
	for i := range counts {
		if counts[i] >= stopAt {
			continue
		}
		for dd := 0; dd < dim; dd++ {
			pt[dd] = blk.At(i, dd)
		}
		for ci := ci0; ci < len(b.cands); ci++ {
			counts[i] += b.candCount(&b.cands[ci], pt)
			if counts[i] >= stopAt {
				break
			}
		}
	}
}

// AppendNeighborsBlock appends to dst the ids of boundary candidates with
// at least one qualifying sub-cell for at least one selected point of blk
// (sel[i] marks the points that matter — Phase II passes the cell's core
// points). Per-point neighbor sets are only ever unioned by the caller, so
// the blocked kernel answers the union directly: candidate-outer, it stops
// scanning a candidate at its first witnessing point, which makes the sweep
// near-O(candidates) in dense cells where the first selected point already
// qualifies. The box distances are computed per point on demand — a full
// lane sweep would pay O(points) per candidate and forfeit the early exit —
// with the exact accumulation order of the scalar AppendNeighbors, so the
// appended id set equals the union of the per-point calls.
func (b *CellBatch) AppendNeighborsBlock(blk *geom.Block, sel []bool, dst []int32) []int32 {
	n := blk.N()
	if n == 0 || len(b.cands) == 0 {
		return dst
	}
	dim := b.dim
	_, _, acc := b.grow(n, b.maxSubs())
	for ci := range b.cands {
		c := &b.cands[ci]
		origin := b.origins[c.off : c.off+dim]
		for i := 0; i < n; i++ {
			if !sel[i] {
				continue
			}
			var near2, far2 float64
			for dd := 0; dd < dim; dd++ {
				p := blk.At(i, dd)
				d1 := p - origin[dd]
				d2 := origin[dd] + b.side - p
				if d1 < 0 {
					near2 += d1 * d1
					d1 = -d1
				} else if d2 < 0 {
					near2 += d2 * d2
					d2 = -d2
				}
				if d2 > d1 {
					d1 = d2
				}
				far2 += d1 * d1
			}
			if near2 > b.eps2 {
				continue
			}
			hit := far2 <= b.eps2
			// Chunked any-hit sub-scan: lane-major distance accumulation
			// per chunk, early exit at the first qualifying chunk. Most
			// witnessing sub-cells sit early in the scan, so this usually
			// touches a fraction of the centres a full sweep would.
			nsubs := len(c.subs)
			for j0 := 0; !hit && j0 < nsubs; j0 += subChunk {
				w := nsubs - j0
				if w > subChunk {
					w = subChunk
				}
				sub := acc[:w]
				b.subAccRange(c, blk, i, j0, sub)
				for _, a := range sub {
					if a <= b.eps2 {
						hit = true
						break
					}
				}
			}
			if hit {
				dst = append(dst, c.id)
				break
			}
		}
	}
	return dst
}

// AppendNeighbors appends to dst the ids of boundary candidates with at
// least one qualifying sub-cell for p — the residual part of the neighbor
// cells NC of Algorithm 3 line 13. InsideCells lists the rest, shared by
// every point of the cell, so callers union the two.
func (b *CellBatch) AppendNeighbors(p []float64, dst []int32) []int32 {
	dim := b.dim
	for ci := range b.cands {
		c := &b.cands[ci]
		origin := b.origins[c.off : c.off+dim]
		var near2, far2 float64
		for i := 0; i < dim; i++ {
			d1 := p[i] - origin[i]
			d2 := origin[i] + b.side - p[i]
			if d1 < 0 {
				near2 += d1 * d1
				d1 = -d1
			} else if d2 < 0 {
				near2 += d2 * d2
				d2 = -d2
			}
			if d2 > d1 {
				d1 = d2
			}
			far2 += d1 * d1
		}
		if near2 > b.eps2 {
			continue
		}
		if far2 <= b.eps2 {
			dst = append(dst, c.id) // every cell has >= 1 sub-cell
			continue
		}
		for j := range c.subs {
			if geom.Dist2(p, c.centers[j*dim:(j+1)*dim]) <= b.eps2 {
				dst = append(dst, c.id)
				break
			}
		}
	}
	return dst
}
