package dict

import (
	"encoding/binary"
	"fmt"
	"math"

	"rpdbscan/internal/grid"
)

// Binary wire format used when the dictionary is broadcast to workers.
// Header:
//
//	magic "RPD2" | checksum uint64 | dim uint16 | shift uint16
//	eps float64 | rho float64 | numCells uint32
//
// The checksum is FNV-1a over everything after the checksum field itself;
// Decode verifies it before parsing, so a payload corrupted in transit is
// rejected at the wire boundary even when the transfer layer's own
// per-chunk checks are disabled. Then per cell: key coords (dim x int32),
// count uint32, numSubs uint32, and per sub-cell a packed position of
// ceil(dim*shift/8) bytes followed by a uint32 count. Sub-dictionary
// boundaries are not encoded; the receiver re-defragments locally, which
// is what the paper's workers do when memory bounds differ from the
// builder's.
const magic = "RPD2"

// checksumStart is the offset where checksummed content begins (after the
// magic and the checksum field).
const checksumStart = 4 + 8

// fnv64a is the checksum over the wire body.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return h
}

// Reseal recomputes and patches the wire checksum in place, returning buf.
// It exists for tests and fuzzers that mutate encoded bytes and want the
// mutation to reach the parser instead of being swallowed by the checksum
// gate; production encoders never need it.
func Reseal(buf []byte) []byte {
	if len(buf) >= checksumStart && string(buf[:4]) == magic {
		binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[checksumStart:]))
	}
	return buf
}

// subBytes returns the number of bytes needed for one packed sub-cell
// position: ceil(dim*shift/8), the d*(h-1) bits of Lemma 4.3 rounded up to
// whole bytes.
func subBytes(dim int, shift uint) int {
	return (dim*int(shift) + 7) / 8
}

// Encode serialises the dictionary. The result length is the broadcast
// payload size tracked by the engine.
func (d *Dictionary) Encode() []byte {
	var entries []CellEntry
	for _, sd := range d.Subs {
		entries = append(entries, sd.Entries...)
	}
	return EncodeEntries(entries, Params{Eps: d.Eps, Rho: d.Rho, Dim: d.Dim})
}

// EncodeEntries serialises raw cell entries without building the query
// structures of a full Dictionary — the driver-side broadcast path of
// Algorithm 2: workers build their own indexes when they Decode.
func EncodeEntries(entries []CellEntry, p Params) []byte {
	shift := p.shift()
	sb := subBytes(p.Dim, shift)
	size := checksumStart + 2 + 2 + 8 + 8 + 4
	for i := range entries {
		size += 4*p.Dim + 4 + 4 + len(entries[i].Subs)*(sb+4)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint64(buf, 0) // checksum, patched below
	buf = binary.BigEndian.AppendUint16(buf, uint16(p.Dim))
	buf = binary.BigEndian.AppendUint16(buf, uint16(shift))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.Eps))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.Rho))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for i := range entries {
		e := &entries[i]
		buf = append(buf, string(e.Key)...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.Count))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Subs)))
		for _, sc := range e.Subs {
			buf = appendPacked(buf, sc.Idx, sb)
			buf = binary.BigEndian.AppendUint32(buf, uint32(sc.Count))
		}
	}
	binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[checksumStart:]))
	return buf
}

// Stats summarises entries by the Lemma 4.3 accounting without building a
// Dictionary.
type Stats struct {
	NumCells    int
	NumSubCells int
	SizeBits    int64
}

// StatsOf computes dictionary statistics for a set of entries.
func StatsOf(entries []CellEntry, p Params) Stats {
	var s Stats
	for i := range entries {
		s.NumCells++
		s.NumSubCells += len(entries[i].Subs)
	}
	dd := int64(p.Dim)
	h1 := int64(p.shift())
	s.SizeBits = 32*int64(s.NumCells+s.NumSubCells) + 32*dd*int64(s.NumCells) + dd*h1*int64(s.NumSubCells)
	return s
}

// appendPacked writes the low n bytes of the 128-bit index, big-endian.
func appendPacked(buf []byte, idx grid.SubIdx, n int) []byte {
	var tmp [16]byte
	binary.BigEndian.PutUint64(tmp[:8], idx.Hi)
	binary.BigEndian.PutUint64(tmp[8:], idx.Lo)
	return append(buf, tmp[16-n:]...)
}

func unpack(b []byte) grid.SubIdx {
	var tmp [16]byte
	copy(tmp[16-len(b):], b)
	return grid.SubIdx{
		Hi: binary.BigEndian.Uint64(tmp[:8]),
		Lo: binary.BigEndian.Uint64(tmp[8:]),
	}
}

// Decode reconstructs a dictionary from its wire form, re-defragmenting
// with the given sub-dictionary bound (<= 0 keeps one sub-dictionary).
func Decode(buf []byte, maxCellsPerSub int) (*Dictionary, error) {
	entries, p, err := DecodeEntries(buf)
	if err != nil {
		return nil, err
	}
	return Build(entries, p, maxCellsPerSub), nil
}

// DecodeEntries parses the wire form back into raw cell entries plus the
// encoding parameters, without building a Dictionary's query structures —
// the inverse of EncodeEntries. The multi-process driver uses it to
// concatenate per-partition dictionary shards returned by remote workers
// before one global EncodeEntries broadcast, exactly as the in-process
// path concatenates the per-task entry slices.
func DecodeEntries(buf []byte) ([]CellEntry, Params, error) {
	if len(buf) < checksumStart+2+2+8+8+4 || string(buf[:4]) != magic {
		return nil, Params{}, fmt.Errorf("dict: bad header")
	}
	if got := binary.BigEndian.Uint64(buf[4:]); got != fnv64a(buf[checksumStart:]) {
		return nil, Params{}, fmt.Errorf("dict: checksum mismatch")
	}
	off := checksumStart
	dim := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	shift := uint(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	eps := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	rho := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	numCells := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	// Validate geometry before using it for offsets: a packed sub-cell
	// position must fit the 128-bit SubIdx (Definition 4.1's d*(h-1)
	// bits), and eps/rho must be usable.
	if dim < 1 || dim > 128 || int(shift)*dim > 128 {
		return nil, Params{}, fmt.Errorf("dict: implausible geometry dim=%d shift=%d", dim, shift)
	}
	if !(eps > 0) || !(rho > 0) || math.IsInf(eps, 0) || math.IsInf(rho, 0) {
		return nil, Params{}, fmt.Errorf("dict: implausible parameters eps=%g rho=%g", eps, rho)
	}
	sb := subBytes(dim, shift)
	// Bound allocations by the actual payload size, not the header's
	// claimed cell count, so corrupt input cannot balloon memory.
	remaining := len(buf) - off
	perSub := sb + 4
	capHint := numCells
	if maxCells := remaining / (4*dim + 8); capHint > maxCells {
		capHint = maxCells
	}
	entries := make([]CellEntry, 0, capHint)
	// All sub-cells share one arena to avoid a slice allocation per cell.
	arena := make([]SubCell, 0, remaining/perSub)
	for c := 0; c < numCells; c++ {
		need := 4*dim + 8
		if off+need > len(buf) {
			return nil, Params{}, fmt.Errorf("dict: truncated cell %d", c)
		}
		key := grid.Key(buf[off : off+4*dim])
		off += 4 * dim
		count := int32(binary.BigEndian.Uint32(buf[off:]))
		off += 4
		nsubs := int(binary.BigEndian.Uint32(buf[off:]))
		off += 4
		start := len(arena)
		for s := 0; s < nsubs; s++ {
			if off+sb+4 > len(buf) {
				return nil, Params{}, fmt.Errorf("dict: truncated sub-cell in cell %d", c)
			}
			idx := unpack(buf[off : off+sb])
			off += sb
			sc := int32(binary.BigEndian.Uint32(buf[off:]))
			off += 4
			arena = append(arena, SubCell{Idx: idx, Count: sc})
		}
		entries = append(entries, CellEntry{
			Key: key, Count: count,
			Subs: arena[start:len(arena):len(arena)],
		})
	}
	if off != len(buf) {
		return nil, Params{}, fmt.Errorf("dict: %d trailing bytes", len(buf)-off)
	}
	p := Params{Eps: eps, Rho: rho, Dim: dim}
	if p.shift() != shift {
		// The shift is derived from rho; a mismatch means corruption.
		return nil, Params{}, fmt.Errorf("dict: shift %d inconsistent with rho %g", shift, rho)
	}
	return entries, p, nil
}
