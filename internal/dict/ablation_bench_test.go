package dict

// Ablation benchmarks for the dictionary's design choices (DESIGN.md §4):
// the kd-tree candidate index of Lemma 5.6, and the sub-dictionary MBR
// skipping of Lemma 5.10 enabled by defragmentation.

import (
	"math/rand"
	"testing"
)

func ablationDict(b *testing.B, maxCells int) (*Dictionary, func(i int) []float64) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, 20000, 3, 120)
	d := buildDict(pts, 1.0, 0.01, maxCells)
	return d, func(i int) []float64 { return pts.At(i % pts.N()) }
}

func BenchmarkQueryIndexed(b *testing.B) {
	d, at := ablationDict(b, 0)
	q := NewQuerier(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Count(at(i))
	}
}

func BenchmarkQueryNoIndex(b *testing.B) {
	d, at := ablationDict(b, 0)
	q := NewQuerier(d)
	q.DisableIndex = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Count(at(i))
	}
}

func BenchmarkQueryDefragmentedWithSkip(b *testing.B) {
	d, at := ablationDict(b, 256)
	q := NewQuerier(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Count(at(i))
	}
}

func BenchmarkQueryDefragmentedNoSkip(b *testing.B) {
	d, at := ablationDict(b, 256)
	q := NewQuerier(d)
	q.DisableMBRSkip = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Count(at(i))
	}
}

// The ablation switches must not change results.
func TestAblationSwitchesPreserveResults(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 2000, 3, 40)
	d := buildDict(pts, 1.0, 0.05, 64)
	base := NewQuerier(d)
	noIdx := NewQuerier(d)
	noIdx.DisableIndex = true
	noSkip := NewQuerier(d)
	noSkip.DisableMBRSkip = true
	for i := 0; i < 200; i++ {
		p := pts.At(r.Intn(pts.N()))
		want := base.Count(p)
		if got := noIdx.Count(p); got != want {
			t.Fatalf("DisableIndex changed result: %d vs %d", got, want)
		}
		if got := noSkip.Count(p); got != want {
			t.Fatalf("DisableMBRSkip changed result: %d vs %d", got, want)
		}
	}
}
