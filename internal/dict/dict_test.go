package dict

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"

	"rpdbscan/internal/testutil"
)

func randomPoints(r *rand.Rand, n, dim int, span float64) *geom.Points {
	p := geom.NewPoints(dim, n)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = r.Float64() * span
		}
		p.Append(row)
	}
	return p
}

func buildDict(pts *geom.Points, eps, rho float64, maxCells int) *Dictionary {
	g := grid.Build(pts, eps)
	p := Params{Eps: eps, Rho: rho, Dim: pts.Dim}
	entries := make([]CellEntry, 0, g.NumCells())
	for _, c := range g.Cells {
		entries = append(entries, BuildEntry(c, pts, p))
	}
	return Build(entries, p, maxCells)
}

func TestBuildEntryCounts(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{
		{0.01, 0.01}, {0.02, 0.02}, {0.6, 0.6},
	}, 2)
	eps := 1.0 * math.Sqrt2 // side = 1.0
	g := grid.Build(pts, eps)
	if g.NumCells() != 1 {
		t.Fatalf("NumCells = %d, want 1", g.NumCells())
	}
	p := Params{Eps: eps, Rho: 0.25, Dim: 2}
	var cell *grid.Cell
	for _, c := range g.Cells {
		cell = c
	}
	e := BuildEntry(cell, pts, p)
	if e.Count != 3 {
		t.Fatalf("cell count = %d, want 3", e.Count)
	}
	var sum int32
	for _, sc := range e.Subs {
		sum += sc.Count
	}
	if sum != 3 {
		t.Fatalf("sub-cell counts sum to %d, want 3", sum)
	}
	if len(e.Subs) != 2 {
		t.Fatalf("sub-cells = %d, want 2 (two close points share one)", len(e.Subs))
	}
}

func TestDictionaryTotals(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, 500, 3, 10)
	d := buildDict(pts, 1.0, 0.05, 0)
	if got := d.TotalPoints(); got != 500 {
		t.Fatalf("TotalPoints = %d, want 500", got)
	}
	if d.NumCells == 0 || d.NumSubCells < d.NumCells {
		t.Fatalf("implausible totals: cells=%d subs=%d", d.NumCells, d.NumSubCells)
	}
}

func TestSizeBitsFormula(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 300, 2, 8)
	d := buildDict(pts, 0.8, 0.1, 0)
	// Lemma 4.3 with d=2, h-1=4.
	want := int64(32*(d.NumCells+d.NumSubCells) + 32*2*d.NumCells + 2*4*d.NumSubCells)
	if got := d.SizeBits(); got != want {
		t.Fatalf("SizeBits = %d, want %d", got, want)
	}
}

func TestDefragmentBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 2000, 2, 50)
	d := buildDict(pts, 1.0, 0.1, 16)
	if len(d.Subs) < 2 {
		t.Fatalf("expected multiple sub-dictionaries, got %d", len(d.Subs))
	}
	totalCells := 0
	for _, sd := range d.Subs {
		if len(sd.Entries) > 16 {
			t.Fatalf("sub-dictionary has %d cells, cap 16", len(sd.Entries))
		}
		totalCells += len(sd.Entries)
	}
	if totalCells != d.NumCells {
		t.Fatalf("defragmentation lost cells: %d vs %d", totalCells, d.NumCells)
	}
	// Cells must remain disjoint across sub-dictionaries.
	seen := map[grid.Key]bool{}
	for _, sd := range d.Subs {
		for i := range sd.Entries {
			k := sd.Entries[i].Key
			if seen[k] {
				t.Fatalf("cell %v appears in two sub-dictionaries", grid.DecodeKey(k))
			}
			seen[k] = true
		}
	}
}

// bruteCount counts points whose sub-cell centre is within eps of p — the
// semantics the querier must match exactly.
func bruteCount(pts *geom.Points, eps, rho float64, p []float64) int64 {
	dim := pts.Dim
	side := grid.Side(eps, dim)
	shift := grid.SubShift(rho)
	subSide := side / float64(int64(1)<<shift)
	origin := make([]float64, dim)
	center := make([]float64, dim)
	var n int64
	for i := 0; i < pts.N(); i++ {
		q := pts.At(i)
		k := grid.KeyFor(q, side)
		k.Origin(side, origin)
		idx := grid.SubIdxFor(q, origin, subSide, shift)
		grid.SubCenter(idx, origin, subSide, shift, center)
		if geom.Dist2(p, center) <= eps*eps {
			n++
		}
	}
	return n
}

func TestQueryMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		dim      int
		rho      float64
		maxCells int
	}{
		{2, 0.1, 0}, {2, 0.01, 8}, {3, 0.05, 16}, {5, 0.25, 0},
	} {
		pts := randomPoints(r, 400, tc.dim, 6)
		eps := 1.2
		d := buildDict(pts, eps, tc.rho, tc.maxCells)
		q := NewQuerier(d)
		for trial := 0; trial < 25; trial++ {
			p := pts.At(r.Intn(pts.N()))
			want := bruteCount(pts, eps, tc.rho, p)
			if got := q.Count(p); got != want {
				t.Fatalf("dim=%d rho=%v maxCells=%d: Count=%d, want %d",
					tc.dim, tc.rho, tc.maxCells, got, want)
			}
		}
	}
}

func TestQueryNeighborCells(t *testing.T) {
	// Two tight clumps 0.5 apart plus one far point: a query at the first
	// clump must see both clumps' cells but not the far cell.
	rows := [][]float64{
		{0, 0}, {0.05, 0.05}, {0.5, 0}, {0.55, 0.05}, {100, 100},
	}
	pts, _ := geom.FromSlice(rows, 2)
	d := buildDict(pts, 1.0, 0.01, 0)
	q := NewQuerier(d)
	count, cells := q.Query(pts.At(0), true, nil)
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	side := grid.Side(1.0, 2)
	farID, ok := d.IDOf(grid.KeyFor([]float64{100, 100}, side))
	if !ok {
		t.Fatal("far cell missing from dictionary")
	}
	for _, id := range cells {
		if id == farID {
			t.Fatal("far cell returned as neighbor")
		}
	}
	if len(cells) == 0 {
		t.Fatal("no neighbor cells returned")
	}
}

func TestSubDictionarySkipping(t *testing.T) {
	// Spread data widely and bound sub-dictionaries so a local query must
	// skip most of them via Lemma 5.10.
	r := rand.New(rand.NewSource(6))
	pts := randomPoints(r, 3000, 2, 200)
	d := buildDict(pts, 1.0, 0.1, 32)
	if len(d.Subs) < 4 {
		t.Fatalf("want >=4 sub-dictionaries, got %d", len(d.Subs))
	}
	q := NewQuerier(d)
	q.Count(pts.At(0))
	if q.SkippedSubDicts == 0 {
		t.Fatal("no sub-dictionary was skipped for a local query")
	}
	// Skipping must not change results: compare against single-sub dict.
	d1 := buildDict(pts, 1.0, 0.1, 0)
	q1 := NewQuerier(d1)
	for trial := 0; trial < 30; trial++ {
		p := pts.At(r.Intn(pts.N()))
		if a, b := q.Count(p), q1.Count(p); a != b {
			t.Fatalf("defragmented count %d != single-dict count %d", a, b)
		}
	}
}

// Property (Lemma 5.2 sandwich): the approximate count is bounded by the
// exact neighbourhood counts at radii (1 -/+ rho/2)*eps... up to boundary
// ties, which we avoid by nudging the radii by a tiny epsilon.
func TestQuerySandwichProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(3)
		rho := []float64{0.25, 0.1, 0.05}[r.Intn(3)]
		pts := randomPoints(r, 200, dim, 4)
		eps := 0.5 + r.Float64()
		d := buildDict(pts, eps, rho, 0)
		q := NewQuerier(d)
		p := pts.At(r.Intn(pts.N()))
		got := q.Count(p)
		const tie = 1e-9
		lo, hi := int64(0), int64(0)
		loR := (1 - rho/2) * eps
		hiR := (1 + rho/2) * eps
		for i := 0; i < pts.N(); i++ {
			dd := geom.Dist(p, pts.At(i))
			if dd <= loR-tie {
				lo++
			}
			if dd <= hiR+tie {
				hi++
			}
		}
		return lo <= got && got <= hi
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 212, 120)); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, dim := range []int{2, 3, 13} {
		pts := randomPoints(r, 300, dim, 5)
		d := buildDict(pts, 1.5, 0.01, 8)
		buf := d.Encode()
		got, err := Decode(buf, 8)
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if got.NumCells != d.NumCells || got.NumSubCells != d.NumSubCells {
			t.Fatalf("dim %d: totals changed: %d/%d vs %d/%d",
				dim, got.NumCells, got.NumSubCells, d.NumCells, d.NumSubCells)
		}
		if got.TotalPoints() != d.TotalPoints() {
			t.Fatalf("dim %d: point totals changed", dim)
		}
		// Entry-level equality, order-independent.
		collect := func(x *Dictionary) map[grid.Key][]SubCell {
			m := map[grid.Key][]SubCell{}
			for _, sd := range x.Subs {
				for i := range sd.Entries {
					m[sd.Entries[i].Key] = sd.Entries[i].Subs
				}
			}
			return m
		}
		a, b := collect(d), collect(got)
		for k, subs := range a {
			bs, ok := b[k]
			if !ok || len(bs) != len(subs) {
				t.Fatalf("dim %d: cell %v mismatch", dim, grid.DecodeKey(k))
			}
			sort.Slice(bs, func(i, j int) bool {
				if bs[i].Idx.Hi != bs[j].Idx.Hi {
					return bs[i].Idx.Hi < bs[j].Idx.Hi
				}
				return bs[i].Idx.Lo < bs[j].Idx.Lo
			})
			for i := range subs {
				if subs[i] != bs[i] {
					t.Fatalf("dim %d: sub-cell %d differs", dim, i)
				}
			}
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randomPoints(r, 50, 2, 5)
	d := buildDict(pts, 1.0, 0.1, 0)
	buf := d.Encode()
	if _, err := Decode(buf[:len(buf)-3], 0); err == nil {
		t.Fatal("Decode accepted truncated buffer")
	}
	if _, err := Decode(append(buf, 0), 0); err == nil {
		t.Fatal("Decode accepted trailing bytes")
	}
	bad := append([]byte("XXXX"), buf[4:]...)
	if _, err := Decode(bad, 0); err == nil {
		t.Fatal("Decode accepted bad magic")
	}
}

// The wire checksum must reject any body corruption outright, and Reseal
// must reopen the parser for tests that corrupt bytes on purpose.
func TestDecodeChecksumGate(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	pts := randomPoints(r, 50, 2, 5)
	d := buildDict(pts, 1.0, 0.1, 0)
	buf := d.Encode()
	for _, pos := range []int{12, 16, len(buf) / 2, len(buf) - 1} {
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 0x01
		_, err := Decode(mut, 0)
		if err == nil {
			t.Fatalf("flip at byte %d accepted", pos)
		}
		if !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("flip at byte %d: got %v, want checksum mismatch", pos, err)
		}
	}
	// Corrupting the checksum field itself is also a mismatch.
	mut := append([]byte(nil), buf...)
	mut[5] ^= 0xff
	if _, err := Decode(mut, 0); err == nil {
		t.Fatal("corrupt checksum field accepted")
	}
	// Reseal restores decodability of an intact body...
	if _, err := Decode(Reseal(mut), 0); err != nil {
		t.Fatalf("resealed intact body rejected: %v", err)
	}
	// ...and routes a corrupted body past the gate into the validators.
	mut = append([]byte(nil), buf...)
	mut[len(mut)-1] ^= 0xff // a sub-cell count: header still parses
	if _, err := Decode(Reseal(mut), 0); err != nil &&
		strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatal("Reseal did not bypass the checksum gate")
	}
}

func TestCellIDsAreDenseAndSorted(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := randomPoints(r, 500, 2, 20)
	d := buildDict(pts, 1.0, 0.1, 16)
	if len(d.Keys) != d.NumCells {
		t.Fatalf("Keys has %d entries, want %d", len(d.Keys), d.NumCells)
	}
	for i := 1; i < len(d.Keys); i++ {
		if d.Keys[i-1] >= d.Keys[i] {
			t.Fatal("Keys not strictly sorted")
		}
	}
	// IDOf(Keys[i]) == i and Entry(i).ID == i across defragmented
	// sub-dictionaries.
	for i, k := range d.Keys {
		id, ok := d.IDOf(k)
		if !ok || int(id) != i {
			t.Fatalf("IDOf(Keys[%d]) = %d,%v", i, id, ok)
		}
		if e := d.Entry(id); e == nil || e.ID != id || e.Key != k {
			t.Fatalf("Entry(%d) inconsistent", id)
		}
	}
}

func TestIDsStableAcrossDecode(t *testing.T) {
	// Every decoded replica must agree on ids — the invariant the cell
	// graphs rely on.
	r := rand.New(rand.NewSource(12))
	pts := randomPoints(r, 400, 3, 10)
	d := buildDict(pts, 1.0, 0.05, 8)
	buf := d.Encode()
	d2, err := Decode(buf, 32) // different defragmentation bound
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Keys) != len(d.Keys) {
		t.Fatal("cell counts differ")
	}
	for i := range d.Keys {
		if d.Keys[i] != d2.Keys[i] {
			t.Fatalf("id %d maps to different keys across replicas", i)
		}
	}
}

func TestLookup(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{{0.1, 0.1}, {5, 5}}, 2)
	d := buildDict(pts, 1.0, 0.5, 1)
	side := grid.Side(1.0, 2)
	if e := d.Lookup(grid.KeyFor([]float64{0.1, 0.1}, side)); e == nil || e.Count != 1 {
		t.Fatalf("Lookup existing cell = %+v", e)
	}
	if e := d.Lookup(grid.KeyFor([]float64{99, 99}, side)); e != nil {
		t.Fatal("Lookup returned entry for empty cell")
	}
}
