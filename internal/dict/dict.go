// Package dict implements the two-level cell dictionary of Definition 4.2:
// a compact summary of the entire data set in which the first level is the
// set of non-empty cells and the second level records, per cell, the number
// of points in each non-empty sub-cell. Points are approximated by the
// centre of their sub-cell.
//
// The dictionary is organised as a set of disjoint sub-dictionaries
// (Definition 4.4) produced by binary-space-partitioning defragmentation
// (Section 4.2.2); each sub-dictionary carries its minimum bounding
// rectangle so that irrelevant sub-dictionaries are skipped during
// (eps,rho)-region queries (Lemma 5.10).
package dict

import (
	"sort"
	"sync"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"
	"rpdbscan/internal/kdtree"
)

// SubCell is one second-level entry: the packed position of a sub-cell
// inside its cell and the number of points it contains.
type SubCell struct {
	Idx   grid.SubIdx
	Count int32
}

// CellEntry is one first-level entry: a cell, its total point count, and
// its non-empty sub-cells. ID is the cell's dense global id, assigned by
// Build in ascending key order; cell graphs identify cells by this id.
type CellEntry struct {
	Key   grid.Key
	ID    int32
	Count int32
	Subs  []SubCell
}

// SubDict is a disjoint part of the dictionary: a subset of cells plus the
// index structures needed to query them.
type SubDict struct {
	Entries []CellEntry
	// MBR bounds all sub-cell centres in this sub-dictionary
	// (Definition 5.9).
	MBR geom.Box

	tree    *kdtree.Tree // over cell centres; payload = entry index
	centers *geom.Points

	// subCenters stores every entry's sub-cell centres decoded once at
	// build time, flat and entry-major: entry ei's centres occupy
	// subCenters[subOff[ei]*dim : subOff[ei+1]*dim]. Region queries read
	// these instead of re-deriving grid.SubCenter per point x per
	// sub-cell, which dominated the Phase II hot path.
	subCenters []float64
	subOff     []int32
	// subCentersT is the same data transposed within each entry
	// (dimension-major): coordinate d of entry ei's m centres is the dense
	// lane subCentersT[subOff[ei]*dim + d*m : subOff[ei]*dim + (d+1)*m].
	// The blocked residual kernels accumulate squared distances one
	// dimension lane at a time over it. subCounts holds the matching
	// sub-cell point counts as one flat lane per entry.
	subCentersT []float64
	subCounts   []int32
}

// SubCenters returns the flat precomputed sub-cell centres of entry ei,
// len(Entries[ei].Subs)*dim values, centre j at [j*dim:(j+1)*dim].
func (sd *SubDict) SubCenters(ei int, dim int) []float64 {
	return sd.subCenters[int(sd.subOff[ei])*dim : int(sd.subOff[ei+1])*dim]
}

// SubCentersT returns entry ei's sub-cell centres transposed: with m
// centres, coordinate d is the dense lane [d*m : (d+1)*m].
func (sd *SubDict) SubCentersT(ei int, dim int) []float64 {
	return sd.subCentersT[int(sd.subOff[ei])*dim : int(sd.subOff[ei+1])*dim]
}

// SubCounts returns entry ei's sub-cell point counts as one flat lane,
// parallel to the centre order of SubCenters/SubCentersT.
func (sd *SubDict) SubCounts(ei int) []int32 {
	return sd.subCounts[sd.subOff[ei]:sd.subOff[ei+1]]
}

// Dictionary is the complete two-level cell dictionary.
type Dictionary struct {
	Eps     float64
	Rho     float64
	Dim     int
	Side    float64 // cell side length eps/sqrt(dim)
	SubSide float64 // sub-cell side length Side/2^Shift
	Shift   uint    // h-1 = ceil(log2(1/rho))

	Subs []*SubDict

	// Keys maps a cell id back to its key (ids are assigned in ascending
	// key order, so Keys is sorted and IDOf is a binary search).
	Keys []grid.Key
	byID []*CellEntry

	// NumCells and NumSubCells are totals across all sub-dictionaries.
	NumCells    int
	NumSubCells int

	// qpool recycles Queriers (AcquireQuerier/ReleaseQuerier) so short
	// tasks that each need a querier don't regrow its scratch from zero.
	qpool sync.Pool
}

// IDOf returns the dense id of a cell key, if the cell is non-empty.
func (d *Dictionary) IDOf(k grid.Key) (int32, bool) {
	i := sort.Search(len(d.Keys), func(i int) bool { return d.Keys[i] >= k })
	if i < len(d.Keys) && d.Keys[i] == k {
		return int32(i), true
	}
	return 0, false
}

// Params fixes the geometry shared by all partial dictionaries of a run.
type Params struct {
	Eps float64
	Rho float64
	Dim int
}

func (p Params) side() float64 { return grid.Side(p.Eps, p.Dim) }
func (p Params) shift() uint   { return grid.SubShift(p.Rho) }
func (p Params) subSide() float64 {
	return p.side() / float64(int64(1)<<p.shift())
}

// BuildEntry summarises one cell of the grid into a CellEntry given the
// originating point set (Algorithm 2, Cell_Dictionary_Building map side).
func BuildEntry(cell *grid.Cell, pts *geom.Points, p Params) CellEntry {
	side, shift, subSide := p.side(), p.shift(), p.subSide()
	origin := make([]float64, p.Dim)
	cell.Key.Origin(side, origin)
	counts := make(map[grid.SubIdx]int32, len(cell.Points))
	for _, pi := range cell.Points {
		counts[grid.SubIdxFor(pts.At(pi), origin, subSide, shift)]++
	}
	e := CellEntry{Key: cell.Key, Count: int32(len(cell.Points)), Subs: make([]SubCell, 0, len(counts))}
	for idx, c := range counts {
		e.Subs = append(e.Subs, SubCell{Idx: idx, Count: c})
	}
	// Deterministic order independent of map iteration.
	sort.Slice(e.Subs, func(i, j int) bool {
		a, b := e.Subs[i].Idx, e.Subs[j].Idx
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	})
	return e
}

// Build assembles a dictionary from cell entries (typically the union of all
// partitions' entries) and defragments it so no sub-dictionary exceeds
// maxCellsPerSub cells. maxCellsPerSub <= 0 keeps a single sub-dictionary.
func Build(entries []CellEntry, p Params, maxCellsPerSub int) *Dictionary {
	d := &Dictionary{
		Eps:     p.Eps,
		Rho:     p.Rho,
		Dim:     p.Dim,
		Side:    p.side(),
		SubSide: p.subSide(),
		Shift:   p.shift(),
	}
	// Assign dense ids in ascending key order. The assignment is a pure
	// function of the cell-key set, so every decoded replica of the
	// dictionary agrees on ids without shipping them.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	d.Keys = make([]grid.Key, len(entries))
	for i := range entries {
		entries[i].ID = int32(i)
		d.Keys[i] = entries[i].Key
		d.NumCells++
		d.NumSubCells += len(entries[i].Subs)
	}
	groups := defragment(entries, p, maxCellsPerSub)
	d.Subs = make([]*SubDict, 0, len(groups))
	d.byID = make([]*CellEntry, len(entries))
	for _, g := range groups {
		sd := newSubDict(g, d)
		d.Subs = append(d.Subs, sd)
		for i := range sd.Entries {
			d.byID[sd.Entries[i].ID] = &sd.Entries[i]
		}
	}
	return d
}

// defragment recursively applies binary space partitioning to the cells:
// each step sorts by the widest axis of the current cell bounding box and
// cuts at the median, which minimises the size difference between the two
// components (Section 4.2.2, Figure 6).
func defragment(entries []CellEntry, p Params, maxCells int) [][]CellEntry {
	if maxCells <= 0 || len(entries) <= maxCells {
		if len(entries) == 0 {
			return nil
		}
		return [][]CellEntry{entries}
	}
	dim := p.Dim
	lo := make([]int32, dim)
	hi := make([]int32, dim)
	for i := 0; i < dim; i++ {
		lo[i] = entries[0].Key.Coord(i)
		hi[i] = lo[i]
	}
	for _, e := range entries[1:] {
		for i := 0; i < dim; i++ {
			c := e.Key.Coord(i)
			if c < lo[i] {
				lo[i] = c
			}
			if c > hi[i] {
				hi[i] = c
			}
		}
	}
	axis, widest := 0, hi[0]-lo[0]
	for i := 1; i < dim; i++ {
		if w := hi[i] - lo[i]; w > widest {
			widest, axis = w, i
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		ci, cj := entries[i].Key.Coord(axis), entries[j].Key.Coord(axis)
		if ci != cj {
			return ci < cj
		}
		return entries[i].Key < entries[j].Key
	})
	mid := len(entries) / 2
	out := defragment(entries[:mid], p, maxCells)
	return append(out, defragment(entries[mid:], p, maxCells)...)
}

func newSubDict(entries []CellEntry, d *Dictionary) *SubDict {
	sd := &SubDict{Entries: entries, MBR: geom.NewBox(d.Dim)}
	sd.centers = geom.NewPoints(d.Dim, len(entries))
	numSubs := 0
	for i := range entries {
		numSubs += len(entries[i].Subs)
	}
	sd.subOff = make([]int32, len(entries)+1)
	sd.subCenters = make([]float64, 0, numSubs*d.Dim)
	origin := make([]float64, d.Dim)
	center := make([]float64, d.Dim)
	var off int32
	for ei, e := range entries {
		e.Key.Origin(d.Side, origin)
		e.Key.Center(d.Side, center)
		sd.centers.Append(center)
		// Decode every sub-cell centre once, here, so region queries read
		// a flat array instead of unpacking grid.SubCenter per point x
		// per sub-cell.
		sd.subOff[ei] = off
		for _, sc := range e.Subs {
			grid.SubCenter(sc.Idx, origin, d.SubSide, d.Shift, center)
			sd.subCenters = append(sd.subCenters, center...)
		}
		off += int32(len(e.Subs))
		// Bound the MBR by the whole cell box rather than the exact
		// sub-cell centres: a (slightly) larger MBR only makes the
		// Lemma 5.10 skip test conservative, never wrong.
		sd.MBR.Extend(origin)
		for i := range center {
			center[i] = origin[i] + d.Side
		}
		sd.MBR.Extend(center)
	}
	sd.subOff[len(entries)] = off
	// Transpose each entry's centres into dimension-major lanes and flatten
	// the sub-cell counts, once, for the blocked residual kernels.
	sd.subCentersT = make([]float64, len(sd.subCenters))
	sd.subCounts = make([]int32, 0, numSubs)
	for ei := range entries {
		m := int(sd.subOff[ei+1] - sd.subOff[ei])
		base := int(sd.subOff[ei]) * d.Dim
		for j := 0; j < m; j++ {
			for dd := 0; dd < d.Dim; dd++ {
				sd.subCentersT[base+dd*m+j] = sd.subCenters[base+j*d.Dim+dd]
			}
		}
		for _, sc := range entries[ei].Subs {
			sd.subCounts = append(sd.subCounts, sc.Count)
		}
	}
	sd.tree = kdtree.Build(sd.centers, nil)
	return sd
}

// Lookup returns the entry for a cell key, or nil if the cell is empty.
func (d *Dictionary) Lookup(k grid.Key) *CellEntry {
	id, ok := d.IDOf(k)
	if !ok {
		return nil
	}
	return d.byID[id]
}

// Entry returns the entry for a cell id.
func (d *Dictionary) Entry(id int32) *CellEntry { return d.byID[id] }

// SizeBits returns the dictionary size in bits per Lemma 4.3:
// 32*(|cell|+|sub-cell|) for densities, plus 32*d*|cell| for exact cell
// positions and d*(h-1) bits per sub-cell for sub-cell ordering positions.
func (d *Dictionary) SizeBits() int64 {
	cells := int64(d.NumCells)
	subs := int64(d.NumSubCells)
	dd := int64(d.Dim)
	h1 := int64(d.Shift)
	return 32*(cells+subs) + 32*dd*cells + dd*h1*subs
}

// TotalPoints returns the sum of cell counts (the data set size N).
func (d *Dictionary) TotalPoints() int64 {
	var n int64
	for _, sd := range d.Subs {
		for i := range sd.Entries {
			n += int64(sd.Entries[i].Count)
		}
	}
	return n
}

// Querier performs (eps,rho)-region queries against a dictionary. It holds
// reusable scratch buffers and must not be shared between goroutines.
type Querier struct {
	d        *Dictionary
	halfDiag float64 // half the cell diagonal = eps/2
	origin   []float64
	center   []float64
	cand     []int
	// SkippedSubDicts counts sub-dictionaries pruned by Lemma 5.10 since
	// the querier was created; used by instrumentation and tests.
	SkippedSubDicts int64

	// DisableIndex makes candidate-cell lookup scan every entry instead
	// of using the kd-tree — the ablation of Lemma 5.6's index. Results
	// are identical; only cost changes.
	DisableIndex bool
	// DisableMBRSkip turns off the sub-dictionary pruning of Lemma 5.10
	// — the ablation of dictionary defragmentation's benefit. Results
	// are identical; only cost changes.
	DisableMBRSkip bool
	// DisableBatching tells batching-aware callers (core's Phase II) to
	// answer region queries with the per-point Query path instead of
	// QueryCell — the ablation that keeps the pre-batching code as the
	// correctness oracle. Results are identical; only cost changes.
	DisableBatching bool

	// batch and the infl buffers back QueryCell.
	batch          CellBatch
	inflLo, inflHi []float64
}

// AcquireQuerier returns a querier for d from its pool, with flags and
// counters reset but scratch buffers retained — many short-lived tasks each
// needing a querier (Phase II runs one per partition) would otherwise
// regrow the batch scratch from zero every time. Return it with
// ReleaseQuerier; like NewQuerier's result it must not be shared between
// goroutines.
func (d *Dictionary) AcquireQuerier() *Querier {
	if q, ok := d.qpool.Get().(*Querier); ok {
		q.SkippedSubDicts = 0
		q.DisableIndex, q.DisableMBRSkip, q.DisableBatching = false, false, false
		return q
	}
	return NewQuerier(d)
}

// ReleaseQuerier returns an acquired querier to d's pool. The querier must
// not be used afterwards.
func (d *Dictionary) ReleaseQuerier(q *Querier) { d.qpool.Put(q) }

// NewQuerier returns a querier for d.
func NewQuerier(d *Dictionary) *Querier {
	q := &Querier{
		d:        d,
		halfDiag: d.Eps / 2,
		origin:   make([]float64, d.Dim),
		center:   make([]float64, d.Dim),
		inflLo:   make([]float64, d.Dim),
		inflHi:   make([]float64, d.Dim),
	}
	q.batch.qlo = make([]float64, d.Dim)
	q.batch.qhi = make([]float64, d.Dim)
	return q
}

// Query performs an (eps,rho)-region query for point p (Definition 5.1):
// it finds every sub-cell whose centre is within eps of p. It returns the
// total number of points in those sub-cells and appends to cells the id of
// every cell contributing at least one such sub-cell (the neighbor cells NC
// of Algorithm 3 line 13). cells may be nil when only the count matters.
func (q *Querier) Query(p []float64, wantCells bool, cells []int32) (count int64, outCells []int32) {
	d := q.d
	eps := d.Eps
	eps2 := eps * eps
	// A cell can contain a qualifying sub-cell centre only if its own
	// centre is within eps + halfDiag of p (any cell point is within
	// halfDiag of the cell centre).
	candR := eps + q.halfDiag
	for _, sd := range d.Subs {
		if sd.MBR.Empty() {
			continue
		}
		if !q.DisableMBRSkip && sd.MBR.Outside(p, eps) {
			q.SkippedSubDicts++
			continue // Lemma 5.10: no (eps,rho)-neighbor in this sub-dictionary
		}
		q.cand = q.cand[:0]
		if q.DisableIndex {
			for ei := range sd.Entries {
				if geom.Dist2(p, sd.centers.At(ei)) <= candR*candR {
					q.cand = append(q.cand, ei)
				}
			}
		} else {
			q.cand = sd.tree.InBall(p, candR, q.cand)
		}
		for _, ei := range q.cand {
			e := &sd.Entries[ei]
			e.Key.Origin(d.Side, q.origin)
			// Fully contained cell: the farthest cell corner is within
			// eps of p, so every sub-cell centre qualifies without a
			// per-sub-cell distance check (Example 5.5, cell level).
			var far2 float64
			for i := 0; i < d.Dim; i++ {
				d1 := p[i] - q.origin[i]
				d2 := q.origin[i] + d.Side - p[i]
				if d1 < 0 {
					d1 = -d1
				}
				if d2 < 0 {
					d2 = -d2
				}
				if d2 > d1 {
					d1 = d2
				}
				far2 += d1 * d1
			}
			matched := false
			if far2 <= eps2 {
				for _, sc := range e.Subs {
					count += int64(sc.Count)
				}
				matched = true
			} else {
				for _, sc := range e.Subs {
					grid.SubCenter(sc.Idx, q.origin, d.SubSide, d.Shift, q.center)
					if geom.Dist2(p, q.center) <= eps2 {
						count += int64(sc.Count)
						matched = true
					}
				}
			}
			if matched && wantCells {
				cells = append(cells, e.ID)
			}
		}
	}
	return count, cells
}

// Count returns only the approximate neighborhood size of p (the core-test
// quantity of Algorithm 3 lines 7-9).
func (q *Querier) Count(p []float64) int64 {
	n, _ := q.Query(p, false, nil)
	return n
}
