package dict

import (
	"sort"

	"rpdbscan/internal/grid"
)

// StreamBuilder accumulates one partition's cell entries incrementally
// from streamed fragments — the out-of-core replacement for BuildEntry,
// which needs a cell's complete point list at once. Feeding the same
// points in any fragmentation produces entries byte-identical (under
// EncodeEntries) to the in-memory path: per-cell sub-cell counts are
// order-independent sums, and Entries applies the same deterministic
// sorts. Peak memory is O(cells + sub-cells), never O(points).
type StreamBuilder struct {
	p       Params
	side    float64
	subSide float64
	shift   uint
	cells   map[grid.Key]*streamCell
	origin  []float64 // scratch for the current cell's minimum corner
}

// streamCell is one cell's running summary.
type streamCell struct {
	count int32
	subs  map[grid.SubIdx]int32
}

// NewStreamBuilder returns an empty accumulator for the given geometry.
func NewStreamBuilder(p Params) *StreamBuilder {
	return &StreamBuilder{
		p:       p,
		side:    p.side(),
		subSide: p.subSide(),
		shift:   p.shift(),
		cells:   make(map[grid.Key]*streamCell),
		origin:  make([]float64, p.Dim),
	}
}

// Add folds one fragment of a cell into the summary: n = len(coords)/Dim
// points known to lie in the cell with the given key, point-major.
func (b *StreamBuilder) Add(key grid.Key, coords []float64) {
	c := b.cells[key]
	if c == nil {
		c = &streamCell{subs: make(map[grid.SubIdx]int32)}
		b.cells[key] = c
	}
	key.Origin(b.side, b.origin)
	dim := b.p.Dim
	n := len(coords) / dim
	c.count += int32(n)
	for i := 0; i < n; i++ {
		c.subs[grid.SubIdxFor(coords[i*dim:(i+1)*dim], b.origin, b.subSide, b.shift)]++
	}
}

// NumCells returns the number of distinct cells accumulated so far.
func (b *StreamBuilder) NumCells() int { return len(b.cells) }

// Entries returns the accumulated cells as dictionary entries in
// ascending key order, each cell's sub-cells sorted exactly as BuildEntry
// sorts them. IDs are left unassigned (Build assigns them globally).
func (b *StreamBuilder) Entries() []CellEntry {
	keys := make([]grid.Key, 0, len(b.cells))
	for key := range b.cells {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	entries := make([]CellEntry, 0, len(keys))
	for _, key := range keys {
		c := b.cells[key]
		e := CellEntry{Key: key, Count: c.count, Subs: make([]SubCell, 0, len(c.subs))}
		for idx, cnt := range c.subs {
			e.Subs = append(e.Subs, SubCell{Idx: idx, Count: cnt})
		}
		sort.Slice(e.Subs, func(i, j int) bool {
			a, s := e.Subs[i].Idx, e.Subs[j].Idx
			if a.Hi != s.Hi {
				return a.Hi < s.Hi
			}
			return a.Lo < s.Lo
		})
		entries = append(entries, e)
	}
	return entries
}
