package dict

import (
	"math/rand"
	"sort"
	"testing"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"
)

// skewedPoints mixes a dense clump with a uniform background so cells span
// the full range from crowded to singleton.
func skewedPoints(r *rand.Rand, n, dim int, span float64) *geom.Points {
	p := geom.NewPoints(dim, n)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		if i%4 == 0 { // uniform background
			for j := range row {
				row[j] = r.Float64() * span
			}
		} else { // dense clump near the origin corner
			for j := range row {
				row[j] = r.NormFloat64() * span / 40
			}
		}
		p.Append(row)
	}
	return p
}

// checkBatchMatchesQuery runs every cell of the data set through QueryCell
// and asserts, point by point, that counts and neighbor-cell sets match
// the per-point oracle Query exactly.
func checkBatchMatchesQuery(t *testing.T, pts *geom.Points, eps, rho float64, maxCells int, disableIndex bool) {
	t.Helper()
	d := buildDict(pts, eps, rho, maxCells)
	oracle := NewQuerier(d)
	batched := NewQuerier(d)
	batched.DisableIndex = disableIndex
	g := grid.Build(pts, eps)
	var blk geom.Block
	for _, cell := range g.Cells {
		b := batched.QueryCell(cell.Key)
		// Blocked kernels against the scalar per-point path: exact counts
		// (bit-identical residual arithmetic), exact early-exit values, and
		// the neighbor-id union over an arbitrary selection.
		blk.Gather(pts, cell.Points)
		n := len(cell.Points)
		counts := make([]int64, n)
		b.CountPoints(&blk, 0, counts)
		for i, pi := range cell.Points {
			if want := b.CountPoint(pts.At(pi), 0); counts[i] != want {
				t.Fatalf("maxCells=%d: CountPoints[%d]=%d, CountPoint=%d", maxCells, i, counts[i], want)
			}
		}
		for _, stop := range []int64{1, 7, 1 << 40} {
			b.CountPoints(&blk, stop, counts)
			for i, pi := range cell.Points {
				if want := b.CountPoint(pts.At(pi), stop); counts[i] != want {
					t.Fatalf("maxCells=%d stop=%d: CountPoints[%d]=%d, CountPoint=%d",
						maxCells, stop, i, counts[i], want)
				}
			}
		}
		sel := make([]bool, n)
		union := map[int32]bool{}
		for i, pi := range cell.Points {
			sel[i] = i%2 == 0 || i == n-1
			if sel[i] {
				for _, id := range b.AppendNeighbors(pts.At(pi), nil) {
					union[id] = true
				}
			}
		}
		gotUnion := map[int32]bool{}
		for _, id := range b.AppendNeighborsBlock(&blk, sel, nil) {
			if gotUnion[id] {
				t.Fatalf("maxCells=%d: AppendNeighborsBlock repeats id %d", maxCells, id)
			}
			gotUnion[id] = true
		}
		if len(gotUnion) != len(union) {
			t.Fatalf("maxCells=%d: blocked neighbor union %v != %v", maxCells, gotUnion, union)
		}
		for id := range union {
			if !gotUnion[id] {
				t.Fatalf("maxCells=%d: blocked neighbor union missing %d", maxCells, id)
			}
		}
		for _, pi := range cell.Points {
			p := pts.At(pi)
			wantCount, wantCells := oracle.Query(p, true, nil)
			if got := b.CountPoint(p, 0); got != wantCount {
				t.Fatalf("maxCells=%d idx=%v: CountPoint=%d, Query=%d", maxCells, !disableIndex, got, wantCount)
			}
			gotCells := append([]int32(nil), b.InsideCells()...)
			gotCells = b.AppendNeighbors(p, gotCells)
			sortIDs := func(s []int32) {
				sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			}
			sortIDs(gotCells)
			sortIDs(wantCells)
			if len(gotCells) != len(wantCells) {
				t.Fatalf("maxCells=%d: neighbor cells %v != %v", maxCells, gotCells, wantCells)
			}
			for i := range gotCells {
				if gotCells[i] != wantCells[i] {
					t.Fatalf("maxCells=%d: neighbor cells %v != %v", maxCells, gotCells, wantCells)
				}
			}
			// Early exit must agree with the full count on the core
			// decision at a few thresholds around the count.
			for _, stop := range []int64{1, wantCount, wantCount + 1} {
				if stop <= 0 {
					continue
				}
				got := b.CountPoint(p, stop)
				if (got >= stop) != (wantCount >= stop) {
					t.Fatalf("early exit at %d flips core decision: %d vs %d", stop, got, wantCount)
				}
			}
		}
	}
}

func TestQueryCellMatchesQuery(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		dim      int
		rho      float64
		maxCells int
	}{
		{2, 0.1, 0}, {2, 0.01, 8}, {3, 0.05, 16}, {5, 0.25, 4},
	} {
		uniform := randomPoints(r, 500, tc.dim, 8)
		checkBatchMatchesQuery(t, uniform, 1.2, tc.rho, tc.maxCells, false)
		skewed := skewedPoints(r, 500, tc.dim, 8)
		checkBatchMatchesQuery(t, skewed, 1.2, tc.rho, tc.maxCells, false)
		checkBatchMatchesQuery(t, skewed, 1.2, tc.rho, tc.maxCells, true)
	}
}

// TestQueryCellStraddlesSubDicts pins the case where a query cell's
// eps-region spans several sub-dictionary MBRs: tiny sub-dictionaries force
// every batch to cross MBR boundaries.
func TestQueryCellStraddlesSubDicts(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	pts := skewedPoints(r, 1200, 2, 30)
	d := buildDict(pts, 1.5, 0.05, 2) // 2 cells per sub-dictionary
	if len(d.Subs) < 8 {
		t.Fatalf("want many sub-dictionaries, got %d", len(d.Subs))
	}
	checkBatchMatchesQuery(t, pts, 1.5, 0.05, 2, false)
}

// TestQueryCellInsideClassification checks that a dense clump actually
// produces fully-inside candidates (the batch's cell-level hoisting), not
// just boundary ones — otherwise the fast path is dead code.
func TestQueryCellInsideClassification(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	// Large eps vs span: many whole cells sit deep inside the eps-ball.
	pts := randomPoints(r, 2000, 2, 4)
	d := buildDict(pts, 3.0, 0.05, 0)
	q := NewQuerier(d)
	g := grid.Build(pts, 3.0)
	sawInside := false
	for _, cell := range g.Cells {
		b := q.QueryCell(cell.Key)
		if len(b.InsideCells()) > 0 {
			sawInside = true
		}
		if b.InsideCount() < 0 {
			t.Fatal("negative inside count")
		}
	}
	if !sawInside {
		t.Fatal("no cell produced a fully-inside candidate")
	}
}

// FuzzQueryCellEquivalence fuzzes the batched path against the per-point
// oracle over generated data. Seeds include a defragmentation bound of 2,
// which makes every query cell straddle sub-dictionary MBRs.
func FuzzQueryCellEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0), false)
	f.Add(int64(7), uint8(3), uint8(2), false) // straddling sub-dict MBRs
	f.Add(int64(9), uint8(2), uint8(8), true)
	f.Fuzz(func(t *testing.T, seed int64, dim uint8, maxCells uint8, skew bool) {
		d := 1 + int(dim)%4
		r := rand.New(rand.NewSource(seed))
		var pts *geom.Points
		if skew {
			pts = skewedPoints(r, 300, d, 6)
		} else {
			pts = randomPoints(r, 300, d, 6)
		}
		eps := 0.8 + float64((seed%5+5)%5)/5
		rho := []float64{0.25, 0.1, 0.05}[int(uint64(seed)%3)]
		mc := int(maxCells)
		dict := buildDict(pts, eps, rho, mc)
		oracle := NewQuerier(dict)
		batched := NewQuerier(dict)
		g := grid.Build(pts, eps)
		for _, cell := range g.Cells {
			b := batched.QueryCell(cell.Key)
			for _, pi := range cell.Points {
				p := pts.At(pi)
				want, _ := oracle.Query(p, false, nil)
				if got := b.CountPoint(p, 0); got != want {
					t.Fatalf("seed=%d dim=%d maxCells=%d: CountPoint=%d, Query=%d",
						seed, d, mc, got, want)
				}
			}
		}
	})
}
