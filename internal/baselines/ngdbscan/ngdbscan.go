// Package ngdbscan implements NG-DBSCAN (Lulli et al., VLDB 2016), the
// vertex-centric baseline of Section 2.2.3: an approximate neighbor graph
// converges from a random starting configuration through NN-Descent-style
// iterations (each vertex proposes its neighbors' neighbors as candidates
// and keeps the closest), and DBSCAN clusters are then read off the
// neighbor graph instead of running region queries.
//
// As in the paper's evaluation, the neighbor-graph construction dominates
// the cost on large data sets.
package ngdbscan

import (
	"math/rand"
	"sort"

	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
)

// Noise is the label of points in no cluster.
const Noise = -1

// Config parameterises NG-DBSCAN.
type Config struct {
	Eps    float64
	MinPts int
	// M is the neighbor-list size per vertex; it must be >= MinPts for
	// core points to be detectable. Zero defaults to max(2*MinPts, 16).
	M int
	// MaxIterations bounds the neighbor-graph refinement. Zero defaults
	// to 12.
	MaxIterations int
	// TerminationFrac stops iterating when fewer than
	// TerminationFrac*n*M list updates happen in a round. Zero defaults
	// to 0.001.
	TerminationFrac float64
	Seed            int64
}

// Result is the clustering output.
type Result struct {
	Labels      []int
	CorePoint   []bool
	NumClusters int
	// Iterations is how many refinement rounds ran.
	Iterations int
	Report     *engine.Report
}

type neighbor struct {
	idx  int32
	dist float64
}

// Run executes NG-DBSCAN on the cluster.
func Run(pts *geom.Points, cfg Config, cl *engine.Cluster) *Result {
	n := pts.N()
	res := &Result{Labels: make([]int, n), CorePoint: make([]bool, n)}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		res.Report = cl.Report()
		return res
	}
	m := cfg.M
	if m == 0 {
		m = 2 * cfg.MinPts
		if m < 16 {
			m = 16
		}
	}
	if m > n-1 {
		m = n - 1
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 12
	}
	termFrac := cfg.TerminationFrac
	if termFrac == 0 {
		termFrac = 0.001
	}
	chunks := cl.Workers
	if chunks < 1 {
		chunks = 1
	}
	if chunks > n {
		chunks = n
	}

	// ---- Random starting configuration.
	lists := make([][]neighbor, n)
	cl.RunStage("graph", "ng-init", chunks, func(t int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)))
		lo, hi := t*n/chunks, (t+1)*n/chunks
		for u := lo; u < hi; u++ {
			seen := map[int32]bool{int32(u): true}
			l := make([]neighbor, 0, m)
			for len(l) < m {
				v := int32(rng.Intn(n))
				if seen[v] {
					continue
				}
				seen[v] = true
				l = append(l, neighbor{v, geom.Dist(pts.At(u), pts.At(int(v)))})
			}
			sort.Slice(l, func(i, j int) bool { return l[i].dist < l[j].dist })
			lists[u] = l
		}
	})

	// ---- NN-Descent refinement: each vertex examines its neighbors'
	// neighbors; double-buffered so rounds are race-free and
	// deterministic.
	updates := make([]int, chunks)
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		next := make([][]neighbor, n)
		cl.RunStage("graph", stageName(iter), chunks, func(t int) {
			lo, hi := t*n/chunks, (t+1)*n/chunks
			upd := 0
			for u := lo; u < hi; u++ {
				cur := lists[u]
				worst := cur[len(cur)-1].dist
				seen := make(map[int32]bool, 4*m)
				seen[int32(u)] = true
				for _, nb := range cur {
					seen[nb.idx] = true
				}
				merged := append(make([]neighbor, 0, 2*m), cur...)
				pu := pts.At(u)
				for _, nb := range cur {
					for _, nb2 := range lists[nb.idx] {
						if seen[nb2.idx] {
							continue
						}
						seen[nb2.idx] = true
						d := geom.Dist(pu, pts.At(int(nb2.idx)))
						if d < worst {
							merged = append(merged, neighbor{nb2.idx, d})
							upd++
						}
					}
				}
				sort.Slice(merged, func(i, j int) bool {
					if merged[i].dist != merged[j].dist {
						return merged[i].dist < merged[j].dist
					}
					return merged[i].idx < merged[j].idx
				})
				if len(merged) > m {
					merged = merged[:m]
				}
				next[u] = merged
			}
			updates[t] = upd
		})
		lists = next
		total := 0
		for _, u := range updates {
			total += u
		}
		if float64(total) < termFrac*float64(n)*float64(m) {
			break
		}
	}

	// ---- Core marking from the discovered neighbor graph.
	cl.RunStage("cluster", "ng-core-marking", chunks, func(t int) {
		lo, hi := t*n/chunks, (t+1)*n/chunks
		for u := lo; u < hi; u++ {
			within := 1 // the point itself
			for _, nb := range lists[u] {
				if nb.dist <= cfg.Eps {
					within++
				}
			}
			if within >= cfg.MinPts {
				res.CorePoint[u] = true
			}
		}
	})

	// ---- Cluster formation: components over core-core edges of the
	// eps-graph, then border attachment.
	cl.Serial("cluster", "ng-clustering", func() {
		uf := graph.NewUnionFind(n)
		for u := 0; u < n; u++ {
			if !res.CorePoint[u] {
				continue
			}
			for _, nb := range lists[u] {
				if nb.dist <= cfg.Eps && res.CorePoint[nb.idx] {
					uf.Union(u, int(nb.idx))
				}
			}
		}
		dense := make(map[int]int)
		next := 0
		for u := 0; u < n; u++ {
			if !res.CorePoint[u] {
				continue
			}
			root := uf.Find(u)
			g, ok := dense[root]
			if !ok {
				g = next
				next++
				dense[root] = g
			}
			res.Labels[u] = g
		}
		res.NumClusters = next
		for u := 0; u < n; u++ {
			if res.CorePoint[u] {
				continue
			}
			for _, nb := range lists[u] {
				if nb.dist <= cfg.Eps && res.CorePoint[nb.idx] {
					res.Labels[u] = res.Labels[nb.idx]
					break
				}
			}
		}
	})

	res.Report = cl.Report()
	return res
}

func stageName(iter int) string {
	return "ng-iteration-" + itoa(iter)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
