package ngdbscan

import (
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"
)

func TestEmpty(t *testing.T) {
	res := Run(geom.NewPoints(2, 0), Config{Eps: 1, MinPts: 3}, engine.New(2))
	if res.NumClusters != 0 {
		t.Fatal("empty input clustered")
	}
}

func TestApproximatesExactOnBlobs(t *testing.T) {
	pts := datagen.Blobs(1500, 3, 0.4, 1)
	exact := dbscan.Run(pts, 0.35, 10)
	res := Run(pts, Config{Eps: 0.35, MinPts: 10, Seed: 1}, engine.New(4))
	// NG-DBSCAN is approximate: the graph may miss some neighbors, so we
	// require high but not perfect agreement.
	if ri := metrics.RandIndex(exact.Labels, res.Labels); ri < 0.95 {
		t.Fatalf("RandIndex = %.4f, want >= 0.95", ri)
	}
	if res.NumClusters < 2 || res.NumClusters > 6 {
		t.Fatalf("NumClusters = %d, want close to 3", res.NumClusters)
	}
}

func TestIterationsRecorded(t *testing.T) {
	pts := datagen.Blobs(400, 2, 0.4, 2)
	res := Run(pts, Config{Eps: 0.35, MinPts: 8, MaxIterations: 3, Seed: 1}, engine.New(2))
	if res.Iterations < 1 || res.Iterations > 3 {
		t.Fatalf("Iterations = %d", res.Iterations)
	}
	if res.Report.Stage("ng-iteration-1") == nil {
		t.Fatal("iteration stage missing from report")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts := datagen.Blobs(500, 3, 0.4, 3)
	cfg := Config{Eps: 0.35, MinPts: 8, Seed: 7}
	a := Run(pts, cfg, engine.New(3))
	b := Run(pts, cfg, engine.New(3))
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed gave different clustering")
		}
	}
}

func TestIsolatedPointsAreNoise(t *testing.T) {
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 30; i++ {
		pts.Append([]float64{float64(i) * 100, 0})
	}
	res := Run(pts, Config{Eps: 1, MinPts: 3, Seed: 2}, engine.New(2))
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatal("isolated point clustered")
		}
	}
}

func TestSmallerThanM(t *testing.T) {
	// n-1 < default M: the list size must clamp without panicking.
	pts := datagen.Blobs(10, 1, 0.1, 4)
	res := Run(pts, Config{Eps: 1, MinPts: 3, Seed: 3}, engine.New(2))
	if len(res.Labels) != 10 {
		t.Fatal("bad output size")
	}
}
