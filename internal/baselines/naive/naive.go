// Package naive implements the naive random-split family of parallel
// DBSCAN algorithms (Section 2.2.1: SDBC, S-DBSCAN, SP-DBSCAN, Cludoop):
// the points themselves are dealt to k disjoint random samples, each split
// clusters its own sample in isolation, and local clusters are merged
// approximately by representative proximity.
//
// Because every split sees only a 1/k sample, region queries cannot
// measure true density — the shared-nothing weakness RP-DBSCAN's broadcast
// cell dictionary removes. The algorithm is fast but loses accuracy, which
// the accuracy harness demonstrates against RP-DBSCAN.
package naive

import (
	"math/rand"

	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
	"rpdbscan/internal/kdtree"
)

// Noise is the label of points in no cluster.
const Noise = -1

// Config parameterises a run.
type Config struct {
	Eps    float64
	MinPts int
	// NumSplits is k, the number of disjoint random samples.
	NumSplits int
	Seed      int64
}

// Result is the clustering output.
type Result struct {
	Labels      []int
	NumClusters int
	Report      *engine.Report
}

// Run executes the naive random-split algorithm on the cluster.
func Run(pts *geom.Points, cfg Config, cl *engine.Cluster) *Result {
	n := pts.N()
	res := &Result{Labels: make([]int, n)}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		res.Report = cl.Report()
		return res
	}
	k := cfg.NumSplits
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}

	// ---- Random split: a seeded shuffle deals points to k disjoint
	// samples of near-equal size (sampling without replacement, the
	// reservoir-style split of Section 1.1).
	var splits [][]int
	cl.Serial("split", "random-split", func() {
		perm := rand.New(rand.NewSource(cfg.Seed)).Perm(n)
		splits = make([][]int, k)
		for pos, pi := range perm {
			s := pos % k
			splits[s] = append(splits[s], pi)
		}
	})

	// ---- Local clustering on each sample. A split sees 1/k of the
	// density, so the local core threshold is scaled down — the standard
	// compensation in this family, and the source of its approximation.
	localMinPts := cfg.MinPts / k
	if localMinPts < 2 {
		localMinPts = 2
	}
	type localRun struct {
		res *dbscan.Result
	}
	locals := make([]*localRun, k)
	cl.RunStage("local", "local-clustering", k, func(t int) {
		sub := pts.Subset(splits[t])
		locals[t] = &localRun{res: dbscan.Run(sub, cfg.Eps, localMinPts)}
	})

	// ---- Approximate merge: every local cluster is represented by a
	// sample of its core points; clusters from different splits merge
	// when representatives come within eps.
	cl.Serial("merge", "representative-merging", func() {
		type clusterRef struct{ split, local int }
		refIdx := make(map[clusterRef]int)
		var refs []clusterRef
		id := func(s, c int) int {
			r := clusterRef{s, c}
			i, ok := refIdx[r]
			if !ok {
				i = len(refs)
				refIdx[r] = i
				refs = append(refs, r)
			}
			return i
		}
		// Collect up to repCap representatives per local cluster.
		const repCap = 32
		repPts := geom.NewPoints(pts.Dim, 0)
		var repOwner []int // uf element per representative
		for s, lr := range locals {
			seen := map[int]int{}
			for li, lab := range lr.res.Labels {
				if lab < 0 || !lr.res.CorePoint[li] {
					continue
				}
				if seen[lab] >= repCap {
					continue
				}
				seen[lab]++
				repPts.Append(pts.At(splits[s][li]))
				repOwner = append(repOwner, id(s, lab))
			}
		}
		uf := graph.NewUnionFind(len(refs))
		tree := kdtree.Build(repPts, nil)
		for i := 0; i < repPts.N(); i++ {
			p := repPts.At(i)
			tree.Visit(p, cfg.Eps, func(j int) {
				uf.Union(repOwner[i], repOwner[j])
			})
		}
		// Label points through the merged cluster map.
		dense := make(map[int]int)
		next := 0
		for s, lr := range locals {
			for li, lab := range lr.res.Labels {
				if lab < 0 {
					continue
				}
				root := uf.Find(id(s, lab))
				g, ok := dense[root]
				if !ok {
					g = next
					next++
					dense[root] = g
				}
				res.Labels[splits[s][li]] = g
			}
		}
		res.NumClusters = next
	})
	res.Report = cl.Report()
	return res
}
