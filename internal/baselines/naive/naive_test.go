package naive

import (
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"
)

func TestEmpty(t *testing.T) {
	res := Run(geom.NewPoints(2, 0), Config{Eps: 1, MinPts: 3, NumSplits: 4}, engine.New(2))
	if res.NumClusters != 0 {
		t.Fatal("empty input clustered")
	}
}

func TestSingleSplitIsExact(t *testing.T) {
	pts := datagen.Blobs(1200, 3, 0.4, 1)
	exact := dbscan.Run(pts, 0.35, 10)
	res := Run(pts, Config{Eps: 0.35, MinPts: 10, NumSplits: 1}, engine.New(1))
	if ri := metrics.RandIndex(exact.Labels, res.Labels); ri < 0.999 {
		t.Fatalf("k=1 RandIndex = %.4f", ri)
	}
}

func TestWellSeparatedBlobsStillFound(t *testing.T) {
	// On trivially separable data the naive family works: its weakness is
	// density accuracy, not gross structure.
	pts := datagen.Blobs(3000, 3, 0.3, 2)
	res := Run(pts, Config{Eps: 0.5, MinPts: 12, NumSplits: 6}, engine.New(6))
	if res.NumClusters != 3 {
		t.Fatalf("NumClusters = %d, want 3", res.NumClusters)
	}
}

func TestLosesAccuracyWhereRPDoesNot(t *testing.T) {
	// Section 2.2.1's point: with noise and borderline densities, random
	// point splits misjudge density. The naive result must be strictly
	// less faithful than 0.999-grade clustering on a noisy set.
	pts := datagen.Chameleon(6000, 3)
	exact := dbscan.Run(pts, 1.0, 12)
	res := Run(pts, Config{Eps: 1.0, MinPts: 12, NumSplits: 8, Seed: 1}, engine.New(8))
	ri := metrics.RandIndex(exact.Labels, res.Labels)
	if ri >= 0.999 {
		t.Fatalf("naive random split matched exact DBSCAN (RI %.4f); the accuracy-loss scenario is not exercising density errors", ri)
	}
	if ri < 0.5 {
		t.Fatalf("naive random split collapsed entirely (RI %.4f)", ri)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts := datagen.Blobs(800, 3, 0.4, 4)
	cfg := Config{Eps: 0.35, MinPts: 10, NumSplits: 4, Seed: 9}
	a := Run(pts, cfg, engine.New(4))
	b := Run(pts, cfg, engine.New(4))
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed gave different labels")
		}
	}
}
