package cbp

import (
	"math/rand"
	"testing"

	"rpdbscan/internal/geom"
)

func box(pts *geom.Points) geom.Box {
	b := geom.NewBox(pts.Dim)
	for i := 0; i < pts.N(); i++ {
		b.Extend(pts.At(i))
	}
	return b
}

func idx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCutBalancesCostNotCount(t *testing.T) {
	// A dense pile (900 points near x=0.5) and a sparse tail (100 points
	// spread over x in [2,10]). Quadratic bin cost makes the pile far
	// more expensive than its share of points, so a cost-balancing 1:1
	// cut lands near the pile — even earlier than the count median.
	r := rand.New(rand.NewSource(1))
	pts := geom.NewPoints(2, 0)
	row := make([]float64, 2)
	for i := 0; i < 900; i++ {
		row[0], row[1] = 0.25+r.Float64()*0.5, r.Float64()
		pts.Append(row)
	}
	for i := 0; i < 100; i++ {
		row[0], row[1] = 2+r.Float64()*8, r.Float64()
		pts.Append(row)
	}
	axis, cut := Cut(pts, idx(pts.N()), box(pts), 0.1, 1, 1)
	if axis != 0 {
		t.Fatalf("axis = %d, want 0", axis)
	}
	if cut > 1.0 {
		t.Fatalf("cost-based cut at %v, want inside/near the dense pile", cut)
	}
}

func TestCutUniformNearMiddle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := geom.NewPoints(2, 4000)
	row := make([]float64, 2)
	for i := 0; i < 4000; i++ {
		row[0], row[1] = r.Float64()*10, r.Float64()
		pts.Append(row)
	}
	_, cut := Cut(pts, idx(4000), box(pts), 0.1, 1, 1)
	if cut < 4 || cut > 6 {
		t.Fatalf("uniform-data cut at %v, want near 5", cut)
	}
}

func TestCutDegenerate(t *testing.T) {
	// All points identical: any cut in range is acceptable, no panic.
	pts := geom.NewPoints(2, 10)
	for i := 0; i < 10; i++ {
		pts.Append([]float64{3, 3})
	}
	axis, cut := Cut(pts, idx(10), box(pts), 0.1, 1, 1)
	if axis < 0 || axis > 1 {
		t.Fatalf("bad axis %d", axis)
	}
	_ = cut
}
