// Package cbp implements CBP-DBSCAN, the cost-based partitioning baseline
// (MR-DBSCAN, He et al.): cuts balance an estimated local-clustering cost
// that accounts for both the number and the distribution of points, using a
// density histogram along each axis. SPARK-DBSCAN is the same partitioning
// with an exact (non-approximate) local clusterer; select it with
// Config.ExactLocal.
package cbp

import (
	"rpdbscan/internal/baselines/regionsplit"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
)

// histBins is the resolution of the per-axis cost histogram.
const histBins = 64

// Cut estimates, for each axis, the clustering cost of every histogram
// prefix (cost of a bin grows quadratically with its population, modelling
// the neighborhood-join work of dense areas) and cuts where the prefix cost
// fraction crosses kLeft/(kLeft+kRight) on the axis whose cut is cheapest
// in boundary terms.
func Cut(pts *geom.Points, idx []int, box geom.Box, eps float64, kLeft, kRight int) (int, float64) {
	axis := regionsplit.WidestAxis(box)
	lo, hi := box.Min[axis], box.Max[axis]
	if hi <= lo {
		return axis, lo
	}
	var bins [histBins]float64
	w := (hi - lo) / histBins
	for _, i := range idx {
		b := int((pts.At(i)[axis] - lo) / w)
		if b < 0 {
			b = 0
		} else if b >= histBins {
			b = histBins - 1
		}
		bins[b]++
	}
	var total float64
	for _, c := range bins {
		total += c * c
	}
	if total == 0 {
		return axis, (lo + hi) / 2
	}
	target := total * float64(kLeft) / float64(kLeft+kRight)
	var acc float64
	for b := 0; b < histBins; b++ {
		acc += bins[b] * bins[b]
		if acc >= target {
			return axis, lo + w*float64(b+1)
		}
	}
	return axis, hi
}

// Run executes CBP-DBSCAN (or SPARK-DBSCAN when cfg.ExactLocal is set).
func Run(pts *geom.Points, cfg regionsplit.Config, cl *engine.Cluster) *regionsplit.Result {
	return regionsplit.Run(pts, cfg, Cut, cl)
}
