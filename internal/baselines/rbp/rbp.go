// Package rbp implements RBP-DBSCAN, the reduced-boundary partitioning
// baseline (DBSCAN-MR, Dai and Lin): among candidate cuts it picks the one
// that minimises the number of points falling inside the eps-wide boundary
// band around the cut, reducing the overlap that must be duplicated.
package rbp

import (
	"rpdbscan/internal/baselines/regionsplit"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
)

// candidateQuantiles are the positions examined on every axis; cuts too
// close to the region edge would starve one side, so candidates stay within
// the central band.
var candidateQuantiles = []float64{0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7}

// Cut scans candidate cuts on every axis and returns the one with the
// fewest points within eps of the cut plane. Ties go to the cut closest to
// the balanced position.
func Cut(pts *geom.Points, idx []int, box geom.Box, eps float64, kLeft, kRight int) (int, float64) {
	bestAxis, bestCut := regionsplit.WidestAxis(box), 0.0
	bestBoundary := -1
	bestBalance := 0.0
	target := float64(kLeft) / float64(kLeft+kRight)
	for axis := 0; axis < box.Dim(); axis++ {
		if box.Max[axis]-box.Min[axis] <= 2*eps {
			continue // nothing to gain: the whole axis is boundary
		}
		for _, q := range candidateQuantiles {
			cut := regionsplit.Quantile(pts, idx, axis, q)
			boundary := 0
			for _, i := range idx {
				d := pts.At(i)[axis] - cut
				if d < 0 {
					d = -d
				}
				if d <= eps {
					boundary++
				}
			}
			balance := q - target
			if balance < 0 {
				balance = -balance
			}
			if bestBoundary < 0 || boundary < bestBoundary ||
				(boundary == bestBoundary && balance < bestBalance) {
				bestBoundary, bestAxis, bestCut, bestBalance = boundary, axis, cut, balance
			}
		}
	}
	if bestBoundary < 0 {
		// Region thinner than 2*eps on every axis: fall back to a
		// balanced median cut on the widest axis.
		axis := regionsplit.WidestAxis(box)
		return axis, regionsplit.Quantile(pts, idx, axis, target)
	}
	return bestAxis, bestCut
}

// Run executes RBP-DBSCAN.
func Run(pts *geom.Points, cfg regionsplit.Config, cl *engine.Cluster) *regionsplit.Result {
	return regionsplit.Run(pts, cfg, Cut, cl)
}
