package rbp

import (
	"math/rand"
	"testing"

	"rpdbscan/internal/geom"
)

func box(pts *geom.Points) geom.Box {
	b := geom.NewBox(pts.Dim)
	for i := 0; i < pts.N(); i++ {
		b.Extend(pts.At(i))
	}
	return b
}

func idx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCutAvoidsDenseBand(t *testing.T) {
	// Two blobs at x~1 and x~9 with a thin bridge at x~5: a boundary-
	// minimising cut should fall in the sparse gap, not inside a blob.
	r := rand.New(rand.NewSource(1))
	pts := geom.NewPoints(2, 0)
	row := make([]float64, 2)
	for i := 0; i < 900; i++ {
		x := 1 + r.NormFloat64()*0.3
		if i%2 == 0 {
			x = 9 + r.NormFloat64()*0.3
		}
		row[0], row[1] = x, r.Float64()
		pts.Append(row)
	}
	for i := 0; i < 20; i++ {
		row[0], row[1] = 5+r.NormFloat64(), r.Float64()
		pts.Append(row)
	}
	axis, cut := Cut(pts, idx(pts.N()), box(pts), 0.2, 1, 1)
	if axis != 0 {
		t.Fatalf("axis = %d, want 0", axis)
	}
	if cut < 2.5 || cut > 7.5 {
		t.Fatalf("reduced-boundary cut at %v, want in the sparse middle", cut)
	}
	// The boundary band around the chosen cut must be small.
	band := 0
	for i := 0; i < pts.N(); i++ {
		d := pts.At(i)[0] - cut
		if d < 0 {
			d = -d
		}
		if d <= 0.2 {
			band++
		}
	}
	if band > 40 {
		t.Fatalf("boundary band holds %d points, want few", band)
	}
}

func TestCutThinRegionFallback(t *testing.T) {
	// A region thinner than 2*eps on every axis falls back to a balanced
	// cut without panicking.
	r := rand.New(rand.NewSource(2))
	pts := geom.NewPoints(2, 100)
	row := make([]float64, 2)
	for i := 0; i < 100; i++ {
		row[0], row[1] = r.Float64()*0.5, r.Float64()*0.5
		pts.Append(row)
	}
	axis, cut := Cut(pts, idx(100), box(pts), 1.0, 1, 1)
	b := box(pts)
	if cut < b.Min[axis] || cut > b.Max[axis] {
		t.Fatalf("fallback cut %v outside region [%v,%v]", cut, b.Min[axis], b.Max[axis])
	}
}
