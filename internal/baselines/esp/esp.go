// Package esp implements ESP-DBSCAN, the even-split partitioning baseline
// (RDD-DBSCAN, Cordova and Moh): every cut divides the region so both
// sides receive a number of points proportional to the number of leaf
// regions they will be split into.
package esp

import (
	"rpdbscan/internal/baselines/regionsplit"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
)

// Cut places the cut at the kLeft/(kLeft+kRight) quantile along the widest
// axis of the region, evening out point counts.
func Cut(pts *geom.Points, idx []int, box geom.Box, eps float64, kLeft, kRight int) (int, float64) {
	axis := regionsplit.WidestAxis(box)
	q := float64(kLeft) / float64(kLeft+kRight)
	return axis, regionsplit.Quantile(pts, idx, axis, q)
}

// Run executes ESP-DBSCAN.
func Run(pts *geom.Points, cfg regionsplit.Config, cl *engine.Cluster) *regionsplit.Result {
	return regionsplit.Run(pts, cfg, Cut, cl)
}
