package esp

import (
	"math/rand"
	"testing"

	"rpdbscan/internal/geom"
)

func uniformPts(n int, seed int64) *geom.Points {
	r := rand.New(rand.NewSource(seed))
	pts := geom.NewPoints(2, n)
	row := make([]float64, 2)
	for i := 0; i < n; i++ {
		row[0], row[1] = r.Float64()*10, r.Float64()*4
		pts.Append(row)
	}
	return pts
}

func box(pts *geom.Points) geom.Box {
	b := geom.NewBox(pts.Dim)
	for i := 0; i < pts.N(); i++ {
		b.Extend(pts.At(i))
	}
	return b
}

func idx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCutBalancesEvenSplit(t *testing.T) {
	pts := uniformPts(2000, 1)
	axis, cut := Cut(pts, idx(2000), box(pts), 0.1, 1, 1)
	if axis != 0 {
		t.Fatalf("axis = %d, want widest (0)", axis)
	}
	left := 0
	for i := 0; i < pts.N(); i++ {
		if pts.At(i)[axis] < cut {
			left++
		}
	}
	if left < 900 || left > 1100 {
		t.Fatalf("even split put %d/2000 points left", left)
	}
}

func TestCutProportionalSplit(t *testing.T) {
	pts := uniformPts(3000, 2)
	// 1:3 leaf ratio: about a quarter of the points go left.
	axis, cut := Cut(pts, idx(3000), box(pts), 0.1, 1, 3)
	left := 0
	for i := 0; i < pts.N(); i++ {
		if pts.At(i)[axis] < cut {
			left++
		}
	}
	if left < 600 || left > 900 {
		t.Fatalf("1:3 split put %d/3000 points left, want ~750", left)
	}
}

func TestCutSkewedData(t *testing.T) {
	// 90% of points piled near x=0: the median cut must land inside the
	// pile, not at the geometric middle.
	r := rand.New(rand.NewSource(3))
	pts := geom.NewPoints(2, 1000)
	row := make([]float64, 2)
	for i := 0; i < 900; i++ {
		row[0], row[1] = r.Float64()*0.5, r.Float64()
		pts.Append(row)
	}
	for i := 0; i < 100; i++ {
		row[0], row[1] = 9+r.Float64(), r.Float64()
		pts.Append(row)
	}
	_, cut := Cut(pts, idx(1000), box(pts), 0.1, 1, 1)
	if cut > 1 {
		t.Fatalf("even-split cut at %v, want inside the dense pile (< 1)", cut)
	}
}
