package regionsplit_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/baselines/cbp"
	"rpdbscan/internal/baselines/esp"
	"rpdbscan/internal/baselines/rbp"
	"rpdbscan/internal/baselines/regionsplit"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"

	"rpdbscan/internal/testutil"
)

type runner struct {
	name string
	run  func(*geom.Points, regionsplit.Config, *engine.Cluster) *regionsplit.Result
}

func runners() []runner {
	return []runner{
		{"ESP", esp.Run},
		{"RBP", rbp.Run},
		{"CBP", cbp.Run},
	}
}

func TestStrategiesMatchExactDBSCAN(t *testing.T) {
	pts := datagen.Moons(2500, 0.04, 3)
	exact := dbscan.Run(pts, 0.12, 10)
	cfg := regionsplit.Config{Eps: 0.12, MinPts: 10, Rho: 0.01, NumRegions: 6}
	for _, r := range runners() {
		res := r.run(pts, cfg, engine.New(6))
		if ri := metrics.RandIndex(exact.Labels, res.Labels); ri < 0.995 {
			t.Errorf("%s: RandIndex = %.4f, want >= 0.995", r.name, ri)
		}
		if res.PointsProcessed < int64(pts.N()) {
			t.Errorf("%s: PointsProcessed = %d < n", r.name, res.PointsProcessed)
		}
	}
}

func TestCrossBoundaryClusterMerged(t *testing.T) {
	// A single dense band spanning the whole space: any cut slices it, so
	// the merge phase must weld the halves back together.
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 400; i++ {
		pts.Append([]float64{float64(i) * 0.05, 0})
		pts.Append([]float64{float64(i) * 0.05, 0.05})
	}
	cfg := regionsplit.Config{Eps: 0.2, MinPts: 4, Rho: 0.01, NumRegions: 4}
	for _, r := range runners() {
		res := r.run(pts, cfg, engine.New(4))
		if res.NumClusters != 1 {
			t.Errorf("%s: NumClusters = %d, want 1 (cluster split at boundary)", r.name, res.NumClusters)
		}
		if metrics.NumNoise(res.Labels) != 0 {
			t.Errorf("%s: %d noise points in a solid band", r.name, metrics.NumNoise(res.Labels))
		}
	}
}

func TestExactLocalMode(t *testing.T) {
	// SPARK-DBSCAN configuration: exact local clustering.
	pts := datagen.Blobs(1200, 3, 0.4, 5)
	exact := dbscan.Run(pts, 0.35, 10)
	cfg := regionsplit.Config{Eps: 0.35, MinPts: 10, NumRegions: 4, ExactLocal: true}
	res := cbp.Run(pts, cfg, engine.New(4))
	if ri := metrics.RandIndex(exact.Labels, res.Labels); ri < 0.999 {
		t.Fatalf("SPARK-DBSCAN RandIndex = %.4f", ri)
	}
}

func TestDuplicationExceedsNOnClusteredData(t *testing.T) {
	pts := datagen.Mixture(datagen.MixtureConfig{
		N: 3000, Dim: 2, Components: 5, Span: 20, Alpha: 0.5,
	}, 7)
	cfg := regionsplit.Config{Eps: 1.0, MinPts: 10, Rho: 0.01, NumRegions: 8}
	res := esp.Run(pts, cfg, engine.New(8))
	if res.PointsProcessed <= int64(pts.N()) {
		t.Fatalf("expected duplication > n, got %d for n=%d", res.PointsProcessed, pts.N())
	}
}

func TestRBPReducesBoundaryVsESP(t *testing.T) {
	// On data with a natural low-density corridor, reduced-boundary cuts
	// should duplicate no more than even-split cuts.
	pts := datagen.Mixture(datagen.MixtureConfig{
		N: 4000, Dim: 2, Components: 2, Span: 60, Alpha: 2,
	}, 11)
	cfg := regionsplit.Config{Eps: 1.0, MinPts: 10, Rho: 0.01, NumRegions: 2}
	respESP := esp.Run(pts, cfg, engine.New(2))
	respRBP := rbp.Run(pts, cfg, engine.New(2))
	if respRBP.PointsProcessed > respESP.PointsProcessed+int64(pts.N()/50) {
		t.Fatalf("RBP duplicated more than ESP: %d vs %d",
			respRBP.PointsProcessed, respESP.PointsProcessed)
	}
}

func TestReportStages(t *testing.T) {
	pts := datagen.Blobs(600, 3, 0.4, 9)
	cfg := regionsplit.Config{Eps: 0.35, MinPts: 8, Rho: 0.05, NumRegions: 4}
	res := esp.Run(pts, cfg, engine.New(4))
	for _, name := range []string{"region-split", "halo-assignment", "local-clustering", "cluster-merging"} {
		if res.Report.Stage(name) == nil {
			t.Fatalf("missing stage %q", name)
		}
	}
	if got := len(res.Report.Stage("local-clustering").Costs); got != 4 {
		t.Fatalf("local-clustering tasks = %d, want 4", got)
	}
}

func TestEmptyInput(t *testing.T) {
	res := esp.Run(geom.NewPoints(2, 0), regionsplit.Config{Eps: 1, MinPts: 3, Rho: 0.01, NumRegions: 4}, engine.New(2))
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestSingleRegionEqualsLocal(t *testing.T) {
	pts := datagen.Moons(800, 0.04, 13)
	exact := dbscan.Run(pts, 0.12, 8)
	cfg := regionsplit.Config{Eps: 0.12, MinPts: 8, Rho: 0.01, NumRegions: 1}
	res := esp.Run(pts, cfg, engine.New(1))
	if res.PointsProcessed != int64(pts.N()) {
		t.Fatalf("k=1 duplicated points: %d", res.PointsProcessed)
	}
	if ri := metrics.RandIndex(exact.Labels, res.Labels); ri < 0.999 {
		t.Fatalf("k=1 RandIndex = %.4f", ri)
	}
}

// Property: the number of regions barely moves the clustering — region
// split with halos is designed to be k-invariant up to border-point
// ambiguity.
func TestRegionCountInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := datagen.Mixture(datagen.MixtureConfig{
			N: 600 + r.Intn(600), Dim: 2,
			Components: 3 + r.Intn(4), Span: 25, Alpha: 2, NoiseFrac: 0.05,
		}, seed)
		cfg := regionsplit.Config{Eps: 0.8, MinPts: 8, Rho: 0.01, NumRegions: 1}
		base := esp.Run(pts, cfg, engine.New(2))
		cfg.NumRegions = 2 + r.Intn(10)
		split := esp.Run(pts, cfg, engine.New(4))
		return metrics.RandIndex(base.Labels, split.Labels) >= 0.99
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 4, 15)); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAndWidestAxis(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{{0, 0}, {1, 10}, {2, 20}, {3, 30}}, 2)
	idx := []int{0, 1, 2, 3}
	if q := regionsplit.Quantile(pts, idx, 0, 0.5); q != 2 {
		t.Fatalf("Quantile = %v, want 2", q)
	}
	box := geom.NewBox(2)
	box.Extend([]float64{0, 0})
	box.Extend([]float64{3, 30})
	if regionsplit.WidestAxis(box) != 1 {
		t.Fatal("WidestAxis wrong")
	}
}
