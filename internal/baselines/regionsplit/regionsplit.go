// Package regionsplit implements the region-split family of parallel
// DBSCAN baselines (Section 2.2.2): the data space is cut into k contiguous
// sub-regions, each sub-region is clustered locally together with an
// eps-wide halo of neighboring points (the overlap that preserves
// correctness near borders), and local clusters are merged through the
// points shared by overlapping regions.
//
// The three published strategies differ only in how cuts are chosen:
// even-split (ESP-DBSCAN / RDD-DBSCAN), reduced-boundary (RBP-DBSCAN /
// DBSCAN-MR), and cost-based (CBP-DBSCAN and SPARK-DBSCAN / MR-DBSCAN).
// This package provides the shared framework; the esp, rbp, and cbp
// packages supply the cut functions.
package regionsplit

import (
	"sort"

	"rpdbscan/internal/approxdbscan"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
)

// Noise is the label of points in no cluster.
const Noise = -1

// CutFunc chooses the axis and coordinate at which to cut a region holding
// the given points (idx into pts). kLeft and kRight are how many leaf
// regions each side will be divided into; strategies aiming at balance
// place the cut at the kLeft/(kLeft+kRight) weighted position.
type CutFunc func(pts *geom.Points, idx []int, box geom.Box, eps float64, kLeft, kRight int) (axis int, cut float64)

// Leaf is one contiguous sub-region: its box and the points it owns.
type Leaf struct {
	Box   geom.Box
	Owned []int
	// Halo holds non-owned points within eps of the box.
	Halo []int
}

// Result is the output of a region-split baseline run.
type Result struct {
	Labels      []int
	NumClusters int
	// PointsProcessed sums owned+halo points over all splits: the data
	// duplication metric of Section 7.3.2 (always >= N).
	PointsProcessed int64
	Report          *engine.Report
}

// Config parameterises a run.
type Config struct {
	Eps    float64
	MinPts int
	// Rho is the approximation rate for the rho-approximate local
	// clusterer; ignored when ExactLocal is set.
	Rho float64
	// NumRegions is the number of contiguous sub-regions (k).
	NumRegions int
	// ExactLocal switches the local clusterer from rho-approximate
	// DBSCAN to exact DBSCAN (the SPARK-DBSCAN configuration).
	ExactLocal bool
}

// Run executes the framework with the given cut strategy.
func Run(pts *geom.Points, cfg Config, cut CutFunc, cl *engine.Cluster) *Result {
	n := pts.N()
	res := &Result{Labels: make([]int, n)}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		res.Report = cl.Report()
		return res
	}
	k := cfg.NumRegions
	if k < 1 {
		k = 1
	}

	// ---- Split phase: recursive binary space partitioning with the
	// strategy's cut selection. This is driver-side work in the paper's
	// implementations and is often a substantial share of total time.
	var leaves []*Leaf
	cl.Serial("split", "region-split", func() {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		box := geom.NewBox(pts.Dim)
		for i := 0; i < n; i++ {
			box.Extend(pts.At(i))
		}
		leaves = split(pts, all, box, k, cfg.Eps, cut)
	})

	// ---- Halo assignment: each region gathers the neighboring points
	// within eps of its box (the overlap of Figure 1a).
	cl.RunStage("split", "halo-assignment", len(leaves), func(t int) {
		leaf := leaves[t]
		owned := make(map[int]bool, len(leaf.Owned))
		for _, i := range leaf.Owned {
			owned[i] = true
		}
		eps2 := cfg.Eps * cfg.Eps
		halo := make([]int, 0, len(leaf.Owned)/4)
		for i := 0; i < n; i++ {
			if !owned[i] && leaf.Box.MinDist2(pts.At(i)) <= eps2 {
				halo = append(halo, i)
			}
		}
		leaf.Halo = halo // assign once so task re-execution is idempotent
	})
	for _, leaf := range leaves {
		res.PointsProcessed += int64(len(leaf.Owned) + len(leaf.Halo))
	}

	// ---- Local clustering on owned+halo per region.
	locals := make([]*localRun, len(leaves))
	cl.RunStage("local", "local-clustering", len(leaves), func(t int) {
		leaf := leaves[t]
		global := make([]int, 0, len(leaf.Owned)+len(leaf.Halo))
		global = append(global, leaf.Owned...)
		global = append(global, leaf.Halo...)
		sub := pts.Subset(global)
		lr := &localRun{global: global}
		if cfg.ExactLocal {
			r := dbscan.Run(sub, cfg.Eps, cfg.MinPts)
			lr.labels, lr.core = r.Labels, r.CorePoint
		} else {
			r := approxdbscan.Run(sub, cfg.Eps, cfg.MinPts, cfg.Rho)
			lr.labels, lr.core = r.Labels, r.CorePoint
		}
		locals[t] = lr
	})

	// ---- Merge phase: union local clusters through shared points. A
	// shared point that is core in its owning region (whose full
	// eps-neighborhood the owner sees) welds together every local cluster
	// it belongs to.
	cl.Serial("merge", "cluster-merging", func() {
		mergeAndLabel(n, leaves, locals, res)
	})
	res.Report = cl.Report()
	return res
}

// localRun holds one region's local clustering result.
type localRun struct {
	global []int // local index -> global index
	labels []int
	core   []bool
}

type memb struct {
	region, local int
}

// mergeAndLabel welds local clusters into global clusters and writes final
// labels. The merge rule: a point that is core in its owning region (the
// region that sees its full eps-neighborhood) joins every local cluster it
// was assigned to across overlapping regions into one global cluster.
func mergeAndLabel(n int, leaves []*Leaf, locals []*localRun, res *Result) {
	uf := graph.NewUnionFind(0)
	ids := make(map[memb]int) // (region, localCluster) -> uf element
	id := func(r, c int) int {
		k := memb{r, c}
		i, ok := ids[k]
		if !ok {
			i = uf.Add()
			ids[k] = i
		}
		return i
	}
	ownerRegion := make([]int, n)
	ownerLocal := make([]int, n)
	haloMemb := make(map[int][]memb)
	for r, lr := range locals {
		nOwned := len(leaves[r].Owned)
		for li, gi := range lr.global {
			if li < nOwned {
				ownerRegion[gi] = r
				ownerLocal[gi] = li
			} else {
				haloMemb[gi] = append(haloMemb[gi], memb{r, li})
			}
		}
	}
	for gi, ms := range haloMemb {
		ro, lo := ownerRegion[gi], ownerLocal[gi]
		if !locals[ro].core[lo] {
			continue
		}
		baseLab := locals[ro].labels[lo]
		if baseLab < 0 {
			continue
		}
		base := id(ro, baseLab)
		for _, m := range ms {
			if lab := locals[m.region].labels[m.local]; lab >= 0 {
				uf.Union(base, id(m.region, lab))
			}
		}
	}
	// Final labels: prefer the owner's verdict; a point the owner deems
	// noise may still be a border point of a cluster whose core sits in a
	// neighboring region (halo memberships are scanned in region order,
	// so the choice is deterministic).
	dense := make(map[int]int)
	next := 0
	for gi := 0; gi < n; gi++ {
		r, li := ownerRegion[gi], ownerLocal[gi]
		lab := locals[r].labels[li]
		lr := r
		if lab < 0 {
			for _, m := range haloMemb[gi] {
				if l := locals[m.region].labels[m.local]; l >= 0 {
					lab, lr = l, m.region
					break
				}
			}
		}
		if lab < 0 {
			continue
		}
		root := uf.Find(id(lr, lab))
		g, ok := dense[root]
		if !ok {
			g = next
			next++
			dense[root] = g
		}
		res.Labels[gi] = g
	}
	res.NumClusters = next
}

// split recursively divides idx into k leaves.
func split(pts *geom.Points, idx []int, box geom.Box, k int, eps float64, cut CutFunc) []*Leaf {
	if k <= 1 || len(idx) == 0 {
		return []*Leaf{{Box: box, Owned: idx}}
	}
	kl := k / 2
	kr := k - kl
	axis, c := cut(pts, idx, box, eps, kl, kr)
	var left, right []int
	for _, i := range idx {
		if pts.At(i)[axis] < c {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	lbox, rbox := cloneBox(box), cloneBox(box)
	lbox.Max[axis] = c
	rbox.Min[axis] = c
	out := split(pts, left, lbox, kl, eps, cut)
	return append(out, split(pts, right, rbox, kr, eps, cut)...)
}

func cloneBox(b geom.Box) geom.Box {
	nb := geom.Box{Min: make([]float64, len(b.Min)), Max: make([]float64, len(b.Max))}
	copy(nb.Min, b.Min)
	copy(nb.Max, b.Max)
	return nb
}

// Quantile returns the q-th (0..1) quantile of the idx points' coordinates
// along axis. It sorts a scratch copy; strategies use it for balanced cuts.
func Quantile(pts *geom.Points, idx []int, axis int, q float64) float64 {
	vals := make([]float64, len(idx))
	for i, id := range idx {
		vals[i] = pts.At(id)[axis]
	}
	sort.Float64s(vals)
	pos := int(q * float64(len(vals)))
	if pos >= len(vals) {
		pos = len(vals) - 1
	}
	return vals[pos]
}

// WidestAxis returns the axis along which box is widest.
func WidestAxis(box geom.Box) int {
	axis, w := 0, box.Max[0]-box.Min[0]
	for i := 1; i < box.Dim(); i++ {
		if ww := box.Max[i] - box.Min[i]; ww > w {
			w, axis = ww, i
		}
	}
	return axis
}
