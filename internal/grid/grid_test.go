package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/geom"

	"rpdbscan/internal/testutil"
)

func TestSideDiagonalIsEps(t *testing.T) {
	for dim := 1; dim <= 13; dim++ {
		s := Side(1.5, dim)
		diag := s * math.Sqrt(float64(dim))
		if math.Abs(diag-1.5) > 1e-12 {
			t.Fatalf("dim %d: diagonal = %v, want 1.5", dim, diag)
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	coords := []int32{0, -1, 7, math.MaxInt32, math.MinInt32, 42}
	k := EncodeKey(coords)
	got := DecodeKey(k)
	for i := range coords {
		if got[i] != coords[i] {
			t.Fatalf("coord %d: got %d, want %d", i, got[i], coords[i])
		}
	}
	if k.Dim() != len(coords) {
		t.Fatalf("Dim = %d, want %d", k.Dim(), len(coords))
	}
}

func TestKeyOrderPreserving(t *testing.T) {
	// Byte-wise key ordering must match numeric ordering per coordinate.
	a := EncodeKey([]int32{-5})
	b := EncodeKey([]int32{-1})
	c := EncodeKey([]int32{0})
	d := EncodeKey([]int32{3})
	if !(a < b && b < c && c < d) {
		t.Fatalf("key order broken: %q %q %q %q", a, b, c, d)
	}
}

func TestKeyForAndOrigin(t *testing.T) {
	side := 0.5
	p := []float64{1.2, -0.3}
	k := KeyFor(p, side)
	want := []int32{2, -1}
	got := DecodeKey(k)
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("KeyFor = %v, want %v", got, want)
	}
	origin := make([]float64, 2)
	k.Origin(side, origin)
	if origin[0] != 1.0 || origin[1] != -0.5 {
		t.Fatalf("Origin = %v, want [1 -0.5]", origin)
	}
	center := make([]float64, 2)
	k.Center(side, center)
	if center[0] != 1.25 || center[1] != -0.25 {
		t.Fatalf("Center = %v, want [1.25 -0.25]", center)
	}
}

func TestBuildAssignsEveryPoint(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{
		{0.1, 0.1}, {0.15, 0.12}, {5, 5}, {-3, 2},
	}, 2)
	g := Build(pts, 1.0)
	total := 0
	for _, c := range g.Cells {
		total += len(c.Points)
	}
	if total != pts.N() {
		t.Fatalf("grid holds %d points, want %d", total, pts.N())
	}
	if g.NumCells() != 3 {
		t.Fatalf("NumCells = %d, want 3", g.NumCells())
	}
}

func TestCellDiagonalProperty(t *testing.T) {
	// Any two points mapped to the same cell must be within eps.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(5)
		eps := 0.1 + r.Float64()*3
		side := Side(eps, dim)
		p := make([]float64, dim)
		q := make([]float64, dim)
		for i := 0; i < dim; i++ {
			p[i] = r.Float64()*20 - 10
		}
		// q perturbed within the same cell as p.
		for i := 0; i < dim; i++ {
			lo := math.Floor(p[i]/side) * side
			q[i] = lo + r.Float64()*side*0.999
		}
		if KeyFor(p, side) != KeyFor(q, side) {
			return true // different cells: nothing to check
		}
		return geom.Dist(p, q) <= eps+1e-9
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 209, 500)); err != nil {
		t.Fatal(err)
	}
}

func TestSubShift(t *testing.T) {
	cases := []struct {
		rho  float64
		want uint
	}{
		{1.0, 0}, {0.5, 1}, {0.25, 2}, {0.1, 4}, {0.05, 5}, {0.01, 7},
	}
	for _, c := range cases {
		if got := SubShift(c.rho); got != c.want {
			t.Errorf("SubShift(%v) = %d, want %d", c.rho, got, c.want)
		}
	}
}

func TestSubIdxRoundTrip(t *testing.T) {
	// 13 dimensions at shift 7 needs 91 bits: exercises the 128-bit path.
	dim := 13
	shift := uint(7)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		want := make([]int64, dim)
		var idx SubIdx
		for i := 0; i < dim; i++ {
			want[i] = rng.Int63n(1 << shift)
			idx = idx.shiftLeft(shift).or(uint64(want[i]))
		}
		got := make([]int64, dim)
		SubCoord(idx, shift, dim, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d dim %d: got %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSubIdxForAndCenter(t *testing.T) {
	dim := 2
	shift := uint(2) // 4 sub-cells per side
	cellSide := 1.0
	subSide := cellSide / 4
	origin := []float64{2, -1}
	p := []float64{2.6, -0.9} // sub coords (2, 0)
	idx := SubIdxFor(p, origin, subSide, shift)
	coords := make([]int64, dim)
	SubCoord(idx, shift, dim, coords)
	if coords[0] != 2 || coords[1] != 0 {
		t.Fatalf("sub coords = %v, want [2 0]", coords)
	}
	center := make([]float64, dim)
	SubCenter(idx, origin, subSide, shift, center)
	if math.Abs(center[0]-2.625) > 1e-12 || math.Abs(center[1]-(-0.875)) > 1e-12 {
		t.Fatalf("SubCenter = %v, want [2.625 -0.875]", center)
	}
}

// Property: a point is always within subSide*sqrt(d)/2 of its sub-cell
// centre (half the sub-cell diagonal) — the approximation bound that drives
// Lemma 5.2.
func TestSubCellApproximationBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(5)
		shift := uint(r.Intn(7))
		eps := 0.2 + r.Float64()*2
		side := Side(eps, dim)
		subSide := side / float64(int64(1)<<shift)
		p := make([]float64, dim)
		for i := range p {
			p[i] = r.Float64()*10 - 5
		}
		k := KeyFor(p, side)
		origin := make([]float64, dim)
		k.Origin(side, origin)
		idx := SubIdxFor(p, origin, subSide, shift)
		center := make([]float64, dim)
		SubCenter(idx, origin, subSide, shift, center)
		bound := subSide * math.Sqrt(float64(dim)) / 2
		return geom.Dist(p, center) <= bound+1e-9
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 209, 500)); err != nil {
		t.Fatal(err)
	}
}

// Property: a point always lies inside its own cell's box [origin,
// origin+side) per dimension — KeyFor, Origin, and Side are consistent.
func TestPointInOwnCellProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(6)
		eps := 0.05 + r.Float64()*4
		side := Side(eps, dim)
		p := make([]float64, dim)
		for i := range p {
			p[i] = r.Float64()*2000 - 1000
		}
		k := KeyFor(p, side)
		origin := make([]float64, dim)
		k.Origin(side, origin)
		for i := range p {
			if p[i] < origin[i]-1e-9 || p[i] >= origin[i]+side+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 209, 500)); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborCellRadius(t *testing.T) {
	if NeighborCellRadius(1) != 1 || NeighborCellRadius(2) != 2 || NeighborCellRadius(4) != 2 || NeighborCellRadius(5) != 3 {
		t.Fatalf("NeighborCellRadius wrong: %d %d %d %d",
			NeighborCellRadius(1), NeighborCellRadius(2), NeighborCellRadius(4), NeighborCellRadius(5))
	}
}
