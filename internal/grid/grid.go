// Package grid implements the cell grid of Definition 3.1: the data space is
// partitioned into d-dimensional hypercubes whose diagonal is the DBSCAN
// radius eps, so that any two points in one cell are within eps of each
// other. Cells are addressed by quantised integer coordinates encoded into a
// compact string Key, which is hashable and ordered.
//
// The package also provides sub-cell indexing for the two-level cell
// dictionary (Definition 4.1): each cell splits into 2^(d*(h-1)) sub-cells
// where h = 1 + ceil(log2(1/rho)). A sub-cell's position inside its cell is
// identified by d*(h-1) bits; because this can exceed 64 bits (e.g. 13
// dimensions at rho=0.01 needs 91 bits), SubIdx is a 128-bit value.
package grid

import (
	"fmt"
	"math"

	"rpdbscan/internal/geom"
)

// Side returns the cell side length for radius eps in dim dimensions. The
// side is eps/sqrt(dim) so the cell diagonal equals eps.
func Side(eps float64, dim int) float64 {
	return eps / math.Sqrt(float64(dim))
}

// Key is the encoded integer coordinate vector of a cell: 4 bytes per
// dimension, big-endian, with the sign bit flipped so byte-wise ordering
// matches numeric ordering. A Key is usable as a map key and is
// lexicographically sortable.
type Key string

// coordOf quantises a single coordinate.
func coordOf(x, side float64) int32 {
	c := math.Floor(x / side)
	if c > math.MaxInt32 || c < math.MinInt32 {
		panic(fmt.Sprintf("grid: cell coordinate %g overflows int32 (coordinate %g, side %g)", c, x, side))
	}
	return int32(c)
}

// KeyFor returns the Key of the cell containing point p for the given side
// length.
func KeyFor(p []float64, side float64) Key {
	buf := make([]byte, 4*len(p))
	for i, x := range p {
		putCoord(buf[4*i:], coordOf(x, side))
	}
	return Key(buf)
}

// EncodeKey packs integer cell coordinates into a Key.
func EncodeKey(coords []int32) Key {
	buf := make([]byte, 4*len(coords))
	for i, c := range coords {
		putCoord(buf[4*i:], c)
	}
	return Key(buf)
}

func putCoord(b []byte, c int32) {
	u := uint32(c) ^ 0x80000000 // flip sign bit for order-preserving bytes
	b[0] = byte(u >> 24)
	b[1] = byte(u >> 16)
	b[2] = byte(u >> 8)
	b[3] = byte(u)
}

func getCoord(b string) int32 {
	u := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	return int32(u ^ 0x80000000)
}

// Dim returns the dimensionality encoded in the key.
func (k Key) Dim() int { return len(k) / 4 }

// Coord returns the i-th integer coordinate of the key.
func (k Key) Coord(i int) int32 { return getCoord(string(k[4*i:])) }

// DecodeKey unpacks a Key into integer cell coordinates.
func DecodeKey(k Key) []int32 {
	coords := make([]int32, k.Dim())
	for i := range coords {
		coords[i] = k.Coord(i)
	}
	return coords
}

// Origin writes the minimum corner of cell k into out, which must have
// length k.Dim().
func (k Key) Origin(side float64, out []float64) {
	for i := range out {
		out[i] = float64(k.Coord(i)) * side
	}
}

// Center writes the centre point of cell k into out.
func (k Key) Center(side float64, out []float64) {
	for i := range out {
		out[i] = (float64(k.Coord(i)) + 0.5) * side
	}
}

// Cell is a grid cell together with the indices of the points it contains.
type Cell struct {
	Key Key
	// Points holds indices into the originating data set.
	Points []int
}

// Grid maps every non-empty cell key to its points (no cells are created for
// empty regions, as in Figure 4b).
type Grid struct {
	Eps  float64
	Side float64
	Dim  int
	// Cells indexes non-empty cells by key.
	Cells map[Key]*Cell
}

// Build assigns every point of pts to its cell.
func Build(pts *geom.Points, eps float64) *Grid {
	g := &Grid{
		Eps:   eps,
		Side:  Side(eps, pts.Dim),
		Dim:   pts.Dim,
		Cells: make(map[Key]*Cell),
	}
	n := pts.N()
	for i := 0; i < n; i++ {
		k := KeyFor(pts.At(i), g.Side)
		c := g.Cells[k]
		if c == nil {
			c = &Cell{Key: k}
			g.Cells[k] = c
		}
		c.Points = append(c.Points, i)
	}
	return g
}

// NumCells returns the number of non-empty cells.
func (g *Grid) NumCells() int { return len(g.Cells) }

// SubShift returns h-1 = ceil(log2(1/rho)) for the approximation parameter
// rho of Definition 4.1. rho >= 1 yields 0 (no sub-division: one sub-cell
// per cell).
func SubShift(rho float64) uint {
	if rho >= 1 {
		return 0
	}
	return uint(math.Ceil(math.Log2(1 / rho)))
}

// SubIdx identifies a sub-cell inside its cell using d*(h-1) bits packed
// into a 128-bit value (dimension-major, first dimension in the highest
// bits). It is comparable and therefore usable as a map key.
type SubIdx struct {
	Hi, Lo uint64
}

// shiftLeft returns s << n for n < 64.
func (s SubIdx) shiftLeft(n uint) SubIdx {
	if n == 0 {
		return s
	}
	return SubIdx{Hi: s.Hi<<n | s.Lo>>(64-n), Lo: s.Lo << n}
}

func (s SubIdx) or(v uint64) SubIdx {
	return SubIdx{Hi: s.Hi, Lo: s.Lo | v}
}

// SubIdxFor computes the sub-cell index of point p inside the cell with the
// given origin. shift is SubShift(rho); subSide is the sub-cell side length
// cellSide / 2^shift.
func SubIdxFor(p, origin []float64, subSide float64, shift uint) SubIdx {
	var idx SubIdx
	max := int64(1)<<shift - 1
	for i, x := range p {
		v := int64(math.Floor((x - origin[i]) / subSide))
		// Guard against floating-point edge effects at the cell boundary.
		if v < 0 {
			v = 0
		} else if v > max {
			v = max
		}
		idx = idx.shiftLeft(shift).or(uint64(v))
	}
	return idx
}

// SubCoord extracts the per-dimension sub-cell coordinates from idx into
// out, which must have length dim.
func SubCoord(idx SubIdx, shift uint, dim int, out []int64) {
	mask := uint64(1)<<shift - 1
	for i := dim - 1; i >= 0; i-- {
		out[i] = int64(idx.Lo & mask)
		idx = shiftRight(idx, shift)
	}
}

func shiftRight(s SubIdx, n uint) SubIdx {
	if n == 0 {
		return s
	}
	return SubIdx{Hi: s.Hi >> n, Lo: s.Lo>>n | s.Hi<<(64-n)}
}

// SubCenter writes the centre point of the sub-cell idx (inside the cell
// whose minimum corner is origin) into out.
func SubCenter(idx SubIdx, origin []float64, subSide float64, shift uint, out []float64) {
	dim := len(out)
	mask := uint64(1)<<shift - 1
	for i := dim - 1; i >= 0; i-- {
		out[i] = origin[i] + (float64(idx.Lo&mask)+0.5)*subSide
		idx = shiftRight(idx, shift)
	}
}

// NeighborCellRadius returns the per-dimension integer radius r such that
// every cell containing a point within eps of a query point has each cell
// coordinate within r of the query point's cell coordinate. Since the cell
// side is eps/sqrt(d), r = ceil(sqrt(d)).
func NeighborCellRadius(dim int) int32 {
	return int32(math.Ceil(math.Sqrt(float64(dim))))
}
