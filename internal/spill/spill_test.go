package spill

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rpdbscan/internal/grid"
	"rpdbscan/internal/testutil"
)

// randRun builds a random but well-formed run record.
func randRun(rng *rand.Rand, chunk, dim int) (int, []RunCell) {
	numCells := rng.Intn(5)
	cells := make([]RunCell, 0, numCells)
	for c := 0; c < numCells; c++ {
		coords := make([]int32, dim)
		for i := range coords {
			coords[i] = int32(rng.Intn(100) - 50)
		}
		npts := 1 + rng.Intn(6)
		rc := RunCell{Key: grid.EncodeKey(coords), IDs: make([]int64, npts), Coords: make([]float64, npts*dim)}
		for i := range rc.IDs {
			rc.IDs[i] = int64(rng.Intn(1 << 20))
		}
		for i := range rc.Coords {
			rc.Coords[i] = rng.NormFloat64() * 100
		}
		cells = append(cells, rc)
	}
	return chunk, cells
}

// writeRandomFile spills nRuns random runs (ascending chunk ids) and
// returns the file path plus the raw bytes written.
func writeRandomFile(t *testing.T, rng *rand.Rand, nRuns, dim int) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.spill")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < nRuns; c++ {
		chunk, cells := randRun(rng, c, dim)
		if _, err := w.AppendRun(chunk, dim, cells); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestSpillRoundTripByteIdentical: write -> load -> write must reproduce
// the file byte for byte (the property the ISSUE's battery names). Uses
// the seeded quick config for the randomised repetitions.
func TestSpillRoundTripByteIdentical(t *testing.T) {
	cfg := testutil.QuickConfig(t, 1, 25)
	for rep := 0; rep < cfg.MaxCount; rep++ {
		rng := rand.New(rand.NewSource(int64(rep) + 7))
		dim := 1 + rng.Intn(4)
		path, data := writeRandomFile(t, rng, 1+rng.Intn(6), dim)
		runs, err := LoadFile(path)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		// Write the loaded runs through a fresh Writer: the whole file —
		// every run record and the trailer — must come back byte for byte.
		path2 := filepath.Join(t.TempDir(), "again.spill")
		w2, err := NewWriter(path2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range runs {
			if _, err := w2.AppendRun(r.Chunk, r.Dim, r.Cells); err != nil {
				t.Fatal(err)
			}
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := os.ReadFile(path2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("rep %d: round trip diverged: %d bytes vs %d", rep, len(again), len(data))
		}
	}
}

// TestSpillSingleByteCorruptionRejected: every single-byte corruption of a
// spill file must be rejected on load. Within a record's checksummed span
// this is guaranteed by FNV-1a bijectivity; the header fields (magic,
// checksum, body length) are covered empirically by flipping every byte of
// the file.
func TestSpillSingleByteCorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	path, data := writeRandomFile(t, rng, 3, 2)
	for pos := 0; pos < len(data); pos++ {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x41
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Fatalf("corruption at byte %d of %d accepted", pos, len(data))
		}
	}
}

// TestSpillTruncationRejected: every proper prefix of a spill file fails
// to load (a cut can never silently drop a run or part of one).
func TestSpillTruncationRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	path, data := writeRandomFile(t, rng, 2, 3)
	for cut := 1; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		}
	}
}

// TestSpillChunkDedup: re-appending a chunk (what an engine retry or
// speculative copy does) must be a no-op, leaving the file identical.
func TestSpillChunkDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.spill")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	chunk0, cells0 := randRun(rng, 0, 2)
	chunk1, cells1 := randRun(rng, 1, 2)
	if _, err := w.AppendRun(chunk0, 2, cells0); err != nil {
		t.Fatal(err)
	}
	if n, err := w.AppendRun(chunk0, 2, cells0); err != nil || n != 0 {
		t.Fatalf("re-append wrote %d bytes, err %v", n, err)
	}
	if _, err := w.AppendRun(chunk1, 2, cells1); err != nil {
		t.Fatal(err)
	}
	if n, err := w.AppendRun(chunk1, 2, cells1); err != nil || n != 0 {
		t.Fatalf("re-append wrote %d bytes, err %v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	runs, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Chunk != 0 || runs[1].Chunk != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
}

// TestSpillLoadSortsByChunk: runs written out of order come back sorted.
func TestSpillLoadSortsByChunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.spill")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, chunk := range []int{5, 1, 3, 0, 4, 2} {
		_, cells := randRun(rng, chunk, 2)
		if _, err := w.AppendRun(chunk, 2, cells); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	runs, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		if r.Chunk != i {
			t.Fatalf("run %d has chunk %d", i, r.Chunk)
		}
	}
}
