// Package spill implements the checksummed temp files the out-of-core
// pipeline (core.RunStream) shuffles through: the stand-in for a
// distributed cluster's disk-backed shuffle. Each of the k partitions owns
// one spill file; every streamed input chunk appends one "run" per
// partition it touches, holding the chunk's cells dealt to that partition
// (cell key, global point ids, raw coordinates).
//
// The wire conventions follow the RPD2 dictionary format: a magic tag, an
// FNV-1a checksum verified before any parsing, and bounded allocation on
// load so a corrupt length field cannot balloon memory. The checksum spans
// the body-length field and the body; within the checksummed span FNV-1a's
// per-byte mixing is a bijection of the accumulator, so any single-byte
// substitution inside one run record is guaranteed to be detected.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"rpdbscan/internal/grid"
)

const (
	runMagic = "RPS1"
	// trailerMagic closes a spill file: without it, a file truncated at a
	// record boundary would load cleanly minus its tail runs.
	trailerMagic = "RPSE"
	// headerSize is magic(4) + checksum(8) + bodyLen(4).
	headerSize = 4 + 8 + 4
	// maxBodyLen bounds one run record. A run holds at most one chunk of
	// points plus per-cell framing; 1 GiB is far beyond any sane chunk and
	// exists only to reject absurd length fields before reading.
	maxBodyLen = 1 << 30
)

// RunCell is one cell's share of one streamed chunk: the points of the
// chunk that fall in the cell, as global ids plus raw coordinates.
type RunCell struct {
	Key    grid.Key
	IDs    []int64   // ascending global point indices
	Coords []float64 // len(IDs)*dim, point-major
}

// Run is one decoded spill record: the cells one chunk dealt to one
// partition.
type Run struct {
	Chunk int
	Dim   int
	Cells []RunCell
}

// EncodeRun serialises one run record, framing included.
func EncodeRun(chunk, dim int, cells []RunCell) []byte {
	bodyLen := 4 + 2 + 4 // chunk + dim + numCells
	for _, c := range cells {
		bodyLen += len(c.Key) + 4 + len(c.IDs)*8 + len(c.Coords)*8
	}
	buf := make([]byte, headerSize+bodyLen)
	copy(buf, runMagic)
	binary.BigEndian.PutUint32(buf[12:], uint32(bodyLen))
	off := headerSize
	binary.BigEndian.PutUint32(buf[off:], uint32(chunk))
	off += 4
	binary.BigEndian.PutUint16(buf[off:], uint16(dim))
	off += 2
	binary.BigEndian.PutUint32(buf[off:], uint32(len(cells)))
	off += 4
	for _, c := range cells {
		off += copy(buf[off:], c.Key)
		binary.BigEndian.PutUint32(buf[off:], uint32(len(c.IDs)))
		off += 4
		for _, id := range c.IDs {
			binary.BigEndian.PutUint64(buf[off:], uint64(id))
			off += 8
		}
		for _, v := range c.Coords {
			binary.BigEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[12:]))
	return buf
}

// fnv64a is the FNV-1a checksum shared with the RPD2 dictionary format.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return h
}

// trailer is the decoded end-of-file record: the run count and payload
// byte total the file promises.
type trailer struct {
	numRuns      int
	payloadBytes int64
}

// EncodeTrailer serialises the end-of-file record.
func EncodeTrailer(numRuns int, payloadBytes int64) []byte {
	const bodyLen = 4 + 8
	buf := make([]byte, headerSize+bodyLen)
	copy(buf, trailerMagic)
	binary.BigEndian.PutUint32(buf[12:], bodyLen)
	binary.BigEndian.PutUint32(buf[16:], uint32(numRuns))
	binary.BigEndian.PutUint64(buf[20:], uint64(payloadBytes))
	binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[12:]))
	return buf
}

// readRun reads and verifies the next record from br: a run, or the file
// trailer (returned with a nil Run), or io.EOF at the clean end of the
// stream. The body is read in bounded steps so a corrupt length field
// cannot force a giant allocation before the checksum gate.
func readRun(br *bufio.Reader) (*Run, *trailer, error) {
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF {
			return nil, nil, io.EOF
		}
		return nil, nil, fmt.Errorf("spill: truncated run header: %w", err)
	}
	isTrailer := string(head[:4]) == trailerMagic
	if !isTrailer && string(head[:4]) != runMagic {
		return nil, nil, fmt.Errorf("spill: bad magic %q", head[:4])
	}
	want := binary.BigEndian.Uint64(head[4:12])
	bodyLen := int(binary.BigEndian.Uint32(head[12:16]))
	if bodyLen < 10 || bodyLen > maxBodyLen {
		return nil, nil, fmt.Errorf("spill: implausible body length %d", bodyLen)
	}
	body := make([]byte, 0, min(bodyLen, 1<<16))
	step := make([]byte, 1<<16)
	for len(body) < bodyLen {
		n := bodyLen - len(body)
		if n > len(step) {
			n = len(step)
		}
		if _, err := io.ReadFull(br, step[:n]); err != nil {
			return nil, nil, fmt.Errorf("spill: truncated run body: %w", err)
		}
		body = append(body, step[:n]...)
	}
	h := fnv64a(head[12:16])
	// Continue the checksum over the body without re-concatenating.
	const prime64 = 1099511628211
	for i := 0; i < len(body); i++ {
		h = (h ^ uint64(body[i])) * prime64
	}
	if h != want {
		return nil, nil, fmt.Errorf("spill: run checksum mismatch")
	}
	if isTrailer {
		if len(body) != 12 {
			return nil, nil, fmt.Errorf("spill: trailer body is %d bytes, want 12", len(body))
		}
		return nil, &trailer{
			numRuns:      int(binary.BigEndian.Uint32(body[:4])),
			payloadBytes: int64(binary.BigEndian.Uint64(body[4:12])),
		}, nil
	}
	r, err := parseBody(body)
	return r, nil, err
}

// parseBody decodes a checksum-verified body. Per-cell allocations are
// still bounded by the remaining bytes: the checksum gate catches
// corruption, this catches encoder bugs.
func parseBody(body []byte) (*Run, error) {
	off := 0
	need := func(n int) error {
		if len(body)-off < n {
			return fmt.Errorf("spill: run body truncated at offset %d", off)
		}
		return nil
	}
	if err := need(10); err != nil {
		return nil, err
	}
	r := &Run{Chunk: int(binary.BigEndian.Uint32(body[off:]))}
	off += 4
	r.Dim = int(binary.BigEndian.Uint16(body[off:]))
	off += 2
	if r.Dim < 1 {
		return nil, fmt.Errorf("spill: implausible dimension %d", r.Dim)
	}
	numCells := int(binary.BigEndian.Uint32(body[off:]))
	off += 4
	keyLen := 4 * r.Dim
	// Every cell needs at least a key and a count.
	if minTotal := numCells * (keyLen + 4); minTotal > len(body)-off {
		return nil, fmt.Errorf("spill: %d cells cannot fit in %d remaining bytes", numCells, len(body)-off)
	}
	r.Cells = make([]RunCell, 0, numCells)
	for ci := 0; ci < numCells; ci++ {
		if err := need(keyLen + 4); err != nil {
			return nil, err
		}
		key := grid.Key(body[off : off+keyLen])
		off += keyLen
		npts := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		recLen := npts * 8 * (1 + r.Dim)
		if npts < 0 || recLen < 0 {
			return nil, fmt.Errorf("spill: implausible point count %d", npts)
		}
		if err := need(recLen); err != nil {
			return nil, err
		}
		c := RunCell{Key: key, IDs: make([]int64, npts), Coords: make([]float64, npts*r.Dim)}
		for i := range c.IDs {
			c.IDs[i] = int64(binary.BigEndian.Uint64(body[off:]))
			off += 8
		}
		for i := range c.Coords {
			c.Coords[i] = math.Float64frombits(binary.BigEndian.Uint64(body[off:]))
			off += 8
		}
		r.Cells = append(r.Cells, c)
	}
	if off != len(body) {
		return nil, fmt.Errorf("spill: %d trailing bytes after %d cells", len(body)-off, numCells)
	}
	return r, nil
}

// DecodeRun decodes one framed run record from the front of buf and
// returns it with the number of bytes consumed. It is the in-memory
// counterpart of readRun, used by the multi-process transport where RPS1
// frames travel over sockets instead of spill files; verification is
// identical (magic, checksum gate before parsing, bounded lengths).
func DecodeRun(buf []byte) (*Run, int, error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("spill: truncated run header (%d bytes)", len(buf))
	}
	if string(buf[:4]) != runMagic {
		return nil, 0, fmt.Errorf("spill: bad magic %q", buf[:4])
	}
	want := binary.BigEndian.Uint64(buf[4:12])
	bodyLen := int(binary.BigEndian.Uint32(buf[12:16]))
	if bodyLen < 10 || bodyLen > maxBodyLen {
		return nil, 0, fmt.Errorf("spill: implausible body length %d", bodyLen)
	}
	if len(buf) < headerSize+bodyLen {
		return nil, 0, fmt.Errorf("spill: truncated run body (%d of %d bytes)",
			len(buf)-headerSize, bodyLen)
	}
	if fnv64a(buf[12:headerSize+bodyLen]) != want {
		return nil, 0, fmt.Errorf("spill: run checksum mismatch")
	}
	r, err := parseBody(buf[headerSize : headerSize+bodyLen])
	if err != nil {
		return nil, 0, err
	}
	return r, headerSize + bodyLen, nil
}

// FrameSize returns the total byte length of the framed run record at the
// front of buf (header included) without verifying or parsing it — the
// cheap split used to carve a concatenation of frames into columns.
func FrameSize(buf []byte) (int, error) {
	if len(buf) < headerSize {
		return 0, fmt.Errorf("spill: truncated run header (%d bytes)", len(buf))
	}
	if string(buf[:4]) != runMagic {
		return 0, fmt.Errorf("spill: bad magic %q", buf[:4])
	}
	bodyLen := int(binary.BigEndian.Uint32(buf[12:16]))
	if bodyLen < 10 || bodyLen > maxBodyLen {
		return 0, fmt.Errorf("spill: implausible body length %d", bodyLen)
	}
	if len(buf) < headerSize+bodyLen {
		return 0, fmt.Errorf("spill: truncated run body (%d of %d bytes)",
			len(buf)-headerSize, bodyLen)
	}
	return headerSize + bodyLen, nil
}

// DecodeRuns decodes a concatenation of framed run records, in order.
// Trailing garbage (including a truncated final frame) is an error.
func DecodeRuns(buf []byte) ([]*Run, error) {
	var runs []*Run
	for len(buf) > 0 {
		r, n, err := DecodeRun(buf)
		if err != nil {
			return nil, fmt.Errorf("spill: frame %d: %w", len(runs), err)
		}
		runs = append(runs, r)
		buf = buf[n:]
	}
	return runs, nil
}

// Writer appends run records to one partition's spill file. It is safe for
// concurrent use by the streaming stage's tasks, and appends are
// idempotent per chunk: the engine re-executes and speculatively
// re-runs task bodies, so a chunk that already reached the file is
// silently skipped on re-append.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	written map[int]bool // chunks fully appended
	bytes   int64
	err     error // sticky: a failed write poisons the file
}

// NewWriter creates (truncating) the spill file at path.
func NewWriter(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), written: make(map[int]bool)}, nil
}

// AppendRun encodes and appends one run record, deduplicating by chunk
// index. It returns the bytes appended (0 for a deduplicated re-append).
func (w *Writer) AppendRun(chunk, dim int, cells []RunCell) (int64, error) {
	buf := EncodeRun(chunk, dim, cells)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.written[chunk] {
		return 0, nil
	}
	if _, err := w.bw.Write(buf); err != nil {
		// A partial append leaves the file unframed; poison it so every
		// later append and the final Close fail loudly rather than ship a
		// corrupt shuffle.
		w.err = fmt.Errorf("spill: append chunk %d: %w", chunk, err)
		return 0, w.err
	}
	w.written[chunk] = true
	w.bytes += int64(len(buf))
	return int64(len(buf)), nil
}

// Bytes returns the total bytes appended so far.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Close appends the trailer, flushes, and closes the file, keeping it on
// disk for readers. Without the trailer a reader cannot tell a complete
// file from one truncated at a record boundary.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if _, err := w.bw.Write(EncodeTrailer(len(w.written), w.bytes)); err != nil {
		w.f.Close()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ScanRuns streams the verified run records of a spill file to fn in file
// order, one at a time — the bounded-memory read path (only one run is
// resident). fn errors abort the scan. The file must end with a trailer
// whose run count and payload byte total match what was read.
func ScanRuns(path string, fn func(*Run) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	seen := 0
	var payload int64
	for {
		r, tr, err := readRun(br)
		if err == io.EOF {
			return fmt.Errorf("spill: %s: truncated: no trailer after %d runs", path, seen)
		}
		if err != nil {
			return fmt.Errorf("spill: %s: %w", path, err)
		}
		if tr != nil {
			if tr.numRuns != seen || tr.payloadBytes != payload {
				return fmt.Errorf("spill: %s: trailer promises %d runs / %d bytes, read %d / %d",
					path, tr.numRuns, tr.payloadBytes, seen, payload)
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return fmt.Errorf("spill: %s: data after trailer", path)
			}
			return nil
		}
		seen++
		payload += int64(headerSize + 10)
		for _, c := range r.Cells {
			payload += int64(len(c.Key) + 4 + len(c.IDs)*8 + len(c.Coords)*8)
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// LoadFile reads every run of a spill file and returns them sorted by
// chunk index: concurrent chunk tasks append in nondeterministic order,
// and the sort restores the deterministic global point order the
// differential battery asserts.
func LoadFile(path string) ([]*Run, error) {
	var runs []*Run
	if err := ScanRuns(path, func(r *Run) error {
		runs = append(runs, r)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Chunk < runs[j].Chunk })
	return runs, nil
}
