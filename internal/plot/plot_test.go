package plot

import (
	"strings"
	"testing"

	"rpdbscan/internal/geom"
)

func TestScatterSVGBasics(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{{0, 0}, {1, 1}, {2, 0}}, 2)
	svg := string(ScatterSVG(pts, []int{0, 1, -1}, Options{Title: "demo"}))
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not a well-formed SVG document")
	}
	if strings.Count(svg, "<circle") != 3 {
		t.Fatalf("rendered %d circles, want 3", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, noiseColor) {
		t.Fatal("noise point not rendered in noise colour")
	}
	if !strings.Contains(svg, ">demo</text>") {
		t.Fatal("title missing")
	}
}

func TestScatterSVGNilLabels(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{{0, 0}, {5, 5}}, 2)
	svg := string(ScatterSVG(pts, nil, Options{}))
	if strings.Count(svg, "<circle") != 2 {
		t.Fatal("unlabeled points not rendered")
	}
}

func TestScatterSVGSubsampling(t *testing.T) {
	pts := geom.NewPoints(2, 1000)
	for i := 0; i < 1000; i++ {
		pts.Append([]float64{float64(i), float64(i % 7)})
	}
	svg := string(ScatterSVG(pts, nil, Options{MaxPoints: 100}))
	circles := strings.Count(svg, "<circle")
	if circles > 110 || circles < 90 {
		t.Fatalf("subsampled to %d circles, want ~100", circles)
	}
}

func TestScatterSVGEmptyAndDegenerate(t *testing.T) {
	empty := geom.NewPoints(2, 0)
	if svg := string(ScatterSVG(empty, nil, Options{})); !strings.Contains(svg, "<svg") {
		t.Fatal("empty input broke rendering")
	}
	// All points identical: scale must not blow up.
	same, _ := geom.FromSlice([][]float64{{3, 3}, {3, 3}}, 2)
	svg := string(ScatterSVG(same, nil, Options{}))
	if !strings.Contains(svg, "<circle") {
		t.Fatal("degenerate input not rendered")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate input produced NaN/Inf coordinates")
	}
}
