// Package plot renders 2-d point sets as SVG scatter plots. The paper's
// Figure 16 (clustering results on the accuracy sets) and Figure 18 (the
// synthetic skewness data sets) are scatter figures; cmd/rpbench uses this
// package to regenerate them as .svg files.
package plot

import (
	"bytes"
	"fmt"

	"rpdbscan/internal/geom"
)

// palette holds visually distinct cluster colours; labels beyond its
// length cycle.
var palette = []string{
	"#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4",
	"#46f0f0", "#f032e6", "#bcf60c", "#fabebe", "#008080",
	"#9a6324", "#800000", "#aaffc3", "#808000", "#000075",
}

// noiseColor renders noise points.
const noiseColor = "#c0c0c0"

// Options controls rendering.
type Options struct {
	// Width and Height of the SVG canvas in pixels; zero defaults to
	// 640x480.
	Width, Height int
	// MaxPoints caps the rendered points (uniform stride subsampling);
	// zero defaults to 20000.
	MaxPoints int
	// Radius is the marker radius in pixels; zero defaults to 1.5.
	Radius float64
	// Title is drawn in the top-left corner when non-empty.
	Title string
}

func (o Options) norm() Options {
	if o.Width == 0 {
		o.Width = 640
	}
	if o.Height == 0 {
		o.Height = 480
	}
	if o.MaxPoints == 0 {
		o.MaxPoints = 20000
	}
	if o.Radius == 0 {
		o.Radius = 1.5
	}
	return o
}

// ScatterSVG renders the first two coordinates of pts as an SVG scatter
// plot. labels (may be nil) colours points by cluster, with negative
// labels drawn in gray as noise. Points are fit to the canvas preserving
// aspect ratio.
func ScatterSVG(pts *geom.Points, labels []int, opts Options) []byte {
	o := opts.norm()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		o.Width, o.Height, o.Width, o.Height)
	fmt.Fprintf(&buf, `<rect width="%d" height="%d" fill="white"/>`+"\n", o.Width, o.Height)

	n := pts.N()
	if n > 0 && pts.Dim >= 2 {
		box := geom.NewBox(2)
		for i := 0; i < n; i++ {
			box.Extend(pts.At(i)[:2])
		}
		const margin = 10.0
		spanX, spanY := box.Max[0]-box.Min[0], box.Max[1]-box.Min[1]
		if spanX <= 0 {
			spanX = 1
		}
		if spanY <= 0 {
			spanY = 1
		}
		scale := (float64(o.Width) - 2*margin) / spanX
		if s := (float64(o.Height) - 2*margin) / spanY; s < scale {
			scale = s
		}
		stride := 1
		if n > o.MaxPoints {
			stride = (n + o.MaxPoints - 1) / o.MaxPoints
		}
		for i := 0; i < n; i += stride {
			p := pts.At(i)
			x := margin + (p[0]-box.Min[0])*scale
			// SVG y grows downward; flip so plots read like the paper's.
			y := float64(o.Height) - margin - (p[1]-box.Min[1])*scale
			color := palette[0]
			if labels != nil {
				if l := labels[i]; l < 0 {
					color = noiseColor
				} else {
					color = palette[l%len(palette)]
				}
			}
			fmt.Fprintf(&buf, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, o.Radius, color)
		}
	}
	if o.Title != "" {
		fmt.Fprintf(&buf, `<text x="8" y="16" font-family="sans-serif" font-size="13">%s</text>`+"\n", o.Title)
	}
	buf.WriteString("</svg>\n")
	return buf.Bytes()
}
