package approxdbscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"

	"rpdbscan/internal/testutil"
)

func TestEmpty(t *testing.T) {
	res := Run(geom.NewPoints(2, 0), 1, 3, 0.01)
	if res.NumClusters != 0 {
		t.Fatal("empty input produced clusters")
	}
}

func TestMatchesExactOnMoons(t *testing.T) {
	pts := datagen.Moons(2000, 0.04, 1)
	exact := dbscan.Run(pts, 0.12, 10)
	approx := Run(pts, 0.12, 10, 0.01)
	if ri := metrics.RandIndex(exact.Labels, approx.Labels); ri < 0.999 {
		t.Fatalf("RandIndex = %.4f", ri)
	}
	if approx.NumClusters != exact.NumClusters {
		t.Fatalf("clusters: approx %d, exact %d", approx.NumClusters, exact.NumClusters)
	}
}

func TestMatchesExactOnBlobs(t *testing.T) {
	pts := datagen.Blobs(2400, 4, 0.4, 2)
	exact := dbscan.Run(pts, 0.35, 10)
	approx := Run(pts, 0.35, 10, 0.01)
	if ri := metrics.RandIndex(exact.Labels, approx.Labels); ri < 0.999 {
		t.Fatalf("RandIndex = %.4f", ri)
	}
}

// Property: at rho=0.01 the approximate clusterer matches exact DBSCAN on
// random mixtures, up to the Theorem 5.4 sandwich — on knife-edge
// configurations where a +/-rho/2 change of eps legitimately flips cluster
// connectivity, the approximate result must instead match exact DBSCAN at
// one of the sandwich radii.
func TestEquivalenceProperty(t *testing.T) {
	const rho = 0.01
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := datagen.Mixture(datagen.MixtureConfig{
			N: 500 + r.Intn(700), Dim: 2 + r.Intn(2),
			Components: 3 + r.Intn(4), Span: 25, Alpha: 2, NoiseFrac: 0.08,
		}, seed)
		eps, minPts := 0.8, 8
		approx := Run(pts, eps, minPts, rho)
		for _, refEps := range []float64{eps, (1 - rho/2) * eps, (1 + rho/2) * eps} {
			ref := dbscan.Run(pts, refEps, minPts)
			if metrics.RandIndex(ref.Labels, approx.Labels) >= 0.99 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 1, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseStaysNoise(t *testing.T) {
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 10; i++ {
		pts.Append([]float64{float64(i) * 50, 0})
	}
	res := Run(pts, 1, 3, 0.01)
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatal("isolated point clustered")
		}
	}
}
