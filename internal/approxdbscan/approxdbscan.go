// Package approxdbscan implements rho-approximate DBSCAN in the style of
// Gan and Tao, the cell-based single-machine algorithm the paper retrofits
// into the region-split baselines (Section 7.1.2) for a fair comparison
// with RP-DBSCAN. It reuses the two-level cell dictionary for approximate
// region queries and the cell graph for cluster formation, all within one
// process.
package approxdbscan

import (
	"rpdbscan/internal/dict"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/graph"
	"rpdbscan/internal/grid"
)

// Noise is the label of points in no cluster.
const Noise = -1

// Result holds the clustering output.
type Result struct {
	Labels      []int
	CorePoint   []bool
	NumClusters int
}

// Run clusters pts with radius eps, core threshold minPts, and
// approximation rate rho. Cluster ids are deterministic.
func Run(pts *geom.Points, eps float64, minPts int, rho float64) *Result {
	n := pts.N()
	res := &Result{
		Labels:    make([]int, n),
		CorePoint: make([]bool, n),
	}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		return res
	}
	g := grid.Build(pts, eps)
	params := dict.Params{Eps: eps, Rho: rho, Dim: pts.Dim}
	entries := make([]dict.CellEntry, 0, g.NumCells())
	cells := make([]*grid.Cell, 0, g.NumCells())
	for _, c := range g.Cells {
		entries = append(entries, dict.BuildEntry(c, pts, params))
		cells = append(cells, c)
	}
	d := dict.Build(entries, params, 0)
	q := dict.NewQuerier(d)

	cg := graph.New(d.NumCells)
	ids := make([]int32, len(cells))
	cellCore := make([]bool, len(cells))
	corePts := make([][]int, len(cells))
	var neighborCells []int32
	nc := make(map[int32]struct{})
	for ci, cell := range cells {
		id, ok := d.IDOf(cell.Key)
		if !ok {
			panic("approxdbscan: occupied cell missing from dictionary")
		}
		ids[ci] = id
		clear(nc)
		for _, pi := range cell.Points {
			neighborCells = neighborCells[:0]
			count, out := q.Query(pts.At(pi), true, neighborCells)
			neighborCells = out
			if count >= int64(minPts) {
				res.CorePoint[pi] = true
				cellCore[ci] = true
				corePts[ci] = append(corePts[ci], pi)
				for _, nk := range neighborCells {
					nc[nk] = struct{}{}
				}
			}
		}
		if cellCore[ci] {
			cg.SetVertex(id, graph.Core)
			for nk := range nc {
				cg.AddEdge(id, nk)
			}
		} else {
			cg.SetVertex(id, graph.NonCore)
		}
	}
	global := graph.Tournament([]*graph.Graph{cg}, nil, nil)
	comp, numClusters := global.CoreComponents()
	res.NumClusters = numClusters
	preds := global.PartialPredecessors()

	coreByCell := make([][]int, d.NumCells)
	for ci := range cells {
		if cellCore[ci] {
			coreByCell[ids[ci]] = corePts[ci]
		}
	}
	eps2 := eps * eps
	for ci, cell := range cells {
		if cellCore[ci] {
			cid := int(comp[ids[ci]])
			for _, pi := range cell.Points {
				res.Labels[pi] = cid
			}
			continue
		}
		pcs := preds[ids[ci]]
		for _, qi := range cell.Points {
			qp := pts.At(qi)
		predLoop:
			for _, pk := range pcs {
				if comp[pk] < 0 {
					continue
				}
				for _, pi := range coreByCell[pk] {
					if geom.Dist2(qp, pts.At(pi)) <= eps2 {
						res.Labels[qi] = int(comp[pk])
						break predLoop
					}
				}
			}
		}
	}
	return res
}
