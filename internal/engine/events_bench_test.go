package engine

import "testing"

// discardSink is the cheapest possible non-nil sink: every event is built
// and delivered, then dropped.
type discardSink struct{}

func (discardSink) Emit(Event) {}

// benchRunStage drives RunStage with many near-empty tasks so the fixed
// per-task overhead (scheduling, timing, event emission) dominates.
func benchRunStage(b *testing.B, sink EventSink) {
	c := New(8)
	c.Sink = sink
	var x int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunStage("II", "bench", 256, func(t int) { x += int64(t) })
		c.Reset()
	}
	_ = x
}

// BenchmarkRunStageNilSink is the baseline: with no sink installed, the
// event path is a nil pointer check per site and must add no measurable
// overhead versus the pre-observability engine. Compare against
// BenchmarkRunStageDiscardSink to see the cost the hooks add only when a
// sink is actually installed.
func BenchmarkRunStageNilSink(b *testing.B)     { benchRunStage(b, nil) }
func BenchmarkRunStageDiscardSink(b *testing.B) { benchRunStage(b, discardSink{}) }
