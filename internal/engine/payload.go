package engine

import (
	"fmt"
	"sync"
	"time"
)

// payloadChunkSize is the transfer granularity of checksummed payloads:
// corruption is injected, detected, and re-fetched per chunk, so one
// flipped byte costs one chunk re-transfer, not the whole broadcast.
const payloadChunkSize = 64 << 10

// Payload is a broadcast payload with per-chunk checksums, the unit the
// fault injector is allowed to corrupt in flight. The driver-side copy
// held here is pristine; Fetch materialises (and verifies) each consumer's
// view of the transfer.
type Payload struct {
	stage string
	phase string
	data  []byte

	once sync.Once
	sums []uint64
}

// Bytes returns the driver's pristine copy of the payload.
func (p *Payload) Bytes() []byte { return p.data }

// Len returns the payload size in bytes.
func (p *Payload) Len() int { return len(p.data) }

// numChunks returns the chunk count for a payload of n bytes.
func numChunks(n int) int { return (n + payloadChunkSize - 1) / payloadChunkSize }

// checksums lazily computes the per-chunk FNV-1a checksums, so a run with
// no injector never pays for them.
func (p *Payload) checksums() []uint64 {
	p.once.Do(func() {
		n := numChunks(len(p.data))
		p.sums = make([]uint64, n)
		for c := 0; c < n; c++ {
			lo, hi := chunkBounds(c, len(p.data))
			p.sums[c] = checksum64(p.data[lo:hi])
		}
	})
	return p.sums
}

func chunkBounds(chunk, n int) (lo, hi int) {
	lo = chunk * payloadChunkSize
	hi = lo + payloadChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// checksum64 is FNV-1a over b. A single-byte substitution always changes
// the sum: each mixing step is a bijection of the accumulator for fixed
// remaining input, so corrupting one byte of a chunk is guaranteed to be
// detected.
func checksum64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return h
}

// NewPayload wraps already-produced bytes as a checksummed payload without
// recording a broadcast stage — the transport push path, where the stage
// accounting happens in PushStage instead. stage keys the deterministic
// chaos schedule for the transfer.
func NewPayload(phase, stage string, data []byte) *Payload {
	return &Payload{stage: stage, phase: phase, data: data}
}

// BroadcastChecked is Broadcast plus per-chunk checksums: the returned
// Payload is what worker tasks Fetch, giving the fault injector a shuffle
// surface to corrupt and the engine the means to detect it.
func (c *Cluster) BroadcastChecked(phase, name string, produce func() []byte) *Payload {
	data := c.Broadcast(phase, name, produce)
	return &Payload{stage: name, phase: phase, data: data}
}

// Fetch returns task's view of a checksummed payload, called from inside a
// running stage's task body. With no Injector installed the transfer is
// free: the shared driver copy is returned after a single nil check. With
// an Injector, the transfer is simulated chunk by chunk: the injector may
// corrupt the transferred copy of a chunk, the engine verifies the chunk
// checksum, and a mismatch rejects the chunk and re-transfers it (with
// virtual backoff charged to the calling task's cost), up to
// MaxTaskRetries times. Rejections are accounted in the running stage's
// FaultStats. The error is non-nil only when a chunk stays corrupt after
// the full retry budget.
func (c *Cluster) Fetch(p *Payload, task int) ([]byte, error) {
	inj := c.Injector
	if inj == nil {
		return p.data, nil
	}
	sums := p.checksums()
	out := make([]byte, len(p.data))
	retries := c.MaxTaskRetries
	if retries <= 0 {
		retries = 2
	}
	acc := c.cur.Load()
	for chunk := 0; chunk < numChunks(len(p.data)); chunk++ {
		lo, hi := chunkBounds(chunk, len(p.data))
		var ok bool
		for attempt := 0; attempt <= retries; attempt++ {
			copy(out[lo:hi], p.data[lo:hi])
			if inj.CorruptFetch(p.stage, task, attempt, chunk) {
				out[lo] ^= 0x80 // one flipped bit on the wire
			}
			if checksum64(out[lo:hi]) == sums[chunk] {
				ok = true
				break
			}
			if acc != nil {
				acc.rejects.Add(1)
				if attempt < retries {
					wait := c.backoffFor(p.stage, task, attempt)
					acc.backoff.Add(int64(wait))
					if task >= 0 && task < len(acc.extra) {
						acc.extra[task].Add(int64(wait))
					}
				}
			}
			if c.Sink != nil {
				c.emit(Event{Kind: EventChecksumReject, Stage: acc.stageName(p.stage),
					Phase: p.phase, Task: task, Attempt: attempt, Chunk: chunk,
					Time: time.Now(), Bytes: int64(hi - lo)})
			}
		}
		if !ok {
			return nil, fmt.Errorf("engine: payload %q chunk %d corrupt after %d transfer attempts",
				p.stage, chunk, retries+1)
		}
	}
	return out, nil
}

// stageName returns the running stage's name, falling back to the payload
// stage when Fetch is called outside any stage.
func (a *faultAccum) stageName(fallback string) string {
	if a == nil {
		return fallback
	}
	return a.stage
}

// PayloadChunkSize is the transfer granularity of checksummed payloads,
// exported for transports that frame pushes chunk by chunk.
const PayloadChunkSize = payloadChunkSize

// NumChunks returns the payload's chunk count.
func (p *Payload) NumChunks() int { return numChunks(len(p.data)) }

// Chunk returns the bytes of chunk i (aliasing the pristine driver copy).
func (p *Payload) Chunk(i int) []byte {
	lo, hi := chunkBounds(i, len(p.data))
	return p.data[lo:hi]
}

// ChunkSum returns the FNV-1a checksum of chunk i.
func (p *Payload) ChunkSum(i int) uint64 { return p.checksums()[i] }

// Stage returns the stage name the payload was broadcast under (the key
// deterministic injectors corrupt against).
func (p *Payload) Stage() string { return p.stage }

// Checksum64 exposes the engine's FNV-1a payload checksum so transports
// and workers verify chunks with the exact function that sealed them.
func Checksum64(b []byte) uint64 { return checksum64(b) }
