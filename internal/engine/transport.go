package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Transport abstracts where remote stages execute. The engine itself stays
// the scheduler — retry, backoff, speculation, and the fault ledger all
// live in RunStageAttempts — while the transport only moves bytes: blobs
// out to every worker, task invocations out and results back. Two backends
// exist: the implicit in-process simulator (a nil Transport, the default,
// where stage closures run on the goroutine pool) and the multi-process
// backend of internal/transport, where worker subprocesses serve tasks
// over local HTTP sockets.
//
// Implementations must be safe for concurrent use (tasks of one stage
// invoke in parallel) and must ledger wire-level faults through the
// cluster they are attached to (ChargeChecksumReject, ChargeWorkerKill,
// ChargeWorkerTask) so chaos reconciliation sees them.
type Transport interface {
	// Workers reports the number of worker processes behind the transport.
	Workers() int
	// PushBlob ships the named blob, with p's per-chunk checksums, to
	// worker w. Called from inside a push stage's task body; attempt keys
	// the deterministic chaos schedule. A checksum rejection by the worker
	// is ledgered and returned as an error, which the engine retries.
	PushBlob(stage string, w, attempt int, name string, p *Payload) error
	// Invoke executes the named registered handler remotely for one task
	// attempt and returns the verified response body. Transfer-level
	// corruption (either direction) is ledgered and surfaces as an error
	// for the engine to retry.
	Invoke(stage, handler string, task, attempt int, input []byte) ([]byte, error)
	// Close tears the workers down. The transport is unusable afterwards.
	Close() error
}

// TaskHandler is one named remote task body: it runs on a worker process
// with the worker's blob state and the task's input bytes, and returns the
// output bytes shipped back to the driver. Handlers must be deterministic
// pure functions of (worker state, task, input) — the differential
// batteries compare their output byte for byte against the in-process
// closures — and must be safe for concurrent use.
type TaskHandler func(ws *WorkerState, task int, input []byte) ([]byte, error)

var (
	handlersMu sync.RWMutex
	handlers   = make(map[string]TaskHandler)
)

// RegisterHandler registers a named task handler. Registration happens in
// package init (internal/core registers the RP-DBSCAN stage handlers), so
// any binary that imports the algorithm can serve as a worker. Duplicate
// names panic: silently replacing a handler would make driver and worker
// disagree about what a name computes.
func RegisterHandler(name string, h TaskHandler) {
	handlersMu.Lock()
	defer handlersMu.Unlock()
	if _, dup := handlers[name]; dup {
		panic(fmt.Sprintf("engine: duplicate task handler %q", name))
	}
	handlers[name] = h
}

// Handler looks a registered task handler up by name.
func Handler(name string) (TaskHandler, bool) {
	handlersMu.RLock()
	defer handlersMu.RUnlock()
	h, ok := handlers[name]
	return h, ok
}

// HandlerNames lists the registered handlers, sorted (for diagnostics).
func HandlerNames() []string {
	handlersMu.RLock()
	defer handlersMu.RUnlock()
	names := make([]string, 0, len(handlers))
	for n := range handlers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WorkerState is the per-worker-process state task handlers execute
// against: the blobs the driver has pushed (input points, the encoded cell
// dictionary) plus a memoized cache of their decoded forms, so a worker
// decodes each broadcast once, the way a Spark executor loads a broadcast
// variable once per JVM. Safe for concurrent use by parallel task
// invocations.
type WorkerState struct {
	mu    sync.Mutex
	blobs map[string][]byte
	cache map[string]any
}

// NewWorkerState returns an empty worker state.
func NewWorkerState() *WorkerState {
	return &WorkerState{blobs: make(map[string][]byte), cache: make(map[string]any)}
}

// SetBlob stores (or replaces) a named blob and invalidates its decoded
// cache entry.
func (ws *WorkerState) SetBlob(name string, data []byte) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.blobs[name] = data
	delete(ws.cache, name)
}

// Blob returns the named blob's bytes.
func (ws *WorkerState) Blob(name string) ([]byte, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	b, ok := ws.blobs[name]
	return b, ok
}

// BlobNames lists the stored blobs, sorted (for diagnostics).
func (ws *WorkerState) BlobNames() []string {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	names := make([]string, 0, len(ws.blobs))
	for n := range ws.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cached returns the decoded form of the named blob, building it at most
// once per blob version via build. The build runs under the state lock:
// decode cost is charged to exactly one task (the first to need it), as
// with executor-side broadcast loading.
func (ws *WorkerState) Cached(name string, build func(data []byte) (any, error)) (any, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if v, ok := ws.cache[name]; ok {
		return v, nil
	}
	data, ok := ws.blobs[name]
	if !ok {
		return nil, fmt.Errorf("engine: worker has no blob %q (have %v)", name, ws.blobNamesLocked())
	}
	v, err := build(data)
	if err != nil {
		return nil, err
	}
	ws.cache[name] = v
	return v, nil
}

func (ws *WorkerState) blobNamesLocked() []string {
	names := make([]string, 0, len(ws.blobs))
	for n := range ws.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunStageRemote executes one remote stage of n tasks through the
// cluster's Transport: task t ships inputs[t] to the named handler and the
// verified outputs come back in order. The engine's whole failure model
// applies unchanged — injected failures, exponential virtual backoff,
// speculation, and the per-stage fault ledger — because the remote call is
// just the task body. A transport-level failure (dead worker, rejected
// checksum, malformed response) panics the attempt, which runWithRetry
// turns into a ledgered retry.
func (c *Cluster) RunStageRemote(phase, name, handler string, inputs [][]byte) ([][]byte, *StageStats) {
	if c.Transport == nil {
		panic("engine: RunStageRemote without a Transport")
	}
	outs := make([][]byte, len(inputs))
	st := c.RunStageAttempts(phase, name, len(inputs), func(task, attempt int) {
		out, err := c.Transport.Invoke(name, handler, task, attempt, inputs[task])
		if err != nil {
			panic(fmt.Errorf("transport: stage %q task %d attempt %d: %w", name, task, attempt, err))
		}
		outs[task] = out
	})
	return outs, st
}

// PushStage broadcasts a checksummed payload to every worker behind the
// cluster's Transport as one engine stage, one task per worker, so
// per-worker transfer cost, retry backoff, and checksum rejections land in
// the report like any other stage's.
func (c *Cluster) PushStage(phase, name, blobName string, p *Payload) *StageStats {
	if c.Transport == nil {
		panic("engine: PushStage without a Transport")
	}
	st := c.RunStageAttempts(phase, name, c.Transport.Workers(), func(w, attempt int) {
		if err := c.Transport.PushBlob(name, w, attempt, blobName, p); err != nil {
			panic(fmt.Errorf("transport: push %q to worker %d attempt %d: %w", blobName, w, attempt, err))
		}
	})
	st.Bytes = int64(p.Len()) * int64(c.Transport.Workers())
	return st
}

// ChargeChecksumReject ledgers one corrupted-chunk detection on the
// running stage: the reject count, the virtual re-transfer backoff charged
// to the task's cost, and the sink event. It is the transport-side
// equivalent of the rejection accounting inside Fetch; chunk and bytes
// only annotate the event.
func (c *Cluster) ChargeChecksumReject(stage string, task, attempt, chunk int, bytes int64) {
	acc := c.cur.Load()
	if acc != nil {
		acc.rejects.Add(1)
		wait := c.backoffFor(stage, task, attempt)
		acc.backoff.Add(int64(wait))
		if task >= 0 && task < len(acc.extra) {
			acc.extra[task].Add(int64(wait))
		}
	}
	if c.Sink != nil {
		c.emit(Event{Kind: EventChecksumReject, Stage: stage, Task: task,
			Attempt: attempt, Chunk: chunk, Time: time.Now(), Bytes: bytes})
	}
}

// ChargeWorkerKill ledgers one process-level chaos kill observed while
// serving the running stage's task.
func (c *Cluster) ChargeWorkerKill(stage string, task, worker int) {
	if acc := c.cur.Load(); acc != nil {
		acc.kills.Add(1)
	}
	if c.Sink != nil {
		c.emit(Event{Kind: EventWorkerKill, Stage: stage, Task: task, Worker: worker,
			Time: time.Now()})
	}
}

// ChargeWorkerRespawn emits the sink event for a replacement worker
// process coming up after a kill.
func (c *Cluster) ChargeWorkerRespawn(stage string, worker int) {
	if c.Sink != nil {
		c.emit(Event{Kind: EventWorkerSpawn, Stage: stage, Task: -1, Worker: worker,
			Time: time.Now()})
	}
}

// ChargeWorkerTask records which remote worker served the running stage's
// task (reported in StageStats.TaskWorkers). Later calls overwrite — the
// worker that served the successful attempt wins.
func (c *Cluster) ChargeWorkerTask(task, worker int) {
	acc := c.cur.Load()
	if acc == nil || acc.workers == nil || task < 0 || task >= len(acc.workers) {
		return
	}
	acc.workers[task].Store(int32(worker) + 1)
}

// WorkerKiller is the optional process-level extension of Injector: a
// deterministic decision to SIGKILL the worker about to serve an attempt.
// Implementations must bound kills per (stage, task) site below the retry
// budget, exactly as Injector requires for failures.
type WorkerKiller interface {
	KillWorker(stage string, task, attempt int) bool
}
