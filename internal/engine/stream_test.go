package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamStageRunsAllTasks: every pulled task body runs exactly once
// (absent chaos) and the stage records one cost per task.
func TestStreamStageRunsAllTasks(t *testing.T) {
	c := New(4)
	const n = 37
	var mu sync.Mutex
	ran := make(map[int]int)
	s, err := c.StreamStage("I-1", "stream-test", func(task int) (func(), error) {
		if task >= n {
			return nil, nil
		}
		return func() {
			mu.Lock()
			ran[task]++
			mu.Unlock()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Costs) != n {
		t.Fatalf("recorded %d costs, want %d", len(s.Costs), n)
	}
	if len(ran) != n {
		t.Fatalf("ran %d distinct tasks, want %d", len(ran), n)
	}
	for i, times := range ran {
		if times != 1 {
			t.Fatalf("task %d ran %d times", i, times)
		}
	}
	if got := c.Report().Stage("stream-test"); got == nil {
		t.Fatal("stage missing from report")
	}
}

// TestStreamStagePullIsSerial: pull must never run concurrently with
// itself, and task indices arrive in order — the contract that lets a
// sequential reader live inside pull without locks.
func TestStreamStagePullIsSerial(t *testing.T) {
	c := New(8)
	var inPull atomic.Int32
	lastTask := -1
	_, err := c.StreamStage("I-1", "serial-pull", func(task int) (func(), error) {
		if inPull.Add(1) != 1 {
			t.Error("pull re-entered concurrently")
		}
		defer inPull.Add(-1)
		if task != lastTask+1 {
			t.Errorf("pull task %d after %d", task, lastTask)
		}
		lastTask = task
		if task >= 50 {
			return nil, nil
		}
		return func() { time.Sleep(time.Microsecond) }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamStagePullError: a pull error aborts the stage and is returned.
func TestStreamStagePullError(t *testing.T) {
	c := New(4)
	boom := errors.New("bad read")
	var bodies atomic.Int32
	s, err := c.StreamStage("I-1", "pull-error", func(task int) (func(), error) {
		if task == 3 {
			return nil, boom
		}
		return func() { bodies.Add(1) }, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s == nil {
		t.Fatal("stats not returned on failure")
	}
	if got := bodies.Load(); got > 3 {
		t.Fatalf("%d bodies ran after the pull error position", got)
	}
}

// TestStreamStageRetriesInjectedFaults: injected attempt failures are
// retried (bodies re-run, so the count exceeds the task count) and the
// fault ledger records them; the stage still completes every task.
func TestStreamStageRetriesInjectedFaults(t *testing.T) {
	c := New(4)
	c.Injector = InjectorFunc(func(stage string, task, attempt int) bool {
		return task%3 == 0 && attempt == 0
	})
	const n = 20
	var mu sync.Mutex
	ran := make(map[int]bool)
	s, err := c.StreamStage("I-1", "faulty-stream", func(task int) (func(), error) {
		if task >= n {
			return nil, nil
		}
		return func() {
			mu.Lock()
			ran[task] = true
			mu.Unlock()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != n {
		t.Fatalf("completed %d tasks, want %d", len(ran), n)
	}
	wantFaults := int64(0)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			wantFaults++
		}
	}
	if s.Faults.InjectedFailures != wantFaults {
		t.Fatalf("ledger has %d injected failures, want %d", s.Faults.InjectedFailures, wantFaults)
	}
	if s.Retries != wantFaults {
		t.Fatalf("retries = %d, want %d", s.Retries, wantFaults)
	}
	if s.Faults.BackoffVirtual <= 0 {
		t.Fatal("no virtual backoff recorded")
	}
}

// TestStreamStageExhaustedRetriesReturnsError: unlike RunStage (which
// panics), a stream task that fails every attempt returns an error.
func TestStreamStageExhaustedRetriesReturnsError(t *testing.T) {
	c := New(2)
	c.MaxTaskRetries = 1
	_, err := c.StreamStage("I-1", "always-fails", func(task int) (func(), error) {
		if task >= 4 {
			return nil, nil
		}
		return func() {
			if task == 2 {
				panic(fmt.Sprintf("task %d is cursed", task))
			}
		}, nil
	})
	if err == nil {
		t.Fatal("exhausted retries did not surface as an error")
	}
}

// TestStreamStageEmptyStream: an immediately-ending stream records an
// empty stage and no error.
func TestStreamStageEmptyStream(t *testing.T) {
	c := New(4)
	s, err := c.StreamStage("I-1", "empty", func(task int) (func(), error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Costs) != 0 {
		t.Fatalf("empty stream recorded %d costs", len(s.Costs))
	}
}

// TestStreamStageStragglers: TaskDelay inflates stream task costs and the
// speculation machinery engages, mirroring RunStage behavior.
func TestStreamStageStragglers(t *testing.T) {
	c := New(4)
	delay := 50 * time.Millisecond
	c.Injector = stragglerInjector{delay: delay}
	s, err := c.StreamStage("I-1", "straggling-stream", func(task int) (func(), error) {
		if task >= 8 {
			return nil, nil
		}
		return func() {}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults.StragglerDelay != time.Duration(8)*delay {
		t.Fatalf("straggler ledger %v, want %v", s.Faults.StragglerDelay, 8*delay)
	}
	if s.Faults.SpeculativeLaunches == 0 {
		t.Fatal("no speculative copies launched for heavy stragglers")
	}
}

// stragglerInjector inflates every task by a fixed delay.
type stragglerInjector struct{ delay time.Duration }

func (s stragglerInjector) FailTask(string, int, int) bool          { return false }
func (s stragglerInjector) TaskDelay(string, int) time.Duration     { return s.delay }
func (s stragglerInjector) CorruptFetch(string, int, int, int) bool { return false }
