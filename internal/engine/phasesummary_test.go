package engine

import (
	"testing"
	"time"
)

func TestPhaseSummariesRollUpStagesInOrder(t *testing.T) {
	r := &Report{Workers: 2, Stages: []*StageStats{
		{Name: "a", Phase: "I-1", Costs: []time.Duration{2, 2}, Wall: 4, Bytes: 10, Retries: 1, AllocDelta: 100, MallocDelta: 5},
		{Name: "b", Phase: "II", Costs: []time.Duration{6}, Wall: 6},
		{Name: "c", Phase: "I-1", Costs: []time.Duration{2}, Wall: 2, Bytes: 5,
			Faults: FaultStats{InjectedFailures: 3, SpeculativeWins: 1}},
	}}
	got := r.PhaseSummaries()
	if len(got) != 2 {
		t.Fatalf("summaries = %d, want 2", len(got))
	}
	p1 := got[0]
	if p1.Phase != "I-1" || p1.Stages != 2 || p1.Tasks != 3 {
		t.Fatalf("I-1 header: %+v", p1)
	}
	if p1.Wall != 6 || p1.Bytes != 15 || p1.Retries != 1 || p1.AllocDelta != 100 || p1.MallocDelta != 5 {
		t.Fatalf("I-1 sums: %+v", p1)
	}
	wantSim := r.Stages[0].Makespan(2) + r.Stages[2].Makespan(2)
	if p1.Simulated != wantSim {
		t.Fatalf("I-1 simulated = %v, want %v", p1.Simulated, wantSim)
	}
	if p1.Faults.InjectedFailures != 3 || p1.Faults.SpeculativeWins != 1 {
		t.Fatalf("I-1 faults: %+v", p1.Faults)
	}
	if got[1].Phase != "II" || got[1].Stages != 1 || got[1].Tasks != 1 {
		t.Fatalf("II header: %+v", got[1])
	}

	// The phase rollup must account every stage exactly once: totals agree
	// with the report-level aggregates.
	var wall, sim time.Duration
	for _, p := range got {
		wall += p.Wall
		sim += p.Simulated
	}
	if wall != r.WallElapsed() || sim != r.SimulatedElapsed() {
		t.Fatalf("rollup totals %v/%v disagree with report %v/%v",
			wall, sim, r.WallElapsed(), r.SimulatedElapsed())
	}
}

func TestPhaseSummariesEmptyReport(t *testing.T) {
	if got := (&Report{Workers: 1}).PhaseSummaries(); len(got) != 0 {
		t.Fatalf("empty report produced %d summaries", len(got))
	}
}
