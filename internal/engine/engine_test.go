package engine

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"rpdbscan/internal/testutil"
)

func statsWith(costs ...time.Duration) *StageStats {
	return &StageStats{Name: "s", Phase: "p", Costs: costs}
}

func TestStageAggregates(t *testing.T) {
	s := statsWith(3, 1, 2)
	if s.Total() != 6 || s.Max() != 3 || s.Min() != 1 {
		t.Fatalf("aggregates wrong: total=%v max=%v min=%v", s.Total(), s.Max(), s.Min())
	}
	if got := s.Imbalance(); got != 3 {
		t.Fatalf("Imbalance = %v, want 3", got)
	}
}

func TestImbalanceDegenerate(t *testing.T) {
	if statsWith().Imbalance() != 1 {
		t.Fatal("empty stage imbalance != 1")
	}
	if statsWith(5).Imbalance() != 1 {
		t.Fatal("single-task imbalance != 1")
	}
	if statsWith(0, 5).Imbalance() != 1 {
		t.Fatal("zero-min imbalance != 1")
	}
}

func TestMakespanSingleWorkerIsTotal(t *testing.T) {
	s := statsWith(4, 2, 9, 1)
	if s.Makespan(1) != s.Total() {
		t.Fatalf("Makespan(1) = %v, want %v", s.Makespan(1), s.Total())
	}
}

func TestMakespanManyWorkersIsMax(t *testing.T) {
	s := statsWith(4, 2, 9, 1)
	if s.Makespan(100) != 9 {
		t.Fatalf("Makespan(100) = %v, want 9", s.Makespan(100))
	}
}

func TestMakespanGreedyInOrder(t *testing.T) {
	// Tasks 6,4,3,2 on 2 workers greedy in order:
	// w1: 6; w2: 4, then 3 -> w2 (free at 4? no: w2 free at 4, w1 at 6, so
	// 3 goes to w2 -> 7; 2 goes to w1 -> 8). Makespan 8.
	s := statsWith(6, 4, 3, 2)
	if got := s.Makespan(2); got != 8 {
		t.Fatalf("Makespan(2) = %v, want 8", got)
	}
}

// Oracle: Makespan must equal a direct simulation of greedy in-order
// scheduling (assign each task to the worker that frees up first).
func TestMakespanMatchesOracle(t *testing.T) {
	f := func(raw []uint16, w8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		costs := make([]time.Duration, len(raw))
		for i, v := range raw {
			costs[i] = time.Duration(v)
		}
		w := int(w8%15) + 1
		s := statsWith(costs...)
		// Oracle: linear-scan min each step.
		free := make([]time.Duration, w)
		for _, c := range costs {
			mi := 0
			for i := 1; i < w; i++ {
				if free[i] < free[mi] {
					mi = i
				}
			}
			free[mi] += c
		}
		var want time.Duration
		for _, f := range free {
			if f > want {
				want = f
			}
		}
		return s.Makespan(w) == want
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 207, 300)); err != nil {
		t.Fatal(err)
	}
}

// Properties: makespan is monotone in workers, between max and total.
func TestMakespanProperties(t *testing.T) {
	f := func(raw []uint16, w8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		costs := make([]time.Duration, len(raw))
		for i, v := range raw {
			costs[i] = time.Duration(v) + 1
		}
		s := statsWith(costs...)
		w := int(w8%31) + 1
		m := s.Makespan(w)
		if m < s.Max() || m > s.Total() {
			return false
		}
		return s.Makespan(w+1) <= m
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 208, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestRunStageExecutesAllTasks(t *testing.T) {
	c := New(4)
	var hits atomic.Int64
	seen := make([]atomic.Bool, 37)
	s := c.RunStage("II", "work", 37, func(i int) {
		hits.Add(1)
		if seen[i].Swap(true) {
			t.Errorf("task %d ran twice", i)
		}
	})
	if hits.Load() != 37 {
		t.Fatalf("ran %d tasks, want 37", hits.Load())
	}
	if len(s.Costs) != 37 {
		t.Fatalf("recorded %d costs, want 37", len(s.Costs))
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestSerialAndBroadcast(t *testing.T) {
	c := New(2)
	ran := false
	c.Serial("I-1", "setup", func() { ran = true })
	if !ran {
		t.Fatal("Serial did not run fn")
	}
	payload := c.Broadcast("I-2", "dict", func() []byte { return make([]byte, 123) })
	if len(payload) != 123 {
		t.Fatalf("payload = %d bytes", len(payload))
	}
	rep := c.Report()
	if len(rep.Stages) != 2 {
		t.Fatalf("report has %d stages, want 2", len(rep.Stages))
	}
	if b := rep.Stage("dict"); b == nil || b.Bytes != 123 {
		t.Fatalf("broadcast stage = %+v", b)
	}
}

func TestReportBreakdownAndElapsed(t *testing.T) {
	r := &Report{Workers: 2, Stages: []*StageStats{
		{Name: "a", Phase: "I", Costs: []time.Duration{2, 2}},
		{Name: "b", Phase: "II", Costs: []time.Duration{10}},
		{Name: "c", Phase: "I", Costs: []time.Duration{4}},
	}}
	if got := r.SimulatedElapsed(); got != 2+10+4 {
		t.Fatalf("SimulatedElapsed = %v, want 16", got)
	}
	m, order := r.PhaseBreakdown()
	if m["I"] != 6 || m["II"] != 10 {
		t.Fatalf("breakdown = %v", m)
	}
	if len(order) != 2 || order[0] != "I" || order[1] != "II" {
		t.Fatalf("phase order = %v", order)
	}
}

func TestSpeedUpMonotone(t *testing.T) {
	costs := make([]time.Duration, 40)
	for i := range costs {
		costs[i] = time.Duration(10 + i%7)
	}
	r := &Report{Stages: []*StageStats{{Name: "x", Phase: "II", Costs: costs}}}
	su := SpeedUp(r, 5, []int{5, 10, 20, 40})
	if su[0] != 1 {
		t.Fatalf("speedup at base = %v, want 1", su[0])
	}
	for i := 1; i < len(su); i++ {
		if su[i] < su[i-1]-1e-9 {
			t.Fatalf("speedup not monotone: %v", su)
		}
	}
	if su[3] <= 1 {
		t.Fatalf("speedup at 40 workers = %v, want > 1", su[3])
	}
}

func TestExecutorCount(t *testing.T) {
	cases := []struct {
		workers, executors, want int
	}{
		{40, 0, 10}, // paper deployment: 4-core nodes
		{8, 0, 2},
		{5, 0, 2},
		{1, 0, 1},
		{3, 0, 1},
		{40, 12, 12}, // explicit override
	}
	for _, c := range cases {
		cl := New(c.workers)
		cl.Executors = c.executors
		if got := cl.ExecutorCount(); got != c.want {
			t.Errorf("workers=%d executors=%d: ExecutorCount = %d, want %d",
				c.workers, c.executors, got, c.want)
		}
	}
}

func TestTaskRetryOnInjectedFault(t *testing.T) {
	c := New(4)
	// Every task fails on its first attempt and succeeds on the second.
	c.Injector = InjectorFunc(func(stage string, task, attempt int) bool {
		return attempt == 0
	})
	var done atomic.Int64
	s := c.RunStage("II", "flaky", 20, func(i int) { done.Add(1) })
	if done.Load() != 20 {
		t.Fatalf("completed %d tasks, want 20", done.Load())
	}
	if len(s.Costs) != 20 {
		t.Fatal("costs not recorded")
	}
	if s.Faults.InjectedFailures != 20 {
		t.Fatalf("InjectedFailures = %d, want 20", s.Faults.InjectedFailures)
	}
	if s.Faults.BackoffVirtual <= 0 {
		t.Fatalf("BackoffVirtual = %v, want > 0", s.Faults.BackoffVirtual)
	}
}

func TestTaskRetryRecoversPanics(t *testing.T) {
	c := New(2)
	var attempts atomic.Int64
	c.RunStage("II", "panicky", 4, func(i int) {
		if attempts.Add(1)%2 == 1 {
			panic("transient")
		}
	})
	// Each task panicked once and succeeded on retry: 8 attempts.
	if attempts.Load() != 8 {
		t.Fatalf("attempts = %d, want 8", attempts.Load())
	}
}

func TestTaskRetriesExhaustedPropagates(t *testing.T) {
	c := New(1)
	c.MaxTaskRetries = 1
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted retries did not panic")
		}
	}()
	c.RunStage("II", "doomed", 1, func(i int) { panic("permanent") })
}

func TestResetClearsReport(t *testing.T) {
	c := New(1)
	c.Serial("I", "x", func() {})
	c.Reset()
	if len(c.Report().Stages) != 0 {
		t.Fatal("Reset did not clear stages")
	}
}

func TestMergeOf(t *testing.T) {
	a := &Report{Stages: []*StageStats{{Name: "x", Phase: "I", Costs: []time.Duration{1}}}}
	b := &Report{Stages: []*StageStats{{Name: "y", Phase: "II", Costs: []time.Duration{2}}}}
	m := MergeOf(7, a, b)
	if m.Workers != 7 || len(m.Stages) != 2 || m.Stages[0].Name != "x" || m.Stages[1].Name != "y" {
		t.Fatalf("MergeOf wrong: %+v", m)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Workers: 2, Stages: []*StageStats{
		{Name: "work", Phase: "II", Costs: []time.Duration{time.Millisecond}},
	}}
	s := r.String()
	if s == "" || !contains(s, "work") || !contains(s, "II") {
		t.Fatalf("String() = %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSortedCosts(t *testing.T) {
	s := statsWith(3, 1, 2)
	got := s.SortedCosts()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("SortedCosts = %v", got)
	}
	// Original must be untouched.
	if s.Costs[0] != 3 {
		t.Fatal("SortedCosts mutated original")
	}
}
