package engine

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"rpdbscan/internal/testutil"
)

// testInjector is a scriptable Injector for engine-level tests.
type testInjector struct {
	fail    func(stage string, task, attempt int) bool
	delay   func(stage string, task int) time.Duration
	corrupt func(stage string, task, attempt, chunk int) bool
}

func (in *testInjector) FailTask(stage string, task, attempt int) bool {
	return in.fail != nil && in.fail(stage, task, attempt)
}
func (in *testInjector) TaskDelay(stage string, task int) time.Duration {
	if in.delay == nil {
		return 0
	}
	return in.delay(stage, task)
}
func (in *testInjector) CorruptFetch(stage string, task, attempt, chunk int) bool {
	return in.corrupt != nil && in.corrupt(stage, task, attempt, chunk)
}

func TestBackoffDeterministicAndExponential(t *testing.T) {
	c := New(2)
	b0 := c.backoffFor("stage", 3, 0)
	b1 := c.backoffFor("stage", 3, 1)
	b2 := c.backoffFor("stage", 3, 2)
	if b0 != c.backoffFor("stage", 3, 0) {
		t.Fatal("backoff not deterministic")
	}
	// Jitter is within [0.5, 1.5), so successive attempts of the same task
	// can overlap; the base schedule doubles, so attempt a+2 must always
	// exceed attempt a (2^2 * 0.5 > 1.5).
	if b2 <= b0 {
		t.Fatalf("backoff not growing: %v then %v", b0, b2)
	}
	if b1 <= 0 || b0 <= 0 {
		t.Fatalf("non-positive backoff: %v %v", b0, b1)
	}
	// Distinct tasks get distinct jitter.
	if c.backoffFor("stage", 3, 0) == c.backoffFor("stage", 4, 0) &&
		c.backoffFor("stage", 3, 1) == c.backoffFor("stage", 4, 1) {
		t.Fatal("jitter identical across tasks")
	}
	// The cap binds.
	c.RetryBackoffBase = time.Second
	c.RetryBackoffMax = 2 * time.Second
	if got := c.backoffFor("s", 0, 30); got > 2*time.Second {
		t.Fatalf("backoff %v exceeds cap", got)
	}
	// Negative base disables.
	c.RetryBackoffBase = -1
	if got := c.backoffFor("s", 0, 0); got != 0 {
		t.Fatalf("disabled backoff = %v, want 0", got)
	}
}

func TestBackoffFeedsTaskCostVirtually(t *testing.T) {
	c := New(1)
	c.RetryBackoffBase = 50 * time.Millisecond
	c.Injector = InjectorFunc(func(stage string, task, attempt int) bool { return attempt == 0 })
	start := time.Now()
	s := c.RunStage("II", "flaky", 2, func(i int) {})
	wall := time.Since(start)
	// Virtual: the stage must not actually sleep through ~2x50ms backoff.
	if wall > 40*time.Millisecond {
		t.Fatalf("backoff appears to sleep for real: stage wall %v", wall)
	}
	if s.Faults.BackoffVirtual < 50*time.Millisecond {
		t.Fatalf("BackoffVirtual = %v, want >= 50ms", s.Faults.BackoffVirtual)
	}
	// And it must feed the recorded costs (hence the simulated makespan).
	if s.Total() < s.Faults.BackoffVirtual {
		t.Fatalf("costs %v do not include virtual backoff %v", s.Total(), s.Faults.BackoffVirtual)
	}
}

func TestStragglerSpeculationFirstFinisherWins(t *testing.T) {
	c := New(2)
	var runs atomic.Int64
	// Inflate task 1 by far more than its real cost: speculation must
	// launch, and the uninflated copy must win in virtual time.
	c.Injector = &testInjector{delay: func(stage string, task int) time.Duration {
		if task == 1 {
			return time.Second
		}
		return 0
	}}
	s := c.RunStage("II", "straggly", 3, func(i int) { runs.Add(1) })
	if s.Faults.StragglerDelay != time.Second {
		t.Fatalf("StragglerDelay = %v, want 1s", s.Faults.StragglerDelay)
	}
	if s.Faults.SpeculativeLaunches != 1 || s.Faults.SpeculativeWins != 1 {
		t.Fatalf("speculation = %d launches / %d wins, want 1/1",
			s.Faults.SpeculativeLaunches, s.Faults.SpeculativeWins)
	}
	// The speculative copy really re-ran the task body.
	if runs.Load() != 4 {
		t.Fatalf("task body ran %d times, want 4 (3 tasks + 1 speculative copy)", runs.Load())
	}
	// First-finisher-wins: the winning cost must be far below the
	// straggler's inflated cost.
	if s.Costs[1] >= time.Second {
		t.Fatalf("straggler cost %v: speculative win did not replace it", s.Costs[1])
	}
}

func TestSpeculationDisabled(t *testing.T) {
	c := New(2)
	c.SpeculationFactor = -1
	c.Injector = &testInjector{delay: func(string, int) time.Duration { return time.Second }}
	s := c.RunStage("II", "straggly", 2, func(i int) {})
	if s.Faults.SpeculativeLaunches != 0 {
		t.Fatal("speculation ran while disabled")
	}
	if s.Costs[0] < time.Second || s.Costs[1] < time.Second {
		t.Fatalf("straggler inflation missing from costs: %v", s.Costs)
	}
}

func TestFetchNilInjectorReturnsSharedPayload(t *testing.T) {
	c := New(2)
	p := c.BroadcastChecked("I-2", "dict", func() []byte { return []byte("payload-bytes") })
	got, err := c.Fetch(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &p.Bytes()[0] {
		t.Fatal("nil-injector Fetch copied the payload")
	}
}

func TestFetchDetectsCorruptionAndRefetches(t *testing.T) {
	sink := &recordSink{}
	c := New(2)
	c.Sink = sink
	var corruptions atomic.Int64
	c.Injector = &testInjector{corrupt: func(stage string, task, attempt, chunk int) bool {
		// Corrupt the first transfer attempt of every chunk, to every task.
		if attempt == 0 {
			corruptions.Add(1)
			return true
		}
		return false
	}}
	payload := make([]byte, 3*payloadChunkSize/2) // two chunks
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	p := c.BroadcastChecked("I-2", "dict", func() []byte { return payload })
	var fetchErr error
	var fetched []byte
	s := c.RunStage("I-2", "load", 1, func(i int) {
		fetched, fetchErr = c.Fetch(p, i)
	})
	if fetchErr != nil {
		t.Fatal(fetchErr)
	}
	if string(fetched) != string(payload) {
		t.Fatal("re-fetched payload differs from the pristine copy")
	}
	if &fetched[0] == &payload[0] {
		t.Fatal("chaos-mode Fetch returned the shared driver copy")
	}
	if want := corruptions.Load(); s.Faults.ChecksumRejects != want {
		t.Fatalf("ChecksumRejects = %d, want %d (every corruption detected)",
			s.Faults.ChecksumRejects, want)
	}
	if s.Faults.BackoffVirtual <= 0 {
		t.Fatal("re-transfer accrued no virtual backoff")
	}
	// Re-transfer backoff must be charged to the fetching task's cost.
	if s.Costs[0] < s.Faults.BackoffVirtual {
		t.Fatalf("task cost %v misses re-transfer backoff %v", s.Costs[0], s.Faults.BackoffVirtual)
	}
	if got := sink.count(EventChecksumReject); int64(got) != corruptions.Load() {
		t.Fatalf("checksum-reject events = %d, want %d", got, corruptions.Load())
	}
}

func TestFetchPersistentCorruptionErrors(t *testing.T) {
	c := New(1)
	c.Injector = &testInjector{corrupt: func(string, int, int, int) bool { return true }}
	p := c.BroadcastChecked("I-2", "dict", func() []byte { return []byte("doomed") })
	if _, err := c.Fetch(p, 0); err == nil {
		t.Fatal("persistently corrupt payload did not error")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestFetchEmptyPayload(t *testing.T) {
	c := New(1)
	c.Injector = &testInjector{}
	p := c.BroadcastChecked("I-2", "dict", func() []byte { return nil })
	got, err := c.Fetch(p, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty payload fetch = %v, %v", got, err)
	}
}

func TestChecksumDetectsEverySingleByteFlip(t *testing.T) {
	b := []byte("the broadcast dictionary payload")
	sum := checksum64(b)
	for i := range b {
		for bit := 0; bit < 8; bit++ {
			b[i] ^= 1 << bit
			if checksum64(b) == sum {
				t.Fatalf("flip of byte %d bit %d undetected", i, bit)
			}
			b[i] ^= 1 << bit
		}
	}
}

func TestTotalFaultsSumsStages(t *testing.T) {
	r := &Report{Stages: []*StageStats{
		{Faults: FaultStats{InjectedFailures: 2, ChecksumRejects: 1, BackoffVirtual: 3}},
		{Faults: FaultStats{InjectedFailures: 1, SpeculativeLaunches: 4, SpeculativeWins: 2, StragglerDelay: 5}},
		{},
	}}
	got := r.TotalFaults()
	want := FaultStats{InjectedFailures: 3, ChecksumRejects: 1, BackoffVirtual: 3,
		SpeculativeLaunches: 4, SpeculativeWins: 2, StragglerDelay: 5}
	if got != want {
		t.Fatalf("TotalFaults = %+v, want %+v", got, want)
	}
	if got.IsZero() || (FaultStats{}).IsZero() != true {
		t.Fatal("IsZero wrong")
	}
}

func TestReportStringShowsFaults(t *testing.T) {
	r := &Report{Workers: 2, Stages: []*StageStats{
		{Name: "chaotic", Phase: "II", Costs: []time.Duration{time.Millisecond},
			Faults: FaultStats{InjectedFailures: 2, ChecksumRejects: 1}},
	}}
	s := r.String()
	if !strings.Contains(s, "inj=2") || !strings.Contains(s, "cksum=1") {
		t.Fatalf("faults missing from report table:\n%s", s)
	}
}

// Graham's bound for greedy list scheduling: makespan <= total/w + max.
// This is the deterministic "bounded" half of the chaos harness's
// monotone-bounded degradation claim — injected virtual delays can push
// the makespan up, but never past the bound computable from the stage's
// own recorded costs.
func TestMakespanGrahamBound(t *testing.T) {
	f := func(raw []uint16, w8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		costs := make([]time.Duration, len(raw))
		for i, v := range raw {
			costs[i] = time.Duration(v)
		}
		w := int(w8%15) + 1
		s := statsWith(costs...)
		bound := s.Total()/time.Duration(w) + s.Max()
		return s.Makespan(w) <= bound
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 206, 300)); err != nil {
		t.Fatal(err)
	}
}

// The injected-fault accounting must be exact: every FailTask=true is one
// InjectedFailures tick, including failures that exhaust the retry budget.
func TestEveryInjectedFailureAccounted(t *testing.T) {
	c := New(4)
	var injected atomic.Int64
	c.Injector = &testInjector{fail: func(stage string, task, attempt int) bool {
		if attempt < 2 && task%3 == 0 {
			injected.Add(1)
			return true
		}
		return false
	}}
	s := c.RunStage("II", "flaky", 17, func(i int) {})
	if s.Faults.InjectedFailures != injected.Load() {
		t.Fatalf("accounted %d injected failures, injector reports %d",
			s.Faults.InjectedFailures, injected.Load())
	}
}

// BenchmarkRunStageNilInjector is the chaos-off baseline: with no injector
// installed, the fault path is one nil check per site and must add no
// measurable overhead versus BenchmarkRunStageNilSink (the pre-chaos
// engine). BenchmarkRunStageInjector shows the cost chaos adds only when
// an injector is actually installed.
func BenchmarkRunStageNilInjector(b *testing.B) { benchRunStage(b, nil) }

func BenchmarkRunStageInjector(b *testing.B) {
	c := New(8)
	c.Injector = &testInjector{}
	var x int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunStage("II", "bench", 256, func(t int) { x += int64(t) })
		c.Reset()
	}
	_ = x
}

// BenchmarkFetchNilInjector must be a pointer return: no copy, no
// checksum.
func BenchmarkFetchNilInjector(b *testing.B) {
	c := New(8)
	p := c.BroadcastChecked("I-2", "dict", func() []byte { return make([]byte, 1<<20) })
	c.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fetch(p, i%8); err != nil {
			b.Fatal(err)
		}
	}
}
