// Package engine provides the parallel execution substrate that stands in
// for Apache Spark in the original RP-DBSCAN system. A Cluster executes
// stages of independent tasks on a bounded goroutine pool, measures every
// task's cost, and computes the makespan those costs would have on a
// virtual cluster of W workers using the same greedy in-order scheduling a
// MapReduce scheduler applies.
//
// The virtual-cluster makespan is what the experiment harness reports as
// "elapsed time": it reproduces the quantities the paper measures (per-split
// elapsed time, slowest/fastest load imbalance, speed-up versus cores)
// deterministically, independent of how many physical cores this machine
// has. Real wall-clock time is also recorded per stage.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StageStats records the measured execution of one stage: the per-task
// costs plus the real wall-clock duration of the stage.
type StageStats struct {
	// Name identifies the stage (e.g. "core-marking").
	Name string
	// Phase groups stages for breakdown reporting (e.g. "I-1", "II").
	Phase string
	// Costs holds the measured duration of each task.
	Costs []time.Duration
	// Wall is the real elapsed time of the whole stage.
	Wall time.Duration
	// Bytes optionally accounts payload size (broadcasts, shuffles).
	Bytes int64
	// Retries counts failed task attempts that were re-executed (panics
	// and injected faults).
	Retries int64
	// AllocDelta is the growth of cumulative heap allocation
	// (runtime.MemStats.TotalAlloc) across the stage, in bytes. It is a
	// process-wide measure: concurrent allocation outside the stage is
	// attributed to it too.
	AllocDelta int64
	// MallocDelta is the growth of the cumulative heap allocation count
	// (runtime.MemStats.Mallocs) across the stage — the allocs/op
	// numerator for stage-level benchmark reporting. Process-wide, like
	// AllocDelta.
	MallocDelta int64
	// Faults accounts everything the fault injector did to this stage and
	// how the scheduler responded. All zero when no Injector is installed.
	Faults FaultStats
	// TaskWorkers holds, per task, the index of the remote worker process
	// that served the task's successful attempt, or -1 when the task ran
	// in-process. Nil for stages executed without a Transport.
	TaskWorkers []int32
}

// FaultStats records, per stage, the injected faults and the scheduler's
// responses: it is the ledger the chaos harness reconciles against the
// injector's own accounting ("every injected failure accounted for").
type FaultStats struct {
	// InjectedFailures counts task attempts failed by the Injector.
	InjectedFailures int64
	// BackoffVirtual is the summed virtual retry backoff added to task
	// costs (exponential with deterministic jitter; never slept for real).
	// It includes re-transfer backoff after checksum rejections.
	BackoffVirtual time.Duration
	// StragglerDelay is the summed virtual cost inflation injected into
	// straggler tasks.
	StragglerDelay time.Duration
	// SpeculativeLaunches counts speculative task copies launched for
	// stragglers; SpeculativeWins counts those that finished (in virtual
	// time) before the straggling original.
	SpeculativeLaunches int64
	SpeculativeWins     int64
	// ChecksumRejects counts corrupted payload chunks detected (and
	// re-fetched) via per-chunk checksums.
	ChecksumRejects int64
	// WorkerKills counts worker processes killed under the attempt's feet
	// by process-level chaos (multi-process transport only; the simulator
	// has no processes to kill). Each kill fails the in-flight attempt,
	// which is retried on a respawned or surviving worker.
	WorkerKills int64
}

// IsZero reports whether no fault activity was recorded.
func (f FaultStats) IsZero() bool { return f == FaultStats{} }

// Add accumulates o into f (used for report-level totals).
func (f *FaultStats) Add(o FaultStats) {
	f.InjectedFailures += o.InjectedFailures
	f.BackoffVirtual += o.BackoffVirtual
	f.StragglerDelay += o.StragglerDelay
	f.SpeculativeLaunches += o.SpeculativeLaunches
	f.SpeculativeWins += o.SpeculativeWins
	f.ChecksumRejects += o.ChecksumRejects
	f.WorkerKills += o.WorkerKills
}

// Total returns the sum of all task costs.
func (s *StageStats) Total() time.Duration {
	var t time.Duration
	for _, c := range s.Costs {
		t += c
	}
	return t
}

// Max returns the largest task cost, or 0 for an empty stage.
func (s *StageStats) Max() time.Duration {
	var m time.Duration
	for _, c := range s.Costs {
		if c > m {
			m = c
		}
	}
	return m
}

// Min returns the smallest task cost, or 0 for an empty stage.
func (s *StageStats) Min() time.Duration {
	if len(s.Costs) == 0 {
		return 0
	}
	m := s.Costs[0]
	for _, c := range s.Costs[1:] {
		if c < m {
			m = c
		}
	}
	return m
}

// Imbalance returns the slowest/fastest task-cost ratio, the load-imbalance
// metric of Section 7.3.1. A stage with fewer than two tasks, or a zero
// fastest task, reports 1.
func (s *StageStats) Imbalance() float64 {
	if len(s.Costs) < 2 {
		return 1
	}
	min, max := s.Min(), s.Max()
	if min <= 0 {
		return 1
	}
	return float64(max) / float64(min)
}

// Makespan returns the completion time of the stage on a virtual cluster of
// w workers under greedy in-order scheduling: each task is assigned, in
// submission order, to the worker that frees up first.
func (s *StageStats) Makespan(w int) time.Duration {
	if w < 1 {
		w = 1
	}
	if len(s.Costs) == 0 {
		return 0
	}
	free := make([]time.Duration, w) // min-heap by free time
	for _, c := range s.Costs {
		// Pop the earliest-free worker (index 0 after sift).
		siftDown(free)
		free[0] += c
	}
	var m time.Duration
	for _, f := range free {
		if f > m {
			m = f
		}
	}
	return m
}

// siftDown restores the min at free[0] for the tiny worker heap. Worker
// counts are small (tens), so an O(w) scan-and-swap is simpler and fast.
func siftDown(free []time.Duration) {
	mi := 0
	for i := 1; i < len(free); i++ {
		if free[i] < free[mi] {
			mi = i
		}
	}
	free[0], free[mi] = free[mi], free[0]
}

// Report collects the ordered stages of one algorithm run.
type Report struct {
	// Workers is the virtual worker count used for simulated totals.
	Workers int
	Stages  []*StageStats
}

// SimulatedElapsed returns the total simulated elapsed time: the sum over
// stages of their makespan on the report's virtual cluster. Stages run one
// after another, as MapReduce stages are barrier-separated.
func (r *Report) SimulatedElapsed() time.Duration {
	var t time.Duration
	for _, s := range r.Stages {
		t += s.Makespan(r.Workers)
	}
	return t
}

// WallElapsed returns the summed real wall time of all stages.
func (r *Report) WallElapsed() time.Duration {
	var t time.Duration
	for _, s := range r.Stages {
		t += s.Wall
	}
	return t
}

// PhaseBreakdown returns the simulated elapsed time grouped by phase label,
// plus the phase order of first appearance.
func (r *Report) PhaseBreakdown() (map[string]time.Duration, []string) {
	m := make(map[string]time.Duration)
	var order []string
	for _, s := range r.Stages {
		if _, ok := m[s.Phase]; !ok {
			order = append(order, s.Phase)
		}
		m[s.Phase] += s.Makespan(r.Workers)
	}
	return m, order
}

// PhaseSummary aggregates the stages of one phase label: the rollup the
// observability snapshot renders (per-phase wall clock, simulated makespan,
// payload bytes, retries, allocation growth, and the fault ledger).
type PhaseSummary struct {
	// Phase is the shared phase label (e.g. "I-1", "II").
	Phase string
	// Stages and Tasks count the stages and tasks grouped under the phase.
	Stages int
	Tasks  int
	// Wall is the summed real wall time; Simulated the summed virtual
	// makespan on the report's worker count.
	Wall      time.Duration
	Simulated time.Duration
	// Bytes sums the accounted payload sizes of the phase's stages.
	Bytes int64
	// Retries sums re-executed task attempts.
	Retries int64
	// AllocDelta and MallocDelta sum the stages' heap-growth accounting.
	AllocDelta  int64
	MallocDelta int64
	// Faults is the phase's combined fault ledger.
	Faults FaultStats
}

// PhaseSummaries rolls the report's stages up by phase label, in order of
// first appearance. It is the single aggregation behind the obs.Snapshot
// phase table and the /metrics phase gauges.
func (r *Report) PhaseSummaries() []PhaseSummary {
	idx := make(map[string]int)
	var out []PhaseSummary
	for _, s := range r.Stages {
		i, ok := idx[s.Phase]
		if !ok {
			i = len(out)
			idx[s.Phase] = i
			out = append(out, PhaseSummary{Phase: s.Phase})
		}
		p := &out[i]
		p.Stages++
		p.Tasks += len(s.Costs)
		p.Wall += s.Wall
		p.Simulated += s.Makespan(r.Workers)
		p.Bytes += s.Bytes
		p.Retries += s.Retries
		p.AllocDelta += s.AllocDelta
		p.MallocDelta += s.MallocDelta
		p.Faults.Add(s.Faults)
	}
	return out
}

// Stage returns the first stage with the given name, or nil.
func (r *Report) Stage(name string) *StageStats {
	for _, s := range r.Stages {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// TotalFaults sums the per-stage fault ledgers. A fault-free run returns
// the zero FaultStats.
func (r *Report) TotalFaults() FaultStats {
	var t FaultStats
	for _, s := range r.Stages {
		t.Add(s.Faults)
	}
	return t
}

// MergeOf combines the stage lists of several reports in order (used when
// an algorithm run is assembled from sub-runs).
func MergeOf(workers int, reports ...*Report) *Report {
	out := &Report{Workers: workers}
	for _, r := range reports {
		out.Stages = append(out.Stages, r.Stages...)
	}
	return out
}

// String formats the report as a per-stage table. Broadcast/shuffle
// payload sizes and retry counts are appended only for stages that have
// them.
func (r *Report) String() string {
	out := fmt.Sprintf("report (workers=%d, simulated=%v):\n", r.Workers, r.SimulatedElapsed())
	for _, s := range r.Stages {
		out += fmt.Sprintf("  [%-5s] %-28s tasks=%-4d total=%-12v makespan=%-12v imbalance=%.2f",
			s.Phase, s.Name, len(s.Costs), s.Total(), s.Makespan(r.Workers), s.Imbalance())
		if s.Bytes > 0 {
			out += fmt.Sprintf(" bytes=%d", s.Bytes)
		}
		if s.Retries > 0 {
			out += fmt.Sprintf(" retries=%d", s.Retries)
		}
		if f := s.Faults; !f.IsZero() {
			out += fmt.Sprintf(" faults[inj=%d cksum=%d kill=%d spec=%d/%d backoff=%v straggle=%v]",
				f.InjectedFailures, f.ChecksumRejects, f.WorkerKills, f.SpeculativeLaunches, f.SpeculativeWins,
				f.BackoffVirtual.Round(time.Microsecond), f.StragglerDelay.Round(time.Microsecond))
		}
		out += "\n"
	}
	return out
}

// Cluster executes stages and accumulates a Report. It is safe for a single
// run at a time (stages execute sequentially, tasks within a stage in
// parallel).
type Cluster struct {
	// Workers is the virtual worker count (the "cores" of the paper's
	// scalability experiments).
	Workers int
	// Executors is the number of worker machines: broadcast payloads are
	// loaded once per executor, not once per task, as on Spark. Zero
	// defaults to ceil(Workers/4), matching the paper's 4-core nodes.
	Executors int
	// Parallelism bounds real concurrent goroutines; defaults to
	// GOMAXPROCS.
	Parallelism int
	// MaxTaskRetries is how many times a panicking task is re-executed
	// before the panic propagates, mirroring Spark's task re-execution.
	// Zero defaults to 2.
	MaxTaskRetries int
	// Injector, when set, is consulted at every fault-injection point:
	// before each task attempt (FailTask), after each task completes
	// (TaskDelay, straggler inflation), and per chunk of a checksummed
	// payload transfer (CorruptFetch). Nil disables all chaos machinery
	// at the cost of one nil check per site; see internal/chaos for the
	// seed-driven implementation.
	Injector Injector
	// RetryBackoffBase is the virtual backoff before re-executing a
	// failed attempt: attempt a waits base<<a scaled by a deterministic
	// jitter in [0.5,1.5) derived from (stage, task, attempt). The wait
	// is virtual time — added to the task's recorded cost (and so to the
	// simulated makespan), never slept — which keeps chaos runs
	// reproducible. Zero defaults to 5ms; negative disables backoff.
	RetryBackoffBase time.Duration
	// RetryBackoffMax caps a single backoff wait. Zero defaults to 1s.
	RetryBackoffMax time.Duration
	// SpeculationFactor controls speculative re-execution of stragglers:
	// a task whose virtual cost (measured + injected delay) reaches
	// factor x its measured cost gets a speculative copy, launched (in
	// virtual time) at the detection threshold; the first finisher wins.
	// Zero defaults to 2; negative disables speculation. Only injected
	// stragglers are speculated — without an Injector nothing straggles
	// by more than its real measured cost.
	SpeculationFactor float64
	// Sink, when set, receives per-task span events (start, end, retry,
	// fault, broadcast). Nil disables emission at the cost of one nil
	// check per event site.
	Sink EventSink
	// Transport, when set, is the backend remote stages execute on (see
	// RunStageRemote and PushStage). Nil keeps every stage in-process on
	// the virtual-cluster simulator — the default, unchanged behavior.
	Transport Transport

	mu     sync.Mutex
	report Report
	// cur points at the running stage's fault accumulator so that
	// Fetch — called from inside task bodies — can attribute checksum
	// rejections and re-transfer backoff to the right stage and task.
	cur atomic.Pointer[faultAccum]
}

// Injector is the fault-injection hook the cluster consults when one is
// installed. Implementations must be deterministic pure functions of their
// arguments (plus an internal seed): the same schedule must replay across
// runs, goroutine interleavings, and worker counts, or chaos failures
// become unreproducible. Implementations must also be safe for concurrent
// use and must bound per-task injections below the retry budget
// (MaxTaskRetries) so injection alone can never exhaust it.
type Injector interface {
	// FailTask reports whether attempt `attempt` of task `task` in stage
	// `stage` should fail with an injected error.
	FailTask(stage string, task, attempt int) bool
	// TaskDelay returns extra virtual time added to the task's recorded
	// cost, simulating a straggler. Consulted once per task, after its
	// successful attempt. Zero means no inflation.
	TaskDelay(stage string, task int) time.Duration
	// CorruptFetch reports whether the transfer of chunk `chunk` of a
	// checksummed payload to task `task` should be corrupted on attempt
	// `attempt`. The engine flips a byte in the transferred copy, so the
	// corruption must be caught by the per-chunk checksum.
	CorruptFetch(stage string, task, attempt, chunk int) bool
}

// InjectorFunc adapts a plain attempt-failure predicate (the historical
// FaultInjector shape) to the Injector interface: failures only, no
// stragglers, no corruption.
type InjectorFunc func(stage string, task, attempt int) bool

// FailTask implements Injector.
func (f InjectorFunc) FailTask(stage string, task, attempt int) bool { return f(stage, task, attempt) }

// TaskDelay implements Injector; it never inflates.
func (f InjectorFunc) TaskDelay(string, int) time.Duration { return 0 }

// CorruptFetch implements Injector; it never corrupts.
func (f InjectorFunc) CorruptFetch(string, int, int, int) bool { return false }

// faultAccum is the concurrent accumulator behind a stage's FaultStats.
type faultAccum struct {
	stage                                         string
	injected, rejects, specLaunch, specWin, kills atomic.Int64
	backoff, straggler                            atomic.Int64 // ns
	// extra holds, per task, virtual ns added by Fetch (re-transfer
	// backoff after checksum rejections) to fold into the task's cost.
	extra []atomic.Int64
	// workers holds, per task, 1 + the index of the remote worker that
	// served the successful attempt (0 = not recorded / local execution).
	// Written by the transport via ChargeWorkerTask from inside task
	// bodies; disjoint slots, so plain stores race with nothing.
	workers []atomic.Int32
}

// stats snapshots the accumulator into a FaultStats.
func (a *faultAccum) stats() FaultStats {
	return FaultStats{
		InjectedFailures:    a.injected.Load(),
		BackoffVirtual:      time.Duration(a.backoff.Load()),
		StragglerDelay:      time.Duration(a.straggler.Load()),
		SpeculativeLaunches: a.specLaunch.Load(),
		SpeculativeWins:     a.specWin.Load(),
		ChecksumRejects:     a.rejects.Load(),
		WorkerKills:         a.kills.Load(),
	}
}

// New returns a cluster simulating w virtual workers.
func New(w int) *Cluster {
	return &Cluster{Workers: w, Parallelism: runtime.GOMAXPROCS(0)}
}

// ExecutorCount resolves the effective executor count.
func (c *Cluster) ExecutorCount() int {
	if c.Executors > 0 {
		return c.Executors
	}
	e := (c.Workers + 3) / 4
	if e < 1 {
		e = 1
	}
	return e
}

// Report returns the accumulated report. The stage list is copied so the
// returned Report is not aliased by stages appended later; the StageStats
// themselves are shared (they are immutable once appended).
func (c *Cluster) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{
		Workers: c.Workers,
		Stages:  append([]*StageStats(nil), c.report.Stages...),
	}
	return &rep
}

// Reset clears the accumulated report.
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report = Report{}
}

// RunStage executes n independent tasks, measuring each, and appends the
// stage to the report. fn is called with task indices 0..n-1, possibly
// concurrently from multiple goroutines.
func (c *Cluster) RunStage(phase, name string, n int, fn func(task int)) *StageStats {
	return c.RunStageAttempts(phase, name, n, func(task, _ int) { fn(task) })
}

// RunStageAttempts is RunStage for task bodies that need the zero-based
// attempt number — the remote-execution path, where the attempt index keys
// the deterministic chaos schedule for wire corruption and worker kills. A
// speculative re-execution of a straggler is passed an attempt beyond the
// retry budget (MaxTaskRetries+1), which deterministic injectors bounded by
// MaxFaultsPerTask treat as a healthy node and never fault.
func (c *Cluster) RunStageAttempts(phase, name string, n int, fn func(task, attempt int)) *StageStats {
	s := &StageStats{Name: name, Phase: phase, Costs: make([]time.Duration, n)}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	start := time.Now()
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageStart, Stage: name, Phase: phase, Task: -1, Time: start})
	}
	par := c.Parallelism
	if par < 1 {
		par = 1
	}
	if par > n {
		par = n
	}
	acc := &faultAccum{stage: name, extra: make([]atomic.Int64, n)}
	if c.Transport != nil {
		acc.workers = make([]atomic.Int32, n)
	}
	c.cur.Store(acc)
	defer c.cur.Store(nil)
	var next, retries atomic.Int64
	var wg sync.WaitGroup
	var failure atomic.Value // first exhausted-retries failure, if any
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failure.Load() != nil {
					return
				}
				// Emit before taking the clock: sink time is telemetry, not
				// task work, and must not land in the recorded cost.
				if c.Sink != nil {
					c.emit(Event{Kind: EventTaskStart, Stage: name, Phase: phase, Task: i, Time: time.Now()})
				}
				t0 := time.Now()
				attempt, backoff, err := c.runWithRetry(phase, name, i, fn, &retries, acc)
				if err != nil {
					failure.CompareAndSwap(nil, err)
					return
				}
				// The recorded cost is the measured real time plus the
				// virtual delays chaos added: retry backoff and any
				// re-transfer backoff Fetch charged to this task.
				cost := time.Since(t0) + backoff + time.Duration(acc.extra[i].Load())
				if inj := c.Injector; inj != nil {
					if d := inj.TaskDelay(name, i); d > 0 {
						acc.straggler.Add(int64(d))
						cost = c.speculate(phase, name, i, cost, d, acc, fn)
					}
				}
				s.Costs[i] = cost
				if c.Sink != nil {
					c.emit(Event{Kind: EventTaskEnd, Stage: name, Phase: phase, Task: i,
						Attempt: attempt, Time: time.Now(), Duration: s.Costs[i]})
				}
			}
		}()
	}
	wg.Wait()
	if f := failure.Load(); f != nil {
		// Exhausted retries mean a real bug; surface it loudly on the
		// caller's goroutine.
		panic(f)
	}
	s.Wall = time.Since(start)
	s.Retries = retries.Load()
	s.Faults = acc.stats()
	if acc.workers != nil {
		s.TaskWorkers = make([]int32, n)
		for i := range s.TaskWorkers {
			s.TaskWorkers[i] = acc.workers[i].Load() - 1
		}
	}
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	s.AllocDelta = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	s.MallocDelta = int64(mem1.Mallocs - mem0.Mallocs)
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageEnd, Stage: name, Phase: phase, Task: -1,
			Time: time.Now(), Duration: s.Wall})
	}
	c.append(s)
	return s
}

// runWithRetry executes task i, re-running it after a panic up to
// MaxTaskRetries times, the way a MapReduce scheduler re-executes failed
// tasks. Tasks must therefore be idempotent (every stage in this codebase
// writes only to its own task's slot). It returns the attempt that
// succeeded plus the summed virtual backoff the retries waited, or a
// non-nil error only when retries are exhausted; RunStage turns that into
// a panic on the caller's goroutine. Each failed attempt that will be
// re-executed increments retryCount, accrues a deterministic exponential
// backoff (virtual time), and emits an EventTaskRetry carrying it.
func (c *Cluster) runWithRetry(phase, stage string, i int, fn func(int, int), retryCount *atomic.Int64, acc *faultAccum) (int, time.Duration, error) {
	retries := c.MaxTaskRetries
	if retries <= 0 {
		retries = 2
	}
	var err error
	var backoff time.Duration
	for attempt := 0; attempt <= retries; attempt++ {
		if err = c.attempt(phase, stage, i, attempt, fn, acc); err == nil {
			return attempt, backoff, nil
		}
		if attempt < retries {
			retryCount.Add(1)
			wait := c.backoffFor(stage, i, attempt)
			backoff += wait
			acc.backoff.Add(int64(wait))
			if c.Sink != nil {
				c.emit(Event{Kind: EventTaskRetry, Stage: stage, Phase: phase, Task: i,
					Attempt: attempt, Time: time.Now(), Duration: wait, Err: err})
			}
		}
	}
	return 0, 0, fmt.Errorf("engine: stage %q task %d failed after %d attempts: %w",
		stage, i, retries+1, err)
}

func (c *Cluster) attempt(phase, stage string, i, attempt int, fn func(int, int), acc *faultAccum) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panic: %v", r)
		}
	}()
	if inj := c.Injector; inj != nil && inj.FailTask(stage, i, attempt) {
		acc.injected.Add(1)
		err = fmt.Errorf("injected fault (attempt %d)", attempt)
		if c.Sink != nil {
			c.emit(Event{Kind: EventTaskFault, Stage: stage, Phase: phase, Task: i,
				Attempt: attempt, Time: time.Now(), Err: err})
		}
		return err
	}
	fn(i, attempt)
	return nil
}

// backoffFor computes the virtual wait before re-executing attempt
// `attempt` of a task: RetryBackoffBase << attempt, scaled by a
// deterministic jitter in [0.5, 1.5) hashed from (stage, task, attempt),
// capped at RetryBackoffMax. Being a pure function of its arguments, the
// same fault schedule always produces the same simulated makespan.
func (c *Cluster) backoffFor(stage string, task, attempt int) time.Duration {
	base := c.RetryBackoffBase
	if base == 0 {
		base = 5 * time.Millisecond
	}
	if base < 0 {
		return 0
	}
	max := c.RetryBackoffMax
	if max <= 0 {
		max = time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	d = time.Duration(float64(d) * (0.5 + hashFrac(stage, task, attempt)))
	if d > max {
		d = max
	}
	return d
}

// hashFrac maps (stage, a, b) to a deterministic fraction in [0, 1) via
// FNV-1a, the jitter source for retry backoff.
func hashFrac(stage string, a, b int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(stage); i++ {
		h = (h ^ uint64(stage[i])) * prime64
	}
	for _, v := range [2]uint64{uint64(a), uint64(b)} {
		for i := 0; i < 8; i++ {
			h = (h ^ (v >> (8 * i) & 0xff)) * prime64
		}
	}
	return float64(h>>11) / float64(1<<53)
}

// speculate models Spark's speculative execution for an injected straggler:
// the scheduler notices the task once it has run SpeculationFactor x its
// measured cost, launches a copy (really re-executing fn, which checks
// idempotence for free), and the first finisher in virtual time wins. The
// returned duration is the task's final virtual cost. The speculative copy
// runs on a "healthy node": the injector is not consulted for it, and a
// panicking copy simply loses to the original.
func (c *Cluster) speculate(phase, stage string, task int, measured, delay time.Duration, acc *faultAccum, fn func(int, int)) time.Duration {
	inflated := measured + delay
	factor := c.SpeculationFactor
	if factor == 0 {
		factor = 2
	}
	if factor < 0 {
		return inflated
	}
	threshold := time.Duration(float64(measured) * factor)
	if inflated < threshold {
		return inflated
	}
	acc.specLaunch.Add(1)
	if c.Sink != nil {
		c.emit(Event{Kind: EventSpecLaunch, Stage: stage, Phase: phase, Task: task,
			Time: time.Now(), Duration: inflated})
	}
	t0 := time.Now()
	// The speculative copy runs on a healthy node: its attempt index sits
	// beyond the retry budget, which bounded deterministic injectors never
	// fault (see RunStageAttempts).
	ok := runRecovered(fn, task, c.maxRetries()+1)
	copyCost := time.Since(t0)
	specFinish := threshold + copyCost
	if !ok || specFinish >= inflated {
		return inflated
	}
	acc.specWin.Add(1)
	if c.Sink != nil {
		c.emit(Event{Kind: EventSpecWin, Stage: stage, Phase: phase, Task: task,
			Time: time.Now(), Duration: specFinish})
	}
	return specFinish
}

// runRecovered executes fn(i, attempt), absorbing panics.
func runRecovered(fn func(int, int), i, attempt int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	fn(i, attempt)
	return true
}

// maxRetries resolves the effective retry budget.
func (c *Cluster) maxRetries() int {
	if c.MaxTaskRetries > 0 {
		return c.MaxTaskRetries
	}
	return 2
}

// Serial measures a single driver-side action as a one-task stage.
func (c *Cluster) Serial(phase, name string, fn func()) *StageStats {
	s := &StageStats{Name: name, Phase: phase}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageStart, Stage: name, Phase: phase, Task: -1, Time: t0})
	}
	fn()
	d := time.Since(t0)
	s.Costs = []time.Duration{d}
	s.Wall = d
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	s.AllocDelta = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	s.MallocDelta = int64(mem1.Mallocs - mem0.Mallocs)
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageEnd, Stage: name, Phase: phase, Task: -1,
			Time: time.Now(), Duration: d})
	}
	c.append(s)
	return s
}

// Broadcast accounts a payload broadcast to every virtual worker and
// measures the driver-side cost of producing it. The per-worker load cost
// is measured where the payload is actually consumed (inside worker tasks).
func (c *Cluster) Broadcast(phase, name string, produce func() []byte) []byte {
	var payload []byte
	s := &StageStats{Name: name, Phase: phase}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	payload = produce()
	d := time.Since(t0)
	s.Costs = []time.Duration{d}
	s.Wall = d
	s.Bytes = int64(len(payload))
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	s.AllocDelta = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	s.MallocDelta = int64(mem1.Mallocs - mem0.Mallocs)
	if c.Sink != nil {
		c.emit(Event{Kind: EventBroadcast, Stage: name, Phase: phase, Task: -1,
			Time: time.Now(), Duration: d, Bytes: s.Bytes})
	}
	c.append(s)
	return payload
}

func (c *Cluster) append(s *StageStats) {
	c.mu.Lock()
	c.report.Stages = append(c.report.Stages, s)
	c.mu.Unlock()
}

// SpeedUp computes the ratio of simulated elapsed time at baseWorkers to
// that at each of the worker counts, for a fixed set of recorded stages.
// The paper's Figure 15 uses baseWorkers = 5.
func SpeedUp(r *Report, baseWorkers int, workerCounts []int) []float64 {
	base := remake(r, baseWorkers).SimulatedElapsed()
	out := make([]float64, len(workerCounts))
	for i, w := range workerCounts {
		e := remake(r, w).SimulatedElapsed()
		if e <= 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(base) / float64(e)
	}
	return out
}

func remake(r *Report, w int) *Report {
	return &Report{Workers: w, Stages: r.Stages}
}

// SortedCosts returns a copy of the stage's task costs in ascending order
// (useful for percentile reporting in the harness).
func (s *StageStats) SortedCosts() []time.Duration {
	out := make([]time.Duration, len(s.Costs))
	copy(out, s.Costs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
