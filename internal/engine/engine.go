// Package engine provides the parallel execution substrate that stands in
// for Apache Spark in the original RP-DBSCAN system. A Cluster executes
// stages of independent tasks on a bounded goroutine pool, measures every
// task's cost, and computes the makespan those costs would have on a
// virtual cluster of W workers using the same greedy in-order scheduling a
// MapReduce scheduler applies.
//
// The virtual-cluster makespan is what the experiment harness reports as
// "elapsed time": it reproduces the quantities the paper measures (per-split
// elapsed time, slowest/fastest load imbalance, speed-up versus cores)
// deterministically, independent of how many physical cores this machine
// has. Real wall-clock time is also recorded per stage.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StageStats records the measured execution of one stage: the per-task
// costs plus the real wall-clock duration of the stage.
type StageStats struct {
	// Name identifies the stage (e.g. "core-marking").
	Name string
	// Phase groups stages for breakdown reporting (e.g. "I-1", "II").
	Phase string
	// Costs holds the measured duration of each task.
	Costs []time.Duration
	// Wall is the real elapsed time of the whole stage.
	Wall time.Duration
	// Bytes optionally accounts payload size (broadcasts, shuffles).
	Bytes int64
	// Retries counts failed task attempts that were re-executed (panics
	// and injected faults).
	Retries int64
	// AllocDelta is the growth of cumulative heap allocation
	// (runtime.MemStats.TotalAlloc) across the stage, in bytes. It is a
	// process-wide measure: concurrent allocation outside the stage is
	// attributed to it too.
	AllocDelta int64
	// MallocDelta is the growth of the cumulative heap allocation count
	// (runtime.MemStats.Mallocs) across the stage — the allocs/op
	// numerator for stage-level benchmark reporting. Process-wide, like
	// AllocDelta.
	MallocDelta int64
}

// Total returns the sum of all task costs.
func (s *StageStats) Total() time.Duration {
	var t time.Duration
	for _, c := range s.Costs {
		t += c
	}
	return t
}

// Max returns the largest task cost, or 0 for an empty stage.
func (s *StageStats) Max() time.Duration {
	var m time.Duration
	for _, c := range s.Costs {
		if c > m {
			m = c
		}
	}
	return m
}

// Min returns the smallest task cost, or 0 for an empty stage.
func (s *StageStats) Min() time.Duration {
	if len(s.Costs) == 0 {
		return 0
	}
	m := s.Costs[0]
	for _, c := range s.Costs[1:] {
		if c < m {
			m = c
		}
	}
	return m
}

// Imbalance returns the slowest/fastest task-cost ratio, the load-imbalance
// metric of Section 7.3.1. A stage with fewer than two tasks, or a zero
// fastest task, reports 1.
func (s *StageStats) Imbalance() float64 {
	if len(s.Costs) < 2 {
		return 1
	}
	min, max := s.Min(), s.Max()
	if min <= 0 {
		return 1
	}
	return float64(max) / float64(min)
}

// Makespan returns the completion time of the stage on a virtual cluster of
// w workers under greedy in-order scheduling: each task is assigned, in
// submission order, to the worker that frees up first.
func (s *StageStats) Makespan(w int) time.Duration {
	if w < 1 {
		w = 1
	}
	if len(s.Costs) == 0 {
		return 0
	}
	free := make([]time.Duration, w) // min-heap by free time
	for _, c := range s.Costs {
		// Pop the earliest-free worker (index 0 after sift).
		siftDown(free)
		free[0] += c
	}
	var m time.Duration
	for _, f := range free {
		if f > m {
			m = f
		}
	}
	return m
}

// siftDown restores the min at free[0] for the tiny worker heap. Worker
// counts are small (tens), so an O(w) scan-and-swap is simpler and fast.
func siftDown(free []time.Duration) {
	mi := 0
	for i := 1; i < len(free); i++ {
		if free[i] < free[mi] {
			mi = i
		}
	}
	free[0], free[mi] = free[mi], free[0]
}

// Report collects the ordered stages of one algorithm run.
type Report struct {
	// Workers is the virtual worker count used for simulated totals.
	Workers int
	Stages  []*StageStats
}

// SimulatedElapsed returns the total simulated elapsed time: the sum over
// stages of their makespan on the report's virtual cluster. Stages run one
// after another, as MapReduce stages are barrier-separated.
func (r *Report) SimulatedElapsed() time.Duration {
	var t time.Duration
	for _, s := range r.Stages {
		t += s.Makespan(r.Workers)
	}
	return t
}

// WallElapsed returns the summed real wall time of all stages.
func (r *Report) WallElapsed() time.Duration {
	var t time.Duration
	for _, s := range r.Stages {
		t += s.Wall
	}
	return t
}

// PhaseBreakdown returns the simulated elapsed time grouped by phase label,
// plus the phase order of first appearance.
func (r *Report) PhaseBreakdown() (map[string]time.Duration, []string) {
	m := make(map[string]time.Duration)
	var order []string
	for _, s := range r.Stages {
		if _, ok := m[s.Phase]; !ok {
			order = append(order, s.Phase)
		}
		m[s.Phase] += s.Makespan(r.Workers)
	}
	return m, order
}

// Stage returns the first stage with the given name, or nil.
func (r *Report) Stage(name string) *StageStats {
	for _, s := range r.Stages {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// MergeOf combines the stage lists of several reports in order (used when
// an algorithm run is assembled from sub-runs).
func MergeOf(workers int, reports ...*Report) *Report {
	out := &Report{Workers: workers}
	for _, r := range reports {
		out.Stages = append(out.Stages, r.Stages...)
	}
	return out
}

// String formats the report as a per-stage table. Broadcast/shuffle
// payload sizes and retry counts are appended only for stages that have
// them.
func (r *Report) String() string {
	out := fmt.Sprintf("report (workers=%d, simulated=%v):\n", r.Workers, r.SimulatedElapsed())
	for _, s := range r.Stages {
		out += fmt.Sprintf("  [%-5s] %-28s tasks=%-4d total=%-12v makespan=%-12v imbalance=%.2f",
			s.Phase, s.Name, len(s.Costs), s.Total(), s.Makespan(r.Workers), s.Imbalance())
		if s.Bytes > 0 {
			out += fmt.Sprintf(" bytes=%d", s.Bytes)
		}
		if s.Retries > 0 {
			out += fmt.Sprintf(" retries=%d", s.Retries)
		}
		out += "\n"
	}
	return out
}

// Cluster executes stages and accumulates a Report. It is safe for a single
// run at a time (stages execute sequentially, tasks within a stage in
// parallel).
type Cluster struct {
	// Workers is the virtual worker count (the "cores" of the paper's
	// scalability experiments).
	Workers int
	// Executors is the number of worker machines: broadcast payloads are
	// loaded once per executor, not once per task, as on Spark. Zero
	// defaults to ceil(Workers/4), matching the paper's 4-core nodes.
	Executors int
	// Parallelism bounds real concurrent goroutines; defaults to
	// GOMAXPROCS.
	Parallelism int
	// MaxTaskRetries is how many times a panicking task is re-executed
	// before the panic propagates, mirroring Spark's task re-execution.
	// Zero defaults to 2.
	MaxTaskRetries int
	// FaultInjector, when set, is consulted before every task attempt;
	// returning true makes the attempt fail. It exists for fault-
	// tolerance testing.
	FaultInjector func(stage string, task, attempt int) bool
	// Sink, when set, receives per-task span events (start, end, retry,
	// fault, broadcast). Nil disables emission at the cost of one nil
	// check per event site.
	Sink EventSink

	mu     sync.Mutex
	report Report
}

// New returns a cluster simulating w virtual workers.
func New(w int) *Cluster {
	return &Cluster{Workers: w, Parallelism: runtime.GOMAXPROCS(0)}
}

// ExecutorCount resolves the effective executor count.
func (c *Cluster) ExecutorCount() int {
	if c.Executors > 0 {
		return c.Executors
	}
	e := (c.Workers + 3) / 4
	if e < 1 {
		e = 1
	}
	return e
}

// Report returns the accumulated report. The stage list is copied so the
// returned Report is not aliased by stages appended later; the StageStats
// themselves are shared (they are immutable once appended).
func (c *Cluster) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{
		Workers: c.Workers,
		Stages:  append([]*StageStats(nil), c.report.Stages...),
	}
	return &rep
}

// Reset clears the accumulated report.
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report = Report{}
}

// RunStage executes n independent tasks, measuring each, and appends the
// stage to the report. fn is called with task indices 0..n-1, possibly
// concurrently from multiple goroutines.
func (c *Cluster) RunStage(phase, name string, n int, fn func(task int)) *StageStats {
	s := &StageStats{Name: name, Phase: phase, Costs: make([]time.Duration, n)}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	start := time.Now()
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageStart, Stage: name, Phase: phase, Task: -1, Time: start})
	}
	par := c.Parallelism
	if par < 1 {
		par = 1
	}
	if par > n {
		par = n
	}
	var next, retries atomic.Int64
	var wg sync.WaitGroup
	var failure atomic.Value // first exhausted-retries failure, if any
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failure.Load() != nil {
					return
				}
				t0 := time.Now()
				if c.Sink != nil {
					c.emit(Event{Kind: EventTaskStart, Stage: name, Phase: phase, Task: i, Time: t0})
				}
				attempt, err := c.runWithRetry(phase, name, i, fn, &retries)
				if err != nil {
					failure.CompareAndSwap(nil, err)
					return
				}
				s.Costs[i] = time.Since(t0)
				if c.Sink != nil {
					c.emit(Event{Kind: EventTaskEnd, Stage: name, Phase: phase, Task: i,
						Attempt: attempt, Time: time.Now(), Duration: s.Costs[i]})
				}
			}
		}()
	}
	wg.Wait()
	if f := failure.Load(); f != nil {
		// Exhausted retries mean a real bug; surface it loudly on the
		// caller's goroutine.
		panic(f)
	}
	s.Wall = time.Since(start)
	s.Retries = retries.Load()
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	s.AllocDelta = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	s.MallocDelta = int64(mem1.Mallocs - mem0.Mallocs)
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageEnd, Stage: name, Phase: phase, Task: -1,
			Time: time.Now(), Duration: s.Wall})
	}
	c.append(s)
	return s
}

// runWithRetry executes task i, re-running it after a panic up to
// MaxTaskRetries times, the way a MapReduce scheduler re-executes failed
// tasks. Tasks must therefore be idempotent (every stage in this codebase
// writes only to its own task's slot). It returns the attempt that
// succeeded, or a non-nil error only when retries are exhausted; RunStage
// turns that into a panic on the caller's goroutine. Each failed attempt
// that will be re-executed increments retryCount and emits an
// EventTaskRetry.
func (c *Cluster) runWithRetry(phase, stage string, i int, fn func(int), retryCount *atomic.Int64) (int, error) {
	retries := c.MaxTaskRetries
	if retries <= 0 {
		retries = 2
	}
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if err = c.attempt(phase, stage, i, attempt, fn); err == nil {
			return attempt, nil
		}
		if attempt < retries {
			retryCount.Add(1)
			if c.Sink != nil {
				c.emit(Event{Kind: EventTaskRetry, Stage: stage, Phase: phase, Task: i,
					Attempt: attempt, Time: time.Now(), Err: err})
			}
		}
	}
	return 0, fmt.Errorf("engine: stage %q task %d failed after %d attempts: %w",
		stage, i, retries+1, err)
}

func (c *Cluster) attempt(phase, stage string, i, attempt int, fn func(int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panic: %v", r)
		}
	}()
	if c.FaultInjector != nil && c.FaultInjector(stage, i, attempt) {
		err = fmt.Errorf("injected fault (attempt %d)", attempt)
		if c.Sink != nil {
			c.emit(Event{Kind: EventTaskFault, Stage: stage, Phase: phase, Task: i,
				Attempt: attempt, Time: time.Now(), Err: err})
		}
		return err
	}
	fn(i)
	return nil
}

// Serial measures a single driver-side action as a one-task stage.
func (c *Cluster) Serial(phase, name string, fn func()) *StageStats {
	s := &StageStats{Name: name, Phase: phase}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageStart, Stage: name, Phase: phase, Task: -1, Time: t0})
	}
	fn()
	d := time.Since(t0)
	s.Costs = []time.Duration{d}
	s.Wall = d
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	s.AllocDelta = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	s.MallocDelta = int64(mem1.Mallocs - mem0.Mallocs)
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageEnd, Stage: name, Phase: phase, Task: -1,
			Time: time.Now(), Duration: d})
	}
	c.append(s)
	return s
}

// Broadcast accounts a payload broadcast to every virtual worker and
// measures the driver-side cost of producing it. The per-worker load cost
// is measured where the payload is actually consumed (inside worker tasks).
func (c *Cluster) Broadcast(phase, name string, produce func() []byte) []byte {
	var payload []byte
	s := &StageStats{Name: name, Phase: phase}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	payload = produce()
	d := time.Since(t0)
	s.Costs = []time.Duration{d}
	s.Wall = d
	s.Bytes = int64(len(payload))
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	s.AllocDelta = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	s.MallocDelta = int64(mem1.Mallocs - mem0.Mallocs)
	if c.Sink != nil {
		c.emit(Event{Kind: EventBroadcast, Stage: name, Phase: phase, Task: -1,
			Time: time.Now(), Duration: d, Bytes: s.Bytes})
	}
	c.append(s)
	return payload
}

func (c *Cluster) append(s *StageStats) {
	c.mu.Lock()
	c.report.Stages = append(c.report.Stages, s)
	c.mu.Unlock()
}

// SpeedUp computes the ratio of simulated elapsed time at baseWorkers to
// that at each of the worker counts, for a fixed set of recorded stages.
// The paper's Figure 15 uses baseWorkers = 5.
func SpeedUp(r *Report, baseWorkers int, workerCounts []int) []float64 {
	base := remake(r, baseWorkers).SimulatedElapsed()
	out := make([]float64, len(workerCounts))
	for i, w := range workerCounts {
		e := remake(r, w).SimulatedElapsed()
		if e <= 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(base) / float64(e)
	}
	return out
}

func remake(r *Report, w int) *Report {
	return &Report{Workers: w, Stages: r.Stages}
}

// SortedCosts returns a copy of the stage's task costs in ascending order
// (useful for percentile reporting in the harness).
func (s *StageStats) SortedCosts() []time.Duration {
	out := make([]time.Duration, len(s.Costs))
	copy(out, s.Costs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
