package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// StreamStage executes a stage whose tasks are discovered one at a time by
// draining a sequential source — the shape of an out-of-core ingestion
// stage, where the task count (number of chunks) is unknown until the
// stream ends.
//
// pull is invoked serially (under a stage-internal lock, so a sequential
// reader needs no synchronisation of its own) with the next task index; it
// returns the task body, or nil at the clean end of the stream, or an
// error that aborts the stage. Bodies run concurrently on the cluster's
// pool with full RunStage parity: injected failures are retried with
// virtual backoff, stragglers are inflated and speculated, and each task's
// recorded cost includes its share of the serial pull (the read is part of
// the ingestion work the makespan must account).
//
// Bodies must be idempotent: retries and speculative copies re-run them,
// exactly as in RunStage. Unlike RunStage, a task that exhausts its retry
// budget surfaces as a returned error rather than a panic — out-of-core
// ingestion has legitimate runtime failures (disk full, unreadable spill)
// that callers must be able to handle.
func (c *Cluster) StreamStage(phase, name string, pull func(task int) (func(), error)) (*StageStats, error) {
	s := &StageStats{Name: name, Phase: phase}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	start := time.Now()
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageStart, Stage: name, Phase: phase, Task: -1, Time: start})
	}
	par := c.Parallelism
	if par < 1 {
		par = 1
	}
	acc := &faultAccum{stage: name}
	c.cur.Store(acc)
	defer c.cur.Store(nil)
	var (
		pullMu  sync.Mutex // serialises pull and task numbering
		next    int
		done    bool
		pullErr error

		costsMu sync.Mutex
		costs   []time.Duration

		retries atomic.Int64
		failure atomic.Value // first exhausted-retries failure, if any
		wg      sync.WaitGroup
	)
	record := func(i int, d time.Duration) {
		costsMu.Lock()
		for len(costs) <= i {
			costs = append(costs, 0)
		}
		costs[i] = d
		costsMu.Unlock()
	}
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for failure.Load() == nil {
				pullMu.Lock()
				if done || pullErr != nil {
					pullMu.Unlock()
					return
				}
				i := next
				t0 := time.Now()
				fn, err := pull(i)
				pullCost := time.Since(t0)
				if err != nil {
					pullErr = err
					pullMu.Unlock()
					return
				}
				if fn == nil {
					done = true
					pullMu.Unlock()
					return
				}
				next++
				pullMu.Unlock()
				if c.Sink != nil {
					c.emit(Event{Kind: EventTaskStart, Stage: name, Phase: phase, Task: i, Time: t0})
				}
				body := func(int, int) { fn() }
				t1 := time.Now()
				attempt, backoff, err := c.runWithRetry(phase, name, i, body, &retries, acc)
				if err != nil {
					failure.CompareAndSwap(nil, err)
					return
				}
				cost := pullCost + time.Since(t1) + backoff
				if inj := c.Injector; inj != nil {
					if d := inj.TaskDelay(name, i); d > 0 {
						acc.straggler.Add(int64(d))
						cost = c.speculate(phase, name, i, cost, d, acc, body)
					}
				}
				record(i, cost)
				if c.Sink != nil {
					c.emit(Event{Kind: EventTaskEnd, Stage: name, Phase: phase, Task: i,
						Attempt: attempt, Time: time.Now(), Duration: cost})
				}
			}
		}()
	}
	wg.Wait()
	s.Costs = costs
	s.Wall = time.Since(start)
	s.Retries = retries.Load()
	s.Faults = acc.stats()
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	s.AllocDelta = int64(mem1.TotalAlloc - mem0.TotalAlloc)
	s.MallocDelta = int64(mem1.Mallocs - mem0.Mallocs)
	if c.Sink != nil {
		c.emit(Event{Kind: EventStageEnd, Stage: name, Phase: phase, Task: -1,
			Time: time.Now(), Duration: s.Wall})
	}
	// The stage is recorded even on failure: a chaos post-mortem needs the
	// partial cost and fault ledger of an aborted ingestion.
	c.append(s)
	if f := failure.Load(); f != nil {
		return s, f.(error)
	}
	if pullErr != nil {
		return s, pullErr
	}
	return s, nil
}
