package engine

import "time"

// EventKind discriminates the task-level events a Cluster emits.
type EventKind int

const (
	// EventStageStart fires once when a stage begins executing.
	EventStageStart EventKind = iota
	// EventStageEnd fires once when a stage completes; Duration carries
	// the stage wall time and Bytes any accounted payload.
	EventStageEnd
	// EventTaskStart fires before a task's first attempt.
	EventTaskStart
	// EventTaskEnd fires after a task succeeds; Duration carries the
	// measured task cost and Attempt the attempt that succeeded.
	EventTaskEnd
	// EventTaskRetry fires when an attempt failed and the task will be
	// re-executed; Err carries the failure.
	EventTaskRetry
	// EventTaskFault fires when the FaultInjector failed an attempt
	// (before the corresponding EventTaskRetry, if any attempts remain).
	EventTaskFault
	// EventBroadcast fires when a payload is broadcast; Bytes carries its
	// size.
	EventBroadcast
	// EventChecksumReject fires when a corrupted payload chunk is caught
	// by its checksum during Fetch; Chunk carries the chunk index and
	// Bytes the chunk size. The chunk is re-transferred.
	EventChecksumReject
	// EventSpecLaunch fires when a speculative copy of a straggler task
	// is launched; Duration carries the straggler's inflated virtual cost.
	EventSpecLaunch
	// EventSpecWin fires when the speculative copy finishes first in
	// virtual time; Duration carries the winning cost.
	EventSpecWin
	// EventWorkerKill fires when process-level chaos kills the worker
	// process serving a task attempt (multi-process transport only);
	// Worker carries the worker index.
	EventWorkerKill
	// EventWorkerSpawn fires when the transport brings a (replacement)
	// worker process up; Worker carries the worker index and Task is -1.
	EventWorkerSpawn
)

// String names the event kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventStageStart:
		return "stage-start"
	case EventStageEnd:
		return "stage-end"
	case EventTaskStart:
		return "task-start"
	case EventTaskEnd:
		return "task-end"
	case EventTaskRetry:
		return "task-retry"
	case EventTaskFault:
		return "task-fault"
	case EventBroadcast:
		return "broadcast"
	case EventChecksumReject:
		return "checksum-reject"
	case EventSpecLaunch:
		return "speculative-launch"
	case EventSpecWin:
		return "speculative-win"
	case EventWorkerKill:
		return "worker-kill"
	case EventWorkerSpawn:
		return "worker-spawn"
	}
	return "unknown"
}

// Event is one observation of the virtual cluster's execution. Fields not
// meaningful for a kind are zero (e.g. Task is -1 for stage-level events).
type Event struct {
	Kind  EventKind
	Stage string
	Phase string
	// Task is the task index within the stage, or -1 for stage-level
	// events.
	Task int
	// Attempt is the zero-based attempt number (task events only).
	Attempt int
	// Chunk is the payload chunk index (checksum-reject events only).
	Chunk int
	// Worker is the remote worker-process index (worker-kill and
	// worker-spawn events only; zero otherwise).
	Worker int
	// Time is when the event occurred.
	Time time.Time
	// Duration is the measured cost (task-end) or wall time (stage-end).
	Duration time.Duration
	// Bytes is the payload size for broadcast and stage-end events.
	Bytes int64
	// Err is the failure behind a retry or injected fault.
	Err error
}

// EventSink receives execution events from a Cluster. Implementations must
// be safe for concurrent use: task events are emitted from worker
// goroutines. A nil sink on the Cluster disables emission entirely; the
// hot path then costs a single pointer comparison per event site (see
// BenchmarkRunStageNilSink).
type EventSink interface {
	Emit(Event)
}

// emit sends e to the sink if one is installed. Callers on hot paths
// should guard with `if c.Sink != nil` themselves to avoid building the
// Event at all.
func (c *Cluster) emit(e Event) {
	if c.Sink != nil {
		c.Sink.Emit(e)
	}
}
