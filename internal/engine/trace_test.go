package engine

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	r := &Report{Workers: 4, Stages: []*StageStats{
		{Name: "a", Phase: "I", Costs: []time.Duration{3, 1, 2}, Wall: 7},
		{Name: "b", Phase: "II", Costs: []time.Duration{10}, Wall: 10, Bytes: 99},
	}}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 4 || len(got.Stages) != 2 {
		t.Fatalf("shape changed: %+v", got)
	}
	if got.SimulatedElapsed() != r.SimulatedElapsed() {
		t.Fatalf("elapsed changed: %v vs %v", got.SimulatedElapsed(), r.SimulatedElapsed())
	}
	b := got.Stage("b")
	if b == nil || b.Bytes != 99 || b.Costs[0] != 10 {
		t.Fatalf("stage b corrupted: %+v", b)
	}
	if a := got.Stage("a"); a.Imbalance() != 3 {
		t.Fatalf("imbalance changed: %v", a.Imbalance())
	}
}

func TestTraceJSONFields(t *testing.T) {
	r := &Report{Workers: 2, Stages: []*StageStats{
		{Name: "x", Phase: "II", Costs: []time.Duration{5, 5}},
	}}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"workers": 2`, `"task_costs_ns"`, `"makespan_ns"`, `"imbalance"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
