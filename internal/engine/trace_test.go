package engine

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	r := &Report{Workers: 4, Stages: []*StageStats{
		{Name: "a", Phase: "I", Costs: []time.Duration{3, 1, 2}, Wall: 7},
		{Name: "b", Phase: "II", Costs: []time.Duration{10}, Wall: 10, Bytes: 99},
	}}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 4 || len(got.Stages) != 2 {
		t.Fatalf("shape changed: %+v", got)
	}
	if got.SimulatedElapsed() != r.SimulatedElapsed() {
		t.Fatalf("elapsed changed: %v vs %v", got.SimulatedElapsed(), r.SimulatedElapsed())
	}
	b := got.Stage("b")
	if b == nil || b.Bytes != 99 || b.Costs[0] != 10 {
		t.Fatalf("stage b corrupted: %+v", b)
	}
	if a := got.Stage("a"); a.Imbalance() != 3 {
		t.Fatalf("imbalance changed: %v", a.Imbalance())
	}
}

func TestTraceJSONFields(t *testing.T) {
	r := &Report{Workers: 2, Stages: []*StageStats{
		{Name: "x", Phase: "II", Costs: []time.Duration{5, 5}},
	}}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"workers": 2`, `"task_costs_ns"`, `"makespan_ns"`, `"imbalance"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// roundTrip writes r and reads it back, failing the test on either error.
func roundTrip(t *testing.T, r *Report) *Report {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestTraceRoundTripEmptyReport(t *testing.T) {
	got := roundTrip(t, &Report{Workers: 3})
	if got.Workers != 3 || len(got.Stages) != 0 {
		t.Fatalf("empty report changed: %+v", got)
	}
	if got.SimulatedElapsed() != 0 || got.WallElapsed() != 0 {
		t.Fatal("empty report has nonzero elapsed")
	}
}

func TestTraceRoundTripEmptyStage(t *testing.T) {
	got := roundTrip(t, &Report{Workers: 2, Stages: []*StageStats{
		{Name: "empty", Phase: "I"},
	}})
	s := got.Stage("empty")
	if s == nil || len(s.Costs) != 0 {
		t.Fatalf("empty stage corrupted: %+v", s)
	}
	if s.Makespan(2) != 0 || s.Imbalance() != 1 {
		t.Fatalf("empty stage aggregates wrong: makespan=%v imbalance=%v",
			s.Makespan(2), s.Imbalance())
	}
}

func TestTraceRoundTripZeroAndNegativeWorkers(t *testing.T) {
	for _, w := range []int{0, -5} {
		r := &Report{Workers: w, Stages: []*StageStats{
			{Name: "s", Phase: "I", Costs: []time.Duration{4, 2}},
		}}
		got := roundTrip(t, r)
		if got.Workers != w {
			t.Fatalf("workers %d not preserved: got %d", w, got.Workers)
		}
		// Makespan clamps w<1 to 1 on both sides of the round trip.
		if got.SimulatedElapsed() != r.SimulatedElapsed() {
			t.Fatalf("workers=%d: elapsed %v != %v", w, got.SimulatedElapsed(), r.SimulatedElapsed())
		}
	}
}

func TestTraceRoundTripPreservesBytesRetriesAlloc(t *testing.T) {
	r := &Report{Workers: 4, Stages: []*StageStats{
		{Name: "bcast", Phase: "I-2", Costs: []time.Duration{5}, Bytes: 4096},
		{Name: "work", Phase: "II", Costs: []time.Duration{1, 2}, Retries: 7, AllocDelta: 1 << 20},
		{Name: "plain", Phase: "III-1", Costs: []time.Duration{3}},
	}}
	got := roundTrip(t, r)
	if s := got.Stage("bcast"); s == nil || s.Bytes != 4096 {
		t.Fatalf("bytes lost: %+v", got.Stage("bcast"))
	}
	if s := got.Stage("work"); s == nil || s.Retries != 7 || s.AllocDelta != 1<<20 {
		t.Fatalf("retries/alloc lost: %+v", got.Stage("work"))
	}
	if s := got.Stage("plain"); s.Bytes != 0 || s.Retries != 0 || s.AllocDelta != 0 {
		t.Fatalf("zero fields gained values: %+v", s)
	}
}
