package engine

import (
	"sync"
	"testing"
	"time"
)

// recordSink collects emitted events for assertions.
type recordSink struct {
	mu     sync.Mutex
	events []Event
}

func (r *recordSink) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordSink) count(k EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestRunStageEmitsTaskSpans(t *testing.T) {
	sink := &recordSink{}
	c := New(4)
	c.Sink = sink
	c.RunStage("II", "work", 9, func(i int) { time.Sleep(time.Microsecond) })
	if got := sink.count(EventTaskStart); got != 9 {
		t.Fatalf("task-start events = %d, want 9", got)
	}
	if got := sink.count(EventTaskEnd); got != 9 {
		t.Fatalf("task-end events = %d, want 9", got)
	}
	if sink.count(EventStageStart) != 1 || sink.count(EventStageEnd) != 1 {
		t.Fatal("stage start/end not emitted exactly once")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, e := range sink.events {
		if e.Stage != "work" || e.Phase != "II" {
			t.Fatalf("event mislabeled: %+v", e)
		}
		if e.Kind == EventTaskEnd && e.Duration <= 0 {
			t.Fatalf("task-end without duration: %+v", e)
		}
	}
}

func TestFaultInjectorIncrementsRetryCounter(t *testing.T) {
	sink := &recordSink{}
	c := New(2)
	c.Sink = sink
	// Every task fails its first attempt via the injector.
	c.Injector = InjectorFunc(func(stage string, task, attempt int) bool { return attempt == 0 })
	s := c.RunStage("II", "flaky", 6, func(i int) {})
	if s.Retries != 6 {
		t.Fatalf("StageStats.Retries = %d, want 6", s.Retries)
	}
	if got := sink.count(EventTaskRetry); got != 6 {
		t.Fatalf("retry events = %d, want 6", got)
	}
	if got := sink.count(EventTaskFault); got != 6 {
		t.Fatalf("fault events = %d, want 6", got)
	}
}

func TestPanicRetryCountsToo(t *testing.T) {
	c := New(1)
	first := true
	s := c.RunStage("II", "panicky", 1, func(i int) {
		if first {
			first = false
			panic("transient")
		}
	})
	if s.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", s.Retries)
	}
}

func TestBroadcastEmitsBytes(t *testing.T) {
	sink := &recordSink{}
	c := New(2)
	c.Sink = sink
	c.Broadcast("I-2", "dict", func() []byte { return make([]byte, 77) })
	sink.mu.Lock()
	defer sink.mu.Unlock()
	found := false
	for _, e := range sink.events {
		if e.Kind == EventBroadcast {
			found = true
			if e.Bytes != 77 {
				t.Fatalf("broadcast bytes = %d, want 77", e.Bytes)
			}
		}
	}
	if !found {
		t.Fatal("no broadcast event emitted")
	}
}

func TestRunStageRecordsAllocDelta(t *testing.T) {
	c := New(2)
	var sink [][]byte
	var mu sync.Mutex
	s := c.RunStage("II", "alloc", 4, func(i int) {
		b := make([]byte, 1<<16)
		mu.Lock()
		sink = append(sink, b)
		mu.Unlock()
	})
	if s.AllocDelta < 4*(1<<16) {
		t.Fatalf("AllocDelta = %d, want >= %d", s.AllocDelta, 4*(1<<16))
	}
	_ = sink
}

func TestReportIsDefensiveCopy(t *testing.T) {
	c := New(2)
	c.Serial("I", "a", func() {})
	c.Serial("I", "b", func() {})
	c.Serial("I", "c", func() {})
	rep := c.Report()
	if len(rep.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(rep.Stages))
	}
	// With an aliased slice header, the cluster's next append lands in the
	// snapshot's spare capacity, and a caller-side append to the snapshot
	// then clobbers the cluster's own stage record. The defensive copy
	// must isolate the two.
	c.Serial("I", "d", func() {})
	rep.Stages = append(rep.Stages, &StageStats{Name: "bogus"})
	if c.Report().Stage("d") == nil {
		t.Fatal("caller append to snapshot corrupted the cluster's report")
	}
	if c.Report().Stage("bogus") != nil {
		t.Fatal("caller's bogus stage leaked into the cluster's report")
	}
	if len(rep.Stages) != 4 || rep.Stages[3].Name != "bogus" {
		t.Fatalf("snapshot append misbehaved: %+v", rep.Stages)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventStageStart, EventStageEnd, EventTaskStart,
		EventTaskEnd, EventTaskRetry, EventTaskFault, EventBroadcast,
		EventChecksumReject, EventSpecLaunch, EventSpecWin}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind not unknown")
	}
}

func TestReportStringShowsBytesAndRetries(t *testing.T) {
	r := &Report{Workers: 2, Stages: []*StageStats{
		{Name: "dict", Phase: "I-2", Costs: []time.Duration{time.Millisecond}, Bytes: 12345},
		{Name: "flaky", Phase: "II", Costs: []time.Duration{time.Millisecond}, Retries: 3},
		{Name: "plain", Phase: "II", Costs: []time.Duration{time.Millisecond}},
	}}
	s := r.String()
	if !contains(s, "bytes=12345") {
		t.Fatalf("bytes missing from report table:\n%s", s)
	}
	if !contains(s, "retries=3") {
		t.Fatalf("retries missing from report table:\n%s", s)
	}
}
