package engine

import (
	"encoding/json"
	"io"
	"time"
)

// traceDTO is the JSON shape of an exported report.
type traceDTO struct {
	Workers          int             `json:"workers"`
	SimulatedElapsed int64           `json:"simulated_elapsed_ns"`
	WallElapsed      int64           `json:"wall_elapsed_ns"`
	Stages           []traceStageDTO `json:"stages"`
}

type traceStageDTO struct {
	Name        string          `json:"name"`
	Phase       string          `json:"phase"`
	TaskCosts   []int64         `json:"task_costs_ns"`
	Wall        int64           `json:"wall_ns"`
	Makespan    int64           `json:"makespan_ns"`
	Imbalance   float64         `json:"imbalance"`
	Bytes       int64           `json:"bytes,omitempty"`
	Retries     int64           `json:"retries,omitempty"`
	AllocDelta  int64           `json:"alloc_delta_bytes,omitempty"`
	MallocDelta int64           `json:"malloc_delta,omitempty"`
	Faults      *traceFaultsDTO `json:"faults,omitempty"`
}

// traceFaultsDTO is the JSON shape of a stage's FaultStats; present only
// when fault injection touched the stage.
type traceFaultsDTO struct {
	InjectedFailures    int64 `json:"injected_failures,omitempty"`
	BackoffVirtualNs    int64 `json:"backoff_virtual_ns,omitempty"`
	StragglerDelayNs    int64 `json:"straggler_delay_ns,omitempty"`
	SpeculativeLaunches int64 `json:"speculative_launches,omitempty"`
	SpeculativeWins     int64 `json:"speculative_wins,omitempty"`
	ChecksumRejects     int64 `json:"checksum_rejects,omitempty"`
}

func faultsToDTO(f FaultStats) *traceFaultsDTO {
	if f.IsZero() {
		return nil
	}
	return &traceFaultsDTO{
		InjectedFailures:    f.InjectedFailures,
		BackoffVirtualNs:    int64(f.BackoffVirtual),
		StragglerDelayNs:    int64(f.StragglerDelay),
		SpeculativeLaunches: f.SpeculativeLaunches,
		SpeculativeWins:     f.SpeculativeWins,
		ChecksumRejects:     f.ChecksumRejects,
	}
}

func faultsFromDTO(d *traceFaultsDTO) FaultStats {
	if d == nil {
		return FaultStats{}
	}
	return FaultStats{
		InjectedFailures:    d.InjectedFailures,
		BackoffVirtual:      time.Duration(d.BackoffVirtualNs),
		StragglerDelay:      time.Duration(d.StragglerDelayNs),
		SpeculativeLaunches: d.SpeculativeLaunches,
		SpeculativeWins:     d.SpeculativeWins,
		ChecksumRejects:     d.ChecksumRejects,
	}
}

// WriteJSON exports the report — per-stage task costs, makespans, and
// imbalance — for external analysis and plotting.
func (r *Report) WriteJSON(w io.Writer) error {
	dto := traceDTO{
		Workers:          r.Workers,
		SimulatedElapsed: int64(r.SimulatedElapsed()),
		WallElapsed:      int64(r.WallElapsed()),
	}
	for _, s := range r.Stages {
		st := traceStageDTO{
			Name:        s.Name,
			Phase:       s.Phase,
			TaskCosts:   make([]int64, len(s.Costs)),
			Wall:        int64(s.Wall),
			Makespan:    int64(s.Makespan(r.Workers)),
			Imbalance:   s.Imbalance(),
			Bytes:       s.Bytes,
			Retries:     s.Retries,
			AllocDelta:  s.AllocDelta,
			MallocDelta: s.MallocDelta,
			Faults:      faultsToDTO(s.Faults),
		}
		for i, c := range s.Costs {
			st.TaskCosts[i] = int64(c)
		}
		dto.Stages = append(dto.Stages, st)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dto)
}

// ReadJSON parses a report exported by WriteJSON. Round-tripping preserves
// stage costs exactly.
func ReadJSON(r io.Reader) (*Report, error) {
	var dto traceDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, err
	}
	rep := &Report{Workers: dto.Workers}
	for _, st := range dto.Stages {
		stage := &StageStats{
			Name:        st.Name,
			Phase:       st.Phase,
			Wall:        time.Duration(st.Wall),
			Bytes:       st.Bytes,
			Retries:     st.Retries,
			AllocDelta:  st.AllocDelta,
			MallocDelta: st.MallocDelta,
			Faults:      faultsFromDTO(st.Faults),
			Costs:       make([]time.Duration, len(st.TaskCosts)),
		}
		for i, c := range st.TaskCosts {
			stage.Costs[i] = time.Duration(c)
		}
		rep.Stages = append(rep.Stages, stage)
	}
	return rep, nil
}
