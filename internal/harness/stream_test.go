package harness

import "testing"

// TestStreamExperiment runs the out-of-core sweep at quick scale and pins
// its two contracts: streamed output identical to the in-memory run, and
// peak Phase I heap within the N-independent ceiling.
func TestStreamExperiment(t *testing.T) {
	rows, err := Stream(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("x%d (n=%d): streamed labels diverge from in-memory run", r.Multiplier, r.N)
		}
		if !r.WithinCeiling {
			t.Fatalf("x%d (n=%d): peak Phase I heap %d exceeds ceiling %d",
				r.Multiplier, r.N, r.PeakPhase1HeapBytes, r.HeapCeilingBytes)
		}
		if r.N < 10*r.ChunkSize {
			t.Fatalf("x%d: n=%d is not >= 10x the chunk budget %d", r.Multiplier, r.N, r.ChunkSize)
		}
		if r.Chunks != (r.N+r.ChunkSize-1)/r.ChunkSize {
			t.Fatalf("x%d: %d chunks for n=%d chunk=%d", r.Multiplier, r.Chunks, r.N, r.ChunkSize)
		}
		if r.SpillBytes <= 0 || r.SpillReloads <= 0 {
			t.Fatalf("x%d: empty spill accounting %+v", r.Multiplier, r)
		}
	}
	// The ceiling is constant across multipliers (it depends on the chunk
	// budget, not N) — so WithinCeiling for every row is the
	// N-independence statement.
	if rows[0].HeapCeilingBytes != rows[2].HeapCeilingBytes {
		t.Fatalf("ceiling varies with N: %d vs %d", rows[0].HeapCeilingBytes, rows[2].HeapCeilingBytes)
	}
}
