package harness

// Phase II hot-path benchmark: the blocked SoA kernel (geom.Block lanes +
// dict.CellBatch.CountPoints) against the scalar cell-batched path
// (core.Config.DisableSoA) and the per-point oracle
// (core.Config.DisableBatching) on the appendix's skewed mixture, swept
// over dimensionality and size. The contrast isolates one stage —
// cell-graph-construction (Algorithm 3) — via the engine's per-stage
// accounting; clusterings must stay byte-identical (Rand index 1.0), since
// the modes only reorder evaluation. cmd/rpbench serialises the rows as
// BENCH_phase2.json; BenchmarkPhaseII in internal/core is the testing.B
// counterpart.

import (
	"fmt"
	"log/slog"
	"time"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/metrics"
	"rpdbscan/internal/obs"
)

// phase2Stage is the engine stage name Phase II runs under.
const phase2Stage = "cell-graph-construction"

// phase2Rounds is how many times each mode runs; the fastest round is
// reported, testing.B-style, to shed scheduler noise.
const phase2Rounds = 3

// phase2Dims is the dimensionality sweep.
var phase2Dims = []int{2, 3, 5}

// Phase2Row reports the Phase II stage cost of one query mode at one
// (n, dim) sweep point.
type Phase2Row struct {
	// Mode is "blocked" (SoA lane kernels, the default path), "batched"
	// (cell-batched queries with scalar per-point residuals), or
	// "per-point" (the pre-batching oracle, dim=2 groups only).
	Mode string `json:"mode"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	// StageMillis is the summed task time of the Phase II stage across
	// all partitions (fastest of phase2Rounds runs).
	StageMillis float64 `json:"stage_millis"`
	// NsPerOp is stage time per region query; one query per point.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the stage's heap-allocation count per point
	// (process-wide Mallocs delta, so an upper bound).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// PointsPerSec is the stage's region-query throughput.
	PointsPerSec float64 `json:"points_per_sec"`
	// RandIndex compares this mode's clustering against the blocked
	// run's; any value other than 1 is a correctness bug.
	RandIndex float64 `json:"rand_index"`
	// Speedup is the batched (scalar) stage time of the same (n, dim)
	// group divided by this mode's — 1 for the batched row itself, so the
	// blocked row reads directly as the SoA layout win.
	Speedup float64 `json:"speedup"`
}

// phase2Mode configures one measured query path.
type phase2Mode struct {
	name            string
	disableSoA      bool
	disableBatching bool
}

// Phase2 benchmarks the Phase II hot path on the skewed synthetic mixture
// (alpha = 3, ten components) over dim x {N/2, N}: one row per query mode
// per sweep point. The per-point oracle joins only the dim=2 groups — at
// higher dimension it is minutes-slow and adds nothing the batched
// contrast doesn't show.
func Phase2(s Scale) ([]Phase2Row, error) {
	s = s.norm()
	ns := []int{s.N / 2, s.N}
	if ns[0] == ns[1] || ns[0] < 100 {
		ns = ns[1:]
	}
	var rows []Phase2Row
	for _, dim := range phase2Dims {
		for _, n := range ns {
			pts := synthMixture(n, dim, 3, s.Seed)
			cfg := core.Config{
				Eps: synthEps, MinPts: s.minPtsFor(20), Rho: s.Rho,
				NumPartitions: s.Partitions, Seed: s.Seed,
			}
			type modeOut struct {
				stage  time.Duration
				allocs int64
				labels []int
			}
			measure := func(m phase2Mode) (modeOut, error) {
				var out modeOut
				for round := 0; round < phase2Rounds; round++ {
					mcfg := cfg
					mcfg.DisableSoA = m.disableSoA
					mcfg.DisableBatching = m.disableBatching
					cl := engine.New(s.Workers)
					cl.Sink = obs.NewSink(slog.Default())
					res, err := core.Run(pts, mcfg, cl)
					if err != nil {
						return out, err
					}
					st := res.Report.Stage(phase2Stage)
					if st == nil {
						return out, fmt.Errorf("harness: stage %q missing from report", phase2Stage)
					}
					if round == 0 || st.Total() < out.stage {
						out.stage = st.Total()
						out.allocs = st.MallocDelta
					}
					out.labels = res.Labels
				}
				return out, nil
			}
			modes := []phase2Mode{
				{name: "blocked"},
				{name: "batched", disableSoA: true},
			}
			if dim == 2 {
				modes = append(modes, phase2Mode{name: "per-point", disableBatching: true})
			}
			outs := make([]modeOut, len(modes))
			for i, m := range modes {
				var err error
				if outs[i], err = measure(m); err != nil {
					return nil, err
				}
			}
			blocked, batched := outs[0], outs[1]
			np := float64(pts.N())
			for i, m := range modes {
				o := outs[i]
				sec := o.stage.Seconds()
				r := Phase2Row{
					Mode: m.name, N: pts.N(), Dim: pts.Dim,
					StageMillis: float64(o.stage.Microseconds()) / 1e3,
					NsPerOp:     float64(o.stage.Nanoseconds()) / np,
					AllocsPerOp: float64(o.allocs) / np,
					RandIndex:   metrics.RandIndex(blocked.labels, o.labels),
				}
				if sec > 0 {
					r.PointsPerSec = np / sec
				}
				if o.stage > 0 {
					r.Speedup = float64(batched.stage) / float64(o.stage)
				}
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}
