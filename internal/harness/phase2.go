package harness

// Phase II hot-path benchmark: cell-batched region queries (dict.QueryCell)
// against the per-point oracle (core.Config.DisableBatching) on the
// appendix's skewed mixture. The contrast isolates one stage —
// cell-graph-construction (Algorithm 3) — via the engine's per-stage
// accounting; clusterings must stay byte-identical (Rand index 1.0), since
// batching only reorders evaluation. cmd/rpbench serialises the rows as
// BENCH_phase2.json; BenchmarkPhaseII in internal/core is the testing.B
// counterpart.

import (
	"fmt"
	"log/slog"
	"time"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/metrics"
	"rpdbscan/internal/obs"
)

// phase2Stage is the engine stage name Phase II runs under.
const phase2Stage = "cell-graph-construction"

// phase2Rounds is how many times each mode runs; the fastest round is
// reported, testing.B-style, to shed scheduler noise.
const phase2Rounds = 3

// Phase2Row reports the Phase II stage cost of one query mode.
type Phase2Row struct {
	// Mode is "batched" (cell-batched queries, the default path) or
	// "per-point" (the pre-batching oracle).
	Mode string `json:"mode"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	// StageMillis is the summed task time of the Phase II stage across
	// all partitions (fastest of phase2Rounds runs).
	StageMillis float64 `json:"stage_millis"`
	// NsPerOp is stage time per region query; one query per point.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the stage's heap-allocation count per point
	// (process-wide Mallocs delta, so an upper bound).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// PointsPerSec is the stage's region-query throughput.
	PointsPerSec float64 `json:"points_per_sec"`
	// RandIndex compares this mode's clustering against the batched
	// run's; any value other than 1 is a correctness bug.
	RandIndex float64 `json:"rand_index"`
	// Speedup is the per-point stage time divided by this mode's (1 for
	// the per-point row itself).
	Speedup float64 `json:"speedup"`
}

// Phase2 benchmarks the Phase II hot path on the skewed synthetic mixture
// (alpha = 3, ten components): one row per query mode.
func Phase2(s Scale) ([]Phase2Row, error) {
	s = s.norm()
	pts := synthMixture(s.N, 2, 3, s.Seed)
	cfg := core.Config{
		Eps: synthEps, MinPts: s.minPtsFor(20), Rho: s.Rho,
		NumPartitions: s.Partitions, Seed: s.Seed,
	}
	type modeOut struct {
		stage  time.Duration
		allocs int64
		labels []int
	}
	measure := func(disableBatching bool) (modeOut, error) {
		var out modeOut
		for round := 0; round < phase2Rounds; round++ {
			mcfg := cfg
			mcfg.DisableBatching = disableBatching
			cl := engine.New(s.Workers)
			cl.Sink = obs.NewSink(slog.Default())
			res, err := core.Run(pts, mcfg, cl)
			if err != nil {
				return out, err
			}
			st := res.Report.Stage(phase2Stage)
			if st == nil {
				return out, fmt.Errorf("harness: stage %q missing from report", phase2Stage)
			}
			if round == 0 || st.Total() < out.stage {
				out.stage = st.Total()
				out.allocs = st.MallocDelta
			}
			out.labels = res.Labels
		}
		return out, nil
	}
	batched, err := measure(false)
	if err != nil {
		return nil, err
	}
	perPoint, err := measure(true)
	if err != nil {
		return nil, err
	}
	n := float64(pts.N())
	row := func(mode string, m modeOut) Phase2Row {
		sec := m.stage.Seconds()
		r := Phase2Row{
			Mode: mode, N: pts.N(), Dim: pts.Dim,
			StageMillis: float64(m.stage.Microseconds()) / 1e3,
			NsPerOp:     float64(m.stage.Nanoseconds()) / n,
			AllocsPerOp: float64(m.allocs) / n,
			RandIndex:   metrics.RandIndex(batched.labels, m.labels),
		}
		if sec > 0 {
			r.PointsPerSec = n / sec
		}
		if m.stage > 0 {
			r.Speedup = float64(perPoint.stage) / float64(m.stage)
		}
		return r
	}
	return []Phase2Row{row("batched", batched), row("per-point", perPoint)}, nil
}
