package harness

// Anatomy experiments (Section 7.6): dictionary compactness (Table 5) and
// progressive-merging edge reduction (Figure 17 / Table 7).

// DictSizeRow is one cell of Table 5: the two-level cell dictionary size as
// a fraction of the data set size for one data set at one eps.
type DictSizeRow struct {
	Dataset string
	Eps     float64
	// Ratio is dictionary bits / data bits, where the data set is
	// accounted at 32 bits per coordinate as in the paper (Table 3 data
	// are float32).
	Ratio float64
	// Bits is the dictionary size by the Lemma 4.3 formula; Bytes the
	// actual encoded broadcast payload.
	Bits  int64
	Bytes int
	Cells int
	Subs  int
}

// DictionarySize reproduces Table 5: dictionary size across the eps sweep
// of each data set. The paper's observation — size shrinks as eps grows,
// and is a small fraction of the data — is scale-independent.
func DictionarySize(s Scale) ([]DictSizeRow, error) {
	s = s.norm()
	var rows []DictSizeRow
	for _, ds := range SuiteDatasets(s) {
		dataBits := int64(ds.Points.N()) * int64(ds.Points.Dim) * 32
		for _, eps := range ds.EpsSweep() {
			res, err := RunAlgorithm(AlgoRP, ds.Points, eps, s.minPtsFor(ds.MinPts), s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DictSizeRow{
				Dataset: ds.Name,
				Eps:     eps,
				Ratio:   float64(res.DictSizeBits) / float64(dataBits),
				Bits:    res.DictSizeBits,
				Bytes:   res.DictBytes,
				Cells:   res.Cells,
				Subs:    res.SubCells,
			})
		}
	}
	return rows, nil
}

// EdgeReductionRow is one column of Table 7: the edges remaining after each
// merge round for one data set at one eps.
type EdgeReductionRow struct {
	Dataset string
	Eps     float64
	// Edges[i] is the total edge count after round i (index 0 = before
	// merging starts).
	Edges []int64
}

// EdgeReduction reproduces Figure 17 / Table 7: progressive graph merging
// shrinks the edge set every round, so the final merge always fits one
// machine. It forces the tournament merge — the default flat merge has no
// rounds, so it reports only [pre, post] totals.
func EdgeReduction(s Scale) ([]EdgeReductionRow, error) {
	s = s.norm()
	s.SerialMerge = true
	var rows []EdgeReductionRow
	for _, ds := range SuiteDatasets(s) {
		for _, eps := range ds.EpsSweep() {
			res, err := RunAlgorithm(AlgoRP, ds.Points, eps, s.minPtsFor(ds.MinPts), s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, EdgeReductionRow{
				Dataset: ds.Name,
				Eps:     eps,
				Edges:   res.EdgesPerRound,
			})
		}
	}
	return rows, nil
}
