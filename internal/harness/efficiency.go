package harness

import (
	"time"

	"rpdbscan/internal/engine"
)

// EfficiencyRow is one cell of Figures 11/13/14 (and Table 6): one
// algorithm on one data set at one eps.
type EfficiencyRow struct {
	Dataset   string
	Eps       float64
	Algorithm string
	// Elapsed is the simulated total elapsed time (Figure 11 / Table 6).
	Elapsed time.Duration
	// Imbalance is the slowest/fastest local-clustering ratio
	// (Figure 13).
	Imbalance float64
	// Processed is the total number of points processed across splits
	// (Figure 14).
	Processed int64
	// Clusters is a sanity datum: the number of clusters found.
	Clusters int
}

// EfficiencyConfig restricts the sweep; zero values mean "all".
type EfficiencyConfig struct {
	// Datasets filters by data set name.
	Datasets []string
	// Algorithms filters the algorithm list.
	Algorithms []string
	// EpsIndices selects positions of the per-data-set eps sweep
	// (0..3 for eps10/8 .. eps10).
	EpsIndices []int
}

// Efficiency runs the overall-comparison sweep behind Figure 11 (elapsed
// time), Figure 13 (load imbalance), and Figure 14 (data duplication): six
// algorithms times four data sets times four eps values by default.
func Efficiency(s Scale, cfg EfficiencyConfig) ([]EfficiencyRow, error) {
	s = s.norm()
	algos := cfg.Algorithms
	if len(algos) == 0 {
		algos = AllAlgorithms()
	}
	epsIdx := cfg.EpsIndices
	if len(epsIdx) == 0 {
		epsIdx = []int{0, 1, 2, 3}
	}
	var rows []EfficiencyRow
	for _, ds := range SuiteDatasets(s) {
		if len(cfg.Datasets) > 0 && !contains(cfg.Datasets, ds.Name) {
			continue
		}
		sweep := ds.EpsSweep()
		for _, ei := range epsIdx {
			eps := sweep[ei]
			for _, algo := range algos {
				res, err := RunAlgorithm(algo, ds.Points, eps, s.minPtsFor(ds.MinPts), s)
				if err != nil {
					return nil, err
				}
				rows = append(rows, EfficiencyRow{
					Dataset:   ds.Name,
					Eps:       eps,
					Algorithm: algo,
					Elapsed:   res.Elapsed,
					Imbalance: res.Imbalance,
					Processed: res.Processed,
					Clusters:  res.NumClusters,
				})
			}
		}
	}
	return rows, nil
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// BreakdownRow is one bar of Figure 12: the fraction of RP-DBSCAN's
// elapsed time spent in each phase on one data set.
type BreakdownRow struct {
	Dataset string
	// Phases maps "I-1", "I-2", "II", "III-1", "III-2" to fractions
	// summing to 1.
	Phases map[string]float64
	Order  []string
	Total  time.Duration
}

// Breakdown reproduces Figure 12: RP-DBSCAN's per-phase time share on each
// data set at eps10/2 (the mid-sweep epsilon).
func Breakdown(s Scale) ([]BreakdownRow, error) {
	s = s.norm()
	var rows []BreakdownRow
	for _, ds := range SuiteDatasets(s) {
		res, err := RunAlgorithm(AlgoRP, ds.Points, ds.Eps10/2, s.minPtsFor(ds.MinPts), s)
		if err != nil {
			return nil, err
		}
		m, order := res.Report.PhaseBreakdown()
		total := res.Report.SimulatedElapsed()
		row := BreakdownRow{Dataset: ds.Name, Phases: make(map[string]float64), Order: order, Total: total}
		for ph, d := range m {
			if total > 0 {
				row.Phases[ph] = float64(d) / float64(total)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SpeedUpRow is one line of Figure 15: an algorithm's speed-up at each
// worker count relative to 5 workers.
type SpeedUpRow struct {
	Algorithm string
	Workers   []int
	SpeedUp   []float64
}

// SpeedUp reproduces Figure 15: scalability to the number of cores on the
// Cosmo50 stand-in at eps10/4 (the paper's eps = 0.02 on Cosmo50). Task
// costs are measured once per algorithm; the makespan is then re-scheduled
// for each worker count, exactly how a deterministic scheduler would place
// the same tasks on differently sized clusters.
func SpeedUp(s Scale, algos ...string) ([]SpeedUpRow, error) {
	s = s.norm()
	if len(algos) == 0 {
		algos = AllAlgorithms()
	}
	workers := []int{5, 10, 20, 40}
	// The split count must cover the largest cluster measured, as in the
	// paper's deployment (40 splits on 40 cores).
	if s.Partitions < workers[len(workers)-1] {
		s.Partitions = workers[len(workers)-1]
	}
	ds := SuiteDatasets(s)[1] // SimCosmo
	eps := ds.Eps10 / 4
	var rows []SpeedUpRow
	for _, algo := range algos {
		res, err := RunAlgorithm(algo, ds.Points, eps, s.minPtsFor(ds.MinPts), s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpeedUpRow{
			Algorithm: algo,
			Workers:   workers,
			SpeedUp:   engine.SpeedUp(res.Report, 5, workers),
		})
	}
	return rows, nil
}
