package harness

import (
	"fmt"
	"testing"
)

// TestChaosEquivalence is the chaos/differential harness: across the full
// default grid (3 fault rates x 3 seeds x 2 worker counts) the clustering
// must be byte-identical to the fault-free run, every injected fault must
// be accounted for in the engine's FaultStats ledger, and the simulated
// makespan must degrade boundedly — fault totals grow monotonically with
// the rate, and no run exceeds the Graham bound on its own costs.
func TestChaosEquivalence(t *testing.T) {
	s := QuickScale()
	s.N = 2000
	cfg := DefaultChaosConfig()
	if len(cfg.Rates) < 3 || len(cfg.Seeds) < 3 || len(cfg.Workers) < 2 {
		t.Fatalf("default grid too small: %+v", cfg)
	}
	rows, err := Chaos(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Rates) * len(cfg.Seeds) * len(cfg.Workers); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	sawFaults := false
	for _, r := range rows {
		id := func() string {
			return fmt.Sprintf("rate=%.2f seed=%d workers=%d", r.Rate, r.Seed, r.Workers)
		}
		if !r.Identical {
			t.Errorf("%s: clustering diverged from fault-free run", id())
		}
		if !r.Accounted {
			t.Errorf("%s: engine fault ledger does not reconcile with injector tally", id())
		}
		if !r.WithinBound {
			t.Errorf("%s: simulated makespan %.3fms exceeds Graham bound %.3fms",
				id(), r.SimulatedMillis, r.BoundMillis)
		}
		if r.InjectedFailures > 0 || r.ChecksumRejects > 0 || r.StragglerMillis > 0 {
			sawFaults = true
		}
	}
	if !sawFaults {
		t.Fatal("no faults injected anywhere in the grid: chaos is not wired up")
	}

	// Monotone degradation: at fixed (seed, workers), the deterministic
	// fault totals must be non-decreasing in the rate — the injector's
	// hash-threshold design makes lower-rate fire-sets subsets of
	// higher-rate ones. (Speculation and checksum-reject counts can have
	// a timing-dependent component via speculative re-runs, so the
	// assertion sticks to the purely deterministic totals.)
	type key struct {
		seed    int64
		workers int
	}
	byCell := map[key][]ChaosRow{}
	for _, r := range rows {
		k := key{r.Seed, r.Workers}
		byCell[k] = append(byCell[k], r)
	}
	for k, cell := range byCell {
		// Rows were appended in increasing-rate order per cell.
		for i := 1; i < len(cell); i++ {
			lo, hi := cell[i-1], cell[i]
			if lo.Rate >= hi.Rate {
				t.Fatalf("cell %+v rows not rate-ordered", k)
			}
			if hi.InjectedFailures < lo.InjectedFailures {
				t.Errorf("cell %+v: injected failures fell from %d to %d as rate rose %.2f->%.2f",
					k, lo.InjectedFailures, hi.InjectedFailures, lo.Rate, hi.Rate)
			}
			if hi.StragglerMillis < lo.StragglerMillis {
				t.Errorf("cell %+v: straggler delay fell from %.3fms to %.3fms as rate rose %.2f->%.2f",
					k, lo.StragglerMillis, hi.StragglerMillis, lo.Rate, hi.Rate)
			}
		}
	}

	// The top rate must exercise every fault class somewhere in the grid.
	var topFail, topCorrupt, topStraggle, topSpec bool
	top := cfg.Rates[len(cfg.Rates)-1]
	for _, r := range rows {
		if r.Rate != top {
			continue
		}
		topFail = topFail || r.InjectedFailures > 0
		topCorrupt = topCorrupt || r.ChecksumRejects > 0
		topStraggle = topStraggle || r.StragglerMillis > 0
		topSpec = topSpec || r.SpeculativeLaunches > 0
	}
	if !topFail || !topCorrupt || !topStraggle {
		t.Fatalf("top rate %.2f left a fault class unexercised: fail=%v corrupt=%v straggle=%v",
			top, topFail, topCorrupt, topStraggle)
	}
	if !topSpec {
		t.Log("note: no speculative launches at top rate (stragglers resolved under threshold)")
	}
}

// Determinism: the same grid cell replayed twice must inject the exact
// same fault totals.
func TestChaosReplayDeterministic(t *testing.T) {
	s := QuickScale()
	s.N = 1200
	cfg := ChaosConfig{Rates: []float64{0.2}, Seeds: []int64{7}, Workers: []int{4}}
	a, err := Chaos(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a[0], b[0]
	if ra.InjectedFailures != rb.InjectedFailures ||
		ra.ChecksumRejects != rb.ChecksumRejects ||
		ra.StragglerMillis != rb.StragglerMillis {
		t.Fatalf("replay diverged: %+v vs %+v", ra, rb)
	}
}
