package harness

// Phase III merge benchmark: the flat lock-free merge (shared
// graph.ConcurrentUnionFind, one worker per subgraph) against the serial
// pairwise tournament on deterministically generated partition subgraphs.
// Both paths are measured end to end — merge plus component/predecessor
// extraction — and must produce identical components; cmd/rpbench
// serialises the rows as BENCH_phase3.json.

import (
	"maps"
	"math/rand"
	"slices"
	"time"

	"rpdbscan/internal/graph"
)

// phase3Rounds is how many times each configuration runs; the fastest
// round is reported, testing.B-style.
const phase3Rounds = 3

// phase3Degree is the out-degree of each core cell in the generated
// subgraphs — the neighbor-cell fan-out Phase II typically produces on the
// skewed mixture.
const phase3Degree = 8

// Phase3Row reports one merge configuration.
type Phase3Row struct {
	// Mode is "tournament" (serial pairwise merging, the Figure 9a
	// baseline) or "flat" (lock-free concurrent union-find).
	Mode string `json:"mode"`
	// Workers is the merge concurrency (1 for the tournament, which
	// serialises every match through one UnionFind).
	Workers   int `json:"workers"`
	Cells     int `json:"cells"`
	Subgraphs int `json:"subgraphs"`
	// Edges is the pre-merge edge total across all subgraphs.
	Edges int64 `json:"edges"`
	// Millis is the fastest end-to-end merge time (merge + component and
	// predecessor extraction) of phase3Rounds runs.
	Millis float64 `json:"millis"`
	// Speedup is the tournament time divided by this row's (1 for the
	// tournament itself).
	Speedup float64 `json:"speedup"`
	// Identical reports whether this row's components, cluster count, and
	// predecessor map match the tournament's exactly; anything but true is
	// a correctness bug.
	Identical bool `json:"identical"`
}

// phase3Subgraphs generates k partition subgraphs over numCells cells:
// cells dealt round-robin, 80% core, each core cell with phase3Degree
// random out-edges — typed undetermined when the target is owned
// elsewhere, exactly as Phase II builds them.
func phase3Subgraphs(numCells, k int, seed int64) []*graph.Graph {
	r := rand.New(rand.NewSource(seed))
	gs := make([]*graph.Graph, k)
	for i := range gs {
		gs[i] = graph.New(numCells)
	}
	for id := 0; id < numCells; id++ {
		g := gs[id%k]
		if r.Float64() < 0.8 {
			g.SetVertex(int32(id), graph.Core)
			for e := 0; e < phase3Degree; e++ {
				g.AddEdge(int32(id), int32(r.Intn(numCells)))
			}
		} else {
			g.SetVertex(int32(id), graph.NonCore)
		}
	}
	return gs
}

// Phase3 benchmarks Phase III graph merging: the serial tournament as the
// baseline row, then the flat merge at 1, 2, 4, and 8 workers.
func Phase3(s Scale) ([]Phase3Row, error) {
	s = s.norm()
	numCells := s.N
	k := s.Partitions
	build := func() []*graph.Graph { return phase3Subgraphs(numCells, k, s.Seed) }

	var pre int64
	for _, g := range build() {
		pre += int64(g.NumEdges())
	}

	// Baseline: the serial pairwise tournament, timed through component
	// and predecessor extraction like the flat rows.
	var tourTime time.Duration
	var refComp []int32
	var refClusters int
	var refPreds map[int32][]int32
	for round := 0; round < phase3Rounds; round++ {
		gs := build() // Tournament cannibalises its inputs
		start := time.Now()
		g := graph.Tournament(gs, nil, nil)
		comp, clusters := g.CoreComponents()
		preds := g.PartialPredecessors()
		el := time.Since(start)
		if round == 0 || el < tourTime {
			tourTime = el
		}
		refComp, refClusters, refPreds = comp, clusters, preds
	}
	row := func(mode string, workers int, el time.Duration, identical bool) Phase3Row {
		r := Phase3Row{
			Mode: mode, Workers: workers, Cells: numCells, Subgraphs: k,
			Edges:     pre,
			Millis:    float64(el.Microseconds()) / 1e3,
			Identical: identical,
		}
		if el > 0 {
			r.Speedup = float64(tourTime) / float64(el)
		}
		return r
	}
	rows := []Phase3Row{row("tournament", 1, tourTime, true)}
	for _, w := range []int{1, 2, 4, 8} {
		var best time.Duration
		var fr *graph.FlatResult
		for round := 0; round < phase3Rounds; round++ {
			gs := build()
			start := time.Now()
			fr = graph.FlatMerge(gs, w)
			el := time.Since(start)
			if round == 0 || el < best {
				best = el
			}
		}
		identical := slices.Equal(fr.Comp, refComp) &&
			fr.Clusters == refClusters &&
			maps.EqualFunc(fr.Preds, refPreds, slices.Equal)
		rows = append(rows, row("flat", w, best, identical))
	}
	return rows, nil
}
