package harness

import (
	"rpdbscan/internal/baselines/naive"
	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"
)

// AccuracyRow is one cell of Table 4: the Rand index of RP-DBSCAN against
// exact DBSCAN on one synthetic set at one rho.
type AccuracyRow struct {
	Dataset     string
	Rho         float64
	RandIndex   float64
	ClustersRP  int
	ClustersRef int
}

// accuracySet pairs a generator with the eps/minPts used on it.
type accuracySet struct {
	name   string
	pts    *geom.Points
	eps    float64
	minPts int
}

func accuracySets(s Scale) []accuracySet {
	// The paper uses 100k-point Moons, Blobs, and Chameleon; sizes scale
	// with s.N (these sets are cheap, so use at least 5000 points for a
	// meaningful border population).
	n := s.N
	if n < 5000 {
		n = 5000
	}
	return []accuracySet{
		{"Moons", datagen.Moons(n, 0.04, s.Seed), 0.10, s.minPtsFor(10)},
		{"Blobs", datagen.Blobs(n, 5, 0.4, s.Seed+1), 0.30, s.minPtsFor(10)},
		{"Chameleon", datagen.Chameleon(n, s.Seed+2), 1.0, s.minPtsFor(10)},
	}
}

// NaiveRow compares the naive random-split family (Section 2.2.1) with
// RP-DBSCAN on the same accuracy set: the motivation for the two-level
// cell dictionary is that random splits alone lose accuracy.
type NaiveRow struct {
	Dataset string
	// RINaive and RIRP are Rand indexes against exact DBSCAN.
	RINaive float64
	RIRP    float64
}

// NaiveComparison quantifies Section 2.2.1's accuracy-loss claim.
func NaiveComparison(s Scale) ([]NaiveRow, error) {
	s = s.norm()
	var rows []NaiveRow
	for _, set := range accuracySets(s) {
		ref := dbscan.Run(set.pts, set.eps, set.minPts)
		nres := naive.Run(set.pts, naive.Config{
			Eps: set.eps, MinPts: set.minPts,
			NumSplits: s.Partitions, Seed: s.Seed,
		}, engine.New(s.Workers))
		rres, err := core.Run(set.pts, core.Config{
			Eps: set.eps, MinPts: set.minPts, Rho: 0.01,
			NumPartitions: s.Partitions, Seed: s.Seed,
		}, engine.New(s.Workers))
		if err != nil {
			return nil, err
		}
		rows = append(rows, NaiveRow{
			Dataset: set.name,
			RINaive: metrics.RandIndex(ref.Labels, nres.Labels),
			RIRP:    metrics.RandIndex(ref.Labels, rres.Labels),
		})
	}
	return rows, nil
}

// ClusterImage is one panel of Figure 16: a 2-d accuracy set with
// RP-DBSCAN's cluster labels, ready to render.
type ClusterImage struct {
	Name   string
	Points *geom.Points
	Labels []int
}

// Figure16 reproduces Figure 16: RP-DBSCAN's clustering of the Moons,
// Blobs, and Chameleon sets at the default rho = 0.01.
func Figure16(s Scale) ([]ClusterImage, error) {
	s = s.norm()
	var out []ClusterImage
	for _, set := range accuracySets(s) {
		res, err := core.Run(set.pts, core.Config{
			Eps: set.eps, MinPts: set.minPts, Rho: 0.01,
			NumPartitions: s.Partitions, Seed: s.Seed,
		}, engine.New(s.Workers))
		if err != nil {
			return nil, err
		}
		out = append(out, ClusterImage{Name: set.name, Points: set.pts, Labels: res.Labels})
	}
	return out, nil
}

// Accuracy reproduces Table 4 (and the Figure 16 check): the Rand index
// between RP-DBSCAN and exact DBSCAN for rho in {0.10, 0.05, 0.01}.
func Accuracy(s Scale) ([]AccuracyRow, error) {
	s = s.norm()
	rhos := []float64{0.10, 0.05, 0.01}
	var rows []AccuracyRow
	for _, set := range accuracySets(s) {
		ref := dbscan.Run(set.pts, set.eps, set.minPts)
		for _, rho := range rhos {
			res, err := core.Run(set.pts, core.Config{
				Eps: set.eps, MinPts: set.minPts, Rho: rho,
				NumPartitions: s.Partitions, Seed: s.Seed,
			}, engine.New(s.Workers))
			if err != nil {
				return nil, err
			}
			rows = append(rows, AccuracyRow{
				Dataset:     set.name,
				Rho:         rho,
				RandIndex:   metrics.RandIndex(ref.Labels, res.Labels),
				ClustersRP:  res.NumClusters,
				ClustersRef: ref.NumClusters,
			})
		}
	}
	return rows, nil
}
