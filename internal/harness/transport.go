package harness

import (
	"fmt"
	"time"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/transport"
)

// TransportRow is one multi-process run compared against its in-process
// twin: same points, same configuration, same seed — the simulator result
// is the reference the proc backend must reproduce byte for byte.
type TransportRow struct {
	// Workers is the number of worker processes (and virtual cluster
	// workers) behind the run.
	Workers int
	// Seed seeds the data set, the partitioner, and (when ChaosOn) the
	// fault schedule.
	Seed int64
	// ChaosOn marks runs under process-level fault injection: worker
	// kills, wire corruption, and simulated task failures together.
	ChaosOn bool
	// Identical reports whether labels, core flags, and cluster count
	// matched the in-process run exactly.
	Identical bool
	// Accounted reports whether the engine's fault ledger reconciled
	// exactly against the injector's own tally (trivially true without
	// chaos).
	Accounted bool
	// InjectedFailures / ChecksumRejects / WorkerKills are the run's
	// ledgered fault totals.
	InjectedFailures int64 `json:"injected_failures"`
	ChecksumRejects  int64 `json:"checksum_rejects"`
	WorkerKills      int64 `json:"worker_kills"`
	// MeasuredMillis is the real wall time summed over the run's stages;
	// SimulatedMillis is the virtual-scheduler makespan summed over the
	// same stages. On the proc backend each task's recorded cost includes
	// its real wire roundtrip, so the two track each other up to
	// scheduling overhead.
	MeasuredMillis  float64 `json:"measured_ms"`
	SimulatedMillis float64 `json:"simulated_ms"`
	// WithinBound reports the makespan reconciliation: measured within
	// [simulated/divergenceFactor, simulated*divergenceFactor +
	// divergenceSlack]. Outside that bound the cost model and reality
	// have diverged.
	WithinBound bool `json:"within_bound"`
	// Stages is the per-stage measured-vs-simulated breakdown.
	Stages []TransportStage `json:"stages"`
}

// TransportStage is one stage's measured wall time against its simulated
// makespan.
type TransportStage struct {
	Name            string  `json:"name"`
	MeasuredMillis  float64 `json:"measured_ms"`
	SimulatedMillis float64 `json:"simulated_ms"`
}

// Makespan-reconciliation bound: measured total wall within this factor of
// the simulated total, plus a flat slack for process startup and barrier
// overhead at sub-millisecond stage sizes.
const (
	divergenceFactor = 25.0
	divergenceSlack  = 250 * time.Millisecond
)

// TransportConfig parameterises the sweep.
type TransportConfig struct {
	// Spawn brings up worker processes; nil defaults to
	// transport.Subprocess (the caller's binary must route through
	// transport.MaybeWorker). Tests pass transport.InProcess so worker
	// code runs under -race and -cover.
	Spawn transport.SpawnFunc
	// WorkerCounts are the process counts swept; nil means {1, 2, 4}.
	WorkerCounts []int
	// Seeds are the data/fault seeds swept; nil means {1, 2, 3}.
	Seeds []int64
}

// Transport sweeps the multi-process backend over worker counts, seeds,
// and chaos on/off, differencing every run against the in-process
// simulator. It is the harness twin of transport.TestTransportEquivalence:
// byte-identical output, exact fault reconciliation, and bounded
// measured-vs-simulated makespan divergence.
func Transport(s Scale, cfg TransportConfig) ([]TransportRow, error) {
	counts := cfg.WorkerCounts
	if counts == nil {
		counts = []int{1, 2, 4}
	}
	seeds := cfg.Seeds
	if seeds == nil {
		seeds = []int64{1, 2, 3}
	}
	n := s.N
	if n > 4000 {
		n = 4000 // wire roundtrips per point: keep the sweep snappy
	}
	var rows []TransportRow
	for _, seed := range seeds {
		pts := datagen.Moons(n, 0.05, seed)
		ccfg := core.Config{
			Eps: 0.1, MinPts: minPtsFor(s, n), Rho: s.Rho,
			NumPartitions: 8, Seed: seed,
		}
		ref, err := core.Run(pts, ccfg, engine.New(4))
		if err != nil {
			return nil, fmt.Errorf("transport: reference run seed %d: %w", seed, err)
		}
		for _, w := range counts {
			for _, chaosOn := range []bool{false, true} {
				row, err := transportRun(pts, ccfg, ref, w, seed, chaosOn, cfg.Spawn)
				if err != nil {
					return nil, err
				}
				rows = append(rows, *row)
			}
		}
	}
	return rows, nil
}

// minPtsFor scales MinPts the way the efficiency experiments do.
func minPtsFor(s Scale, n int) int {
	if s.MinPts > 0 {
		return s.MinPts
	}
	return 10
}

// transportRun executes one proc-backend run and differences it against
// the reference result.
func transportRun(pts *geom.Points, ccfg core.Config, ref *core.Result,
	workers int, seed int64, chaosOn bool, spawn transport.SpawnFunc) (*TransportRow, error) {
	cl := engine.New(workers)
	opts := transport.Options{Spawn: spawn}
	var inj *chaos.Injector
	if chaosOn {
		var err error
		inj, err = chaos.New(chaos.Config{
			Seed: seed, FailProb: 0.05, CorruptProb: 0.05, KillProb: 0.05,
		})
		if err != nil {
			return nil, err
		}
		cl.Injector = inj
		opts.Injector = inj
		opts.Killer = inj
	}
	tr, err := transport.NewProc(workers, opts)
	if err != nil {
		return nil, fmt.Errorf("transport: spawn %d workers: %w", workers, err)
	}
	defer tr.Close()
	tr.Bind(cl)
	pcfg := ccfg
	pcfg.Backend = core.BackendProc
	res, err := core.Run(pts, pcfg, cl)
	if err != nil {
		return nil, fmt.Errorf("transport: proc run (workers=%d seed=%d chaos=%v): %w",
			workers, seed, chaosOn, err)
	}
	row := &TransportRow{
		Workers: workers, Seed: seed, ChaosOn: chaosOn,
		Identical: identicalResults(ref, res),
	}
	rep := cl.Report()
	var faults engine.FaultStats
	var measured, simulated time.Duration
	for _, st := range rep.Stages {
		faults.Add(st.Faults)
		measured += st.Wall
		simulated += st.Makespan(rep.Workers)
		row.Stages = append(row.Stages, TransportStage{
			Name:            st.Name,
			MeasuredMillis:  float64(st.Wall.Microseconds()) / 1e3,
			SimulatedMillis: float64(st.Makespan(rep.Workers).Microseconds()) / 1e3,
		})
	}
	row.InjectedFailures = faults.InjectedFailures
	row.ChecksumRejects = faults.ChecksumRejects
	row.WorkerKills = faults.WorkerKills
	row.MeasuredMillis = float64(measured.Microseconds()) / 1e3
	row.SimulatedMillis = float64(simulated.Microseconds()) / 1e3
	row.WithinBound = measured <= time.Duration(float64(simulated)*divergenceFactor)+divergenceSlack &&
		float64(measured) >= float64(simulated)/divergenceFactor
	if chaosOn {
		st := inj.Stats()
		row.Accounted = st.Failures == faults.InjectedFailures &&
			st.Corruptions == faults.ChecksumRejects &&
			st.Kills == faults.WorkerKills
	} else {
		row.Accounted = faults.IsZero()
	}
	return row, nil
}

// identicalResults compares the full observable clustering output.
func identicalResults(a, b *core.Result) bool {
	if a.NumClusters != b.NumClusters || a.NumCells != b.NumCells ||
		a.DictBytes != b.DictBytes || len(a.Labels) != len(b.Labels) {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] || a.CorePoint[i] != b.CorePoint[i] {
			return false
		}
	}
	return true
}
