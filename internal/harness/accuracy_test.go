package harness

import "testing"

func TestFigure16Images(t *testing.T) {
	s := quick()
	imgs, err := Figure16(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 3 {
		t.Fatalf("images = %d, want 3", len(imgs))
	}
	names := map[string]bool{}
	for _, img := range imgs {
		names[img.Name] = true
		if img.Points.N() != len(img.Labels) {
			t.Fatalf("%s: %d points but %d labels", img.Name, img.Points.N(), len(img.Labels))
		}
		clusters := map[int]bool{}
		for _, l := range img.Labels {
			if l >= 0 {
				clusters[l] = true
			}
		}
		if len(clusters) == 0 {
			t.Fatalf("%s: no clusters found", img.Name)
		}
	}
	for _, want := range []string{"Moons", "Blobs", "Chameleon"} {
		if !names[want] {
			t.Fatalf("missing image %q", want)
		}
	}
}

func TestNaiveComparison(t *testing.T) {
	s := quick()
	rows, err := NaiveComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.RIRP < 0.99 {
			t.Errorf("%s: RP RandIndex %.4f < 0.99", r.Dataset, r.RIRP)
		}
		if r.RINaive <= 0 || r.RINaive > 1 {
			t.Errorf("%s: naive RandIndex %v out of range", r.Dataset, r.RINaive)
		}
		// Section 2.2.1's claim: the dictionary-backed algorithm is at
		// least as accurate as the naive random split.
		if r.RINaive > r.RIRP+1e-9 {
			t.Errorf("%s: naive (%.4f) beat RP (%.4f)", r.Dataset, r.RINaive, r.RIRP)
		}
	}
}
