package harness

// Chaos/differential experiment: RP-DBSCAN under deterministic fault
// injection (internal/chaos) must produce byte-identical clusterings to the
// fault-free run — every stage is idempotent and every injected fault is
// either retried, speculated around, or detected by a transfer checksum —
// while the simulated makespan degrades boundedly. cmd/rpbench serialises
// the rows as BENCH_chaos.json; TestChaosEquivalence asserts the
// equivalence and accounting invariants over the full sweep grid.

import (
	"time"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
)

// ChaosConfig spans the sweep grid: every Rate x Seed x Workers cell runs
// once and is compared against the fault-free baseline at the same worker
// count.
type ChaosConfig struct {
	// Rates are the fault rates swept; each is used as the failure,
	// straggler, and corruption probability of one injector.
	Rates []float64
	// Seeds drive the injectors' deterministic schedules.
	Seeds []int64
	// Workers are the virtual cluster sizes swept.
	Workers []int
	// StragglerDelay is the virtual inflation per straggler; zero keeps
	// the injector default (20ms).
	StragglerDelay time.Duration
}

// DefaultChaosConfig returns the grid used by `rpbench chaos` and the
// chaos equivalence test: 3 rates x 3 seeds x 2 worker counts.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Rates:   []float64{0.05, 0.15, 0.30},
		Seeds:   []int64{1, 2, 3},
		Workers: []int{8, 16},
	}
}

// ChaosRow reports one cell of the sweep.
type ChaosRow struct {
	Rate    float64 `json:"rate"`
	Seed    int64   `json:"seed"`
	Workers int     `json:"workers"`
	// Identical reports whether Labels and CorePoint came out
	// byte-identical to the fault-free baseline. Anything but true is a
	// correctness bug.
	Identical bool `json:"identical"`
	// Accounted reports whether the engine's FaultStats ledger reconciles
	// exactly with the injector's own tally: every injected failure,
	// straggler nanosecond, and corrupted chunk accounted for.
	Accounted bool `json:"accounted"`
	// Fault ledger totals (deterministic functions of rate and seed).
	InjectedFailures    int64   `json:"injected_failures"`
	ChecksumRejects     int64   `json:"checksum_rejects"`
	SpeculativeLaunches int64   `json:"speculative_launches"`
	SpeculativeWins     int64   `json:"speculative_wins"`
	StragglerMillis     float64 `json:"straggler_millis"`
	BackoffMillis       float64 `json:"backoff_millis"`
	// SimulatedMillis is the chaos run's virtual makespan;
	// BaselineMillis the fault-free run's at the same worker count.
	SimulatedMillis float64 `json:"simulated_millis"`
	BaselineMillis  float64 `json:"baseline_millis"`
	// BoundMillis is the Graham bound on the chaos run's own costs
	// (sum over stages of total/W + max): greedy scheduling can never
	// exceed it, so WithinBound=false means the scheduler model broke.
	BoundMillis float64 `json:"bound_millis"`
	WithinBound bool    `json:"within_bound"`
}

// grahamBound sums, over stages, the greedy-scheduling upper bound
// total/w + max. Every stage's makespan is at most its bound, so the
// simulated elapsed time of the whole run is at most the sum.
func grahamBound(rep *engine.Report, w int) time.Duration {
	if w < 1 {
		w = 1
	}
	var b time.Duration
	for _, st := range rep.Stages {
		b += st.Total()/time.Duration(w) + st.Max()
	}
	return b
}

func millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Chaos sweeps fault injection over cfg's grid on the skewed synthetic
// mixture. One row per (rate, seed, workers) cell.
func Chaos(s Scale, cfg ChaosConfig) ([]ChaosRow, error) {
	s = s.norm()
	pts := synthMixture(s.N, 2, 3, s.Seed)
	ccfg := core.Config{
		Eps: synthEps, MinPts: s.minPtsFor(20), Rho: s.Rho,
		NumPartitions: s.Partitions, Seed: s.Seed,
	}
	run := func(workers int, inj engine.Injector) (*core.Result, error) {
		cl := engine.New(workers)
		cl.Injector = inj
		return core.Run(pts, ccfg, cl)
	}
	var rows []ChaosRow
	for _, w := range cfg.Workers {
		base, err := run(w, nil)
		if err != nil {
			return nil, err
		}
		baseMs := millis(base.Report.SimulatedElapsed())
		for _, rate := range cfg.Rates {
			for _, seed := range cfg.Seeds {
				inj, err := chaos.New(chaos.Config{
					Seed: seed, FailProb: rate, StragglerProb: rate,
					CorruptProb: rate, StragglerDelay: cfg.StragglerDelay,
				})
				if err != nil {
					return nil, err
				}
				res, err := run(w, inj)
				if err != nil {
					return nil, err
				}
				faults := res.Report.TotalFaults()
				tally := inj.Stats()
				sim := res.Report.SimulatedElapsed()
				bound := grahamBound(res.Report, w)
				rows = append(rows, ChaosRow{
					Rate: rate, Seed: seed, Workers: w,
					Identical: equalLabels(base.Labels, res.Labels) &&
						equalBools(base.CorePoint, res.CorePoint),
					Accounted: faults.InjectedFailures == tally.Failures &&
						faults.StragglerDelay == tally.StragglerDelay &&
						faults.ChecksumRejects == tally.Corruptions,
					InjectedFailures:    faults.InjectedFailures,
					ChecksumRejects:     faults.ChecksumRejects,
					SpeculativeLaunches: faults.SpeculativeLaunches,
					SpeculativeWins:     faults.SpeculativeWins,
					StragglerMillis:     millis(faults.StragglerDelay),
					BackoffMillis:       millis(faults.BackoffVirtual),
					SimulatedMillis:     millis(sim),
					BaselineMillis:      baseMs,
					BoundMillis:         millis(bound),
					WithinBound:         sim <= bound,
				})
			}
		}
	}
	return rows, nil
}

func equalLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
