package harness

import (
	"fmt"
	"testing"

	"rpdbscan/internal/transport"
)

// TestTransportReconciliation is the makespan-reconciliation harness: every
// multi-process run in a reduced sweep must (a) reproduce the in-process
// clustering byte for byte, (b) reconcile its fault ledger exactly against
// the injector's tally, and (c) keep measured wall time within the stated
// divergence bound of the simulated makespan — measured within
// [simulated/25, 25x simulated + 250ms]. The in-process spawner stands in
// for real subprocesses so the worker code runs under -race and -cover;
// the subprocess path is pinned separately in internal/transport.
func TestTransportReconciliation(t *testing.T) {
	s := QuickScale()
	s.N = 1500
	cfg := TransportConfig{
		Spawn:        transport.InProcess(),
		WorkerCounts: []int{1, 3},
		Seeds:        []int64{1, 2},
	}
	rows, err := Transport(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Seeds) * len(cfg.WorkerCounts) * 2; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	sawFaults := false
	for _, r := range rows {
		id := func() string {
			return fmt.Sprintf("workers=%d seed=%d chaos=%v", r.Workers, r.Seed, r.ChaosOn)
		}
		if !r.Identical {
			t.Errorf("%s: proc clustering diverged from in-process run", id())
		}
		if !r.Accounted {
			t.Errorf("%s: fault ledger (fail=%d reject=%d kill=%d) does not reconcile with injector tally",
				id(), r.InjectedFailures, r.ChecksumRejects, r.WorkerKills)
		}
		if !r.WithinBound {
			t.Errorf("%s: measured %.3fms vs simulated %.3fms breaches the divergence bound",
				id(), r.MeasuredMillis, r.SimulatedMillis)
		}
		if len(r.Stages) == 0 {
			t.Errorf("%s: no per-stage breakdown recorded", id())
		}
		if !r.ChaosOn && (r.InjectedFailures != 0 || r.ChecksumRejects != 0 || r.WorkerKills != 0) {
			t.Errorf("%s: chaos-free run ledgered faults", id())
		}
		if r.ChaosOn && (r.InjectedFailures > 0 || r.ChecksumRejects > 0 || r.WorkerKills > 0) {
			sawFaults = true
		}
	}
	if !sawFaults {
		t.Fatal("no chaos run injected any fault: process-level chaos is not wired up")
	}
}
