// Package harness regenerates every table and figure of the paper's
// evaluation (Section 7 and Appendices A-B). Each experiment has one entry
// point returning typed rows; cmd/rpbench formats them as text tables and
// bench_test.go exposes one testing.B benchmark per experiment.
//
// Experiments run on simulated stand-ins for the paper's data sets (see
// internal/datagen) and report *simulated* elapsed time: per-task costs are
// measured for real, then scheduled onto Scale.Workers virtual workers
// exactly as a MapReduce scheduler would (see internal/engine). Absolute
// times therefore differ from the paper's Azure cluster, but the
// comparative shape — who wins, by what factor, where trends cross — is
// preserved.
package harness

import (
	"fmt"
	"log/slog"
	"time"

	"rpdbscan/internal/baselines/cbp"
	"rpdbscan/internal/baselines/esp"
	"rpdbscan/internal/baselines/ngdbscan"
	"rpdbscan/internal/baselines/rbp"
	"rpdbscan/internal/baselines/regionsplit"
	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/obs"
)

// Scale sizes the experiments. The paper's absolute scales (up to 4.4
// billion points on 48 cores) shrink to laptop scale; ratios and trends are
// what the harness reproduces.
type Scale struct {
	// N is the number of points per simulated data set.
	N int
	// Workers is the virtual cluster size (the paper's deployment uses
	// 40 worker cores).
	Workers int
	// Partitions is k, the number of splits; zero defaults to Workers.
	Partitions int
	// MinPts stands in for the paper's constant 100 (which suits
	// billion-point data); it defaults to 20 at reduced N.
	MinPts int
	// Rho is the dictionary approximation rate (paper default 0.01).
	Rho float64
	// Density multiplies point density relative to the calibrated
	// reference: the simulated worlds are sized for N/Density points
	// while N points are sampled. The paper's billion-point runs put
	// hundreds of points in every eps-neighborhood; Density ~ 5-10
	// reproduces that regime at laptop-scale N. Zero means 1.
	Density float64
	// Seed makes runs reproducible.
	Seed int64
	// SerialMerge selects the pairwise tournament merge for RP-DBSCAN runs
	// (core.Config.SerialMerge): the anatomy experiments need its per-round
	// edge telemetry (Table 7), everything else uses the flat merge.
	SerialMerge bool
}

// DefaultScale returns the scale used by cmd/rpbench without flags.
func DefaultScale() Scale {
	return Scale{N: 20000, Workers: 40, Rho: 0.01, Seed: 1}
}

// QuickScale returns a small scale suitable for tests and smoke benches.
func QuickScale() Scale {
	return Scale{N: 3000, Workers: 8, Rho: 0.01, Seed: 1}
}

func (s Scale) norm() Scale {
	if s.N == 0 {
		s.N = 20000
	}
	if s.Workers == 0 {
		s.Workers = 40
	}
	if s.Partitions == 0 {
		s.Partitions = s.Workers
	}
	if s.Rho == 0 {
		s.Rho = 0.01
	}
	return s
}

// minPtsFor resolves the effective minPts: an explicit Scale.MinPts wins,
// otherwise the per-data-set calibrated default applies.
func (s Scale) minPtsFor(def int) int {
	if s.MinPts > 0 {
		return s.MinPts
	}
	return def
}

// Algorithms, in the paper's presentation order (Table 2).
const (
	AlgoSpark = "SPARK-DBSCAN"
	AlgoNG    = "NG-DBSCAN"
	AlgoESP   = "ESP-DBSCAN"
	AlgoRBP   = "RBP-DBSCAN"
	AlgoCBP   = "CBP-DBSCAN"
	AlgoRP    = "RP-DBSCAN"
)

// AllAlgorithms lists the six compared parallel algorithms.
func AllAlgorithms() []string {
	return []string{AlgoSpark, AlgoNG, AlgoESP, AlgoRBP, AlgoCBP, AlgoRP}
}

// AlgoResult is the unified outcome of one algorithm run.
type AlgoResult struct {
	Algorithm   string
	Elapsed     time.Duration // simulated on Scale.Workers
	Imbalance   float64       // slowest/fastest local-clustering task
	Processed   int64         // summed points over all splits
	Labels      []int
	NumClusters int
	Report      *engine.Report

	// RP-DBSCAN extras.
	EdgesPerRound []int64
	DictSizeBits  int64
	DictBytes     int
	Cells         int
	SubCells      int
}

// RunAlgorithm executes one named algorithm over pts. The run's cluster
// feeds the obs event sink, so experiment stages update the expvar
// counters and log (stage events at debug level) through slog.Default.
func RunAlgorithm(algo string, pts *geom.Points, eps float64, minPts int, s Scale) (*AlgoResult, error) {
	s = s.norm()
	cl := engine.New(s.Workers)
	cl.Sink = obs.NewSink(slog.Default())
	out := &AlgoResult{Algorithm: algo, Imbalance: 1}
	switch algo {
	case AlgoRP:
		res, err := core.Run(pts, core.Config{
			Eps: eps, MinPts: minPts, Rho: s.Rho,
			NumPartitions: s.Partitions, Seed: s.Seed,
			SerialMerge: s.SerialMerge,
		}, cl)
		if err != nil {
			return nil, err
		}
		out.Labels = res.Labels
		out.NumClusters = res.NumClusters
		out.Processed = res.PointsProcessed
		out.EdgesPerRound = res.EdgesPerRound
		out.DictSizeBits = res.DictSizeBits
		out.DictBytes = res.DictBytes
		out.Cells = res.NumCells
		out.SubCells = res.NumSubCells
		out.Report = res.Report
		if st := res.Report.Stage("cell-graph-construction"); st != nil {
			out.Imbalance = st.Imbalance()
		}
	case AlgoESP, AlgoRBP, AlgoCBP, AlgoSpark:
		cfg := regionsplit.Config{
			Eps: eps, MinPts: minPts, Rho: s.Rho,
			NumRegions: s.Partitions, ExactLocal: algo == AlgoSpark,
		}
		var res *regionsplit.Result
		switch algo {
		case AlgoESP:
			res = esp.Run(pts, cfg, cl)
		case AlgoRBP:
			res = rbp.Run(pts, cfg, cl)
		default: // CBP and SPARK share cost-based partitioning
			res = cbp.Run(pts, cfg, cl)
		}
		out.Labels = res.Labels
		out.NumClusters = res.NumClusters
		out.Processed = res.PointsProcessed
		out.Report = res.Report
		if st := res.Report.Stage("local-clustering"); st != nil {
			out.Imbalance = st.Imbalance()
		}
	case AlgoNG:
		res := ngdbscan.Run(pts, ngdbscan.Config{
			Eps: eps, MinPts: minPts, Seed: s.Seed,
		}, cl)
		out.Labels = res.Labels
		out.NumClusters = res.NumClusters
		out.Processed = int64(pts.N())
		out.Report = res.Report
		if st := res.Report.Stage("ng-iteration-1"); st != nil {
			out.Imbalance = st.Imbalance()
		}
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", algo)
	}
	out.Elapsed = out.Report.SimulatedElapsed()
	return out, nil
}

// SuiteDatasets generates the four simulated Table 3 stand-ins at the
// scale's size and density.
func SuiteDatasets(s Scale) []datagen.Dataset {
	s = s.norm()
	worldN := s.N
	if s.Density > 1 {
		worldN = int(float64(s.N) / s.Density)
	}
	return datagen.SuiteWorld(s.N, worldN, s.Seed)
}
