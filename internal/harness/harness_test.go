package harness

import (
	"fmt"
	"math"
	"testing"
)

func quick() Scale {
	s := QuickScale()
	s.N = 2500
	return s
}

func TestRunAlgorithmUnknown(t *testing.T) {
	s := quick()
	ds := SuiteDatasets(s)[0]
	if _, err := RunAlgorithm("NOPE", ds.Points, 1, 10, s); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// retryTiming runs a wall-clock-sensitive assertion up to three times: the
// engine measures real task durations, which scheduling noise on a busy
// machine can distort arbitrarily, so a single unlucky run must not fail
// the suite. A genuine regression fails all attempts.
func retryTiming(t *testing.T, name string, attempt func() error) {
	t.Helper()
	var err error
	for i := 0; i < 3; i++ {
		if err = attempt(); err == nil {
			return
		}
		t.Logf("%s attempt %d: %v", name, i+1, err)
	}
	t.Fatal(err)
}

func TestEfficiencySubset(t *testing.T) {
	s := quick()
	s.N = 4000
	// The paper's regime: eps-neighborhoods hold hundreds of points, so
	// per-point work tracks local density and region splits of even point
	// count still imbalance badly on skewed data.
	s.Density = 5
	retryTiming(t, "efficiency-subset", func() error {
		rows, err := Efficiency(s, EfficiencyConfig{
			Datasets:   []string{"SimGeoLife"},
			Algorithms: []string{AlgoESP, AlgoRP},
			EpsIndices: []int{3},
		})
		if err != nil {
			return err
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %d, want 2", len(rows))
		}
		var esp, rp EfficiencyRow
		for _, r := range rows {
			switch r.Algorithm {
			case AlgoESP:
				esp = r
			case AlgoRP:
				rp = r
			}
		}
		// Structural facts hold regardless of timing noise.
		if rp.Processed != int64(s.N) {
			t.Fatalf("RP processed %d points, want exactly %d (no duplication)", rp.Processed, s.N)
		}
		if esp.Processed < int64(s.N) {
			t.Fatalf("ESP processed %d points, want >= %d", esp.Processed, s.N)
		}
		if rp.Imbalance < 1 || esp.Imbalance < 1 {
			t.Fatal("imbalance below 1")
		}
		if rp.Clusters == 0 {
			t.Fatal("RP found no clusters on SimGeoLife")
		}
		// The heavily skewed set is the paper's showcase: pseudo random
		// partitioning must balance load at least as well as even-split
		// regions.
		if rp.Imbalance > esp.Imbalance*1.5 {
			return fmt.Errorf("RP imbalance %.2f much worse than ESP %.2f on skewed data", rp.Imbalance, esp.Imbalance)
		}
		return nil
	})
}

func TestBreakdownSumsToOne(t *testing.T) {
	s := quick()
	rows, err := Breakdown(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		var sum float64
		for _, f := range r.Phases {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: phase fractions sum to %v", r.Dataset, sum)
		}
		if len(r.Order) != 5 {
			t.Fatalf("%s: %d phases, want 5", r.Dataset, len(r.Order))
		}
	}
}

func TestSpeedUpRPMonotone(t *testing.T) {
	s := quick()
	s.N = 8000
	s.Density = 20 // Phase II must dominate for parallelism to pay off
	retryTiming(t, "speed-up", func() error {
		rows, err := SpeedUp(s, AlgoRP)
		if err != nil {
			return err
		}
		if len(rows) != 1 {
			t.Fatalf("rows = %d", len(rows))
		}
		su := rows[0].SpeedUp
		if su[0] != 1 {
			t.Fatalf("base speed-up = %v, want 1", su[0])
		}
		for i := 1; i < len(su); i++ {
			if su[i] < su[i-1]-1e-9 {
				t.Fatalf("speed-up not monotone: %v", su)
			}
		}
		// More workers must buy a clear gain at 8x the base cluster. The
		// magnitude at this reduced scale is bounded by the broadcast
		// load floor, which the paper's data sizes amortise away.
		if su[len(su)-1] <= 1.25 {
			return fmt.Errorf("speed-up at 40 workers = %.2f, want > 1.25", su[len(su)-1])
		}
		return nil
	})
}

func TestAccuracyTable(t *testing.T) {
	s := quick()
	rows, err := Accuracy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 sets x 3 rhos)", len(rows))
	}
	for _, r := range rows {
		if r.RandIndex < 0.95 {
			t.Errorf("%s rho=%.2f: RandIndex %.4f < 0.95", r.Dataset, r.Rho, r.RandIndex)
		}
		if r.Rho == 0.01 && r.RandIndex < 0.99 {
			t.Errorf("%s rho=0.01: RandIndex %.4f < 0.99", r.Dataset, r.RandIndex)
		}
	}
}

func TestDictionarySizeTrends(t *testing.T) {
	s := quick()
	rows, err := DictionarySize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	// Within each data set, the dictionary shrinks as eps grows
	// (Table 5's trend), and it is always a compact fraction of the data.
	byDS := map[string][]DictSizeRow{}
	for _, r := range rows {
		if r.Ratio <= 0 {
			t.Fatalf("%s eps=%g: ratio %v", r.Dataset, r.Eps, r.Ratio)
		}
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for ds, rs := range byDS {
		for i := 1; i < len(rs); i++ {
			if rs[i].Bits > rs[i-1].Bits {
				t.Errorf("%s: dictionary grew with eps: %d -> %d bits", ds, rs[i-1].Bits, rs[i].Bits)
			}
		}
	}
}

func TestEdgeReductionMonotone(t *testing.T) {
	s := quick()
	rows, err := EdgeReduction(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for i := 1; i < len(r.Edges); i++ {
			if r.Edges[i] > r.Edges[i-1] {
				t.Fatalf("%s eps=%g: edges grew: %v", r.Dataset, r.Eps, r.Edges)
			}
		}
	}
}

func TestSkewStatsRise(t *testing.T) {
	s := quick()
	rows := SkewStats(s)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[3].TopCellShare <= rows[0].TopCellShare {
		t.Fatalf("concentration did not rise with alpha: %v vs %v",
			rows[0].TopCellShare, rows[3].TopCellShare)
	}
}

func TestSkewDictionaryTrends(t *testing.T) {
	s := quick()
	rows, err := SkewDictionarySize(s)
	if err != nil {
		t.Fatal(err)
	}
	// Table 8 trends: size shrinks as alpha rises (per dim) and grows
	// with dim (per alpha).
	get := func(dim int, alpha float64) int64 {
		for _, r := range rows {
			if r.Dim == dim && r.Alpha == alpha {
				return r.Bits
			}
		}
		t.Fatalf("missing row dim=%d alpha=%v", dim, alpha)
		return 0
	}
	alphas := SkewAlphas()
	for _, dim := range []int{3, 4, 5} {
		for i := 1; i < len(alphas); i++ {
			if get(dim, alphas[i]) > get(dim, alphas[i-1]) {
				t.Errorf("dim %d: dictionary grew with skew", dim)
			}
		}
	}
	for _, a := range alphas {
		if get(5, a) < get(3, a) {
			t.Errorf("alpha %v: dictionary shrank with dimension", a)
		}
	}
}

func TestSizeScalingGrows(t *testing.T) {
	s := quick()
	rows, err := SizeScaling(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[4].N != rows[0].N*16 {
		t.Fatalf("size range wrong: %d vs %d", rows[0].N, rows[4].N)
	}
	if rows[4].Elapsed <= rows[0].Elapsed {
		t.Fatalf("elapsed did not grow with size: %v vs %v", rows[0].Elapsed, rows[4].Elapsed)
	}
}

// TestPhase2SweepShape checks the sweep structure and, most importantly,
// that every mode's clustering is byte-identical to the blocked path's
// (Rand index exactly 1).
func TestPhase2SweepShape(t *testing.T) {
	s := quick()
	rows, err := Phase2(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, dim := range phase2Dims {
		modes := 2
		if dim == 2 {
			modes = 3
		}
		want += 2 * modes // two N values per dim
	}
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.RandIndex != 1 {
			t.Fatalf("mode %s (n=%d dim=%d): Rand index %v, want exactly 1", r.Mode, r.N, r.Dim, r.RandIndex)
		}
		if r.Mode == "batched" && r.Speedup != 1 {
			t.Fatalf("batched row speedup = %v, want 1", r.Speedup)
		}
		if r.StageMillis <= 0 {
			t.Fatalf("mode %s (n=%d dim=%d): non-positive stage time", r.Mode, r.N, r.Dim)
		}
	}
}

// TestPhase3Identical checks that every flat-merge row reproduces the
// tournament's components exactly, at every worker count.
func TestPhase3Identical(t *testing.T) {
	s := quick()
	rows, err := Phase3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (tournament + 4 flat)", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("mode %s workers=%d diverged from the tournament", r.Mode, r.Workers)
		}
		if r.Edges == 0 {
			t.Fatal("generated subgraphs have no edges")
		}
	}
}
