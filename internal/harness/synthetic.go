package harness

// Appendix B experiments on synthetic Gaussian mixtures: data skewness
// (Figures 18-19, Table 8) and data size (Figures 20-21).

import (
	"time"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/geom"
)

// synthEps is the eps the appendix uses on [0,100]^d mixtures.
const synthEps = 5.0

// SkewAlphas are the skewness coefficients of Appendix B.1.
func SkewAlphas() []float64 { return []float64{1.0 / 8, 1.0 / 4, 1.0 / 2, 1} }

// synthMixture builds the appendix mixture: ten components on [0,100]^dim.
func synthMixture(n, dim int, alpha float64, seed int64) *geom.Points {
	return datagen.Mixture(datagen.MixtureConfig{
		N: n, Dim: dim, Components: 10, Span: 100, Alpha: alpha,
	}, seed)
}

// SkewStatsRow describes one Figure 18 data set: how concentrated the
// mixture is at each skewness coefficient (the paper shows scatter plots;
// we report the occupancy share of the densest 1% of coarse space).
type SkewStatsRow struct {
	Alpha float64
	// TopCellShare is the fraction of points in the single densest
	// coarse cell (5-unit grid) — rises with alpha.
	TopCellShare float64
}

// SkewStats summarises the Figure 18 data sets (2-d mixtures).
func SkewStats(s Scale) []SkewStatsRow {
	s = s.norm()
	var rows []SkewStatsRow
	for _, alpha := range SkewAlphas() {
		pts := synthMixture(s.N, 2, alpha, s.Seed)
		counts := map[[2]int]int{}
		for i := 0; i < pts.N(); i++ {
			p := pts.At(i)
			counts[[2]int{int(p[0] / 5), int(p[1] / 5)}]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		rows = append(rows, SkewStatsRow{Alpha: alpha, TopCellShare: float64(max) / float64(pts.N())})
	}
	return rows
}

// SkewDictRow is one cell of Table 8: dictionary size for a mixture at one
// (dim, alpha).
type SkewDictRow struct {
	Dim   int
	Alpha float64
	Bytes int
	Bits  int64
}

// SkewDictionarySize reproduces Table 8: the dictionary shrinks as skew
// rises (fewer non-empty cells) and grows with dimensionality.
func SkewDictionarySize(s Scale) ([]SkewDictRow, error) {
	s = s.norm()
	var rows []SkewDictRow
	for _, dim := range []int{3, 4, 5} {
		for _, alpha := range SkewAlphas() {
			pts := synthMixture(s.N, dim, alpha, s.Seed)
			res, err := RunAlgorithm(AlgoRP, pts, synthEps, s.minPtsFor(20), s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SkewDictRow{Dim: dim, Alpha: alpha, Bytes: res.DictBytes, Bits: res.DictSizeBits})
		}
	}
	return rows, nil
}

// SkewRunRow is one point of Figure 19: RP-DBSCAN's load imbalance and
// elapsed time at one (dim, alpha).
type SkewRunRow struct {
	Dim       int
	Alpha     float64
	Imbalance float64
	Elapsed   time.Duration
}

// SkewImpact reproduces Figure 19: load imbalance grows mildly with data
// skewness — nowhere near the region-split blowup — and elapsed time
// follows.
func SkewImpact(s Scale) ([]SkewRunRow, error) {
	s = s.norm()
	var rows []SkewRunRow
	for _, dim := range []int{3, 4, 5} {
		for _, alpha := range SkewAlphas() {
			pts := synthMixture(s.N, dim, alpha, s.Seed)
			res, err := RunAlgorithm(AlgoRP, pts, synthEps, s.minPtsFor(20), s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SkewRunRow{Dim: dim, Alpha: alpha, Imbalance: res.Imbalance, Elapsed: res.Elapsed})
		}
	}
	return rows, nil
}

// SizeRunRow is one point of Figures 20-21: elapsed time and phase
// breakdown at one data size multiplier.
type SizeRunRow struct {
	// Multiplier scales the base N (the paper runs 5-80 GB, a x16
	// range).
	Multiplier int
	N          int
	Elapsed    time.Duration
	Phases     map[string]float64
	Order      []string
}

// SizeScaling reproduces Figure 20 (near-linear elapsed time in data size)
// and Figure 21 (Phase II's share grows with size) on the appendix's 5-d
// mixture at alpha = 8.
func SizeScaling(s Scale) ([]SizeRunRow, error) {
	s = s.norm()
	base := s.N / 4
	if base < 500 {
		base = 500
	}
	// Warm-up run: the first run after process start pays one-off costs
	// (page faults, allocator growth) comparable to the smallest measured
	// run now that the kernels are this fast, which would invert the
	// size/time trend.
	if _, err := RunAlgorithm(AlgoRP, synthMixture(base, 5, 8, s.Seed), synthEps, s.minPtsFor(20), s); err != nil {
		return nil, err
	}
	var rows []SizeRunRow
	for _, mult := range []int{1, 2, 4, 8, 16} {
		n := base * mult
		pts := synthMixture(n, 5, 8, s.Seed)
		res, err := RunAlgorithm(AlgoRP, pts, synthEps, s.minPtsFor(20), s)
		if err != nil {
			return nil, err
		}
		m, order := res.Report.PhaseBreakdown()
		total := res.Elapsed
		ph := make(map[string]float64, len(m))
		for k, v := range m {
			if total > 0 {
				ph[k] = float64(v) / float64(total)
			}
		}
		rows = append(rows, SizeRunRow{
			Multiplier: mult, N: n, Elapsed: total, Phases: ph, Order: order,
		})
	}
	return rows, nil
}
