package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/pointio"
)

// StreamRow reports one cell of the out-of-core sweep: the same data set
// clustered by the in-memory pipeline and by RunStream reading it back
// from disk, at one size multiplier. The chunk size is fixed from the base
// scale, so growing the multiplier grows the data set relative to the
// chunk budget — the peak Phase I heap must NOT follow.
type StreamRow struct {
	// Multiplier scales the base N; the chunk budget stays fixed.
	Multiplier int `json:"multiplier"`
	N          int `json:"n"`
	ChunkSize  int `json:"chunk_size"`
	Workers    int `json:"workers"`
	// Identical reports whether the streamed labels and core flags came
	// out byte-identical to the in-memory run. Anything but true is a
	// correctness bug.
	Identical bool `json:"identical"`
	// Stream accounting (see core.StreamStats).
	Chunks       int   `json:"chunks"`
	SpillBytes   int64 `json:"spill_bytes"`
	SpillReloads int64 `json:"spill_reloads"`
	// PeakPhase1HeapBytes is the peak live heap measured during the
	// streamed Phase I (sampled at chunk boundaries after a forced GC),
	// as a delta over the pre-run baseline heap.
	PeakPhase1HeapBytes int64 `json:"peak_phase1_heap_bytes"`
	// HeapCeilingBytes is the admissible ceiling: a fixed slack plus
	// terms proportional to chunk size times real parallelism and to the
	// spill writers' buffers — notably NOT proportional to N.
	HeapCeilingBytes int64 `json:"heap_ceiling_bytes"`
	WithinCeiling    bool  `json:"within_ceiling"`
	// Simulated makespans of the two pipelines on the virtual cluster.
	RunMillis    float64 `json:"run_millis"`
	StreamMillis float64 `json:"stream_millis"`
	// Wall-clock times (real), for the I/O overhead picture.
	RunWallMillis    float64 `json:"run_wall_millis"`
	StreamWallMillis float64 `json:"stream_wall_millis"`
}

// streamHeapCeiling computes the admissible peak live-heap delta for the
// streamed Phase I: fixed slack (runtime noise, harness bookkeeping, the
// retained baseline labels) + per-in-flight-chunk working set (the chunk
// buffer plus its cell map and run-cell copies, ~4x the raw buffer) times
// the real parallelism + the k spill writers' 64 KiB buffers. No term
// depends on N.
func streamHeapCeiling(chunkSize, dim, par, k int) int64 {
	const slack = 8 << 20
	chunkBytes := int64(chunkSize) * int64(dim) * 8
	return slack + 4*chunkBytes*int64(par+2) + int64(k)<<16
}

// heapLive forces a GC and returns the live heap.
func heapLive() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// Stream runs the out-of-core differential benchmark: for each size
// multiplier the same synthetic mixture is clustered in memory, written to
// a binary file, released, and re-clustered by RunStream reading the file —
// asserting byte-identical labels and a Phase I heap bounded by the
// chunk budget, independent of N.
func Stream(s Scale) ([]StreamRow, error) {
	s = s.norm()
	// Fix the chunk budget from the BASE scale: multipliers then grow the
	// data set relative to it (the largest set is >= 10x the budget).
	chunkSize := s.N / 10
	if chunkSize < 1 {
		chunkSize = 1
	}
	dir, err := os.MkdirTemp("", "rpdbscan-streambench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var rows []StreamRow
	for _, mult := range []int{1, 2, 4} {
		n := s.N * mult
		pts := synthMixture(n, 2, 3, s.Seed)
		dim := pts.Dim
		cfg := core.Config{
			Eps: synthEps, MinPts: s.minPtsFor(20), Rho: s.Rho,
			NumPartitions: s.Partitions, Seed: s.Seed,
		}
		base, err := core.Run(pts, cfg, engine.New(s.Workers))
		if err != nil {
			return nil, err
		}
		// Park the data set on disk and release the in-memory copy, so
		// the streamed run's heap reflects the pipeline, not the harness.
		path := filepath.Join(dir, fmt.Sprintf("x%d.rppt", mult))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := pointio.WriteBinary(f, pts); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		pts = nil
		baseLabels, baseCore := base.Labels, base.CorePoint
		runMs := millis(base.Report.SimulatedElapsed())
		runWallMs := millis(base.Report.WallElapsed())
		base = nil

		in, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		src, err := pointio.NewBinaryChunkReader(in)
		if err != nil {
			in.Close()
			return nil, err
		}
		cl := engine.New(s.Workers)
		heap0 := heapLive()
		var peak int64
		nProbes := 0
		probe := func(label string) {
			// Sampling GCs are expensive; every 4th chunk plus the
			// spill-close boundary keeps the picture without dominating
			// the run.
			if label == "chunk" {
				nProbes++
				if nProbes%4 != 1 {
					return
				}
			} else if label != "spill-closed" {
				return
			}
			if h := heapLive() - heap0; h > peak {
				peak = h
			}
		}
		res, err := core.RunStream(src, core.StreamConfig{
			Config: cfg, ChunkSize: chunkSize, SpillDir: dir, Probe: probe,
		}, cl)
		in.Close()
		if err != nil {
			return nil, err
		}
		ceiling := streamHeapCeiling(chunkSize, dim, cl.Parallelism, s.Partitions)
		rows = append(rows, StreamRow{
			Multiplier:          mult,
			N:                   n,
			ChunkSize:           chunkSize,
			Workers:             s.Workers,
			Identical:           equalLabels(baseLabels, res.Labels) && equalBools(baseCore, res.CorePoint),
			Chunks:              res.Stream.Chunks,
			SpillBytes:          res.Stream.SpillBytes,
			SpillReloads:        res.Stream.SpillReloads,
			PeakPhase1HeapBytes: peak,
			HeapCeilingBytes:    ceiling,
			WithinCeiling:       peak <= ceiling,
			RunMillis:           runMs,
			StreamMillis:        millis(res.Report.SimulatedElapsed()),
			RunWallMillis:       runWallMs,
			StreamWallMillis:    millis(res.Report.WallElapsed()),
		})
	}
	return rows, nil
}
