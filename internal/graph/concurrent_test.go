package graph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// Property: the concurrent union-find reaches exactly the partition the
// sequential UnionFind reaches on the same edge set (applied here without
// concurrency; the stress tests below add the interleavings).
func TestConcurrentUnionFindMatchesSequential(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8%50) + 2
		m := int(m8 % 120)
		seq := NewUnionFind(n)
		con := NewConcurrentUnionFind(n)
		for i := 0; i < m; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if seq.Union(a, b) != con.Union(a, b) {
				return false
			}
		}
		sc := canonical(seq, n)
		cc := canonicalConcurrent(con, n)
		for i := range sc {
			if sc[i] != cc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 105, 300)); err != nil {
		t.Fatal(err)
	}
}

// canonicalConcurrent densifies a quiesced concurrent union-find the same
// way canonical does for the sequential one.
func canonicalConcurrent(u *ConcurrentUnionFind, n int) []int {
	ids := map[int]int{}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		root := u.Find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		out[i] = id
	}
	return out
}

// Property: after all unions, every element's root is the minimum id of its
// component — the invariant that makes parallel merging deterministic.
func TestConcurrentUnionFindMinRoot(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8%50) + 2
		u := NewConcurrentUnionFind(n)
		for i := 0; i < int(m8%120); i++ {
			u.Union(r.Intn(n), r.Intn(n))
		}
		// min[root(i)] over members must equal root(i) itself.
		min := map[int]int{}
		for i := 0; i < n; i++ {
			root := u.Find(i)
			if m, ok := min[root]; !ok || i < m {
				min[root] = i
			}
		}
		for root, m := range min {
			if root != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 106, 300)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentUnionFindStress hammers one union-find from many
// goroutines with adversarial interleavings — overlapping shards, repeated
// edges, chains designed to maximise root contention — and checks three
// things: the partition equals the sequential oracle's, every component's
// root is its minimum element, and the number of true Union returns across
// all goroutines equals the spanning-forest size (each forest edge is won
// exactly once). Run under -race in CI.
func TestConcurrentUnionFindStress(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n, m    int
		workers int
		seed    int64
	}{
		{"sparse", 2000, 1500, 8, 1},
		{"dense", 500, 8000, 8, 2},
		{"chain", 4000, 3999, 16, 3},
		{"two-workers", 1000, 4000, 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(tc.seed))
			edges := make([][2]int, tc.m)
			if tc.name == "chain" {
				// Worst case for min-root linking: a path applied from
				// every direction at once.
				for i := range edges {
					edges[i] = [2]int{i, i + 1}
				}
			} else {
				for i := range edges {
					edges[i] = [2]int{r.Intn(tc.n), r.Intn(tc.n)}
				}
			}
			seq := NewUnionFind(tc.n)
			var wantForest int64
			for _, e := range edges {
				if seq.Union(e[0], e[1]) {
					wantForest++
				}
			}
			con := NewConcurrentUnionFind(tc.n)
			wins := make([]int64, tc.workers)
			var wg sync.WaitGroup
			for w := 0; w < tc.workers; w++ {
				wg.Add(1)
				// Each worker applies ALL edges in its own shuffled order:
				// maximal overlap, every edge raced tc.workers times.
				order := rand.New(rand.NewSource(tc.seed + int64(w))).Perm(len(edges))
				go func(w int, order []int) {
					defer wg.Done()
					for _, i := range order {
						if con.Union(edges[i][0], edges[i][1]) {
							wins[w]++
						}
					}
				}(w, order)
			}
			wg.Wait()
			var gotForest int64
			for _, c := range wins {
				gotForest += c
			}
			if gotForest != wantForest {
				t.Fatalf("forest edges won %d times, want %d", gotForest, wantForest)
			}
			sc := canonical(seq, tc.n)
			cc := canonicalConcurrent(con, tc.n)
			for i := range sc {
				if sc[i] != cc[i] {
					t.Fatalf("partition diverged at %d", i)
				}
			}
			for i := 0; i < tc.n; i++ {
				root := con.Find(i)
				if root > i {
					t.Fatalf("root %d of %d is not the component minimum", root, i)
				}
			}
		})
	}
}

// Property: the flat lock-free merge produces exactly the tournament's
// clustering — components, cluster count, partial predecessors, and the
// post-merge edge total — on random partition-style subgraphs. This is the
// merge-order-invariance property extended to the lock-free path.
func TestFlatMergeMatchesTournament(t *testing.T) {
	f := func(seed int64) bool {
		const numCells, k = 40, 6
		build := func() []*Graph {
			return randomSubgraphs(rand.New(rand.NewSource(seed)), numCells, k)
		}
		global := Tournament(build(), nil, nil)
		wantComp, wantN := global.CoreComponents()
		wantPreds := global.PartialPredecessors()
		wantPost := int64(global.NumEdges())

		flat := FlatMerge(build(), 4)
		if flat.Clusters != wantN {
			return false
		}
		for i := range wantComp {
			if flat.Comp[i] != wantComp[i] {
				return false
			}
		}
		if flat.ForestEdges+flat.PartialEdges != wantPost {
			return false
		}
		if len(flat.Preds) != len(wantPreds) {
			return false
		}
		for to, want := range wantPreds {
			got := flat.Preds[to]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 107, 150)); err != nil {
		t.Fatal(err)
	}
}

// Property: FlatMerge is invariant in its worker count, and re-applying a
// subgraph (the engine's retry/speculation semantics) changes nothing.
func TestFlatMergeWorkerInvarianceAndIdempotence(t *testing.T) {
	f := func(seed int64) bool {
		const numCells, k = 30, 5
		build := func() []*Graph {
			return randomSubgraphs(rand.New(rand.NewSource(seed)), numCells, k)
		}
		one := FlatMerge(build(), 1)
		many := FlatMerge(build(), 8)
		// Doubled: every subgraph merged twice into the same union-find.
		gs := build()
		types := GlobalTypes(gs)
		uf := NewConcurrentUnionFind(numCells)
		var all []EdgeKey
		for _, g := range gs {
			all = g.MergeInto(types, uf, all)
		}
		for _, g := range gs {
			g.MergeInto(types, uf, nil) // retried attempt, fresh collection
		}
		comp, clusters, forest := FlatComponents(types, uf)
		_, partial := Predecessors(all)
		for _, other := range []*FlatResult{many, {Comp: comp, Clusters: clusters, ForestEdges: forest, PartialEdges: partial}} {
			if other.Clusters != one.Clusters ||
				other.ForestEdges != one.ForestEdges ||
				other.PartialEdges != one.PartialEdges {
				return false
			}
			for i := range one.Comp {
				if other.Comp[i] != one.Comp[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 108, 120)); err != nil {
		t.Fatal(err)
	}
}
