package graph

// Ablation benchmark for the spanning-forest edge reduction of Section
// 6.1.4: merging with reduction keeps later tournament rounds small;
// without it, cyclic full edges accumulate.

import (
	"math/rand"
	"testing"
)

// denseSubgraphs builds k subgraphs over a clustered cell universe where
// each partition contributes many full edges inside shared dense blocks —
// the situation edge reduction exists for.
func denseSubgraphs(k, blocks, blockSize int, seed int64) []*Graph {
	r := rand.New(rand.NewSource(seed))
	nCells := blocks * blockSize
	gs := make([]*Graph, k)
	for i := range gs {
		gs[i] = New(nCells)
	}
	owner := make([]int, nCells)
	for c := range owner {
		owner[c] = r.Intn(k)
		gs[owner[c]].SetVertex(int32(c), Core)
	}
	for b := 0; b < blocks; b++ {
		base := b * blockSize
		for i := 0; i < blockSize; i++ {
			from := int32(base + i)
			for e := 0; e < 8; e++ {
				to := int32(base + r.Intn(blockSize))
				gs[owner[from]].AddEdge(from, to)
			}
		}
	}
	return gs
}

func BenchmarkTournamentWithReduction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gs := denseSubgraphs(16, 40, 60, 1)
		b.StartTimer()
		Tournament(gs, nil, nil)
	}
}

func BenchmarkTournamentNoReduction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gs := denseSubgraphs(16, 40, 60, 1)
		b.StartTimer()
		// Same tournament, but matches keep cycles.
		for len(gs) > 1 {
			n := len(gs) / 2
			odd := len(gs)%2 == 1
			for j := 0; j < n; j++ {
				gs[2*j].MergeKeepingCycles(gs[2*j+1])
				if odd && j == n-1 {
					gs[2*j].MergeKeepingCycles(gs[2*j+2])
				}
			}
			next := make([]*Graph, 0, n)
			for j := 0; j < n; j++ {
				next = append(next, gs[2*j])
			}
			gs = next
		}
	}
}

// MergeKeepingCycles must produce the same clustering as Merge.
func TestMergeKeepingCyclesSameClusters(t *testing.T) {
	a := denseSubgraphs(8, 10, 20, 3)
	b := denseSubgraphs(8, 10, 20, 3)
	g1 := Tournament(a, nil, nil)
	g2 := b[0]
	for _, g := range b[1:] {
		g2.MergeKeepingCycles(g)
	}
	c1, n1 := g1.CoreComponents()
	c2, n2 := g2.CoreComponents()
	if n1 != n2 {
		t.Fatalf("cluster counts differ: %d vs %d", n1, n2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("cell %d: cluster %d vs %d", i, c1[i], c2[i])
		}
	}
	if g2.NumEdges() <= g1.NumEdges() {
		t.Fatalf("no-reduction kept %d edges, reduction kept %d — ablation not exercising cycles",
			g2.NumEdges(), g1.NumEdges())
	}
}
