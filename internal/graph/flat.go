package graph

// Flat merging: the lock-free alternative to the pairwise Tournament.
// Instead of merging subgraphs in O(log k) rounds — each round serialising
// every surviving graph's edges through a single-threaded UnionFind — the
// flat merge first publishes every cell's globally determined type (each
// cell is owned by exactly one partition, so the writes are disjoint), then
// lets one worker per subgraph classify its edges against the global types
// and apply full edges straight to a shared ConcurrentUnionFind. No graph
// is ever materialised beyond the original subgraphs; partial edges are
// collected per worker and deduplicated once at the end.
//
// The result is identical to the tournament's by construction: connectivity
// over the same full-edge set (union-find is order-invariant), the same
// deduplicated partial-edge set, and the same dense component ids — the
// min-index linking of ConcurrentUnionFind makes every component's final
// root its smallest cell id, so ascending-id extraction assigns ids in
// ascending order of each component's smallest member, exactly like
// Graph.CoreComponents. Property tests in this package pin all of that.

import (
	"sort"
	"sync"
)

// ForEachEdge calls fn for every edge of the graph with its currently
// stored type, in a deterministic order (full, then partial, then
// undetermined, each set sorted). Full edges are canonical (From < To).
func (g *Graph) ForEachEdge(fn func(from, to int32, t EdgeType)) {
	g.full.compact()
	g.partial.compact()
	g.undet.compact()
	for _, e := range g.full.sorted {
		fn(e.From, e.To, EdgeFull)
	}
	for _, e := range g.partial.sorted {
		fn(e.From, e.To, EdgePartial)
	}
	for _, e := range g.undet.sorted {
		fn(e.From, e.To, EdgeUndetermined)
	}
}

// OwnedTypes calls fn(id, type) for every cell this subgraph has
// determined. The flat merge uses it to publish each partition's share of
// the global type table.
func (g *Graph) OwnedTypes(fn func(id int32, t VertexType)) {
	for id, t := range g.Type {
		if t != Undetermined {
			fn(int32(id), t)
		}
	}
}

// MergeInto applies this subgraph's edges to a shared flat merge:
// undetermined edges are resolved against the global type table (every
// edge target must be determined there — in RP-DBSCAN every target is a
// dictionary cell and every dictionary cell is owned by some partition),
// full edges are unioned into uf, and partial edges are appended to
// partials, which is returned. Safe to call concurrently for different
// subgraphs sharing uf, and idempotent: re-applying a subgraph changes
// neither the union-find partition nor (given a fresh partials slice) the
// caller's edge collection.
func (g *Graph) MergeInto(types []VertexType, uf *ConcurrentUnionFind, partials []EdgeKey) []EdgeKey {
	g.ForEachEdge(func(from, to int32, t EdgeType) {
		if t == EdgeUndetermined {
			if types[to] == Core {
				t = EdgeFull
			} else {
				t = EdgePartial
			}
		}
		if t == EdgeFull {
			uf.Union(int(from), int(to))
		} else {
			partials = append(partials, EdgeKey{From: from, To: to})
		}
	})
	return partials
}

// FlatComponents extracts dense cluster ids from a quiesced flat merge:
// comp[id] is the cluster of core cell id (-1 for non-core cells), ids
// assigned in ascending order of each component's smallest cell id —
// byte-identical to Graph.CoreComponents on the merged graph. It also
// returns the cluster count and the spanning-forest size (the number of
// full edges a tournament's ReduceFullEdges would have kept), derived as
// #core-cells − #components, which no interleaving can change.
func FlatComponents(types []VertexType, uf *ConcurrentUnionFind) (comp []int32, clusters int, forest int64) {
	comp = make([]int32, len(types))
	var next int32
	var nCore int64
	for id := range types {
		if types[id] != Core {
			comp[id] = -1
			continue
		}
		nCore++
		root := uf.Find(id)
		if root == id {
			comp[id] = next
			next++
			continue
		}
		// Min-index linking: the final root of a component is its smallest
		// id, so root < id and comp[root] is already assigned.
		comp[id] = comp[root]
	}
	return comp, int(next), nCore - int64(next)
}

// Predecessors deduplicates the collected partial edges into the PC map of
// Algorithm 4 line 18 (non-core target -> sorted core predecessors) and
// returns the number of distinct partial edges. Output is independent of
// the input order, so it does not matter how workers interleaved their
// collections.
func Predecessors(partials []EdgeKey) (map[int32][]int32, int64) {
	sort.Slice(partials, func(i, j int) bool { return edgeLess(partials[i], partials[j]) })
	out := make(map[int32][]int32)
	var distinct int64
	var prev EdgeKey
	for i, e := range partials {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		distinct++
		out[e.To] = append(out[e.To], e.From)
	}
	for k := range out {
		s := out[k]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return out, distinct
}

// GlobalTypes assembles the global type table from partition subgraphs over
// the same cell universe (each cell determined by exactly one of them).
func GlobalTypes(gs []*Graph) []VertexType {
	if len(gs) == 0 {
		return nil
	}
	types := make([]VertexType, len(gs[0].Type))
	for _, g := range gs {
		g.OwnedTypes(func(id int32, t VertexType) { types[id] = t })
	}
	return types
}

// FlatResult is the outcome of a flat merge: everything Phase III-2 needs,
// plus the edge accounting the telemetry reports.
type FlatResult struct {
	Comp     []int32
	Clusters int
	Preds    map[int32][]int32
	// ForestEdges + PartialEdges is the post-merge edge total — equal to
	// the final edge count of a tournament over the same subgraphs.
	ForestEdges  int64
	PartialEdges int64
}

// FlatMerge merges partition subgraphs with the given number of concurrent
// workers sharing one lock-free union-find. The result is independent of
// workers; the harness and the race stress tests drive it directly, while
// core runs the same per-subgraph MergeInto bodies as engine stages.
func FlatMerge(gs []*Graph, workers int) *FlatResult {
	types := GlobalTypes(gs)
	uf := NewConcurrentUnionFind(len(types))
	if workers < 1 {
		workers = 1
	}
	if workers > len(gs) {
		workers = len(gs)
	}
	partialsPer := make([][]EdgeKey, len(gs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(gs); i += workers {
				partialsPer[i] = gs[i].MergeInto(types, uf, nil)
			}
		}(w)
	}
	wg.Wait()
	var all []EdgeKey
	for _, p := range partialsPer {
		all = append(all, p...)
	}
	res := &FlatResult{}
	res.Comp, res.Clusters, res.ForestEdges = FlatComponents(types, uf)
	res.Preds, res.PartialEdges = Predecessors(all)
	return res
}
