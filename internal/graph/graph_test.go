package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/testutil"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(4)
	if u.Connected(0, 1) {
		t.Fatal("fresh elements connected")
	}
	if !u.Union(0, 1) {
		t.Fatal("first union reported redundant")
	}
	if u.Union(1, 0) {
		t.Fatal("redundant union reported fresh")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	for i := 0; i < 4; i++ {
		if !u.Connected(0, i) {
			t.Fatalf("element %d not connected", i)
		}
	}
	if u.Len() != 4 {
		t.Fatalf("Len = %d", u.Len())
	}
	if idx := u.Add(); idx != 4 || u.Connected(0, 4) {
		t.Fatal("Add broken")
	}
}

// Property: union-find connectivity matches a naive labelling.
func TestUnionFindProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		u := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for k := 0; k < 80; k++ {
			a, b := r.Intn(n), r.Intn(n)
			u.Union(a, b)
			relabel(label[a], label[b])
		}
		for k := 0; k < 40; k++ {
			a, b := r.Intn(n), r.Intn(n)
			if u.Connected(a, b) != (label[a] == label[b]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 201, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestSetVertexPromotion(t *testing.T) {
	g := New(2)
	g.SetVertex(0, Core)
	if g.Type[0] != Core {
		t.Fatal("vertex not set")
	}
	g.SetVertex(0, NonCore) // must not demote/overwrite
	if g.Type[0] != Core {
		t.Fatal("determined vertex overwritten")
	}
}

func TestAddEdgeTyping(t *testing.T) {
	g := New(4)
	g.SetVertex(0, Core)
	g.SetVertex(1, Core)
	g.SetVertex(2, NonCore)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3) // 3 unknown
	g.AddEdge(0, 0) // self edge dropped
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if et, ok := g.EdgeTypeOf(0, 1); !ok || et != EdgeFull {
		t.Fatal("core->core edge not full")
	}
	if et, ok := g.EdgeTypeOf(0, 2); !ok || et != EdgePartial {
		t.Fatal("core->noncore edge not partial")
	}
	if et, ok := g.EdgeTypeOf(0, 3); !ok || et != EdgeUndetermined {
		t.Fatal("core->unknown edge not undetermined")
	}
}

func TestFullEdgeCanonicalisation(t *testing.T) {
	g := New(2)
	g.SetVertex(0, Core)
	g.SetVertex(1, Core)
	g.AddEdge(1, 0) // reverse direction
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("reverse full edges not deduped: %d edges", g.NumEdges())
	}
}

func TestMergePromotesAndRetypes(t *testing.T) {
	// Partition 1 owns cell 0 (core) with an edge to cell 1 (unknown).
	g1 := New(2)
	g1.SetVertex(0, Core)
	g1.AddEdge(0, 1)
	// Partition 2 owns cell 1 (core).
	g2 := New(2)
	g2.SetVertex(1, Core)

	g := g1.Merge(g2)
	if g.Type[1] != Core {
		t.Fatal("merge did not promote cell 1")
	}
	if et, ok := g.EdgeTypeOf(0, 1); !ok || et != EdgeFull {
		t.Fatal("edge not retyped to full")
	}
}

func TestReduceFullEdgesKeepsForest(t *testing.T) {
	g := New(3)
	for id := int32(0); id < 3; id++ {
		g.SetVertex(id, Core)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // closes a cycle
	g.ReduceFullEdges()
	if g.NumEdges() != 2 {
		t.Fatalf("after reduction %d edges, want 2", g.NumEdges())
	}
	comp, n := g.CoreComponents()
	if n != 1 {
		t.Fatalf("components = %d, want 1", n)
	}
	for id := 0; id < 3; id++ {
		if comp[id] != 0 {
			t.Fatalf("cell %d not in component 0: %v", id, comp)
		}
	}
}

func TestCoreComponentsSeparatesClusters(t *testing.T) {
	g := New(5)
	for id := int32(0); id < 5; id++ {
		g.SetVertex(id, Core)
	}
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	comp, n := g.CoreComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] || comp[4] == comp[2] {
		t.Fatalf("component assignment wrong: %v", comp)
	}
	// Canonical numbering: first component (smallest id) is 0.
	if comp[0] != 0 || comp[2] != 1 || comp[4] != 2 {
		t.Fatalf("component numbering not canonical: %v", comp)
	}
}

func TestCoreComponentsNonCore(t *testing.T) {
	g := New(2)
	g.SetVertex(0, Core)
	g.SetVertex(1, NonCore)
	comp, n := g.CoreComponents()
	if n != 1 || comp[0] != 0 || comp[1] != -1 {
		t.Fatalf("comp = %v, n = %d", comp, n)
	}
}

func TestPartialPredecessors(t *testing.T) {
	g := New(3)
	g.SetVertex(0, Core)
	g.SetVertex(1, Core)
	g.SetVertex(2, NonCore)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	pp := g.PartialPredecessors()
	if len(pp) != 1 || len(pp[2]) != 2 {
		t.Fatalf("PartialPredecessors = %v", pp)
	}
	if pp[2][0] != 0 || pp[2][1] != 1 {
		t.Fatal("predecessors not sorted")
	}
}

func TestTournamentRoundsAndTrace(t *testing.T) {
	// 40 subgraphs must merge in exactly 5 rounds (paper Table 7).
	gs := make([]*Graph, 40)
	for i := range gs {
		gs[i] = New(40)
		gs[i].SetVertex(int32(i), Core)
		if i > 0 {
			gs[i].AddEdge(int32(i), int32(i-1))
		}
	}
	var rounds []int
	var counts []int64
	g := Tournament(gs, func(r int, e int64) {
		rounds = append(rounds, r)
		counts = append(counts, e)
	}, nil)
	if rounds[len(rounds)-1] != 5 {
		t.Fatalf("tournament took %d rounds, want 5", rounds[len(rounds)-1])
	}
	if counts[0] != 39 {
		t.Fatalf("round 0 edges = %d, want 39", counts[0])
	}
	// Edge counts must be monotone non-increasing.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("edge counts increased: %v", counts)
		}
	}
	// A chain of 40 core cells is one cluster with 39 forest edges.
	comp, n := g.CoreComponents()
	if n != 1 {
		t.Fatalf("clusters = %d, want 1", n)
	}
	for id := range comp {
		if comp[id] != 0 {
			t.Fatalf("cell %d not in the single cluster", id)
		}
	}
	if g.NumEdges() != 39 {
		t.Fatalf("final edges = %d, want 39 (spanning tree)", g.NumEdges())
	}
}

func TestTournamentSingleGraph(t *testing.T) {
	g0 := New(2)
	g0.SetVertex(0, Core)
	g0.SetVertex(1, Core)
	g0.AddEdge(0, 1)
	g0.AddEdge(1, 0)
	g := Tournament([]*Graph{g0}, nil, nil)
	if g.NumEdges() != 1 {
		t.Fatalf("single-graph tournament left %d edges, want 1", g.NumEdges())
	}
}

func TestTournamentEmpty(t *testing.T) {
	g := Tournament(nil, nil, nil)
	if g.NumEdges() != 0 || len(g.Type) != 0 {
		t.Fatal("empty tournament not empty")
	}
}

// Property: clustering from a tournament is independent of how vertices and
// edges are split across subgraphs.
func TestTournamentPartitionInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nCells := 5 + r.Intn(20)
		type edge struct{ a, b int32 }
		var edges []edge
		for i := 0; i < nCells*2; i++ {
			a, b := int32(r.Intn(nCells)), int32(r.Intn(nCells))
			if a != b {
				edges = append(edges, edge{a, b})
			}
		}
		build := func(k int) ([]int32, int) {
			// Assign each cell to one of k partitions; each partition's
			// subgraph knows its own cells' types and outgoing edges.
			owner := make([]int, nCells)
			for i := range owner {
				owner[i] = r.Intn(k)
			}
			gs := make([]*Graph, k)
			for i := range gs {
				gs[i] = New(nCells)
			}
			for c := 0; c < nCells; c++ {
				gs[owner[c]].SetVertex(int32(c), Core)
			}
			for _, e := range edges {
				gs[owner[e.a]].AddEdge(e.a, e.b)
			}
			g := Tournament(gs, nil, nil)
			return g.CoreComponents()
		}
		c1, n1 := build(1)
		c2, n2 := build(1 + r.Intn(8))
		if n1 != n2 {
			return false
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 202, 80)); err != nil {
		t.Fatal(err)
	}
}
