package graph

// UnionFind is a disjoint-set forest with path compression and union by
// rank. It is used for the spanning-forest edge reduction of Section 6.1.4
// and for extracting clusters from the global cell graph.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns a union-find over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Add appends a new singleton element and returns its index.
func (u *UnionFind) Add() int {
	u.parent = append(u.parent, int32(len(u.parent)))
	u.rank = append(u.rank, 0)
	return len(u.parent) - 1
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := x
	for u.parent[root] != int32(root) {
		root = int(u.parent[root])
	}
	for u.parent[x] != int32(root) {
		u.parent[x], x = int32(root), int(u.parent[x])
	}
	return root
}

// Union merges the sets of a and b and reports whether they were previously
// disjoint.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool {
	return u.Find(a) == u.Find(b)
}
