package graph

import (
	"encoding/binary"
	"fmt"
)

// Wire format for a cell subgraph ("RPG1"), used when Phase II runs on the
// multi-process transport and each worker ships its partition's subgraph
// back to the driver. The conventions follow RPD2/RPS1: a magic tag, a
// whole-payload FNV-1a checksum verified before any parsing (spanning the
// body-length field and the body, so any single-byte substitution is
// detected), and bounded allocation on load. The encoding is canonical —
// sets are compacted, so edges appear sorted and deduplicated — which
// makes encode(decode(x)) byte-identical and lets differential tests
// compare subgraphs as bytes.
const (
	graphMagic = "RPG1"
	// graphHeaderSize is magic(4) + checksum(8) + bodyLen(4).
	graphHeaderSize = 4 + 8 + 4
	// maxGraphBody bounds one encoded subgraph; same defensive ceiling as
	// the spill format.
	maxGraphBody = 1 << 30
)

// Encode serialises the graph canonically. The graph is compacted as a
// side effect (pending edge appends are folded in).
func (g *Graph) Encode() []byte {
	g.full.compact()
	g.partial.compact()
	g.undet.compact()
	bodyLen := 4 + len(g.Type) + 3*4 +
		8*(len(g.full.sorted)+len(g.partial.sorted)+len(g.undet.sorted))
	buf := make([]byte, graphHeaderSize+bodyLen)
	copy(buf, graphMagic)
	binary.BigEndian.PutUint32(buf[12:], uint32(bodyLen))
	off := graphHeaderSize
	binary.BigEndian.PutUint32(buf[off:], uint32(len(g.Type)))
	off += 4
	for _, t := range g.Type {
		buf[off] = byte(t)
		off++
	}
	for _, set := range []*edgeSet{&g.full, &g.partial, &g.undet} {
		binary.BigEndian.PutUint32(buf[off:], uint32(len(set.sorted)))
		off += 4
		for _, e := range set.sorted {
			binary.BigEndian.PutUint32(buf[off:], uint32(e.From))
			binary.BigEndian.PutUint32(buf[off+4:], uint32(e.To))
			off += 8
		}
	}
	binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[12:]))
	return buf
}

// Decode parses an encoded subgraph, verifying the checksum before any
// allocation driven by length fields.
func Decode(buf []byte) (*Graph, error) {
	if len(buf) < graphHeaderSize {
		return nil, fmt.Errorf("graph: truncated header (%d bytes)", len(buf))
	}
	if string(buf[:4]) != graphMagic {
		return nil, fmt.Errorf("graph: bad magic %q", buf[:4])
	}
	want := binary.BigEndian.Uint64(buf[4:12])
	bodyLen := int(binary.BigEndian.Uint32(buf[12:16]))
	if bodyLen < 4+3*4 || bodyLen > maxGraphBody {
		return nil, fmt.Errorf("graph: implausible body length %d", bodyLen)
	}
	if len(buf) != graphHeaderSize+bodyLen {
		return nil, fmt.Errorf("graph: body is %d bytes, header promises %d",
			len(buf)-graphHeaderSize, bodyLen)
	}
	if fnv64a(buf[12:]) != want {
		return nil, fmt.Errorf("graph: checksum mismatch")
	}
	body := buf[graphHeaderSize:]
	off := 0
	numCells := int(binary.BigEndian.Uint32(body[off:]))
	off += 4
	if numCells < 0 || numCells > len(body)-off {
		return nil, fmt.Errorf("graph: %d cells cannot fit in %d remaining bytes",
			numCells, len(body)-off)
	}
	g := New(numCells)
	for i := range g.Type {
		t := VertexType(body[off])
		off++
		if t > NonCore {
			return nil, fmt.Errorf("graph: cell %d has invalid type %d", i, t)
		}
		g.Type[i] = t
	}
	for si, set := range []*edgeSet{&g.full, &g.partial, &g.undet} {
		if len(body)-off < 4 {
			return nil, fmt.Errorf("graph: truncated edge-set %d header", si)
		}
		n := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if n < 0 || n*8 > len(body)-off {
			return nil, fmt.Errorf("graph: %d edges cannot fit in %d remaining bytes",
				n, len(body)-off)
		}
		set.sorted = make([]EdgeKey, n)
		for i := range set.sorted {
			from := int32(binary.BigEndian.Uint32(body[off:]))
			to := int32(binary.BigEndian.Uint32(body[off+4:]))
			off += 8
			if from < 0 || int(from) >= numCells || to < 0 || int(to) >= numCells {
				return nil, fmt.Errorf("graph: edge-set %d edge %d (%d->%d) out of range [0,%d)",
					si, i, from, to, numCells)
			}
			set.sorted[i] = EdgeKey{from, to}
			if i > 0 && !edgeLess(set.sorted[i-1], set.sorted[i]) {
				return nil, fmt.Errorf("graph: edge-set %d not strictly sorted at %d", si, i)
			}
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("graph: %d trailing bytes", len(body)-off)
	}
	return g, nil
}

// fnv64a is the FNV-1a checksum shared with the RPD2/RPS1 formats.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return h
}
