package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/testutil"
)

// quickCfg pins testing/quick to an explicit seed (logged so a failure can
// be replayed) instead of its default time-derived source.
func quickCfg(t *testing.T, seed int64, max int) *quick.Config {
	return testutil.QuickConfig(t, seed, max)
}

// Property: the partition a union-find reaches is invariant under the
// order its unions are applied in. This is what lets the tournament merge
// pair subgraphs in any bracket shape without changing the clustering.
func TestUnionFindMergeOrderInvariance(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8%40) + 2
		m := int(m8 % 80)
		pairs := make([][2]int, m)
		for i := range pairs {
			pairs[i] = [2]int{r.Intn(n), r.Intn(n)}
		}
		apply := func(order []int) []int {
			u := NewUnionFind(n)
			for _, i := range order {
				u.Union(pairs[i][0], pairs[i][1])
			}
			return canonical(u, n)
		}
		inOrder := make([]int, m)
		for i := range inOrder {
			inOrder[i] = i
		}
		shuffled := append([]int(nil), inOrder...)
		r.Shuffle(m, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a, b := apply(inOrder), apply(shuffled)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 101, 300)); err != nil {
		t.Fatal(err)
	}
}

// Property: re-applying a union is a no-op — Union reports false and the
// partition is unchanged.
func TestUnionFindIdempotentRemerge(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8%40) + 2
		u := NewUnionFind(n)
		for i := 0; i < int(m8%60); i++ {
			u.Union(r.Intn(n), r.Intn(n))
		}
		before := canonical(u, n)
		// Re-merge every already-connected pair: all must report false.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if u.Connected(a, b) && u.Union(a, b) {
					return false
				}
			}
		}
		after := canonical(u, n)
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 102, 200)); err != nil {
		t.Fatal(err)
	}
}

// canonical maps each element to a dense component id assigned in order of
// first appearance, so two partitions compare by slice equality.
func canonical(u *UnionFind, n int) []int {
	ids := map[int]int{}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		root := u.Find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		out[i] = id
	}
	return out
}

// randomSubgraphs builds k subgraphs over a shared cell universe the way
// Phase II partitions do: each cell is owned by exactly one subgraph
// (which knows its type); edges go from owned core cells to arbitrary
// cells, typed by the owner's local knowledge.
func randomSubgraphs(r *rand.Rand, numCells, k int) []*Graph {
	types := make([]VertexType, numCells)
	owner := make([]int, numCells)
	for id := range types {
		if r.Float64() < 0.6 {
			types[id] = Core
		} else {
			types[id] = NonCore
		}
		owner[id] = r.Intn(k)
	}
	gs := make([]*Graph, k)
	for p := range gs {
		gs[p] = New(numCells)
	}
	for id, p := range owner {
		gs[p].SetVertex(int32(id), types[id])
	}
	for e := 0; e < numCells*3; e++ {
		from := int32(r.Intn(numCells))
		if types[from] != Core {
			continue
		}
		gs[owner[from]].AddEdge(from, int32(r.Intn(numCells)))
	}
	return gs
}

// Property: the clustering extracted after merging all subgraphs is
// invariant under merge order (Definition 6.2 is commutative and
// associative up to the component structure).
func TestGraphMergeOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		const numCells, k = 30, 5
		build := func() []*Graph {
			return randomSubgraphs(rand.New(rand.NewSource(seed)), numCells, k)
		}
		// Left-to-right fold.
		ltr := build()
		g1 := ltr[0]
		for _, o := range ltr[1:] {
			g1.Merge(o)
		}
		g1.DetectEdgeTypes()
		// Shuffled fold (order derived from the same seed, offset).
		order := rand.New(rand.NewSource(seed + 7919)).Perm(k)
		sh := build()
		g2 := sh[order[0]]
		for _, i := range order[1:] {
			g2.Merge(sh[i])
		}
		g2.DetectEdgeTypes()
		c1, n1 := g1.CoreComponents()
		c2, n2 := g2.CoreComponents()
		if n1 != n2 {
			return false
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 103, 120)); err != nil {
		t.Fatal(err)
	}
}

// Property: merging a subgraph's information twice changes nothing — the
// re-execution semantics speculative copies rely on.
func TestGraphIdempotentRemerge(t *testing.T) {
	f := func(seed int64) bool {
		const numCells, k = 25, 4
		build := func() []*Graph {
			return randomSubgraphs(rand.New(rand.NewSource(seed)), numCells, k)
		}
		once := build()
		g1 := once[0]
		for _, o := range once[1:] {
			g1.Merge(o)
		}
		// Same fold, but every subgraph is merged twice (from a fresh copy,
		// since Merge cannibalises its argument).
		twiceA, twiceB := build(), build()
		g2 := twiceA[0]
		g2.Merge(twiceB[0])
		for i := 1; i < k; i++ {
			g2.Merge(twiceA[i])
			g2.Merge(twiceB[i])
		}
		c1, n1 := g1.CoreComponents()
		c2, n2 := g2.CoreComponents()
		if n1 != n2 {
			return false
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t, 104, 120)); err != nil {
		t.Fatal(err)
	}
}
