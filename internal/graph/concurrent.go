package graph

// Lock-free concurrent union-find for the flat Phase III merge. Workers
// apply full edges from different subgraphs concurrently; the structure
// guarantees that the final partition — and even the final root of every
// component — is a pure function of the edge SET, independent of
// interleaving, which is what lets the parallel merge keep RP-DBSCAN's
// byte-identical output promise.
//
// The determinism comes from one invariant: parent pointers only ever
// decrease. Find uses path doubling (grandparent hops with opportunistic
// CAS compression) and Union links by index — the larger root is CAS'd
// under the smaller one. Every CAS asserts the old value, so a stale read
// retries rather than overwriting newer information. Once all unions have
// been applied, the root of every component is its minimum element id, no
// matter how the edges were interleaved (same recipe as the SIGMOD'20
// exact parallel DBSCAN's parallel connectivity phase).

import "sync/atomic"

// ConcurrentUnionFind is a disjoint-set forest safe for concurrent Union
// and Find calls from any number of goroutines. Unlike UnionFind it does
// not use union by rank: linking by smaller index is what makes the final
// forest deterministic under races, at the cost of a (still near-inverse-
// Ackermann, thanks to compression) slightly deeper structure.
type ConcurrentUnionFind struct {
	parent []atomic.Int32
}

// NewConcurrentUnionFind returns a concurrent union-find over n singleton
// elements.
func NewConcurrentUnionFind(n int) *ConcurrentUnionFind {
	u := &ConcurrentUnionFind{parent: make([]atomic.Int32, n)}
	for i := range u.parent {
		u.parent[i].Store(int32(i))
	}
	return u
}

// Len returns the number of elements.
func (u *ConcurrentUnionFind) Len() int { return len(u.parent) }

// Find returns the representative of x's set: the smallest element united
// with x at the time of the call. Concurrent unions may shrink the answer
// further, but never change it once all unions have been applied.
func (u *ConcurrentUnionFind) Find(x int) int {
	i := int32(x)
	for {
		p := u.parent[i].Load()
		if p == i {
			return int(i)
		}
		// Path doubling: point i at its grandparent. The CAS asserts the
		// parent we read, so a concurrent improvement (parents only
		// decrease) is never clobbered with a stale, larger value.
		gp := u.parent[p].Load()
		if gp != p {
			u.parent[i].CompareAndSwap(p, gp)
		}
		i = p
	}
}

// Union merges the sets of a and b, reporting whether this call is the one
// that joined two previously disjoint sets. Exactly one call returns true
// per spanning-forest edge regardless of concurrency, and the re-applied
// unions of a retried task all report false.
func (u *ConcurrentUnionFind) Union(a, b int) bool {
	for {
		ra, rb := u.Find(a), u.Find(b)
		if ra == rb {
			return false
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// Link the larger root under the smaller. A failed CAS means rb
		// gained a smaller parent concurrently; re-find and retry.
		if u.parent[rb].CompareAndSwap(int32(rb), int32(ra)) {
			return true
		}
	}
}

// Connected reports whether a and b are currently in the same set. Only a
// quiesced structure (no concurrent Union calls) gives a stable answer.
func (u *ConcurrentUnionFind) Connected(a, b int) bool {
	for {
		ra, rb := u.Find(a), u.Find(b)
		if ra == rb {
			return true
		}
		// Roots can be stale the moment Find returns; they are conclusive
		// only if still roots now.
		if u.parent[ra].Load() == int32(ra) && u.parent[rb].Load() == int32(rb) {
			return false
		}
	}
}
