// Package graph implements the cell graph of Definition 5.8 and its
// progressive merging (Section 6.1). Vertices are cells identified by the
// dense integer ids the two-level cell dictionary assigns (ascending cell
// key order), typed core, non-core, or undetermined (owned by another
// partition); edges are reachability relationships typed full, partial, or
// undetermined.
//
// Edges are held as sorted, deduplicated slices, one per type: merging two
// subgraphs is a linear merge, re-typing scans only the undetermined set
// (Section 6.1.3), and spanning-forest reduction scans only the full set
// (Section 6.1.4), which the reduction itself keeps no larger than the
// number of core cells. Everything is deterministic: no map iteration
// order is ever observable.
package graph

import "sort"

// VertexType classifies a cell in a cell (sub)graph.
type VertexType uint8

const (
	// Undetermined marks a cell owned by another partition (Vun). It is
	// the zero value: cells a subgraph has no knowledge of are
	// undetermined.
	Undetermined VertexType = iota
	// Core marks a core cell (Vc, Definition 3.2).
	Core
	// NonCore marks a determined non-core cell (Vnc).
	NonCore
)

// EdgeType classifies a reachability edge.
type EdgeType uint8

const (
	// EdgeUndetermined: the successor cell's type is not yet known (Eun).
	EdgeUndetermined EdgeType = iota
	// EdgeFull: fully directly reachable, both cells core (Ef, Def. 3.3).
	EdgeFull
	// EdgePartial: partially directly reachable, successor non-core
	// (Ep, Def. 3.4).
	EdgePartial
)

// EdgeKey identifies a directed edge between cell ids. Full edges are
// canonicalised so From <= To, because full-edge direction is disregarded
// (Section 6.1.3).
type EdgeKey struct {
	From, To int32
}

func edgeLess(a, b EdgeKey) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// edgeSet is a sorted, deduplicated slice of edges with an unsorted
// pending buffer for cheap appends.
type edgeSet struct {
	sorted  []EdgeKey
	pending []EdgeKey
}

func (s *edgeSet) add(e EdgeKey) {
	s.pending = append(s.pending, e)
}

// compact folds pending appends into the sorted slice, deduplicating.
func (s *edgeSet) compact() {
	if len(s.pending) == 0 {
		return
	}
	sort.Slice(s.pending, func(i, j int) bool { return edgeLess(s.pending[i], s.pending[j]) })
	s.sorted = mergeDedup(s.sorted, s.pending)
	s.pending = s.pending[:0]
}

// mergeDedup merges two sorted slices into a new sorted slice without
// duplicates.
func mergeDedup(a, b []EdgeKey) []EdgeKey {
	out := make([]EdgeKey, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var e EdgeKey
		switch {
		case i >= len(a):
			e = b[j]
			j++
		case j >= len(b):
			e = a[i]
			i++
		case edgeLess(a[i], b[j]):
			e = a[i]
			i++
		case edgeLess(b[j], a[i]):
			e = b[j]
			j++
		default: // equal: take one, advance both
			e = a[i]
			i++
			j++
		}
		if len(out) == 0 || out[len(out)-1] != e {
			out = append(out, e)
		}
	}
	return out
}

func (s *edgeSet) len() int {
	s.compact()
	return len(s.sorted)
}

func (s *edgeSet) contains(e EdgeKey) bool {
	s.compact()
	i := sort.Search(len(s.sorted), func(i int) bool { return !edgeLess(s.sorted[i], e) })
	return i < len(s.sorted) && s.sorted[i] == e
}

// union folds other into s (both compacted).
func (s *edgeSet) union(other *edgeSet) {
	s.compact()
	other.compact()
	if len(other.sorted) == 0 {
		return
	}
	if len(s.sorted) == 0 {
		s.sorted = other.sorted
		return
	}
	s.sorted = mergeDedup(s.sorted, other.sorted)
}

// Graph is a cell (sub)graph over a fixed universe of numCells cell ids.
type Graph struct {
	// Type holds every cell's type as known to this subgraph, indexed by
	// cell id; unknown cells read Undetermined.
	Type []VertexType

	full    edgeSet // canonical: From < To
	partial edgeSet
	undet   edgeSet
}

// New returns an empty graph over numCells cells.
func New(numCells int) *Graph {
	return &Graph{Type: make([]VertexType, numCells)}
}

// NumEdges returns the number of edges currently in the graph.
func (g *Graph) NumEdges() int {
	return g.full.len() + g.partial.len() + g.undet.len()
}

// EdgeTypeOf reports the current type of the edge from->to, if present.
// Full edges match in either direction.
func (g *Graph) EdgeTypeOf(from, to int32) (EdgeType, bool) {
	cf, ct := from, to
	if ct < cf {
		cf, ct = ct, cf
	}
	if g.full.contains(EdgeKey{cf, ct}) {
		return EdgeFull, true
	}
	if g.partial.contains(EdgeKey{from, to}) {
		return EdgePartial, true
	}
	if g.undet.contains(EdgeKey{from, to}) {
		return EdgeUndetermined, true
	}
	return 0, false
}

// SetVertex records the determined type of an owned cell. A determined
// type is never demoted back to Undetermined.
func (g *Graph) SetVertex(id int32, t VertexType) {
	if g.Type[id] != Undetermined {
		return
	}
	g.Type[id] = t
}

// AddEdge records a directly-reachable relationship from a core cell to a
// neighbor cell (Algorithm 3 lines 14-16). Self-edges are meaningless and
// dropped. The edge type is resolved from the currently known vertex
// types.
func (g *Graph) AddEdge(from, to int32) {
	if from == to {
		return
	}
	g.insertTyped(from, to)
}

// insertTyped stores the edge in the set its successor's current type
// dictates.
func (g *Graph) insertTyped(from, to int32) {
	switch g.Type[to] {
	case Core:
		if to < from {
			from, to = to, from
		}
		g.full.add(EdgeKey{from, to})
	case NonCore:
		g.partial.add(EdgeKey{from, to})
	default:
		g.undet.add(EdgeKey{from, to})
	}
}

// Merge folds other into g (Definition 6.2): vertices union with promotion
// of undetermined cells, edges union. It then re-types undetermined edges
// (Section 6.1.3) and removes redundant full edges via a spanning forest
// (Section 6.1.4). It returns g. other must not be used afterwards: its
// edge storage may be cannibalised.
func (g *Graph) Merge(other *Graph) *Graph {
	g.absorb(other)
	g.DetectEdgeTypes()
	g.ReduceFullEdges()
	return g
}

// MergeKeepingCycles is Merge without the spanning-forest edge reduction:
// the ablation of Section 6.1.4. Clustering results are identical; the
// retained cycles only cost time and memory in later rounds.
func (g *Graph) MergeKeepingCycles(other *Graph) *Graph {
	g.absorb(other)
	g.DetectEdgeTypes()
	return g
}

func (g *Graph) absorb(other *Graph) {
	for id, t := range other.Type {
		if t != Undetermined {
			g.SetVertex(int32(id), t)
		}
	}
	g.full.union(&other.full)
	g.partial.union(&other.partial)
	g.undet.union(&other.undet)
}

// DetectEdgeTypes resolves every undetermined edge whose successor cell
// has become determined. Only the undetermined set is scanned.
func (g *Graph) DetectEdgeTypes() {
	g.undet.compact()
	kept := g.undet.sorted[:0]
	for _, e := range g.undet.sorted {
		if g.Type[e.To] == Undetermined {
			kept = append(kept, e)
			continue
		}
		g.insertTyped(e.From, e.To)
	}
	g.undet.sorted = kept
	// Newly typed full edges were canonicalised on insert, which can
	// introduce duplicates of existing entries; compact dedups them.
	g.full.compact()
	g.partial.compact()
}

// ReduceFullEdges removes full edges that close a cycle among core cells,
// keeping a spanning forest. The surviving forest has the same expressive
// power: one path between connected core cells suffices (Section 6.1.4).
// After reduction the full set holds fewer edges than there are core
// cells, which keeps later merge rounds cheap. Scanning in sorted order
// makes the surviving forest deterministic.
func (g *Graph) ReduceFullEdges() {
	g.full.compact()
	uf := NewUnionFind(len(g.Type))
	kept := g.full.sorted[:0]
	for _, e := range g.full.sorted {
		if uf.Union(int(e.From), int(e.To)) {
			kept = append(kept, e)
		}
	}
	g.full.sorted = kept
}

// Tournament merges the subgraphs in parallel rounds (Figure 9a), pairing
// graphs and folding an odd leftover into the last match, so a tournament
// over k splits takes the rounds of the paper's Table 7 (40 splits -> 20
// -> 10 -> 5 -> 2 -> 1: five rounds). After every round, trace (if
// non-nil) receives the round number and the total edges remaining across
// surviving graphs; round 0 reports the pre-merge total. runMatches
// executes the independent matches of one round; nil runs them serially.
func Tournament(gs []*Graph, trace func(round int, edges int64), runMatches func(n int, match func(int))) *Graph {
	if len(gs) == 0 {
		return New(0)
	}
	if trace != nil {
		trace(0, totalEdges(gs))
	}
	round := 0
	for len(gs) > 1 {
		round++
		n := len(gs) / 2
		odd := len(gs)%2 == 1
		match := func(i int) {
			gs[2*i].Merge(gs[2*i+1])
			if odd && i == n-1 {
				gs[2*i].Merge(gs[2*i+2])
			}
		}
		if runMatches != nil {
			runMatches(n, match)
		} else {
			for i := 0; i < n; i++ {
				match(i)
			}
		}
		next := make([]*Graph, 0, n)
		for i := 0; i < n; i++ {
			next = append(next, gs[2*i])
		}
		gs = next
		if trace != nil {
			trace(round, totalEdges(gs))
		}
	}
	g := gs[0]
	// A single subgraph (k=1) never went through Merge: finalise it.
	g.DetectEdgeTypes()
	g.ReduceFullEdges()
	return g
}

func totalEdges(gs []*Graph) int64 {
	var n int64
	for _, g := range gs {
		n += int64(g.NumEdges())
	}
	return n
}

// CoreComponents returns a cluster id per cell (indexed by cell id, -1 for
// cells that are not core) and the number of clusters: the connected
// components over full edges (each spanning tree of Figure 10b). Ids are
// dense, assigned in ascending order of each component's smallest cell id,
// and therefore deterministic.
func (g *Graph) CoreComponents() ([]int32, int) {
	g.full.compact()
	uf := NewUnionFind(len(g.Type))
	for _, e := range g.full.sorted {
		uf.Union(int(e.From), int(e.To))
	}
	comp := make([]int32, len(g.Type))
	clusterOf := make(map[int]int32)
	var next int32
	for id := range g.Type {
		if g.Type[id] != Core {
			comp[id] = -1
			continue
		}
		root := uf.Find(id)
		c, ok := clusterOf[root]
		if !ok {
			c = next
			clusterOf[root] = c
			next++
		}
		comp[id] = c
	}
	return comp, int(next)
}

// PartialPredecessors maps every non-core cell that is the target of a
// partial edge to its predecessor core cells (the PC set of Algorithm 4
// line 18). Predecessors are sorted for determinism.
func (g *Graph) PartialPredecessors() map[int32][]int32 {
	g.partial.compact()
	out := make(map[int32][]int32)
	for _, e := range g.partial.sorted {
		out[e.To] = append(out[e.To], e.From)
	}
	for k := range out {
		s := out[k]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return out
}
