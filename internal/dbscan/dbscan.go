// Package dbscan implements the original, exact DBSCAN algorithm of Ester
// et al. with kd-tree-accelerated region queries. It serves as the ground
// truth for accuracy experiments (the "DBSCAN [10]" row of Table 2) and as
// the exact local clusterer inside SPARK-DBSCAN.
package dbscan

import (
	"rpdbscan/internal/geom"
	"rpdbscan/internal/kdtree"
)

// Noise is the label of points in no cluster.
const Noise = -1

// Result holds the clustering output.
type Result struct {
	// Labels holds a cluster id per point, or Noise.
	Labels []int
	// CorePoint marks points with at least minPts eps-neighbors.
	CorePoint []bool
	// NumClusters is the number of clusters found.
	NumClusters int
}

// Run clusters pts with radius eps and core threshold minPts. Cluster ids
// are assigned in order of discovery scanning points by index, so the
// output is deterministic. The eps-neighborhood of a point includes the
// point itself, as in Definition 2.1.
func Run(pts *geom.Points, eps float64, minPts int) *Result {
	n := pts.N()
	res := &Result{
		Labels:    make([]int, n),
		CorePoint: make([]bool, n),
	}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		return res
	}
	tree := kdtree.Build(pts, nil)

	visited := make([]bool, n)
	var queue []int
	var neigh []int
	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neigh = tree.InBall(pts.At(i), eps, neigh[:0])
		if len(neigh) < minPts {
			continue // noise for now; may become a border point later
		}
		// Expand a new cluster from core point i (Definitions 2.2-2.4).
		res.CorePoint[i] = true
		res.Labels[i] = cluster
		queue = append(queue[:0], neigh...)
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if res.Labels[j] == Noise {
				res.Labels[j] = cluster // border or core of this cluster
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			// The seed neighborhood was already drained into the queue, so
			// the scratch slice is free for reuse — a nil dst here
			// reallocated one neighbor slice per expanded point.
			neigh = tree.InBall(pts.At(j), eps, neigh[:0])
			if len(neigh) >= minPts {
				res.CorePoint[j] = true
				queue = append(queue, neigh...)
			}
		}
		cluster++
	}
	res.NumClusters = cluster
	return res
}
