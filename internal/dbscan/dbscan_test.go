package dbscan

import (
	"math/rand"
	"testing"

	"rpdbscan/internal/geom"
)

func TestEmpty(t *testing.T) {
	res := Run(geom.NewPoints(2, 0), 1, 3)
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatalf("empty run = %+v", res)
	}
}

func TestTwoBlobsAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := geom.NewPoints(2, 0)
	row := make([]float64, 2)
	for i := 0; i < 50; i++ {
		row[0], row[1] = rng.NormFloat64()*0.1, rng.NormFloat64()*0.1
		pts.Append(row)
	}
	for i := 0; i < 50; i++ {
		row[0], row[1] = 10+rng.NormFloat64()*0.1, 10+rng.NormFloat64()*0.1
		pts.Append(row)
	}
	pts.Append([]float64{100, 100}) // isolated noise point
	res := Run(pts, 0.5, 5)
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	for i := 0; i < 50; i++ {
		if res.Labels[i] != res.Labels[0] {
			t.Fatalf("first blob split: label[%d]=%d", i, res.Labels[i])
		}
	}
	for i := 50; i < 100; i++ {
		if res.Labels[i] != res.Labels[50] || res.Labels[i] == res.Labels[0] {
			t.Fatalf("second blob wrong: label[%d]=%d", i, res.Labels[i])
		}
	}
	if res.Labels[100] != Noise {
		t.Fatal("isolated point not noise")
	}
}

func TestMinPtsBoundary(t *testing.T) {
	// Exactly minPts points (including self) within eps makes a core.
	pts, _ := geom.FromSlice([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
	}, 2)
	res := Run(pts, 0.2, 3)
	if !res.CorePoint[0] {
		t.Fatal("point with exactly minPts neighbors (incl. self) not core")
	}
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	// Raise minPts by one: nothing is core.
	res = Run(pts, 0.2, 4)
	if res.NumClusters != 0 {
		t.Fatalf("NumClusters = %d, want 0", res.NumClusters)
	}
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatal("non-core points not noise")
		}
	}
}

func TestChainCluster(t *testing.T) {
	// A chain of points spaced 0.9 apart with eps=1: density-reachability
	// must connect the whole chain into one cluster.
	pts := geom.NewPoints(1, 20)
	for i := 0; i < 20; i++ {
		pts.Append([]float64{float64(i) * 0.9})
	}
	res := Run(pts, 1.0, 2)
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != 0 {
			t.Fatalf("chain point %d has label %d", i, l)
		}
	}
}

func TestBorderPointAttachment(t *testing.T) {
	// A point within eps of a core but itself non-core is a border point
	// of that cluster, not noise. With eps=0.5, minPts=5 the centre point
	// E is the only core; F sees only 4 neighbors (itself, A, B, E) but
	// lies within eps of E.
	pts, _ := geom.FromSlice([][]float64{
		{0, 0}, {0.4, 0}, {0, 0.4}, {0.4, 0.4}, // A B C D
		{0.2, 0.2},   // E: core (A,B,C,D,E within 0.5)
		{0.2, -0.25}, // F: border of E's cluster
	}, 2)
	res := Run(pts, 0.5, 5)
	if !res.CorePoint[4] {
		t.Fatal("E should be core")
	}
	if res.CorePoint[5] {
		t.Fatal("F should not be core")
	}
	if res.Labels[5] == Noise {
		t.Fatal("border point classified as noise")
	}
	if res.Labels[5] != res.Labels[4] {
		t.Fatal("border point not attached to E's cluster")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := geom.NewPoints(3, 0)
	row := make([]float64, 3)
	for i := 0; i < 300; i++ {
		for j := range row {
			row[j] = rng.Float64() * 5
		}
		pts.Append(row)
	}
	a := Run(pts, 0.6, 5)
	b := Run(pts, 0.6, 5)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("runs differ")
		}
	}
}
