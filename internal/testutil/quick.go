// Package testutil holds small helpers shared by the package test suites.
package testutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// QuickConfig returns a testing/quick configuration pinned to an explicit
// seed instead of the package default (which derives its generator from
// the clock and makes failures unreplayable). The seed is logged so a
// failing run prints exactly what to pin when reproducing.
func QuickConfig(t testing.TB, seed int64, maxCount int) *quick.Config {
	t.Helper()
	t.Logf("testing/quick seed %d", seed)
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(seed))}
}
