// Package metrics provides the evaluation measures of Section 7.1.5: the
// Rand index between two clusterings, plus the load-imbalance and
// data-duplication summaries used across the efficiency experiments.
package metrics

import "math"

// RandIndex computes the Rand index between two label vectors of equal
// length. The index is the fraction of point pairs on which the two
// clusterings agree (same cluster in both, or different clusters in both)
// and lies in [0, 1], with 1 meaning identical clusterings.
//
// Noise labels (negative values) are treated as one additional cluster per
// side; both clusterings under comparison classify nearly identical noise
// sets in our experiments, so this convention does not move the index at
// the reported precision.
func RandIndex(a, b []int) float64 {
	if len(a) != len(b) {
		panic("metrics: label vectors differ in length")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	type pair struct{ x, y int }
	joint := make(map[pair]int64)
	ca := make(map[int]int64)
	cb := make(map[int]int64)
	for i := 0; i < n; i++ {
		x, y := norm(a[i]), norm(b[i])
		joint[pair{x, y}]++
		ca[x]++
		cb[y]++
	}
	var sameJoint, sameA, sameB int64
	for _, c := range joint {
		sameJoint += c * (c - 1) / 2
	}
	for _, c := range ca {
		sameA += c * (c - 1) / 2
	}
	for _, c := range cb {
		sameB += c * (c - 1) / 2
	}
	total := int64(n) * int64(n-1) / 2
	agree := total - sameA - sameB + 2*sameJoint
	return float64(agree) / float64(total)
}

func norm(l int) int {
	if l < 0 {
		return -1
	}
	return l
}

// AdjustedRandIndex computes the chance-corrected Rand index between two
// label vectors: 1 for identical clusterings, ~0 for independent ones,
// negative for worse-than-chance agreement. Noise labels are normalised as
// in RandIndex.
func AdjustedRandIndex(a, b []int) float64 {
	if len(a) != len(b) {
		panic("metrics: label vectors differ in length")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	type pair struct{ x, y int }
	joint := make(map[pair]int64)
	ca := make(map[int]int64)
	cb := make(map[int]int64)
	for i := 0; i < n; i++ {
		x, y := norm(a[i]), norm(b[i])
		joint[pair{x, y}]++
		ca[x]++
		cb[y]++
	}
	choose2 := func(c int64) float64 { return float64(c) * float64(c-1) / 2 }
	var sumJoint, sumA, sumB float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range ca {
		sumA += choose2(c)
	}
	for _, c := range cb {
		sumB += choose2(c)
	}
	total := choose2(int64(n))
	expected := sumA * sumB / total
	max := (sumA + sumB) / 2
	if max == expected {
		return 1 // both clusterings trivial and identical in structure
	}
	return (sumJoint - expected) / (max - expected)
}

// NormalizedMutualInformation computes NMI (arithmetic normalisation)
// between two label vectors, in [0, 1]. Noise labels are normalised as in
// RandIndex. Two identical clusterings score 1; independent ones approach
// 0.
func NormalizedMutualInformation(a, b []int) float64 {
	if len(a) != len(b) {
		panic("metrics: label vectors differ in length")
	}
	n := float64(len(a))
	if len(a) == 0 {
		return 1
	}
	type pair struct{ x, y int }
	joint := make(map[pair]float64)
	ca := make(map[int]float64)
	cb := make(map[int]float64)
	for i := range a {
		x, y := norm(a[i]), norm(b[i])
		joint[pair{x, y}]++
		ca[x]++
		cb[y]++
	}
	entropy := func(m map[int]float64) float64 {
		var h float64
		for _, c := range m {
			p := c / n
			h -= p * logOrZero(p)
		}
		return h
	}
	ha, hb := entropy(ca), entropy(cb)
	var mi float64
	for pq, c := range joint {
		pxy := c / n
		px := ca[pq.x] / n
		py := cb[pq.y] / n
		mi += pxy * logOrZero(pxy/(px*py))
	}
	if ha+hb == 0 {
		return 1 // both single-cluster: identical trivial clusterings
	}
	nmi := 2 * mi / (ha + hb)
	if nmi < 0 {
		nmi = 0
	} else if nmi > 1 {
		nmi = 1
	}
	return nmi
}

func logOrZero(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

// NumClusters returns the number of distinct non-noise labels.
func NumClusters(labels []int) int {
	seen := make(map[int]bool)
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}

// NumNoise returns the number of noise-labeled points.
func NumNoise(labels []int) int {
	n := 0
	for _, l := range labels {
		if l < 0 {
			n++
		}
	}
	return n
}

// ClusterSizes returns the size of each cluster keyed by label (noise
// excluded).
func ClusterSizes(labels []int) map[int]int {
	m := make(map[int]int)
	for _, l := range labels {
		if l >= 0 {
			m[l]++
		}
	}
	return m
}
