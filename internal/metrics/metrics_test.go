package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/testutil"
)

func TestRandIndexIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, -1}
	if got := RandIndex(a, a); got != 1 {
		t.Fatalf("RandIndex(a,a) = %v, want 1", got)
	}
}

func TestRandIndexRelabelInvariant(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	b := []int{7, 7, 3, 3, 9}
	if got := RandIndex(a, b); got != 1 {
		t.Fatalf("relabelled RandIndex = %v, want 1", got)
	}
}

func TestRandIndexKnownValue(t *testing.T) {
	// a: {0,0,1,1}; b: {0,1,1,1}. Pairs: (0,1) same in a diff in b;
	// (0,2),(0,3) diff in a, (0,2) diff b? b[0]=0,b[2]=1 diff -> agree.
	// Agreements: pairs (0,2),(0,3),(2,3),(1,2),(1,3) -> check manually:
	// (0,1): a same, b diff -> disagree
	// (0,2): a diff, b diff -> agree
	// (0,3): a diff, b diff -> agree
	// (1,2): a diff, b same -> disagree
	// (1,3): a diff, b same -> disagree
	// (2,3): a same, b same -> agree
	// 3 agreements of 6 pairs = 0.5.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 1, 1}
	if got := RandIndex(a, b); got != 0.5 {
		t.Fatalf("RandIndex = %v, want 0.5", got)
	}
}

func TestRandIndexNoiseNormalised(t *testing.T) {
	// Different negative labels all mean "noise" and compare equal.
	a := []int{-1, -1, 0}
	b := []int{-5, -9, 0}
	if got := RandIndex(a, b); got != 1 {
		t.Fatalf("noise-normalised RandIndex = %v, want 1", got)
	}
}

func TestRandIndexSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(5) - 1
			b[i] = r.Intn(5) - 1
		}
		x, y := RandIndex(a, b), RandIndex(b, a)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 203, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestRandIndexPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	RandIndex([]int{1}, []int{1, 2})
}

func TestRandIndexTiny(t *testing.T) {
	if RandIndex(nil, nil) != 1 || RandIndex([]int{3}, []int{9}) != 1 {
		t.Fatal("degenerate inputs should give 1")
	}
}

func TestAdjustedRandIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("ARI(a,a) = %v, want 1", got)
	}
	b := []int{5, 5, 9, 9, 3, 3} // relabelled
	if got := AdjustedRandIndex(a, b); got != 1 {
		t.Fatalf("relabelled ARI = %v, want 1", got)
	}
}

func TestAdjustedRandChanceLevel(t *testing.T) {
	// Large random independent labelings have ARI near 0 (unlike the raw
	// Rand index, which stays high).
	r := rand.New(rand.NewSource(1))
	n := 5000
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = r.Intn(5)
		b[i] = r.Intn(5)
	}
	ari := AdjustedRandIndex(a, b)
	if ari < -0.05 || ari > 0.05 {
		t.Fatalf("independent ARI = %v, want ~0", ari)
	}
	if ri := RandIndex(a, b); ri < 0.5 {
		t.Fatalf("sanity: raw RI = %v", ri)
	}
}

func TestAdjustedRandTrivial(t *testing.T) {
	a := []int{0, 0, 0}
	if got := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("single-cluster ARI = %v, want 1", got)
	}
}

func TestNMIIdenticalAndIndependent(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := NormalizedMutualInformation(a, a); got < 0.999 {
		t.Fatalf("NMI(a,a) = %v, want 1", got)
	}
	r := rand.New(rand.NewSource(2))
	n := 5000
	x := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = r.Intn(4)
		y[i] = r.Intn(4)
	}
	if got := NormalizedMutualInformation(x, y); got > 0.05 {
		t.Fatalf("independent NMI = %v, want ~0", got)
	}
}

func TestNMITrivialAndEmpty(t *testing.T) {
	if NormalizedMutualInformation(nil, nil) != 1 {
		t.Fatal("empty NMI != 1")
	}
	a := []int{3, 3, 3}
	if NormalizedMutualInformation(a, a) != 1 {
		t.Fatal("single-cluster NMI != 1")
	}
}

func TestNMISymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(4) - 1
			b[i] = r.Intn(4) - 1
		}
		x := NormalizedMutualInformation(a, b)
		y := NormalizedMutualInformation(b, a)
		diff := x - y
		if diff < 0 {
			diff = -diff
		}
		ax := AdjustedRandIndex(a, b)
		ay := AdjustedRandIndex(b, a)
		adiff := ax - ay
		if adiff < 0 {
			adiff = -adiff
		}
		return diff < 1e-9 && adiff < 1e-9 && x >= 0 && x <= 1
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 204, 150)); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	l := []int{0, 0, 1, -1, -1, 2}
	if NumClusters(l) != 3 {
		t.Fatalf("NumClusters = %d", NumClusters(l))
	}
	if NumNoise(l) != 2 {
		t.Fatalf("NumNoise = %d", NumNoise(l))
	}
	s := ClusterSizes(l)
	if s[0] != 2 || s[1] != 1 || s[2] != 1 || len(s) != 3 {
		t.Fatalf("ClusterSizes = %v", s)
	}
}
