package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rpdbscan/internal/engine"
)

func TestLogConfigLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := LogConfig{Level: "debug", Format: "json"}.NewLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler produced non-JSON: %v", err)
	}
	if rec["msg"] != "hello" || rec["k"] != float64(1) {
		t.Fatalf("record = %v", rec)
	}

	buf.Reset()
	l, err = LogConfig{Level: "warn", Format: "text"}.NewLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering wrong:\n%s", out)
	}

	if _, err := (LogConfig{Level: "loud"}).NewLogger(io.Discard); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := (LogConfig{Format: "xml"}).NewLogger(io.Discard); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var c LogConfig
	c.RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if c.Level != "debug" || c.Format != "json" {
		t.Fatalf("flags not bound: %+v", c)
	}
}

func TestSinkCountsRetriesAndBroadcasts(t *testing.T) {
	s := NewSink(nil)
	r0 := Counters.TaskRetries.Value()
	b0 := Counters.BroadcastBytes.Value()
	g0 := Counters.StagesRun.Value()
	s.Emit(engine.Event{Kind: engine.EventTaskRetry})
	s.Emit(engine.Event{Kind: engine.EventTaskRetry})
	s.Emit(engine.Event{Kind: engine.EventBroadcast, Bytes: 512})
	s.Emit(engine.Event{Kind: engine.EventStageEnd})
	if got := Counters.TaskRetries.Value() - r0; got != 2 {
		t.Fatalf("TaskRetries delta = %d, want 2", got)
	}
	if got := Counters.BroadcastBytes.Value() - b0; got != 512 {
		t.Fatalf("BroadcastBytes delta = %d, want 512", got)
	}
	if got := Counters.StagesRun.Value() - g0; got != 1 {
		t.Fatalf("StagesRun delta = %d, want 1", got)
	}
}

// The FaultInjector retry path must reach the expvar retry counter when an
// obs sink is installed on the cluster.
func TestFaultInjectorRetryReachesCounter(t *testing.T) {
	c := engine.New(2)
	c.Sink = NewSink(nil)
	c.Injector = engine.InjectorFunc(func(stage string, task, attempt int) bool { return attempt == 0 })
	r0 := Counters.TaskRetries.Value()
	c.RunStage("II", "flaky", 5, func(i int) {})
	if got := Counters.TaskRetries.Value() - r0; got != 5 {
		t.Fatalf("TaskRetries delta = %d, want 5", got)
	}
}

func TestSinkLogsRetriesAtWarn(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	c := engine.New(1)
	c.Sink = NewSink(l)
	c.Injector = engine.InjectorFunc(func(stage string, task, attempt int) bool { return attempt == 0 })
	c.RunStage("II", "flaky", 1, func(i int) {})
	out := buf.String()
	if !strings.Contains(out, "task retry") || !strings.Contains(out, "flaky") {
		t.Fatalf("retry not logged at info-visible level:\n%s", out)
	}
	// Per-task spans stay below debug and must not appear.
	if strings.Contains(out, "task start") {
		t.Fatalf("task spans leaked at info level:\n%s", out)
	}
}

func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	s.Emit(engine.Event{Kind: engine.EventTaskRetry}) // must not panic
}

func TestDebugServerServesVarsAndPprof(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	req := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		srv.Handler.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}
	w := req("/debug/vars")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", w.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["rpdbscan.task_retries"]; !ok {
		t.Fatal("rpdbscan counters not published at /debug/vars")
	}
	if w := req("/debug/pprof/"); w.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", w.Code)
	}
	if w := req("/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", w.Code, w.Body.String())
	}
	w = req("/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	if _, err := ParseExposition(w.Body); err != nil {
		t.Fatalf("/metrics output rejected: %v", err)
	}
	if srv.Addr() == "" {
		t.Fatal("bound address not reported")
	}
}

// Guard against accidental blocking in StartDebugServer: it must return
// promptly with the goroutine serving in the background.
func TestDebugServerReturnsImmediately(t *testing.T) {
	done := make(chan struct{})
	go func() {
		srv, err := StartDebugServer("127.0.0.1:0", slog.New(slog.NewTextHandler(io.Discard, nil)))
		if err == nil {
			srv.Close()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("StartDebugServer blocked")
	}
}
