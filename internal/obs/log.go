// Package obs is the observability layer of the repository: structured
// logging (log/slog), per-task event sinks for the virtual cluster,
// Chrome-trace export of engine reports, an expvar counter registry, and
// an optional debug HTTP server (pprof + /debug/vars).
//
// The package is deliberately dependency-light: it imports the engine (for
// report and event types) but nothing algorithm-specific, so every layer —
// core pipeline, harness, CLIs — can use it without cycles.
package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogConfig selects the level and encoding of the process logger. Zero
// values mean "info" and "text".
type LogConfig struct {
	// Level is debug|info|warn|error.
	Level string
	// Format is text|json.
	Format string
}

// RegisterFlags installs the standard -log-level and -log-format flags on
// fs (the process flag set of every CLI).
func (c *LogConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Level, "log-level", "info", "log level: debug|info|warn|error")
	fs.StringVar(&c.Format, "log-format", "text", "log encoding: text|json")
}

// ParseLevel maps a level name to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog.Logger writing to w per the config.
func (c LogConfig) NewLogger(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(c.Format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", c.Format)
	}
	return slog.New(h), nil
}

// Setup builds the logger and installs it as the process default
// (slog.Default). CLIs call it right after flag.Parse.
func (c LogConfig) Setup(w io.Writer) (*slog.Logger, error) {
	l, err := c.NewLogger(w)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(l)
	return l, nil
}
