package obs

import "expvar"

// Counters is the process-wide registry of pipeline counters, published
// under "rpdbscan.*" in expvar (visible at /debug/vars when the debug
// server runs). All counters are cumulative over the process lifetime;
// expvar.Int is internally synchronized so any goroutine may Add.
var Counters = struct {
	// PointsRead counts input points ingested (file readers, pipeline
	// entry).
	PointsRead *expvar.Int
	// CellsBuilt counts grid cells materialized into cell dictionaries.
	CellsBuilt *expvar.Int
	// BroadcastBytes accumulates broadcast payload sizes (the two-level
	// cell dictionary).
	BroadcastBytes *expvar.Int
	// ShuffleBytes accumulates shuffle payload sizes accounted by stages.
	ShuffleBytes *expvar.Int
	// TaskRetries counts failed task attempts that were re-executed
	// (panics and injected faults).
	TaskRetries *expvar.Int
	// MergeOps counts cell-graph merge operations (tournament matches).
	MergeOps *expvar.Int
	// StagesRun counts engine stages executed.
	StagesRun *expvar.Int
	// FaultsInjected counts injected task-attempt failures (chaos mode).
	FaultsInjected *expvar.Int
	// ChecksumRejects counts payload chunks rejected by their transfer
	// checksum and re-transferred.
	ChecksumRejects *expvar.Int
	// SpeculativeLaunches counts speculative straggler re-executions.
	SpeculativeLaunches *expvar.Int
	// SpeculativeWins counts speculative copies that finished first.
	SpeculativeWins *expvar.Int
	// ServeRequests counts HTTP requests received by the prediction
	// server (all endpoints, including rejected ones).
	ServeRequests *expvar.Int
	// ServePredictPoints counts points classified by /predict and
	// /predict/batch.
	ServePredictPoints *expvar.Int
	// ServeRejects counts requests shed with 429 by the bounded
	// admission queue.
	ServeRejects *expvar.Int
	// ServeErrors counts responses with status >= 400.
	ServeErrors *expvar.Int
	// ServeFaults counts chaos-injected handler failures (500s).
	ServeFaults *expvar.Int
	// ServeLatencyNs accumulates handler latency in nanoseconds;
	// together with ServeRequests it yields the running mean.
	ServeLatencyNs *expvar.Int
	// StreamChunks counts input chunks ingested by the out-of-core
	// pipeline (core.RunStream).
	StreamChunks *expvar.Int
	// StreamSpillBytes accumulates run-record payload bytes written to
	// partition spill files.
	StreamSpillBytes *expvar.Int
	// StreamSpillReloads counts spill-file scans after the initial write
	// (dictionary build, Phase II rematerialisation, core-point gather).
	StreamSpillReloads *expvar.Int
	// WorkerKills counts chaos-injected worker-process kills observed by
	// the multi-process transport.
	WorkerKills *expvar.Int
	// WorkerSpawns counts replacement worker processes brought up after a
	// kill.
	WorkerSpawns *expvar.Int
	// IngestPoints counts points accepted by the serving stack's /ingest
	// endpoint into the online buffer.
	IngestPoints *expvar.Int
	// RefitRuns counts completed micro-batch refits (a fit that produced
	// a model, whether or not the swap then succeeded).
	RefitRuns *expvar.Int
	// RefitFailures counts refit attempts that did not produce a swapped
	// model (fit error, artifact persist/validate failure). The old model
	// keeps serving after each one.
	RefitFailures *expvar.Int
	// RefitPoints counts points covered by completed refits (each refit
	// re-clusters its full ingested prefix).
	RefitPoints *expvar.Int
	// ModelSwaps counts atomic served-model pointer flips (one per
	// validated refit).
	ModelSwaps *expvar.Int
	// RegistryPublishes counts artifacts published into the model registry
	// (blob write + manifest record).
	RegistryPublishes *expvar.Int
	// RegistryBlobBytes accumulates blob bytes written by registry
	// publishes (deduplicated republishes add nothing).
	RegistryBlobBytes *expvar.Int
	// RegistryGCRemoved counts files removed by registry garbage
	// collection (unreferenced blobs, temp strays, stale legacy artifacts).
	RegistryGCRemoved *expvar.Int
}{
	PointsRead:          expvar.NewInt("rpdbscan.points_read"),
	CellsBuilt:          expvar.NewInt("rpdbscan.cells_built"),
	BroadcastBytes:      expvar.NewInt("rpdbscan.broadcast_bytes"),
	ShuffleBytes:        expvar.NewInt("rpdbscan.shuffle_bytes"),
	TaskRetries:         expvar.NewInt("rpdbscan.task_retries"),
	MergeOps:            expvar.NewInt("rpdbscan.merge_ops"),
	StagesRun:           expvar.NewInt("rpdbscan.stages_run"),
	FaultsInjected:      expvar.NewInt("rpdbscan.faults_injected"),
	ChecksumRejects:     expvar.NewInt("rpdbscan.checksum_rejects"),
	SpeculativeLaunches: expvar.NewInt("rpdbscan.speculative_launches"),
	SpeculativeWins:     expvar.NewInt("rpdbscan.speculative_wins"),
	ServeRequests:       expvar.NewInt("rpdbscan.serve_requests"),
	ServePredictPoints:  expvar.NewInt("rpdbscan.serve_predict_points"),
	ServeRejects:        expvar.NewInt("rpdbscan.serve_rejects"),
	ServeErrors:         expvar.NewInt("rpdbscan.serve_errors"),
	ServeFaults:         expvar.NewInt("rpdbscan.serve_faults"),
	ServeLatencyNs:      expvar.NewInt("rpdbscan.serve_latency_ns"),
	StreamChunks:        expvar.NewInt("rpdbscan.stream_chunks"),
	StreamSpillBytes:    expvar.NewInt("rpdbscan.stream_spill_bytes"),
	StreamSpillReloads:  expvar.NewInt("rpdbscan.stream_spill_reloads"),
	WorkerKills:         expvar.NewInt("rpdbscan.worker_kills"),
	WorkerSpawns:        expvar.NewInt("rpdbscan.worker_spawns"),
	IngestPoints:        expvar.NewInt("rpdbscan.ingest_points"),
	RefitRuns:           expvar.NewInt("rpdbscan.refit_runs"),
	RefitFailures:       expvar.NewInt("rpdbscan.refit_failures"),
	RefitPoints:         expvar.NewInt("rpdbscan.refit_points"),
	ModelSwaps:          expvar.NewInt("rpdbscan.model_swaps"),
	RegistryPublishes:   expvar.NewInt("rpdbscan.registry_publishes"),
	RegistryBlobBytes:   expvar.NewInt("rpdbscan.registry_blob_bytes"),
	RegistryGCRemoved:   expvar.NewInt("rpdbscan.registry_gc_removed"),
}

// counterHelp is the per-counter description the Prometheus exposition
// emits as # HELP lines, keyed by expvar name. Keep in sync with the
// Counters field docs above; CounterHelp falls back to a generic line for
// names missing here so the exposition never renders a HELP-less family.
var counterHelp = map[string]string{
	"rpdbscan.points_read":          "Input points ingested by file readers and the pipeline entry.",
	"rpdbscan.cells_built":          "Grid cells materialized into cell dictionaries.",
	"rpdbscan.broadcast_bytes":      "Broadcast payload bytes (the two-level cell dictionary).",
	"rpdbscan.shuffle_bytes":        "Shuffle payload bytes accounted by stages.",
	"rpdbscan.task_retries":         "Failed task attempts that were re-executed (panics and injected faults).",
	"rpdbscan.merge_ops":            "Cell-graph merge operations (tournament matches).",
	"rpdbscan.stages_run":           "Engine stages executed.",
	"rpdbscan.faults_injected":      "Injected task-attempt failures (chaos mode).",
	"rpdbscan.checksum_rejects":     "Payload chunks rejected by their transfer checksum and re-transferred.",
	"rpdbscan.speculative_launches": "Speculative straggler re-executions launched.",
	"rpdbscan.speculative_wins":     "Speculative copies that finished first.",
	"rpdbscan.serve_requests":       "HTTP requests received by the prediction server (all endpoints).",
	"rpdbscan.serve_predict_points": "Points classified by /predict and /predict/batch.",
	"rpdbscan.serve_rejects":        "Requests shed with 429 by the bounded admission queue.",
	"rpdbscan.serve_errors":         "Responses with status >= 400.",
	"rpdbscan.serve_faults":         "Chaos-injected handler failures (500s).",
	"rpdbscan.serve_latency_ns":     "Cumulative handler latency in nanoseconds (mean = latency / requests).",
	"rpdbscan.stream_chunks":        "Input chunks ingested by the out-of-core pipeline.",
	"rpdbscan.stream_spill_bytes":   "Run-record payload bytes written to partition spill files.",
	"rpdbscan.stream_spill_reloads": "Spill-file scans after the initial write.",
	"rpdbscan.worker_kills":         "Chaos-injected worker-process kills observed by the transport.",
	"rpdbscan.worker_spawns":        "Replacement worker processes brought up after a kill.",
	"rpdbscan.ingest_points":        "Points accepted by /ingest into the online buffer.",
	"rpdbscan.refit_runs":           "Completed micro-batch refits over the ingested prefix.",
	"rpdbscan.refit_failures":       "Refit attempts that produced no swap (old model kept serving).",
	"rpdbscan.refit_points":         "Points covered by completed refits (full prefix per refit).",
	"rpdbscan.model_swaps":          "Atomic served-model pointer flips after validated refits.",
	"rpdbscan.registry_publishes":   "Artifacts published into the model registry (blob + manifest record).",
	"rpdbscan.registry_blob_bytes":  "Blob bytes written by registry publishes (dedup republishes add nothing).",
	"rpdbscan.registry_gc_removed":  "Files removed by registry GC (unreferenced blobs, temp strays, stale legacy artifacts).",
}

// CounterHelp returns the description of the named counter for exposition
// HELP lines.
func CounterHelp(name string) string {
	if h, ok := counterHelp[name]; ok {
		return h
	}
	return "rpdbscan expvar counter " + name + "."
}
