package obs

import (
	"expvar"
	"math"
	"sync"
	"sync/atomic"
)

// NumHistogramBuckets is the number of finite histogram buckets. Bounds
// grow by a factor of √2 per bucket starting at 1, so 96 buckets cover
// [0, 2^48) — about 78 hours when recording nanoseconds — with every
// quantile estimate within one √2-wide bucket of the true value. One
// additional overflow bucket catches anything beyond the last bound.
const NumHistogramBuckets = 96

// bucketBounds[i] is the inclusive upper bound of bucket i: value v lands
// in the first bucket with v <= bucketBounds[i]. Bounds are the powers of
// √2 rounded up to the next integer (deduplicated at the low end where
// rounding would collide), so consecutive bounds differ by at most √2.
var bucketBounds = func() [NumHistogramBuckets]int64 {
	var b [NumHistogramBuckets]int64
	v := int64(1)
	for i := range b {
		b[i] = v
		next := int64(math.Ceil(float64(v) * math.Sqrt2))
		if next <= v {
			next = v + 1
		}
		v = next
	}
	return b
}()

// Histogram is a lock-free fixed-bucket log-scale histogram: Record is one
// atomic add per bucket plus count/sum/min/max maintenance, safe for any
// number of concurrent writers, and never allocates. A nil *Histogram is
// valid and records nothing, so call sites can hook unconditionally; the
// disabled path is a single pointer comparison (BenchmarkHistogramRecord).
type Histogram struct {
	name string
	help string

	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Int64
	max     atomic.Int64
	buckets [NumHistogramBuckets + 1]atomic.Uint64
}

// NewHistogram builds an unregistered histogram. Name should follow the
// "rpdbscan.*" convention of the counter registry; help is the sentence
// the Prometheus exposition emits as the family's # HELP line.
func NewHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Help returns the histogram's one-line description.
func (h *Histogram) Help() string { return h.help }

// Record adds one observation. Negative values are clamped to zero (the
// recorded quantities — durations, sizes, counts — are never meaningfully
// negative). A nil receiver records nothing.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// bucketIndex returns the bucket for v: the first bound >= v, or the
// overflow bucket. Branch-only binary search over the fixed bound table —
// no allocation, ~7 comparisons.
func bucketIndex(v int64) int {
	lo, hi := 0, NumHistogramBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo // == NumHistogramBuckets when v exceeds every bound
}

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) int64 { return bucketBounds[i] }

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// recording may tear across fields (a Record between the count and bucket
// loads), so a snapshot is "some consistent-enough recent state": bucket
// totals and count may transiently differ by in-flight records, which the
// quantile walk tolerates by clamping ranks.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if mn := h.min.Load(); mn != math.MaxInt64 {
		s.Min = mn
	}
	if mx := h.max.Load(); mx != math.MinInt64 {
		s.Max = mx
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state. Snapshots
// merge (associatively and commutatively) and difference, so per-window
// views — "the requests since the benchmark started" — fall out of two
// snapshots of one live histogram.
type HistogramSnapshot struct {
	// Name is the source histogram's registry name ("" for derived
	// snapshots built by Merge/Sub of differently-named parents).
	Name string
	// Count is the number of recorded observations; Sum their total.
	Count uint64
	Sum   uint64
	// Min and Max are the smallest and largest recorded values, valid only
	// when Count > 0. Sub windows inherit the receiver's bounds (the true
	// window extremes are not recoverable from bucket counts; the global
	// bounds remain correct as outer bounds).
	Min int64
	Max int64
	// Buckets[i] counts observations in bucket i; the last entry is the
	// overflow bucket.
	Buckets [NumHistogramBuckets + 1]uint64
}

// Merge returns the combination of two snapshots, as if every observation
// of both had been recorded into one histogram. Merge is associative and
// commutative (the property tests pin this), which is what makes per-shard
// histograms aggregable in any order.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	if out.Name != o.Name {
		out.Name = ""
	}
	out.Count += o.Count
	out.Sum += o.Sum
	switch {
	case s.Count == 0:
		out.Min, out.Max = o.Min, o.Max
	case o.Count == 0:
	default:
		out.Min = min(s.Min, o.Min)
		out.Max = max(s.Max, o.Max)
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Sub returns the window delta s - o, where o is an earlier snapshot of
// the same histogram. Count, Sum, and Buckets subtract exactly; Min/Max
// stay the receiver's (outer bounds for the window).
func (s HistogramSnapshot) Sub(o HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count -= o.Count
	out.Sum -= o.Sum
	for i := range out.Buckets {
		out.Buckets[i] -= o.Buckets[i]
	}
	return out
}

// Mean returns the arithmetic mean of recorded values, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) as the upper bound of
// the bucket holding the rank-⌈q·Count⌉ observation, clamped to the
// recorded Max when that is tighter. The estimate e of a true quantile t
// therefore satisfies t <= e < t·√2 + 1 — "within bucket width" — which
// the property tests pin against exact order statistics. Returns 0 for an
// empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i == NumHistogramBuckets {
				return s.Max // overflow bucket: only the true max bounds it
			}
			e := bucketBounds[i]
			if s.Max > 0 && s.Max < e {
				e = s.Max
			}
			return e
		}
	}
	// Torn snapshot (count loaded ahead of a racing bucket increment):
	// fall back to the largest recorded value.
	return s.Max
}

// Histograms is the process-wide registry of pipeline histograms, the
// quantile-bearing complement of Counters. Each histogram is also
// published in expvar (as its snapshot) and rendered as a Prometheus
// histogram family by WriteMetrics.
var Histograms = struct {
	// ServeLatencyNs records per-request handler latency of the prediction
	// server, in nanoseconds (the distribution behind the mean that
	// rpdbscan.serve_latency_ns / rpdbscan.serve_requests yields).
	ServeLatencyNs *Histogram
	// PredictBatchPoints records the number of points per /predict/batch
	// request.
	PredictBatchPoints *Histogram
	// TaskCostNs records the measured cost of every successful engine task
	// attempt, in nanoseconds (requires an installed event sink).
	TaskCostNs *Histogram
	// StreamChunkPoints records the number of points per ingested
	// out-of-core chunk.
	StreamChunkPoints *Histogram
	// IngestBatchPoints records the number of points per accepted /ingest
	// request.
	IngestBatchPoints *Histogram
	// RefitDurationNs records wall time of each completed micro-batch
	// refit (the RunStream fit plus model construction), in nanoseconds.
	RefitDurationNs *Histogram
	// SwapLatencyNs records the hot-swap window of each refit — artifact
	// persist, reload validation, and the atomic pointer flip — in
	// nanoseconds. The served model is stale-but-valid for this long
	// after a fit completes, never absent.
	SwapLatencyNs *Histogram
	// ManifestAppendNs records the durable-append window of each registry
	// manifest batch (frame writes + fsync + HEAD seal), in nanoseconds.
	// Appends are batched off the swap path, so this bounds publish-to-
	// durable lag, not swap latency.
	ManifestAppendNs *Histogram
}{
	ServeLatencyNs:     registerHistogram("rpdbscan.serve_latency_ns", "Prediction-server handler latency in nanoseconds."),
	PredictBatchPoints: registerHistogram("rpdbscan.predict_batch_points", "Points per /predict/batch request."),
	TaskCostNs:         registerHistogram("rpdbscan.task_cost_ns", "Measured engine task cost per successful attempt, in nanoseconds."),
	StreamChunkPoints:  registerHistogram("rpdbscan.stream_chunk_points", "Points per ingested out-of-core chunk."),
	IngestBatchPoints:  registerHistogram("rpdbscan.ingest_batch_points", "Points per accepted /ingest request."),
	RefitDurationNs:    registerHistogram("rpdbscan.refit_duration_ns", "Micro-batch refit duration (fit + model build), in nanoseconds."),
	SwapLatencyNs:      registerHistogram("rpdbscan.swap_latency_ns", "Hot-swap window (persist + validate + pointer flip), in nanoseconds."),
	ManifestAppendNs:   registerHistogram("rpdbscan.manifest_append_ns", "Registry manifest batch append (frames + fsync + HEAD seal), in nanoseconds."),
}

// histRegistry lists the registered histograms in registration order for
// the Prometheus exposition.
var histRegistry struct {
	sync.Mutex
	hs []*Histogram
}

// registerHistogram builds a histogram, publishes its snapshot in expvar
// under the histogram's name + ".hist" (keeping /debug/vars exhaustive),
// and adds it to the /metrics exposition.
func registerHistogram(name, help string) *Histogram {
	h := NewHistogram(name, help)
	expvar.Publish(name+".hist", expvar.Func(func() any {
		s := h.Snapshot()
		return map[string]any{
			"count": s.Count,
			"sum":   s.Sum,
			"p50":   s.Quantile(0.50),
			"p99":   s.Quantile(0.99),
			"p999":  s.Quantile(0.999),
			"max":   s.Max,
		}
	}))
	histRegistry.Lock()
	defer histRegistry.Unlock()
	histRegistry.hs = append(histRegistry.hs, h)
	return h
}

// registeredHistograms returns the exposition's histogram list.
func registeredHistograms() []*Histogram {
	histRegistry.Lock()
	defer histRegistry.Unlock()
	return append([]*Histogram(nil), histRegistry.hs...)
}
