// Prometheus text exposition (stdlib only): WriteMetrics renders every
// rpdbscan.* expvar counter, every registered histogram, and the gauges of
// the last published run Snapshot in the version 0.0.4 text format, with
// # HELP / # TYPE lines per family. MetricsHandler mounts it at /metrics
// on both the debug server and the prediction server's mux.
//
// ParseExposition is the matching strict parser: CI scrapes a live
// /metrics and rejects the build if the output has malformed HELP/TYPE
// lines, broken label escaping, or inconsistent histogram series. Keeping
// writer and parser in one package means the round-trip test pins them
// against each other.
package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promName maps an expvar-style dotted name ("rpdbscan.points_read") to a
// valid Prometheus metric name ("rpdbscan_points_read"): every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_'
// prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a # HELP text per the exposition format: backslash
// and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// counterPrefix selects which expvar vars the exposition exports.
const counterPrefix = "rpdbscan."

// WriteMetrics renders the full exposition: one counter family per
// rpdbscan.* expvar.Int (sorted by name, with the conventional _total
// suffix), one histogram family per registered histogram, and the phase /
// run gauge families of the last published Snapshot (omitted until a run
// publishes one). Output is deterministic up to the monotone counter
// values.
func WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)

	type counter struct {
		name  string
		value int64
	}
	var counters []counter
	expvar.Do(func(kv expvar.KeyValue) {
		if !strings.HasPrefix(kv.Key, counterPrefix) {
			return
		}
		if v, ok := kv.Value.(*expvar.Int); ok {
			counters = append(counters, counter{kv.Key, v.Value()})
		}
	})
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, c := range counters {
		name := promName(c.name) + "_total"
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(CounterHelp(c.name)))
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, c.value)
	}

	for _, h := range registeredHistograms() {
		s := h.Snapshot()
		name := promName(h.Name())
		// The rendered count is the bucket total, not the count field: a
		// scrape racing live recording may observe a bucket increment whose
		// count increment it missed (or vice versa), and the exposition's
		// invariant — +Inf bucket == _count >= every finite bucket — must
		// hold on every scrape.
		var total uint64
		for _, c := range s.Buckets {
			total += c
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(h.Help()))
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		finite := total - s.Buckets[NumHistogramBuckets]
		var cum uint64
		for i, c := range s.Buckets[:NumHistogramBuckets] {
			cum += c
			// Empty-prefix suppression keeps the family readable: leading
			// zero buckets collapse into the first populated bound, and
			// the series stops once every finite observation is counted.
			if cum == 0 && i+1 < NumHistogramBuckets && s.Buckets[i+1] == 0 {
				continue
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, BucketBound(i), cum)
			if cum == finite {
				break
			}
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(bw, "%s_sum %d\n", name, s.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", name, total)
	}

	if snap := PublishedSnapshot(); snap != nil {
		writeSnapshotGauges(bw, snap)
	}
	return bw.Flush()
}

// gaugeFamily renders one labelled gauge family.
func gaugeFamily(w io.Writer, name, help, label string, rows []gaugeRow) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	for _, r := range rows {
		if label == "" {
			fmt.Fprintf(w, "%s %d\n", name, r.value)
		} else {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, label, escapeLabel(r.key), r.value)
		}
	}
}

type gaugeRow struct {
	key   string
	value int64
}

// writeSnapshotGauges renders the published Snapshot as gauge families:
// per-phase wall / simulated / bytes / alloc / retries / fault gauges plus
// run-level totals. The snapshot is the single source — the same struct
// that backs `rpdbscan -stats` and -stats-json.
func writeSnapshotGauges(w io.Writer, s *Snapshot) {
	perPhase := func(f func(p PhaseSnapshot) int64) []gaugeRow {
		rows := make([]gaugeRow, 0, len(s.Phases))
		for _, p := range s.Phases {
			rows = append(rows, gaugeRow{p.Phase, f(p)})
		}
		return rows
	}
	gaugeFamily(w, "rpdbscan_phase_wall_ns", "Per-phase wall-clock time of the last run, in nanoseconds.", "phase",
		perPhase(func(p PhaseSnapshot) int64 { return p.WallNs }))
	gaugeFamily(w, "rpdbscan_phase_simulated_ns", "Per-phase simulated makespan of the last run on the virtual cluster, in nanoseconds.", "phase",
		perPhase(func(p PhaseSnapshot) int64 { return p.SimulatedNs }))
	gaugeFamily(w, "rpdbscan_phase_bytes", "Per-phase accounted payload bytes (broadcast + shuffle) of the last run.", "phase",
		perPhase(func(p PhaseSnapshot) int64 { return p.Bytes }))
	gaugeFamily(w, "rpdbscan_phase_alloc_delta_bytes", "Per-phase heap allocation growth of the last run, in bytes.", "phase",
		perPhase(func(p PhaseSnapshot) int64 { return p.AllocDeltaBytes }))
	gaugeFamily(w, "rpdbscan_phase_retries", "Per-phase re-executed task attempts of the last run.", "phase",
		perPhase(func(p PhaseSnapshot) int64 { return p.Retries }))
	gaugeFamily(w, "rpdbscan_phase_faults_injected", "Per-phase injected task failures of the last run.", "phase",
		perPhase(func(p PhaseSnapshot) int64 { return p.Faults.Injected }))
	gaugeFamily(w, "rpdbscan_phase_speculative_launches", "Per-phase speculative task launches of the last run.", "phase",
		perPhase(func(p PhaseSnapshot) int64 { return p.Faults.SpecLaunches }))

	run := []struct {
		name, help string
		value      int64
	}{
		{"rpdbscan_run_workers", "Virtual worker count of the last run.", int64(s.Workers)},
		{"rpdbscan_run_points", "Points clustered by the last run.", s.Run.Points},
		{"rpdbscan_run_clusters", "Clusters found by the last run.", int64(s.Run.Clusters)},
		{"rpdbscan_run_cells", "Grid cells materialized by the last run.", int64(s.Run.Cells)},
		{"rpdbscan_run_dict_bytes", "Encoded two-level cell dictionary size of the last run, in bytes.", int64(s.Run.DictBytes)},
		{"rpdbscan_run_simulated_ns", "Total simulated elapsed time of the last run, in nanoseconds.", s.SimulatedNs},
		{"rpdbscan_run_wall_ns", "Total wall-clock stage time of the last run, in nanoseconds.", s.WallNs},
	}
	for _, g := range run {
		gaugeFamily(w, g.name, g.help, "", []gaugeRow{{"", g.value}})
	}
}

// MetricsHandler serves WriteMetrics with the exposition content type.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w)
	})
}

// MetricFamily is one parsed exposition family: its # TYPE, optional
// # HELP, and samples in input order.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name (family name plus _bucket/_sum/_count
	// for histogram series).
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition parses and validates Prometheus text-format input the
// way the CI smoke gate needs: strictly. It rejects
//
//   - malformed or duplicated # HELP / # TYPE lines, and HELP/TYPE that
//     appear after the family's first sample,
//   - invalid metric and label names, unterminated or badly-escaped label
//     values, and malformed sample values,
//   - samples whose family has no preceding # TYPE,
//   - histogram families with missing +Inf buckets, non-cumulative bucket
//     series, or _count disagreeing with the +Inf bucket.
//
// It returns the families keyed by name.
func ParseExposition(r io.Reader) (map[string]*MetricFamily, error) {
	families := make(map[string]*MetricFamily)
	sampled := make(map[string]bool) // families that have emitted a sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families, sampled); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(s.Name, families)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
		sampled[fam.Name] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return families, nil
}

// parseComment handles # HELP / # TYPE lines (other comments are ignored
// per the format).
func parseComment(line string, families map[string]*MetricFamily, sampled map[string]bool) error {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " ")
	keyword, rest, _ := strings.Cut(rest, " ")
	switch keyword {
	case "HELP":
		name, help, ok := strings.Cut(rest, " ")
		if !ok && name == "" {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !validMetricName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if sampled[name] {
			return fmt.Errorf("HELP for %s after its samples", name)
		}
		unescaped, err := unescapeHelp(help)
		if err != nil {
			return fmt.Errorf("HELP for %s: %w", name, err)
		}
		fam := families[name]
		if fam == nil {
			fam = &MetricFamily{Name: name}
			families[name] = fam
		}
		if fam.Help != "" {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		fam.Help = unescaped
	case "TYPE":
		name, typ, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		fam := families[name]
		if fam == nil {
			fam = &MetricFamily{Name: name}
			families[name] = fam
		}
		if fam.Type != "" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		fam.Type = typ
	}
	return nil
}

// familyOf resolves a sample name to its declared family: exact match, or
// the histogram/summary series suffixes.
func familyOf(name string, families map[string]*MetricFamily) *MetricFamily {
	if f := families[name]; f != nil && f.Type != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f := families[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

// parseSample parses `name{label="value",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " \t")
	valueStr, tsStr, _ := strings.Cut(rest, " ")
	if valueStr == "" {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	if tsStr = strings.TrimSpace(tsStr); tsStr != "" {
		if _, err := strconv.ParseInt(tsStr, 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp: %w", line, err)
		}
	}
	return s, nil
}

// parseLabels parses a `{name="value",...}` block, validating label names
// and escape sequences, and returns the remainder of the line.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		start := i
		for i < len(in) && isNameChar(in[i], i-start) {
			i++
		}
		name := in[start:i]
		if name == "" || !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name in %q", in)
		}
		if i >= len(in) || in[i] != '=' {
			return nil, "", fmt.Errorf("label %s missing '=' in %q", name, in)
		}
		i++
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("label %s value not quoted in %q", name, in)
		}
		i++
		var b strings.Builder
		closed := false
		for i < len(in) {
			c := in[i]
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("label %s: dangling backslash", name)
				}
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: invalid escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, "", fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = b.String()
	}
}

// unescapeHelp validates and unescapes a HELP text.
func unescapeHelp(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling backslash in help text")
		}
		switch s[i+1] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("invalid escape \\%c in help text", s[i+1])
		}
		i++
	}
	return b.String(), nil
}

func isNameChar(c byte, pos int) bool {
	if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return c >= '0' && c <= '9' && pos > 0
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	// Same charset as metric names minus ':'.
	if s == "" || strings.Contains(s, ":") {
		return false
	}
	return validMetricName(s)
}

// validateHistogram checks the internal consistency of one histogram
// family: a +Inf bucket exists, the bucket series is cumulative in le, and
// _count equals the +Inf bucket.
func validateHistogram(fam *MetricFamily) error {
	type bkt struct {
		le  float64
		val float64
	}
	var buckets []bkt
	var count float64
	var haveCount, haveSum, haveInf bool
	var inf float64
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			if leStr == "+Inf" {
				haveInf = true
				inf = s.Value
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("bad le %q: %w", leStr, err)
			}
			buckets = append(buckets, bkt{le, s.Value})
		case fam.Name + "_count":
			haveCount = true
			count = s.Value
		case fam.Name + "_sum":
			haveSum = true
		}
	}
	if !haveInf {
		return fmt.Errorf("missing +Inf bucket")
	}
	if !haveCount || !haveSum {
		return fmt.Errorf("missing _count or _sum series")
	}
	if count != inf {
		return fmt.Errorf("_count %v != +Inf bucket %v", count, inf)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	prev := 0.0
	for _, b := range buckets {
		if b.val < prev {
			return fmt.Errorf("bucket series not cumulative at le=%v", b.le)
		}
		prev = b.val
	}
	if prev > inf {
		return fmt.Errorf("finite bucket %v exceeds +Inf bucket %v", prev, inf)
	}
	return nil
}
