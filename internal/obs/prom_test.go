package obs

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rpdbscan/internal/engine"
)

// The writer/parser round trip: everything WriteMetrics emits must pass
// the strict parser, and the output must carry every rpdbscan.* counter
// plus every registered histogram.
func TestWriteMetricsRoundTrip(t *testing.T) {
	// Touch the surfaces so the exposition has live data: counters,
	// histograms, and a published snapshot.
	Counters.PointsRead.Add(3)
	Histograms.ServeLatencyNs.Record(1234)
	Histograms.ServeLatencyNs.Record(56789)
	Histograms.TaskCostNs.Record(42)
	rep := &engine.Report{Workers: 4, Stages: []*engine.StageStats{
		{Name: "cell-partitioning", Phase: "I-1", Costs: []time.Duration{time.Millisecond}, Wall: time.Millisecond, Bytes: 100},
	}}
	TakeSnapshot(rep, RunInfo{Algorithm: "rp", Points: 10, Clusters: 2, Cells: 5}).Publish()

	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output rejected: %v\n%s", err, buf.String())
	}
	for name := range CounterValues() {
		fam := fams[promName(name)+"_total"]
		if fam == nil {
			t.Fatalf("counter %s missing from exposition", name)
		}
		if fam.Type != "counter" || fam.Help == "" {
			t.Fatalf("counter %s family malformed: %+v", name, fam)
		}
	}
	for _, h := range registeredHistograms() {
		fam := fams[promName(h.Name())]
		if fam == nil {
			t.Fatalf("histogram %s missing from exposition", h.Name())
		}
		if fam.Type != "histogram" {
			t.Fatalf("histogram %s has type %q", h.Name(), fam.Type)
		}
	}
	for _, g := range []string{"rpdbscan_phase_wall_ns", "rpdbscan_run_points", "rpdbscan_run_workers"} {
		fam := fams[g]
		if fam == nil || fam.Type != "gauge" {
			t.Fatalf("gauge %s missing or mistyped", g)
		}
	}
	// The published snapshot's run facts surface as gauge values.
	if v := fams["rpdbscan_run_points"].Samples[0].Value; v != 10 {
		t.Fatalf("rpdbscan_run_points = %v, want 10", v)
	}
}

// Histogram quantiles derived from the exposition buckets must agree with
// the histogram's own Quantile: the exposition is a faithful projection.
func TestExpositionBucketsMatchQuantiles(t *testing.T) {
	h := NewHistogram("rpdbscan.test_hist_q", "test only")
	for v := int64(1); v <= 1000; v++ {
		h.Record(v * 17)
	}
	histRegistry.Lock()
	histRegistry.hs = append(histRegistry.hs, h)
	histRegistry.Unlock()
	defer func() {
		histRegistry.Lock()
		histRegistry.hs = histRegistry.hs[:len(histRegistry.hs)-1]
		histRegistry.Unlock()
	}()

	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fam := fams["rpdbscan_test_hist_q"]
	if fam == nil {
		t.Fatal("test histogram not rendered")
	}
	// Reconstruct p99 from the cumulative buckets and compare with
	// Quantile(0.99) — same bucket bound, clamped to max.
	s := h.Snapshot()
	rank := 990.0
	var bucketP99 float64
	for _, sm := range fam.Samples {
		if sm.Name != "rpdbscan_test_hist_q_bucket" || sm.Labels["le"] == "+Inf" {
			continue
		}
		if sm.Value >= rank {
			le := sm.Labels["le"]
			var v float64
			for i := 0; i < len(le); i++ {
				v = v*10 + float64(le[i]-'0')
			}
			bucketP99 = v
			break
		}
	}
	q := float64(s.Quantile(0.99))
	if q > float64(s.Max) {
		t.Fatalf("quantile beyond max")
	}
	if bucketP99 < q && bucketP99 != 0 {
		// Quantile clamps to Max; the raw bucket bound may exceed it but
		// never undershoot.
		t.Fatalf("bucket-derived p99 %v < Quantile p99 %v", bucketP99, q)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"rpdbscan.points_read": "rpdbscan_points_read",
		"weird-name.1":         "weird_name_1",
		"9lead":                "_9lead",
		"ok:colon":             "ok:colon",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":      "foo 1\n",
		"duplicate HELP":           "# HELP foo a\n# HELP foo b\n# TYPE foo counter\nfoo 1\n",
		"duplicate TYPE":           "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"unknown TYPE":             "# TYPE foo widget\nfoo 1\n",
		"HELP after samples":       "# TYPE foo counter\nfoo 1\n# HELP foo late\n",
		"TYPE after samples":       "# TYPE foo counter\nfoo 1\n# TYPE foo gauge\n",
		"invalid metric name":      "# TYPE 1foo counter\n",
		"bad sample value":         "# TYPE foo counter\nfoo abc\n",
		"missing sample value":     "# TYPE foo counter\nfoo\n",
		"bad timestamp":            "# TYPE foo counter\nfoo 1 xyz\n",
		"unterminated label":       "# TYPE foo counter\nfoo{a=\"x 1\n",
		"unquoted label":           "# TYPE foo counter\nfoo{a=x} 1\n",
		"bad label escape":         "# TYPE foo counter\nfoo{a=\"\\q\"} 1\n",
		"dangling label escape":    "# TYPE foo counter\nfoo{a=\"\\\n",
		"duplicate label":          "# TYPE foo counter\nfoo{a=\"1\",a=\"2\"} 1\n",
		"label missing equals":     "# TYPE foo counter\nfoo{a} 1\n",
		"bad help escape":          "# HELP foo bad \\q escape\n# TYPE foo counter\nfoo 1\n",
		"histogram without +Inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n",
		"histogram not cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram missing sum":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"bucket without le":        "# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"bucket le not a number":   "# TYPE h histogram\nh_bucket{le=\"abc\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"finite above +Inf":        "# TYPE h histogram\nh_bucket{le=\"1\"} 9\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, in)
		}
	}
}

func TestParseExpositionAcceptsValid(t *testing.T) {
	in := `# A stray comment line is fine.
# HELP foo A counter with \\ and \n escapes.
# TYPE foo counter
foo 42
# TYPE g gauge
g{phase="I-1",note="a\"b\\c\nd"} -1.5
# TYPE h histogram
h_bucket{le="10"} 1
h_bucket{le="+Inf"} 2
h_sum 110
h_count 2
h_count 2 1700000000
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams["foo"].Help != `A counter with \ and `+"\n"+` escapes.` {
		t.Fatalf("help unescaped wrong: %q", fams["foo"].Help)
	}
	if got := fams["g"].Samples[0].Labels["note"]; got != "a\"b\\c\nd" {
		t.Fatalf("label unescaped wrong: %q", got)
	}
	if len(fams["h"].Samples) != 5 {
		t.Fatalf("histogram samples = %d", len(fams["h"].Samples))
	}
}

func TestMetricsHandler(t *testing.T) {
	w := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if _, err := ParseExposition(w.Body); err != nil {
		t.Fatalf("handler output rejected: %v", err)
	}
}

// TestExpositionFileValidates is the CI hook: when METRICS_FILE names a
// scraped /metrics response, parse it strictly and require the serving
// counter families. Skipped in normal test runs.
func TestExpositionFileValidates(t *testing.T) {
	path := os.Getenv("METRICS_FILE")
	if path == "" {
		t.Skip("METRICS_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := ParseExposition(f)
	if err != nil {
		t.Fatalf("scraped exposition invalid: %v", err)
	}
	for _, want := range []string{
		"rpdbscan_serve_requests_total",
		"rpdbscan_serve_latency_ns_total",
		"rpdbscan_serve_latency_ns", // histogram family
	} {
		if fams[want] == nil {
			t.Errorf("scraped exposition missing family %s", want)
		}
	}
}
