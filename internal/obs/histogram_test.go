package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"rpdbscan/internal/testutil"
)

func TestBucketBoundsStrictlyIncreasing(t *testing.T) {
	for i := 1; i < NumHistogramBuckets; i++ {
		lo, hi := BucketBound(i-1), BucketBound(i)
		if hi <= lo {
			t.Fatalf("bounds not increasing at %d: %d -> %d", i, lo, hi)
		}
		// The log-scale guarantee: consecutive bounds within a √2 factor
		// (plus the +1 rounding at the integer low end).
		if float64(hi) > float64(lo)*math.Sqrt2+1 {
			t.Fatalf("bound gap too wide at %d: %d -> %d", i, lo, hi)
		}
	}
	if BucketBound(0) != 1 {
		t.Fatalf("first bound = %d, want 1", BucketBound(0))
	}
	if BucketBound(NumHistogramBuckets-1) < 1<<47 {
		t.Fatalf("last bound = %d, want >= 2^47", BucketBound(NumHistogramBuckets-1))
	}
}

func TestBucketIndexFindsContainingBucket(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 20, 1 << 46} {
		i := bucketIndex(v)
		if i == NumHistogramBuckets {
			t.Fatalf("v=%d overflowed", v)
		}
		if BucketBound(i) < v {
			t.Fatalf("v=%d: bound(%d)=%d < v", v, i, BucketBound(i))
		}
		if i > 0 && BucketBound(i-1) >= v {
			t.Fatalf("v=%d: not the first bucket (bound(%d)=%d)", v, i-1, BucketBound(i-1))
		}
	}
	if i := bucketIndex(math.MaxInt64); i != NumHistogramBuckets {
		t.Fatalf("MaxInt64 landed in finite bucket %d", i)
	}
}

func TestNilHistogramIsSafe(t *testing.T) {
	var h *Histogram
	h.Record(42) // must not panic
}

func TestRecordNegativeClampsToZero(t *testing.T) {
	h := NewHistogram("t.neg", "")
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative record mis-clamped: %+v", s)
	}
}

func TestSnapshotBasics(t *testing.T) {
	h := NewHistogram("t.basic", "help")
	if h.Name() != "t.basic" || h.Help() != "help" {
		t.Fatalf("name/help lost")
	}
	for _, v := range []int64{5, 10, 100} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 115 || s.Min != 5 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Mean(); got != 115.0/3 {
		t.Fatalf("mean = %v", got)
	}
	if (HistogramSnapshot{}).Mean() != 0 || (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot not zero-valued")
	}
}

// randomSnapshot builds a snapshot of n values drawn by rng, all under
// maxV, sharing one name so Merge keeps it.
func randomSnapshot(rng *rand.Rand, n int, maxV int64) HistogramSnapshot {
	h := NewHistogram("t.prop", "")
	for i := 0; i < n; i++ {
		h.Record(rng.Int63n(maxV))
	}
	return h.Snapshot()
}

func TestMergeCommutativeAssociative(t *testing.T) {
	cfg := testutil.QuickConfig(t, 7, 1)
	rng := cfg.Rand
	for trial := 0; trial < 200; trial++ {
		a := randomSnapshot(rng, rng.Intn(50), 1<<40)
		b := randomSnapshot(rng, rng.Intn(50), 1<<40)
		c := randomSnapshot(rng, rng.Intn(50), 1<<40)
		if ab, ba := a.Merge(b), b.Merge(a); !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative:\n%+v\n%+v", trial, ab, ba)
		}
		l, r := a.Merge(b).Merge(c), a.Merge(b.Merge(c))
		if !reflect.DeepEqual(l, r) {
			t.Fatalf("trial %d: merge not associative:\n%+v\n%+v", trial, l, r)
		}
		// Empty is the identity.
		if got := a.Merge(HistogramSnapshot{Name: "t.prop"}); !reflect.DeepEqual(got, a) {
			t.Fatalf("trial %d: empty merge changed snapshot", trial)
		}
	}
}

func TestMergeAcrossNamesDropsName(t *testing.T) {
	a := HistogramSnapshot{Name: "x"}
	b := HistogramSnapshot{Name: "y"}
	if got := a.Merge(b).Name; got != "" {
		t.Fatalf("merged name = %q, want empty", got)
	}
}

func TestSubInvertsMerge(t *testing.T) {
	cfg := testutil.QuickConfig(t, 11, 1)
	rng := cfg.Rand
	for trial := 0; trial < 100; trial++ {
		a := randomSnapshot(rng, 1+rng.Intn(40), 1<<30)
		b := randomSnapshot(rng, rng.Intn(40), 1<<30)
		got := a.Merge(b).Sub(b)
		// Min/Max are outer bounds after Sub; counts and buckets invert
		// exactly.
		if got.Count != a.Count || got.Sum != a.Sum || got.Buckets != a.Buckets {
			t.Fatalf("trial %d: sub did not invert merge", trial)
		}
	}
}

// Quantile estimates must bound the exact order statistic from above,
// within one √2-wide bucket: exact <= estimate <= exact*√2 + 1 (and never
// above the recorded max).
func TestQuantileWithinBucketWidth(t *testing.T) {
	cfg := testutil.QuickConfig(t, 23, 1)
	rng := cfg.Rand
	qs := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		h := NewHistogram("t.q", "")
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1 << 40)
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range qs {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			e := s.Quantile(q)
			if e < exact {
				t.Fatalf("trial %d q=%v: estimate %d < exact %d", trial, q, e, exact)
			}
			if float64(e) > float64(exact)*math.Sqrt2+1 {
				t.Fatalf("trial %d q=%v: estimate %d beyond bucket width of exact %d", trial, q, e, exact)
			}
			if e > s.Max {
				t.Fatalf("trial %d q=%v: estimate %d exceeds max %d", trial, q, e, s.Max)
			}
		}
	}
}

func TestQuantileOverflowBucketReturnsMax(t *testing.T) {
	h := NewHistogram("t.ovf", "")
	huge := int64(1) << 50 // beyond the last finite bound
	h.Record(huge)
	if got := h.Snapshot().Quantile(1); got != huge {
		t.Fatalf("overflow quantile = %d, want %d", got, huge)
	}
}

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	h := NewHistogram("t.clamp", "")
	h.Record(10)
	s := h.Snapshot()
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Fatal("out-of-range q not clamped")
	}
}

func TestConcurrentRecordLosesNothing(t *testing.T) {
	h := NewHistogram("t.conc", "")
	const goroutines, each = 8, 1000
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < each; i++ {
				h.Record(int64(g*each + i))
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	s := h.Snapshot()
	if s.Count != goroutines*each {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*each)
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	if s.Min != 0 || s.Max != goroutines*each-1 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
}

func TestRegisteredHistogramsExposeExpvar(t *testing.T) {
	// The package-level registry publishes each histogram's snapshot under
	// <name>.hist; ServeLatencyNs must be there.
	found := false
	for _, h := range registeredHistograms() {
		if h == Histograms.ServeLatencyNs {
			found = true
		}
	}
	if !found {
		t.Fatal("ServeLatencyNs not in the exposition registry")
	}
}

// The acceptance gate: a nil histogram record is ~free, and the enabled
// path never allocates.
func BenchmarkHistogramRecord(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var h *Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(int64(i))
		}
	})
	b.Run("enabled", func(b *testing.B) {
		h := NewHistogram("bench", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(int64(i))
		}
	})
	b.Run("enabled-parallel", func(b *testing.B) {
		h := NewHistogram("bench-par", "")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(0)
			for pb.Next() {
				h.Record(v)
				v++
			}
		})
	})
}
