// Snapshot is the unified per-run telemetry record: one struct, sourced
// from the engine Report plus the counter registry, that backs every
// human- and machine-facing stats surface — the `rpdbscan -stats` table,
// the -stats-json output, the run-complete slog line, and the gauge
// families of the Prometheus exposition. Publishing a snapshot makes it
// visible to /metrics scrapes for the life of the process.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"rpdbscan/internal/engine"
)

// RunInfo carries the algorithm-level facts of one run that the engine
// Report cannot know: what was clustered and what came out.
type RunInfo struct {
	// Algorithm names the algorithm that ran ("rp", "exact", ...).
	Algorithm string `json:"algorithm"`
	// Points is the number of input points clustered.
	Points int64 `json:"points"`
	// Clusters is the number of clusters found.
	Clusters int `json:"clusters"`
	// Cells and SubCells are the two-level cell dictionary's level sizes
	// (zero for algorithms without a dictionary).
	Cells    int `json:"cells"`
	SubCells int `json:"sub_cells"`
	// DictBytes is the encoded dictionary size in bytes.
	DictBytes int `json:"dict_bytes"`
	// Streamed reports whether the out-of-core pipeline ran; the stream
	// fields below are meaningful only when it did.
	Streamed bool `json:"streamed"`
	// Chunks is the number of input chunks ingested.
	Chunks int `json:"chunks,omitempty"`
	// SpillBytes is the payload written to partition spill files.
	SpillBytes int64 `json:"spill_bytes,omitempty"`
	// SpillReloads counts spill-file scans after the initial write.
	SpillReloads int64 `json:"spill_reloads,omitempty"`
}

// FaultSnapshot is the JSON-stable mirror of engine.FaultStats.
type FaultSnapshot struct {
	Injected         int64 `json:"injected"`
	ChecksumRejects  int64 `json:"checksum_rejects"`
	SpecLaunches     int64 `json:"spec_launches"`
	SpecWins         int64 `json:"spec_wins"`
	BackoffVirtualNs int64 `json:"backoff_virtual_ns"`
	StragglerDelayNs int64 `json:"straggler_delay_ns"`
}

// IsZero reports whether no fault activity was recorded.
func (f FaultSnapshot) IsZero() bool { return f == FaultSnapshot{} }

func faultSnapshot(f engine.FaultStats) FaultSnapshot {
	return FaultSnapshot{
		Injected:         f.InjectedFailures,
		ChecksumRejects:  f.ChecksumRejects,
		SpecLaunches:     f.SpeculativeLaunches,
		SpecWins:         f.SpeculativeWins,
		BackoffVirtualNs: int64(f.BackoffVirtual),
		StragglerDelayNs: int64(f.StragglerDelay),
	}
}

// StageSnapshot is one engine stage, flattened for serialization.
type StageSnapshot struct {
	Name            string        `json:"name"`
	Phase           string        `json:"phase"`
	Tasks           int           `json:"tasks"`
	TotalNs         int64         `json:"total_ns"`
	WallNs          int64         `json:"wall_ns"`
	MakespanNs      int64         `json:"makespan_ns"`
	Imbalance       float64       `json:"imbalance"`
	Bytes           int64         `json:"bytes"`
	Retries         int64         `json:"retries"`
	AllocDeltaBytes int64         `json:"alloc_delta_bytes"`
	MallocDelta     int64         `json:"malloc_delta"`
	Faults          FaultSnapshot `json:"faults"`
}

// PhaseSnapshot rolls the stages of one algorithm phase into a single
// row: the per-phase cost breakdown of the paper's experiments, live.
type PhaseSnapshot struct {
	Phase           string        `json:"phase"`
	Stages          int           `json:"stages"`
	Tasks           int           `json:"tasks"`
	WallNs          int64         `json:"wall_ns"`
	SimulatedNs     int64         `json:"simulated_ns"`
	Bytes           int64         `json:"bytes"`
	Retries         int64         `json:"retries"`
	AllocDeltaBytes int64         `json:"alloc_delta_bytes"`
	Faults          FaultSnapshot `json:"faults"`
}

// Snapshot is the complete telemetry record of one run.
type Snapshot struct {
	// Workers is the virtual worker count the run simulated.
	Workers int `json:"workers"`
	// SimulatedNs is the total simulated elapsed time; WallNs the summed
	// real stage wall time.
	SimulatedNs int64 `json:"simulated_ns"`
	WallNs      int64 `json:"wall_ns"`
	// Run carries the algorithm-level facts.
	Run RunInfo `json:"run"`
	// Phases and Stages break the run down, coarse and fine.
	Phases []PhaseSnapshot `json:"phases"`
	Stages []StageSnapshot `json:"stages"`
	// Counters is the rpdbscan.* counter registry at snapshot time
	// (cumulative process-wide values, not per-run deltas).
	Counters map[string]int64 `json:"counters"`
}

// TakeSnapshot builds a Snapshot from an engine report and the run facts,
// capturing the counter registry as of now.
func TakeSnapshot(rep *engine.Report, run RunInfo) *Snapshot {
	s := &Snapshot{
		Workers:     rep.Workers,
		SimulatedNs: int64(rep.SimulatedElapsed()),
		WallNs:      int64(rep.WallElapsed()),
		Run:         run,
		Counters:    CounterValues(),
	}
	for _, p := range rep.PhaseSummaries() {
		s.Phases = append(s.Phases, PhaseSnapshot{
			Phase:           p.Phase,
			Stages:          p.Stages,
			Tasks:           p.Tasks,
			WallNs:          int64(p.Wall),
			SimulatedNs:     int64(p.Simulated),
			Bytes:           p.Bytes,
			Retries:         p.Retries,
			AllocDeltaBytes: p.AllocDelta,
			Faults:          faultSnapshot(p.Faults),
		})
	}
	for _, st := range rep.Stages {
		s.Stages = append(s.Stages, StageSnapshot{
			Name:            st.Name,
			Phase:           st.Phase,
			Tasks:           len(st.Costs),
			TotalNs:         int64(st.Total()),
			WallNs:          int64(st.Wall),
			MakespanNs:      int64(st.Makespan(rep.Workers)),
			Imbalance:       st.Imbalance(),
			Bytes:           st.Bytes,
			Retries:         st.Retries,
			AllocDeltaBytes: st.AllocDelta,
			MallocDelta:     st.MallocDelta,
			Faults:          faultSnapshot(st.Faults),
		})
	}
	return s
}

// CounterValues returns the current value of every rpdbscan.* expvar
// counter, keyed by expvar name.
func CounterValues() map[string]int64 {
	m := make(map[string]int64)
	expvar.Do(func(kv expvar.KeyValue) {
		if !strings.HasPrefix(kv.Key, counterPrefix) {
			return
		}
		if v, ok := kv.Value.(*expvar.Int); ok {
			m[kv.Key] = v.Value()
		}
	})
	return m
}

// published holds the last snapshot handed to Publish, for /metrics.
var published atomic.Pointer[Snapshot]

// Publish makes the snapshot the one /metrics renders as gauge families.
// The pipeline publishes automatically at the end of every Cluster /
// ClusterStream run; a nil method receiver is ignored.
func (s *Snapshot) Publish() {
	if s != nil {
		published.Store(s)
	}
}

// PublishedSnapshot returns the last published snapshot, or nil before
// the first run completes.
func PublishedSnapshot() *Snapshot {
	return published.Load()
}

// String renders the snapshot as the human stats table: run summary,
// per-stage breakdown, and the per-phase rollup. This is what
// `rpdbscan -stats` prints.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run (algo=%s, workers=%d): %d points, %d clusters; simulated=%v wall=%v\n",
		s.Run.Algorithm, s.Workers, s.Run.Points, s.Run.Clusters,
		time.Duration(s.SimulatedNs), time.Duration(s.WallNs))
	if s.Run.Cells > 0 {
		fmt.Fprintf(&b, "dictionary: %d cells / %d sub-cells, %d bytes\n",
			s.Run.Cells, s.Run.SubCells, s.Run.DictBytes)
	}
	if s.Run.Streamed {
		fmt.Fprintf(&b, "stream: %d chunks, %d spill bytes, %d reloads\n",
			s.Run.Chunks, s.Run.SpillBytes, s.Run.SpillReloads)
	}
	b.WriteString("stages:\n")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "  [%-5s] %-28s tasks=%-4d total=%-12v makespan=%-12v imbalance=%.2f",
			st.Phase, st.Name, st.Tasks, time.Duration(st.TotalNs),
			time.Duration(st.MakespanNs), st.Imbalance)
		if st.Bytes > 0 {
			fmt.Fprintf(&b, " bytes=%d", st.Bytes)
		}
		if st.Retries > 0 {
			fmt.Fprintf(&b, " retries=%d", st.Retries)
		}
		if f := st.Faults; !f.IsZero() {
			fmt.Fprintf(&b, " faults[inj=%d cksum=%d spec=%d/%d backoff=%v straggle=%v]",
				f.Injected, f.ChecksumRejects, f.SpecLaunches, f.SpecWins,
				time.Duration(f.BackoffVirtualNs).Round(time.Microsecond),
				time.Duration(f.StragglerDelayNs).Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	b.WriteString("phases:\n")
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "  [%-5s] stages=%-2d tasks=%-4d wall=%-12v simulated=%-12v",
			p.Phase, p.Stages, p.Tasks, time.Duration(p.WallNs), time.Duration(p.SimulatedNs))
		if p.Bytes > 0 {
			fmt.Fprintf(&b, " bytes=%d", p.Bytes)
		}
		if p.Retries > 0 {
			fmt.Fprintf(&b, " retries=%d", p.Retries)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSON writes the snapshot as indented JSON (the -stats-json
// output). Counter keys serialize sorted by virtue of encoding/json's
// map ordering.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LogArgs returns the snapshot's headline facts as slog key-value pairs
// for the run-complete log line — the same data String renders as a
// table.
func (s *Snapshot) LogArgs() []any {
	args := []any{
		"algo", s.Run.Algorithm,
		"points", s.Run.Points,
		"clusters", s.Run.Clusters,
		"workers", s.Workers,
		"simulated", time.Duration(s.SimulatedNs),
		"wall", time.Duration(s.WallNs),
	}
	if s.Run.Cells > 0 {
		args = append(args,
			"cells", s.Run.Cells,
			"sub_cells", s.Run.SubCells,
			"dict_bytes", s.Run.DictBytes)
	}
	if s.Run.Streamed {
		args = append(args,
			"chunks", s.Run.Chunks,
			"spill_bytes", s.Run.SpillBytes,
			"spill_reloads", s.Run.SpillReloads)
	}
	return args
}

// SortedCounterNames returns the snapshot's counter keys in sorted order
// (stable iteration for renderers and tests).
func (s *Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CountRun applies one run's counter side-effects to the registry: the
// shared wiring that Cluster, ClusterStream, and the rpdbscan CLI all
// funnel through instead of repeating it per call site. Shuffle bytes
// come from whichever partitioning stage ran (in-memory or spill), merge
// ops from the Phase III-1 stages, and the stream counters only from
// streamed runs.
func CountRun(rep *engine.Report, run RunInfo) {
	Counters.PointsRead.Add(run.Points)
	Counters.CellsBuilt.Add(int64(run.Cells))
	if s := rep.Stage("cell-partitioning"); s != nil {
		Counters.ShuffleBytes.Add(s.Bytes)
	}
	if s := rep.Stage("stream-spill"); s != nil {
		Counters.ShuffleBytes.Add(s.Bytes)
	}
	for _, s := range rep.Stages {
		if s.Phase == "III-1" {
			Counters.MergeOps.Add(int64(len(s.Costs)))
		}
	}
	if run.Streamed {
		Counters.StreamChunks.Add(int64(run.Chunks))
		Counters.StreamSpillBytes.Add(run.SpillBytes)
		Counters.StreamSpillReloads.Add(run.SpillReloads)
	}
}
