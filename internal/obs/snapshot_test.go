package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rpdbscan/internal/engine"
)

func snapshotTestReport() *engine.Report {
	return &engine.Report{Workers: 4, Stages: []*engine.StageStats{
		{Name: "cell-partitioning", Phase: "I-1",
			Costs: []time.Duration{time.Millisecond, 3 * time.Millisecond},
			Wall:  4 * time.Millisecond, Bytes: 1000},
		{Name: "dictionary-build", Phase: "I-2",
			Costs: []time.Duration{2 * time.Millisecond},
			Wall:  2 * time.Millisecond, Retries: 1,
			Faults: engine.FaultStats{InjectedFailures: 1, SpeculativeLaunches: 2}},
		{Name: "merge-round-0", Phase: "III-1",
			Costs: []time.Duration{time.Millisecond, time.Millisecond},
			Wall:  time.Millisecond},
		{Name: "merge-round-1", Phase: "III-1",
			Costs: []time.Duration{time.Millisecond},
			Wall:  time.Millisecond},
	}}
}

func TestTakeSnapshotRollsUpPhases(t *testing.T) {
	rep := snapshotTestReport()
	s := TakeSnapshot(rep, RunInfo{Algorithm: "rp", Points: 100, Clusters: 3, Cells: 7})
	if s.Workers != 4 {
		t.Fatalf("workers = %d", s.Workers)
	}
	if len(s.Stages) != 4 {
		t.Fatalf("stages = %d", len(s.Stages))
	}
	if len(s.Phases) != 3 {
		t.Fatalf("phases = %d: %+v", len(s.Phases), s.Phases)
	}
	// Phase order follows first appearance; III-1 folds two stages.
	if s.Phases[0].Phase != "I-1" || s.Phases[2].Phase != "III-1" {
		t.Fatalf("phase order: %+v", s.Phases)
	}
	p3 := s.Phases[2]
	if p3.Stages != 2 || p3.Tasks != 3 || p3.WallNs != int64(2*time.Millisecond) {
		t.Fatalf("III-1 rollup: %+v", p3)
	}
	if s.Phases[1].Faults.Injected != 1 || s.Phases[1].Faults.SpecLaunches != 2 {
		t.Fatalf("I-2 faults: %+v", s.Phases[1].Faults)
	}
	if s.SimulatedNs != int64(rep.SimulatedElapsed()) || s.WallNs != int64(rep.WallElapsed()) {
		t.Fatal("totals disagree with the report")
	}
	if s.Counters["rpdbscan.points_read"] != Counters.PointsRead.Value() {
		t.Fatal("counter capture missing")
	}
}

func TestSnapshotStringRendersAllSections(t *testing.T) {
	s := TakeSnapshot(snapshotTestReport(), RunInfo{
		Algorithm: "rp", Points: 100, Clusters: 3, Cells: 7, SubCells: 21, DictBytes: 512,
		Streamed: true, Chunks: 4, SpillBytes: 2048, SpillReloads: 3,
	})
	out := s.String()
	for _, want := range []string{
		"algo=rp", "100 points", "3 clusters",
		"dictionary: 7 cells / 21 sub-cells, 512 bytes",
		"stream: 4 chunks, 2048 spill bytes, 3 reloads",
		"cell-partitioning", "merge-round-1", "bytes=1000", "retries=1",
		"faults[inj=1", "phases:", "[III-1]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotWriteJSONRoundTrips(t *testing.T) {
	s := TakeSnapshot(snapshotTestReport(), RunInfo{Algorithm: "rp", Points: 100, Clusters: 3})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("stats JSON invalid: %v", err)
	}
	if back.Run.Points != 100 || back.Run.Algorithm != "rp" || len(back.Stages) != 4 {
		t.Fatalf("round trip lost data: %+v", back.Run)
	}
	if back.Counters["rpdbscan.points_read"] != s.Counters["rpdbscan.points_read"] {
		t.Fatal("counters lost in JSON")
	}
}

func TestSnapshotLogArgs(t *testing.T) {
	s := TakeSnapshot(snapshotTestReport(), RunInfo{
		Algorithm: "rp", Points: 5, Clusters: 1, Cells: 2,
		Streamed: true, Chunks: 1,
	})
	args := s.LogArgs()
	if len(args)%2 != 0 {
		t.Fatalf("odd slog args: %v", args)
	}
	keys := map[string]bool{}
	for i := 0; i < len(args); i += 2 {
		keys[args[i].(string)] = true
	}
	for _, want := range []string{"algo", "points", "clusters", "workers", "simulated", "wall", "cells", "chunks"} {
		if !keys[want] {
			t.Errorf("LogArgs missing %q", want)
		}
	}
}

func TestSortedCounterNames(t *testing.T) {
	s := TakeSnapshot(&engine.Report{Workers: 1}, RunInfo{})
	names := s.SortedCounterNames()
	if len(names) == 0 {
		t.Fatal("no counters")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names unsorted at %d: %v", i, names)
		}
	}
}

func TestPublishAndPublishedSnapshot(t *testing.T) {
	old := PublishedSnapshot()
	defer published.Store(old)
	s := TakeSnapshot(snapshotTestReport(), RunInfo{Algorithm: "rp", Points: 1})
	s.Publish()
	if got := PublishedSnapshot(); got != s {
		t.Fatal("published snapshot not visible")
	}
	// A nil publish is ignored rather than clearing the slot.
	(*Snapshot)(nil).Publish()
	if got := PublishedSnapshot(); got != s {
		t.Fatal("nil publish clobbered the snapshot")
	}
}

func TestCountRunAppliesSideEffects(t *testing.T) {
	rep := &engine.Report{Workers: 2, Stages: []*engine.StageStats{
		{Name: "cell-partitioning", Phase: "I-1", Bytes: 111},
		{Name: "stream-spill", Phase: "I-1", Bytes: 222},
		{Name: "merge-round-0", Phase: "III-1", Costs: []time.Duration{1, 1, 1}},
	}}
	p0 := Counters.PointsRead.Value()
	c0 := Counters.CellsBuilt.Value()
	sh0 := Counters.ShuffleBytes.Value()
	m0 := Counters.MergeOps.Value()
	ch0 := Counters.StreamChunks.Value()
	sb0 := Counters.StreamSpillBytes.Value()
	sr0 := Counters.StreamSpillReloads.Value()
	CountRun(rep, RunInfo{
		Points: 50, Cells: 9,
		Streamed: true, Chunks: 2, SpillBytes: 333, SpillReloads: 4,
	})
	check := func(name string, got, want int64) {
		if got != want {
			t.Errorf("%s delta = %d, want %d", name, got, want)
		}
	}
	check("PointsRead", Counters.PointsRead.Value()-p0, 50)
	check("CellsBuilt", Counters.CellsBuilt.Value()-c0, 9)
	check("ShuffleBytes", Counters.ShuffleBytes.Value()-sh0, 333)
	check("MergeOps", Counters.MergeOps.Value()-m0, 3)
	check("StreamChunks", Counters.StreamChunks.Value()-ch0, 2)
	check("StreamSpillBytes", Counters.StreamSpillBytes.Value()-sb0, 333)
	check("StreamSpillReloads", Counters.StreamSpillReloads.Value()-sr0, 4)
}

func TestCounterHelpFallback(t *testing.T) {
	if CounterHelp("rpdbscan.points_read") == CounterHelp("rpdbscan.not_a_counter") {
		t.Fatal("fallback identical to known help")
	}
	if CounterHelp("rpdbscan.unknown") == "" {
		t.Fatal("fallback empty")
	}
}

func TestSinkRecordsTaskCostHistogram(t *testing.T) {
	before := Histograms.TaskCostNs.Snapshot()
	s := NewSink(nil)
	s.Emit(engine.Event{Kind: engine.EventTaskEnd, Duration: 1500})
	window := Histograms.TaskCostNs.Snapshot().Sub(before)
	if window.Count != 1 {
		t.Fatalf("task-end not recorded: %+v", window)
	}
}
