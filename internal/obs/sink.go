package obs

import (
	"context"
	"log/slog"

	"rpdbscan/internal/engine"
)

// Sink adapts the engine's event stream to the observability layer: every
// event updates the expvar Counters, and (when a logger is attached)
// stage-level events log at Debug, task events at the trace-ish Debug-4,
// and retries/faults at Warn. A nil *Sink is a valid engine.EventSink and
// does nothing, so callers can wire it unconditionally.
type Sink struct {
	// Logger receives event logs; nil disables logging but keeps
	// counters.
	Logger *slog.Logger
}

// LevelTask is the sub-debug level used for per-task start/end events,
// which are too chatty for -log-level=debug on large runs.
const LevelTask = slog.LevelDebug - 4

var _ engine.EventSink = (*Sink)(nil)

// NewSink returns a sink logging through l (which may be nil for
// counters-only operation).
func NewSink(l *slog.Logger) *Sink { return &Sink{Logger: l} }

// Emit implements engine.EventSink.
func (s *Sink) Emit(e engine.Event) {
	if s == nil {
		return
	}
	switch e.Kind {
	case engine.EventStageEnd:
		Counters.StagesRun.Add(1)
	case engine.EventTaskRetry:
		Counters.TaskRetries.Add(1)
	case engine.EventBroadcast:
		Counters.BroadcastBytes.Add(e.Bytes)
	case engine.EventTaskFault:
		Counters.FaultsInjected.Add(1)
	case engine.EventChecksumReject:
		Counters.ChecksumRejects.Add(1)
	case engine.EventSpecLaunch:
		Counters.SpeculativeLaunches.Add(1)
	case engine.EventSpecWin:
		Counters.SpeculativeWins.Add(1)
	case engine.EventWorkerKill:
		Counters.WorkerKills.Add(1)
	case engine.EventWorkerSpawn:
		Counters.WorkerSpawns.Add(1)
	case engine.EventTaskEnd:
		Histograms.TaskCostNs.Record(int64(e.Duration))
	}
	if s.Logger == nil {
		return
	}
	switch e.Kind {
	case engine.EventStageStart:
		s.Logger.Debug("stage start", "stage", e.Stage, "phase", e.Phase)
	case engine.EventStageEnd:
		s.Logger.Debug("stage end", "stage", e.Stage, "phase", e.Phase, "wall", e.Duration)
	case engine.EventBroadcast:
		s.Logger.Debug("broadcast", "stage", e.Stage, "phase", e.Phase,
			"bytes", e.Bytes, "produce", e.Duration)
	case engine.EventTaskRetry:
		s.Logger.Warn("task retry", "stage", e.Stage, "phase", e.Phase,
			"task", e.Task, "attempt", e.Attempt, "err", e.Err)
	case engine.EventTaskFault:
		s.Logger.Warn("injected fault", "stage", e.Stage, "phase", e.Phase,
			"task", e.Task, "attempt", e.Attempt)
	case engine.EventChecksumReject:
		s.Logger.Warn("checksum reject", "stage", e.Stage, "phase", e.Phase,
			"task", e.Task, "attempt", e.Attempt, "chunk", e.Chunk, "bytes", e.Bytes)
	case engine.EventSpecLaunch:
		s.Logger.Warn("speculative launch", "stage", e.Stage, "phase", e.Phase,
			"task", e.Task, "straggler_cost", e.Duration)
	case engine.EventSpecWin:
		s.Logger.Debug("speculative win", "stage", e.Stage, "phase", e.Phase,
			"task", e.Task, "cost", e.Duration)
	case engine.EventWorkerKill:
		s.Logger.Warn("worker killed", "stage", e.Stage, "task", e.Task, "worker", e.Worker)
	case engine.EventWorkerSpawn:
		s.Logger.Info("worker respawned", "stage", e.Stage, "worker", e.Worker)
	case engine.EventTaskStart:
		// Guard before Log: the arguments are boxed at the call site, so an
		// unguarded call allocates per task even when the level is off.
		if s.Logger.Enabled(context.Background(), LevelTask) {
			s.Logger.Log(context.Background(), LevelTask, "task start", "stage", e.Stage, "task", e.Task)
		}
	case engine.EventTaskEnd:
		if s.Logger.Enabled(context.Background(), LevelTask) {
			s.Logger.Log(context.Background(), LevelTask, "task end", "stage", e.Stage, "task", e.Task,
				"attempt", e.Attempt, "cost", e.Duration)
		}
	}
}
