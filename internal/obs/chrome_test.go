package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rpdbscan/internal/engine"
)

func testReport() *engine.Report {
	return &engine.Report{Workers: 3, Stages: []*engine.StageStats{
		{Name: "cell-assignment", Phase: "I-1", Costs: []time.Duration{5, 3, 4, 2, 6}, Wall: 9},
		{Name: "dictionary-broadcast", Phase: "I-2", Costs: []time.Duration{7}, Wall: 7, Bytes: 4096},
		{Name: "cell-graph-construction", Phase: "II", Costs: []time.Duration{10, 1, 1}, Wall: 11},
	}}
}

func decodeTrace(t *testing.T, buf *bytes.Buffer) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	return tr
}

func TestChromeTraceParsesAndPairsEvents(t *testing.T) {
	r := testReport()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)

	nTasks := 0
	for _, s := range r.Stages {
		nTasks += len(s.Costs)
	}
	begins, ends := 0, 0
	open := map[int][]chromeEvent{} // per-lane stack of open B events
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "B":
			begins++
			open[e.Tid] = append(open[e.Tid], e)
		case "E":
			ends++
			stack := open[e.Tid]
			if len(stack) == 0 {
				t.Fatalf("E event with no open B on lane %d at ts=%v", e.Tid, e.Ts)
			}
			top := stack[len(stack)-1]
			if e.Ts < top.Ts {
				t.Fatalf("E before its B on lane %d: %v < %v", e.Tid, e.Ts, top.Ts)
			}
			open[e.Tid] = stack[:len(stack)-1]
		}
	}
	if begins != nTasks || ends != nTasks {
		t.Fatalf("begin/end pairs = %d/%d, want one pair per task (%d)", begins, ends, nTasks)
	}
	for tid, stack := range open {
		if len(stack) != 0 {
			t.Fatalf("lane %d has %d unclosed B events", tid, len(stack))
		}
	}
}

func TestChromeTraceLaneCountEqualsWorkers(t *testing.T) {
	r := testReport()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)
	lanes := map[int]bool{}
	for _, e := range tr.TraceEvents {
		if e.Name == "thread_name" && e.Ph == "M" {
			lanes[e.Tid] = true
		}
	}
	if len(lanes) != r.Workers {
		t.Fatalf("lane count = %d, want Workers = %d", len(lanes), r.Workers)
	}
	// No task event may land outside the declared lanes.
	for _, e := range tr.TraceEvents {
		if (e.Ph == "B" || e.Ph == "E") && !lanes[e.Tid] {
			t.Fatalf("task event on undeclared lane %d", e.Tid)
		}
	}
}

// The replay must agree with the engine's own scheduler: the last task end
// of each stage, measured from the stage's barrier, is the stage makespan,
// and the whole timeline ends at SimulatedElapsed.
func TestChromeTraceMatchesMakespanReplay(t *testing.T) {
	r := testReport()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)
	var lastEnd float64
	for _, e := range tr.TraceEvents {
		if e.Ph == "E" && e.Ts > lastEnd {
			lastEnd = e.Ts
		}
	}
	want := micros(r.SimulatedElapsed())
	if diff := lastEnd - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("timeline ends at %vus, want SimulatedElapsed %vus", lastEnd, want)
	}
}

func TestChromeTraceZeroWorkers(t *testing.T) {
	r := &engine.Report{Workers: 0, Stages: []*engine.StageStats{
		{Name: "s", Phase: "I", Costs: []time.Duration{1, 2}},
	}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)
	lanes := map[int]bool{}
	for _, e := range tr.TraceEvents {
		if e.Name == "thread_name" && e.Ph == "M" {
			lanes[e.Tid] = true
		}
	}
	if len(lanes) != 1 {
		t.Fatalf("zero-worker report should clamp to 1 lane, got %d", len(lanes))
	}
}

func TestWriteTraceDispatch(t *testing.T) {
	r := testReport()
	var rep, chr bytes.Buffer
	if err := WriteTrace(&rep, r, "report"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "task_costs_ns") {
		t.Fatal("report format did not produce the engine JSON trace")
	}
	// Round-trips through the engine reader.
	if _, err := engine.ReadJSON(&rep); err != nil {
		t.Fatalf("report output unreadable: %v", err)
	}
	if err := WriteTrace(&chr, r, "chrome"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chr.String(), "traceEvents") {
		t.Fatal("chrome format did not produce trace events")
	}
	if err := WriteTrace(&bytes.Buffer{}, r, "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
