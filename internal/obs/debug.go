package obs

import (
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebugServer serves runtime introspection endpoints on addr:
// /debug/vars (the expvar registry, including the rpdbscan.* Counters) and
// /debug/pprof/* (live CPU/heap/goroutine profiling). It returns once the
// listener is bound, with the server running in a background goroutine, so
// long pipeline runs can be profiled while they execute. Close the
// returned server to stop it; a failure to bind is returned immediately.
//
// The mux is private — the handlers are mounted explicitly rather than
// relying on the net/http/pprof and expvar side effects on
// http.DefaultServeMux, which a library must not touch.
func StartDebugServer(addr string, log *slog.Logger) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if log != nil {
				log.Error("debug server exited", "addr", addr, "err", err)
			}
		}
	}()
	if log != nil {
		log.Info("debug server listening", "addr", ln.Addr().String())
	}
	return srv, nil
}
