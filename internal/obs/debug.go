package obs

import (
	"context"
	"expvar"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the running introspection server StartDebugServer
// returns: the bound address, the mux (exported so tests can drive it
// without the network), and a graceful Close.
type DebugServer struct {
	// Handler is the server's mux, also reachable over the bound listener.
	Handler http.Handler

	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr }

// Close gracefully shuts the server down: in-flight scrapes get up to
// five seconds to complete before the connections are forced closed.
// (A plain http.Server.Close would abandon a /metrics response
// mid-body, which scrapers record as a failed scrape.)
func (d *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	if err == context.DeadlineExceeded {
		return d.srv.Close()
	}
	return err
}

// StartDebugServer serves runtime introspection endpoints on addr:
// /metrics (Prometheus text exposition), /healthz (liveness), /debug/vars
// (the expvar registry, including the rpdbscan.* Counters), and
// /debug/pprof/* (live CPU/heap/goroutine profiling). It returns once the
// listener is bound, with the server running in a background goroutine,
// so long pipeline runs can be profiled and scraped while they execute.
// Close the returned server to stop it; a failure to bind is returned
// immediately.
//
// The mux is private — the handlers are mounted explicitly rather than
// relying on the net/http/pprof and expvar side effects on
// http.DefaultServeMux, which a library must not touch.
func StartDebugServer(addr string, log *slog.Logger) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if log != nil {
				log.Error("debug server exited", "addr", addr, "err", err)
			}
		}
	}()
	if log != nil {
		log.Info("debug server listening", "addr", ln.Addr().String())
	}
	return &DebugServer{Handler: mux, srv: srv, addr: ln.Addr().String()}, nil
}
