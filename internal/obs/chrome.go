package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rpdbscan/internal/engine"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace renders the report as a Chrome trace: one lane (thread)
// per virtual worker, one complete begin/end ("B"/"E") event pair per
// task. Task placement replays the recorded task costs through the same
// greedy in-order scheduler StageStats.Makespan uses — each task goes, in
// submission order, to the worker that frees up first, and stages are
// barrier-separated — so the timeline is exactly the virtual-cluster
// execution the harness reports as "simulated elapsed time". Load
// imbalance (Section 7.3.1 of the paper) shows up literally as trailing
// gaps in the lanes.
//
// Open the output via chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, r *engine.Report) error {
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	trace := chromeTrace{DisplayTimeUnit: "ms"}
	trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": fmt.Sprintf("virtual cluster (%d workers)", workers)},
	})
	for wk := 0; wk < workers; wk++ {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: wk,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", wk)},
		})
	}
	var clock time.Duration // barrier between stages
	for _, s := range r.Stages {
		free := make([]time.Duration, workers)
		for task, cost := range s.Costs {
			wk := 0
			for i := 1; i < workers; i++ {
				if free[i] < free[wk] {
					wk = i
				}
			}
			start := clock + free[wk]
			free[wk] += cost
			args := map[string]any{"task": task, "cost_ns": cost.Nanoseconds()}
			if s.Bytes > 0 {
				args["bytes"] = s.Bytes
			}
			// On the multi-process backend, show which worker process served
			// the task (the lane itself stays the virtual-scheduler worker).
			if task < len(s.TaskWorkers) && s.TaskWorkers[task] >= 0 {
				args["proc_worker"] = s.TaskWorkers[task]
			}
			trace.TraceEvents = append(trace.TraceEvents,
				chromeEvent{Name: s.Name, Cat: s.Phase, Ph: "B", Ts: micros(start), Pid: 0, Tid: wk, Args: args},
				chromeEvent{Name: s.Name, Cat: s.Phase, Ph: "E", Ts: micros(start + cost), Pid: 0, Tid: wk},
			)
		}
		// Chaos activity shows up as a global instant event ("I") at the
		// stage barrier, carrying the stage's fault ledger.
		if !s.Faults.IsZero() {
			f := s.Faults
			args := map[string]any{}
			if f.InjectedFailures > 0 {
				args["injected_failures"] = f.InjectedFailures
			}
			if f.ChecksumRejects > 0 {
				args["checksum_rejects"] = f.ChecksumRejects
			}
			if f.SpeculativeLaunches > 0 {
				args["speculative_launches"] = f.SpeculativeLaunches
				args["speculative_wins"] = f.SpeculativeWins
			}
			if f.BackoffVirtual > 0 {
				args["backoff_virtual_ns"] = f.BackoffVirtual.Nanoseconds()
			}
			if f.StragglerDelay > 0 {
				args["straggler_delay_ns"] = f.StragglerDelay.Nanoseconds()
			}
			if f.WorkerKills > 0 {
				args["worker_kills"] = f.WorkerKills
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "chaos:" + s.Name, Cat: "chaos", Ph: "I", S: "g",
				Ts: micros(clock + s.Makespan(workers)), Pid: 0, Tid: 0, Args: args,
			})
		}
		clock += s.Makespan(workers)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// TraceFormats lists the values accepted by the CLIs' -trace-format flag.
const TraceFormats = "report|chrome"

// WriteTrace dispatches on format: "report" (the engine's JSON report,
// engine.WriteJSON) or "chrome" (WriteChromeTrace).
func WriteTrace(w io.Writer, r *engine.Report, format string) error {
	switch format {
	case "", "report":
		return r.WriteJSON(w)
	case "chrome":
		return WriteChromeTrace(w, r)
	}
	return fmt.Errorf("obs: unknown trace format %q (want %s)", format, TraceFormats)
}
