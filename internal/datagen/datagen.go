// Package datagen generates the synthetic workloads of the evaluation: the
// Gaussian mixtures with a skewness coefficient of Appendix B.1, the
// Moons/Blobs/Chameleon accuracy sets of Section 7.5, and simulated
// stand-ins for the four real-world data sets of Table 3 (GeoLife, Cosmo50,
// OpenStreetMap, TeraClickLog) that reproduce their statistical shape —
// dimensionality and skew — at configurable size.
//
// All generators are deterministic for a given seed.
package datagen

import (
	"math"
	"math/rand"

	"rpdbscan/internal/geom"
)

// MixtureConfig describes a Gaussian mixture in the style of Appendix B.1:
// component means drawn uniformly from [0, Span]^Dim, isotropic covariance
// with inverse-covariance diagonal Alpha (so the per-dimension standard
// deviation is 1/sqrt(Alpha); larger Alpha means tighter, more skewed
// clusters).
type MixtureConfig struct {
	N          int
	Dim        int
	Components int
	Span       float64
	// Alpha is the skewness coefficient of Appendix B.1.
	Alpha float64
	// NoiseFrac is the fraction of points drawn uniformly from the whole
	// space instead of a component.
	NoiseFrac float64
	// Weights optionally skews points across components; nil means
	// uniform. Must sum to a positive value if set.
	Weights []float64
}

// Mixture samples a Gaussian mixture.
func Mixture(cfg MixtureConfig, seed int64) *geom.Points {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Components < 1 {
		cfg.Components = 10
	}
	if cfg.Span <= 0 {
		cfg.Span = 100
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	std := 1 / math.Sqrt(cfg.Alpha)
	means := make([][]float64, cfg.Components)
	for c := range means {
		m := make([]float64, cfg.Dim)
		for i := range m {
			m[i] = rng.Float64() * cfg.Span
		}
		means[c] = m
	}
	cum := cumWeights(cfg.Weights, cfg.Components)
	pts := geom.NewPoints(cfg.Dim, cfg.N)
	row := make([]float64, cfg.Dim)
	for i := 0; i < cfg.N; i++ {
		if cfg.NoiseFrac > 0 && rng.Float64() < cfg.NoiseFrac {
			for j := range row {
				row[j] = rng.Float64() * cfg.Span
			}
		} else {
			c := pick(cum, rng.Float64())
			for j := range row {
				row[j] = means[c][j] + rng.NormFloat64()*std
			}
		}
		pts.Append(row)
	}
	return pts
}

func cumWeights(w []float64, n int) []float64 {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		total += wi
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

func pick(cum []float64, u float64) int {
	for i, c := range cum {
		if u <= c {
			return i
		}
	}
	return len(cum) - 1
}

// Moons generates the two-interleaving-half-circles set used for accuracy
// evaluation, with Gaussian coordinate noise of the given standard
// deviation. The two moons have unit radius and are clearly separable at
// small noise.
func Moons(n int, noise float64, seed int64) *geom.Points {
	rng := rand.New(rand.NewSource(seed))
	pts := geom.NewPoints(2, n)
	row := make([]float64, 2)
	for i := 0; i < n; i++ {
		t := rng.Float64() * math.Pi
		if i%2 == 0 {
			row[0] = math.Cos(t)
			row[1] = math.Sin(t)
		} else {
			row[0] = 1 - math.Cos(t)
			row[1] = 0.5 - math.Sin(t)
		}
		row[0] += rng.NormFloat64() * noise
		row[1] += rng.NormFloat64() * noise
		pts.Append(row)
	}
	return pts
}

// Blobs generates isotropic Gaussian blobs around well-separated centres on
// a coarse lattice, the standard "blobs" accuracy set.
func Blobs(n, centers int, std float64, seed int64) *geom.Points {
	rng := rand.New(rand.NewSource(seed))
	if centers < 1 {
		centers = 3
	}
	cs := make([][2]float64, centers)
	side := int(math.Ceil(math.Sqrt(float64(centers))))
	for i := range cs {
		cs[i] = [2]float64{float64(i%side) * 10, float64(i/side) * 10}
	}
	pts := geom.NewPoints(2, n)
	row := make([]float64, 2)
	for i := 0; i < n; i++ {
		c := cs[i%centers]
		row[0] = c[0] + rng.NormFloat64()*std
		row[1] = c[1] + rng.NormFloat64()*std
		pts.Append(row)
	}
	return pts
}

// Chameleon generates a Chameleon-style 2-d set: arbitrary-shape dense
// structures (rings, arcs, bars and blobs) over a sprinkle of uniform
// background noise, exercising DBSCAN's arbitrary-shape clustering.
func Chameleon(n int, seed int64) *geom.Points {
	rng := rand.New(rand.NewSource(seed))
	pts := geom.NewPoints(2, n)
	row := make([]float64, 2)
	emit := func(x, y float64) { row[0], row[1] = x, y; pts.Append(row) }
	for i := 0; i < n; i++ {
		switch u := rng.Float64(); {
		case u < 0.05: // background noise
			emit(rng.Float64()*100, rng.Float64()*100)
		case u < 0.30: // ring
			t := rng.Float64() * 2 * math.Pi
			r := 12 + rng.NormFloat64()*0.5
			emit(25+r*math.Cos(t), 25+r*math.Sin(t))
		case u < 0.55: // arc
			t := rng.Float64() * math.Pi
			r := 15 + rng.NormFloat64()*0.5
			emit(70+r*math.Cos(t), 30+r*math.Sin(t))
		case u < 0.80: // bar
			emit(10+rng.Float64()*40+rng.NormFloat64()*0.3, 75+rng.NormFloat64()*1.2)
		default: // blob
			emit(75+rng.NormFloat64()*3, 75+rng.NormFloat64()*3)
		}
	}
	return pts
}

// Dataset names a generated point set together with the eps value that
// yields on the order of ten clusters (the paper's per-data-set epsilon10
// from which the sweep 1/8, 1/4, 1/2, 1 x epsilon10 is derived) and the
// minPts used in the experiments.
type Dataset struct {
	Name   string
	Points *geom.Points
	Eps10  float64
	MinPts int
}

// refN is the reference size at which the simulated data sets' Eps10 and
// MinPts are calibrated. Generators scale every length parameter by
// (n/refN)^(1/dim) so point density — and therefore the behaviour of a
// fixed (eps, minPts) — is invariant across sizes: a larger n grows the
// world, not the local density, just as sampling more of the same
// real-world source would.
const refN = 20000

func lengthScale(n, dim int) float64 {
	return math.Pow(float64(n)/refN, 1/float64(dim))
}

// EpsSweep returns the four epsilon values of the paper's sweeps.
func (d Dataset) EpsSweep() []float64 {
	return []float64{d.Eps10 / 8, d.Eps10 / 4, d.Eps10 / 2, d.Eps10}
}

// SimGeoLife simulates the heavily skewed GeoLife set (Table 3): a
// dominant, very tight component standing in for Beijing holds most points
// while ~30 dispersed components stand in for the other cities, in 3
// dimensions.
func SimGeoLife(n int, seed int64) Dataset { return SimGeoLifeWorld(n, n, seed) }

// SimGeoLifeWorld samples n points from a world sized for worldN points:
// worldN == n gives the reference density, worldN < n packs the same world
// with more points (the density regime of the paper's billion-point runs).
func SimGeoLifeWorld(n, worldN int, seed int64) Dataset {
	const comps = 31
	w := make([]float64, comps)
	w[0] = 70 // "Beijing": ~70% of the data in one dense area
	for i := 1; i < comps; i++ {
		w[i] = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sc := lengthScale(worldN, 3)
	means := make([][]float64, comps)
	for c := range means {
		means[c] = []float64{rng.Float64() * 100 * sc, rng.Float64() * 100 * sc, rng.Float64() * 100 * sc}
	}
	pts := geom.NewPoints(3, n)
	row := make([]float64, 3)
	cum := cumWeights(w, comps)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.02 {
			for j := range row {
				row[j] = rng.Float64() * 100 * sc
			}
		} else {
			c := pick(cum, rng.Float64())
			// The dominant component holds 70% of the data in ~13x
			// the volume of a small city: much denser, yet spread
			// over many cells, like an urban area versus towns.
			std := 1.5 * sc
			if c == 0 {
				std = 3.5 * sc
			}
			for j := range row {
				row[j] = means[c][j] + rng.NormFloat64()*std
			}
		}
		pts.Append(row)
	}
	return Dataset{Name: "SimGeoLife", Points: pts, Eps10: 1.2, MinPts: 20}
}

// SimCosmo simulates the Cosmo50 N-body snapshot: many moderate 3-d clumps
// over a broad background.
func SimCosmo(n int, seed int64) Dataset { return SimCosmoWorld(n, n, seed) }

// SimCosmoWorld is SimCosmo with an explicit world size (see
// SimGeoLifeWorld).
func SimCosmoWorld(n, worldN int, seed int64) Dataset {
	sc := lengthScale(worldN, 3)
	pts := Mixture(MixtureConfig{
		N: n, Dim: 3, Components: 40, Span: 100 * sc,
		Alpha: 1 / (sc * sc), NoiseFrac: 0.10,
	}, seed)
	return Dataset{Name: "SimCosmo", Points: pts, Eps10: 1.2, MinPts: 20}
}

// SimOSM simulates the 2-d OpenStreetMap GPS set with elongated, road-like
// components of varying orientation plus background noise.
func SimOSM(n int, seed int64) Dataset { return SimOSMWorld(n, n, seed) }

// SimOSMWorld is SimOSM with an explicit world size (see SimGeoLifeWorld).
func SimOSMWorld(n, worldN int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	sc := lengthScale(worldN, 2)
	const comps = 25
	type road struct {
		x, y, dx, dy, length, width float64
	}
	roads := make([]road, comps)
	for i := range roads {
		t := rng.Float64() * math.Pi
		roads[i] = road{
			x: rng.Float64() * 100 * sc, y: rng.Float64() * 100 * sc,
			dx: math.Cos(t), dy: math.Sin(t),
			length: (5 + rng.Float64()*20) * sc, width: (0.15 + rng.Float64()*0.3) * sc,
		}
	}
	pts := geom.NewPoints(2, n)
	row := make([]float64, 2)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 {
			row[0], row[1] = rng.Float64()*100*sc, rng.Float64()*100*sc
		} else {
			r := roads[rng.Intn(comps)]
			along := (rng.Float64() - 0.5) * r.length
			across := rng.NormFloat64() * r.width
			row[0] = r.x + along*r.dx - across*r.dy
			row[1] = r.y + along*r.dy + across*r.dx
		}
		pts.Append(row)
	}
	return Dataset{Name: "SimOSM", Points: pts, Eps10: 0.8, MinPts: 20}
}

// SimTeraClick simulates the 13-dimensional TeraClickLog set. Real click
// logs have low intrinsic dimension (feature correlations), so each
// component concentrates around a random 2-d plane patch embedded in 13-d
// space with small isotropic noise; this keeps the data dense at small eps,
// the regime the paper's high-dimensional experiments operate in.
func SimTeraClick(n int, seed int64) Dataset { return SimTeraClickWorld(n, n, seed) }

// SimTeraClickWorld is SimTeraClick with an explicit world size (see
// SimGeoLifeWorld). The components have intrinsic dimension 2, so lengths
// scale with the square root of the world size.
func SimTeraClickWorld(n, worldN int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	sc := lengthScale(worldN, 2)
	const dim = 13
	const comps = 12
	type component struct {
		mean   []float64
		basis  [2][]float64 // orthogonal-ish directions spanning the patch
		extent float64
	}
	cs := make([]component, comps)
	for c := range cs {
		mean := make([]float64, dim)
		for i := range mean {
			mean[i] = rng.Float64() * 100 * sc
		}
		var basis [2][]float64
		for b := 0; b < 2; b++ {
			v := make([]float64, dim)
			var norm float64
			for i := range v {
				v[i] = rng.NormFloat64()
				norm += v[i] * v[i]
			}
			norm = math.Sqrt(norm)
			for i := range v {
				v[i] /= norm
			}
			basis[b] = v
		}
		cs[c] = component{mean: mean, basis: basis, extent: (8 + rng.Float64()*8) * sc}
	}
	pts := geom.NewPoints(dim, n)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 {
			for j := range row {
				row[j] = rng.Float64() * 100 * sc
			}
		} else {
			c := cs[rng.Intn(comps)]
			z0 := (rng.Float64() - 0.5) * c.extent
			z1 := (rng.Float64() - 0.5) * c.extent
			for j := range row {
				row[j] = c.mean[j] + z0*c.basis[0][j] + z1*c.basis[1][j] + rng.NormFloat64()*0.05
			}
		}
		pts.Append(row)
	}
	return Dataset{Name: "SimTeraClick", Points: pts, Eps10: 2.4, MinPts: 20}
}

// Suite returns the four simulated stand-ins for Table 3 at n points each.
func Suite(n int, seed int64) []Dataset {
	return SuiteWorld(n, n, seed)
}

// SuiteWorld returns the four stand-ins with n points sampled from worlds
// sized for worldN points. worldN < n raises density by n/worldN, the
// regime of the paper's evaluation where eps-neighborhoods hold hundreds of
// points and exact region queries become prohibitive.
func SuiteWorld(n, worldN int, seed int64) []Dataset {
	return []Dataset{
		SimGeoLifeWorld(n, worldN, seed),
		SimCosmoWorld(n, worldN, seed+1),
		SimOSMWorld(n, worldN, seed+2),
		SimTeraClickWorld(n, worldN, seed+3),
	}
}
