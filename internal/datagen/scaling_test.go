package datagen

// Tests for the world-scaling law: Sim* generators size every length by
// (n/refN)^(1/dim), so local point density — and therefore the behaviour
// of a fixed (eps, minPts) — is invariant across sizes, like sampling more
// of the same real-world source.

import (
	"math"
	"sort"
	"testing"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/kdtree"
)

// medianNNDist returns the median nearest-neighbor distance of a sample of
// points — a robust local-density proxy.
func medianNNDist(pts *geom.Points, sample int) float64 {
	tree := kdtree.Build(pts, nil)
	n := pts.N()
	step := n / sample
	if step < 1 {
		step = 1
	}
	var dists []float64
	for i := 0; i < n; i += step {
		p := pts.At(i)
		best := math.Inf(1)
		r := 0.05
		for math.IsInf(best, 1) {
			tree.Visit(p, r, func(j int) {
				if j == i {
					return
				}
				if d := geom.Dist(p, pts.At(j)); d < best {
					best = d
				}
			})
			r *= 2
		}
		dists = append(dists, best)
	}
	sort.Float64s(dists)
	return dists[len(dists)/2]
}

func TestDensityInvariantAcrossSizes(t *testing.T) {
	// The same generator at 4x the size must keep local density (median
	// NN distance) within a factor of ~1.5 — the property that makes
	// Eps10/MinPts calibrations valid at every N.
	gens := []struct {
		name string
		gen  func(n int) *geom.Points
	}{
		{"SimGeoLife", func(n int) *geom.Points { return SimGeoLife(n, 3).Points }},
		{"SimCosmo", func(n int) *geom.Points { return SimCosmo(n, 3).Points }},
		{"SimOSM", func(n int) *geom.Points { return SimOSM(n, 3).Points }},
		{"SimTeraClick", func(n int) *geom.Points { return SimTeraClick(n, 3).Points }},
	}
	for _, g := range gens {
		small := medianNNDist(g.gen(4000), 300)
		large := medianNNDist(g.gen(16000), 300)
		ratio := large / small
		if ratio < 1/1.6 || ratio > 1.6 {
			t.Errorf("%s: median NN distance changed by %.2fx between 4k and 16k points (want ~1)",
				g.name, ratio)
		}
	}
}

func TestWorldVariantRaisesDensity(t *testing.T) {
	// Sampling n points from a world sized for n/10 must shrink NN
	// distances markedly — the density knob of the paper-regime runs.
	base := medianNNDist(SimCosmoWorld(8000, 8000, 5).Points, 300)
	dense := medianNNDist(SimCosmoWorld(8000, 800, 5).Points, 300)
	if dense >= base*0.8 {
		t.Fatalf("density boost did not shrink NN distance: %v vs %v", dense, base)
	}
}
