package datagen

import (
	"math"
	"sort"
	"testing"
)

func TestMixtureBasics(t *testing.T) {
	p := Mixture(MixtureConfig{N: 1000, Dim: 3, Components: 5, Span: 50, Alpha: 1}, 1)
	if p.N() != 1000 || p.Dim != 3 {
		t.Fatalf("mixture shape: n=%d dim=%d", p.N(), p.Dim)
	}
}

func TestMixtureDeterministic(t *testing.T) {
	a := Mixture(MixtureConfig{N: 100, Dim: 2, Components: 3, Alpha: 1}, 42)
	b := Mixture(MixtureConfig{N: 100, Dim: 2, Components: 3, Alpha: 1}, 42)
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatal("same seed gave different data")
		}
	}
	c := Mixture(MixtureConfig{N: 100, Dim: 2, Components: 3, Alpha: 1}, 43)
	same := true
	for i := range a.Coords {
		if a.Coords[i] != c.Coords[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

// Higher alpha means tighter clusters: the mean distance of a point to its
// component mean shrinks like 1/sqrt(alpha). We proxy this with the mean
// nearest-neighbor-ish spread: variance of coordinates around the global
// spread stays, but within-cluster spread falls. Use a direct construction:
// one component, measure standard deviation.
func TestMixtureAlphaControlsSpread(t *testing.T) {
	spread := func(alpha float64) float64 {
		p := Mixture(MixtureConfig{N: 4000, Dim: 1, Components: 1, Span: 1, Alpha: alpha}, 7)
		var mean float64
		for i := 0; i < p.N(); i++ {
			mean += p.At(i)[0]
		}
		mean /= float64(p.N())
		var v float64
		for i := 0; i < p.N(); i++ {
			d := p.At(i)[0] - mean
			v += d * d
		}
		return math.Sqrt(v / float64(p.N()))
	}
	s1 := spread(1) // std should be ~1
	s8 := spread(8) // std should be ~0.35
	if math.Abs(s1-1) > 0.1 {
		t.Fatalf("alpha=1 std = %v, want ~1", s1)
	}
	if math.Abs(s8-1/math.Sqrt(8)) > 0.05 {
		t.Fatalf("alpha=8 std = %v, want ~%v", s8, 1/math.Sqrt(8))
	}
}

func TestMixtureWeights(t *testing.T) {
	// With weight 99:1 over two far-apart components, almost all points
	// land near the first mean. Verify strong imbalance via coordinate
	// clustering around two modes.
	p := Mixture(MixtureConfig{
		N: 2000, Dim: 2, Components: 2, Span: 100, Alpha: 100,
		Weights: []float64{99, 1},
	}, 3)
	if p.N() != 2000 {
		t.Fatal("wrong size")
	}
}

func TestMoons(t *testing.T) {
	p := Moons(500, 0.05, 1)
	if p.N() != 500 || p.Dim != 2 {
		t.Fatalf("moons shape: %d x %d", p.N(), p.Dim)
	}
	// All points lie within the expected envelope.
	for i := 0; i < p.N(); i++ {
		pt := p.At(i)
		if pt[0] < -2 || pt[0] > 3 || pt[1] < -2 || pt[1] > 2 {
			t.Fatalf("moons point out of envelope: %v", pt)
		}
	}
}

func TestBlobsCenters(t *testing.T) {
	p := Blobs(900, 3, 0.3, 1)
	if p.N() != 900 {
		t.Fatal("wrong size")
	}
	// Points cycle across centers: counts are exactly balanced.
	counts := [3]int{}
	for i := 0; i < p.N(); i++ {
		counts[i%3]++
	}
	if counts[0] != 300 {
		t.Fatal("center balance broken")
	}
}

func TestChameleonEnvelope(t *testing.T) {
	p := Chameleon(2000, 5)
	if p.N() != 2000 || p.Dim != 2 {
		t.Fatalf("chameleon shape: %d x %d", p.N(), p.Dim)
	}
	for i := 0; i < p.N(); i++ {
		pt := p.At(i)
		if pt[0] < -10 || pt[0] > 110 || pt[1] < -10 || pt[1] > 110 {
			t.Fatalf("chameleon point far out of envelope: %v", pt)
		}
	}
}

func TestSimGeoLifeSkew(t *testing.T) {
	d := SimGeoLife(5000, 1)
	if d.Points.Dim != 3 || d.Points.N() != 5000 {
		t.Fatal("wrong shape")
	}
	// Heavy skew: the densest 5% of occupied coarse cells must hold well
	// over half the points (the dominant "Beijing" component).
	counts := map[[3]int]int{}
	for i := 0; i < d.Points.N(); i++ {
		p := d.Points.At(i)
		k := [3]int{int(p[0] / 5), int(p[1] / 5), int(p[2] / 5)}
		counts[k]++
	}
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top := len(all) / 20
	if top < 1 {
		top = 1
	}
	sum := 0
	for _, c := range all[:top] {
		sum += c
	}
	if frac := float64(sum) / 5000; frac < 0.5 {
		t.Fatalf("SimGeoLife not skewed: densest 5%% of cells hold %.1f%%", 100*frac)
	}
}

func TestSuite(t *testing.T) {
	suite := Suite(200, 9)
	if len(suite) != 4 {
		t.Fatalf("suite size = %d", len(suite))
	}
	wantDims := map[string]int{"SimGeoLife": 3, "SimCosmo": 3, "SimOSM": 2, "SimTeraClick": 13}
	for _, d := range suite {
		if d.Points.N() != 200 {
			t.Fatalf("%s: n = %d", d.Name, d.Points.N())
		}
		if d.Points.Dim != wantDims[d.Name] {
			t.Fatalf("%s: dim = %d, want %d", d.Name, d.Points.Dim, wantDims[d.Name])
		}
		if d.Eps10 <= 0 || d.MinPts < 1 {
			t.Fatalf("%s: bad defaults", d.Name)
		}
		sweep := d.EpsSweep()
		if len(sweep) != 4 || sweep[3] != d.Eps10 || sweep[0] != d.Eps10/8 {
			t.Fatalf("%s: bad sweep %v", d.Name, sweep)
		}
	}
}
