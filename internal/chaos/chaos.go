// Package chaos is a deterministic, seed-driven fault injector for the
// virtual-cluster engine. It decides every injection — failing a task
// attempt, inflating a task into a straggler, corrupting a chunk of a
// checksummed payload transfer — as a pure FNV-1a hash of
// (seed, kind, stage, task, attempt-or-chunk) mapped to a uniform
// fraction in [0, 1) and compared against the configured probability.
//
// Purity buys three properties the chaos harness depends on:
//
//   - Reproducibility: a run is replayed exactly from its seed, regardless
//     of goroutine interleaving or physical core count.
//   - Worker independence: decisions never look at which worker runs a
//     task, so the same faults hit at every simulated cluster size.
//   - Monotonicity: the hash fraction for a given site is fixed, so the
//     set of sites that fire at probability p is a subset of the set at
//     any p' > p. Fault totals therefore grow monotonically with the
//     rate, which is what lets the harness assert bounded degradation.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. Two injectors with equal
	// configs produce identical fault schedules.
	Seed int64
	// FailProb is the per-attempt probability of failing a task attempt
	// (only attempts below MaxFaultsPerTask are eligible).
	FailProb float64
	// StragglerProb is the per-task probability of inflating the task's
	// virtual cost by StragglerDelay.
	StragglerProb float64
	// StragglerDelay is the virtual inflation for straggler tasks. Zero
	// defaults to 20ms.
	StragglerDelay time.Duration
	// CorruptProb is the per-chunk, per-transfer-attempt probability of
	// corrupting a checksummed payload chunk (attempts below
	// MaxFaultsPerTask only).
	CorruptProb float64
	// KillProb is the per-attempt probability of killing the worker
	// process about to serve a task attempt (attempts below
	// MaxFaultsPerTask only). Process-level chaos: it only has an effect
	// on the multi-process transport — the simulator has no processes to
	// kill — but the decision, like every other, is worker-independent.
	KillProb float64
	// MaxFaultsPerTask bounds consecutive injections at one site so chaos
	// alone can never exhaust the engine's retry budget (engine default:
	// 2 retries, i.e. 3 attempts). Zero defaults to 2; it must stay at or
	// below the engine's configured retry count.
	MaxFaultsPerTask int
	// Schedule lists scripted failures applied in addition to the
	// probabilistic ones — exact (stage, task) sites that must fail their
	// first Attempts attempts. Useful for targeted regression tests.
	Schedule []Fault
}

// Fault is one scripted failure site in Config.Schedule.
type Fault struct {
	// Stage and Task address the site.
	Stage string
	Task  int
	// Attempts is how many initial attempts fail; zero means 1.
	Attempts int
}

// Stats is the injector's own tally of what it injected, for reconciling
// against the engine's per-stage FaultStats ledger.
type Stats struct {
	// Failures counts FailTask calls that returned true.
	Failures int64
	// Stragglers counts tasks whose cost was inflated; StragglerDelay is
	// the summed inflation.
	Stragglers     int64
	StragglerDelay time.Duration
	// Corruptions counts CorruptFetch calls that returned true.
	Corruptions int64
	// Kills counts KillWorker calls that returned true.
	Kills int64
}

// Injector implements engine.Injector with seed-driven decisions. Safe for
// concurrent use; the only mutable state is the atomic Stats tally.
type Injector struct {
	cfg       Config
	delay     time.Duration
	maxFaults int
	scripted  map[scheduleKey]int

	failures, stragglers, corruptions, kills atomic.Int64
	stragglerNs                              atomic.Int64
}

type scheduleKey struct {
	stage string
	task  int
}

// New builds an injector from cfg. It validates probabilities so a typo'd
// rate fails fast instead of silently clamping.
func New(cfg Config) (*Injector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{{"FailProb", cfg.FailProb}, {"StragglerProb", cfg.StragglerProb}, {"CorruptProb", cfg.CorruptProb}, {"KillProb", cfg.KillProb}} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("chaos: %s = %v out of [0, 1]", p.name, p.v)
		}
	}
	if cfg.MaxFaultsPerTask < 0 {
		return nil, fmt.Errorf("chaos: MaxFaultsPerTask = %d is negative", cfg.MaxFaultsPerTask)
	}
	in := &Injector{cfg: cfg, delay: cfg.StragglerDelay, maxFaults: cfg.MaxFaultsPerTask}
	if in.delay == 0 {
		in.delay = 20 * time.Millisecond
	}
	if in.maxFaults == 0 {
		in.maxFaults = 2
	}
	if len(cfg.Schedule) > 0 {
		in.scripted = make(map[scheduleKey]int, len(cfg.Schedule))
		for _, f := range cfg.Schedule {
			n := f.Attempts
			if n <= 0 {
				n = 1
			}
			if n > in.maxFaults {
				n = in.maxFaults
			}
			k := scheduleKey{f.Stage, f.Task}
			if n > in.scripted[k] {
				in.scripted[k] = n
			}
		}
	}
	return in, nil
}

// MustNew is New for static configs known to be valid.
func MustNew(cfg Config) *Injector {
	in, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

// FailTask implements engine.Injector.
func (in *Injector) FailTask(stage string, task, attempt int) bool {
	fire := false
	if attempt < in.scripted[scheduleKey{stage, task}] {
		fire = true
	} else if attempt < in.maxFaults && in.roll("fail", stage, task, attempt) < in.cfg.FailProb {
		fire = true
	}
	if fire {
		in.failures.Add(1)
	}
	return fire
}

// TaskDelay implements engine.Injector.
func (in *Injector) TaskDelay(stage string, task int) time.Duration {
	if in.roll("straggle", stage, task, 0) >= in.cfg.StragglerProb {
		return 0
	}
	in.stragglers.Add(1)
	in.stragglerNs.Add(int64(in.delay))
	return in.delay
}

// CorruptFetch implements engine.Injector.
func (in *Injector) CorruptFetch(stage string, task, attempt, chunk int) bool {
	if attempt >= in.maxFaults {
		return false
	}
	if in.roll("corrupt", stage, task, attempt*1_000_003+chunk) >= in.cfg.CorruptProb {
		return false
	}
	in.corruptions.Add(1)
	return true
}

// KillWorker implements engine.WorkerKiller: whether to SIGKILL the
// worker process about to serve attempt `attempt` of task `task`. Like
// every decision it is a pure function of the site, independent of which
// worker that happens to be, and bounded below the retry budget so a
// killed-and-respawned (or surviving) worker always gets a clean attempt.
func (in *Injector) KillWorker(stage string, task, attempt int) bool {
	if attempt >= in.maxFaults {
		return false
	}
	if in.roll("kill", stage, task, attempt) >= in.cfg.KillProb {
		return false
	}
	in.kills.Add(1)
	return true
}

// Stats snapshots the injection tally.
func (in *Injector) Stats() Stats {
	return Stats{
		Failures:       in.failures.Load(),
		Stragglers:     in.stragglers.Load(),
		StragglerDelay: time.Duration(in.stragglerNs.Load()),
		Corruptions:    in.corruptions.Load(),
		Kills:          in.kills.Load(),
	}
}

// ResetStats zeroes the tally (the schedule itself is stateless).
func (in *Injector) ResetStats() {
	in.failures.Store(0)
	in.stragglers.Store(0)
	in.stragglerNs.Store(0)
	in.corruptions.Store(0)
	in.kills.Store(0)
}

// roll maps (seed, kind, stage, site, sub) to a uniform fraction in [0, 1)
// via FNV-1a. It is the single source of randomness in the package.
func (in *Injector) roll(kind, stage string, site, sub int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v >> (8 * i) & 0xff)) * prime64
		}
	}
	mix(uint64(in.cfg.Seed))
	for i := 0; i < len(kind); i++ {
		h = (h ^ uint64(kind[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: "x"+"" must differ from ""+"x"
	for i := 0; i < len(stage); i++ {
		h = (h ^ uint64(stage[i])) * prime64
	}
	mix(uint64(site))
	mix(uint64(sub))
	return float64(h>>11) / float64(1<<53)
}
