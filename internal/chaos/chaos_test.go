package chaos

import (
	"math/rand"
	"testing"
	"time"

	"rpdbscan/internal/engine"
)

var _ engine.Injector = (*Injector)(nil)

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := MustNew(Config{Seed: 1})
	for task := 0; task < 100; task++ {
		if in.FailTask("s", task, 0) || in.CorruptFetch("s", task, 0, 0) || in.TaskDelay("s", task) != 0 {
			t.Fatalf("zero-probability config injected at task %d", task)
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("stats = %+v, want zero", s)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{FailProb: -0.1}, {FailProb: 1.1}, {StragglerProb: 2}, {CorruptProb: -1},
		{MaxFaultsPerTask: -1},
	} {
		if _, err := New(bad); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	MustNew(Config{FailProb: 7})
}

func TestDecisionsDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{Seed: 42, FailProb: 0.3, StragglerProb: 0.2, CorruptProb: 0.25}
	a, b := MustNew(cfg), MustNew(cfg)
	for task := 0; task < 200; task++ {
		for attempt := 0; attempt < 3; attempt++ {
			if a.FailTask("core-marking", task, attempt) != b.FailTask("core-marking", task, attempt) {
				t.Fatalf("FailTask diverged at task %d attempt %d", task, attempt)
			}
			if a.CorruptFetch("dict-load", task, attempt, task%7) != b.CorruptFetch("dict-load", task, attempt, task%7) {
				t.Fatalf("CorruptFetch diverged at task %d", task)
			}
		}
		if a.TaskDelay("core-marking", task) != b.TaskDelay("core-marking", task) {
			t.Fatalf("TaskDelay diverged at task %d", task)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := MustNew(Config{Seed: 1, FailProb: 0.5})
	b := MustNew(Config{Seed: 2, FailProb: 0.5})
	same := true
	for task := 0; task < 64 && same; task++ {
		same = a.FailTask("s", task, 0) == b.FailTask("s", task, 0)
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 64-task fail schedules")
	}
}

// The fire-set at a lower probability must be a subset of the fire-set at
// any higher probability (same seed): this is what makes fault totals
// monotone in the rate and the harness's degradation bound assertable.
func TestFailSetMonotoneInProbability(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed) // pin for replay on failure
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 20; trial++ {
		p1 := r.Float64()
		p2 := p1 + (1-p1)*r.Float64()
		lo := MustNew(Config{Seed: seed, FailProb: p1, StragglerProb: p1, CorruptProb: p1})
		hi := MustNew(Config{Seed: seed, FailProb: p2, StragglerProb: p2, CorruptProb: p2})
		for task := 0; task < 50; task++ {
			if lo.FailTask("s", task, 0) && !hi.FailTask("s", task, 0) {
				t.Fatalf("p=%v fails task %d but p=%v does not", p1, task, p2)
			}
			if lo.TaskDelay("s", task) > 0 && hi.TaskDelay("s", task) == 0 {
				t.Fatalf("p=%v straggles task %d but p=%v does not", p1, task, p2)
			}
			if lo.CorruptFetch("s", task, 0, 3) && !hi.CorruptFetch("s", task, 0, 3) {
				t.Fatalf("p=%v corrupts task %d but p=%v does not", p1, task, p2)
			}
		}
	}
}

func TestMaxFaultsPerTaskBoundsConsecutiveFailures(t *testing.T) {
	in := MustNew(Config{Seed: 7, FailProb: 1, CorruptProb: 1}) // default max 2
	for task := 0; task < 10; task++ {
		if !in.FailTask("s", task, 0) || !in.FailTask("s", task, 1) {
			t.Fatal("certain failure did not fire below the bound")
		}
		if in.FailTask("s", task, 2) {
			t.Fatalf("task %d failed attempt 2, beyond MaxFaultsPerTask=2", task)
		}
		if in.CorruptFetch("s", task, 2, 0) {
			t.Fatalf("task %d corrupted transfer attempt 2, beyond bound", task)
		}
	}
}

func TestScheduledFaults(t *testing.T) {
	in := MustNew(Config{Seed: 1, Schedule: []Fault{
		{Stage: "core-marking", Task: 3, Attempts: 2},
		{Stage: "merge", Task: 0}, // Attempts 0 means 1
	}})
	if !in.FailTask("core-marking", 3, 0) || !in.FailTask("core-marking", 3, 1) {
		t.Fatal("scripted 2-attempt fault did not fire")
	}
	if in.FailTask("core-marking", 3, 2) {
		t.Fatal("scripted fault fired beyond its attempts")
	}
	if !in.FailTask("merge", 0, 0) || in.FailTask("merge", 0, 1) {
		t.Fatal("scripted 1-attempt fault wrong")
	}
	if in.FailTask("merge", 1, 0) || in.FailTask("other", 3, 0) {
		t.Fatal("unscripted site fired with zero FailProb")
	}
	// Scripted attempts are clamped to the retry-budget bound.
	in2 := MustNew(Config{Schedule: []Fault{{Stage: "s", Task: 0, Attempts: 99}}})
	if in2.FailTask("s", 0, 2) {
		t.Fatal("scripted attempts not clamped to MaxFaultsPerTask")
	}
}

func TestStatsTallyMatchesDecisions(t *testing.T) {
	in := MustNew(Config{Seed: 11, FailProb: 0.4, StragglerProb: 0.3, CorruptProb: 0.5,
		StragglerDelay: 7 * time.Millisecond})
	var wantFail, wantStrag, wantCorrupt int64
	for task := 0; task < 300; task++ {
		if in.FailTask("s", task, 0) {
			wantFail++
		}
		if in.TaskDelay("s", task) > 0 {
			wantStrag++
		}
		if in.CorruptFetch("s", task, 0, 0) {
			wantCorrupt++
		}
	}
	s := in.Stats()
	if s.Failures != wantFail || s.Stragglers != wantStrag || s.Corruptions != wantCorrupt {
		t.Fatalf("stats %+v disagree with decisions (%d/%d/%d)", s, wantFail, wantStrag, wantCorrupt)
	}
	if s.StragglerDelay != time.Duration(wantStrag)*7*time.Millisecond {
		t.Fatalf("StragglerDelay = %v, want %v", s.StragglerDelay, time.Duration(wantStrag)*7*time.Millisecond)
	}
	if wantFail == 0 || wantStrag == 0 || wantCorrupt == 0 {
		t.Fatalf("degenerate trial: %d/%d/%d fired out of 300", wantFail, wantStrag, wantCorrupt)
	}
	in.ResetStats()
	if in.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero the tally")
	}
}

// Fire rates must roughly track the configured probability (the roll is a
// hash, not a proper RNG, so allow a generous tolerance).
func TestRollApproximatelyUniform(t *testing.T) {
	in := MustNew(Config{Seed: 5, FailProb: 0.3})
	fired := 0
	const n = 4000
	for task := 0; task < n; task++ {
		if in.FailTask("uniformity", task, 0) {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.25 || got > 0.35 {
		t.Fatalf("fire rate %v for p=0.3", got)
	}
}

// Kind separation: the "fail" and "corrupt" streams must not be the same
// hash stream in disguise.
func TestDecisionStreamsIndependent(t *testing.T) {
	in := MustNew(Config{Seed: 9, FailProb: 0.5, CorruptProb: 0.5})
	same := true
	for task := 0; task < 64 && same; task++ {
		same = in.FailTask("s", task, 0) == in.CorruptFetch("s", task, 0, 0)
	}
	if same {
		t.Fatal("fail and corrupt decision streams identical over 64 sites")
	}
}

// End-to-end: a chaos injector driving a real engine stage must leave the
// engine's FaultStats ledger equal to its own tally.
func TestEngineLedgerMatchesInjector(t *testing.T) {
	in := MustNew(Config{Seed: 3, FailProb: 0.3, StragglerProb: 0.2, StragglerDelay: time.Millisecond})
	c := engine.New(4)
	c.Injector = in
	s := c.RunStage("II", "chaotic", 64, func(i int) {})
	st := in.Stats()
	if s.Faults.InjectedFailures != st.Failures {
		t.Fatalf("engine counted %d injected failures, injector %d",
			s.Faults.InjectedFailures, st.Failures)
	}
	if s.Faults.StragglerDelay != st.StragglerDelay {
		t.Fatalf("engine straggler delay %v, injector %v",
			s.Faults.StragglerDelay, st.StragglerDelay)
	}
	if st.Failures == 0 || st.Stragglers == 0 {
		t.Fatalf("degenerate chaos run: %+v", st)
	}
}
