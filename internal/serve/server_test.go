package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rpdbscan/internal/obs"
)

// do runs one in-process request against the server's handler.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(method, path, strings.NewReader(body))
	if body != "" {
		r.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestEndpointStatusAndBodies(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m, ServerConfig{MaxBodyBytes: 256, MaxBatch: 4})
	h := srv.Handler()
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{"healthz", "GET", "/healthz", "", 200, `{"status":"ok"}`},
		{"healthz wrong method", "POST", "/healthz", "", 405, "method not allowed"},
		{"info", "GET", "/model/info", "", 200, `"core_points"`},
		{"predict", "POST", "/predict", `{"point":[-1,-1]}`, 200, `"label":`},
		{"predict wrong method", "GET", "/predict", "", 405, "method not allowed"},
		{"predict bad json", "POST", "/predict", `{"point":`, 400, "invalid request body"},
		{"predict unknown field", "POST", "/predict", `{"pt":[1,2]}`, 400, "invalid request body"},
		{"predict trailing data", "POST", "/predict", `{"point":[1,2]}{"point":[3,4]}`, 400, "trailing data"},
		{"predict dim mismatch", "POST", "/predict", `{"point":[1,2,3]}`, 400, "model dimension"},
		{"predict empty body", "POST", "/predict", "", 400, "invalid request body"},
		{"predict oversized", "POST", "/predict", `{"point":[` + strings.Repeat("1,", 400) + `1]}`, 413, "too large"},
		{"batch", "POST", "/predict/batch", `{"points":[[-1,-1],[99,99]]}`, 200, `"noise_count":1`},
		{"batch too many points", "POST", "/predict/batch", `{"points":[[1,2],[1,2],[1,2],[1,2],[1,2]]}`, 400, "exceeds limit"},
		{"batch bad point", "POST", "/predict/batch", `{"points":[[1]]}`, 400, "point 0"},
		{"not found", "GET", "/nope", "", 404, "not found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(h, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", w.Code, tc.wantStatus, w.Body.String())
			}
			if got := w.Body.String(); !strings.Contains(got, tc.wantInBody) {
				t.Fatalf("body %q does not contain %q", got, tc.wantInBody)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			if !bytes.HasSuffix(w.Body.Bytes(), []byte("\n")) {
				t.Fatalf("body not newline-terminated: %q", w.Body.String())
			}
		})
	}
}

// TestBackpressure429 fills the admission queue directly (in-package, via
// the semaphore) and asserts the next request is shed with 429 plus a
// Retry-After header, then admitted again once a slot frees.
func TestBackpressure429(t *testing.T) {
	srv := NewServer(testModel(t), ServerConfig{MaxInFlight: 2})
	h := srv.Handler()
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	before := obs.Counters.ServeRejects.Value()
	w := do(h, "GET", "/healthz", "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := obs.Counters.ServeRejects.Value(); got != before+1 {
		t.Fatalf("ServeRejects = %d, want %d", got, before+1)
	}
	<-srv.sem
	if w := do(h, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("after freeing a slot: status = %d, want 200", w.Code)
	}
	<-srv.sem
}

// TestCountersAccumulate asserts the expvar wiring: requests, predicted
// points, errors, and latency all move.
func TestCountersAccumulate(t *testing.T) {
	h := NewServer(testModel(t), ServerConfig{}).Handler()
	c := obs.Counters
	reqs, pts, errs, lat := c.ServeRequests.Value(), c.ServePredictPoints.Value(), c.ServeErrors.Value(), c.ServeLatencyNs.Value()
	do(h, "POST", "/predict", `{"point":[-1,-1]}`)
	do(h, "POST", "/predict/batch", `{"points":[[-1,-1],[1,1],[0,0]]}`)
	do(h, "GET", "/nope", "")
	if got := c.ServeRequests.Value() - reqs; got != 3 {
		t.Fatalf("ServeRequests moved by %d, want 3", got)
	}
	if got := c.ServePredictPoints.Value() - pts; got != 4 {
		t.Fatalf("ServePredictPoints moved by %d, want 4", got)
	}
	if got := c.ServeErrors.Value() - errs; got != 1 {
		t.Fatalf("ServeErrors moved by %d, want 1", got)
	}
	if c.ServeLatencyNs.Value() == lat {
		t.Fatal("ServeLatencyNs did not move")
	}
}

// TestPredictResponseIsCanonicalJSON pins the exact response encoding the
// golden CLI tests and the soak oracle rely on.
func TestPredictResponseIsCanonicalJSON(t *testing.T) {
	h := NewServer(testModel(t), ServerConfig{}).Handler()
	w := do(h, "POST", "/predict", `{"point":[99,99]}`)
	want := `{"label":-1,"noise":true,"core_index":-1,"core_dist":0,"model_version":0}` + "\n"
	if w.Body.String() != want {
		t.Fatalf("noise reply = %q, want %q", w.Body.String(), want)
	}
	// A second identical request must be byte-identical (pure function of
	// the body).
	w2 := do(h, "POST", "/predict", `{"point":[99,99]}`)
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("identical requests produced different bytes")
	}
	var pred Prediction
	if err := json.Unmarshal(w.Body.Bytes(), &pred); err != nil {
		t.Fatalf("reply is not valid JSON: %v", err)
	}
}

// TestMetricsEndpoint pins the /metrics mount on the serving mux: the
// exposition parses strictly, includes the serve histogram, and the
// scrape itself bypasses admission and stays out of the serve counters
// and the latency histogram.
func TestMetricsEndpoint(t *testing.T) {
	srv := NewServer(testModel(t), ServerConfig{MaxInFlight: 1})
	h := srv.Handler()
	do(h, "POST", "/predict", `{"point":[-1,-1]}`) // populate the histogram

	reqs := obs.Counters.ServeRequests.Value()
	lat := obs.Histograms.ServeLatencyNs.Snapshot()
	// A full admission queue must not block scrapes.
	srv.sem <- struct{}{}
	w := do(h, "GET", "/metrics", "")
	<-srv.sem
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	fams, err := obs.ParseExposition(w.Body)
	if err != nil {
		t.Fatalf("/metrics output rejected: %v", err)
	}
	for _, want := range []string{"rpdbscan_serve_requests_total", "rpdbscan_serve_latency_ns", "rpdbscan_predict_batch_points"} {
		if fams[want] == nil {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if got := obs.Counters.ServeRequests.Value(); got != reqs {
		t.Fatalf("scrape was counted as a serve request (%d -> %d)", reqs, got)
	}
	if window := obs.Histograms.ServeLatencyNs.Snapshot().Sub(lat); window.Count != 0 {
		t.Fatalf("scrape latency leaked into the serve histogram: %+v", window)
	}
}

// TestServeLatencyHistogramRecords asserts the per-request latency hook:
// each instrumented request adds exactly one observation.
func TestServeLatencyHistogramRecords(t *testing.T) {
	h := NewServer(testModel(t), ServerConfig{}).Handler()
	before := obs.Histograms.ServeLatencyNs.Snapshot()
	batch0 := obs.Histograms.PredictBatchPoints.Snapshot()
	do(h, "POST", "/predict", `{"point":[-1,-1]}`)
	do(h, "POST", "/predict/batch", `{"points":[[-1,-1],[1,1]]}`)
	window := obs.Histograms.ServeLatencyNs.Snapshot().Sub(before)
	if window.Count != 2 {
		t.Fatalf("latency observations = %d, want 2", window.Count)
	}
	bw := obs.Histograms.PredictBatchPoints.Snapshot().Sub(batch0)
	if bw.Count != 1 || bw.Sum != 2 {
		t.Fatalf("batch-size observations = %+v, want one observation of 2", bw)
	}
}
