package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"time"

	"rpdbscan/internal/obs"
)

// FaultInjector decides handler-level fault injection. chaos.Injector
// satisfies it: the server addresses each request by its endpoint path
// (stage) and a pure hash of the request body (task), so the set of
// faulted requests is a deterministic function of the request stream —
// independent of arrival order and concurrency — exactly like the
// engine-side chaos schedule.
type FaultInjector interface {
	FailTask(stage string, task, attempt int) bool
}

// ServerConfig parameterizes a Server. The zero value serves with the
// documented defaults and no logging, no chaos.
type ServerConfig struct {
	// MaxBodyBytes caps request body size; larger bodies get 413. Zero
	// defaults to 1 MiB.
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently admitted requests (the queue of the
	// backpressure model); excess requests are rejected immediately with
	// 429 so overload sheds load instead of queueing unboundedly. Zero
	// defaults to 256.
	MaxInFlight int
	// MaxBatch caps the number of points in one /predict/batch request;
	// larger batches get 400. Zero defaults to 4096.
	MaxBatch int
	// RequestTimeout bounds one request's read+handle+write on the
	// listener-facing server (http.Server Read/WriteTimeout). Zero
	// defaults to 10s.
	RequestTimeout time.Duration
	// Log receives one access-log record per request at debug level (and
	// warn for 5xx). Nil disables access logging.
	Log *slog.Logger
	// Injector, when non-nil, injects deterministic handler faults
	// (500s) for chaos testing.
	Injector FaultInjector
	// Refitter, when non-nil, runs the server online: /ingest mounts,
	// every reply carries the served model_version, and the served model
	// is whatever snapshot the refitter last published (the boot model
	// passes through RefitConfig.Boot, not NewServer). Nil serves one
	// frozen model forever, exactly as before.
	Refitter *Refitter
	// Static, when non-nil, is the frozen snapshot to serve — a registry
	// pin or rollback with its real version, watermark, and parent hash.
	// Takes precedence over the model passed to NewServer; requires a nil
	// Refitter.
	Static *Snapshot
	// AB, when non-nil, splits prediction traffic deterministically
	// between two pinned snapshots by request hash. Requires a nil
	// Refitter; /model/info reports arm A.
	AB *ABConfig
}

// ABConfig is a deterministic A/B split between two frozen snapshots.
// Routing hashes the request's canonical point encoding, so which arm
// answers is a pure function of the request body — independent of arrival
// order and concurrency, reproducible by anyone holding the split config.
// Every reply's model_version names the arm that served it, which is what
// makes the split observable and auditable from the client side.
type ABConfig struct {
	// A and B are the two serving snapshots.
	A, B *Snapshot
	// SplitMilli is the share of traffic routed to arm A, in thousandths
	// (0..1000).
	SplitMilli int
}

// RouteSingle reports whether a /predict request for point routes to arm
// A. Exported so differential harnesses share the server's exact router.
func (ab *ABConfig) RouteSingle(point []float64) bool {
	return ab.route(encodePoint(point))
}

// RouteBatch reports whether a /predict/batch request routes to arm A.
// The whole batch routes as one unit (one reply, one model_version).
func (ab *ABConfig) RouteBatch(points [][]float64) bool {
	var flat []byte
	for _, p := range points {
		flat = append(flat, encodePoint(p)...)
	}
	return ab.route(flat)
}

func (ab *ABConfig) route(body []byte) bool {
	return fnv64a(body)%1000 < uint64(ab.SplitMilli)
}

// pick resolves a routing decision to its snapshot.
func (ab *ABConfig) pick(toA bool) *Snapshot {
	if toA {
		return ab.A
	}
	return ab.B
}

// Server serves predictions from an immutable model snapshot — either one
// frozen Model for the process lifetime, or the live generation published
// by a Refitter. Create with NewServer, mount Handler on any mux or listen
// with Serve/Start, stop with Shutdown (graceful drain: in-flight requests
// complete; a Refitter is closed separately by its owner).
type Server struct {
	static *Snapshot // frozen generation when no Refitter is configured
	cfg    ServerConfig
	sem    chan struct{}
	http   *http.Server
}

// NewServer builds a Server. Without cfg.Refitter, m is the frozen model
// (required). With cfg.Refitter, the refitter supplies the model and m
// must be nil.
func NewServer(m *Model, cfg ServerConfig) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}
	switch {
	case cfg.Static != nil:
		s.static = cfg.Static
	case m != nil:
		// A frozen model is generation 0 fitted on its whole training set.
		s.static = &Snapshot{Model: m, Watermark: int64(m.Len())}
	}
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.RequestTimeout,
		WriteTimeout:      cfg.RequestTimeout,
		IdleTimeout:       60 * time.Second,
	}
	return s
}

// current returns the serving snapshot: the refitter's latest generation,
// or the frozen one. Nil means no model exists yet (online cold start
// before the first watermark) and model-backed endpoints answer 503.
// Handlers load it exactly once per request so each reply is internally
// consistent across a concurrent hot swap.
func (s *Server) current() *Snapshot {
	if s.cfg.Refitter != nil {
		return s.cfg.Refitter.Current()
	}
	if s.cfg.AB != nil {
		return s.cfg.AB.A
	}
	return s.static
}

// Handler returns the server's routed handler: /predict, /predict/batch,
// /model/info, /healthz, and — when a Refitter is configured — /ingest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/model/info", s.instrument("/model/info", s.handleInfo))
	mux.HandleFunc("/predict", s.instrument("/predict", s.handlePredict))
	mux.HandleFunc("/predict/batch", s.instrument("/predict/batch", s.handleBatch))
	if s.cfg.Refitter != nil {
		mux.HandleFunc("/ingest", s.instrument("/ingest", s.handleIngest))
	}
	// /metrics mounts raw: scrapes bypass the admission queue (so they keep
	// working during overload) and stay out of the serve_* counters and
	// latency histogram (so monitoring traffic never skews serving stats).
	mux.Handle("/metrics", obs.MetricsHandler())
	mux.HandleFunc("/", s.instrument("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not found")
	}))
	return mux
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	return s.http.Serve(ln)
}

// Start binds addr and serves in a background goroutine, returning the
// bound address (useful with ":0"). Serve errors other than graceful
// shutdown are logged.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			if s.cfg.Log != nil {
				s.cfg.Log.Error("serve", "err", err)
			}
		}
	}()
	return ln.Addr(), nil
}

// Shutdown gracefully drains the server: the listener stops accepting, all
// in-flight requests run to completion (bounded by ctx), then Serve
// returns http.ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// statusWriter captures the response status for access logs and counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint with the shared request plumbing:
// bounded-queue admission (429 on overload), body-size limiting, expvar
// request/latency counters, and slog access logs.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		obs.Counters.ServeRequests.Add(1)
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			obs.Counters.ServeRejects.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server overloaded")
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		obs.Counters.ServeLatencyNs.Add(dur.Nanoseconds())
		obs.Histograms.ServeLatencyNs.Record(dur.Nanoseconds())
		if sw.status >= 400 {
			obs.Counters.ServeErrors.Add(1)
		}
		if log := s.cfg.Log; log != nil {
			level := slog.LevelDebug
			if sw.status >= 500 {
				level = slog.LevelWarn
			}
			log.Log(r.Context(), level, "http",
				"method", r.Method, "path", path, "status", sw.status,
				"dur_us", dur.Microseconds(), "remote", r.RemoteAddr)
		}
	}
}

// writeJSON writes a canonical JSON body: encoding/json with the struct's
// field order, a trailing newline, and application/json. Responses must
// stay a pure function of the request — no timestamps, no request ids —
// so concurrent serving is byte-identical to sequential (pinned by the
// soak test).
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the response types below; fail loudly if a
		// future type breaks marshaling.
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

type errorReply struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorReply{Error: msg})
}

// requireMethod enforces the endpoint's method, answering 405 with an
// Allow header otherwise.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, "method not allowed")
	return false
}

type healthReply struct {
	Status string `json:"status"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, healthReply{Status: "ok"})
}

// requireModel loads the serving snapshot, answering 503 when no
// generation exists yet (online cold start before the first watermark).
func (s *Server) requireModel(w http.ResponseWriter) *Snapshot {
	snap := s.current()
	if snap == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no model fitted yet")
	}
	return snap
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	snap := s.requireModel(w)
	if snap == nil {
		return
	}
	writeJSON(w, http.StatusOK, VersionInfo{
		Info:       snap.Model.Info(),
		Version:    snap.Version,
		Watermark:  snap.Watermark,
		ParentHash: snap.ParentHash,
	})
}

// predictRequest is the /predict body.
type predictRequest struct {
	Point []float64 `json:"point"`
}

// predictReply is the /predict body's answer: the prediction plus the
// generation that computed it. The version is what lets a concurrent
// client attribute every answer to a specific served model — the
// differential harness replays each prediction against the offline fit of
// that exact version.
type predictReply struct {
	Prediction
	ModelVersion int64 `json:"model_version"`
}

// batchRequest is the /predict/batch body.
type batchRequest struct {
	Points [][]float64 `json:"points"`
}

type batchReply struct {
	Predictions  []Prediction `json:"predictions"`
	NoiseCount   int          `json:"noise_count"`
	ModelVersion int64        `json:"model_version"`
}

// ingestRequest is the /ingest body: exactly one of Point (single) or
// Points (batch).
type ingestRequest struct {
	Point  []float64   `json:"point,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
}

// ingestReply reports the accepted batch and where the online stream
// stands. It deliberately carries no model version: the refit triggered by
// a crossing runs asynchronously, so the post-crossing version is not yet
// knowable when the ingest reply is written.
type ingestReply struct {
	// Accepted is the number of points this request appended.
	Accepted int `json:"accepted"`
	// TotalPoints is the stream total after the append.
	TotalPoints int64 `json:"total_points"`
	// NextWatermark is the point count at which the next refit fires
	// (already-crossed watermarks refit in order first).
	NextWatermark int64 `json:"next_watermark"`
	// RefitQueued reports whether this append crossed (or the stream had
	// already crossed) the next watermark, so a refit is due.
	RefitQueued bool `json:"refit_queued"`
}

// readBody decodes one JSON request body into v, mapping failure modes to
// their canonical status codes: 413 for oversized bodies, 400 for
// malformed or trailing JSON.
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid request body")
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	return true
}

// injected consults the chaos injector for this (endpoint, body) site. The
// task id is a pure FNV-1a hash of the body bytes, so which requests fault
// is replayable from the injector seed alone.
func (s *Server) injected(w http.ResponseWriter, path string, body []byte) bool {
	if s.cfg.Injector == nil {
		return false
	}
	task := int(fnv64a(body) & 0x7fffffff)
	if !s.cfg.Injector.FailTask(path, task, 0) {
		return false
	}
	obs.Counters.ServeFaults.Add(1)
	writeError(w, http.StatusInternalServerError, "injected fault")
	return true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req predictRequest
	if !readBody(w, r, &req) {
		return
	}
	if s.injected(w, "/predict", encodePoint(req.Point)) {
		return
	}
	var snap *Snapshot
	if ab := s.cfg.AB; ab != nil {
		snap = ab.pick(ab.RouteSingle(req.Point))
	} else if snap = s.requireModel(w); snap == nil {
		return
	}
	pred, err := snap.Model.Predict(req.Point)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	obs.Counters.ServePredictPoints.Add(1)
	writeJSON(w, http.StatusOK, predictReply{Prediction: pred, ModelVersion: snap.Version})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req batchRequest
	if !readBody(w, r, &req) {
		return
	}
	obs.Histograms.PredictBatchPoints.Record(int64(len(req.Points)))
	if len(req.Points) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d points exceeds limit %d", len(req.Points), s.cfg.MaxBatch))
		return
	}
	var flat []byte
	for _, p := range req.Points {
		flat = append(flat, encodePoint(p)...)
	}
	if s.injected(w, "/predict/batch", flat) {
		return
	}
	var snap *Snapshot
	if ab := s.cfg.AB; ab != nil {
		snap = ab.pick(ab.RouteBatch(req.Points))
	} else if snap = s.requireModel(w); snap == nil {
		return
	}
	preds, err := snap.Model.PredictBatch(req.Points)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	obs.Counters.ServePredictPoints.Add(int64(len(preds)))
	noise := 0
	for _, p := range preds {
		if p.Noise {
			noise++
		}
	}
	writeJSON(w, http.StatusOK, batchReply{Predictions: preds, NoiseCount: noise, ModelVersion: snap.Version})
}

// handleIngest accepts one point or one batch into the online buffer. The
// append is synchronous (an accepted reply means the points are in the
// buffer, durably if a buffer dir is configured); the refit a crossing
// triggers is not — the reply only reports that one is due.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ingestRequest
	if !readBody(w, r, &req) {
		return
	}
	var pts [][]float64
	switch {
	case len(req.Point) > 0 && len(req.Points) > 0:
		writeError(w, http.StatusBadRequest, "exactly one of point and points")
		return
	case len(req.Point) > 0:
		pts = [][]float64{req.Point}
	case len(req.Points) > 0:
		pts = req.Points
	default:
		writeError(w, http.StatusBadRequest, "empty ingest request")
		return
	}
	if len(pts) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d points exceeds limit %d", len(pts), s.cfg.MaxBatch))
		return
	}
	dim := len(pts[0])
	flat := make([]float64, 0, len(pts)*dim)
	for i, p := range pts {
		if len(p) != dim {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("point %d has %d coordinates, point 0 has %d", i, len(p), dim))
			return
		}
		flat = append(flat, p...)
	}
	if s.injected(w, "/ingest", encodePoint(flat)) {
		return
	}
	total, queued, err := s.cfg.Refitter.Ingest(flat, dim)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	wm := s.cfg.Refitter.Watermark()
	writeJSON(w, http.StatusOK, ingestReply{
		Accepted:    len(pts),
		TotalPoints: total,
		// The next multiple of the cadence strictly above the new total —
		// a pure function of the total, stable across refit timing.
		NextWatermark: (total/wm + 1) * wm,
		RefitQueued:   queued,
	})
}

// encodePoint canonicalises a coordinate slice for fault-site hashing.
func encodePoint(p []float64) []byte {
	out := make([]byte, 0, 8*len(p))
	for _, v := range p {
		u := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			out = append(out, byte(u>>(8*i)))
		}
	}
	return out
}
