package serve

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends points [from, to) of a deterministic 2-d stream in
// batches of batch points, returning the final total.
func appendN(t *testing.T, b *IngestBuffer, from, to, batch int) int64 {
	t.Helper()
	var total int64
	for i := from; i < to; i += batch {
		end := i + batch
		if end > to {
			end = to
		}
		var flat []float64
		for j := i; j < end; j++ {
			flat = append(flat, float64(j), float64(-j))
		}
		n, err := b.Append(flat, 2)
		if err != nil {
			t.Fatal(err)
		}
		total = n
	}
	return total
}

// checkStream asserts the buffer's first n points equal the deterministic
// stream.
func checkStream(t *testing.T, b *IngestBuffer, n int) {
	t.Helper()
	prefix := b.Prefix(int64(n))
	for i := 0; i < n; i++ {
		if prefix[2*i] != float64(i) || prefix[2*i+1] != float64(-i) {
			t.Fatalf("point %d = (%g,%g), want (%d,%d)", i, prefix[2*i], prefix[2*i+1], i, -i)
		}
	}
}

func TestIngestBufferValidation(t *testing.T) {
	b, err := NewIngestBuffer("")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bad := []struct {
		name   string
		coords []float64
		dim    int
	}{
		{"zero dim", []float64{1}, 0},
		{"empty", nil, 2},
		{"indivisible", []float64{1, 2, 3}, 2},
		{"nan", []float64{1, math.NaN()}, 2},
		{"inf", []float64{math.Inf(1), 2}, 2},
	}
	for _, tc := range bad {
		if _, err := b.Append(tc.coords, tc.dim); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if got := b.Total(); got != 0 {
		t.Fatalf("rejected appends grew the buffer to %d", got)
	}
	if _, err := b.Append([]float64{1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	// The first accepted append fixes the dimensionality.
	if _, err := b.Append([]float64{1, 2, 3}, 3); err == nil {
		t.Fatal("dimension change accepted")
	}
	if got := b.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
}

func TestIngestBufferRecoversSealedSegments(t *testing.T) {
	dir := t.TempDir()
	b, err := NewIngestBuffer(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, b, 0, 10, 3)
	if err := b.Seal(); err != nil { // watermark crossing
		t.Fatal(err)
	}
	if got := b.SealedPoints(); got != 10 {
		t.Fatalf("SealedPoints = %d, want 10", got)
	}
	appendN(t, b, 10, 17, 3)
	if err := b.Close(); err != nil { // clean shutdown seals the tail
		t.Fatal(err)
	}

	r, err := NewIngestBuffer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Total(); got != 17 {
		t.Fatalf("recovered %d points, want 17", got)
	}
	if got := r.Dim(); got != 2 {
		t.Fatalf("recovered dim %d, want 2", got)
	}
	checkStream(t, r, 17)
	// Recovery continues the global sequence: new appends extend it.
	appendN(t, r, 17, 20, 3)
	checkStream(t, r, 20)
}

func TestIngestBufferCrashLosesOnlyUnsealedTail(t *testing.T) {
	dir := t.TempDir()
	b, err := NewIngestBuffer(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, b, 0, 8, 4)
	if err := b.Seal(); err != nil {
		t.Fatal(err)
	}
	appendN(t, b, 8, 13, 4)
	// Crash: the tail segment never gets its trailer. (No Close.)

	r, err := NewIngestBuffer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Total(); got != 8 {
		t.Fatalf("recovered %d points, want the 8-point sealed prefix", got)
	}
	checkStream(t, r, 8)
	// The orphaned tail file must survive untouched for forensics, and the
	// recovered buffer must write strictly after it.
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatalf("orphaned tail segment gone: %v", err)
	}
	appendN(t, r, 8, 12, 4)
	if err := r.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatalf("post-recovery segment not after the orphan: %v", err)
	}
	checkStream(t, r, 12)
}

func TestIngestBufferRecoveryStopsAtCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	b, err := NewIngestBuffer(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, b, 0, 6, 3)
	if err := b.Seal(); err != nil {
		t.Fatal(err)
	}
	appendN(t, b, 6, 12, 3)
	if err := b.Seal(); err != nil {
		t.Fatal(err)
	}
	appendN(t, b, 12, 18, 3)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle segment: recovery must keep segment 0,
	// reject segment 1 by checksum, and not resurrect segment 2 over the
	// gap.
	path := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := NewIngestBuffer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Total(); got != 6 {
		t.Fatalf("recovered %d points, want the 6-point prefix before the corruption", got)
	}
	checkStream(t, r, 6)
}

func TestIngestBufferMemoryOnly(t *testing.T) {
	b, err := NewIngestBuffer("")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, b, 0, 5, 2)
	if err := b.Seal(); err != nil { // trivial without a directory
		t.Fatal(err)
	}
	checkStream(t, b, 5)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
