package serve_test

// The soak tier: concurrent clients against a live in-process server under
// the race detector, pinned byte-identical to a sequential oracle; a
// graceful-drain check over real sockets; and a chaos variant where
// handler faults are injected deterministically by request-body hash, so
// even the faulted run replays byte-identically.

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/serve"
	"rpdbscan/internal/serve/loadgen"
)

// soakModel fits a small two-blob clustering for the soak tier.
func soakModel(t testing.TB) *serve.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	pts := geom.NewPoints(2, 400)
	row := make([]float64, 2)
	for i := 0; i < 400; i++ {
		c := float64(1 - 2*(i%2)) // +1 / -1 blob centres
		if i%9 == 8 {
			row[0], row[1] = rng.Float64()*8-4, rng.Float64()*8-4
		} else {
			row[0], row[1] = rng.NormFloat64()*0.15+c, rng.NormFloat64()*0.15+c
		}
		pts.Append(row)
	}
	res, err := core.Run(pts, core.Config{Eps: 0.3, MinPts: 4, Rho: 0.01, NumPartitions: 4, Seed: 1}, engine.New(4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := serve.New(pts.Coords, pts.Dim, res.Labels, res.CorePoint, 0.3, 4, 0.01, res.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// reply is one recorded response: status plus body bytes.
type reply struct {
	code int
	body []byte
}

// replay runs every client's stream against h — sequentially when
// concurrent is false, with one goroutine per client otherwise — and
// returns per-client replies.
func replay(h http.Handler, m *serve.Model, cfg loadgen.Config, concurrent bool) [][]reply {
	out := make([][]reply, cfg.Clients)
	runClient := func(c int) {
		stream := loadgen.Stream(m, cfg, c)
		rs := make([]reply, len(stream))
		for i, req := range stream {
			w := loadgen.Do(h, req)
			rs[i] = reply{code: w.Code, body: append([]byte(nil), w.Body.Bytes()...)}
		}
		out[c] = rs
	}
	if !concurrent {
		for c := 0; c < cfg.Clients; c++ {
			runClient(c)
		}
		return out
	}
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			runClient(c)
		}(c)
	}
	wg.Wait()
	return out
}

// assertIdentical compares a concurrent run to its sequential oracle
// byte for byte.
func assertIdentical(t *testing.T, oracle, got [][]reply) {
	t.Helper()
	for c := range oracle {
		for i := range oracle[c] {
			want, have := oracle[c][i], got[c][i]
			if want.code != have.code || !bytes.Equal(want.body, have.body) {
				t.Fatalf("client %d request %d diverged:\nsequential: %d %q\nconcurrent: %d %q",
					c, i, want.code, want.body, have.code, have.body)
			}
		}
	}
}

var soakCfg = loadgen.Config{
	Seed: 42, Clients: 32, RequestsPerClient: 40,
	BatchEvery: 4, BatchSize: 8, InfoEvery: 11,
}

// TestConcurrentSoakByteIdentical is the headline soak: 32 concurrent
// clients of mixed single/batch/info requests must produce exactly the
// bytes of the sequential oracle. MaxInFlight exceeds the client count so
// no request is shed; every response must be 2xx.
func TestConcurrentSoakByteIdentical(t *testing.T) {
	m := soakModel(t)
	h := serve.NewServer(m, serve.ServerConfig{MaxInFlight: 64}).Handler()
	oracle := replay(h, m, soakCfg, false)
	got := replay(h, m, soakCfg, true)
	assertIdentical(t, oracle, got)
	n := 0
	for c := range oracle {
		for _, r := range oracle[c] {
			if r.code != http.StatusOK {
				t.Fatalf("oracle saw status %d: %q", r.code, r.body)
			}
			n++
		}
	}
	if want := soakCfg.Clients * soakCfg.RequestsPerClient; n != want {
		t.Fatalf("oracle answered %d requests, want %d", n, want)
	}
}

// TestChaosSoakByteIdentical reuses internal/chaos at the handler level:
// faults fire as a pure function of (endpoint, body-hash), so a faulted
// concurrent run still replays the sequential oracle byte for byte, and
// the injected-failure tally reconciles exactly across both runs.
func TestChaosSoakByteIdentical(t *testing.T) {
	m := soakModel(t)
	mk := func() (*chaos.Injector, http.Handler) {
		inj := chaos.MustNew(chaos.Config{Seed: 5, FailProb: 0.25})
		return inj, serve.NewServer(m, serve.ServerConfig{MaxInFlight: 64, Injector: inj}).Handler()
	}
	seqInj, seqH := mk()
	oracle := replay(seqH, m, soakCfg, false)
	conInj, conH := mk()
	got := replay(conH, m, soakCfg, true)
	assertIdentical(t, oracle, got)

	faulted := 0
	for c := range oracle {
		for _, r := range oracle[c] {
			switch r.code {
			case http.StatusOK:
			case http.StatusInternalServerError:
				if !bytes.Contains(r.body, []byte("injected fault")) {
					t.Fatalf("unexpected 500 body: %q", r.body)
				}
				faulted++
			default:
				t.Fatalf("unexpected status %d: %q", r.code, r.body)
			}
		}
	}
	if faulted == 0 {
		t.Fatal("chaos injected no faults at rate 0.25")
	}
	// The injector's own tally must reconcile with the observed 500s in
	// both runs: the fault schedule is order-independent.
	if s := seqInj.Stats().Failures; s != int64(faulted) {
		t.Fatalf("sequential injector tallied %d failures, observed %d", s, faulted)
	}
	if s := conInj.Stats().Failures; s != int64(faulted) {
		t.Fatalf("concurrent injector tallied %d failures, observed %d", s, faulted)
	}
}

// gateInjector blocks requests inside the handler until released — the
// lever the drain test uses to hold requests in flight. It injects no
// faults.
type gateInjector struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gateInjector) FailTask(stage string, task, attempt int) bool {
	g.entered <- struct{}{}
	<-g.release
	return false
}

// TestGracefulDrain pins the shutdown contract over real sockets: with
// requests held in flight, Shutdown must wait for every accepted request
// to complete with a full 200 response, and new connections must be
// refused once the listener closes.
func TestGracefulDrain(t *testing.T) {
	const inFlight = 8
	m := soakModel(t)
	gate := &gateInjector{entered: make(chan struct{}, inFlight), release: make(chan struct{})}
	srv := serve.NewServer(m, serve.ServerConfig{MaxInFlight: 64, Injector: gate})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	type result struct {
		code int
		body string
		err  error
	}
	results := make(chan result, inFlight)
	body := []byte(`{"point":[1,1]}`)
	for i := 0; i < inFlight; i++ {
		go func() {
			resp, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			results <- result{code: resp.StatusCode, body: string(b), err: err}
		}()
	}
	// All requests are inside the handler, held by the gate.
	for i := 0; i < inFlight; i++ {
		<-gate.entered
	}
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	// Draining must not abort the held requests: release them and every
	// one must complete with a full 200.
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	for i := 0; i < inFlight; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("in-flight request dropped during drain: %v", r.err)
		}
		if r.code != http.StatusOK || !bytes.Contains([]byte(r.body), []byte(`"label"`)) {
			t.Fatalf("in-flight request got %d %q", r.code, r.body)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The listener is closed: new connections must be refused, not hang.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}
