package serve

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rpdbscan/internal/grid"
	"rpdbscan/internal/spill"
)

// IngestBuffer accumulates the online point stream behind /ingest: an
// in-memory point-major mirror (what refits cluster and what Prefix
// serves), optionally backed by durable RPS1 spill segments so a restarted
// server recovers the stream.
//
// Durability reuses internal/spill's run files verbatim: every accepted
// ingest batch is one checksummed run record (chunk = the batch's global
// sequence number, a single synthetic cell carrying the batch's global
// point ids and coordinates), appended to the current segment file. The
// writer's per-chunk dedup keeps re-appends idempotent, exactly as the
// engine's retry semantics require of the format. Segments are sealed —
// closed with the RPS1 trailer — by the refit loop at each watermark
// crossing, so a sealed segment is a complete, verifiable file and
// recovery always lands on the batch boundary of the most recent crossing.
//
// An unsealed tail segment (process crash mid-stream) has no trailer and
// is rejected by spill.ScanRuns; its points are the ones an abrupt crash
// loses, which is precisely the tail beyond the last watermark — the same
// prefix the newest persisted model artifact was fitted on.
type IngestBuffer struct {
	mu     sync.Mutex
	dim    int       // 0 until the first append fixes it
	coords []float64 // every ingested point, point-major, in arrival order
	dir    string    // segment directory; "" keeps the buffer memory-only
	seg    *spill.Writer
	segIdx int   // index of the open segment
	batch  int   // next batch sequence number (spill chunk id)
	sealed int64 // points covered by sealed segments (the durable prefix)
}

// segmentName formats the on-disk name of segment i.
func segmentName(i int) string {
	return fmt.Sprintf("seg-%06d.rps", i)
}

// NewIngestBuffer opens a buffer. With dir == "" the buffer is
// memory-only. Otherwise dir is created if needed, any previously sealed
// segments are replayed (in order, stopping at the first unreadable or
// discontinuous segment), and a fresh segment is opened for new appends.
func NewIngestBuffer(dir string) (*IngestBuffer, error) {
	b := &IngestBuffer{dir: dir}
	if dir == "" {
		return b, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: ingest buffer dir: %w", err)
	}
	if err := b.recover(); err != nil {
		return nil, err
	}
	if err := b.openSegment(); err != nil {
		return nil, err
	}
	return b, nil
}

// recover replays sealed segments into the in-memory mirror. Segments are
// replayed in index order; the replay stops at the first segment that is
// missing, fails verification, or does not continue the global point
// sequence — everything before that boundary is intact by construction
// (checksummed runs, trailer-verified files, ascending batch ids).
func (b *IngestBuffer) recover() error {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("serve: ingest buffer dir: %w", err)
	}
	var idxs []int
	maxIdx := -1
	for _, e := range entries {
		var i int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.rps", &i); err == nil &&
			e.Name() == segmentName(i) {
			idxs = append(idxs, i)
			if i > maxIdx {
				maxIdx = i
			}
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		runs, err := spill.LoadFile(filepath.Join(b.dir, segmentName(i)))
		if err != nil {
			break // unsealed or corrupt tail: recovery stops here
		}
		ok := true
		for _, r := range runs {
			if r.Chunk != b.batch || (b.dim != 0 && r.Dim != b.dim) {
				ok = false // discontinuity: a gap segment was skipped
				break
			}
			for _, c := range r.Cells {
				if len(c.IDs) > 0 && c.IDs[0] != int64(len(b.coords))/int64(r.Dim) {
					ok = false
					break
				}
				b.dim = r.Dim
				b.coords = append(b.coords, c.Coords...)
			}
			if !ok {
				break
			}
			b.batch = r.Chunk + 1
		}
		if !ok {
			break
		}
	}
	b.sealed = b.Total()
	// New segments go strictly after every existing file, replayed or not,
	// so a crash-orphaned tail is never overwritten and never re-read.
	b.segIdx = maxIdx + 1
	return nil
}

// openSegment starts the next segment file.
func (b *IngestBuffer) openSegment() error {
	w, err := spill.NewWriter(filepath.Join(b.dir, segmentName(b.segIdx)))
	if err != nil {
		return fmt.Errorf("serve: ingest segment: %w", err)
	}
	b.seg = w
	return nil
}

// syntheticKey is the cell key ingest runs are framed under. The buffer
// has no grid — the fit re-derives cells itself — but the RPS1 record
// format carries one, so every batch rides a single zero cell of the
// point dimensionality.
func syntheticKey(dim int) grid.Key {
	return grid.Key(strings.Repeat("\x00", 4*dim))
}

// Append accepts one batch of n = len(coords)/dim points, assigning them
// the next global indices. It returns the buffer's new total. The first
// append fixes the buffer's dimensionality; later appends must match.
// Coordinates must be finite (the HTTP layer validates before calling).
func (b *IngestBuffer) Append(coords []float64, dim int) (total int64, err error) {
	if dim < 1 || len(coords) == 0 || len(coords)%dim != 0 {
		return 0, fmt.Errorf("serve: bad ingest batch: %d coordinates of dimension %d", len(coords), dim)
	}
	for _, v := range coords {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("serve: non-finite ingest coordinate %g", v)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dim == 0 {
		b.dim = dim
	} else if dim != b.dim {
		return 0, fmt.Errorf("serve: ingest point has %d coordinates, buffer dimension is %d", dim, b.dim)
	}
	n := len(coords) / dim
	base := int64(len(b.coords) / dim)
	if b.seg != nil {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = base + int64(i)
		}
		cell := spill.RunCell{Key: syntheticKey(dim), IDs: ids, Coords: coords}
		if _, err := b.seg.AppendRun(b.batch, dim, []spill.RunCell{cell}); err != nil {
			return 0, err
		}
	}
	b.coords = append(b.coords, coords...)
	b.batch++
	return base + int64(n), nil
}

// Dim returns the fixed point dimensionality, or 0 before the first
// append.
func (b *IngestBuffer) Dim() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dim
}

// Total returns the number of ingested points.
func (b *IngestBuffer) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dim == 0 {
		return 0
	}
	return int64(len(b.coords) / b.dim)
}

// Prefix copies the first n ingested points (point-major). The copy is
// what a refit clusters: the buffer keeps growing underneath while the fit
// runs, and the fit must see exactly the watermark prefix.
func (b *IngestBuffer) Prefix(n int64) []float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]float64(nil), b.coords[:int(n)*b.dim]...)
}

// Seal closes the current durable segment (writing its trailer) and opens
// the next one. The refit loop calls it at each watermark crossing; a
// memory-only buffer seals trivially. Sealing is the durability
// linearization point: everything appended so far survives a crash.
func (b *IngestBuffer) Seal() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.seg == nil {
		return nil
	}
	if err := b.seg.Close(); err != nil {
		return fmt.Errorf("serve: seal ingest segment: %w", err)
	}
	b.sealed = int64(len(b.coords))
	if b.dim != 0 {
		b.sealed = int64(len(b.coords) / b.dim)
	}
	b.segIdx++
	return b.openSegment()
}

// SealedPoints returns the durable prefix length: points covered by sealed
// segments (recoverable after a crash).
func (b *IngestBuffer) SealedPoints() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sealed
}

// Close seals the tail segment and releases the buffer. A closed buffer's
// full contents are durable.
func (b *IngestBuffer) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.seg == nil {
		return nil
	}
	err := b.seg.Close()
	b.seg = nil
	if err != nil {
		return fmt.Errorf("serve: close ingest segment: %w", err)
	}
	if b.dim != 0 {
		b.sealed = int64(len(b.coords) / b.dim)
	}
	return nil
}
