package serve_test

// The serve-while-refit tier: an online server ingesting points, refitting
// at exact watermarks, and hot-swapping the served model — differentially
// pinned against stop-the-world fits through the public ClusterStream API.
// Every test here runs under the race soak's rules: concurrent clients,
// the race detector, and byte-level oracles.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	rpdbscan "rpdbscan"
	"rpdbscan/internal/chaos"
	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/registry"
	"rpdbscan/internal/serve"
	"rpdbscan/internal/transport"
)

// refitParams are the fit parameters every refit test uses; the offline
// oracle mirrors them exactly.
const (
	refitEps        = 0.3
	refitMinPts     = 4
	refitRho        = 0.01
	refitPartitions = 4
	refitWorkers    = 4
	refitSeed       = 1
	refitChunk      = 32 // several chunks per refit
)

// ingestPoint returns global stream point i: two tight blobs with
// interleaved scatter, a pure function of i so any ingest schedule draws
// from the same stream.
func ingestPoint(i int) []float64 {
	rng := rand.New(rand.NewSource(int64(i)*2654435761 + 99))
	if i%9 == 8 {
		return []float64{rng.Float64()*8 - 4, rng.Float64()*8 - 4}
	}
	c := float64(1 - 2*(i%2))
	return []float64{rng.NormFloat64()*0.15 + c, rng.NormFloat64()*0.15 + c}
}

// testRefitConfig returns the battery's base config; tests override what
// they need.
func testRefitConfig(t *testing.T, watermark int64) serve.RefitConfig {
	t.Helper()
	return serve.RefitConfig{
		Watermark:  watermark,
		ModelDir:   t.TempDir(),
		Eps:        refitEps,
		MinPts:     refitMinPts,
		Rho:        refitRho,
		Partitions: refitPartitions,
		Workers:    refitWorkers,
		Seed:       refitSeed,
		ChunkSize:  refitChunk,
	}
}

// swapRecorder collects SwapEvents and signals each arrival.
type swapRecorder struct {
	mu     sync.Mutex
	events []serve.SwapEvent
	ch     chan serve.SwapEvent
}

func newSwapRecorder() *swapRecorder {
	return &swapRecorder{ch: make(chan serve.SwapEvent, 64)}
}

func (s *swapRecorder) record(ev serve.SwapEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	s.ch <- ev
}

func (s *swapRecorder) all() []serve.SwapEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]serve.SwapEvent(nil), s.events...)
}

// waitVersion blocks until the refitter serves version v (fatal after 30s
// — refits are sub-second at these sizes).
func waitVersion(t *testing.T, r *serve.Refitter, v int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cur := r.Current(); cur != nil && cur.Version >= v {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("version %d never served", v)
}

// offlineArtifact is the stop-the-world oracle: fit the exact prefix
// through the public streaming API (a fully independent code path from the
// refitter) and return the canonical model artifact bytes.
func offlineArtifact(t *testing.T, coords []float64, dim int) []byte {
	t.Helper()
	src, err := rpdbscan.SliceSource(append([]float64(nil), coords...), dim)
	if err != nil {
		t.Fatal(err)
	}
	opts := rpdbscan.Options{
		Eps: refitEps, MinPts: refitMinPts, Rho: refitRho,
		Partitions: refitPartitions, Workers: refitWorkers, Seed: refitSeed,
	}
	res, err := rpdbscan.ClusterStream(src, rpdbscan.StreamOptions{Options: opts, ChunkSize: refitChunk})
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.ModelFlat(coords, dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertDifferential proves every swapped generation byte-identical to the
// offline oracle over the same prefix, the parent-hash chain intact, and
// every generation retrievable from the model registry by hash — the same
// bytes the server swapped in, under a manifest that passes Verify.
func assertDifferential(t *testing.T, r *serve.Refitter, events []serve.SwapEvent) {
	t.Helper()
	dim := r.Buffer().Dim()
	reg := r.Registry()
	prevChecksum := ""
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("version %d failed: %v", ev.Version, ev.Err)
		}
		if ev.ParentHash != prevChecksum {
			t.Fatalf("version %d parent hash %q, want %q", ev.Version, ev.ParentHash, prevChecksum)
		}
		prevChecksum = ev.Checksum
		want := offlineArtifact(t, r.Buffer().Prefix(ev.Watermark), dim)
		if ev.ArtifactPath == "" {
			t.Fatalf("version %d persisted no artifact", ev.Version)
		}
		got, err := os.ReadFile(ev.ArtifactPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("version %d artifact (%d bytes) differs from stop-the-world fit (%d bytes) on the same %d-point prefix",
				ev.Version, len(got), len(want), ev.Watermark)
		}
		m, err := serve.Decode(want)
		if err != nil {
			t.Fatal(err)
		}
		if sum := m.Info().Checksum; sum != ev.Checksum {
			t.Fatalf("version %d checksum %s, offline %s", ev.Version, ev.Checksum, sum)
		}
		// Registry retrievability: the generation must come back by hash,
		// byte-identical to what was served, with a manifest record that
		// names the exact version and watermark.
		hash, err := registry.ParseHash(ev.Checksum)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := reg.Blob(hash)
		if err != nil {
			t.Fatalf("version %d not retrievable from registry: %v", ev.Version, err)
		}
		if !bytes.Equal(blob, want) {
			t.Fatalf("version %d registry blob differs from the served artifact", ev.Version)
		}
		rec, ok := reg.ByHash(hash)
		if !ok || rec.Version != ev.Version || rec.Watermark != ev.Watermark {
			t.Fatalf("registry record for version %d = %+v, %v", ev.Version, rec, ok)
		}
	}
	rep, err := reg.Verify()
	if err != nil {
		t.Fatalf("registry verify: %v", err)
	}
	if rep.Records < len(events) {
		t.Fatalf("registry verified %d records for %d swaps", rep.Records, len(events))
	}
}

// postJSON drives one request through the handler, returning status+body.
func postJSON(h http.Handler, method, path string, body []byte) (int, []byte) {
	var req *http.Request
	if body == nil {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, bytes.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, append([]byte(nil), w.Body.Bytes()...)
}

// versionedPrediction mirrors the /predict reply shape.
type versionedPrediction struct {
	serve.Prediction
	ModelVersion int64 `json:"model_version"`
}

// TestServeWhileRefitDifferential is the headline battery: concurrent
// ingest and predict clients against a live online server (under -race),
// every swapped generation byte-identical to a stop-the-world fit of the
// same prefix, every prediction explainable by the exact version its reply
// names, and version reads monotone per client.
func TestServeWhileRefitDifferential(t *testing.T) {
	const (
		watermark  = 60
		versions   = 5
		total      = watermark * versions
		ingesters  = 4
		predictors = 6
	)
	rec := newSwapRecorder()
	cfg := testRefitConfig(t, watermark)
	cfg.OnSwap = rec.record
	r, err := serve.NewRefitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := serve.NewServer(nil, serve.ServerConfig{MaxInFlight: 64, Refitter: r}).Handler()

	// Cold start: prediction endpoints must shed with 503, healthz stays
	// live.
	if code, body := postJSON(h, "POST", "/predict", []byte(`{"point":[1,1]}`)); code != http.StatusServiceUnavailable {
		t.Fatalf("cold-start predict = %d %q, want 503", code, body)
	}
	if code, _ := postJSON(h, "GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("cold-start healthz = %d, want 200", code)
	}

	// Ingest the first watermark through HTTP (mixing single and batch
	// forms) and wait for generation 1 before starting predictors, so
	// every prediction thereafter must be a 200.
	for i := 0; i < watermark; i += 4 {
		var pts [][]float64
		for j := i; j < i+4; j++ {
			pts = append(pts, ingestPoint(j))
		}
		body, _ := json.Marshal(map[string]any{"points": pts})
		if code, reply := postJSON(h, "POST", "/ingest", body); code != http.StatusOK {
			t.Fatalf("ingest = %d %q", code, reply)
		}
	}
	waitVersion(t, r, 1)

	// Serve-while-refit: ingesters push the remaining watermarks while
	// predictors hammer /predict, /predict/batch, and /model/info.
	var wg sync.WaitGroup
	for c := 0; c < ingesters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each ingester owns a disjoint residue class of the remaining
			// stream; batches of 5.
			for base := watermark + c*5; base < total; base += ingesters * 5 {
				var pts [][]float64
				for j := base; j < base+5; j++ {
					pts = append(pts, ingestPoint(j))
				}
				body, _ := json.Marshal(map[string]any{"points": pts})
				if code, reply := postJSON(h, "POST", "/ingest", body); code != http.StatusOK {
					t.Errorf("ingest = %d %q", code, reply)
					return
				}
			}
		}(c)
	}
	type obsPred struct {
		point   []float64
		version int64
		pred    serve.Prediction
	}
	observed := make([][]obsPred, predictors)
	for c := 0; c < predictors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1000))
			lastVersion := int64(0)
			for i := 0; i < 120; i++ {
				switch i % 3 {
				case 0, 1: // single predict
					p := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
					body, _ := json.Marshal(map[string]any{"point": p})
					code, reply := postJSON(h, "POST", "/predict", body)
					if code != http.StatusOK {
						t.Errorf("predict during refit = %d %q", code, reply)
						return
					}
					var vp versionedPrediction
					if err := json.Unmarshal(reply, &vp); err != nil {
						t.Errorf("predict reply: %v", err)
						return
					}
					if vp.ModelVersion < lastVersion {
						t.Errorf("client %d version went backwards: %d after %d", c, vp.ModelVersion, lastVersion)
						return
					}
					lastVersion = vp.ModelVersion
					observed[c] = append(observed[c], obsPred{point: p, version: vp.ModelVersion, pred: vp.Prediction})
				case 2: // model info
					code, reply := postJSON(h, "GET", "/model/info", nil)
					if code != http.StatusOK {
						t.Errorf("info during refit = %d %q", code, reply)
						return
					}
					var vi serve.VersionInfo
					if err := json.Unmarshal(reply, &vi); err != nil {
						t.Errorf("info reply: %v", err)
						return
					}
					if vi.Version < lastVersion {
						t.Errorf("client %d version went backwards: %d after %d", c, vi.Version, lastVersion)
						return
					}
					if vi.Watermark != vi.Version*watermark {
						t.Errorf("version %d reports watermark %d, want %d", vi.Version, vi.Watermark, vi.Version*watermark)
						return
					}
					lastVersion = vi.Version
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := r.Close(); err != nil { // drains every crossed watermark
		t.Fatal(err)
	}

	// Every watermark swapped exactly once, in order, no gaps.
	events := rec.all()
	if len(events) != versions {
		t.Fatalf("saw %d swap events, want %d", len(events), versions)
	}
	for i, ev := range events {
		if ev.Version != int64(i+1) || ev.Watermark != int64(i+1)*watermark {
			t.Fatalf("event %d = version %d watermark %d", i, ev.Version, ev.Watermark)
		}
	}
	assertDifferential(t, r, events)

	// Every prediction is explainable by the exact generation its reply
	// named: re-fit each observed version offline and replay the point.
	oracle := map[int64]*serve.Model{}
	for _, ev := range events {
		m, err := serve.Decode(offlineArtifact(t, r.Buffer().Prefix(ev.Watermark), 2))
		if err != nil {
			t.Fatal(err)
		}
		oracle[ev.Version] = m
	}
	checked := 0
	for c := range observed {
		for _, o := range observed[c] {
			m := oracle[o.version]
			if m == nil {
				t.Fatalf("prediction names version %d, which never swapped", o.version)
			}
			want, err := m.Predict(o.point)
			if err != nil {
				t.Fatal(err)
			}
			if want != o.pred {
				t.Fatalf("version %d predicted %+v for %v, offline fit of the same version predicts %+v",
					o.version, o.pred, o.point, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no predictions observed")
	}
	t.Logf("replayed %d predictions across %d versions", checked, len(oracle))
}

// ingestDirect appends points [from, to) straight through the refitter.
func ingestDirect(t *testing.T, r *serve.Refitter, from, to int) {
	t.Helper()
	for i := from; i < to; i += 8 {
		var flat []float64
		end := i + 8
		if end > to {
			end = to
		}
		for j := i; j < end; j++ {
			flat = append(flat, ingestPoint(j)...)
		}
		if _, _, err := r.Ingest(flat, 2); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRefitFailureNoTornSwap scripts a chaos schedule that exhausts the
// engine's full retry budget at one Phase II site during the first refit:
// the fit must fail, no artifact may appear, the served model must stay
// what it was (nil — cold start), and the next watermark must still swap
// cleanly with the failed version number left as a gap.
func TestRefitFailureNoTornSwap(t *testing.T) {
	const watermark = 40
	rec := newSwapRecorder()
	cfg := testRefitConfig(t, watermark)
	cfg.OnSwap = rec.record
	refits := 0
	cfg.Cluster = func() (*engine.Cluster, func(), error) {
		cl := engine.New(refitWorkers)
		cl.Sink = obs.NewSink(nil)
		refits++
		if refits == 1 {
			// Fail all three attempts of one Phase II task: chaos alone
			// must never exhaust the budget (MaxFaultsPerTask <= retries),
			// so exceeding it deliberately requires this scripted override.
			cl.Injector = chaos.MustNew(chaos.Config{
				Seed:             11,
				MaxFaultsPerTask: 3,
				Schedule:         []chaos.Fault{{Stage: "cell-graph-construction", Task: 0, Attempts: 3}},
			})
		}
		return cl, func() {}, nil
	}
	r, err := serve.NewRefitter(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ingestDirect(t, r, 0, watermark)
	ev := <-rec.ch
	if ev.Version != 1 || ev.Err == nil {
		t.Fatalf("first refit = version %d err %v, want a version-1 failure", ev.Version, ev.Err)
	}
	if cur := r.Current(); cur != nil {
		t.Fatalf("failed refit swapped a model in: version %d", cur.Version)
	}
	if head, ok := r.Registry().Head(); ok {
		t.Fatalf("failed refit published a manifest record: %+v", head)
	}
	blobs, err := os.ReadDir(filepath.Join(cfg.ModelDir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range blobs {
		t.Fatalf("failed refit left artifact blob %s", e.Name())
	}

	// The next watermark proceeds as if nothing happened; version 1 stays
	// a gap.
	ingestDirect(t, r, watermark, 2*watermark)
	ev = <-rec.ch
	if ev.Version != 2 || ev.Err != nil {
		t.Fatalf("second refit = version %d err %v, want a clean version 2", ev.Version, ev.Err)
	}
	waitVersion(t, r, 2)
	if cur := r.Current(); cur.ParentHash != "" {
		t.Fatalf("version 2 parent hash %q, want \"\" (nothing served before it)", cur.ParentHash)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	want := offlineArtifact(t, r.Buffer().Prefix(2*watermark), 2)
	got, err := os.ReadFile(ev.ArtifactPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-failure artifact differs from stop-the-world fit")
	}
}

// TestRefitChaosLedgerReconciled runs three refits under probabilistic
// task failures and payload corruption from one shared injector, then
// reconciles the injector's tally exactly against the summed per-refit
// engine ledgers — and still demands byte-identical artifacts.
func TestRefitChaosLedgerReconciled(t *testing.T) {
	const watermark = 50
	// Corruption's only surface under RunStream is the dictionary-load
	// fetch — a handful of deterministic sites — so it needs a high
	// probability to fire; the final transfer attempt is always clean, so
	// no rate can exhaust a retry budget.
	inj := chaos.MustNew(chaos.Config{Seed: 7, FailProb: 0.3, CorruptProb: 0.9})
	rec := newSwapRecorder()
	cfg := testRefitConfig(t, watermark)
	cfg.OnSwap = rec.record
	cfg.Injector = inj
	r, err := serve.NewRefitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestDirect(t, r, 0, 3*watermark)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events := rec.all()
	if len(events) != 3 {
		t.Fatalf("saw %d swap events, want 3", len(events))
	}
	assertDifferential(t, r, events)

	var ledger engine.FaultStats
	for _, ev := range events {
		ledger.Add(ev.Report.TotalFaults())
	}
	stats := inj.Stats()
	if ledger.InjectedFailures != stats.Failures {
		t.Fatalf("engine ledgers total %d injected failures, injector tallied %d",
			ledger.InjectedFailures, stats.Failures)
	}
	if ledger.ChecksumRejects != stats.Corruptions {
		t.Fatalf("engine ledgers total %d checksum rejects, injector tallied %d corruptions",
			ledger.ChecksumRejects, stats.Corruptions)
	}
	if stats.Failures == 0 || stats.Corruptions == 0 {
		t.Fatalf("chaos injected nothing (failures=%d corruptions=%d) at rate 0.3",
			stats.Failures, stats.Corruptions)
	}
}

// TestRefitProcKillChaos refits on the multi-process backend with
// process-level kill chaos: every refit binds a real transport of
// in-process loopback workers (so -race still sees them), the injector
// SIGKILL-equivalently drops workers under running tasks, and the swapped
// artifacts must still match the stop-the-world oracle byte for byte, with
// the kill ledger reconciled exactly.
func TestRefitProcKillChaos(t *testing.T) {
	const watermark = 60
	inj := chaos.MustNew(chaos.Config{Seed: 3, KillProb: 0.5})
	rec := newSwapRecorder()
	cfg := testRefitConfig(t, watermark)
	cfg.OnSwap = rec.record
	cfg.Backend = core.BackendProc
	cfg.Cluster = func() (*engine.Cluster, func(), error) {
		cl := engine.New(refitWorkers)
		cl.Sink = obs.NewSink(nil)
		cl.Injector = inj
		tr, err := transport.NewProc(2, transport.Options{
			Spawn:    transport.InProcess(),
			Injector: inj,
			Killer:   inj,
		})
		if err != nil {
			return nil, nil, err
		}
		tr.Bind(cl)
		return cl, func() { tr.Close() }, nil
	}
	r, err := serve.NewRefitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestDirect(t, r, 0, 2*watermark)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events := rec.all()
	if len(events) != 2 {
		t.Fatalf("saw %d swap events, want 2", len(events))
	}
	assertDifferential(t, r, events)

	var ledger engine.FaultStats
	for _, ev := range events {
		ledger.Add(ev.Report.TotalFaults())
	}
	stats := inj.Stats()
	if ledger.WorkerKills != stats.Kills {
		t.Fatalf("engine ledgers total %d worker kills, injector tallied %d", ledger.WorkerKills, stats.Kills)
	}
	if stats.Kills == 0 {
		t.Fatal("kill chaos killed no workers at rate 0.5")
	}
}

// TestRefitterRecoversDurableBuffer closes an online server mid-stream and
// reopens it over the same buffer and model directories: the stream and
// the served generation must come back (boot resolves through the
// registry head, as rpserve does), and refits must continue from where
// they left off.
func TestRefitterRecoversDurableBuffer(t *testing.T) {
	const watermark = 40
	bufDir := t.TempDir()
	modelDir := t.TempDir()
	mk := func(rec *swapRecorder) *serve.Refitter {
		cfg := testRefitConfig(t, watermark)
		cfg.ModelDir = modelDir
		cfg.BufferDir = bufDir
		cfg.OnSwap = rec.record
		reg, err := registry.Open(modelDir)
		if err != nil {
			t.Fatal(err)
		}
		if head, ok := reg.Head(); ok {
			blob, err := reg.Blob(head.ModelHash)
			if err != nil {
				t.Fatal(err)
			}
			boot, err := serve.Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Boot, cfg.BootVersion = boot, head.Version
			if head.Parent != 0 {
				cfg.BootParentHash = registry.FormatHash(head.Parent)
			}
		}
		cfg.Registry = reg
		r, err := serve.NewRefitter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { reg.Close() })
		return r
	}

	rec1 := newSwapRecorder()
	r1 := mk(rec1)
	ingestDirect(t, r1, 0, watermark+13) // one watermark plus a tail
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	// The first life's registry is caller-owned: close it so the manifest
	// record is sealed before the second life opens the same directory.
	if err := r1.Registry().Close(); err != nil {
		t.Fatal(err)
	}
	if ev := <-rec1.ch; ev.Version != 1 || ev.Err != nil {
		t.Fatalf("first life: version %d err %v", ev.Version, ev.Err)
	}

	// Second life: recovery replays the sealed stream, boots generation 1
	// from its artifact, and the next watermark refits over old + new
	// points.
	rec2 := newSwapRecorder()
	r2 := mk(rec2)
	if got := r2.Buffer().Total(); got != watermark+13 {
		t.Fatalf("recovered %d points, want %d", got, watermark+13)
	}
	if cur := r2.Current(); cur == nil || cur.Version != 1 {
		t.Fatalf("recovered serving snapshot %+v, want version 1", cur)
	}
	ingestDirect(t, r2, watermark+13, 2*watermark)
	ev := <-rec2.ch
	if ev.Version != 2 || ev.Err != nil {
		t.Fatalf("second life: version %d err %v", ev.Version, ev.Err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	// The recovered prefix must equal the original stream exactly.
	prefix := r2.Buffer().Prefix(2 * watermark)
	for i := 0; i < 2*watermark; i++ {
		want := ingestPoint(i)
		if prefix[2*i] != want[0] || prefix[2*i+1] != want[1] {
			t.Fatalf("recovered point %d = (%g,%g), want (%g,%g)",
				i, prefix[2*i], prefix[2*i+1], want[0], want[1])
		}
	}
	want := offlineArtifact(t, prefix, 2)
	got, err := os.ReadFile(ev.ArtifactPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-recovery artifact differs from stop-the-world fit over the recovered stream")
	}
	// And the registry head resolves the newest generation — the boot
	// path a third life would take.
	head, ok := r2.Registry().Head()
	if !ok || head.Version != 2 {
		t.Fatalf("registry head = %+v, %v; want version 2", head, ok)
	}
	blob, err := r2.Registry().Blob(head.ModelHash)
	if err != nil {
		t.Fatal(err)
	}
	m, err := serve.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("fnv1a:%016x", m.Checksum()) != ev.Checksum {
		t.Fatal("registry head resolves a different artifact than the swap event")
	}
	if head.Parent == 0 {
		t.Fatal("version 2 record lost its parent lineage")
	}
}
