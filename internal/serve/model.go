// Package serve turns a fitted RP-DBSCAN clustering into a servable model:
// a versioned, checksummed artifact that persists the fitted state, and an
// HTTP prediction server answering eps-neighborhood membership queries.
//
// DBSCAN has a natural train/predict split (Song & Lee, SIGMOD'18 §5): a
// new point within eps of any core point inherits that core's cluster,
// otherwise it is noise. The model therefore keeps the training points,
// their labels and core flags, and a kd-tree over the core points, so one
// NearestInBall query answers Predict in O(log #core) — the same
// tree-based query layout the Phase II cell dictionary uses.
package serve

import (
	"fmt"
	"math"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/kdtree"
)

// Noise is the label assigned to points in no cluster, mirroring the root
// package's constant.
const Noise = -1

// Model is an immutable fitted clustering plus the query index built over
// its core points. All methods are safe for concurrent use: nothing is
// mutated after construction, which is what lets one model be shared by
// every server goroutine without locks.
type Model struct {
	dim         int
	coords      []float64 // training points, point-major
	labels      []int32   // fitted label per training point (Noise = -1)
	core        []bool    // core flag per training point
	eps         float64
	rho         float64
	minPts      int
	numClusters int
	numCore     int

	tree *kdtree.Tree // over core points; payload = training index

	// Artifact identity, fixed at construction: the canonical encoding's
	// length and checksum (the bytes themselves are not retained).
	artifactBytes int
	checksum      uint64
}

// New builds a Model from a fitted clustering: n = len(coords)/dim training
// points, their labels (cluster id or -1 for noise), core flags, and the
// parameters the fit used. It validates shape and content so every Model
// in the process — built from a fit or decoded from an artifact — holds
// the same invariants.
func New(coords []float64, dim int, labels []int, core []bool, eps float64, minPts int, rho float64, numClusters int) (*Model, error) {
	if dim < 1 {
		return nil, fmt.Errorf("serve: dimension must be >= 1, got %d", dim)
	}
	if len(coords)%dim != 0 {
		return nil, fmt.Errorf("serve: %d coordinates not divisible by dimension %d", len(coords), dim)
	}
	n := len(coords) / dim
	if len(labels) != n || len(core) != n {
		return nil, fmt.Errorf("serve: %d labels and %d core flags for %d points", len(labels), len(core), n)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("serve: eps must be positive and finite, got %g", eps)
	}
	if !(rho > 0) || math.IsInf(rho, 0) {
		return nil, fmt.Errorf("serve: rho must be positive and finite, got %g", rho)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("serve: minPts must be >= 1, got %d", minPts)
	}
	if numClusters < 0 || numClusters > n {
		return nil, fmt.Errorf("serve: %d clusters for %d points", numClusters, n)
	}
	for _, v := range coords {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("serve: non-finite training coordinate %g", v)
		}
	}
	m := &Model{
		dim:         dim,
		coords:      coords,
		labels:      make([]int32, n),
		core:        core,
		eps:         eps,
		rho:         rho,
		minPts:      minPts,
		numClusters: numClusters,
	}
	for i, l := range labels {
		if l < Noise || l >= numClusters {
			return nil, fmt.Errorf("serve: label %d of point %d outside [-1, %d)", l, i, numClusters)
		}
		if core[i] && l == Noise {
			return nil, fmt.Errorf("serve: core point %d labeled noise", i)
		}
		m.labels[i] = int32(l)
	}
	m.finish()
	return m, nil
}

// finish derives the core-point index and artifact identity from the
// validated fields. Shared by New and Decode.
func (m *Model) finish() {
	n := len(m.labels)
	var coreIdx []int
	for i := 0; i < n; i++ {
		if m.core[i] {
			coreIdx = append(coreIdx, i)
		}
	}
	m.numCore = len(coreIdx)
	corePts := geom.NewPoints(m.dim, m.numCore)
	for _, i := range coreIdx {
		corePts.Append(m.coords[i*m.dim : (i+1)*m.dim])
	}
	m.tree = kdtree.Build(corePts, coreIdx)
	enc := m.Encode()
	m.artifactBytes = len(enc)
	m.checksum = fnv64a(enc[checksumStart:])
}

// Dim returns the model's point dimensionality.
func (m *Model) Dim() int { return m.dim }

// Checksum returns the artifact's raw FNV-1a checksum (the value Info
// renders as "fnv1a:%016x"). Versioned artifact filenames embed it.
func (m *Model) Checksum() uint64 { return m.checksum }

// Len returns the number of training points.
func (m *Model) Len() int { return len(m.labels) }

// Info summarises the model for the /model/info endpoint and CLIs.
type Info struct {
	Dim           int     `json:"dim"`
	Points        int     `json:"points"`
	CorePoints    int     `json:"core_points"`
	Clusters      int     `json:"clusters"`
	Eps           float64 `json:"eps"`
	MinPts        int     `json:"min_pts"`
	Rho           float64 `json:"rho"`
	ArtifactBytes int     `json:"artifact_bytes"`
	Checksum      string  `json:"checksum"`
}

// Info reports the model's parameters and artifact identity.
func (m *Model) Info() Info {
	return Info{
		Dim:           m.dim,
		Points:        len(m.labels),
		CorePoints:    m.numCore,
		Clusters:      m.numClusters,
		Eps:           m.eps,
		MinPts:        m.minPts,
		Rho:           m.rho,
		ArtifactBytes: m.artifactBytes,
		Checksum:      fmt.Sprintf("fnv1a:%016x", m.checksum),
	}
}

// Prediction is the answer to one Predict query.
type Prediction struct {
	// Label is the cluster id the point falls in, or Noise.
	Label int `json:"label"`
	// Noise is true when no core point lies within eps.
	Noise bool `json:"noise"`
	// CoreIndex is the training index of the nearest core point within
	// eps (ties to the smallest index), or -1 for noise.
	CoreIndex int `json:"core_index"`
	// CoreDist is the distance to that core point, or 0 for noise.
	CoreDist float64 `json:"core_dist"`
}

// Predict classifies one point under the fitted clustering: the label of
// the nearest core point within eps, or Noise when none qualifies. The
// nearest-with-deterministic-tie-break rule makes the answer a pure
// function of (model, point), so concurrent serving is byte-identical to
// sequential.
func (m *Model) Predict(point []float64) (Prediction, error) {
	if len(point) != m.dim {
		return Prediction{}, fmt.Errorf("serve: point has %d coordinates, model dimension is %d", len(point), m.dim)
	}
	for _, v := range point {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Prediction{}, fmt.Errorf("serve: non-finite coordinate %g", v)
		}
	}
	idx, d2, ok := m.tree.NearestInBall(point, m.eps)
	if !ok {
		return Prediction{Label: Noise, Noise: true, CoreIndex: -1}, nil
	}
	return Prediction{
		Label:     int(m.labels[idx]),
		CoreIndex: idx,
		CoreDist:  math.Sqrt(d2),
	}, nil
}

// PredictBatch classifies a batch of points. It fails on the first invalid
// point, returning its index in the error, so callers can reject a
// malformed request without a partial answer.
func (m *Model) PredictBatch(points [][]float64) ([]Prediction, error) {
	out := make([]Prediction, len(points))
	for i, p := range points {
		pr, err := m.Predict(p)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		out[i] = pr
	}
	return out, nil
}

// TrainingLabel returns the fitted label of training point i (test and
// harness accessor).
func (m *Model) TrainingLabel(i int) int { return int(m.labels[i]) }

// TrainingCore reports whether training point i was fitted as a core point.
func (m *Model) TrainingCore(i int) bool { return m.core[i] }

// TrainingPoint returns a view of training point i's coordinates.
func (m *Model) TrainingPoint(i int) []float64 {
	return m.coords[i*m.dim : (i+1)*m.dim]
}

// Eps returns the fitted neighborhood radius.
func (m *Model) Eps() float64 { return m.eps }
