package serve

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/pointio"
	"rpdbscan/internal/registry"
)

// Snapshot is one immutable served-model generation. The refitter
// publishes snapshots through an atomic pointer; handlers load the pointer
// once per request, so every reply is internally consistent (model,
// version, and watermark always agree) and a hot swap is invisible to
// in-flight requests.
type Snapshot struct {
	// Model is the generation's immutable model.
	Model *Model
	// Version is the generation number: watermark / RefitConfig.Watermark
	// for refitted generations, or the boot version for a warm start.
	// Versions are strictly increasing across swaps but may skip numbers
	// (a failed refit leaves a gap; the old generation keeps serving).
	Version int64
	// Watermark is the exact count of ingested points the model was
	// fitted on. Zero for a warm-start model whose training stream is not
	// the ingest stream.
	Watermark int64
	// ParentHash is the artifact checksum ("fnv1a:%016x") of the
	// generation that was serving when this one swapped in; "" for the
	// first generation. The chain makes served lineage auditable.
	ParentHash string
}

// VersionInfo is Info extended with the snapshot's generation fields —
// what /model/info reports when the server runs a refitter.
type VersionInfo struct {
	Info
	// Version is the served generation number.
	Version int64 `json:"version"`
	// Watermark is the ingested-point count the generation was fitted on.
	Watermark int64 `json:"watermark"`
	// ParentHash is the predecessor generation's checksum ("" for the
	// first).
	ParentHash string `json:"parent_hash"`
}

// SwapEvent describes one refit attempt, delivered to RefitConfig.OnSwap
// after the attempt resolves (swap or failure). The differential and bench
// harnesses consume these; production wires them to slog.
type SwapEvent struct {
	// Version and Watermark identify the attempted generation.
	Version   int64
	Watermark int64
	// Checksum is the new artifact checksum ("fnv1a:%016x"); "" on
	// failure.
	Checksum string
	// ParentHash is the checksum of the generation serving before the
	// attempt.
	ParentHash string
	// ArtifactPath is the persisted artifact's path ("" without a model
	// dir or on failure).
	ArtifactPath string
	// Report carries the fit's engine report (nil if the fit never ran).
	// Chaos harnesses reconcile its fault tally against the injector.
	Report *engine.Report
	// FitDuration is the RunStream + model-build wall time; SwapDuration
	// the persist + validate + pointer-flip window.
	FitDuration  time.Duration
	SwapDuration time.Duration
	// Err is nil when the generation swapped in; otherwise the old
	// generation kept serving and Err says why.
	Err error
}

// RefitConfig configures a Refitter. Watermark is required; everything
// else has serviceable defaults.
type RefitConfig struct {
	// Watermark is the refit cadence in points: a refit runs at every
	// exact multiple (W, 2W, 3W, ...) of ingested points, each over the
	// full prefix up to that multiple. Required, > 0.
	Watermark int64
	// ModelDir, when set, is the model-registry root: every swap publishes
	// its artifact content-addressed (blobs/<hash>.rpm1) with a fit record
	// appended to the registry's tamper-evident manifest. Empty keeps
	// models in memory only.
	ModelDir string
	// Registry, when set, is the registry to publish through (the caller
	// keeps ownership). Nil with a ModelDir makes the refitter open and
	// own one rooted there.
	Registry *registry.Registry
	// BufferDir, when set, backs the ingest buffer with durable spill
	// segments (see IngestBuffer). Empty keeps the buffer memory-only.
	BufferDir string
	// Eps, MinPts, Rho, Partitions, Seed, ChunkSize, Backend mirror the
	// offline fit configuration; a differential harness reproduces any
	// served generation by fitting the same prefix with the same values.
	Eps        float64
	MinPts     int
	Rho        float64 // 0 defaults to 0.01, the paper's value
	Partitions int     // 0 defaults to Workers
	Seed       int64
	ChunkSize  int    // 0 defaults to core.DefaultChunkSize
	Backend    string // "", "sim", or core.BackendProc
	// Workers is the virtual cluster width of each refit; 0 defaults to
	// GOMAXPROCS.
	Workers int
	// Boot, when set, serves from the start as generation BootVersion
	// (with BootParentHash) until the first refit replaces it.
	Boot           *Model
	BootVersion    int64
	BootParentHash string
	// Cluster, when set, supplies the engine cluster for each refit plus
	// a cleanup func; tests use it to bind chaos injectors or a real
	// multi-process transport. Nil builds a plain engine.New(Workers)
	// with the obs sink and Injector below.
	Cluster func() (*engine.Cluster, func(), error)
	// Injector is installed on default-built clusters (ignored when
	// Cluster is set — the factory wires its own).
	Injector engine.Injector
	// OnSwap, when set, receives a SwapEvent per refit attempt,
	// synchronously from the refit goroutine.
	OnSwap func(SwapEvent)
	// Log receives swap/failure records; nil discards them.
	Log *slog.Logger
}

// Refitter owns the online loop: an ingest buffer, a single refit
// goroutine, and the atomically published served snapshot. Ingest is
// non-blocking (appends signal the goroutine and return); refits run
// strictly in watermark order, each over an exact prefix, so the stream of
// published generations is deterministic given the ingest order.
type Refitter struct {
	cfg RefitConfig
	buf *IngestBuffer
	cur atomic.Pointer[Snapshot]

	// reg is the publish target (nil without a model dir); ownReg marks a
	// registry the refitter opened itself and must close.
	reg    *registry.Registry
	ownReg bool
	// configSum fingerprints the fit configuration for manifest records:
	// same prefix + same configSum ⇒ byte-identical artifact.
	configSum uint64

	notify chan struct{} // cap 1: "total may have crossed nextTarget"
	done   chan struct{} // closed when the refit goroutine exits

	mu         sync.Mutex
	nextTarget int64
	closed     bool
}

// NewRefitter opens the buffer (recovering any durable segments), installs
// the boot snapshot, and starts the refit goroutine. If the recovered
// buffer already crosses pending watermarks, the goroutine fits them
// immediately — catch-up is just the normal loop.
func NewRefitter(cfg RefitConfig) (*Refitter, error) {
	if cfg.Watermark <= 0 {
		return nil, fmt.Errorf("serve: refit watermark must be > 0, got %d", cfg.Watermark)
	}
	if cfg.Rho == 0 {
		cfg.Rho = 0.01
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	reg, ownReg := cfg.Registry, false
	if reg == nil && cfg.ModelDir != "" {
		var err error
		if reg, err = registry.Open(cfg.ModelDir); err != nil {
			return nil, fmt.Errorf("serve: model registry: %w", err)
		}
		ownReg = true
	}
	buf, err := NewIngestBuffer(cfg.BufferDir)
	if err != nil {
		if ownReg {
			reg.Close()
		}
		return nil, err
	}
	r := &Refitter{
		cfg:       cfg,
		buf:       buf,
		reg:       reg,
		ownReg:    ownReg,
		configSum: configFingerprint(cfg),
		notify:    make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if cfg.Boot != nil {
		r.cur.Store(&Snapshot{
			Model:      cfg.Boot,
			Version:    cfg.BootVersion,
			Watermark:  cfg.BootVersion * cfg.Watermark,
			ParentHash: cfg.BootParentHash,
		})
	}
	r.nextTarget = (cfg.BootVersion + 1) * cfg.Watermark
	go r.loop()
	r.wake() // recovered buffer may already cross pending watermarks
	return r, nil
}

// Current returns the served snapshot, or nil before any model exists
// (cold start, first watermark not yet crossed).
func (r *Refitter) Current() *Snapshot { return r.cur.Load() }

// Buffer exposes the ingest buffer (the HTTP layer appends to it).
func (r *Refitter) Buffer() *IngestBuffer { return r.buf }

// Registry exposes the publish target (nil without a model dir). Callers
// must not Close a registry they did not pass in.
func (r *Refitter) Registry() *registry.Registry { return r.reg }

// configFingerprint hashes the fit configuration fields that determine the
// artifact bytes for a given prefix: the manifest's config_sum column.
func configFingerprint(cfg RefitConfig) uint64 {
	parts := cfg.Partitions
	if parts == 0 {
		parts = cfg.Workers
	}
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = core.DefaultChunkSize
	}
	buf := make([]byte, 0, 64)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(cfg.Eps))
	buf = binary.BigEndian.AppendUint64(buf, uint64(cfg.MinPts))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(cfg.Rho))
	buf = binary.BigEndian.AppendUint64(buf, uint64(parts))
	buf = binary.BigEndian.AppendUint64(buf, uint64(cfg.Seed))
	buf = binary.BigEndian.AppendUint64(buf, uint64(chunk))
	buf = append(buf, cfg.Backend...)
	return fnv64a(buf)
}

// Watermark returns the refit cadence in points.
func (r *Refitter) Watermark() int64 { return r.cfg.Watermark }

// Ingest appends one batch and signals the refit loop. It returns the
// buffer's new total and whether that total reaches the next refit target
// (the "refit queued" bit of the /ingest reply).
func (r *Refitter) Ingest(coords []float64, dim int) (total int64, queued bool, err error) {
	total, err = r.buf.Append(coords, dim)
	if err != nil {
		return 0, false, err
	}
	obs.Counters.IngestPoints.Add(int64(len(coords) / dim))
	obs.Histograms.IngestBatchPoints.Record(int64(len(coords) / dim))
	r.mu.Lock()
	queued = total >= r.nextTarget && !r.closed
	r.mu.Unlock()
	if queued {
		r.wake()
	}
	return total, queued, nil
}

// NextWatermark returns the next refit target in points.
func (r *Refitter) NextWatermark() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextTarget
}

// wake nudges the refit goroutine without blocking.
func (r *Refitter) wake() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// Close stops the refit goroutine — after draining every watermark already
// crossed, so a test that ingested past k watermarks observes all k swaps
// by closing — then seals the buffer.
func (r *Refitter) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.wake()
	<-r.done
	err := r.buf.Close()
	if r.ownReg {
		if rerr := r.reg.Close(); err == nil {
			err = rerr
		}
	}
	return err
}

// loop is the refit goroutine: wait for a signal, then fit every crossed
// watermark in order. Exactly one fit runs at a time; ingest never blocks
// on it.
func (r *Refitter) loop() {
	defer close(r.done)
	for {
		<-r.notify
		for {
			r.mu.Lock()
			target, closed := r.nextTarget, r.closed
			r.mu.Unlock()
			if r.buf.Total() < target {
				if closed {
					return
				}
				break
			}
			r.refitTo(target)
			r.mu.Lock()
			r.nextTarget = target + r.cfg.Watermark
			r.mu.Unlock()
		}
	}
}

// refitTo runs one micro-batch refit over the exact prefix [0, target):
// seal the durable segment at the crossing, copy the prefix, fit it with
// RunStream, build the model, persist + validate the artifact, and only
// then flip the served pointer. Any failure keeps the old generation
// serving (no torn swap) and skips the version number.
func (r *Refitter) refitTo(target int64) {
	version := target / r.cfg.Watermark
	parent := ""
	var parentSum uint64
	if cur := r.cur.Load(); cur != nil {
		parent = cur.Model.Info().Checksum
		parentSum = cur.Model.Checksum()
	}
	ev := SwapEvent{Version: version, Watermark: target, ParentHash: parent}
	defer func() {
		if ev.Err != nil {
			obs.Counters.RefitFailures.Add(1)
			if r.cfg.Log != nil {
				r.cfg.Log.Error("refit failed", "version", version, "watermark", target, "err", ev.Err)
			}
		}
		if r.cfg.OnSwap != nil {
			r.cfg.OnSwap(ev)
		}
	}()

	if err := r.buf.Seal(); err != nil {
		ev.Err = err
		return
	}

	fitStart := time.Now()
	m, rep, err := r.fit(target)
	ev.Report = rep
	ev.FitDuration = time.Since(fitStart)
	if err != nil {
		ev.Err = err
		return
	}
	obs.Counters.RefitRuns.Add(1)
	obs.Counters.RefitPoints.Add(target)
	obs.Histograms.RefitDurationNs.Record(int64(ev.FitDuration))

	swapStart := time.Now()
	path, err := r.publish(m, version, target, parentSum, ev.FitDuration)
	if err != nil {
		ev.Err = err
		return
	}
	ev.ArtifactPath = path
	r.cur.Store(&Snapshot{Model: m, Version: version, Watermark: target, ParentHash: parent})
	ev.SwapDuration = time.Since(swapStart)
	ev.Checksum = m.Info().Checksum
	obs.Counters.ModelSwaps.Add(1)
	obs.Histograms.SwapLatencyNs.Record(int64(ev.SwapDuration))
	if r.cfg.Log != nil {
		r.cfg.Log.Info("model swap",
			"version", version, "watermark", target, "checksum", ev.Checksum,
			"parent", parent, "artifact", path,
			"fit_ms", ev.FitDuration.Milliseconds(), "swap_us", ev.SwapDuration.Microseconds())
	}
}

// fit re-clusters the exact prefix with the out-of-core pipeline and
// builds the generation's model. The fit is a pure function of (prefix,
// config) — the differential harness re-runs it offline and asserts
// byte-identical artifacts.
func (r *Refitter) fit(target int64) (*Model, *engine.Report, error) {
	dim := r.buf.Dim()
	pts := &geom.Points{Dim: dim, Coords: r.buf.Prefix(target)}

	cl, cleanup, err := r.cluster()
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()

	cfg := core.StreamConfig{
		Config: core.Config{
			Eps:           r.cfg.Eps,
			MinPts:        r.cfg.MinPts,
			Rho:           r.cfg.Rho,
			NumPartitions: r.cfg.Partitions,
			Seed:          r.cfg.Seed,
			Backend:       r.cfg.Backend,
		},
		ChunkSize: r.cfg.ChunkSize,
	}
	// The out-of-core pipeline is the default substrate. The proc backend
	// routes through core.Run instead — RunStream's stages are
	// simulator-only, while Run dispatches Phase I/II to the cluster's
	// multi-process Transport — and the equivalence batteries pin both
	// paths byte-identical, so the choice never changes the artifact.
	//
	// The engine panics when a task exhausts its retry budget ("a real
	// bug; surface it loudly"), which is right for batch runs but must not
	// take down an online server over one poisoned micro-batch: recover it
	// into a failed refit, keeping the previous generation serving.
	var res *core.Result
	func() {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("serve: refit run: %v", p)
			}
		}()
		if r.cfg.Backend == core.BackendProc {
			res, err = core.Run(pts, cfg.Config, cl)
		} else {
			res, err = core.RunStream(pointio.FromPoints(pts), cfg, cl)
		}
	}()
	rep := cl.Report()
	if err != nil {
		return nil, rep, err
	}
	m, err := New(pts.Coords, dim, res.Labels, res.CorePoint, r.cfg.Eps, r.cfg.MinPts, r.cfg.Rho, res.NumClusters)
	if err != nil {
		return nil, rep, err
	}
	info := obs.RunInfo{
		Algorithm: "rp", Points: res.PointsProcessed, Clusters: res.NumClusters,
		Cells: res.NumCells, SubCells: res.NumSubCells, DictBytes: res.DictBytes,
	}
	if res.Stream != nil {
		info.Streamed = true
		info.Chunks = res.Stream.Chunks
		info.SpillBytes = res.Stream.SpillBytes
		info.SpillReloads = res.Stream.SpillReloads
	}
	obs.CountRun(rep, info)
	return m, rep, nil
}

// cluster builds the engine cluster for one refit.
func (r *Refitter) cluster() (*engine.Cluster, func(), error) {
	if r.cfg.Cluster != nil {
		return r.cfg.Cluster()
	}
	cl := engine.New(r.cfg.Workers)
	cl.Sink = obs.NewSink(nil)
	cl.Injector = r.cfg.Injector
	return cl, func() {}, nil
}

// publish stores the generation's artifact through the registry and
// validates it end to end before the caller may swap: encode, publish
// (content-addressed blob, fsynced and read back; fit record appended to
// the tamper-evident manifest), then re-read the blob, byte-compare, and
// decode. A model that cannot be proven durable and loadable never
// serves. The manifest record itself rides the registry's batched
// appender, so ledger fsync stays off this path. Returns "" without a
// model dir (in-memory generations skip persistence).
func (r *Refitter) publish(m *Model, version, watermark int64, parent uint64, fitDur time.Duration) (string, error) {
	if r.reg == nil {
		return "", nil
	}
	art := m.Encode()
	sum := m.Checksum()
	rec := registry.Record{
		Version:   version,
		ModelHash: sum,
		Parent:    parent,
		Watermark: watermark,
		ConfigSum: r.configSum,
		Points:    int64(m.Len()),
		Clusters:  int64(m.Info().Clusters),
		Bytes:     int64(len(art)),
		FitNs:     fitDur.Nanoseconds(),
	}
	path, err := r.reg.Publish(art, rec)
	if err != nil {
		return "", fmt.Errorf("serve: publish model: %w", err)
	}
	back, err := r.reg.Blob(sum)
	if err != nil {
		return "", fmt.Errorf("serve: validate artifact %016x: %w", sum, err)
	}
	if string(back) != string(art) {
		return "", fmt.Errorf("serve: validate artifact %016x: readback differs from encoding", sum)
	}
	if _, err := Decode(back); err != nil {
		return "", fmt.Errorf("serve: validate artifact %016x: %w", sum, err)
	}
	return path, nil
}

// artifactName formats the versioned artifact filename. The embedded hash
// is the RPM1 content checksum, so the name itself is tamper-evident:
// LoadNewest rejects files whose contents do not hash to their name.
func artifactName(version int64, checksum uint64) string {
	return fmt.Sprintf("model-%d-%016x.rpm1", version, checksum)
}

// artifactRe matches versioned artifact names; submatches are version and
// checksum.
var artifactRe = regexp.MustCompile(`^model-([0-9]+)-([0-9a-f]{16})\.rpm1$`)

// LoadNewest scans a model directory and loads the newest valid versioned
// artifact: highest version whose name parses, whose contents hash to the
// checksum embedded in the name, and whose body decodes. Invalid files —
// truncated, bit-flipped, misnamed, or alien — are skipped, never fatal,
// so one corrupt artifact cannot stop a server from booting an older good
// generation. Returns (nil, 0, nil) when the directory holds no valid
// artifact.
func LoadNewest(dir string) (*Model, int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: model dir: %w", err)
	}
	type cand struct {
		version  int64
		checksum uint64
		name     string
	}
	var cands []cand
	for _, e := range entries {
		sub := artifactRe.FindStringSubmatch(e.Name())
		if sub == nil {
			continue
		}
		v, err := strconv.ParseInt(sub[1], 10, 64)
		if err != nil {
			continue
		}
		sum, err := strconv.ParseUint(sub[2], 16, 64)
		if err != nil {
			continue
		}
		cands = append(cands, cand{version: v, checksum: sum, name: e.Name()})
	}
	// Try candidates newest-first; the first one that fully validates
	// wins.
	for {
		best := -1
		for i, c := range cands {
			if best < 0 || c.version > cands[best].version {
				best = i
			}
		}
		if best < 0 {
			return nil, 0, nil
		}
		c := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		buf, err := os.ReadFile(filepath.Join(dir, c.name))
		if err != nil {
			continue
		}
		m, err := Decode(buf)
		if err != nil {
			continue // truncated or bit-flipped: skip to the next-newest
		}
		if m.Checksum() != c.checksum {
			continue // contents do not match the name: tampered, skip
		}
		return m, c.version, nil
	}
}
