package loadgen

import (
	"math/rand"
	"reflect"
	"testing"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/serve"
)

func smallModel(t testing.TB) *serve.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pts := geom.NewPoints(2, 120)
	row := make([]float64, 2)
	for i := 0; i < 120; i++ {
		c := float64(1 - 2*(i%2))
		row[0], row[1] = rng.NormFloat64()*0.1+c, rng.NormFloat64()*0.1+c
		pts.Append(row)
	}
	res, err := core.Run(pts, core.Config{Eps: 0.3, MinPts: 4, Rho: 0.01, NumPartitions: 4, Seed: 1}, engine.New(4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := serve.New(pts.Coords, pts.Dim, res.Labels, res.CorePoint, 0.3, 4, 0.01, res.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStreamDeterministic pins the property the soak oracle depends on:
// a stream is a pure function of (model, config, client index), and
// distinct clients get distinct streams.
func TestStreamDeterministic(t *testing.T) {
	m := smallModel(t)
	cfg := Config{Seed: 9, Clients: 4, RequestsPerClient: 30, BatchEvery: 5, BatchSize: 4, InfoEvery: 7}
	a := Stream(m, cfg, 2)
	b := Stream(m, cfg, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (model, cfg, client) produced different streams")
	}
	c := Stream(m, cfg, 3)
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct clients produced identical streams")
	}
	if len(a) != cfg.RequestsPerClient {
		t.Fatalf("stream length %d, want %d", len(a), cfg.RequestsPerClient)
	}
	// The configured mix must actually appear.
	var single, batch, info int
	for _, r := range a {
		switch r.Path {
		case "/predict":
			single++
		case "/predict/batch":
			batch++
		case "/model/info":
			info++
		default:
			t.Fatalf("unexpected path %q", r.Path)
		}
	}
	if single == 0 || batch == 0 || info == 0 {
		t.Fatalf("stream mix degenerate: single=%d batch=%d info=%d", single, batch, info)
	}
}

// TestRunAggregates exercises a full (small) load run end to end and
// sanity-checks the report: everything answered 2xx, percentiles ordered,
// classified-point accounting consistent with the stream shape.
func TestRunAggregates(t *testing.T) {
	m := smallModel(t)
	h := serve.NewServer(m, serve.ServerConfig{MaxInFlight: 32}).Handler()
	cfg := Config{Seed: 9, Clients: 4, RequestsPerClient: 25, BatchEvery: 5, BatchSize: 4, InfoEvery: 9}
	rep, err := Run(h, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Clients * cfg.RequestsPerClient
	if rep.Requests != want || rep.OK != want || rep.Rejected != 0 || rep.Errors != 0 {
		t.Fatalf("requests=%d ok=%d rejected=%d errors=%d, want all %d ok",
			rep.Requests, rep.OK, rep.Rejected, rep.Errors, want)
	}
	if rep.Points == 0 {
		t.Fatal("no points classified")
	}
	if rep.P50MicroS <= 0 || rep.P99MicroS < rep.P50MicroS || rep.MaxMicroS < rep.P99MicroS {
		t.Fatalf("latency percentiles disordered: p50=%v p99=%v max=%v",
			rep.P50MicroS, rep.P99MicroS, rep.MaxMicroS)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
	if rep.NoiseRate < 0 || rep.NoiseRate > 1 {
		t.Fatalf("noise rate = %v", rep.NoiseRate)
	}
}

// TestRunEmpty pins the error path for a zero-request config.
func TestRunEmpty(t *testing.T) {
	m := smallModel(t)
	h := serve.NewServer(m, serve.ServerConfig{}).Handler()
	if _, err := Run(h, m, Config{Seed: 1, Clients: 2, RequestsPerClient: -1}); err == nil {
		t.Fatal("expected error for empty run")
	}
}
