// Package loadgen is a deterministic load generator for the prediction
// server: a seeded query stream replayed by concurrent clients against an
// http.Handler in-process (no sockets, so measured latency is handler
// latency), recording a latency histogram and throughput. It powers
// `rpbench serve` and doubles as the soak-test engine — the same seeded
// stream that benchmarks the server is what the race soak replays against
// the sequential oracle.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"time"

	"net/http"

	"rpdbscan/internal/obs"
	"rpdbscan/internal/serve"
)

// Config parameterizes one load run. Streams are derived purely from
// (Seed, client index), so a run is replayable regardless of scheduling.
type Config struct {
	// Seed drives every generated query.
	Seed int64
	// Clients is the number of concurrent client goroutines. Zero
	// defaults to 8.
	Clients int
	// RequestsPerClient is the stream length per client. Zero defaults
	// to 200.
	RequestsPerClient int
	// BatchEvery makes every k-th request of a stream a /predict/batch
	// (of BatchSize points); zero disables batches.
	BatchEvery int
	// BatchSize is the points per batch request. Zero defaults to 16.
	BatchSize int
	// InfoEvery makes every k-th request a /model/info; zero disables.
	InfoEvery int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.RequestsPerClient == 0 {
		c.RequestsPerClient = 200
	} else if c.RequestsPerClient < 0 {
		// Explicitly-negative means an empty stream (Run reports it as an
		// error); clamping here must survive a second withDefaults pass, so
		// keep the sentinel rather than zeroing it.
		c.RequestsPerClient = -1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	return c
}

// Request is one generated query: its endpoint path and JSON body (nil
// for GET endpoints).
type Request struct {
	Path string
	Body []byte
}

// Stream generates client i's deterministic request sequence for a model:
// query points drawn uniformly from the model's training bounding box
// inflated by eps (so streams mix in-cluster hits and noise misses), with
// batch and info requests interleaved per the config.
func Stream(m *serve.Model, cfg Config, client int) []Request {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(client)))
	lo, hi := bounds(m)
	point := func() []float64 {
		p := make([]float64, m.Dim())
		for j := range p {
			p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		return p
	}
	reqs := make([]Request, 0, max(cfg.RequestsPerClient, 0))
	for i := 0; i < cfg.RequestsPerClient; i++ {
		switch {
		case cfg.InfoEvery > 0 && i%cfg.InfoEvery == cfg.InfoEvery-1:
			reqs = append(reqs, Request{Path: "/model/info"})
		case cfg.BatchEvery > 0 && i%cfg.BatchEvery == cfg.BatchEvery-1:
			pts := make([][]float64, cfg.BatchSize)
			for k := range pts {
				pts[k] = point()
			}
			body, _ := json.Marshal(struct {
				Points [][]float64 `json:"points"`
			}{pts})
			reqs = append(reqs, Request{Path: "/predict/batch", Body: body})
		default:
			body, _ := json.Marshal(struct {
				Point []float64 `json:"point"`
			}{point()})
			reqs = append(reqs, Request{Path: "/predict", Body: body})
		}
	}
	return reqs
}

// bounds returns the training bounding box inflated by eps per side.
func bounds(m *serve.Model) (lo, hi []float64) {
	d := m.Dim()
	lo = make([]float64, d)
	hi = make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = 0, 1
	}
	if m.Len() == 0 {
		return lo, hi
	}
	copy(lo, m.TrainingPoint(0))
	copy(hi, m.TrainingPoint(0))
	for i := 1; i < m.Len(); i++ {
		p := m.TrainingPoint(i)
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	for j := 0; j < d; j++ {
		lo[j] -= m.Eps()
		hi[j] += m.Eps()
	}
	return lo, hi
}

// Do executes one request against h in-process and returns the recorded
// response.
func Do(h http.Handler, req Request) *httptest.ResponseRecorder {
	method := http.MethodGet
	var body *bytes.Reader
	if req.Body != nil {
		method = http.MethodPost
		body = bytes.NewReader(req.Body)
	} else {
		body = bytes.NewReader(nil)
	}
	r := httptest.NewRequest(method, req.Path, body)
	if req.Body != nil {
		r.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// Report is the outcome of one load run. The latency percentiles are
// sampled from the server-side obs.Histograms.ServeLatencyNs histogram —
// the delta between snapshots taken before and after the run — so they
// measure exactly what a live /metrics scrape of the same window would
// report (admitted requests only; 429 rejections return before the
// latency timer starts). Estimates are bucket upper bounds: within a
// factor of √2 of the true quantile.
type Report struct {
	Seed       int64   `json:"seed"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`         // 2xx responses
	Rejected   int     `json:"rejected"`   // 429 responses
	Errors     int     `json:"errors"`     // anything else
	ElapsedMS  float64 `json:"elapsed_ms"` // wall clock of the whole run
	Throughput float64 `json:"throughput"` // requests per second
	P50MicroS  float64 `json:"p50_us"`     // median handler latency
	P99MicroS  float64 `json:"p99_us"`     // tail handler latency
	P999MicroS float64 `json:"p999_us"`    // extreme-tail handler latency
	MaxMicroS  float64 `json:"max_us"`     // worst handler latency
	Points     int     `json:"points"`     // points classified (single + batch)
	NoiseRate  float64 `json:"noise_rate"` // fraction of classified points that were noise
}

// Run replays the seeded streams of all clients concurrently against h and
// aggregates the outcome. The generated streams depend only on (m, cfg);
// timing depends on the host.
func Run(h http.Handler, m *serve.Model, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	streams := make([][]Request, cfg.Clients)
	for c := range streams {
		streams[c] = Stream(m, cfg, c)
	}
	type outcome struct {
		requests int
		ok       int
		rejected int
		errors   int
		points   int
		noise    int
	}
	outcomes := make([]outcome, cfg.Clients)
	var wg sync.WaitGroup
	before := obs.Histograms.ServeLatencyNs.Snapshot()
	start := time.Now()
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := &outcomes[c]
			for _, req := range streams[c] {
				w := Do(h, req)
				o.requests++
				switch {
				case w.Code >= 200 && w.Code < 300:
					o.ok++
					np, nn := countPoints(req, w.Body.Bytes())
					o.points += np
					o.noise += nn
				case w.Code == http.StatusTooManyRequests:
					o.rejected++
				default:
					o.errors++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	window := obs.Histograms.ServeLatencyNs.Snapshot().Sub(before)

	rep := &Report{Seed: cfg.Seed, Clients: cfg.Clients}
	noise := 0
	for i := range outcomes {
		o := &outcomes[i]
		rep.Requests += o.requests
		rep.OK += o.ok
		rep.Rejected += o.rejected
		rep.Errors += o.errors
		rep.Points += o.points
		noise += o.noise
	}
	if rep.Requests == 0 {
		return nil, fmt.Errorf("loadgen: empty run")
	}
	if window.Count > 0 {
		rep.P50MicroS = float64(window.Quantile(0.50)) / 1e3
		rep.P99MicroS = float64(window.Quantile(0.99)) / 1e3
		rep.P999MicroS = float64(window.Quantile(0.999)) / 1e3
		rep.MaxMicroS = float64(window.Quantile(1)) / 1e3
	}
	rep.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	if rep.Points > 0 {
		rep.NoiseRate = float64(noise) / float64(rep.Points)
	}
	return rep, nil
}

// countPoints extracts how many points a successful response classified
// and how many of them were noise.
func countPoints(req Request, body []byte) (points, noise int) {
	switch req.Path {
	case "/predict":
		var pred struct {
			Noise bool `json:"noise"`
		}
		if json.Unmarshal(body, &pred) == nil {
			points = 1
			if pred.Noise {
				noise = 1
			}
		}
	case "/predict/batch":
		var rep struct {
			Predictions []json.RawMessage `json:"predictions"`
			NoiseCount  int               `json:"noise_count"`
		}
		if json.Unmarshal(body, &rep) == nil {
			points = len(rep.Predictions)
			noise = rep.NoiseCount
		}
	}
	return points, noise
}
