package serve_test

// The A/B serving tier: two registry-pinned generations split
// deterministically by request hash, proven from the client side — every
// reply's model_version re-predicted against the named artifact, and the
// split ratio matched exactly against the router, not statistically.

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"rpdbscan/internal/registry"
	"rpdbscan/internal/serve"
)

// abFixture publishes two distinct generations into a fresh registry and
// returns their snapshots (loaded back through registry blobs, exactly as
// rpserve -ab does) plus the registry.
func abFixture(t *testing.T) (*registry.Registry, *serve.Snapshot, *serve.Snapshot) {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })

	mkSnap := func(version int64, n int, parent uint64) *serve.Snapshot {
		var coords []float64
		for i := 0; i < n; i++ {
			coords = append(coords, ingestPoint(i)...)
		}
		art := offlineArtifact(t, coords, 2)
		m, err := serve.Decode(art)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Publish(art, registry.Record{
			Version: version, ModelHash: m.Checksum(), Parent: parent, Watermark: int64(n),
		}); err != nil {
			t.Fatal(err)
		}
		blob, err := reg.Blob(m.Checksum())
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := serve.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		return &serve.Snapshot{Model: loaded, Version: version, Watermark: int64(n)}
	}
	// Two genuinely different fits: different prefixes of the same stream.
	snapA := mkSnap(1, 60, 0)
	snapB := mkSnap(2, 120, snapA.Model.Checksum())
	if snapA.Model.Checksum() == snapB.Model.Checksum() {
		t.Fatal("fixture arms are identical; the split would be unobservable")
	}
	return reg, snapA, snapB
}

// TestABDifferential drives concurrent clients against an -ab split and
// proves, request by request: (1) the model_version in every reply is the
// one the deterministic request-hash router names for that exact body;
// (2) re-predicting the point against the named arm's registry artifact
// reproduces the reply bit for bit; (3) the observed split count equals
// the router's count over the request set — exact, not within tolerance.
func TestABDifferential(t *testing.T) {
	reg, snapA, snapB := abFixture(t)
	ab := &serve.ABConfig{A: snapA, B: snapB, SplitMilli: 300}
	h := serve.NewServer(nil, serve.ServerConfig{MaxInFlight: 64, AB: ab}).Handler()

	// Re-load both arms from the registry by hash: the oracle predicts
	// from the artifact bytes, not from the serving process's memory.
	oracle := map[int64]*serve.Model{}
	for _, s := range []*serve.Snapshot{snapA, snapB} {
		blob, err := reg.Blob(s.Model.Checksum())
		if err != nil {
			t.Fatal(err)
		}
		m, err := serve.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		oracle[s.Version] = m
	}

	type obsAB struct {
		point   []float64
		version int64
		pred    serve.Prediction
	}
	const clients, perClient = 8, 60
	observed := make([][]obsAB, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 13))
			for i := 0; i < perClient; i++ {
				p := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
				body, _ := json.Marshal(map[string]any{"point": p})
				code, reply := postJSON(h, "POST", "/predict", body)
				if code != http.StatusOK {
					t.Errorf("predict = %d %q", code, reply)
					return
				}
				var vp versionedPrediction
				if err := json.Unmarshal(reply, &vp); err != nil {
					t.Errorf("reply: %v", err)
					return
				}
				observed[c] = append(observed[c], obsAB{point: p, version: vp.ModelVersion, pred: vp.Prediction})
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var gotA, wantA, total int
	for c := range observed {
		if len(observed[c]) != perClient {
			t.Fatalf("client %d observed %d replies, want %d", c, len(observed[c]), perClient)
		}
		for _, o := range observed[c] {
			total++
			toA := ab.RouteSingle(o.point) // the server's exact router
			wantVersion := snapB.Version
			if toA {
				wantVersion = snapA.Version
				wantA++
			}
			if o.version != wantVersion {
				t.Fatalf("point %v routed to version %d, router names %d", o.point, o.version, wantVersion)
			}
			if o.version == snapA.Version {
				gotA++
			}
			// The named artifact must reproduce the reply exactly.
			want, err := oracle[o.version].Predict(o.point)
			if err != nil {
				t.Fatal(err)
			}
			if want != o.pred {
				t.Fatalf("version %d replied %+v for %v; its registry artifact predicts %+v",
					o.version, o.pred, o.point, want)
			}
		}
	}
	if gotA != wantA {
		t.Fatalf("observed %d/%d replies from arm A, router expects exactly %d", gotA, total, wantA)
	}
	if gotA == 0 || gotA == total {
		t.Fatalf("split 300/1000 sent %d/%d to A: fixture points never exercised both arms", gotA, total)
	}
	t.Logf("split: %d/%d to arm A (router-exact)", gotA, total)

	// Batch requests route as one unit and stamp the arm's version.
	pts := [][]float64{{0.9, 1.1}, {-1.0, -0.9}, {3.5, 3.5}}
	body, _ := json.Marshal(map[string]any{"points": pts})
	code, reply := postJSON(h, "POST", "/predict/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %q", code, reply)
	}
	var br struct {
		Predictions  []serve.Prediction `json:"predictions"`
		ModelVersion int64              `json:"model_version"`
	}
	if err := json.Unmarshal(reply, &br); err != nil {
		t.Fatal(err)
	}
	wantVersion := snapB.Version
	if ab.RouteBatch(pts) {
		wantVersion = snapA.Version
	}
	if br.ModelVersion != wantVersion {
		t.Fatalf("batch routed to version %d, router names %d", br.ModelVersion, wantVersion)
	}
	for i, p := range pts {
		want, err := oracle[br.ModelVersion].Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if br.Predictions[i] != want {
			t.Fatalf("batch point %d: got %+v, artifact predicts %+v", i, br.Predictions[i], want)
		}
	}

	// /model/info reports arm A: the pinned baseline.
	code, reply = postJSON(h, "GET", "/model/info", nil)
	if code != http.StatusOK {
		t.Fatalf("info = %d", code)
	}
	var vi serve.VersionInfo
	if err := json.Unmarshal(reply, &vi); err != nil {
		t.Fatal(err)
	}
	if vi.Version != snapA.Version {
		t.Fatalf("info reports version %d, want arm A (%d)", vi.Version, snapA.Version)
	}
}
