package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary model-artifact format, following the RPD2 wire conventions of
// internal/dict: a 4-byte magic that doubles as the format version, then a
// whole-payload FNV-1a checksum, then fixed-width big-endian fields.
// Header:
//
//	magic "RPM1" | checksum uint64 | dim uint16 | minPts uint32
//	numClusters uint32 | numPoints uint32 | eps float64 | rho float64
//
// Body: labels (numPoints x int32), core flags (bitset of
// ceil(numPoints/8) bytes), coordinates (numPoints x dim x float64).
//
// The checksum covers everything after the checksum field itself; Decode
// verifies it before parsing, so any single-byte corruption of a saved
// artifact is rejected at the load boundary (FNV-1a's per-byte XOR-then-
// multiply steps are bijective in the running hash, so a lone byte change
// always lands on a different sum). The encoding is canonical — a decoded
// model re-encodes to the identical bytes — which is what the
// save → load → save round-trip test pins.
const modelMagic = "RPM1"

// checksumStart is the offset where checksummed content begins (after the
// magic and the checksum field).
const checksumStart = 4 + 8

// modelHeaderLen is the full fixed header size.
const modelHeaderLen = checksumStart + 2 + 4 + 4 + 4 + 8 + 8

// fnv64a is the checksum over the artifact body (same function as the
// dictionary wire format's).
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return h
}

// Reseal recomputes and patches the artifact checksum in place, returning
// buf. Like dict.Reseal it exists so fuzzers can mutate encoded bytes and
// still reach the parser behind the checksum gate; production encoders
// never need it.
func Reseal(buf []byte) []byte {
	if len(buf) >= checksumStart && string(buf[:4]) == modelMagic {
		binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[checksumStart:]))
	}
	return buf
}

// Encode serialises the model into its canonical artifact bytes.
func (m *Model) Encode() []byte {
	n := len(m.labels)
	size := modelHeaderLen + 4*n + (n+7)/8 + 8*len(m.coords)
	buf := make([]byte, 0, size)
	buf = append(buf, modelMagic...)
	buf = binary.BigEndian.AppendUint64(buf, 0) // checksum, patched below
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.dim))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.minPts))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.numClusters))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.eps))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.rho))
	for _, l := range m.labels {
		buf = binary.BigEndian.AppendUint32(buf, uint32(l))
	}
	bits := make([]byte, (n+7)/8)
	for i, c := range m.core {
		if c {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	buf = append(buf, bits...)
	for _, v := range m.coords {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	binary.BigEndian.PutUint64(buf[4:], fnv64a(buf[checksumStart:]))
	return buf
}

// Save writes the artifact to w.
func (m *Model) Save(w io.Writer) error {
	_, err := w.Write(m.Encode())
	return err
}

// Decode reconstructs a model from its artifact bytes, verifying the
// checksum and every structural invariant before building the core-point
// index. Allocation is bounded by the actual payload size — the header's
// claimed point count is validated against len(buf) before anything is
// allocated, so corrupt input cannot balloon memory.
func Decode(buf []byte) (*Model, error) {
	if len(buf) < modelHeaderLen || string(buf[:4]) != modelMagic {
		return nil, fmt.Errorf("serve: bad model header")
	}
	if got := binary.BigEndian.Uint64(buf[4:]); got != fnv64a(buf[checksumStart:]) {
		return nil, fmt.Errorf("serve: model checksum mismatch")
	}
	off := checksumStart
	dim := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	minPts := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	numClusters := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	n := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	eps := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	rho := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	if dim < 1 || dim > 1024 {
		return nil, fmt.Errorf("serve: implausible model dimension %d", dim)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("serve: implausible minPts %d", minPts)
	}
	if !(eps > 0) || !(rho > 0) || math.IsInf(eps, 0) || math.IsInf(rho, 0) {
		return nil, fmt.Errorf("serve: implausible parameters eps=%g rho=%g", eps, rho)
	}
	if numClusters > n {
		return nil, fmt.Errorf("serve: %d clusters for %d points", numClusters, n)
	}
	// The body size is an exact function of (n, dim); require it before
	// allocating n-sized slices.
	need := 4*n + (n+7)/8 + 8*n*dim
	if len(buf)-off != need {
		return nil, fmt.Errorf("serve: model body is %d bytes, want %d for %d points of dim %d",
			len(buf)-off, need, n, dim)
	}
	m := &Model{
		dim:         dim,
		coords:      make([]float64, n*dim),
		labels:      make([]int32, n),
		core:        make([]bool, n),
		eps:         eps,
		rho:         rho,
		minPts:      minPts,
		numClusters: numClusters,
	}
	for i := 0; i < n; i++ {
		m.labels[i] = int32(binary.BigEndian.Uint32(buf[off:]))
		off += 4
		if m.labels[i] < Noise || int(m.labels[i]) >= numClusters {
			return nil, fmt.Errorf("serve: label %d of point %d outside [-1, %d)", m.labels[i], i, numClusters)
		}
	}
	bits := buf[off : off+(n+7)/8]
	off += (n + 7) / 8
	for i := 0; i < n; i++ {
		m.core[i] = bits[i/8]&(1<<(i%8)) != 0
		if m.core[i] && m.labels[i] == Noise {
			return nil, fmt.Errorf("serve: core point %d labeled noise", i)
		}
	}
	// Trailing bits of the final bitset byte must be zero — otherwise two
	// distinct byte streams would decode to the same model and break the
	// canonical round-trip.
	if n%8 != 0 && bits[len(bits)-1]>>(n%8) != 0 {
		return nil, fmt.Errorf("serve: nonzero padding in core bitset")
	}
	for i := range m.coords {
		v := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("serve: non-finite coordinate at index %d", i)
		}
		m.coords[i] = v
	}
	m.finish()
	return m, nil
}

// Load reads a whole artifact from r and decodes it.
func Load(r io.Reader) (*Model, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("serve: read model: %w", err)
	}
	return Decode(buf)
}
