package serve

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/testutil"
)

// blobPoints generates two gaussian blobs plus uniform noise — dense
// enough for cores, sparse enough for border and noise points.
func blobPoints(rng *rand.Rand, n, dim int) *geom.Points {
	pts := geom.NewPoints(dim, n)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		switch {
		case i%10 == 9: // noise
			for j := range row {
				row[j] = rng.Float64()*8 - 4
			}
		case i%2 == 0: // blob at -1
			for j := range row {
				row[j] = rng.NormFloat64()*0.15 - 1
			}
		default: // blob at +1
			for j := range row {
				row[j] = rng.NormFloat64()*0.15 + 1
			}
		}
		pts.Append(row)
	}
	return pts
}

// fit clusters pts with RP-DBSCAN and packages the result as a Model.
func fit(t testing.TB, pts *geom.Points, eps float64, minPts int) *Model {
	t.Helper()
	res, err := core.Run(pts, core.Config{Eps: eps, MinPts: minPts, Rho: 0.01, NumPartitions: 4, Seed: 1}, engine.New(4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(pts.Coords, pts.Dim, res.Labels, res.CorePoint, eps, minPts, 0.01, res.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testModel(t testing.TB) *Model {
	t.Helper()
	return fit(t, blobPoints(rand.New(rand.NewSource(7)), 300, 2), 0.3, 4)
}

// TestModelRoundTripByteIdentical pins the canonical-encoding contract:
// save -> load -> save reproduces the artifact byte for byte, and the
// loaded model answers identically.
func TestModelRoundTripByteIdentical(t *testing.T) {
	m := testModel(t)
	enc := m.Encode()
	m2, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := m2.Encode()
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip changed the artifact: %d bytes -> %d bytes", len(enc), len(enc2))
	}
	if m.Info() != m2.Info() {
		t.Fatalf("round trip changed Info:\n%+v\n%+v", m.Info(), m2.Info())
	}
	q := []float64{-1, -1}
	a, _ := m.Predict(q)
	b, _ := m2.Predict(q)
	if a != b {
		t.Fatalf("round trip changed Predict: %+v vs %+v", a, b)
	}
}

// TestModelChecksumRejectsEverySingleByteCorruption proves the acceptance
// criterion directly: flipping any single bit of any byte of a saved
// artifact is rejected by Decode.
func TestModelChecksumRejectsEverySingleByteCorruption(t *testing.T) {
	m := fit(t, blobPoints(rand.New(rand.NewSource(8)), 60, 2), 0.3, 4)
	enc := m.Encode()
	mut := make([]byte, len(enc))
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			copy(mut, enc)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("byte %d bit %d: corruption accepted", i, bit)
			}
		}
	}
}

// TestDecodeRejectsMalformed drives the structural validation behind the
// checksum gate: each mutation is resealed so the parser, not the
// checksum, must reject it.
func TestDecodeRejectsMalformed(t *testing.T) {
	// 81 points: not a multiple of 8, so the bitset-padding case is live.
	m := fit(t, blobPoints(rand.New(rand.NewSource(9)), 81, 2), 0.3, 4)
	valid := m.Encode()
	n := m.Len()
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"truncated header", func(b []byte) []byte { return b[:modelHeaderLen-3] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xEE) }},
		{"zero dim", func(b []byte) []byte { b[checksumStart] = 0; b[checksumStart+1] = 0; return b }},
		{"huge dim", func(b []byte) []byte { b[checksumStart] = 0xFF; b[checksumStart+1] = 0xFF; return b }},
		{"zero minPts", func(b []byte) []byte {
			for i := 0; i < 4; i++ {
				b[checksumStart+2+i] = 0
			}
			return b
		}},
		{"clusters > points", func(b []byte) []byte {
			b[checksumStart+6] = 0xFF // numClusters high byte
			return b
		}},
		{"negative eps", func(b []byte) []byte {
			b[checksumStart+14] |= 0x80 // sign bit of eps
			return b
		}},
		{"label out of range", func(b []byte) []byte {
			// First label field: set to numClusters+1 (in range int32).
			b[modelHeaderLen+3] = 0x7F
			b[modelHeaderLen] = 0
			return b
		}},
		{"bitset padding", func(b []byte) []byte {
			b[modelHeaderLen+4*n+(n+7)/8-1] |= 0x80
			return b
		}},
		{"non-finite coordinate", func(b []byte) []byte {
			off := modelHeaderLen + 4*n + (n+7)/8
			for i := 0; i < 8; i++ {
				b[off+i] = 0xFF // a quiet NaN
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), valid...))
			if _, err := Decode(Reseal(buf)); err == nil {
				t.Fatal("malformed artifact accepted")
			}
		})
	}
	// And the unmutated control must still decode.
	if _, err := Decode(append([]byte(nil), valid...)); err != nil {
		t.Fatalf("control artifact rejected: %v", err)
	}
}

// TestPredictTrainingProperty is the predict-semantics property of the
// issue: for every training point, a core point predicts its own fitted
// label, and any other point predicts a label consistent with the eps-ball
// rule — the label of some core point within eps, or noise when none is.
func TestPredictTrainingProperty(t *testing.T) {
	f := func(seed int64, n16 uint16, dimSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16%200) + 20
		dim := int(dimSel%3) + 1
		pts := blobPoints(rng, n, dim)
		m := fit(t, pts, 0.35, 4)
		for i := 0; i < n; i++ {
			p := pts.At(i)
			pred, err := m.Predict(p)
			if err != nil {
				t.Logf("Predict(%v): %v", p, err)
				return false
			}
			if m.TrainingCore(i) && pred.Label != m.TrainingLabel(i) {
				t.Logf("core point %d: predicted %d, fitted %d", i, pred.Label, m.TrainingLabel(i))
				return false
			}
			// eps-ball consistency against brute force over core points.
			ok := false
			if pred.Noise {
				ok = true
				for j := 0; j < n; j++ {
					if m.TrainingCore(j) && geom.Dist(p, pts.At(j)) <= m.Eps() {
						ok = false // a core was in reach; noise is wrong
						break
					}
				}
			} else {
				if pred.CoreIndex < 0 || !m.TrainingCore(pred.CoreIndex) {
					t.Logf("point %d: matched non-core index %d", i, pred.CoreIndex)
					return false
				}
				d := geom.Dist(p, pts.At(pred.CoreIndex))
				ok = d <= m.Eps() && pred.Label == m.TrainingLabel(pred.CoreIndex) &&
					math.Abs(d-pred.CoreDist) < 1e-12
			}
			if !ok {
				t.Logf("point %d: inconsistent prediction %+v", i, pred)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 209, 25)); err != nil {
		t.Fatal(err)
	}
}

// TestPredictEdgeCases covers the table-driven degenerate inputs.
func TestPredictEdgeCases(t *testing.T) {
	m := testModel(t)
	empty, err := New(nil, 2, nil, nil, 0.3, 4, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A model whose every point is noise has no cores to match.
	allNoise, err := New([]float64{0, 0, 5, 5}, 2, []int{-1, -1}, []bool{false, false}, 0.3, 4, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		m         *Model
		point     []float64
		wantErr   bool
		wantNoise bool
	}{
		{"dim mismatch short", m, []float64{1}, true, false},
		{"dim mismatch long", m, []float64{1, 2, 3}, true, false},
		{"nil point", m, nil, true, false},
		{"NaN coordinate", m, []float64{math.NaN(), 0}, true, false},
		{"Inf coordinate", m, []float64{0, math.Inf(1)}, true, false},
		{"far point is noise", m, []float64{99, 99}, false, true},
		{"empty model", empty, []float64{0, 0}, false, true},
		{"all-noise model", allNoise, []float64{0, 0}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pred, err := tc.m.Predict(tc.point)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if err == nil && pred.Noise != tc.wantNoise {
				t.Fatalf("pred = %+v, want noise %v", pred, tc.wantNoise)
			}
			if err == nil && pred.Noise && (pred.Label != Noise || pred.CoreIndex != -1) {
				t.Fatalf("noise prediction carries cluster fields: %+v", pred)
			}
		})
	}
	if _, err := empty.PredictBatch([][]float64{{0, 0}, {1}}); err == nil {
		t.Fatal("batch with mismatched point accepted")
	}
	// Empty-model round trip must survive encode/decode too.
	m2, err := Decode(empty.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 0 || m2.Dim() != 2 {
		t.Fatalf("empty model round trip: %+v", m2.Info())
	}
}

// TestNewRejectsInvalid pins constructor validation.
func TestNewRejectsInvalid(t *testing.T) {
	coords := []float64{0, 0, 1, 1}
	cases := []struct {
		name string
		f    func() (*Model, error)
	}{
		{"zero dim", func() (*Model, error) { return New(coords, 0, []int{0, 0}, []bool{true, true}, 0.3, 4, 0.01, 1) }},
		{"ragged coords", func() (*Model, error) { return New(coords[:3], 2, []int{0}, []bool{true}, 0.3, 4, 0.01, 1) }},
		{"label/core length", func() (*Model, error) { return New(coords, 2, []int{0}, []bool{true, true}, 0.3, 4, 0.01, 1) }},
		{"bad eps", func() (*Model, error) { return New(coords, 2, []int{0, 0}, []bool{true, true}, 0, 4, 0.01, 1) }},
		{"bad rho", func() (*Model, error) { return New(coords, 2, []int{0, 0}, []bool{true, true}, 0.3, 4, -1, 1) }},
		{"bad minPts", func() (*Model, error) { return New(coords, 2, []int{0, 0}, []bool{true, true}, 0.3, 0, 0.01, 1) }},
		{"label out of range", func() (*Model, error) { return New(coords, 2, []int{0, 7}, []bool{true, true}, 0.3, 4, 0.01, 1) }},
		{"core noise point", func() (*Model, error) { return New(coords, 2, []int{0, -1}, []bool{true, true}, 0.3, 4, 0.01, 1) }},
		{"non-finite coord", func() (*Model, error) {
			return New([]float64{0, math.Inf(1), 1, 1}, 2, []int{0, 0}, []bool{true, true}, 0.3, 4, 0.01, 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.f(); err == nil {
				t.Fatal("invalid model accepted")
			}
		})
	}
}

// TestPredictAllocFree pins the zero-allocation contract of the Predict
// hot path, inherited from the blocked kd-tree's iterative NearestInBall.
func TestPredictAllocFree(t *testing.T) {
	m := fit(t, blobPoints(rand.New(rand.NewSource(10)), 5000, 2), 0.2, 8)
	q := []float64{0.5, -0.5}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := m.Predict(q); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Predict allocates %v per call", n)
	}
}

func BenchmarkPredict(b *testing.B) {
	m := fit(b, blobPoints(rand.New(rand.NewSource(10)), 5000, 2), 0.2, 8)
	qs := make([][]float64, 256)
	rng := rand.New(rand.NewSource(11))
	for i := range qs {
		qs[i] = []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	m := fit(b, blobPoints(rand.New(rand.NewSource(12)), 5000, 2), 0.2, 8)
	rng := rand.New(rand.NewSource(13))
	batch := make([][]float64, 64)
	for i := range batch {
		batch[i] = []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(batch)))
}

// BenchmarkModelDecode tracks artifact load cost (checksum + parse + index
// build).
func BenchmarkModelDecode(b *testing.B) {
	m := fit(b, blobPoints(rand.New(rand.NewSource(14)), 5000, 2), 0.2, 8)
	enc := m.Encode()
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
