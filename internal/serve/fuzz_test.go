package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzModelDecode checks that Decode never panics, never over-allocates on
// hostile length fields, and never accepts an artifact that fails to
// round-trip byte-identically. The checksum gate would swallow nearly
// every mutation, so each input is also tried resealed (checksum patched
// to match the mutated body) to exercise the parser behind the gate —
// same convention as internal/dict's FuzzDecode.
func FuzzModelDecode(f *testing.F) {
	// A deliberately small model: Decode cost scales with the artifact, and
	// a lean seed keeps the instrumented exec rate high.
	valid := fit(f, blobPoints(rand.New(rand.NewSource(3)), 40, 2), 0.3, 4).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:modelHeaderLen])
	f.Add([]byte("RPM1"))
	f.Add([]byte("RPD2")) // dictionary magic: must be rejected, not parsed
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[checksumStart+2] ^= 0xff // dim field
	f.Add(mut)
	f.Add(Reseal(bytes.Clone(mut)))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, buf := range [][]byte{data, Reseal(bytes.Clone(data))} {
			m, err := Decode(buf)
			if err != nil {
				continue // rejected input is fine; panics are not
			}
			if enc := m.Encode(); !bytes.Equal(enc, buf) {
				t.Fatalf("accepted artifact is not canonical: %d bytes in, %d out", len(buf), len(enc))
			}
			// An accepted model must be servable: predicting the origin
			// must not panic (dimension is validated, coords are finite).
			if _, err := m.Predict(make([]float64, m.Dim())); err != nil {
				t.Fatalf("accepted model cannot predict: %v", err)
			}
		}
	})
}

// FuzzPredictRequest throws arbitrary bodies at the two POST endpoints:
// the handler must never panic and must always answer canonical,
// newline-terminated JSON with a status from the documented set.
func FuzzPredictRequest(f *testing.F) {
	h := NewServer(testModel(f), ServerConfig{MaxBodyBytes: 1 << 16, MaxBatch: 64}).Handler()
	f.Add("/predict", `{"point":[0.5,0.5]}`)
	f.Add("/predict", `{"point":[]}`)
	f.Add("/predict", `{"point":null}`)
	f.Add("/predict", `{"point":[1e309]}`)
	f.Add("/predict", `{"point":[NaN]}`)
	f.Add("/predict", `{"pt":[1,2]}`)
	f.Add("/predict", `{"point":[1,2]}{"point":[3,4]}`)
	f.Add("/predict/batch", `{"points":[[0.1,0.2],[3,4]]}`)
	f.Add("/predict/batch", `{"points":[[1]]}`)
	f.Add("/predict/batch", `{"points":[]}`)
	f.Add("/predict", ``)
	f.Add("/predict/batch", `[`)

	f.Fuzz(func(t *testing.T, path, body string) {
		if path != "/predict" && path != "/predict/batch" {
			path = "/predict"
		}
		r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("unexpected status %d for body %q", w.Code, body)
		}
		out := w.Body.Bytes()
		if !bytes.HasSuffix(out, []byte("\n")) {
			t.Fatalf("response not newline-terminated: %q", out)
		}
		if !json.Valid(out) {
			t.Fatalf("response is not valid JSON: %q", out)
		}
	})
}
