package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// FuzzModelDecode checks that Decode never panics, never over-allocates on
// hostile length fields, and never accepts an artifact that fails to
// round-trip byte-identically. The checksum gate would swallow nearly
// every mutation, so each input is also tried resealed (checksum patched
// to match the mutated body) to exercise the parser behind the gate —
// same convention as internal/dict's FuzzDecode.
func FuzzModelDecode(f *testing.F) {
	// A deliberately small model: Decode cost scales with the artifact, and
	// a lean seed keeps the instrumented exec rate high.
	valid := fit(f, blobPoints(rand.New(rand.NewSource(3)), 40, 2), 0.3, 4).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:modelHeaderLen])
	f.Add([]byte("RPM1"))
	f.Add([]byte("RPD2")) // dictionary magic: must be rejected, not parsed
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[checksumStart+2] ^= 0xff // dim field
	f.Add(mut)
	f.Add(Reseal(bytes.Clone(mut)))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, buf := range [][]byte{data, Reseal(bytes.Clone(data))} {
			m, err := Decode(buf)
			if err != nil {
				continue // rejected input is fine; panics are not
			}
			if enc := m.Encode(); !bytes.Equal(enc, buf) {
				t.Fatalf("accepted artifact is not canonical: %d bytes in, %d out", len(buf), len(enc))
			}
			// An accepted model must be servable: predicting the origin
			// must not panic (dimension is validated, coords are finite).
			if _, err := m.Predict(make([]float64, m.Dim())); err != nil {
				t.Fatalf("accepted model cannot predict: %v", err)
			}
		}
	})
}

// FuzzPredictRequest throws arbitrary bodies at the two POST endpoints:
// the handler must never panic and must always answer canonical,
// newline-terminated JSON with a status from the documented set.
func FuzzPredictRequest(f *testing.F) {
	h := NewServer(testModel(f), ServerConfig{MaxBodyBytes: 1 << 16, MaxBatch: 64}).Handler()
	f.Add("/predict", `{"point":[0.5,0.5]}`)
	f.Add("/predict", `{"point":[]}`)
	f.Add("/predict", `{"point":null}`)
	f.Add("/predict", `{"point":[1e309]}`)
	f.Add("/predict", `{"point":[NaN]}`)
	f.Add("/predict", `{"pt":[1,2]}`)
	f.Add("/predict", `{"point":[1,2]}{"point":[3,4]}`)
	f.Add("/predict/batch", `{"points":[[0.1,0.2],[3,4]]}`)
	f.Add("/predict/batch", `{"points":[[1]]}`)
	f.Add("/predict/batch", `{"points":[]}`)
	f.Add("/predict", ``)
	f.Add("/predict/batch", `[`)

	f.Fuzz(func(t *testing.T, path, body string) {
		if path != "/predict" && path != "/predict/batch" {
			path = "/predict"
		}
		r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("unexpected status %d for body %q", w.Code, body)
		}
		out := w.Body.Bytes()
		if !bytes.HasSuffix(out, []byte("\n")) {
			t.Fatalf("response not newline-terminated: %q", out)
		}
		if !json.Valid(out) {
			t.Fatalf("response is not valid JSON: %q", out)
		}
	})
}

// FuzzIngestRequest throws arbitrary bodies at the online /ingest
// endpoint: the handler must never panic, must answer canonical
// newline-terminated JSON with a documented status, and — the invariant
// the buffer depends on — must never let a rejected request change the
// ingested total. A high watermark keeps refits out of the loop, so every
// execution exercises validation, not clustering.
func FuzzIngestRequest(f *testing.F) {
	r, err := NewRefitter(RefitConfig{
		Watermark: 1 << 40, // never crossed: fuzzing validates ingest, not refit
		Eps:       0.3, MinPts: 4,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { r.Close() })
	h := NewServer(nil, ServerConfig{MaxBodyBytes: 1 << 16, MaxBatch: 64, Refitter: r}).Handler()

	f.Add(`{"point":[0.5,0.5]}`)
	f.Add(`{"points":[[1,2],[3,4]]}`)
	f.Add(`{"point":[1,2],"points":[[3,4]]}`)
	f.Add(`{"points":[]}`)
	f.Add(`{"points":[[1,2],[3]]}`)
	f.Add(`{"point":[1e309]}`)
	f.Add(`{"point":[NaN]}`)
	f.Add(`{"point":null}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`{"point":[1,2]}{"point":[3,4]}`)

	f.Fuzz(func(t *testing.T, body string) {
		before := r.Buffer().Total()
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(body)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("unexpected status %d for body %q", w.Code, body)
		}
		out := w.Body.Bytes()
		if !bytes.HasSuffix(out, []byte("\n")) {
			t.Fatalf("response not newline-terminated: %q", out)
		}
		if !json.Valid(out) {
			t.Fatalf("response is not valid JSON: %q", out)
		}
		if w.Code != http.StatusOK && r.Buffer().Total() != before {
			t.Fatalf("rejected request grew the buffer: %d -> %d points (body %q)",
				before, r.Buffer().Total(), body)
		}
	})
}

// FuzzLoadNewest drops hostile bytes into a model directory alongside one
// known-good versioned artifact: the loader must never panic, must never
// boot a corrupt artifact, and must fall back to the valid generation
// whenever the newer file fails its gates. An input that genuinely decodes
// is also planted under its true artifact name and must then win as the
// newer version.
func FuzzLoadNewest(f *testing.F) {
	validModel := fit(f, blobPoints(rand.New(rand.NewSource(3)), 40, 2), 0.3, 4)
	valid := validModel.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RPM1"))
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[checksumStart+2] ^= 0xff
	f.Add(mut)
	f.Add(Reseal(bytes.Clone(mut)))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		write := func(name string, buf []byte) {
			if err := os.WriteFile(filepath.Join(dir, name), buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write(artifactName(3, validModel.Checksum()), valid)
		// The hostile bytes claim version 7 with a checksum name they
		// almost certainly do not have...
		write("model-7-0123456789abcdef.rpm1", data)
		// ...and, when they do decode, are also planted under their true
		// name, which the loader has no grounds to reject.
		wantVersion := int64(3)
		if m, err := Decode(data); err == nil {
			write(artifactName(7, m.Checksum()), data)
			wantVersion = 7
		}
		// Undecodable junk that happens to match the claimed name is
		// possible only if Decode accepts it — covered above.

		m, v, err := LoadNewest(dir)
		if err != nil {
			t.Fatalf("LoadNewest errored instead of skipping: %v", err)
		}
		if m == nil {
			t.Fatal("LoadNewest found nothing despite a valid generation 3")
		}
		if v != wantVersion {
			t.Fatalf("booted version %d, want %d", v, wantVersion)
		}
		if v == 3 && m.Info().Checksum != validModel.Info().Checksum {
			t.Fatal("booted generation 3 with the wrong artifact")
		}
		// Whatever booted must be servable.
		if _, err := m.Predict(make([]float64, m.Dim())); err != nil {
			t.Fatalf("booted model cannot predict: %v", err)
		}
	})
}
