// Package transport is the multi-process backend behind engine.Transport:
// worker subprocesses (or in-process worker servers, for tests) serve the
// registered task handlers over local stdlib-HTTP sockets. The engine
// stays the scheduler — retry, backoff, speculation, and the fault ledger
// are untouched — while this package moves the bytes: blobs pushed once
// per worker with the engine's per-chunk checksums, task invocations
// framed with whole-body checksums, every transfer verified on receipt.
//
// The failure model is process-level chaos: the seeded injector may
// SIGKILL the worker about to serve an attempt (the transport respawns a
// replacement and re-syncs its blobs) or flip a byte on the wire (the
// receiver's checksum rejects the frame). Both surface to the engine as
// failed attempts, so the existing retry machinery recovers, and both are
// ledgered in the running stage's FaultStats for exact reconciliation
// against the injector's own tally.
package transport

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"rpdbscan/internal/engine"
)

const (
	// workerEnv marks a process as a transport worker; see MaybeWorker.
	workerEnv = "RPDBSCAN_TRANSPORT_WORKER"
	// handshakePrefix starts the single stdout line a worker subprocess
	// prints once it is listening.
	handshakePrefix = "RPDBSCAN_WORKER_ADDR "

	// hdrChunkSums carries the comma-separated hex FNV-1a checksums of a
	// pushed blob's engine.PayloadChunkSize chunks.
	hdrChunkSums = "X-Rpdbscan-Chunk-Sums"
	// hdrBodySum carries the hex FNV-1a checksum of a request or response
	// body on the invoke path.
	hdrBodySum = "X-Rpdbscan-Body-Sum"

	// maxBodyBytes bounds any single request body a worker accepts.
	maxBodyBytes = 1 << 31
)

// Server is the worker-side HTTP handler: a blob store plus the handler
// registry, shared by the subprocess worker main and the in-process
// spawner (which lets `go test -race -cover` execute worker code inside
// the test process).
type Server struct {
	state *engine.WorkerState
}

// NewServer returns a worker server with empty state.
func NewServer() *Server {
	return &Server{state: engine.NewWorkerState()}
}

// State exposes the worker's blob store (for tests).
func (s *Server) State() *engine.WorkerState { return s.state }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		fmt.Fprintln(w, "ok")
	case r.Method == http.MethodPost && r.URL.Path == "/blob":
		s.handleBlob(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/invoke":
		s.handleInvoke(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// handleBlob verifies a pushed blob chunk by chunk against the checksums
// the driver computed and, only if every chunk is intact, installs it. A
// mismatch answers 409 with the offending chunk index, which the driver
// ledgers as a checksum rejection and retries.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing blob name", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	sums, err := parseSums(r.Header.Get(hdrChunkSums))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if want := (len(body) + engine.PayloadChunkSize - 1) / engine.PayloadChunkSize; len(sums) != want {
		http.Error(w, fmt.Sprintf("blob has %d chunks, header lists %d", want, len(sums)),
			http.StatusBadRequest)
		return
	}
	for c := range sums {
		lo := c * engine.PayloadChunkSize
		hi := lo + engine.PayloadChunkSize
		if hi > len(body) {
			hi = len(body)
		}
		if engine.Checksum64(body[lo:hi]) != sums[c] {
			http.Error(w, fmt.Sprintf("chunk %d", c), http.StatusConflict)
			return
		}
	}
	s.state.SetBlob(name, body)
	w.WriteHeader(http.StatusNoContent)
}

// handleInvoke verifies the request body, runs the named registered
// handler against the worker state, and ships the checksummed output
// back. Corruption answers 409; an unknown handler 404; a handler error
// 500. Handler panics are left to net/http's per-request recovery — the
// driver sees a closed connection and retries on a respawned worker.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("handler")
	task, err := strconv.Atoi(r.URL.Query().Get("task"))
	if name == "" || err != nil {
		http.Error(w, "missing handler or task", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	want, err := strconv.ParseUint(r.Header.Get(hdrBodySum), 16, 64)
	if err != nil {
		http.Error(w, "bad "+hdrBodySum, http.StatusBadRequest)
		return
	}
	if engine.Checksum64(body) != want {
		http.Error(w, "request body", http.StatusConflict)
		return
	}
	h, ok := engine.Handler(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown handler %q (have %v)", name, engine.HandlerNames()),
			http.StatusNotFound)
		return
	}
	out, err := h(s.state, task, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(hdrBodySum, strconv.FormatUint(engine.Checksum64(out), 16))
	w.Write(out)
}

// parseSums decodes the comma-separated hex checksum list of hdrChunkSums.
// An empty header means zero chunks (an empty blob).
func parseSums(h string) ([]uint64, error) {
	if h == "" {
		return nil, nil
	}
	parts := strings.Split(h, ",")
	sums := make([]uint64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %d: %v", hdrChunkSums, i, err)
		}
		sums[i] = v
	}
	return sums, nil
}

// formatSums is the inverse of parseSums.
func formatSums(sums []uint64) string {
	parts := make([]string, len(sums))
	for i, s := range sums {
		parts[i] = strconv.FormatUint(s, 16)
	}
	return strings.Join(parts, ",")
}

// MaybeWorker turns the current process into a transport worker when the
// worker environment marker is set, and never returns in that case: it
// serves on a loopback socket, prints the handshake line, and exits when
// stdin closes (the parent holds the other end of the pipe, so worker
// lifetime is bounded by driver lifetime even if the driver dies without
// cleanup). Binaries that can act as workers — rpdbscan, the test
// binaries — call this first thing in main/TestMain; for everyone else it
// is a no-op. The hidden `rpdbscan -worker` flag sets the same marker for
// manual runs.
func MaybeWorker() {
	if os.Getenv(workerEnv) != "1" {
		return
	}
	RunWorker(os.Stdin, os.Stdout)
	os.Exit(0)
}

// RunWorker serves a worker on a fresh loopback socket, announcing the
// address on out and serving until in closes. Split from MaybeWorker so
// tests can drive the exact subprocess code path in-process.
func RunWorker(in io.Reader, out io.Writer) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "transport worker: listen: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: NewServer()}
	go srv.Serve(ln)
	fmt.Fprintf(out, "%s%s\n", handshakePrefix, ln.Addr().String())
	// Block until the driver closes our stdin (its end of the pipe), then
	// die: an orphaned worker must not outlive its driver.
	io.Copy(io.Discard, in)
	srv.Close()
}
