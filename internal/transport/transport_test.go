package transport_test

import (
	"fmt"
	"os"
	"reflect"
	"syscall"
	"testing"
	"time"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/transport"
)

// TestMain routes worker-marked child processes into worker mode: the
// subprocess tests re-execute this test binary, and core's handler
// registrations arrive through the import above.
func TestMain(m *testing.M) {
	transport.MaybeWorker()
	os.Exit(m.Run())
}

// procRun executes one clustering on the multi-process backend.
func procRun(t *testing.T, pts *geom.Points, cfg core.Config, workers int,
	opts transport.Options) (*core.Result, *engine.Cluster) {
	t.Helper()
	cl := engine.New(workers)
	tr, err := transport.NewProc(workers, opts)
	if err != nil {
		t.Fatalf("spawn %d workers: %v", workers, err)
	}
	t.Cleanup(func() { tr.Close() })
	tr.Bind(cl)
	cfg.Backend = core.BackendProc
	res, err := core.Run(pts, cfg, cl)
	if err != nil {
		t.Fatalf("proc run: %v", err)
	}
	return res, cl
}

// assertIdentical pins the full observable output of a proc run against
// its in-process reference: labels, core flags, merge-round edge counts,
// cluster count, and the dictionary facts, all exactly.
func assertIdentical(t *testing.T, ref, got *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(ref.Labels, got.Labels) {
		t.Errorf("labels diverged from the in-process run")
	}
	if !reflect.DeepEqual(ref.CorePoint, got.CorePoint) {
		t.Errorf("core flags diverged from the in-process run")
	}
	if !reflect.DeepEqual(ref.EdgesPerRound, got.EdgesPerRound) {
		t.Errorf("merge edges diverged: ref %v, got %v", ref.EdgesPerRound, got.EdgesPerRound)
	}
	if ref.NumClusters != got.NumClusters || ref.NumCells != got.NumCells ||
		ref.NumSubCells != got.NumSubCells || ref.DictBytes != got.DictBytes ||
		ref.DictSizeBits != got.DictSizeBits {
		t.Errorf("run facts diverged: ref {clusters=%d cells=%d subs=%d dict=%dB} got {clusters=%d cells=%d subs=%d dict=%dB}",
			ref.NumClusters, ref.NumCells, ref.NumSubCells, ref.DictBytes,
			got.NumClusters, got.NumCells, got.NumSubCells, got.DictBytes)
	}
}

// faultTotals sums the fault ledger over every stage of the report.
func faultTotals(cl *engine.Cluster) engine.FaultStats {
	var f engine.FaultStats
	for _, st := range cl.Report().Stages {
		f.Add(st.Faults)
	}
	return f
}

// TestTransportEquivalence is the differential battery of the PR: three
// seeds by {1, 2, 4} worker processes by chaos on/off, every combination
// byte-identical to the in-process simulator, and under chaos the engine's
// fault ledger must reconcile exactly against the injector's own tally —
// every injected failure, corrupted frame, and worker kill accounted, no
// phantom faults. Runs on the in-process spawner so `-race` and coverage
// observe the worker-side code; CI runs it with -race.
func TestTransportEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pts := datagen.Moons(600, 0.05, seed)
		cfg := core.Config{Eps: 0.1, MinPts: 10, Rho: 0.01, NumPartitions: 6, Seed: seed}
		ref, err := core.Run(pts, cfg, engine.New(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			for _, chaosOn := range []bool{false, true} {
				t.Run(fmt.Sprintf("seed=%d/workers=%d/chaos=%v", seed, workers, chaosOn), func(t *testing.T) {
					opts := transport.Options{Spawn: transport.InProcess()}
					var inj *chaos.Injector
					if chaosOn {
						var err error
						inj, err = chaos.New(chaos.Config{
							Seed: seed, FailProb: 0.08, CorruptProb: 0.08, KillProb: 0.08,
						})
						if err != nil {
							t.Fatal(err)
						}
						opts.Injector = inj
						opts.Killer = inj
					}
					cl := engine.New(workers)
					if inj != nil {
						cl.Injector = inj
					}
					tr, err := transport.NewProc(workers, opts)
					if err != nil {
						t.Fatal(err)
					}
					defer tr.Close()
					tr.Bind(cl)
					pcfg := cfg
					pcfg.Backend = core.BackendProc
					got, err := core.Run(pts, pcfg, cl)
					if err != nil {
						t.Fatal(err)
					}
					assertIdentical(t, ref, got)
					f := faultTotals(cl)
					if !chaosOn {
						if !f.IsZero() {
							t.Errorf("fault ledger not empty without chaos: %+v", f)
						}
						return
					}
					st := inj.Stats()
					if st.Failures != f.InjectedFailures {
						t.Errorf("injected failures: injector %d, ledger %d", st.Failures, f.InjectedFailures)
					}
					if st.Corruptions != f.ChecksumRejects {
						t.Errorf("corruptions: injector %d, ledger %d", st.Corruptions, f.ChecksumRejects)
					}
					if st.Kills != f.WorkerKills {
						t.Errorf("kills: injector %d, ledger %d", st.Kills, f.WorkerKills)
					}
				})
			}
		}
	}
}

// stageKiller fires exactly once: the first attempt of one task of one
// stage. It implements engine.WorkerKiller.
type stageKiller struct {
	stage string
	task  int
	fired int
}

func (k *stageKiller) KillWorker(stage string, task, attempt int) bool {
	if stage == k.stage && task == k.task && attempt == 0 {
		k.fired++
		return true
	}
	return false
}

// TestSubprocessKillMidPhase2 is the real-process chaos test: worker
// subprocesses (forked from this test binary), one of which is SIGKILLed
// by the injector at the moment it is about to serve Phase II task 0. The
// engine must retry onto a respawned worker, the output must stay
// byte-identical, and the kill must be ledgered on the Phase II stage.
func TestSubprocessKillMidPhase2(t *testing.T) {
	pts := datagen.Moons(400, 0.05, 1)
	cfg := core.Config{Eps: 0.1, MinPts: 10, Rho: 0.01, NumPartitions: 4, Seed: 1}
	ref, err := core.Run(pts, cfg, engine.New(2))
	if err != nil {
		t.Fatal(err)
	}
	killer := &stageKiller{stage: core.HandlerPhase2, task: 0}
	got, cl := procRun(t, pts, cfg, 2, transport.Options{Killer: killer})
	assertIdentical(t, ref, got)
	if killer.fired != 1 {
		t.Fatalf("killer fired %d times, want 1", killer.fired)
	}
	var onStage int64
	for _, st := range cl.Report().Stages {
		if st.Name == "cell-graph-construction" {
			onStage = st.Faults.WorkerKills
		}
	}
	if onStage != 1 {
		t.Fatalf("phase II stage ledgered %d worker kills, want 1", onStage)
	}
	if f := faultTotals(cl); f.WorkerKills != 1 {
		t.Fatalf("run ledgered %d worker kills total, want 1", f.WorkerKills)
	}
}

// TestExternalSigkillIsCollateral pins the fault-schedule policy: a worker
// killed from the outside (not by the injector) is scheduling noise, so
// the transport absorbs it — respawn, blob re-sync, internal redelivery —
// without consuming engine retry attempts and without charging a kill to
// the ledger. Output still byte-identical.
func TestExternalSigkillIsCollateral(t *testing.T) {
	pts := datagen.Moons(400, 0.05, 1)
	cfg := core.Config{Eps: 0.1, MinPts: 10, Rho: 0.01, NumPartitions: 4, Seed: 1}
	ref, err := core.Run(pts, cfg, engine.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the subprocess spawner to capture the first worker's pid, then
	// SIGKILL it from outside after Phase I-0 has pushed its blobs.
	var pids []int
	spawn := transport.Subprocess()
	capture := func(idx int) (transport.Endpoint, error) {
		ep, err := spawn(idx)
		if err != nil {
			return nil, err
		}
		if p, ok := ep.(interface{ Pid() int }); ok {
			pids = append(pids, p.Pid())
		}
		return ep, nil
	}
	cl := engine.New(2)
	tr, err := transport.NewProc(2, transport.Options{Spawn: capture})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Bind(cl)
	if len(pids) != 2 {
		t.Fatalf("captured %d worker pids, want 2", len(pids))
	}
	if err := syscall.Kill(pids[0], syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// Give the kernel a moment to tear the socket down.
	time.Sleep(50 * time.Millisecond)
	pcfg := cfg
	pcfg.Backend = core.BackendProc
	got, err := core.Run(pts, pcfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, ref, got)
	f := faultTotals(cl)
	if f.WorkerKills != 0 {
		t.Errorf("external SIGKILL was charged as %d injected kills, want 0", f.WorkerKills)
	}
	if len(pids) <= 2 {
		t.Errorf("no replacement worker was spawned after the external kill")
	}
}

// stageCorrupter corrupts the first frame of one named stage's task 0,
// attempt 0, and nothing else. It implements engine.Injector.
type stageCorrupter struct {
	stage string
	sub   int // 0 = request frame, 1 = response frame
	fired int
}

func (c *stageCorrupter) FailTask(string, int, int) bool      { return false }
func (c *stageCorrupter) TaskDelay(string, int) time.Duration { return 0 }
func (c *stageCorrupter) CorruptFetch(stage string, task, attempt, chunk int) bool {
	if stage == c.stage && task == 0 && attempt == 0 && chunk == c.sub {
		c.fired++
		return true
	}
	return false
}

// TestWireCorruptionPerStage flips one frame on the wire in every remote
// stage of the pipeline, one run per (stage, direction): the receiver's
// checksum must reject it, the rejection must land on exactly that stage's
// ledger, and the clustering must come out byte-identical anyway.
func TestWireCorruptionPerStage(t *testing.T) {
	pts := datagen.Moons(400, 0.05, 1)
	cfg := core.Config{Eps: 0.1, MinPts: 10, Rho: 0.01, NumPartitions: 4, Seed: 1}
	ref, err := core.Run(pts, cfg, engine.New(2))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		stage string
		sub   int
	}{
		{"config-push", 0},             // conf blob, chunk 0
		{"points-push", 0},             // input blob, chunk 0
		{"cell-assignment", 1},         // RPS1 frames, response side (its request is empty: points are a blob)
		{"cell-partitioning", 0},       // shuffle column in
		{"cell-partitioning", 1},       // merged frame out
		{"dictionary-build", 1},        // RPD2 entry shard back
		{"dictionary-push", 0},         // RPD2 broadcast blob
		{"dictionary-load", 1},         // load ack
		{"cell-graph-construction", 0}, // Phase II input
		{"cell-graph-construction", 1}, // Phase II result (RPG1 inside)
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/sub=%d", tc.stage, tc.sub), func(t *testing.T) {
			inj := &stageCorrupter{stage: tc.stage, sub: tc.sub}
			got, cl := procRun(t, pts, cfg, 2, transport.Options{
				Spawn: transport.InProcess(), Injector: inj,
			})
			assertIdentical(t, ref, got)
			if inj.fired != 1 {
				t.Fatalf("corruption site fired %d times, want 1", inj.fired)
			}
			var onStage, total int64
			for _, st := range cl.Report().Stages {
				total += st.Faults.ChecksumRejects
				if st.Name == tc.stage {
					onStage = st.Faults.ChecksumRejects
				}
			}
			if onStage != 1 || total != 1 {
				t.Fatalf("checksum rejects: %d on stage %q, %d total, want 1/1", onStage, tc.stage, total)
			}
		})
	}
}

// TestRaceStressRetryState is the -race stress companion to the PR-3
// error-capture race class: heavy chaos on few workers, so retries,
// speculation, kills, respawns, and blob re-syncs all interleave across
// concurrently running tasks. Any state shared between the engine's retry
// paths and the transport's respawn machinery that lacks synchronization
// shows up here under -race.
func TestRaceStressRetryState(t *testing.T) {
	for _, seed := range []int64{7, 11, 13} {
		pts := datagen.Moons(500, 0.05, seed)
		cfg := core.Config{Eps: 0.1, MinPts: 10, Rho: 0.01, NumPartitions: 12, Seed: seed}
		ref, err := core.Run(pts, cfg, engine.New(4))
		if err != nil {
			t.Fatal(err)
		}
		inj, err := chaos.New(chaos.Config{
			Seed: seed, FailProb: 0.2, CorruptProb: 0.2, KillProb: 0.15, StragglerProb: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl := engine.New(4)
		cl.Injector = inj
		tr, err := transport.NewProc(2, transport.Options{
			Spawn: transport.InProcess(), Injector: inj, Killer: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr.Bind(cl)
		pcfg := cfg
		pcfg.Backend = core.BackendProc
		got, err := core.Run(pts, pcfg, cl)
		tr.Close()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertIdentical(t, ref, got)
		f := faultTotals(cl)
		st := inj.Stats()
		if st.Failures != f.InjectedFailures || st.Corruptions != f.ChecksumRejects || st.Kills != f.WorkerKills {
			t.Fatalf("seed %d: ledger does not reconcile: injector {fail=%d corrupt=%d kill=%d} ledger {fail=%d corrupt=%d kill=%d}",
				seed, st.Failures, st.Corruptions, st.Kills,
				f.InjectedFailures, f.ChecksumRejects, f.WorkerKills)
		}
	}
}

// TestMakespanReconciliation pins the measured-vs-simulated contract on
// the proc backend: every stage's simulated makespan (greedy packing of
// the recorded task costs) is bounded by the stage's cost sum, and the
// run-level measured wall stays within the harness divergence bound of the
// simulated total — the same invariant BENCH_transport.json records.
func TestMakespanReconciliation(t *testing.T) {
	pts := datagen.Moons(600, 0.05, 1)
	cfg := core.Config{Eps: 0.1, MinPts: 10, Rho: 0.01, NumPartitions: 4, Seed: 1}
	_, cl := procRun(t, pts, cfg, 2, transport.Options{Spawn: transport.InProcess()})
	rep := cl.Report()
	var measured, simulated time.Duration
	for _, st := range rep.Stages {
		mk := st.Makespan(rep.Workers)
		if sum := st.Total(); mk > sum {
			t.Errorf("stage %s: makespan %v exceeds cost sum %v", st.Name, mk, sum)
		}
		var max time.Duration
		for _, c := range st.Costs {
			if c > max {
				max = c
			}
		}
		if mk < max {
			t.Errorf("stage %s: makespan %v below longest task %v", st.Name, mk, max)
		}
		measured += st.Wall
		simulated += st.Makespan(rep.Workers)
	}
	// The same generous bound the rpbench transport experiment states:
	// task costs on this backend include their real wire roundtrips, so
	// wall and makespan must track each other up to scheduling overhead.
	if measured > time.Duration(25*float64(simulated))+250*time.Millisecond {
		t.Errorf("measured wall %v diverged above simulated makespan %v beyond the stated bound", measured, simulated)
	}
	if float64(measured) < float64(simulated)/25 {
		t.Errorf("measured wall %v diverged below simulated makespan %v beyond the stated bound", measured, simulated)
	}
}
