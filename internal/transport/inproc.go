package transport

import (
	"net"
	"net/http"
)

// InProcess returns a spawner whose workers are real HTTP servers on
// loopback sockets inside the current process — the same Server, routes,
// and checksum verification as a subprocess worker, minus the fork. Kill
// abruptly closes the server (in-flight requests see broken connections,
// like a SIGKILL would produce), so the respawn and re-sync paths are
// exercised for real. Tests use it so `go test -race -cover` observes the
// worker-side code, which a forked subprocess would hide.
func InProcess() SpawnFunc {
	return func(idx int) (Endpoint, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: NewServer()}
		go srv.Serve(ln)
		return &inprocWorker{srv: srv, url: "http://" + ln.Addr().String()}, nil
	}
}

type inprocWorker struct {
	srv *http.Server
	url string
}

func (w *inprocWorker) URL() string { return w.url }

// Kill drops the listener and every live connection at once.
func (w *inprocWorker) Kill() error { return w.srv.Close() }

func (w *inprocWorker) Close() error { return w.srv.Close() }
