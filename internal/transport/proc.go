package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"rpdbscan/internal/engine"
)

// Endpoint is one live worker process as the transport sees it: an HTTP
// base URL plus the two ways it can die.
type Endpoint interface {
	// URL is the worker's base URL (http://127.0.0.1:port).
	URL() string
	// Kill terminates the worker abruptly — SIGKILL for a subprocess —
	// simulating a machine failure. In-flight requests error.
	Kill() error
	// Close tears the worker down gracefully at end of run.
	Close() error
}

// SpawnFunc brings up worker idx and returns its endpoint. The transport
// calls it at construction and again for every replacement after a kill.
type SpawnFunc func(idx int) (Endpoint, error)

// Options configures a Proc transport.
type Options struct {
	// Spawn brings workers up; nil defaults to Subprocess(), re-executing
	// the current binary in worker mode.
	Spawn SpawnFunc
	// Injector, when set, decides wire corruption: per invocation, the
	// engine Injector's CorruptFetch is consulted for the request frame
	// (chunk 0) then — only if the request stays clean — the response
	// frame (chunk 1); per blob push, one chunk at most is corrupted (the
	// first whose site fires). Lazy consultation keeps the injector's
	// corruption tally exactly equal to the engine's rejection ledger.
	Injector engine.Injector
	// Killer, when set, decides process-level kills before each task
	// invocation. A chaos.Injector with KillProb set implements it; nil
	// (or an Injector that never fires) disables kills.
	Killer engine.WorkerKiller
	// Client overrides the HTTP client (tests); nil uses a default with a
	// 60s timeout.
	Client *http.Client
}

// worker is one slot of the transport's worker pool. Slots are respawned
// in place after kills; blob sync state travels with the slot.
type worker struct {
	mu     sync.Mutex
	ep     Endpoint
	alive  bool
	gen    int             // incremented per respawn
	synced map[string]bool // blobs this incarnation has verified
}

// Proc is the multi-process engine.Transport. It is safe for concurrent
// use: stage tasks invoke in parallel, and a kill under one task's feet
// only costs other in-flight tasks a transparent internal redelivery.
type Proc struct {
	cl      *engine.Cluster
	opts    Options
	client  *http.Client
	workers []*worker

	blobMu sync.Mutex
	blobs  map[string]*engine.Payload // every blob pushed so far, for respawn re-sync
	order  []string
}

// NewProc spawns n workers and returns the transport. On error, already
// spawned workers are torn down.
func NewProc(n int, opts Options) (*Proc, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least 1 worker, got %d", n)
	}
	spawn := opts.Spawn
	if spawn == nil {
		spawn = Subprocess()
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	p := &Proc{opts: opts, client: client, blobs: make(map[string]*engine.Payload)}
	p.opts.Spawn = spawn
	for i := 0; i < n; i++ {
		ep, err := spawn(i)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("transport: spawn worker %d: %w", i, err)
		}
		p.workers = append(p.workers, &worker{ep: ep, alive: true, synced: make(map[string]bool)})
	}
	return p, nil
}

// Bind attaches the transport to the cluster whose stages it will serve:
// the cluster gets its Transport, the transport gets the fault ledger.
func (p *Proc) Bind(cl *engine.Cluster) {
	p.cl = cl
	cl.Transport = p
}

// Workers implements engine.Transport.
func (p *Proc) Workers() int { return len(p.workers) }

// Close implements engine.Transport: graceful teardown of every worker.
func (p *Proc) Close() error {
	var first error
	for _, w := range p.workers {
		w.mu.Lock()
		if w.ep != nil {
			if err := w.ep.Close(); err != nil && first == nil {
				first = err
			}
			w.ep = nil
			w.alive = false
		}
		w.mu.Unlock()
	}
	return first
}

// route maps a task to its worker slot. Any fixed mapping works — results
// are deterministic regardless of placement — so tasks simply stripe.
func (p *Proc) route(task int) int { return task % len(p.workers) }

// PushBlob implements engine.Transport: ship the payload to worker w with
// the engine's per-chunk checksums, corrupting at most one chunk when the
// injector says so. A worker-side rejection is ledgered and returned as an
// error for the engine to retry.
func (p *Proc) PushBlob(stage string, w, attempt int, name string, pl *engine.Payload) error {
	p.blobMu.Lock()
	if _, ok := p.blobs[name]; !ok {
		p.order = append(p.order, name)
	}
	p.blobs[name] = pl
	p.blobMu.Unlock()

	body := pl.Bytes()
	sums := make([]uint64, pl.NumChunks())
	for i := range sums {
		sums[i] = pl.ChunkSum(i)
	}
	// Corrupt at most one chunk per attempt (lazy scan: the first site
	// that fires wins), so the injector's corruption count matches the
	// rejection ledger one to one.
	if inj := p.opts.Injector; inj != nil {
		for c := 0; c < pl.NumChunks(); c++ {
			if inj.CorruptFetch(stage, w, attempt, c) {
				body = append([]byte(nil), body...)
				body[c*engine.PayloadChunkSize] ^= 0x80
				break
			}
		}
	}
	slot := p.workers[w]
	status, respBody, _, err := p.deliver(slot, stage, "/blob?name="+name, body, map[string]string{
		hdrChunkSums: formatSums(sums),
	})
	if err != nil {
		return err
	}
	switch status {
	case http.StatusNoContent:
		slot.mu.Lock()
		slot.synced[name] = true
		slot.mu.Unlock()
		return nil
	case http.StatusConflict:
		chunk, _ := strconv.Atoi(string(bytes.TrimSpace(bytes.TrimPrefix(respBody, []byte("chunk")))))
		p.cl.ChargeChecksumReject(stage, w, attempt, chunk, int64(len(body)))
		return fmt.Errorf("worker %d rejected blob %q chunk %d", w, name, chunk)
	default:
		return fmt.Errorf("worker %d blob push: status %d: %s", w, status, bytes.TrimSpace(respBody))
	}
}

// Invoke implements engine.Transport: run the named handler for one task
// attempt on the task's worker. Order of chaos consultation per site:
// first the killer (a fired kill SIGKILLs the serving worker, is
// ledgered, and fails the attempt before any bytes move), then request
// corruption, then — only for clean requests — response corruption.
func (p *Proc) Invoke(stage, handler string, task, attempt int, input []byte) ([]byte, error) {
	w := p.route(task)
	slot := p.workers[w]
	if k := p.opts.Killer; k != nil && k.KillWorker(stage, task, attempt) {
		p.kill(slot, stage, task, w)
		return nil, fmt.Errorf("worker %d killed serving stage %q task %d attempt %d",
			w, stage, task, attempt)
	}
	reqCorrupt, respCorrupt := false, false
	if inj := p.opts.Injector; inj != nil {
		reqCorrupt = len(input) > 0 && inj.CorruptFetch(stage, task, attempt, 0)
		if !reqCorrupt {
			respCorrupt = inj.CorruptFetch(stage, task, attempt, 1)
		}
	}
	body := input
	sum := engine.Checksum64(input)
	if reqCorrupt {
		body = append([]byte(nil), input...)
		body[0] ^= 0x80 // one flipped bit on the wire; the checksum header still promises the original
	}
	url := fmt.Sprintf("/invoke?handler=%s&task=%d", handler, task)
	status, respBody, respSum, err := p.deliver(slot, stage, url, body, map[string]string{
		hdrBodySum: strconv.FormatUint(sum, 16),
	})
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
	case http.StatusConflict:
		p.cl.ChargeChecksumReject(stage, task, attempt, 0, int64(len(body)))
		return nil, fmt.Errorf("worker %d rejected stage %q task %d request frame", w, stage, task)
	default:
		return nil, fmt.Errorf("worker %d stage %q task %d: status %d: %s",
			w, stage, task, status, bytes.TrimSpace(respBody))
	}
	// Verify the response frame. A malformed response — missing or
	// unparseable checksum header, or a body that does not match it — is
	// never trusted: it is ledgered like a corrupt frame and the attempt
	// fails, so the engine retries.
	want, err := strconv.ParseUint(respSum, 16, 64)
	if respCorrupt {
		if len(respBody) > 0 {
			respBody[0] ^= 0x80 // flipped on the wire coming back
		} else {
			want ^= 1 // nothing to flip; fail verification so injector tally and ledger stay 1:1
		}
	}
	if err != nil || engine.Checksum64(respBody) != want {
		p.cl.ChargeChecksumReject(stage, task, attempt, 1, int64(len(respBody)))
		return nil, fmt.Errorf("worker %d stage %q task %d: response frame failed verification", w, stage, task)
	}
	p.cl.ChargeWorkerTask(task, w)
	return respBody, nil
}

// kill terminates the slot's current incarnation and ledgers it.
func (p *Proc) kill(slot *worker, stage string, task, w int) {
	slot.mu.Lock()
	if slot.alive && slot.ep != nil {
		slot.ep.Kill()
		slot.alive = false
	}
	slot.mu.Unlock()
	p.cl.ChargeWorkerKill(stage, task, w)
}

// deliver posts one frame to the slot's worker, transparently respawning
// and redelivering on connection-level failures (a worker killed under
// another task's feet, a crashed subprocess): those are scheduling noise,
// not part of the deterministic fault schedule, so they must not consume
// the calling task's retry budget. Definitive HTTP responses (any status)
// end delivery. Returns status, body, and the response checksum header.
func (p *Proc) deliver(slot *worker, stage, path string, body []byte, headers map[string]string) (int, []byte, string, error) {
	const maxTries = 4
	var lastErr error
	for try := 0; try < maxTries; try++ {
		base, err := p.ensureAlive(slot, stage)
		if err != nil {
			// A failed respawn or re-sync usually means the incarnation we
			// believed alive is not (an external kill the transport has not
			// observed yet): mark it dead so the next try respawns.
			slot.mu.Lock()
			slot.alive = false
			slot.mu.Unlock()
			lastErr = err
			continue
		}
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return 0, nil, "", err
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := p.client.Do(req)
		if err != nil {
			// Connection-level failure: mark the incarnation dead and
			// redeliver on a fresh one.
			slot.mu.Lock()
			slot.alive = false
			slot.mu.Unlock()
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if err != nil {
			slot.mu.Lock()
			slot.alive = false
			slot.mu.Unlock()
			lastErr = err
			continue
		}
		return resp.StatusCode, respBody, resp.Header.Get(hdrBodySum), nil
	}
	return 0, nil, "", fmt.Errorf("transport: delivery failed after %d tries: %w", maxTries, lastErr)
}

// ensureAlive returns the slot's base URL, respawning a replacement
// incarnation first if the current one is dead. A fresh incarnation gets
// every previously pushed blob re-synced (verified, chaos-free — recovery
// traffic is not part of the fault schedule) before any task reaches it.
func (p *Proc) ensureAlive(slot *worker, stage string) (string, error) {
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if !slot.alive {
		idx := p.slotIndex(slot)
		if slot.ep != nil {
			slot.ep.Close() // reap the dead incarnation
		}
		ep, err := p.opts.Spawn(idx)
		if err != nil {
			return "", fmt.Errorf("transport: respawn worker %d: %w", idx, err)
		}
		slot.ep = ep
		slot.alive = true
		slot.gen++
		slot.synced = make(map[string]bool)
		p.cl.ChargeWorkerRespawn(stage, idx)
	}
	// Re-sync any blob this incarnation is missing.
	p.blobMu.Lock()
	missing := make([]string, 0)
	for _, name := range p.order {
		if !slot.synced[name] {
			missing = append(missing, name)
		}
	}
	p.blobMu.Unlock()
	for _, name := range missing {
		p.blobMu.Lock()
		pl := p.blobs[name]
		p.blobMu.Unlock()
		if err := p.syncBlob(slot.ep.URL(), pl, name); err != nil {
			return "", fmt.Errorf("transport: re-sync blob %q: %w", name, err)
		}
		slot.synced[name] = true
	}
	return slot.ep.URL(), nil
}

// syncBlob pushes one blob to a fresh incarnation, verified but outside
// the chaos schedule.
func (p *Proc) syncBlob(base string, pl *engine.Payload, name string) error {
	sums := make([]uint64, pl.NumChunks())
	for i := range sums {
		sums[i] = pl.ChunkSum(i)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/blob?name="+name, bytes.NewReader(pl.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set(hdrChunkSums, formatSums(sums))
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// slotIndex recovers a slot's worker index.
func (p *Proc) slotIndex(slot *worker) int {
	for i, w := range p.workers {
		if w == slot {
			return i
		}
	}
	return -1
}

// Subprocess returns the default spawner: re-execute the current binary
// with the worker environment marker set. The child announces its address
// on stdout and lives until the parent closes its stdin pipe, so workers
// never outlive the driver. Any binary whose main (or TestMain) calls
// MaybeWorker can serve.
func Subprocess() SpawnFunc {
	return func(idx int) (Endpoint, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerEnv+"=1")
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(stdout)
		var addr string
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := cutPrefix(line, handshakePrefix); ok {
				addr = rest
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("worker %d: no handshake on stdout (is MaybeWorker called in main?)", idx)
		}
		// Drain any later stdout so the child never blocks on a full pipe.
		go io.Copy(io.Discard, stdout)
		sp := &subprocessWorker{cmd: cmd, stdin: stdin, url: "http://" + addr,
			reaped: make(chan struct{})}
		go func() { cmd.Wait(); close(sp.reaped) }()
		return sp, nil
	}
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// subprocessWorker is a worker running as a child process.
type subprocessWorker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	url    string
	reaped chan struct{}
	once   sync.Once
}

func (s *subprocessWorker) URL() string { return s.url }

// Pid exposes the child's process id so tests can SIGKILL it externally.
func (s *subprocessWorker) Pid() int { return s.cmd.Process.Pid }

// Kill SIGKILLs the child.
func (s *subprocessWorker) Kill() error {
	err := s.cmd.Process.Kill()
	s.awaitExit()
	return err
}

// Close asks the child to exit by closing its stdin, then waits for it.
func (s *subprocessWorker) Close() error {
	s.stdin.Close()
	s.awaitExit()
	return nil
}

func (s *subprocessWorker) awaitExit() {
	select {
	case <-s.reaped:
	case <-time.After(10 * time.Second):
		s.cmd.Process.Kill()
		<-s.reaped
	}
}
