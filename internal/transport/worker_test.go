package transport_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/transport"
)

func init() {
	engine.RegisterHandler("test-echo", func(ws *engine.WorkerState, task int, input []byte) ([]byte, error) {
		return input, nil
	})
	engine.RegisterHandler("test-fail", func(ws *engine.WorkerState, task int, input []byte) ([]byte, error) {
		return nil, fmt.Errorf("boom %d", task)
	})
}

// postInvoke drives the worker server directly.
func postInvoke(srv http.Handler, handler string, task int, body []byte, sum string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost,
		fmt.Sprintf("/invoke?handler=%s&task=%d", handler, task), bytes.NewReader(body))
	if sum != "" {
		req.Header.Set("X-Rpdbscan-Body-Sum", sum)
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	return rr
}

func sumOf(b []byte) string { return strconv.FormatUint(engine.Checksum64(b), 16) }

// TestWorkerServerRoutes pins the worker-side HTTP contract: healthz,
// verified blob install, per-chunk 409 rejection, request-body 409, 404
// for unknown handlers, 500 for handler errors, and the checksummed echo
// of a good invocation.
func TestWorkerServerRoutes(t *testing.T) {
	srv := transport.NewServer()

	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d", rr.Code)
	}

	// Good blob push installs; the state must hold the exact bytes.
	blob := bytes.Repeat([]byte("x"), 100)
	req := httptest.NewRequest(http.MethodPost, "/blob?name=b1", bytes.NewReader(blob))
	req.Header.Set("X-Rpdbscan-Chunk-Sums", sumOf(blob))
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusNoContent {
		t.Fatalf("blob push: %d %s", rr.Code, rr.Body.String())
	}
	if got, ok := srv.State().Blob("b1"); !ok || !bytes.Equal(got, blob) {
		t.Fatalf("blob not installed verbatim")
	}

	// A corrupted blob must be rejected with the chunk index and NOT
	// installed.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0x80
	req = httptest.NewRequest(http.MethodPost, "/blob?name=b2", bytes.NewReader(bad))
	req.Header.Set("X-Rpdbscan-Chunk-Sums", sumOf(blob))
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusConflict || strings.TrimSpace(rr.Body.String()) != "chunk 0" {
		t.Fatalf("corrupt blob: %d %q, want 409 \"chunk 0\"", rr.Code, rr.Body.String())
	}
	if _, ok := srv.State().Blob("b2"); ok {
		t.Fatalf("corrupt blob was installed")
	}

	// Header/chunk-count mismatch and missing name are 400s.
	req = httptest.NewRequest(http.MethodPost, "/blob?name=b3", bytes.NewReader(blob))
	req.Header.Set("X-Rpdbscan-Chunk-Sums", sumOf(blob)+","+sumOf(blob))
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("chunk-count mismatch: %d", rr.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/blob", bytes.NewReader(blob))
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("missing name: %d", rr.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/blob?name=b4", bytes.NewReader(blob))
	req.Header.Set("X-Rpdbscan-Chunk-Sums", "nothex")
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("garbage sums header: %d", rr.Code)
	}

	// Invoke: happy path echoes with a matching response checksum.
	in := []byte("payload")
	rr = postInvoke(srv, "test-echo", 3, in, sumOf(in))
	if rr.Code != 200 || !bytes.Equal(rr.Body.Bytes(), in) {
		t.Fatalf("echo invoke: %d %q", rr.Code, rr.Body.Bytes())
	}
	if got := rr.Header().Get("X-Rpdbscan-Body-Sum"); got != sumOf(in) {
		t.Fatalf("response sum header %q, want %q", got, sumOf(in))
	}

	// Corrupted request body: 409 "request body".
	rr = postInvoke(srv, "test-echo", 3, []byte("tampered"), sumOf(in))
	if rr.Code != http.StatusConflict || strings.TrimSpace(rr.Body.String()) != "request body" {
		t.Fatalf("corrupt invoke: %d %q", rr.Code, rr.Body.String())
	}
	// Missing/garbage sum header: 400.
	if rr = postInvoke(srv, "test-echo", 3, in, ""); rr.Code != http.StatusBadRequest {
		t.Fatalf("missing sum header: %d", rr.Code)
	}
	// Unknown handler: 404 listing what exists.
	rr = postInvoke(srv, "no-such", 0, in, sumOf(in))
	if rr.Code != http.StatusNotFound || !strings.Contains(rr.Body.String(), "cell-assignment") {
		t.Fatalf("unknown handler: %d %q", rr.Code, rr.Body.String())
	}
	// Handler error: 500 with the message.
	rr = postInvoke(srv, "test-fail", 7, in, sumOf(in))
	if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "boom 7") {
		t.Fatalf("failing handler: %d %q", rr.Code, rr.Body.String())
	}
	// Bad task number: 400.
	req = httptest.NewRequest(http.MethodPost, "/invoke?handler=test-echo&task=x", bytes.NewReader(in))
	req.Header.Set("X-Rpdbscan-Body-Sum", sumOf(in))
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad task: %d", rr.Code)
	}
}

// TestRunWorkerHandshake drives the exact subprocess code path in-process:
// the worker announces its address on out, serves while stdin stays open,
// and shuts down when stdin closes.
func TestRunWorkerHandshake(t *testing.T) {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan struct{})
	go func() {
		transport.RunWorker(inR, outW)
		close(done)
	}()
	line, err := bufio.NewReader(outR).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	const prefix = "RPDBSCAN_WORKER_ADDR "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("handshake line %q lacks the address prefix", line)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, prefix))
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz on handshake address: %d", resp.StatusCode)
	}
	inW.Close() // driver gone: the worker must exit
	<-done
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatalf("worker still listening after stdin closed")
	}
}

// hostileSpawner wraps a real worker server in a proxy that tampers with
// the first nTamper /invoke responses in the given mode, then behaves.
// This is the malformed-worker-response battery: a response the driver
// cannot verify must never be trusted — it is ledgered like a corrupt
// frame and the attempt retried.
func hostileSpawner(mode string, nTamper int32) transport.SpawnFunc {
	return func(idx int) (transport.Endpoint, error) {
		inner := transport.NewServer()
		var left atomic.Int32
		left.Store(nTamper)
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/invoke" || left.Add(-1) < 0 {
				inner.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			switch mode {
			case "flip-body":
				body := rec.Body.Bytes()
				if len(body) > 0 {
					body[0] ^= 0xff
				}
				w.Header().Set("X-Rpdbscan-Body-Sum", rec.Header().Get("X-Rpdbscan-Body-Sum"))
				w.Write(body)
			case "drop-header":
				w.Write(rec.Body.Bytes())
			case "garbage-header":
				w.Header().Set("X-Rpdbscan-Body-Sum", "zzzz-not-hex")
				w.Write(rec.Body.Bytes())
			case "garbage-body":
				w.Header().Set("X-Rpdbscan-Body-Sum", "1234")
				w.Write([]byte("not a frame at all"))
			}
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		return &closableEndpoint{srv: srv, url: "http://" + ln.Addr().String()}, nil
	}
}

type closableEndpoint struct {
	srv *http.Server
	url string
}

func (e *closableEndpoint) URL() string  { return e.url }
func (e *closableEndpoint) Kill() error  { return e.srv.Close() }
func (e *closableEndpoint) Close() error { return e.srv.Close() }

// TestHostileWorkerResponses runs the full pipeline against workers whose
// first invoke response is malformed four different ways. Every mode must
// be detected by response verification, ledgered as a checksum rejection,
// retried, and the final clustering must still be byte-identical.
func TestHostileWorkerResponses(t *testing.T) {
	pts := datagen.Moons(400, 0.05, 1)
	cfg := core.Config{Eps: 0.1, MinPts: 10, Rho: 0.01, NumPartitions: 4, Seed: 1}
	ref, err := core.Run(pts, cfg, engine.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"flip-body", "drop-header", "garbage-header", "garbage-body"} {
		t.Run(mode, func(t *testing.T) {
			got, cl := procRun(t, pts, cfg, 2, transport.Options{
				Spawn: hostileSpawner(mode, 1),
			})
			assertIdentical(t, ref, got)
			f := faultTotals(cl)
			// Two workers, each hostile on its first invoke: exactly two
			// malformed responses rejected and retried.
			if f.ChecksumRejects != 2 {
				t.Fatalf("mode %s: ledgered %d rejects, want 2", mode, f.ChecksumRejects)
			}
		})
	}
}
