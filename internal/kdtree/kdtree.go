// Package kdtree provides a static kd-tree over d-dimensional points with
// ball range queries. The two-level cell dictionary indexes cell centres
// with it so an (eps,rho)-region query touches O(log |cell|) nodes plus a
// constant number of candidate cells (Lemma 5.6), independent of the
// dimension-exponential size of the naive coordinate-box enumeration.
//
// # Memory layout
//
// The tree is cache-blocked rather than pointer-chased. Nodes live in one
// flat slice in BFS order — the root is node 0 and the two children of an
// internal node are adjacent (left and left+1), so the top of the tree,
// which every query traverses, occupies a handful of consecutive cache
// lines. Node bounds live in a separate flat float64 slab (2*dim values
// per node) instead of per-node heap-allocated boxes. Points are bucketed
// into leaves of up to leafSize entries and stored structure-of-arrays
// within each leaf: coordinate d of the leaf's points is one contiguous
// lane, so the distance kernel is a per-dimension accumulation over dense
// float64 slices — bounds-check-friendly, autovectorizable, and free of
// per-point slice headers. Traversal is iterative over a fixed-size stack;
// no query allocates.
package kdtree

import (
	"rpdbscan/internal/geom"
)

// Tree is an immutable kd-tree built over a fixed point set. Each indexed
// point carries an integer payload (typically an index into a cell table).
type Tree struct {
	dim int
	// coords holds the points in tree order, SoA per leaf: a leaf covering
	// items [s, s+c) stores coordinate d of its j-th point at
	// coords[s*dim + d*c + j].
	coords []float64
	items  []int // payloads, parallel to tree order
	nodes  []node
	// bounds is the flat bounding-box slab: node i's box occupies
	// bounds[i*2*dim : (i+1)*2*dim], min coordinates then max.
	bounds []float64
}

// node is one BFS-ordered tree node. Leaves have count > 0 and index
// points [start, start+count) of coords/items; internal nodes have
// count == 0 and children at left and left+1.
type node struct {
	start, count int32
	left         int32
	axis         int32
	split        float64
}

// leafSize is the leaf bucket capacity. 16 keeps a leaf's SoA lanes within
// two cache lines per dimension while still amortising the per-node prune.
const leafSize = 16

// maxDepth bounds the traversal stacks. Median splits halve every segment,
// so the depth never exceeds ceil(log2 n) — 64 covers any addressable n.
const maxDepth = 64

// Build constructs a kd-tree over pts. payload[i] is attached to point i; a
// nil payload attaches i itself. pts may be empty.
func Build(pts *geom.Points, payload []int) *Tree {
	n := pts.N()
	t := &Tree{dim: pts.Dim}
	if n == 0 {
		return t
	}
	dim := t.dim
	src := pts.Coords
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// BFS construction: the work queue is processed FIFO and every entry
	// becomes exactly one node, so an entry's queue position IS its node
	// id, and the two children a parent appends together become adjacent
	// nodes — the left/left+1 layout needs no patching.
	type seg struct{ lo, hi int }
	queue := make([]seg, 1, 2*(n/leafSize+1))
	queue[0] = seg{0, n}
	for qi := 0; qi < len(queue); qi++ {
		lo, hi := queue[qi].lo, queue[qi].hi
		// Bounding box of the segment, appended to the flat slab.
		t.bounds = append(t.bounds, make([]float64, 2*dim)...)
		bb := t.bounds[len(t.bounds)-2*dim:]
		for d := 0; d < dim; d++ {
			bb[d] = src[order[lo]*dim+d]
			bb[dim+d] = bb[d]
		}
		for _, idx := range order[lo+1 : hi] {
			p := src[idx*dim : (idx+1)*dim]
			for d, v := range p {
				if v < bb[d] {
					bb[d] = v
				}
				if v > bb[dim+d] {
					bb[dim+d] = v
				}
			}
		}
		if hi-lo <= leafSize {
			t.nodes = append(t.nodes, node{start: int32(lo), count: int32(hi - lo)})
			continue
		}
		// Split along the widest axis at the median.
		axis := 0
		widest := bb[dim] - bb[0]
		for d := 1; d < dim; d++ {
			if w := bb[dim+d] - bb[d]; w > widest {
				widest, axis = w, d
			}
		}
		selectNth(src, dim, order[lo:hi], (hi-lo)/2, axis)
		mid := lo + (hi-lo)/2
		t.nodes = append(t.nodes, node{
			left:  int32(len(queue)),
			axis:  int32(axis),
			split: src[order[mid]*dim+axis],
		})
		queue = append(queue, seg{lo, mid}, seg{mid, hi})
	}
	// Materialise points in tree order, transposing each leaf to SoA.
	t.coords = make([]float64, n*dim)
	t.items = make([]int, n)
	for ni := range t.nodes {
		nd := &t.nodes[ni]
		if nd.count == 0 {
			continue
		}
		s, c := int(nd.start), int(nd.count)
		base := s * dim
		for j := 0; j < c; j++ {
			orig := order[s+j]
			if payload != nil {
				t.items[s+j] = payload[orig]
			} else {
				t.items[s+j] = orig
			}
			for d := 0; d < dim; d++ {
				t.coords[base+d*c+j] = src[orig*dim+d]
			}
		}
	}
	return t
}

// selectNth partially orders seg so seg[n] holds the element of rank n by
// the given axis (Hoare quickselect with median-of-three pivots) — an
// O(len) median step that replaces a full sort during tree construction.
func selectNth(src []float64, dim int, seg []int, n, axis int) {
	lo, hi := 0, len(seg)-1
	val := func(i int) float64 { return src[seg[i]*dim+axis] }
	for lo < hi {
		// Median-of-three pivot, moved to lo.
		mid := lo + (hi-lo)/2
		if val(mid) < val(lo) {
			seg[mid], seg[lo] = seg[lo], seg[mid]
		}
		if val(hi) < val(lo) {
			seg[hi], seg[lo] = seg[lo], seg[hi]
		}
		if val(hi) < val(mid) {
			seg[hi], seg[mid] = seg[mid], seg[hi]
		}
		pivot := val(mid)
		i, j := lo, hi
		for i <= j {
			for val(i) < pivot {
				i++
			}
			for val(j) > pivot {
				j--
			}
			if i <= j {
				seg[i], seg[j] = seg[j], seg[i]
				i++
				j--
			}
		}
		if n <= j {
			hi = j
		} else if n >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.items) }

// nodeMinDist2 returns the squared distance from q to node ni's bounding
// box, read from the flat slab (geom.Box.MinDist2 arithmetic).
func (t *Tree) nodeMinDist2(ni int32, q []float64) float64 {
	b := t.bounds[int(ni)*2*t.dim : (int(ni)+1)*2*t.dim]
	var s float64
	for d, v := range q {
		if v < b[d] {
			diff := b[d] - v
			s += diff * diff
		} else if v > b[t.dim+d] {
			diff := v - b[t.dim+d]
			s += diff * diff
		}
	}
	return s
}

// nodeBoxMinDist2 returns the squared gap between node ni's bounding box
// and the box (lo, hi) (geom.Box.BoxMinDist2 arithmetic).
func (t *Tree) nodeBoxMinDist2(ni int32, lo, hi []float64) float64 {
	b := t.bounds[int(ni)*2*t.dim : (int(ni)+1)*2*t.dim]
	var s float64
	for d := range lo {
		if diff := lo[d] - b[t.dim+d]; diff > 0 {
			s += diff * diff
		} else if diff := b[d] - hi[d]; diff > 0 {
			s += diff * diff
		}
	}
	return s
}

// leafDist2 fills acc[0:count] with the squared distance from q to every
// point of the leaf: one dense accumulation lane per dimension, the same
// per-point addition order as geom.Dist2 so results are bit-identical.
func (t *Tree) leafDist2(nd *node, q []float64, acc *[leafSize]float64) {
	s, c := int(nd.start), int(nd.count)
	for j := 0; j < c; j++ {
		acc[j] = 0
	}
	base := s * t.dim
	for d, qd := range q {
		lane := t.coords[base+d*c : base+(d+1)*c]
		for j, v := range lane {
			diff := v - qd
			acc[j] += diff * diff
		}
	}
}

// InBall appends to dst the payloads of all points within radius r of q and
// returns the extended slice. It allocates nothing when dst has capacity.
func (t *Tree) InBall(q []float64, r float64, dst []int) []int {
	if len(t.nodes) == 0 {
		return dst
	}
	r2 := r * r
	var stack [maxDepth]int32
	var acc [leafSize]float64
	stack[0] = 0
	sp := 1
	for sp > 0 {
		sp--
		ni := stack[sp]
		if t.nodeMinDist2(ni, q) > r2 {
			continue
		}
		nd := &t.nodes[ni]
		if nd.count > 0 {
			t.leafDist2(nd, q, &acc)
			s, c := int(nd.start), int(nd.count)
			for j := 0; j < c; j++ {
				if acc[j] <= r2 {
					dst = append(dst, t.items[s+j])
				}
			}
			continue
		}
		stack[sp] = nd.left
		stack[sp+1] = nd.left + 1
		sp += 2
	}
	return dst
}

// InBallBox appends to dst the payloads of all points within distance r of
// the box b (its nearest face, or zero when inside) and returns the
// extended slice. It is the cell-batched variant of InBall: one traversal
// gathers the candidates shared by every query point inside b, so callers
// amortise the index walk over a whole cell instead of paying it per point.
// Like InBall it allocates nothing when dst has capacity.
func (t *Tree) InBallBox(b geom.Box, r float64, dst []int) []int {
	if len(t.nodes) == 0 || b.Empty() {
		return dst
	}
	r2 := r * r
	lo, hi := b.Min, b.Max
	var stack [maxDepth]int32
	var acc [leafSize]float64
	stack[0] = 0
	sp := 1
	for sp > 0 {
		sp--
		ni := stack[sp]
		if t.nodeBoxMinDist2(ni, lo, hi) > r2 {
			continue
		}
		nd := &t.nodes[ni]
		if nd.count > 0 {
			s, c := int(nd.start), int(nd.count)
			for j := 0; j < c; j++ {
				acc[j] = 0
			}
			base := s * t.dim
			// Box.MinDist2 per leaf point, one dense lane per dimension.
			for d := range lo {
				blo, bhi := lo[d], hi[d]
				lane := t.coords[base+d*c : base+(d+1)*c]
				for j, v := range lane {
					if v < blo {
						diff := blo - v
						acc[j] += diff * diff
					} else if v > bhi {
						diff := v - bhi
						acc[j] += diff * diff
					}
				}
			}
			for j := 0; j < c; j++ {
				if acc[j] <= r2 {
					dst = append(dst, t.items[s+j])
				}
			}
			continue
		}
		stack[sp] = nd.left
		stack[sp+1] = nd.left + 1
		sp += 2
	}
	return dst
}

// NearestInBall returns the payload of the point nearest to q among those
// within radius r, its squared distance, and whether any point qualified.
// Ties on distance resolve to the smallest payload, so the answer is a pure
// function of the indexed set — independent of tree shape and traversal
// order — which is what lets the serving layer promise byte-identical
// predictions across concurrent and sequential execution.
func (t *Tree) NearestInBall(q []float64, r float64) (payload int, dist2 float64, ok bool) {
	if len(t.nodes) == 0 || r < 0 {
		return 0, 0, false
	}
	bestD2 := r * r
	best := -1
	var stack [maxDepth]int32
	var acc [leafSize]float64
	stack[0] = 0
	sp := 1
	for sp > 0 {
		sp--
		ni := stack[sp]
		// Prune on the current best radius; "equal" must still be visited
		// so the smallest-payload tie-break sees every candidate at the
		// boundary.
		if t.nodeMinDist2(ni, q) > bestD2 {
			continue
		}
		nd := &t.nodes[ni]
		if nd.count > 0 {
			t.leafDist2(nd, q, &acc)
			s, c := int(nd.start), int(nd.count)
			for j := 0; j < c; j++ {
				d2 := acc[j]
				if d2 > bestD2 {
					continue
				}
				if best < 0 || d2 < bestD2 || t.items[s+j] < best {
					bestD2, best = d2, t.items[s+j]
				}
			}
			continue
		}
		// Descend the side of the split containing q first: it shrinks the
		// best radius earliest, pruning more of the far side. The far child
		// is pushed below the near one so the near side pops first.
		near, far := nd.left, nd.left+1
		if q[nd.axis] > nd.split {
			near, far = far, near
		}
		stack[sp] = far
		stack[sp+1] = near
		sp += 2
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestD2, true
}

// Visit calls fn for every payload whose point is within radius r of q. It
// avoids the allocation of InBall when the caller only needs to iterate.
func (t *Tree) Visit(q []float64, r float64, fn func(payload int)) {
	if len(t.nodes) == 0 {
		return
	}
	r2 := r * r
	var stack [maxDepth]int32
	var acc [leafSize]float64
	stack[0] = 0
	sp := 1
	for sp > 0 {
		sp--
		ni := stack[sp]
		if t.nodeMinDist2(ni, q) > r2 {
			continue
		}
		nd := &t.nodes[ni]
		if nd.count > 0 {
			t.leafDist2(nd, q, &acc)
			s, c := int(nd.start), int(nd.count)
			for j := 0; j < c; j++ {
				if acc[j] <= r2 {
					fn(t.items[s+j])
				}
			}
			continue
		}
		stack[sp] = nd.left
		stack[sp+1] = nd.left + 1
		sp += 2
	}
}
