// Package kdtree provides a static kd-tree over d-dimensional points with
// ball range queries. The two-level cell dictionary indexes cell centres
// with it so an (eps,rho)-region query touches O(log |cell|) nodes plus a
// constant number of candidate cells (Lemma 5.6), independent of the
// dimension-exponential size of the naive coordinate-box enumeration.
package kdtree

import (
	"rpdbscan/internal/geom"
)

// Tree is an immutable kd-tree built over a fixed point set. Each indexed
// point carries an integer payload (typically an index into a cell table).
type Tree struct {
	dim    int
	coords []float64 // flat, item-major, reordered during build
	items  []int     // payloads, parallel to points
	nodes  []node
	root   int
}

type node struct {
	// Leaf nodes have count > 0 and start indexing into coords/items.
	// Internal nodes have count == 0 and left/right children.
	start, count int
	axis         int
	split        float64
	left, right  int
	bounds       geom.Box
}

const leafSize = 16

// Build constructs a kd-tree over pts. payload[i] is attached to point i; a
// nil payload attaches i itself. pts may be empty.
func Build(pts *geom.Points, payload []int) *Tree {
	n := pts.N()
	t := &Tree{
		dim:    pts.Dim,
		coords: make([]float64, len(pts.Coords)),
		items:  make([]int, n),
	}
	copy(t.coords, pts.Coords)
	for i := range t.items {
		if payload != nil {
			t.items[i] = payload[i]
		} else {
			t.items[i] = i
		}
	}
	if n == 0 {
		t.root = -1
		return t
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	t.root = t.build(order, 0, n)
	// Apply the final permutation: rebuild coords/items in tree order.
	nc := make([]float64, len(t.coords))
	ni := make([]int, n)
	for pos, orig := range order {
		copy(nc[pos*t.dim:(pos+1)*t.dim], t.coords[orig*t.dim:(orig+1)*t.dim])
		ni[pos] = t.items[orig]
	}
	t.coords, t.items = nc, ni
	return t
}

// build recursively partitions order[lo:hi] and returns the node index.
func (t *Tree) build(order []int, lo, hi int) int {
	b := geom.NewBox(t.dim)
	for _, idx := range order[lo:hi] {
		b.Extend(t.at(idx))
	}
	if hi-lo <= leafSize {
		t.nodes = append(t.nodes, node{start: lo, count: hi - lo, bounds: b, left: -1, right: -1})
		return len(t.nodes) - 1
	}
	// Split along the widest axis at the median.
	axis := 0
	widest := b.Max[0] - b.Min[0]
	for i := 1; i < t.dim; i++ {
		if w := b.Max[i] - b.Min[i]; w > widest {
			widest, axis = w, i
		}
	}
	seg := order[lo:hi]
	mid := lo + (hi-lo)/2
	t.selectNth(seg, (hi-lo)/2, axis)
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{axis: axis, split: t.at(order[mid])[axis], bounds: b})
	l := t.build(order, lo, mid)
	r := t.build(order, mid, hi)
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

func (t *Tree) at(i int) []float64 {
	return t.coords[i*t.dim : (i+1)*t.dim]
}

// selectNth partially orders seg so seg[n] holds the element of rank n by
// the given axis (Hoare quickselect with median-of-three pivots) — an
// O(len) median step that replaces a full sort during tree construction.
func (t *Tree) selectNth(seg []int, n, axis int) {
	lo, hi := 0, len(seg)-1
	val := func(i int) float64 { return t.at(seg[i])[axis] }
	for lo < hi {
		// Median-of-three pivot, moved to lo.
		mid := lo + (hi-lo)/2
		if val(mid) < val(lo) {
			seg[mid], seg[lo] = seg[lo], seg[mid]
		}
		if val(hi) < val(lo) {
			seg[hi], seg[lo] = seg[lo], seg[hi]
		}
		if val(hi) < val(mid) {
			seg[hi], seg[mid] = seg[mid], seg[hi]
		}
		pivot := val(mid)
		i, j := lo, hi
		for i <= j {
			for val(i) < pivot {
				i++
			}
			for val(j) > pivot {
				j--
			}
			if i <= j {
				seg[i], seg[j] = seg[j], seg[i]
				i++
				j--
			}
		}
		if n <= j {
			hi = j
		} else if n >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.items) }

// InBall appends to dst the payloads of all points within radius r of q and
// returns the extended slice.
func (t *Tree) InBall(q []float64, r float64, dst []int) []int {
	if t.root < 0 {
		return dst
	}
	r2 := r * r
	return t.inBall(t.root, q, r2, dst)
}

func (t *Tree) inBall(ni int, q []float64, r2 float64, dst []int) []int {
	nd := &t.nodes[ni]
	if nd.bounds.MinDist2(q) > r2 {
		return dst
	}
	if nd.count > 0 || nd.left < 0 {
		for i := nd.start; i < nd.start+nd.count; i++ {
			if geom.Dist2(q, t.at(i)) <= r2 {
				dst = append(dst, t.items[i])
			}
		}
		return dst
	}
	dst = t.inBall(nd.left, q, r2, dst)
	dst = t.inBall(nd.right, q, r2, dst)
	return dst
}

// InBallBox appends to dst the payloads of all points within distance r of
// the box b (its nearest face, or zero when inside) and returns the
// extended slice. It is the cell-batched variant of InBall: one traversal
// gathers the candidates shared by every query point inside b, so callers
// amortise the index walk over a whole cell instead of paying it per point.
// Like InBall it allocates nothing when dst has capacity.
func (t *Tree) InBallBox(b geom.Box, r float64, dst []int) []int {
	if t.root < 0 || b.Empty() {
		return dst
	}
	return t.inBallBox(t.root, b, r*r, dst)
}

func (t *Tree) inBallBox(ni int, b geom.Box, r2 float64, dst []int) []int {
	nd := &t.nodes[ni]
	if nd.bounds.BoxMinDist2(b) > r2 {
		return dst
	}
	if nd.count > 0 || nd.left < 0 {
		for i := nd.start; i < nd.start+nd.count; i++ {
			if b.MinDist2(t.at(i)) <= r2 {
				dst = append(dst, t.items[i])
			}
		}
		return dst
	}
	dst = t.inBallBox(nd.left, b, r2, dst)
	dst = t.inBallBox(nd.right, b, r2, dst)
	return dst
}

// NearestInBall returns the payload of the point nearest to q among those
// within radius r, its squared distance, and whether any point qualified.
// Ties on distance resolve to the smallest payload, so the answer is a pure
// function of the indexed set — independent of tree shape and traversal
// order — which is what lets the serving layer promise byte-identical
// predictions across concurrent and sequential execution.
func (t *Tree) NearestInBall(q []float64, r float64) (payload int, dist2 float64, ok bool) {
	if t.root < 0 || r < 0 {
		return 0, 0, false
	}
	best := nearest{dist2: r * r, payload: -1}
	t.nearestInBall(t.root, q, &best)
	if best.payload < 0 {
		return 0, 0, false
	}
	return best.payload, best.dist2, true
}

type nearest struct {
	dist2   float64
	payload int // -1 until a point qualifies
}

func (t *Tree) nearestInBall(ni int, q []float64, best *nearest) {
	nd := &t.nodes[ni]
	// Prune on the current best radius; "equal" must still be visited so
	// the smallest-payload tie-break sees every candidate at the boundary.
	if nd.bounds.MinDist2(q) > best.dist2 {
		return
	}
	if nd.count > 0 || nd.left < 0 {
		for i := nd.start; i < nd.start+nd.count; i++ {
			d2 := geom.Dist2(q, t.at(i))
			if d2 > best.dist2 {
				continue
			}
			if best.payload < 0 || d2 < best.dist2 || t.items[i] < best.payload {
				best.dist2, best.payload = d2, t.items[i]
			}
		}
		return
	}
	// Descend the side of the split containing q first: it shrinks the
	// best radius earliest, pruning more of the far side.
	first, second := nd.left, nd.right
	if q[nd.axis] > nd.split {
		first, second = second, first
	}
	t.nearestInBall(first, q, best)
	t.nearestInBall(second, q, best)
}

// Visit calls fn for every payload whose point is within radius r of q. It
// avoids the allocation of InBall when the caller only needs to iterate.
func (t *Tree) Visit(q []float64, r float64, fn func(payload int)) {
	if t.root < 0 {
		return
	}
	t.visit(t.root, q, r*r, fn)
}

func (t *Tree) visit(ni int, q []float64, r2 float64, fn func(int)) {
	nd := &t.nodes[ni]
	if nd.bounds.MinDist2(q) > r2 {
		return
	}
	if nd.count > 0 || nd.left < 0 {
		for i := nd.start; i < nd.start+nd.count; i++ {
			if geom.Dist2(q, t.at(i)) <= r2 {
				fn(t.items[i])
			}
		}
		return
	}
	t.visit(nd.left, q, r2, fn)
	t.visit(nd.right, q, r2, fn)
}
