package kdtree

// BenchmarkKDTreeInBall contrasts the cache-blocked layout (BFS node
// order, flat bounds slab, SoA leaves, iterative traversal) against a
// reference tree with the classic per-node layout — heap-allocated
// per-node bounds, item-major points, recursive descent. Both answer the
// same queries over the same data; the ratio is the layout win in
// isolation. TestInBallAllocFree pins the blocked layout's zero-allocation
// guarantee that dict.Querier and serve.Predict rely on.

import (
	"math/rand"
	"testing"

	"rpdbscan/internal/geom"
)

// refTree is the pre-blocking layout kept as a benchmark baseline: one
// node struct per tree node with its own geom.Box, points item-major in
// tree order, recursion per query.
type refTree struct {
	dim    int
	coords []float64
	items  []int
	nodes  []refNode
}

type refNode struct {
	start, count int
	left, right  int
	bounds       geom.Box
}

func buildRef(pts *geom.Points) *refTree {
	n := pts.N()
	t := &refTree{dim: pts.Dim, items: make([]int, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	src := pts.Coords
	var build func(lo, hi int) int
	build = func(lo, hi int) int {
		b := geom.NewBox(t.dim)
		for _, idx := range order[lo:hi] {
			b.Extend(src[idx*t.dim : (idx+1)*t.dim])
		}
		if hi-lo <= leafSize {
			t.nodes = append(t.nodes, refNode{start: lo, count: hi - lo, bounds: b, left: -1, right: -1})
			return len(t.nodes) - 1
		}
		axis := 0
		widest := b.Max[0] - b.Min[0]
		for d := 1; d < t.dim; d++ {
			if w := b.Max[d] - b.Min[d]; w > widest {
				widest, axis = w, d
			}
		}
		selectNth(src, t.dim, order[lo:hi], (hi-lo)/2, axis)
		mid := lo + (hi-lo)/2
		self := len(t.nodes)
		t.nodes = append(t.nodes, refNode{bounds: b})
		l := build(lo, mid)
		r := build(mid, hi)
		t.nodes[self].left = l
		t.nodes[self].right = r
		return self
	}
	if n > 0 {
		build(0, n)
	}
	t.coords = make([]float64, n*t.dim)
	for pos, orig := range order {
		copy(t.coords[pos*t.dim:(pos+1)*t.dim], src[orig*t.dim:(orig+1)*t.dim])
		t.items[pos] = orig
	}
	return t
}

func (t *refTree) inBall(ni int, q []float64, r2 float64, dst []int) []int {
	nd := &t.nodes[ni]
	if nd.bounds.MinDist2(q) > r2 {
		return dst
	}
	if nd.count > 0 || nd.left < 0 {
		for i := nd.start; i < nd.start+nd.count; i++ {
			if geom.Dist2(q, t.coords[i*t.dim:(i+1)*t.dim]) <= r2 {
				dst = append(dst, t.items[i])
			}
		}
		return dst
	}
	dst = t.inBall(nd.left, q, r2, dst)
	return t.inBall(nd.right, q, r2, dst)
}

func benchPoints(n, dim int) (*geom.Points, [][]float64) {
	r := rand.New(rand.NewSource(42))
	pts := randomPoints(r, n, dim)
	queries := make([][]float64, 256)
	for i := range queries {
		q := make([]float64, dim)
		for d := range q {
			q[d] = r.Float64()*20 - 10
		}
		queries[i] = q
	}
	return pts, queries
}

// TestRefTreeMatchesBlocked keeps the benchmark honest: the reference
// layout must return the same result sets as the blocked tree.
func TestRefTreeMatchesBlocked(t *testing.T) {
	pts, queries := benchPoints(3000, 3)
	blocked := Build(pts, nil)
	ref := buildRef(pts)
	for _, q := range queries {
		a := blocked.InBall(q, 2.5, nil)
		b := ref.inBall(0, q, 2.5*2.5, nil)
		if len(a) != len(b) {
			t.Fatalf("blocked found %d, reference found %d", len(a), len(b))
		}
		seen := make(map[int]bool, len(a))
		for _, v := range a {
			seen[v] = true
		}
		for _, v := range b {
			if !seen[v] {
				t.Fatalf("reference result %d missing from blocked", v)
			}
		}
	}
}

func BenchmarkKDTreeInBall(b *testing.B) {
	for _, dim := range []int{2, 5} {
		pts, queries := benchPoints(20000, dim)
		blocked := Build(pts, nil)
		ref := buildRef(pts)
		const r = 1.5
		dst := make([]int, 0, 4096)
		b.Run(benchName("layout=blocked", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = blocked.InBall(queries[i%len(queries)], r, dst[:0])
			}
		})
		b.Run(benchName("layout=node", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = ref.inBall(0, queries[i%len(queries)], r*r, dst[:0])
			}
		})
	}
}

func benchName(layout string, dim int) string {
	return layout + "/dim=" + string(rune('0'+dim))
}

// TestInBallAllocFree pins the zero-allocation contract of every blocked
// query when the destination has capacity.
func TestInBallAllocFree(t *testing.T) {
	pts, queries := benchPoints(5000, 3)
	tr := Build(pts, nil)
	dst := make([]int, 0, 8192)
	box := geom.NewBox(3)
	box.Extend(queries[0])
	box.Extend(queries[1])
	if n := testing.AllocsPerRun(50, func() {
		dst = tr.InBall(queries[0], 3, dst[:0])
	}); n != 0 {
		t.Fatalf("InBall allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		dst = tr.InBallBox(box, 2, dst[:0])
	}); n != 0 {
		t.Fatalf("InBallBox allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		tr.NearestInBall(queries[2], 4)
	}); n != 0 {
		t.Fatalf("NearestInBall allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		tr.Visit(queries[3], 3, func(int) {})
	}); n != 0 {
		t.Fatalf("Visit allocates %v per call", n)
	}
}
