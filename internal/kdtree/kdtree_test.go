package kdtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rpdbscan/internal/geom"

	"rpdbscan/internal/testutil"
)

func randomPoints(r *rand.Rand, n, dim int) *geom.Points {
	p := geom.NewPoints(dim, n)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = r.Float64()*20 - 10
		}
		p.Append(row)
	}
	return p
}

func bruteBall(pts *geom.Points, q []float64, r float64) []int {
	var out []int
	r2 := r * r
	for i := 0; i < pts.N(); i++ {
		if geom.Dist2(q, pts.At(i)) <= r2 {
			out = append(out, i)
		}
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := Build(geom.NewPoints(3, 0), nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if got := tr.InBall([]float64{0, 0, 0}, 5, nil); len(got) != 0 {
		t.Fatalf("InBall on empty tree = %v", got)
	}
}

func TestSinglePoint(t *testing.T) {
	pts, _ := geom.FromSlice([][]float64{{1, 2}}, 2)
	tr := Build(pts, []int{42})
	got := tr.InBall([]float64{1, 2}, 0.1, nil)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("InBall = %v, want [42]", got)
	}
	if got := tr.InBall([]float64{9, 9}, 0.1, nil); len(got) != 0 {
		t.Fatalf("InBall far = %v, want empty", got)
	}
}

func TestInBallMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 2, 3, 5, 13} {
		pts := randomPoints(rng, 500, dim)
		tr := Build(pts, nil)
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64()*24 - 12
			}
			r := rng.Float64() * 8
			want := bruteBall(pts, q, r)
			got := tr.InBall(q, r, nil)
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("dim %d: got %d results, want %d", dim, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dim %d: got %v, want %v", dim, got, want)
				}
			}
		}
	}
}

func TestVisitMatchesInBall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 300, 3)
	tr := Build(pts, nil)
	q := []float64{0, 0, 0}
	want := tr.InBall(q, 4, nil)
	var got []int
	tr.Visit(q, 4, func(p int) { got = append(got, p) })
	sort.Ints(want)
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("Visit found %d, InBall found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, got, want)
		}
	}
}

func TestPayloadsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 100, 2)
	payload := make([]int, 100)
	for i := range payload {
		payload[i] = i * 7
	}
	tr := Build(pts, payload)
	got := tr.InBall([]float64{0, 0}, 100, nil) // everything
	if len(got) != 100 {
		t.Fatalf("found %d, want 100", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i*7 {
			t.Fatalf("payload %d = %d, want %d", i, v, i*7)
		}
	}
}

// Property: InBall equals brute force on random configurations.
func TestInBallProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		n := 1 + r.Intn(200)
		pts := randomPoints(r, n, dim)
		tr := Build(pts, nil)
		q := make([]float64, dim)
		for j := range q {
			q[j] = r.Float64()*30 - 15
		}
		rad := r.Float64() * 10
		want := bruteBall(pts, q, rad)
		got := tr.InBall(q, rad, nil)
		sort.Ints(got)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 205, 100)); err != nil {
		t.Fatal(err)
	}
}

// TestInBallBoxMatchesBrute checks the box-ball query against a brute-force
// scan: every point within r of the box, nothing else, zero allocations
// when dst has capacity.
func TestInBallBoxMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		dim := 1 + r.Intn(3)
		pts := randomPoints(r, 50+r.Intn(400), dim)
		tr := Build(pts, nil)
		b := geom.NewBox(dim)
		lo, hi := make([]float64, dim), make([]float64, dim)
		for i := 0; i < dim; i++ {
			x, y := r.Float64()*20-10, r.Float64()*20-10
			if x > y {
				x, y = y, x
			}
			lo[i], hi[i] = x, y
		}
		b.Extend(lo)
		b.Extend(hi)
		rad := r.Float64() * 4
		got := tr.InBallBox(b, rad, nil)
		var want []int
		for i := 0; i < pts.N(); i++ {
			if b.MinDist2(pts.At(i)) <= rad*rad {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("dim=%d: got %d points, want %d", dim, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("dim=%d: result %d = %d, want %d", dim, i, got[i], want[i])
			}
		}
	}
}

func TestInBallBoxEmptyAndReuse(t *testing.T) {
	tr := Build(geom.NewPoints(2, 0), nil)
	b := geom.NewBox(2)
	b.Extend([]float64{0, 0})
	if got := tr.InBallBox(b, 1, nil); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	r := rand.New(rand.NewSource(22))
	pts := randomPoints(r, 200, 2)
	tr = Build(pts, nil)
	if got := tr.InBallBox(geom.NewBox(2), 1, nil); len(got) != 0 {
		t.Fatalf("empty box returned %v", got)
	}
	// dst reuse: a second query must append after truncation, not alias.
	dst := make([]int, 0, 256)
	a := tr.InBallBox(b, 3, dst)
	bb := tr.InBallBox(b, 3, dst[:0])
	if len(a) != len(bb) {
		t.Fatalf("reused dst changed result: %d vs %d", len(a), len(bb))
	}
}

// bruteNearestInBall applies NearestInBall's contract by exhaustive scan:
// nearest point within r, ties resolved to the smallest payload.
func bruteNearestInBall(pts *geom.Points, q []float64, r float64) (int, float64, bool) {
	best, bestD2, ok := -1, r*r, false
	for i := 0; i < pts.N(); i++ {
		d2 := geom.Dist2(q, pts.At(i))
		if d2 > bestD2 {
			continue
		}
		if !ok || d2 < bestD2 || i < best {
			best, bestD2, ok = i, d2, true
		}
	}
	return best, bestD2, ok
}

func TestNearestInBallMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, dim := range []int{1, 2, 3, 7} {
		pts := randomPoints(rng, 400, dim)
		tr := Build(pts, nil)
		for trial := 0; trial < 200; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64()*24 - 12
			}
			r := rng.Float64() * 6
			wantIdx, wantD2, wantOK := bruteNearestInBall(pts, q, r)
			gotIdx, gotD2, gotOK := tr.NearestInBall(q, r)
			if gotOK != wantOK {
				t.Fatalf("dim %d: ok = %v, want %v", dim, gotOK, wantOK)
			}
			if wantOK && (gotIdx != wantIdx || gotD2 != wantD2) {
				t.Fatalf("dim %d: nearest = (%d, %g), want (%d, %g)", dim, gotIdx, gotD2, wantIdx, wantD2)
			}
		}
	}
}

func TestNearestInBallTieBreak(t *testing.T) {
	// Four coincident pairs: equal distances must resolve to the smallest
	// payload regardless of build order.
	pts, _ := geom.FromSlice([][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}}, 2)
	tr := Build(pts, nil)
	idx, d2, ok := tr.NearestInBall([]float64{0, 0}, 2)
	if !ok || idx != 0 || d2 != 1 {
		t.Fatalf("NearestInBall = (%d, %g, %v), want (0, 1, true)", idx, d2, ok)
	}
	if _, _, ok := tr.NearestInBall([]float64{9, 9}, 1); ok {
		t.Fatal("NearestInBall matched outside the ball")
	}
	empty := Build(geom.NewPoints(2, 0), nil)
	if _, _, ok := empty.NearestInBall([]float64{0, 0}, 1); ok {
		t.Fatal("NearestInBall matched on an empty tree")
	}
}
