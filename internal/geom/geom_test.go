package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rpdbscan/internal/testutil"
)

func TestPointsBasics(t *testing.T) {
	p := NewPoints(2, 4)
	if p.N() != 0 {
		t.Fatalf("N of empty = %d, want 0", p.N())
	}
	i := p.Append([]float64{1, 2})
	j := p.Append([]float64{3, 4})
	if i != 0 || j != 1 {
		t.Fatalf("indices = %d,%d, want 0,1", i, j)
	}
	if got := p.At(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("At(1) = %v, want [3 4]", got)
	}
	if p.N() != 2 {
		t.Fatalf("N = %d, want 2", p.N())
	}
}

func TestFromSlice(t *testing.T) {
	p, err := FromSlice([][]float64{{1, 2}, {3, 4}, {5, 6}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 || p.At(2)[1] != 6 {
		t.Fatalf("unexpected points: %+v", p)
	}
	if _, err := FromSlice([][]float64{{1}}, 2); err == nil {
		t.Fatal("FromSlice accepted a short row")
	}
}

func TestSubsetAndCopy(t *testing.T) {
	p, _ := FromSlice([][]float64{{0, 0}, {1, 1}, {2, 2}}, 2)
	s := p.Subset([]int{2, 0})
	if s.N() != 2 || s.At(0)[0] != 2 || s.At(1)[0] != 0 {
		t.Fatalf("Subset gave %+v", s)
	}
	c := p.Copy()
	c.Coords[0] = 99
	if p.Coords[0] == 99 {
		t.Fatal("Copy shares backing storage")
	}
}

func TestDist(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	if got := Dist(a, b); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Dist = %v, want 3", got)
	}
	if got := Dist2(a, b); got != 9 {
		t.Fatalf("Dist2 = %v, want 9", got)
	}
}

func TestBoxContainsAndDist(t *testing.T) {
	b := NewBox(2)
	if !b.Empty() {
		t.Fatal("new box should be empty")
	}
	b.Extend([]float64{0, 0})
	b.Extend([]float64{2, 2})
	if b.Empty() {
		t.Fatal("extended box should not be empty")
	}
	if !b.Contains([]float64{1, 1}) || b.Contains([]float64{3, 1}) {
		t.Fatal("Contains wrong")
	}
	if got := b.MinDist2([]float64{1, 1}); got != 0 {
		t.Fatalf("MinDist2 inside = %v, want 0", got)
	}
	if got := b.MinDist2([]float64{5, 2}); got != 9 {
		t.Fatalf("MinDist2 = %v, want 9", got)
	}
	if got := b.MaxDist2([]float64{0, 0}); got != 8 {
		t.Fatalf("MaxDist2 = %v, want 8", got)
	}
}

func TestBoxOutside(t *testing.T) {
	b := NewBox(2)
	b.Extend([]float64{0, 0})
	b.Extend([]float64{1, 1})
	if b.Outside([]float64{1.5, 0.5}, 1.0) {
		t.Fatal("box within eps reported outside")
	}
	if !b.Outside([]float64{3, 0.5}, 1.0) {
		t.Fatal("box beyond eps not reported outside")
	}
}

func TestExtendBox(t *testing.T) {
	a := NewBox(2)
	a.Extend([]float64{0, 0})
	b := NewBox(2)
	b.Extend([]float64{5, -3})
	a.ExtendBox(b)
	if a.Min[1] != -3 || a.Max[0] != 5 {
		t.Fatalf("ExtendBox gave %+v", a)
	}
	empty := NewBox(2)
	a.ExtendBox(empty) // must be a no-op
	if a.Min[1] != -3 || a.Max[0] != 5 {
		t.Fatalf("ExtendBox with empty changed box: %+v", a)
	}
}

// Property: MinDist2 <= Dist2(p, q) <= MaxDist2 for any q inside the box.
func TestBoxDistSandwichProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		b := NewBox(dim)
		for i := 0; i < 3; i++ {
			pt := make([]float64, dim)
			for j := range pt {
				pt[j] = r.Float64()*20 - 10
			}
			b.Extend(pt)
		}
		p := make([]float64, dim)
		q := make([]float64, dim)
		for j := range p {
			p[j] = r.Float64()*40 - 20
			q[j] = b.Min[j] + r.Float64()*(b.Max[j]-b.Min[j])
		}
		d := Dist2(p, q)
		return b.MinDist2(p) <= d+1e-9 && d <= b.MaxDist2(p)+1e-9
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 7, 200)); err != nil {
		t.Fatal(err)
	}
}

// Property: Outside(p, eps) implies MinDist2(p) > eps^2.
func TestOutsideImpliesFarProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		b := NewBox(dim)
		for i := 0; i < 2; i++ {
			pt := make([]float64, dim)
			for j := range pt {
				pt[j] = r.Float64()*10 - 5
			}
			b.Extend(pt)
		}
		p := make([]float64, dim)
		for j := range p {
			p[j] = r.Float64()*30 - 15
		}
		eps := r.Float64() * 3
		if b.Outside(p, eps) {
			return b.MinDist2(p) > eps*eps-1e-9
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(t, 213, 300)); err != nil {
		t.Fatal(err)
	}
}

func TestBoxBoxDistances(t *testing.T) {
	a := Box{Min: []float64{0, 0}, Max: []float64{1, 1}}
	b := Box{Min: []float64{3, 0}, Max: []float64{4, 1}}
	if got := a.BoxMinDist2(b); got != 4 {
		t.Fatalf("BoxMinDist2 disjoint = %g, want 4", got)
	}
	if got := a.BoxMaxDist2(b); got != 16+1 {
		t.Fatalf("BoxMaxDist2 disjoint = %g, want 17", got)
	}
	c := Box{Min: []float64{0.5, 0.5}, Max: []float64{2, 2}}
	if got := a.BoxMinDist2(c); got != 0 {
		t.Fatalf("BoxMinDist2 overlapping = %g, want 0", got)
	}
	if got := a.BoxMaxDist2(c); got != 8 {
		t.Fatalf("BoxMaxDist2 overlapping = %g, want 8", got)
	}
	if a.OutsideBox(b, 1.9) != true {
		t.Fatal("OutsideBox: gap 2 > eps 1.9 not detected")
	}
	if a.OutsideBox(b, 2.0) != false {
		t.Fatal("OutsideBox: gap 2 <= eps 2 misreported")
	}
}

// Property: box-to-box min/max distances sandwich the distance between any
// pair of contained points, and OutsideBox implies every pair is farther
// than eps apart.
func TestBoxBoxDistSandwichProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		dim := 1 + r.Intn(4)
		mk := func() (Box, []float64) {
			b := NewBox(dim)
			var inside []float64
			lo, hi := make([]float64, dim), make([]float64, dim)
			for i := 0; i < dim; i++ {
				x, y := r.Float64()*10-5, r.Float64()*10-5
				if x > y {
					x, y = y, x
				}
				lo[i], hi[i] = x, y
			}
			b.Extend(lo)
			b.Extend(hi)
			inside = make([]float64, dim)
			for i := 0; i < dim; i++ {
				inside[i] = lo[i] + r.Float64()*(hi[i]-lo[i])
			}
			return b, inside
		}
		a, pa := mk()
		b, pb := mk()
		d2 := Dist2(pa, pb)
		if min := a.BoxMinDist2(b); d2 < min-1e-12 {
			t.Fatalf("point pair closer (%g) than BoxMinDist2 (%g)", d2, min)
		}
		if max := a.BoxMaxDist2(b); d2 > max+1e-12 {
			t.Fatalf("point pair farther (%g) than BoxMaxDist2 (%g)", d2, max)
		}
		eps := r.Float64() * 3
		if a.OutsideBox(b, eps) && Dist2(pa, pb) <= eps*eps {
			t.Fatal("OutsideBox true but contained points within eps")
		}
	}
}
