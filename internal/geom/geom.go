// Package geom provides d-dimensional points, Euclidean distances, and
// axis-aligned boxes used throughout the RP-DBSCAN implementation.
//
// Points are stored in a single flat coordinate slice to keep memory
// contiguous and allocation counts low; a Points value of n points in d
// dimensions holds n*d float64 values.
package geom

import (
	"fmt"
	"math"
)

// Points is a set of n points in d-dimensional Euclidean space backed by a
// flat coordinate slice of length n*d. The zero value is an empty point set
// of dimension 0.
type Points struct {
	// Dim is the dimensionality d of every point. Dim must be >= 1 for a
	// non-empty set.
	Dim int
	// Coords holds the coordinates point-major: point i occupies
	// Coords[i*Dim : (i+1)*Dim].
	Coords []float64
}

// NewPoints allocates an empty point set of the given dimension with room
// for capHint points.
func NewPoints(dim, capHint int) *Points {
	if dim < 1 {
		panic(fmt.Sprintf("geom: dimension must be >= 1, got %d", dim))
	}
	return &Points{Dim: dim, Coords: make([]float64, 0, capHint*dim)}
}

// FromSlice builds a Points value from a slice of coordinate slices. All
// rows must have the same length. An empty input yields a Points with the
// given dim.
func FromSlice(rows [][]float64, dim int) (*Points, error) {
	p := NewPoints(dim, len(rows))
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("geom: row %d has %d coordinates, want %d", i, len(r), dim)
		}
		p.Coords = append(p.Coords, r...)
	}
	return p, nil
}

// N returns the number of points.
func (p *Points) N() int {
	if p.Dim == 0 {
		return 0
	}
	return len(p.Coords) / p.Dim
}

// At returns a view (not a copy) of point i's coordinates.
func (p *Points) At(i int) []float64 {
	return p.Coords[i*p.Dim : (i+1)*p.Dim : (i+1)*p.Dim]
}

// Append adds a point and returns its index.
func (p *Points) Append(coords []float64) int {
	if len(coords) != p.Dim {
		panic(fmt.Sprintf("geom: appending %d-coordinate point to %d-dimensional set", len(coords), p.Dim))
	}
	p.Coords = append(p.Coords, coords...)
	return p.N() - 1
}

// Copy returns a deep copy of the point set.
func (p *Points) Copy() *Points {
	c := &Points{Dim: p.Dim, Coords: make([]float64, len(p.Coords))}
	copy(c.Coords, p.Coords)
	return c
}

// Subset returns a new Points containing the points at the given indices, in
// order.
func (p *Points) Subset(idx []int) *Points {
	s := NewPoints(p.Dim, len(idx))
	for _, i := range idx {
		s.Coords = append(s.Coords, p.At(i)...)
	}
	return s
}

// Dist2 returns the squared Euclidean distance between two coordinate
// slices, which must have equal length.
func Dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two coordinate slices.
func Dist(a, b []float64) float64 {
	return math.Sqrt(Dist2(a, b))
}

// Box is an axis-aligned hyper-rectangle [Min[i], Max[i]] per dimension. It
// doubles as the minimum bounding rectangle (MBR) of Definition 5.9.
type Box struct {
	Min, Max []float64
}

// NewBox returns an "empty" box of the given dimension: Min at +inf and Max
// at -inf so that any Extend produces a valid bound.
func NewBox(dim int) Box {
	b := Box{Min: make([]float64, dim), Max: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		b.Min[i] = math.Inf(1)
		b.Max[i] = math.Inf(-1)
	}
	return b
}

// Dim returns the box dimension.
func (b Box) Dim() int { return len(b.Min) }

// Empty reports whether the box has never been extended.
func (b Box) Empty() bool {
	return b.Dim() == 0 || b.Min[0] > b.Max[0]
}

// Extend grows the box to contain the point.
func (b *Box) Extend(p []float64) {
	for i, v := range p {
		if v < b.Min[i] {
			b.Min[i] = v
		}
		if v > b.Max[i] {
			b.Max[i] = v
		}
	}
}

// ExtendBox grows the box to contain another box.
func (b *Box) ExtendBox(o Box) {
	if o.Empty() {
		return
	}
	b.Extend(o.Min)
	b.Extend(o.Max)
}

// Contains reports whether the point lies inside the closed box.
func (b Box) Contains(p []float64) bool {
	for i, v := range p {
		if v < b.Min[i] || v > b.Max[i] {
			return false
		}
	}
	return true
}

// MinDist2 returns the squared distance from point p to the nearest point of
// the box (zero when p is inside).
func (b Box) MinDist2(p []float64) float64 {
	var s float64
	for i, v := range p {
		if v < b.Min[i] {
			d := b.Min[i] - v
			s += d * d
		} else if v > b.Max[i] {
			d := v - b.Max[i]
			s += d * d
		}
	}
	return s
}

// MaxDist2 returns the squared distance from point p to the farthest point
// of the box.
func (b Box) MaxDist2(p []float64) float64 {
	var s float64
	for i, v := range p {
		d1 := v - b.Min[i]
		d2 := b.Max[i] - v
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d2 > d1 {
			d1 = d2
		}
		s += d1 * d1
	}
	return s
}

// Outside reports whether the box is entirely farther than eps from p in at
// least one coordinate, the skip test of Lemma 5.10:
// exists i such that Max[i] < p[i]-eps or Min[i] > p[i]+eps.
func (b Box) Outside(p []float64, eps float64) bool {
	for i, v := range p {
		if b.Max[i] < v-eps || b.Min[i] > v+eps {
			return true
		}
	}
	return false
}

// OutsideBox reports whether the two boxes are farther than eps apart along
// at least one coordinate — the box-level generalisation of Outside used by
// cell-batched region queries: no point of o can be within eps of any point
// of b when the test holds.
func (b Box) OutsideBox(o Box, eps float64) bool {
	for i := range b.Min {
		if b.Max[i] < o.Min[i]-eps || b.Min[i] > o.Max[i]+eps {
			return true
		}
	}
	return false
}

// BoxMinDist2 returns the squared distance between the nearest pair of
// points of the two boxes (zero when they intersect).
func (b Box) BoxMinDist2(o Box) float64 {
	var s float64
	for i := range b.Min {
		if d := o.Min[i] - b.Max[i]; d > 0 {
			s += d * d
		} else if d := b.Min[i] - o.Max[i]; d > 0 {
			s += d * d
		}
	}
	return s
}

// BoxMaxDist2 returns the squared distance between the farthest pair of
// points of the two boxes.
func (b Box) BoxMaxDist2(o Box) float64 {
	var s float64
	for i := range b.Min {
		d1 := b.Max[i] - o.Min[i]
		d2 := o.Max[i] - b.Min[i]
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d2 > d1 {
			d1 = d2
		}
		s += d1 * d1
	}
	return s
}
