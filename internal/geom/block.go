package geom

// Block is a structure-of-arrays view of a point batch: coordinate d of
// every point is one contiguous float64 lane, so per-dimension kernels
// (distance accumulation, box classification) run over dense slices with
// no per-point slice-header indirection. Phase II gathers each owned
// cell's points into a Block once and evaluates all region-query residuals
// against it candidate-by-candidate; the kd-tree uses the same layout
// inside its leaves.
//
// A Block is scratch: Gather reuses the backing slab across calls, so a
// Block must not be retained past the next Gather or shared between
// goroutines.
type Block struct {
	dim, n int
	lanes  []float64 // dimension-major: lane d is lanes[d*n : (d+1)*n]
}

// Dim returns the dimensionality of the gathered points.
func (b *Block) Dim() int { return b.dim }

// N returns the number of gathered points.
func (b *Block) N() int { return b.n }

// Lane returns coordinate d of every gathered point as one dense slice of
// length N, in gather order.
func (b *Block) Lane(d int) []float64 {
	return b.lanes[d*b.n : (d+1)*b.n : (d+1)*b.n]
}

// At returns coordinate d of gathered point i.
func (b *Block) At(i, d int) float64 { return b.lanes[d*b.n+i] }

// Grow pre-sizes the backing slab for gathers of up to n points of dim
// dimensions, so a loop over variably-sized batches pays one allocation up
// front instead of a realloc at every new maximum.
func (b *Block) Grow(dim, n int) {
	if need := dim * n; cap(b.lanes) < need {
		b.lanes = make([]float64, need)
	}
}

// Gather transposes the points at idx into the block's per-dimension
// lanes, reusing the backing slab when it has capacity.
func (b *Block) Gather(pts *Points, idx []int) {
	b.dim, b.n = pts.Dim, len(idx)
	need := b.dim * b.n
	if cap(b.lanes) < need {
		b.lanes = make([]float64, need)
	}
	b.lanes = b.lanes[:need]
	src := pts.Coords
	for d := 0; d < b.dim; d++ {
		lane := b.lanes[d*b.n : (d+1)*b.n]
		for j, pi := range idx {
			lane[j] = src[pi*b.dim+d]
		}
	}
}
