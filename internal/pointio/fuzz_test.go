package pointio

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"rpdbscan/internal/geom"
)

// FuzzReadCSV checks the CSV reader never panics and that accepted input
// round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# comment\n\n1.5e10,-2\n")
	f.Add("x,y\n")
	f.Add("")
	f.Add("1\n2\n3\n")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, pts); err != nil {
			t.Fatalf("write of accepted points failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.N() != pts.N() || again.Dim != pts.Dim {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				again.N(), again.Dim, pts.N(), pts.Dim)
		}
	})
}

// FuzzChunkReader checks the chunked readers against the slurp readers on
// arbitrary (and hostile: truncated, ragged, mid-record-cut) input, in both
// formats: they must agree exactly on accept/reject, and on accepted input
// the chunked drain at any chunk size must produce the same coordinates.
// Since ReadCSV/ReadBinary drain at a fixed large chunk, this is the
// chunk-size-invariance property of the Source contract.
func FuzzChunkReader(f *testing.F) {
	var bin bytes.Buffer
	pts, _ := ReadCSV(strings.NewReader("1,2\n3,4\n"))
	_ = WriteBinary(&bin, pts)
	f.Add([]byte("1,2\n3,4\n5,6\n"), byte(1))
	f.Add([]byte("# c\n\n1.5e10,-2\n7,8\n"), byte(2))
	f.Add([]byte("1,2\n3\n"), byte(0))
	f.Add(bin.Bytes(), byte(3))
	f.Add(bin.Bytes()[:bin.Len()-5], byte(1)) // mid-record cut
	f.Add([]byte("RPPT"), byte(4))
	f.Fuzz(func(t *testing.T, data []byte, chunkSel byte) {
		chunk := int(chunkSel)%7 + 1
		check := func(format string, slurp func(io.Reader) (*geom.Points, error), open func(io.Reader) (Source, error)) {
			want, wantErr := slurp(bytes.NewReader(data))
			src, err := open(bytes.NewReader(data))
			var got *geom.Points
			if err == nil {
				got, err = drainChunks(src, chunk)
			}
			if (wantErr == nil) != (err == nil) {
				t.Fatalf("%s: slurp err=%v, chunked(%d) err=%v", format, wantErr, chunk, err)
			}
			if wantErr != nil {
				return
			}
			if got.Dim != want.Dim || len(got.Coords) != len(want.Coords) {
				t.Fatalf("%s: chunked(%d) shape %dx%d, slurp %dx%d",
					format, chunk, got.N(), got.Dim, want.N(), want.Dim)
			}
			for i := range want.Coords {
				if math.Float64bits(got.Coords[i]) != math.Float64bits(want.Coords[i]) {
					t.Fatalf("%s: chunked(%d) coord %d diverged", format, chunk, i)
				}
			}
		}
		check("csv", ReadCSV, func(r io.Reader) (Source, error) { return NewCSVChunkReader(r) })
		check("binary", ReadBinary, func(r io.Reader) (Source, error) { return NewBinaryChunkReader(r) })
	})
}

// drainChunks reads src to exhaustion chunk points at a time.
func drainChunks(src Source, chunk int) (*geom.Points, error) {
	dim := src.Dim()
	pts := &geom.Points{Dim: dim}
	buf := make([]float64, chunk*dim)
	for {
		n, err := src.Next(buf)
		if n > 0 {
			pts.Coords = append(pts.Coords, buf[:n*dim]...)
		}
		if err == io.EOF {
			return pts, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// FuzzReadBinary checks the binary reader never panics on arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	pts, _ := ReadCSV(strings.NewReader("1,2\n3,4\n"))
	_ = WriteBinary(&buf, pts)
	f.Add(buf.Bytes())
	f.Add([]byte("RPPT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("write of accepted points failed: %v", err)
		}
	})
}
