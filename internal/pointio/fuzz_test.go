package pointio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and that accepted input
// round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# comment\n\n1.5e10,-2\n")
	f.Add("x,y\n")
	f.Add("")
	f.Add("1\n2\n3\n")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, pts); err != nil {
			t.Fatalf("write of accepted points failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.N() != pts.N() || again.Dim != pts.Dim {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				again.N(), again.Dim, pts.N(), pts.Dim)
		}
	})
}

// FuzzReadBinary checks the binary reader never panics on arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	pts, _ := ReadCSV(strings.NewReader("1,2\n3,4\n"))
	_ = WriteBinary(&buf, pts)
	f.Add(buf.Bytes())
	f.Add([]byte("RPPT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("write of accepted points failed: %v", err)
		}
	})
}
