package pointio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"rpdbscan/internal/geom"
)

// Source is a single-pass stream of points consumed in bounded chunks: the
// contract the out-of-core pipeline (core.RunStream) ingests from. A Source
// knows its dimensionality up front (readers probe the header or the first
// record at construction) and hands out coordinates into caller-owned
// buffers, so peak memory is set by the caller's chunk size, not by N.
type Source interface {
	// Dim returns the point dimensionality, >= 1.
	Dim() int
	// Next fills dst with the coordinates of up to len(dst)/Dim() points,
	// point-major, and returns the number of points read. At the clean end
	// of the stream it returns (0, io.EOF); thereafter every call returns
	// (0, io.EOF). A record cut off mid-point (truncation, ragged row, bad
	// field) returns a non-EOF error describing the corruption.
	Next(dst []float64) (int, error)
}

// CSVChunkReader streams a CSV point file (the ReadCSV format) chunk by
// chunk. The dimensionality is inferred from the first data line at
// construction; blank lines and '#' comments are skipped.
type CSVChunkReader struct {
	sc          *bufio.Scanner
	dim         int
	row         []float64 // reusable parse buffer for one record
	havePending bool      // the probed first record is waiting in row
	lineNo      int
	err         error // sticky terminal state (io.EOF at the clean end)
}

// NewCSVChunkReader probes r for its first data record (which fixes the
// dimensionality) and returns a chunked reader positioned to stream it.
// An input with no data records is an error, matching ReadCSV.
func NewCSVChunkReader(r io.Reader) (*CSVChunkReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	cr := &CSVChunkReader{sc: sc}
	fields, err := cr.scanRecord()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("pointio: no points in input")
		}
		return nil, err
	}
	cr.dim = len(fields)
	cr.row = make([]float64, cr.dim)
	if err := cr.parseRecord(fields); err != nil {
		return nil, err
	}
	cr.havePending = true
	return cr, nil
}

// Dim implements Source.
func (cr *CSVChunkReader) Dim() int { return cr.dim }

// scanRecord advances to the next non-blank, non-comment line and returns
// its comma-separated fields, or io.EOF at the clean end of input.
func (cr *CSVChunkReader) scanRecord() ([]string, error) {
	for cr.sc.Scan() {
		cr.lineNo++
		line := strings.TrimSpace(cr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Split(line, ","), nil
	}
	if err := cr.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// parseRecord parses fields into cr.row, enforcing the fixed dimensionality.
func (cr *CSVChunkReader) parseRecord(fields []string) error {
	if len(fields) != cr.dim {
		return fmt.Errorf("pointio: line %d has %d fields, want %d", cr.lineNo, len(fields), cr.dim)
	}
	for j, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("pointio: line %d field %d: %w", cr.lineNo, j+1, err)
		}
		cr.row[j] = v
	}
	return nil
}

// Next implements Source.
func (cr *CSVChunkReader) Next(dst []float64) (int, error) {
	if cr.err != nil {
		return 0, cr.err
	}
	capacity := len(dst) / cr.dim
	if capacity < 1 {
		return 0, fmt.Errorf("pointio: chunk buffer holds %d floats, need at least dim=%d", len(dst), cr.dim)
	}
	n := 0
	for n < capacity {
		if cr.havePending {
			cr.havePending = false
		} else {
			fields, err := cr.scanRecord()
			if err == io.EOF {
				break
			}
			if err == nil {
				err = cr.parseRecord(fields)
			}
			if err != nil {
				cr.err = err
				if n > 0 {
					// Hand back the points already read; the error
					// surfaces (sticky) on the next call.
					return n, nil
				}
				return 0, err
			}
		}
		copy(dst[n*cr.dim:], cr.row)
		n++
	}
	if n == 0 {
		cr.err = io.EOF
		return 0, io.EOF
	}
	return n, nil
}

// BinaryChunkReader streams the RPPT binary point format (the ReadBinary
// format) chunk by chunk. The header is read and validated at construction.
type BinaryChunkReader struct {
	br        *bufio.Reader
	dim       int
	remaining uint64 // points not yet returned
	err       error  // sticky terminal state
}

// NewBinaryChunkReader reads and validates the binary header of r and
// returns a chunked reader over its points.
func NewBinaryChunkReader(r io.Reader) (*BinaryChunkReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+12)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("pointio: short header: %w", err)
	}
	if string(head[:4]) != binMagic {
		return nil, fmt.Errorf("pointio: bad magic %q", head[:4])
	}
	dim := int(binary.LittleEndian.Uint32(head[4:8]))
	n := binary.LittleEndian.Uint64(head[8:])
	if dim < 1 || dim > 1<<16 {
		return nil, fmt.Errorf("pointio: implausible dimension %d", dim)
	}
	if n*uint64(dim)/uint64(dim) != n {
		return nil, fmt.Errorf("pointio: count %d overflows", n)
	}
	return &BinaryChunkReader{br: br, dim: dim, remaining: n}, nil
}

// Dim implements Source.
func (br *BinaryChunkReader) Dim() int { return br.dim }

// Next implements Source. A stream that ends before the header's point
// count is satisfied — including a cut inside one point's coordinates —
// is a truncation error, never a silent short read.
func (br *BinaryChunkReader) Next(dst []float64) (int, error) {
	if br.err != nil {
		return 0, br.err
	}
	if len(dst)/br.dim < 1 {
		return 0, fmt.Errorf("pointio: chunk buffer holds %d floats, need at least dim=%d", len(dst), br.dim)
	}
	capacity := uint64(len(dst) / br.dim)
	if capacity > br.remaining {
		capacity = br.remaining
	}
	if capacity == 0 {
		br.err = io.EOF
		return 0, io.EOF
	}
	var buf [8]byte
	for i := uint64(0); i < capacity*uint64(br.dim); i++ {
		if _, err := io.ReadFull(br.br, buf[:]); err != nil {
			br.err = fmt.Errorf("pointio: truncated data: %w", err)
			return 0, br.err
		}
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	br.remaining -= capacity
	return int(capacity), nil
}

// pointsSource adapts an in-memory point set to the Source interface
// (tests, benchmarks, and the public slice-backed entry points).
type pointsSource struct {
	pts *geom.Points
	off int // next point index
}

// FromPoints returns a Source streaming the points of pts in order.
func FromPoints(pts *geom.Points) Source {
	return &pointsSource{pts: pts}
}

func (s *pointsSource) Dim() int { return s.pts.Dim }

func (s *pointsSource) Next(dst []float64) (int, error) {
	dim := s.pts.Dim
	n := len(dst) / dim
	if n < 1 {
		return 0, fmt.Errorf("pointio: chunk buffer holds %d floats, need at least dim=%d", len(dst), dim)
	}
	if rest := s.pts.N() - s.off; n > rest {
		n = rest
	}
	if n <= 0 {
		return 0, io.EOF
	}
	copy(dst, s.pts.Coords[s.off*dim:(s.off+n)*dim])
	s.off += n
	return n, nil
}

// ReadAll drains src into a new point set, growing the allocation as data
// actually arrives (a corrupt or hostile size hint must not balloon
// memory). It is the slurp primitive behind ReadCSV and ReadBinary.
func ReadAll(src Source) (*geom.Points, error) {
	dim := src.Dim()
	pts := &geom.Points{Dim: dim, Coords: make([]float64, 0, 1024*dim)}
	buf := make([]float64, readAllChunk*dim)
	for {
		n, err := src.Next(buf)
		if n > 0 {
			pts.Coords = append(pts.Coords, buf[:n*dim]...)
		}
		if err == io.EOF {
			return pts, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// readAllChunk is the slurp batch size in points.
const readAllChunk = 4096
